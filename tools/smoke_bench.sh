#!/bin/sh
# Smoke-runs one bench binary twice and checks the telemetry contract:
#   1. both runs exit 0;
#   2. the two BENCH_*.json files are byte-identical (deterministic sim)
#      after dropping "wall" blocks — wall-clock timing is the one
#      sanctioned non-deterministic section (see bench/bench_util.h);
#   3. the JSON passes the checked-in schema (keys present, values
#      finite, non-empty rows).
#
# Usage: smoke_bench.sh <bench-binary> <validator-binary> <schema.json> <workdir>
set -eu

BENCH="$1"
VALIDATOR="$2"
SCHEMA="$3"
WORK="$4"

rm -rf "$WORK"
mkdir -p "$WORK/run1" "$WORK/run2"

"$BENCH" --smoke --out="$WORK/run1" > "$WORK/run1.out"
"$BENCH" --smoke --out="$WORK/run2" > "$WORK/run2.out"

J1=$(ls "$WORK"/run1/BENCH_*.json)
J2=$(ls "$WORK"/run2/BENCH_*.json)

# Strip every "wall" object (recursively) before comparing; all other
# bytes must match between same-seed runs.
strip_wall() {
    python3 -c '
import json, sys

def strip(v):
    if isinstance(v, dict):
        return {k: strip(x) for k, x in v.items() if k != "wall"}
    if isinstance(v, list):
        return [strip(x) for x in v]
    return v

with open(sys.argv[1]) as f:
    doc = json.load(f)
print(json.dumps(strip(doc), sort_keys=True))
' "$1" > "$2"
}

strip_wall "$J1" "$WORK/run1.nowall.json"
strip_wall "$J2" "$WORK/run2.nowall.json"

if ! cmp "$WORK/run1.nowall.json" "$WORK/run2.nowall.json"; then
    echo "FAIL: $J1 and $J2 differ between two same-seed runs" >&2
    exit 1
fi

"$VALIDATOR" "$SCHEMA" "$J1"
