#!/bin/sh
# Smoke-runs one bench binary twice and checks the telemetry contract:
#   1. both runs exit 0;
#   2. the two BENCH_*.json files are byte-identical (deterministic sim);
#   3. the JSON passes the checked-in schema (keys present, values
#      finite, non-empty rows).
#
# Usage: smoke_bench.sh <bench-binary> <validator-binary> <schema.json> <workdir>
set -eu

BENCH="$1"
VALIDATOR="$2"
SCHEMA="$3"
WORK="$4"

rm -rf "$WORK"
mkdir -p "$WORK/run1" "$WORK/run2"

"$BENCH" --smoke --out="$WORK/run1" > "$WORK/run1.out"
"$BENCH" --smoke --out="$WORK/run2" > "$WORK/run2.out"

J1=$(ls "$WORK"/run1/BENCH_*.json)
J2=$(ls "$WORK"/run2/BENCH_*.json)

if ! cmp "$J1" "$J2"; then
    echo "FAIL: $J1 and $J2 differ between two same-seed runs" >&2
    exit 1
fi

"$VALIDATOR" "$SCHEMA" "$J1"
