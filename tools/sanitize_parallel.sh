#!/bin/sh
# Builds the repo with -DNCACHE_SANITIZE=thread and runs the suites that
# exercise the parallel engine's worker pool and the partitioned worlds
# under TSan: the topology label (which includes tests/parallel_test.cc —
# engine rounds, partitioned topo::Worlds, cross-domain links), the
# cluster label (peering traffic the racks worlds reuse), and the
# scaleout_parallel bench smoke (the T>1 worker-thread sweep end to end).
# The sanitizer build lives in its own tree so the default build's perf
# baselines and byte-exact BENCH files are untouched.
#
# TSan notes: the engine's only sanctioned cross-thread traffic is the
# round handshake (mutex + condvars), the next_domain_ ticket counter,
# per-domain outboxes (owned by their staging domain within a round,
# merged single-threaded at the barrier), and the atomic dispatch/alloc
# counters — anything else TSan flags here is a real race.
#
# Usage: sanitize_parallel.sh [build-dir]   (default: build-tsan)
set -eu

SRC=$(cd "$(dirname "$0")/.." && pwd)
BUILD="${1:-$SRC/build-tsan}"

cmake -B "$BUILD" -S "$SRC" -DNCACHE_SANITIZE=thread
cmake --build "$BUILD" -j
ctest --test-dir "$BUILD" -L 'topology|cluster' --output-on-failure -j 4
ctest --test-dir "$BUILD" -R 'bench_smoke_scaleout_parallel' \
  --output-on-failure
