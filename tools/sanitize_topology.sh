#!/bin/sh
# Builds the repo with -DNCACHE_SANITIZE=address,undefined and runs the
# topology suite (ctest label `topology`: graph/parser/validator units,
# facade parity, two-rack WAN integration) under it. The sanitizer build
# lives in its own tree so the default build's perf baselines and
# byte-exact BENCH files are untouched.
#
# Usage: sanitize_topology.sh [build-dir]   (default: build-sanitize)
set -eu

SRC=$(cd "$(dirname "$0")/.." && pwd)
BUILD="${1:-$SRC/build-sanitize}"

cmake -B "$BUILD" -S "$SRC" -DNCACHE_SANITIZE=address,undefined
cmake --build "$BUILD" -j
ctest --test-dir "$BUILD" -L topology --output-on-failure -j 4
