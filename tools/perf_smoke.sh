#!/bin/sh
# Wall-clock sanity gate for the hot-path microbenchmark: runs perf_core
# --smoke twice and requires the two runs' wall rates to agree within
# tools/perf_compare.py's tolerance. Two runs of the *same binary* only
# drift when the machine is so loaded that timing is meaningless, so this
# is a cheap self-consistency check that also exercises the comparison
# tool end to end. Cross-PR comparisons run the same script against
# bench/baselines/BENCH_perf_core.pre.json by hand (see README).
#
# Usage: perf_smoke.sh <perf_core-binary> <perf_compare.py> <workdir>
set -eu

BENCH="$1"
COMPARE="$2"
WORK="$3"

rm -rf "$WORK"
mkdir -p "$WORK/run1" "$WORK/run2"

"$BENCH" --smoke --out="$WORK/run1" > "$WORK/run1.out"
"$BENCH" --smoke --out="$WORK/run2" > "$WORK/run2.out"

python3 "$COMPARE" "$WORK/run1/BENCH_perf_core.json" \
                   "$WORK/run2/BENCH_perf_core.json"
