#!/bin/sh
# Builds the repo with -DNCACHE_SANITIZE=address,undefined and runs the
# scale-out cluster suite (ctest label `cluster`) under it. The sanitizer
# build lives in its own tree so the default build's perf baselines and
# byte-exact BENCH files are untouched.
#
# Usage: sanitize_cluster.sh [build-dir]   (default: build-sanitize)
set -eu

SRC=$(cd "$(dirname "$0")/.." && pwd)
BUILD="${1:-$SRC/build-sanitize}"

cmake -B "$BUILD" -S "$SRC" -DNCACHE_SANITIZE=address,undefined
cmake --build "$BUILD" -j
ctest --test-dir "$BUILD" -L cluster --output-on-failure -j 4
