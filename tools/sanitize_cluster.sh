#!/bin/sh
# Thin shim: the per-suite sanitizer runners were consolidated into
# sanitize.sh; this name is kept for muscle memory and CI configs.
exec "$(dirname "$0")/sanitize.sh" cluster "$@"
