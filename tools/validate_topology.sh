#!/bin/sh
# Lints every checked-in topology file: parse, validate, and the
# describe/parse round-trip law, via the topo_lint example binary.
# Wired into ctest (test `validate_topologies`) so a .topo that drifts
# from the text format fails the build's test run, not a user's first
# attempt to load it.
#
# Usage: validate_topology.sh <topo_lint-binary> <topologies-dir>
set -eu

LINT="$1"
DIR="$2"

found=0
for f in "$DIR"/*.topo; do
  [ -e "$f" ] || continue
  found=1
  "$LINT" "$f"
done

if [ "$found" -eq 0 ]; then
  echo "validate_topology.sh: no *.topo files under $DIR" >&2
  exit 1
fi
