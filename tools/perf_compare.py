#!/usr/bin/env python3
"""Compare the wall-clock blocks of two BENCH_*.json files.

Every BENCH_*.json carries "wall" objects (a top-level one stamped by
BenchReport, plus per-row ones in perf_core): the only sanctioned
non-deterministic section of the telemetry. This script extracts every
rate inside those blocks (keys ending in "_per_sec") plus every parallel
speedup (keys ending in "_speedup_x", from the multi-thread benches) from
a baseline and a candidate file and fails if any regressed by more than
the tolerance (default 20%, matching run-to-run noise on a loaded CI
box).

On single-core hosts the *_speedup_x gates are downgraded to warnings:
parallel speedup over a 1-core host measures engine overhead, not
scaling (the committed parallel baselines were themselves recorded on a
1-core box — see ROADMAP), so a "regression" there carries no signal.
Pass --cores to override the detected CPU count in either direction.

Usage:
    perf_compare.py [--tolerance 0.20] [--cores N] <baseline.json> <candidate.json>

Exit status: 0 when no rate regressed beyond tolerance, 1 otherwise.
Rates present in only one file are reported but never fail the check, so
adding a new bench row does not break an old baseline.
"""

import argparse
import json
import os
import sys


def wall_rates(doc, path=""):
    """Yields (dotted_path, value) for every *_per_sec / *_speedup_x
    inside a "wall"."""
    if isinstance(doc, dict):
        for key, value in doc.items():
            sub = f"{path}.{key}" if path else key
            if key == "wall" and isinstance(value, dict):
                for rate, rv in value.items():
                    if (rate.endswith("_per_sec")
                            or rate.endswith("_speedup_x")) and isinstance(
                        rv, (int, float)
                    ):
                        yield f"{sub}.{rate}", float(rv)
            else:
                yield from wall_rates(value, sub)
    elif isinstance(doc, list):
        for i, item in enumerate(doc):
            label = path
            # Label bench rows by their "case" name, not their index, so
            # reordering rows keeps baselines comparable.
            if isinstance(item, dict) and "case" in item:
                label = f"{path}[{item['case']}]"
            else:
                label = f"{path}[{i}]"
            yield from wall_rates(item, label)


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        sys.exit(f"perf_compare: cannot read {path}: {e}")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--tolerance", type=float, default=0.20,
                    help="max fractional slowdown before failing "
                         "(default 0.20 = 20%%)")
    ap.add_argument("--cores", type=int, default=None,
                    help="assume this many CPU cores instead of probing "
                         "the host (speedup gates become warnings at 1)")
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    args = ap.parse_args()

    cores = args.cores if args.cores is not None else (os.cpu_count() or 1)
    if cores < 2:
        print("perf_compare: single-core host detected; *_speedup_x gates "
              "are warnings only (parallel speedup on one core measures "
              "overhead, not scaling)")

    base = dict(wall_rates(load(args.baseline)))
    cand = dict(wall_rates(load(args.candidate)))
    if not base:
        sys.exit(f"perf_compare: no wall rates in {args.baseline}")

    failures = []
    for name in sorted(base.keys() | cand.keys()):
        b, c = base.get(name), cand.get(name)
        if b is None or c is None:
            side = args.candidate if b is None else args.baseline
            print(f"{name:55s} only in {side}, ignored")
            continue
        ratio = c / b if b > 0 else float("inf")
        verdict = "ok"
        if ratio < 1.0 - args.tolerance:
            if cores < 2 and name.endswith("_speedup_x"):
                verdict = "regressed (warning only: 1-core host)"
            else:
                verdict = "REGRESSED"
                failures.append(name)
        print(f"{name:55s} {b:14.0f} -> {c:14.0f}  ({ratio:6.2f}x) {verdict}")

    if failures:
        print(f"perf_compare: {len(failures)} rate(s) slowed by more than "
              f"{args.tolerance:.0%}: {', '.join(failures)}", file=sys.stderr)
        return 1
    print(f"perf_compare: all {len(base)} rate(s) within "
          f"{args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
