#!/bin/sh
# One sanitizer driver for every suite. Builds the repo with the suite's
# sanitizer flavour into a dedicated tree (so the default build's perf
# baselines and byte-exact BENCH files are untouched) and runs the suite's
# ctest selection under it.
#
#   sanitize.sh faults    [build-dir]  ASan/UBSan, ctest label `faults`
#   sanitize.sh cluster   [build-dir]  ASan/UBSan, label `cluster` (incl.
#                                      the partition/coherence tests)
#   sanitize.sh topology  [build-dir]  ASan/UBSan, label `topology`
#   sanitize.sh overload  [build-dir]  ASan/UBSan, label `overload`
#   sanitize.sh parallel  [build-dir]  TSan, labels `topology|cluster|
#                                      overload` (partition tests under
#                                      the engine's worker pool and the
#                                      flash-crowd T>1 byte-identity test
#                                      included) + the scaleout_parallel,
#                                      chaos_partition and chaos_overload
#                                      bench smokes
#   sanitize.sh all       [build-dir]  ASan/UBSan, every labeled suite
#
# Default build dirs: build-sanitize (ASan/UBSan), build-tsan (TSan).
#
# TSan notes (parallel suite): the engine's only sanctioned cross-thread
# traffic is the round handshake (mutex + condvars), the next_domain_
# ticket counter, per-domain outboxes (owned by their staging domain
# within a round, merged single-threaded at the barrier), and the atomic
# dispatch/alloc counters. Partition fault windows keep that invariant by
# scheduling every admin toggle on the owning domain's loop at arm time —
# anything else TSan flags here is a real race.
set -eu

SRC=$(cd "$(dirname "$0")/.." && pwd)
SUITE="${1:-}"

usage() {
  echo "usage: sanitize.sh {faults|cluster|topology|overload|parallel|all} [build-dir]" >&2
  exit 2
}
[ -n "$SUITE" ] || usage

case "$SUITE" in
  faults|cluster|topology|overload|all)
    BUILD="${2:-$SRC/build-sanitize}"
    SANITIZE="address,undefined"
    ;;
  parallel)
    BUILD="${2:-$SRC/build-tsan}"
    SANITIZE="thread"
    ;;
  *) usage ;;
esac

cmake -B "$BUILD" -S "$SRC" -DNCACHE_SANITIZE="$SANITIZE"
cmake --build "$BUILD" -j

case "$SUITE" in
  faults)   ctest --test-dir "$BUILD" -L faults --output-on-failure -j 4 ;;
  cluster)  ctest --test-dir "$BUILD" -L cluster --output-on-failure -j 4 ;;
  topology) ctest --test-dir "$BUILD" -L topology --output-on-failure -j 4 ;;
  overload) ctest --test-dir "$BUILD" -L overload --output-on-failure -j 4 ;;
  all)      ctest --test-dir "$BUILD" -L 'faults|cluster|topology|overload' \
              --output-on-failure -j 4 ;;
  parallel)
    ctest --test-dir "$BUILD" -L 'topology|cluster|overload' \
      --output-on-failure -j 4
    ctest --test-dir "$BUILD" \
      -R 'bench_smoke_scaleout_parallel|bench_smoke_chaos_partition|bench_smoke_chaos_overload' \
      --output-on-failure
    ;;
esac
