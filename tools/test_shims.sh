#!/bin/sh
# Regression test for the sanitize_*.sh compat shims: each legacy name
# must still dispatch to the consolidated sanitize.sh with its suite as
# the first argument and the caller's arguments appended.
#
# No sanitizer build is involved: the shims resolve sanitize.sh relative
# to their own directory, so we copy them next to a recording stub and
# check what the stub was invoked with.
set -eu

SRC=$(cd "$(dirname "$0")/.." && pwd)
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT INT TERM

cat > "$TMP/sanitize.sh" <<'EOF'
#!/bin/sh
echo "$@" > "$(dirname "$0")/called"
EOF
chmod +x "$TMP/sanitize.sh"

fail=0
for suite in cluster faults parallel topology; do
  shim="sanitize_${suite}.sh"
  cp "$SRC/tools/$shim" "$TMP/$shim"
  chmod +x "$TMP/$shim"
  rm -f "$TMP/called"
  "$TMP/$shim" /tmp/some-build-dir
  got=$(cat "$TMP/called" 2>/dev/null || echo "<sanitize.sh not called>")
  want="$suite /tmp/some-build-dir"
  if [ "$got" = "$want" ]; then
    echo "ok   $shim -> sanitize.sh $got"
  else
    echo "FAIL $shim: want 'sanitize.sh $want', got '$got'" >&2
    fail=1
  fi
done
exit $fail
