// Failure injection and cross-mode equivalence.
//
//  * Frame loss on every hop of the NFS and iSCSI paths: the protocols
//    (UDP retransmission, TCP recovery) must deliver correct data anyway.
//  * Substitution miss: a key evicted before egress becomes junk, never a
//    dropped frame or a crash.
//  * Resource exhaustion: fs out of space, cache pool too small.
//  * Equivalence: the same mixed workload against Original and NCache
//    servers must leave byte-identical client-visible state.
#include <gtest/gtest.h>

#include "fs/image_builder.h"
#include "testbed/testbed.h"

namespace ncache {
namespace {

using core::PassMode;
using netbuf::MsgBuffer;
using nfs::Status;
using testbed::Testbed;
using testbed::TestbedConfig;

template <typename F>
void run_on(Testbed& tb, F&& body) {
  auto t_fn = [&]() -> Task<void> { co_await body(); };
  sim::sync_wait(tb.loop(), t_fn());
}

// ---------------------------------------------------------------------------
// Loss on every hop
// ---------------------------------------------------------------------------

struct LossPoint {
  const char* name;
  int node;  // 0=client0, 1=server, 2=storage
};

class LossyHops : public ::testing::TestWithParam<int> {};

TEST_P(LossyHops, NfsReadSurvivesPeriodicLoss) {
  TestbedConfig cfg;
  cfg.mode = PassMode::NCache;
  Testbed tb(cfg);
  std::uint32_t ino = tb.image().add_file("f.bin", 512 * 1024);
  tb.start_nfs();

  // Install a periodic drop filter at the chosen hop. For the server the
  // NCache egress filter must keep running, so chain it. The server hop
  // uses a gentler rate: each 32 KB UDP reply is ~23 fragments and losing
  // ANY fragment loses the datagram, so a per-frame drop rate of p makes
  // replies survive with only (1-p)^23 — the reason lossy networks forced
  // small NFS transfer sizes.
  auto drop_filter = [counter = 0](proto::Frame&) mutable {
    return ++counter % 13 != 0;
  };
  switch (GetParam()) {
    case 0:
      tb.client_node(0).stack.nic(0).set_egress_filter(drop_filter);
      break;
    case 1:
      tb.server_node().stack.nic(0).set_egress_filter(
          [counter = 0, &tb](proto::Frame& f) mutable {
            if (++counter % 201 == 0) return false;
            return tb.ncache()->egress_filter(f);
          });
      break;
    case 2:
      tb.storage_node().stack.nic(0).set_egress_filter(drop_filter);
      break;
  }

  run_on(tb, [&]() -> Task<void> {
    auto& client = tb.nfs_client(0);
    for (std::uint64_t off = 0; off < 512 * 1024; off += 32768) {
      auto r = co_await client.read(ino, off, 32768);
      EXPECT_EQ(r.status, Status::Ok) << "offset " << off;
      EXPECT_EQ(fs::verify_content(ino, off, r.data.to_bytes()),
                std::size_t(-1))
          << "offset " << off;
    }
  });
  // UDP retransmissions must have happened when the drop was on the
  // client<->server leg; TCP recovery covers the iSCSI leg.
  if (GetParam() != 2) {
    EXPECT_GT(tb.nfs_client(0).stats().retransmits, 0u);
  }
}

std::string hop_name(const ::testing::TestParamInfo<int>& info) {
  const char* names[] = {"client", "server", "storage"};
  return names[info.param];
}
INSTANTIATE_TEST_SUITE_P(Hops, LossyHops, ::testing::Values(0, 1, 2),
                         hop_name);

TEST(Failure, WritePathSurvivesLoss) {
  TestbedConfig cfg;
  cfg.mode = PassMode::NCache;
  cfg.fs_cache_blocks = 64;  // force flush traffic through lossy iSCSI
  Testbed tb(cfg);
  tb.start_nfs();

  int counter = 0;
  tb.storage_node().stack.nic(0).set_egress_filter(
      [&](proto::Frame&) { return ++counter % 17 != 0; });

  run_on(tb, [&]() -> Task<void> {
    auto& client = tb.nfs_client(0);
    auto fh = co_await client.create(fs::kRootIno, "w.bin");
    EXPECT_TRUE(fh);
    if (!fh) co_return;
    std::vector<std::byte> data(64 * 1024);
    fs::fill_content(std::uint32_t(*fh), 0, data);
    std::span<const std::byte> d(data);
    EXPECT_EQ(co_await client.write(*fh, 0, d.subspan(0, 32768)), Status::Ok);
    EXPECT_EQ(co_await client.write(*fh, 32768, d.subspan(32768)), Status::Ok);
    co_await tb.fs().sync();
    auto r1 = co_await client.read(*fh, 0, 32768);
    auto r2 = co_await client.read(*fh, 32768, 32768);
    MsgBuffer all;
    all.append(std::move(r1.data));
    all.append(std::move(r2.data));
    EXPECT_EQ(all.to_bytes(), data);
  });
}

// ---------------------------------------------------------------------------
// Substitution miss
// ---------------------------------------------------------------------------

TEST(Failure, EvictedKeyBecomesJunkNotCrash) {
  TestbedConfig cfg;
  cfg.mode = PassMode::NCache;
  cfg.ncache_budget_bytes = 1 << 20;  // tiny pool: constant eviction
  cfg.fs_cache_blocks = 2048;
  Testbed tb(cfg);
  std::uint32_t ino = tb.image().add_file("f.bin", 4 << 20);
  tb.start_nfs();

  int junk = 0, ok = 0;
  run_on(tb, [&]() -> Task<void> {
    auto& client = tb.nfs_client(0);
    for (std::uint64_t off = 0; off < (4u << 20); off += 32768) {
      auto r = co_await client.read(ino, off, 32768);
      EXPECT_EQ(r.status, Status::Ok);
      EXPECT_EQ(r.data.size(), 32768u);
      if (r.junk) {
        ++junk;  // key evicted between reply construction and egress
      } else {
        EXPECT_EQ(fs::verify_content(ino, off, r.data.to_bytes()),
                  std::size_t(-1));
        ++ok;
      }
    }
  });
  // The protocol never wedges; most replies are still intact.
  EXPECT_GT(ok, 0);
  EXPECT_EQ(tb.ncache()->stats().substitution_misses > 0, junk > 0);
}

// ---------------------------------------------------------------------------
// Resource exhaustion
// ---------------------------------------------------------------------------

TEST(Failure, VolumeFullPartialWrite) {
  TestbedConfig cfg;
  cfg.mode = PassMode::Original;
  cfg.volume_blocks = 600;  // tiny volume (metadata eats a chunk of it)
  cfg.inode_count = 64;
  Testbed tb(cfg);
  tb.start_nfs();

  run_on(tb, [&]() -> Task<void> {
    auto& client = tb.nfs_client(0);
    auto fh = co_await client.create(fs::kRootIno, "big");
    EXPECT_TRUE(fh);
    if (!fh) co_return;
    // Try to write far more than the volume holds: the server reports
    // NoSpace instead of corrupting anything.
    std::vector<std::byte> chunk(32 * 1024);
    bool saw_enospc = false;
    for (int i = 0; i < 200 && !saw_enospc; ++i) {
      Status s = co_await client.write(*fh, std::uint64_t(i) * chunk.size(),
                                       chunk);
      if (s == Status::NoSpace) saw_enospc = true;
      else EXPECT_EQ(s, Status::Ok);
    }
    EXPECT_TRUE(saw_enospc);
    // The file system still works afterwards.
    auto attr = co_await client.getattr(*fh);
    EXPECT_TRUE(attr);
  });
}

TEST(Failure, InodeExhaustion) {
  TestbedConfig cfg;
  cfg.mode = PassMode::Original;
  cfg.inode_count = 40;  // tiny table
  Testbed tb(cfg);
  tb.start_nfs();

  run_on(tb, [&]() -> Task<void> {
    auto& client = tb.nfs_client(0);
    int created = 0;
    for (int i = 0; i < 60; ++i) {
      auto fh = co_await client.create(fs::kRootIno, "f" + std::to_string(i));
      if (fh) ++created;
    }
    EXPECT_GT(created, 30);
    EXPECT_LT(created, 40);  // inode 0 + root + table limit
    // Removing one frees an inode for reuse.
    EXPECT_EQ(co_await client.remove(fs::kRootIno, "f0"), Status::Ok);
    auto again = co_await client.create(fs::kRootIno, "reuse");
    EXPECT_TRUE(again);
  });
}

// ---------------------------------------------------------------------------
// Cross-mode equivalence
// ---------------------------------------------------------------------------

Task<std::vector<std::byte>> mixed_workload(Testbed& tb) {
  auto& client = tb.nfs_client(0);
  std::vector<std::byte> observed;

  auto fh = co_await client.lookup(fs::kRootIno, "data.bin");
  auto wfh = co_await client.create(fs::kRootIno, "out.bin");

  // Interleave reads, writes, overwrites, metadata.
  for (int round = 0; round < 4; ++round) {
    auto r = co_await client.read(*fh, std::uint64_t(round) * 65536, 32768);
    auto bytes = r.data.to_bytes();
    observed.insert(observed.end(), bytes.begin(), bytes.end());

    std::vector<std::byte> w(16384);
    fs::fill_content(std::uint32_t(*wfh), std::uint64_t(round) * 16384, w);
    (void)co_await client.write(*wfh, std::uint64_t(round) * 16384, w);

    auto attr = co_await client.getattr(*wfh);
    observed.push_back(std::byte(attr->size & 0xff));

    // Read back what we wrote (possibly served from the FHO cache).
    auto rb = co_await client.read(*wfh, std::uint64_t(round) * 16384, 16384);
    auto rb_bytes = rb.data.to_bytes();
    observed.insert(observed.end(), rb_bytes.begin(), rb_bytes.end());
  }
  co_await tb.fs().sync();
  co_return observed;
}

TEST(Equivalence, OriginalAndNCacheAgreeByteForByte) {
  std::vector<std::byte> results[2];
  std::vector<std::byte> storage_after[2];
  PassMode modes[2] = {PassMode::Original, PassMode::NCache};
  for (int i = 0; i < 2; ++i) {
    TestbedConfig cfg;
    cfg.mode = modes[i];
    Testbed tb(cfg);
    std::uint32_t ino = tb.image().add_file("data.bin", 1 << 20);
    (void)ino;
    tb.start_nfs();
    auto t_fn = [&]() -> Task<void> {
      results[i] = co_await mixed_workload(tb);
    };
    sim::sync_wait(tb.loop(), t_fn());
    // Compare a slice of the raw storage volume too (the flushed file).
    storage_after[i] = tb.store().peek(tb.fs().superblock().data_start, 64);
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(storage_after[0], storage_after[1]);
}

TEST(Equivalence, DeterministicAcrossRuns) {
  // Two identical NCache runs are bit-for-bit identical, including timing.
  sim::Time finish[2];
  for (int i = 0; i < 2; ++i) {
    TestbedConfig cfg;
    cfg.mode = PassMode::NCache;
    Testbed tb(cfg);
    std::uint32_t ino = tb.image().add_file("data.bin", 1 << 20);
    tb.start_nfs();
    auto t_fn = [&]() -> Task<void> {
      for (std::uint64_t off = 0; off < (1u << 20); off += 32768) {
        (void)co_await tb.nfs_client(0).read(ino, off, 32768);
      }
    };
    sim::sync_wait(tb.loop(), t_fn());
    finish[i] = tb.loop().now();
  }
  EXPECT_EQ(finish[0], finish[1]);
}

}  // namespace
}  // namespace ncache
