// Differential tests for the hierarchical timer wheel against a reference
// priority queue — the dispatch-order oracle the old event core was built
// on. The wheel replaced the heap for speed; these tests pin down that it
// kept the heap's total order exactly ((time, seq) lexicographic), which
// every same-seed byte-identical BENCH file depends on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "sim/event_loop.h"
#include "sim/timer_wheel.h"

namespace ncache::sim {
namespace {

// xorshift64* — same generator the benches use; fixed seeds keep the test
// deterministic.
std::uint64_t next_rng(std::uint64_t& s) {
  s ^= s >> 12;
  s ^= s << 25;
  s ^= s >> 27;
  return s * 0x2545f4914f6cdd1dull;
}

// Delay mix covering every wheel path: same-tick, level-0/1 near, mid
// levels, top levels, and past-horizon overflow (> ~68.7 simulated s).
Duration random_delay(std::uint64_t& rng) {
  std::uint64_t r = next_rng(rng);
  switch (r % 6) {
    case 0: return 0;                              // same tick
    case 1: return r % 64;                         // level 0
    case 2: return r % 4096;                       // level 1
    case 3: return r % kMillisecond;               // mid levels
    case 4: return r % (60 * kSecond);             // top levels
    default: return r % (200 * kSecond);           // mostly overflow heap
  }
}

TEST(TimerWheelDifferential, MatchesReferencePriorityQueue) {
  TimerWheel wheel;
  using Key = std::pair<Time, std::uint64_t>;  // (at, seq)
  std::priority_queue<Key, std::vector<Key>, std::greater<Key>> ref;

  std::uint64_t rng = 0xd1ffe7e57ull;
  Time now = 0;
  std::uint64_t seq = 0;
  constexpr int kOps = 1'000'000;

  for (int i = 0; i < kOps; ++i) {
    std::uint64_t r = next_rng(rng);
    if (!ref.empty() && r % 100 < 35) {
      TimerWheel::Entry e;
      ASSERT_TRUE(wheel.pop(e));
      Key expect = ref.top();
      ref.pop();
      ASSERT_EQ(e.at, expect.first) << "op " << i;
      ASSERT_EQ(e.seq, expect.second) << "op " << i;
      now = e.at;
    } else {
      Time at = now + random_delay(rng);
      wheel.push(at, seq, InlineCallback{});
      ref.emplace(at, seq);
      ++seq;
    }
    ASSERT_EQ(wheel.size(), ref.size());
  }

  // Drain both completely; the tail must agree too.
  while (!ref.empty()) {
    TimerWheel::Entry e;
    ASSERT_TRUE(wheel.pop(e));
    Key expect = ref.top();
    ref.pop();
    ASSERT_EQ(e.at, expect.first);
    ASSERT_EQ(e.seq, expect.second);
  }
  TimerWheel::Entry e;
  EXPECT_FALSE(wheel.pop(e));
  EXPECT_TRUE(wheel.empty());
}

TEST(TimerWheelDifferential, PeekNeverDisagreesWithPop) {
  TimerWheel wheel;
  std::uint64_t rng = 0x9eec1234ull;
  Time now = 0;
  std::uint64_t seq = 0;
  for (int i = 0; i < 50'000; ++i) {
    std::uint64_t r = next_rng(rng);
    if (!wheel.empty() && r % 3 == 0) {
      const TimerWheel::Entry* p = wheel.peek();
      ASSERT_NE(p, nullptr);
      Time pat = p->at;
      std::uint64_t pseq = p->seq;
      TimerWheel::Entry e;
      ASSERT_TRUE(wheel.pop(e));
      ASSERT_EQ(e.at, pat);
      ASSERT_EQ(e.seq, pseq);
      now = e.at;
    } else {
      wheel.push(now + random_delay(rng), seq++, InlineCallback{});
    }
  }
}

// End-to-end through the EventLoop: N randomized top-level schedules must
// dispatch in stable (time, insertion) order and all be counted.
TEST(TimerWheelDifferential, EventLoopDispatchesInStableTimeOrder) {
  EventLoop loop;
  constexpr int kEvents = 100'000;
  std::uint64_t rng = 0x10af00d5ull;

  struct Ref {
    Time at;
    int id;
  };
  std::vector<Ref> ref;
  ref.reserve(kEvents);
  std::vector<int> fired;
  fired.reserve(kEvents);

  std::uint64_t before = loop.dispatched();
  for (int id = 0; id < kEvents; ++id) {
    Time at = random_delay(rng);  // absolute, loop starts at 0
    ref.push_back({at, id});
    loop.schedule_at(at, [&fired, id] { fired.push_back(id); });
  }
  loop.run();

  ASSERT_EQ(loop.dispatched() - before, std::uint64_t(kEvents));
  ASSERT_EQ(fired.size(), std::size_t(kEvents));
  std::stable_sort(ref.begin(), ref.end(),
                   [](const Ref& a, const Ref& b) { return a.at < b.at; });
  for (int i = 0; i < kEvents; ++i) {
    ASSERT_EQ(fired[i], ref[i].id) << "position " << i;
  }
}

}  // namespace
}  // namespace ncache::sim
