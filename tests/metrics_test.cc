// MetricRegistry + JSON exporter: unit behaviour of the registry itself,
// and the end-to-end round trip the benches rely on — run a window on
// the testbed, dump the registry, parse the dump back, and check it
// agrees with the typed Testbed::Snapshot view.
#include <gtest/gtest.h>

#include "common/json.h"
#include "common/metrics.h"
#include "testbed/testbed.h"
#include "workload/counters.h"
#include "workload/nfs_workloads.h"

namespace ncache {
namespace {

// ---- json::Value ------------------------------------------------------------

TEST(Json, ObjectPreservesInsertionOrderAndOverwrites) {
  auto v = json::Value::object();
  v.set("b", 1);
  v.set("a", 2);
  v.set("b", 3);  // overwrite keeps position
  EXPECT_EQ(v.dump(-1), "{\"b\":3,\"a\":2}");
}

TEST(Json, DumpParseRoundTrip) {
  auto v = json::Value::object();
  v.set("str", "he\"llo\n");
  v.set("int", std::int64_t(-42));
  v.set("dbl", 0.25);
  v.set("flag", true);
  auto arr = json::Value::array();
  arr.push_back(1);
  arr.push_back("two");
  v.set("arr", std::move(arr));

  auto parsed = json::Value::parse(v.dump());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->dump(), v.dump());
  EXPECT_EQ(parsed->find("str")->as_string(), "he\"llo\n");
  EXPECT_EQ(parsed->find("int")->as_int(), -42);
  EXPECT_DOUBLE_EQ(parsed->find("dbl")->as_double(), 0.25);
}

TEST(Json, ParseRejectsGarbage) {
  EXPECT_FALSE(json::Value::parse("{\"a\":").has_value());
  EXPECT_FALSE(json::Value::parse("{} trailing").has_value());
  EXPECT_FALSE(json::Value::parse("nope").has_value());
}

TEST(Json, NonFiniteDoublesDumpAsNull) {
  auto v = json::Value::object();
  v.set("bad", std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(v.dump(-1), "{\"bad\":null}");
}

TEST(Json, FindPathDescendsNestedObjects) {
  auto v = json::Value::object();
  auto inner = json::Value::object();
  inner.set("server", 0.5);
  v.set("cpu", std::move(inner));
  ASSERT_NE(v.find_path("cpu.server"), nullptr);
  EXPECT_DOUBLE_EQ(v.find_path("cpu.server")->as_double(), 0.5);
  EXPECT_EQ(v.find_path("cpu.missing"), nullptr);
  EXPECT_EQ(v.find_path("nope.server"), nullptr);
}

// ---- MetricRegistry ---------------------------------------------------------

TEST(MetricRegistry, SamplesThroughCallbacks) {
  MetricRegistry reg;
  std::uint64_t ops = 0;
  double util = 0.0;
  reg.counter("server", "test.ops", [&] { return ops; });
  reg.gauge("server", "test.util", [&] { return util; });

  ops = 7;
  util = 0.75;
  EXPECT_EQ(reg.counter_value("server", "test.ops"), 7u);
  EXPECT_DOUBLE_EQ(reg.gauge_value("server", "test.util"), 0.75);
  EXPECT_TRUE(reg.has("server", "test.ops"));
  EXPECT_FALSE(reg.has("server", "test.nope"));
  EXPECT_FALSE(reg.has("client0", "test.ops"));
}

TEST(MetricRegistry, ResetAllRunsHooks) {
  MetricRegistry reg;
  std::uint64_t ops = 5;
  reg.counter("server", "test.ops", [&] { return ops; });
  reg.on_reset([&] { ops = 0; });
  reg.reset_all();
  EXPECT_EQ(reg.counter_value("server", "test.ops"), 0u);
}

TEST(MetricRegistry, ToJsonGroupsByNodeInRegistrationOrder) {
  MetricRegistry reg;
  reg.counter("zeta", "a.ops", [] { return std::uint64_t(1); });
  reg.counter("alpha", "b.ops", [] { return std::uint64_t(2); });
  reg.counter("zeta", "c.ops", [] { return std::uint64_t(3); });
  auto js = reg.to_json();
  // First-registration order, NOT alphabetical.
  ASSERT_EQ(js.members().size(), 2u);
  EXPECT_EQ(js.members()[0].first, "zeta");
  EXPECT_EQ(js.members()[1].first, "alpha");
  EXPECT_EQ(js.find("zeta")->members()[0].first, "a.ops");
  EXPECT_EQ(js.find("zeta")->members()[1].first, "c.ops");
  EXPECT_EQ(js.find("zeta")->find("c.ops")->as_int(), 3);
}

TEST(MetricRegistry, HistogramsExportSummaries) {
  MetricRegistry reg;
  LatencyHistogram h;
  h.record(1'000);
  h.record(2'000);
  reg.histogram("server", "test.lat", &h);
  auto js = reg.to_json();
  const auto* lat = js.find("server")->find("test.lat");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->find("count")->as_int(), 2);
  ASSERT_NE(lat->find("p50_ns"), nullptr);
  ASSERT_NE(lat->find("p99_ns"), nullptr);
  EXPECT_EQ(lat->find("max_ns")->as_int(), 2'000);
}

// ---- end-to-end round trip --------------------------------------------------

TEST(MetricsRoundTrip, RegistryDumpMatchesTypedSnapshot) {
  testbed::TestbedConfig cfg;
  cfg.mode = core::PassMode::NCache;
  cfg.volume_blocks = 8 * 1024;
  testbed::Testbed tb(cfg);
  constexpr std::uint64_t kHot = 1 << 20;
  std::uint32_t ino = tb.image().add_file("hot.bin", kHot);
  tb.start_nfs();

  // Warm, then run a short all-hit window.
  auto warm_fn = [&]() -> Task<void> {
    for (std::uint64_t off = 0; off < kHot; off += 32768) {
      (void)co_await tb.nfs_client(0).read(ino, off, 32768);
    }
  };
  sim::sync_wait(tb.loop(), warm_fn());

  workload::StopFlag stop;
  workload::Counters counters;
  for (int ci = 0; ci < tb.client_count(); ++ci) {
    workload::hot_read_worker(tb.nfs_client(ci), ino, kHot, 32768,
                              std::uint32_t(ci + 1), &stop, &counters)
        .detach();
  }
  tb.reset_stats();
  sim::Time window_start = tb.loop().now();
  workload::run_measurement(tb.loop(), stop, 30 * sim::kMillisecond);

  auto snap = tb.snapshot(window_start);
  EXPECT_GT(snap.nfs_requests, 0u);
  EXPECT_GT(snap.server_cpu, 0.0);
  EXPECT_GT(snap.server_logical_copies, 0u);  // NCache mode
  EXPECT_EQ(snap.server_data_copies, 0u);

  // Serialize the registry, parse the text back, and check the typed
  // view against the parsed fields — the full bench-telemetry loop.
  // Doubles travel through the dumper's fixed %.9g format, so parsed
  // gauges agree with the exact values to 9 significant digits.
  constexpr double kFmtTol = 1e-8;
  auto parsed = json::Value::parse(tb.metrics().to_json().dump());
  ASSERT_TRUE(parsed.has_value());

  const auto* server = parsed->find("server0");
  ASSERT_NE(server, nullptr);
  EXPECT_NEAR(server->find("cpu.utilization")->as_double(), snap.server_cpu,
              kFmtTol);
  EXPECT_EQ(std::uint64_t(server->find("nfs.requests")->as_int()),
            snap.nfs_requests);
  EXPECT_EQ(std::uint64_t(server->find("nfs.read_bytes")->as_int()),
            snap.read_bytes_served);
  EXPECT_EQ(std::uint64_t(server->find("copy.data_ops")->as_int()),
            snap.server_data_copies);
  EXPECT_EQ(std::uint64_t(server->find("copy.logical_ops")->as_int()),
            snap.server_logical_copies);
  EXPECT_NEAR(server->find("nic0.tx.utilization")->as_double(),
              snap.server_link_util, kFmtTol);

  const auto* storage = parsed->find("storage0");
  ASSERT_NE(storage, nullptr);
  EXPECT_NEAR(storage->find("cpu.utilization")->as_double(), snap.storage_cpu,
              kFmtTol);

  // Client-side CPUs exist and the typed max matches the parsed max.
  double client_max = 0.0;
  for (int i = 0; i < tb.client_count(); ++i) {
    const auto* c = parsed->find("client" + std::to_string(i));
    ASSERT_NE(c, nullptr);
    client_max =
        std::max(client_max, c->find("cpu.utilization")->as_double());
  }
  EXPECT_NEAR(client_max, snap.client_cpu_max, kFmtTol);
}

TEST(MetricsRoundTrip, SimCountersAppearInRegistryDump) {
  testbed::TestbedConfig cfg;
  cfg.volume_blocks = 8 * 1024;
  testbed::Testbed tb(cfg);
  tb.start_nfs();

  EXPECT_TRUE(tb.metrics().has("sim", "clamped_events"));
  EXPECT_TRUE(tb.metrics().has("sim", "netbuf.slab_hits"));
  EXPECT_TRUE(tb.metrics().has("sim", "netbuf.slab_misses"));

  auto parsed = json::Value::parse(tb.metrics().to_json().dump());
  ASSERT_TRUE(parsed.has_value());
  const auto* sim_node = parsed->find("sim");
  ASSERT_NE(sim_node, nullptr);
  ASSERT_NE(sim_node->find("clamped_events"), nullptr);
  EXPECT_EQ(std::uint64_t(sim_node->find("clamped_events")->as_int()),
            tb.loop().clamped_events());
}

TEST(MetricsRoundTrip, ResetStatsZeroesTheWindow) {
  testbed::TestbedConfig cfg;
  cfg.volume_blocks = 8 * 1024;
  testbed::Testbed tb(cfg);
  std::uint32_t ino = tb.image().add_file("f.bin", 64 * 1024);
  tb.start_nfs();
  auto t_fn = [&]() -> Task<void> {
    (void)co_await tb.nfs_client(0).read(ino, 0, 32768);
  };
  sim::sync_wait(tb.loop(), t_fn());
  EXPECT_GT(tb.metrics().counter_value("server0", "nfs.requests"), 0u);
  EXPECT_GT(tb.metrics().counter_value("server0", "copy.data_ops"), 0u);

  tb.reset_stats();
  EXPECT_EQ(tb.metrics().counter_value("server0", "nfs.requests"), 0u);
  EXPECT_EQ(tb.metrics().counter_value("server0", "copy.data_ops"), 0u);
  EXPECT_EQ(tb.metrics().counter_value("server0", "nic0.tx.frames"), 0u);
}

}  // namespace
}  // namespace ncache
