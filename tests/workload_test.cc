// Tests for the workload generators: trace round-trip + replay semantics,
// web file-set construction (sizes, Zipf skew), SPECsfs mix behaviour, and
// the measurement driver.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/zipf.h"
#include "http/khttpd.h"
#include "testbed/testbed.h"
#include "workload/nfs_workloads.h"
#include "workload/trace.h"
#include "workload/web_workloads.h"

namespace ncache::workload {
namespace {

using core::PassMode;
using testbed::Testbed;
using testbed::TestbedConfig;

TEST(Trace, FormatParseRoundTrip) {
  std::vector<TraceOp> ops = {
      {0, TraceOpType::Read, 5, 0, 32768, ""},
      {1000 * sim::kMicrosecond, TraceOpType::Write, 5, 32768, 4096, ""},
      {2000 * sim::kMicrosecond, TraceOpType::Getattr, 5, 0, 0, ""},
      {2500 * sim::kMicrosecond, TraceOpType::Lookup, 0, 0, 0, "file.txt"},
  };
  std::string text = TracePlayer::format(ops);
  auto parsed = TracePlayer::parse(text);
  EXPECT_EQ(parsed, ops);
}

TEST(Trace, ParseSkipsCommentsRejectsGarbage) {
  auto ops = TracePlayer::parse("# comment\n\n10 read 1 0 4096\n");
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].at, 10 * sim::kMicrosecond);
  EXPECT_THROW(TracePlayer::parse("10 chmod 1\n"), std::invalid_argument);
  EXPECT_THROW(TracePlayer::parse("nonsense\n"), std::invalid_argument);
}

TEST(Trace, SynthSequentialCoversFile) {
  auto ops = TracePlayer::synth_sequential_read(7, 100'000, 32768,
                                                sim::kMillisecond);
  ASSERT_EQ(ops.size(), 4u);
  EXPECT_EQ(ops[3].len, 100'000u - 3 * 32768);
  std::uint64_t total = 0;
  for (auto& op : ops) total += op.len;
  EXPECT_EQ(total, 100'000u);
  EXPECT_EQ(ops[2].at, 2 * sim::kMillisecond);
}

TEST(Trace, ClosedLoopReplayAgainstServer) {
  TestbedConfig cfg;
  cfg.mode = PassMode::Original;
  Testbed tb(cfg);
  auto ino = tb.image().add_file("t.bin", 256 * 1024);
  tb.start_nfs();

  auto ops = TracePlayer::synth_sequential_read(ino, 256 * 1024, 32768,
                                                100 * sim::kMicrosecond);
  TracePlayer player(tb.loop(), tb.nfs_client(0), ops);
  Counters counters;
  auto t_fn = [&]() -> Task<void> { co_await player.play_closed(&counters); };
  sim::sync_wait(tb.loop(), t_fn());
  EXPECT_EQ(counters.ops, 8u);
  EXPECT_EQ(counters.bytes, 256u * 1024);
  EXPECT_EQ(counters.errors, 0u);
  EXPECT_GT(counters.latency.mean_ns(), 0.0);
}

TEST(Trace, OpenLoopReplayCompletesAllOps) {
  TestbedConfig cfg;
  cfg.mode = PassMode::NCache;
  Testbed tb(cfg);
  auto ino = tb.image().add_file("t.bin", 512 * 1024);
  tb.start_nfs();

  auto ops = TracePlayer::synth_sequential_read(ino, 512 * 1024, 16384,
                                                50 * sim::kMicrosecond);
  TracePlayer player(tb.loop(), tb.nfs_client(0), ops);
  Counters counters;
  auto t_fn = [&]() -> Task<void> {
    co_await player.play_open(&counters, /*speedup=*/2.0);
  };
  sim::sync_wait(tb.loop(), t_fn());
  EXPECT_EQ(counters.ops, 32u);
  EXPECT_EQ(counters.bytes, 512u * 1024);
}

TEST(WebFileSet, RespectsWorkingSetAndMean) {
  sim::EventLoop loop;
  sim::CostModel costs;
  blockdev::BlockStore store(loop, costs, "st", 64 * 1024);
  fs::FsImageBuilder image(store, 64 * 1024, 8192);
  WebFileSet set = build_web_fileset(image, 20 << 20, 75 * 1024, 1);

  EXPECT_GE(set.total_bytes, 20u << 20);
  EXPECT_EQ(set.paths.size(), set.sizes.size());
  double mean = double(set.total_bytes) / double(set.paths.size());
  // Mean within 2x either way of the target (the class mix is coarse).
  EXPECT_GT(mean, 75 * 1024 / 2.0);
  EXPECT_LT(mean, 75 * 1024 * 2.0);
}

TEST(WebFileSet, DeterministicPerSeed) {
  sim::EventLoop loop;
  sim::CostModel costs;
  blockdev::BlockStore s1(loop, costs, "a", 32 * 1024);
  blockdev::BlockStore s2(loop, costs, "b", 32 * 1024);
  fs::FsImageBuilder i1(s1, 32 * 1024, 4096);
  fs::FsImageBuilder i2(s2, 32 * 1024, 4096);
  WebFileSet a = build_web_fileset(i1, 5 << 20, 75 * 1024, 9);
  WebFileSet b = build_web_fileset(i2, 5 << 20, 75 * 1024, 9);
  EXPECT_EQ(a.sizes, b.sizes);
}

TEST(Workers, HotReadWorkerAccumulates) {
  TestbedConfig cfg;
  cfg.mode = PassMode::NCache;
  Testbed tb(cfg);
  auto ino = tb.image().add_file("hot.bin", 5 << 20);  // the 5 MB hot set
  tb.start_nfs();

  // Warm the caches with one sequential pass (the all-hit workload is
  // measured against a resident file).
  auto warm_fn = [&]() -> Task<void> {
    for (std::uint64_t off = 0; off < (5u << 20); off += 32768) {
      (void)co_await tb.nfs_client(0).read(ino, off, 32768);
    }
  };
  sim::sync_wait(tb.loop(), warm_fn());

  StopFlag stop;
  Counters counters;
  hot_read_worker(tb.nfs_client(0), ino, 5 << 20, 32768, 1, &stop, &counters)
      .detach();
  hot_read_worker(tb.nfs_client(1), ino, 5 << 20, 32768, 2, &stop, &counters)
      .detach();
  run_measurement(tb.loop(), stop, 200 * sim::kMillisecond);

  EXPECT_EQ(stop.live_workers, 0);
  EXPECT_GT(counters.ops, 100u);
  EXPECT_EQ(counters.errors, 0u);
}

TEST(Workers, SequentialReaderWrapsAround) {
  TestbedConfig cfg;
  cfg.mode = PassMode::Original;
  cfg.fs_cache_blocks = 64;
  Testbed tb(cfg);
  auto ino = tb.image().add_file("seq.bin", 1 << 20);
  tb.start_nfs();

  StopFlag stop;
  Counters counters;
  sequential_read_worker(tb.nfs_client(0), ino, 1 << 20, 32768, 0, &stop,
                         &counters)
      .detach();
  run_measurement(tb.loop(), stop, 300 * sim::kMillisecond);
  // 1 MB / 32 KB = 32 requests per pass; at GbE speeds several passes fit.
  EXPECT_GT(counters.ops, 32u);
  EXPECT_EQ(counters.errors, 0u);
}

TEST(Workers, SpecSfsMixProducesBothKinds) {
  TestbedConfig cfg;
  cfg.mode = PassMode::NCache;
  Testbed tb(cfg);
  auto files = std::make_shared<
      std::vector<std::pair<std::uint64_t, std::uint64_t>>>();
  for (int i = 0; i < 20; ++i) {
    std::uint64_t size = 64 * 1024;
    auto ino = tb.image().add_file("sfs" + std::to_string(i), size);
    files->push_back({ino, size});
  }
  tb.start_nfs();

  StopFlag stop;
  Counters counters;
  SpecSfsConfig sc;
  sc.data_op_fraction = 0.5;
  specsfs_worker(tb.nfs_client(0), files, sc, 0, &stop, &counters).detach();
  specsfs_worker(tb.nfs_client(1), files, sc, 1, &stop, &counters).detach();
  run_measurement(tb.loop(), stop, 300 * sim::kMillisecond);

  EXPECT_GT(counters.ops, 50u);
  EXPECT_EQ(counters.errors, 0u);
  // Server saw reads, writes AND metadata ops.
  EXPECT_GT(tb.nfs_server().stats().reads, 0u);
  EXPECT_GT(tb.nfs_server().stats().writes, 0u);
  EXPECT_GT(tb.nfs_server().stats().metadata_ops, 0u);
}

TEST(Trace, RecordedZipfTraceReplaysDeterministically) {
  // Record: sample a Zipf-popular op sequence into a trace, push it
  // through the text format (as a file on disk would), and replay the
  // parsed copy on two fresh same-config testbeds. Everything observable
  // must match run-to-run: op/byte/error counts, latency distribution,
  // and the server-side counters.
  auto record = [](const std::vector<std::uint64_t>& fhs) {
    ZipfSampler zipf(fhs.size(), 0.9);
    Pcg32 rng(/*seed=*/4242, /*stream=*/7);
    std::vector<TraceOp> ops;
    for (int i = 0; i < 200; ++i) {
      TraceOp op;
      op.at = sim::Duration(i) * 500 * sim::kMicrosecond;
      op.type = TraceOpType::Read;
      op.fh = fhs[zipf.sample(rng)];
      op.offset = 32768ull * rng.below(2);
      op.len = 32768;
      ops.push_back(op);
    }
    return ops;
  };

  struct Replay {
    Counters counters;
    std::uint64_t server_reads = 0;
    std::uint64_t server_read_bytes = 0;
    std::uint64_t p50 = 0;
    std::uint64_t p99 = 0;
  };
  auto replay = [&](const std::string& text) {
    TestbedConfig cfg;
    cfg.mode = PassMode::NCache;
    Testbed tb(cfg);
    std::vector<std::uint64_t> fhs;
    for (int i = 0; i < 16; ++i) {
      fhs.push_back(tb.image().add_file("t" + std::to_string(i), 64 * 1024));
    }
    tb.start_nfs();
    // The trace was recorded against the same deterministic image, so the
    // file handles in the text match this run's inodes.
    TracePlayer player(tb.loop(), tb.nfs_client(0), TracePlayer::parse(text));
    Replay r;
    sim::sync_wait(tb.loop(), player.play_closed(&r.counters));
    r.server_reads = tb.nfs_server().stats().reads;
    r.server_read_bytes = tb.nfs_server().stats().read_bytes;
    r.p50 = r.counters.latency.quantile_ns(0.5);
    r.p99 = r.counters.latency.quantile_ns(0.99);
    return r;
  };

  // The recorded handles come from the deterministic image builder: build
  // one throwaway testbed just to learn them.
  std::vector<std::uint64_t> fhs;
  {
    TestbedConfig cfg;
    Testbed tb(cfg);
    for (int i = 0; i < 16; ++i) {
      fhs.push_back(tb.image().add_file("t" + std::to_string(i), 64 * 1024));
    }
  }
  std::string text = TracePlayer::format(record(fhs));
  EXPECT_EQ(TracePlayer::parse(text), record(fhs));  // record round-trips

  Replay a = replay(text);
  Replay b = replay(text);
  EXPECT_EQ(a.counters.ops, 200u);
  EXPECT_EQ(a.counters.errors, 0u);
  EXPECT_EQ(a.counters.ops, b.counters.ops);
  EXPECT_EQ(a.counters.bytes, b.counters.bytes);
  EXPECT_EQ(a.counters.latency.count(), b.counters.latency.count());
  EXPECT_EQ(a.counters.latency.mean_ns(), b.counters.latency.mean_ns());
  EXPECT_EQ(a.p50, b.p50);
  EXPECT_EQ(a.p99, b.p99);
  EXPECT_EQ(a.server_reads, b.server_reads);
  EXPECT_EQ(a.server_read_bytes, b.server_read_bytes);
}

TEST(Driver, RunMeasurementStopsWorkers) {
  sim::EventLoop loop;
  StopFlag stop;
  int iterations = 0;
  auto worker_fn = [](sim::EventLoop& l, StopFlag* s, int* iters) -> Task<void> {
    ++s->live_workers;
    while (!s->stopped) {
      co_await sim::sleep_for(l, sim::kMillisecond);
      ++*iters;
    }
    --s->live_workers;
  };
  worker_fn(loop, &stop, &iterations).detach();
  auto window = run_measurement(loop, stop, 100 * sim::kMillisecond);
  EXPECT_EQ(window, 100 * sim::kMillisecond);
  EXPECT_EQ(stop.live_workers, 0);
  EXPECT_NEAR(iterations, 100, 2);
}

}  // namespace
}  // namespace ncache::workload
