// Tests for the workload generators: trace round-trip + replay semantics,
// web file-set construction (sizes, Zipf skew), SPECsfs mix behaviour, and
// the measurement driver.
#include <gtest/gtest.h>

#include "http/khttpd.h"
#include "testbed/testbed.h"
#include "workload/nfs_workloads.h"
#include "workload/trace.h"
#include "workload/web_workloads.h"

namespace ncache::workload {
namespace {

using core::PassMode;
using testbed::Testbed;
using testbed::TestbedConfig;

TEST(Trace, FormatParseRoundTrip) {
  std::vector<TraceOp> ops = {
      {0, TraceOpType::Read, 5, 0, 32768, ""},
      {1000 * sim::kMicrosecond, TraceOpType::Write, 5, 32768, 4096, ""},
      {2000 * sim::kMicrosecond, TraceOpType::Getattr, 5, 0, 0, ""},
      {2500 * sim::kMicrosecond, TraceOpType::Lookup, 0, 0, 0, "file.txt"},
  };
  std::string text = TracePlayer::format(ops);
  auto parsed = TracePlayer::parse(text);
  EXPECT_EQ(parsed, ops);
}

TEST(Trace, ParseSkipsCommentsRejectsGarbage) {
  auto ops = TracePlayer::parse("# comment\n\n10 read 1 0 4096\n");
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].at, 10 * sim::kMicrosecond);
  EXPECT_THROW(TracePlayer::parse("10 chmod 1\n"), std::invalid_argument);
  EXPECT_THROW(TracePlayer::parse("nonsense\n"), std::invalid_argument);
}

TEST(Trace, SynthSequentialCoversFile) {
  auto ops = TracePlayer::synth_sequential_read(7, 100'000, 32768,
                                                sim::kMillisecond);
  ASSERT_EQ(ops.size(), 4u);
  EXPECT_EQ(ops[3].len, 100'000u - 3 * 32768);
  std::uint64_t total = 0;
  for (auto& op : ops) total += op.len;
  EXPECT_EQ(total, 100'000u);
  EXPECT_EQ(ops[2].at, 2 * sim::kMillisecond);
}

TEST(Trace, ClosedLoopReplayAgainstServer) {
  TestbedConfig cfg;
  cfg.mode = PassMode::Original;
  Testbed tb(cfg);
  auto ino = tb.image().add_file("t.bin", 256 * 1024);
  tb.start_nfs();

  auto ops = TracePlayer::synth_sequential_read(ino, 256 * 1024, 32768,
                                                100 * sim::kMicrosecond);
  TracePlayer player(tb.loop(), tb.nfs_client(0), ops);
  Counters counters;
  auto t_fn = [&]() -> Task<void> { co_await player.play_closed(&counters); };
  sim::sync_wait(tb.loop(), t_fn());
  EXPECT_EQ(counters.ops, 8u);
  EXPECT_EQ(counters.bytes, 256u * 1024);
  EXPECT_EQ(counters.errors, 0u);
  EXPECT_GT(counters.latency.mean_ns(), 0.0);
}

TEST(Trace, OpenLoopReplayCompletesAllOps) {
  TestbedConfig cfg;
  cfg.mode = PassMode::NCache;
  Testbed tb(cfg);
  auto ino = tb.image().add_file("t.bin", 512 * 1024);
  tb.start_nfs();

  auto ops = TracePlayer::synth_sequential_read(ino, 512 * 1024, 16384,
                                                50 * sim::kMicrosecond);
  TracePlayer player(tb.loop(), tb.nfs_client(0), ops);
  Counters counters;
  auto t_fn = [&]() -> Task<void> {
    co_await player.play_open(&counters, /*speedup=*/2.0);
  };
  sim::sync_wait(tb.loop(), t_fn());
  EXPECT_EQ(counters.ops, 32u);
  EXPECT_EQ(counters.bytes, 512u * 1024);
}

TEST(WebFileSet, RespectsWorkingSetAndMean) {
  sim::EventLoop loop;
  sim::CostModel costs;
  blockdev::BlockStore store(loop, costs, "st", 64 * 1024);
  fs::FsImageBuilder image(store, 64 * 1024, 8192);
  WebFileSet set = build_web_fileset(image, 20 << 20, 75 * 1024, 1);

  EXPECT_GE(set.total_bytes, 20u << 20);
  EXPECT_EQ(set.paths.size(), set.sizes.size());
  double mean = double(set.total_bytes) / double(set.paths.size());
  // Mean within 2x either way of the target (the class mix is coarse).
  EXPECT_GT(mean, 75 * 1024 / 2.0);
  EXPECT_LT(mean, 75 * 1024 * 2.0);
}

TEST(WebFileSet, DeterministicPerSeed) {
  sim::EventLoop loop;
  sim::CostModel costs;
  blockdev::BlockStore s1(loop, costs, "a", 32 * 1024);
  blockdev::BlockStore s2(loop, costs, "b", 32 * 1024);
  fs::FsImageBuilder i1(s1, 32 * 1024, 4096);
  fs::FsImageBuilder i2(s2, 32 * 1024, 4096);
  WebFileSet a = build_web_fileset(i1, 5 << 20, 75 * 1024, 9);
  WebFileSet b = build_web_fileset(i2, 5 << 20, 75 * 1024, 9);
  EXPECT_EQ(a.sizes, b.sizes);
}

TEST(Workers, HotReadWorkerAccumulates) {
  TestbedConfig cfg;
  cfg.mode = PassMode::NCache;
  Testbed tb(cfg);
  auto ino = tb.image().add_file("hot.bin", 5 << 20);  // the 5 MB hot set
  tb.start_nfs();

  // Warm the caches with one sequential pass (the all-hit workload is
  // measured against a resident file).
  auto warm_fn = [&]() -> Task<void> {
    for (std::uint64_t off = 0; off < (5u << 20); off += 32768) {
      (void)co_await tb.nfs_client(0).read(ino, off, 32768);
    }
  };
  sim::sync_wait(tb.loop(), warm_fn());

  StopFlag stop;
  Counters counters;
  hot_read_worker(tb.nfs_client(0), ino, 5 << 20, 32768, 1, &stop, &counters)
      .detach();
  hot_read_worker(tb.nfs_client(1), ino, 5 << 20, 32768, 2, &stop, &counters)
      .detach();
  run_measurement(tb.loop(), stop, 200 * sim::kMillisecond);

  EXPECT_EQ(stop.live_workers, 0);
  EXPECT_GT(counters.ops, 100u);
  EXPECT_EQ(counters.errors, 0u);
}

TEST(Workers, SequentialReaderWrapsAround) {
  TestbedConfig cfg;
  cfg.mode = PassMode::Original;
  cfg.fs_cache_blocks = 64;
  Testbed tb(cfg);
  auto ino = tb.image().add_file("seq.bin", 1 << 20);
  tb.start_nfs();

  StopFlag stop;
  Counters counters;
  sequential_read_worker(tb.nfs_client(0), ino, 1 << 20, 32768, 0, &stop,
                         &counters)
      .detach();
  run_measurement(tb.loop(), stop, 300 * sim::kMillisecond);
  // 1 MB / 32 KB = 32 requests per pass; at GbE speeds several passes fit.
  EXPECT_GT(counters.ops, 32u);
  EXPECT_EQ(counters.errors, 0u);
}

TEST(Workers, SpecSfsMixProducesBothKinds) {
  TestbedConfig cfg;
  cfg.mode = PassMode::NCache;
  Testbed tb(cfg);
  auto files = std::make_shared<
      std::vector<std::pair<std::uint64_t, std::uint64_t>>>();
  for (int i = 0; i < 20; ++i) {
    std::uint64_t size = 64 * 1024;
    auto ino = tb.image().add_file("sfs" + std::to_string(i), size);
    files->push_back({ino, size});
  }
  tb.start_nfs();

  StopFlag stop;
  Counters counters;
  SpecSfsConfig sc;
  sc.data_op_fraction = 0.5;
  specsfs_worker(tb.nfs_client(0), files, sc, 0, &stop, &counters).detach();
  specsfs_worker(tb.nfs_client(1), files, sc, 1, &stop, &counters).detach();
  run_measurement(tb.loop(), stop, 300 * sim::kMillisecond);

  EXPECT_GT(counters.ops, 50u);
  EXPECT_EQ(counters.errors, 0u);
  // Server saw reads, writes AND metadata ops.
  EXPECT_GT(tb.nfs_server().stats().reads, 0u);
  EXPECT_GT(tb.nfs_server().stats().writes, 0u);
  EXPECT_GT(tb.nfs_server().stats().metadata_ops, 0u);
}

TEST(Driver, RunMeasurementStopsWorkers) {
  sim::EventLoop loop;
  StopFlag stop;
  int iterations = 0;
  auto worker_fn = [](sim::EventLoop& l, StopFlag* s, int* iters) -> Task<void> {
    ++s->live_workers;
    while (!s->stopped) {
      co_await sim::sleep_for(l, sim::kMillisecond);
      ++*iters;
    }
    --s->live_workers;
  };
  worker_fn(loop, &stop, &iterations).detach();
  auto window = run_measurement(loop, stop, 100 * sim::kMillisecond);
  EXPECT_EQ(window, 100 * sim::kMillisecond);
  EXPECT_EQ(stop.live_workers, 0);
  EXPECT_NEAR(iterations, 100, 2);
}

}  // namespace
}  // namespace ncache::workload
