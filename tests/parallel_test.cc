// SMP server model + parallel deterministic simulation engine.
//
//  * ParallelEngine unit coverage: conservative windows, cross-domain
//    staging, the (time, src_domain, seq) merge order, clock alignment,
//    and thread-count independence of the executed schedule.
//  * SMP CpuModel regressions: charge() attribution follows the executing
//    core (not core 0), the deterministic steal rule, and K>1-with-RSS-off
//    equivalence to K=1.
//  * cores= topology attribute: builder, text round-trip, validation.
//  * Partitioned worlds (presets::cluster_racks): correct end-to-end NFS
//    bytes, T=1/2/8 runs byte-identical (stream hashes, op counts, final
//    sim clock, metrics JSON), SMP servers spread load across cores and
//    account cross-core cache handoffs.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/zipf.h"
#include "sim/cpu_model.h"
#include "sim/parallel.h"
#include "topo/instantiator.h"
#include "topo/presets.h"
#include "workload/counters.h"

namespace ncache {
namespace {

using core::PassMode;
using nfs::Status;

// ---------------------------------------------------------------------------
// ParallelEngine
// ---------------------------------------------------------------------------

TEST(ParallelEngine, SingleDomainNeedsNoLookahead) {
  sim::EventLoop loop;
  sim::ParallelEngine eng(1);
  eng.add_domain(loop, "only");
  int fired = 0;
  loop.schedule_at(100, [&] { ++fired; });
  loop.schedule_at(200, [&] { ++fired; });
  EXPECT_EQ(eng.run(), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(loop.now(), 200u);
}

TEST(ParallelEngine, MultiDomainRequiresPositiveLookahead) {
  sim::EventLoop a, b;
  sim::ParallelEngine eng(1);
  eng.add_domain(a, "a");
  eng.add_domain(b, "b");
  a.schedule_at(10, [] {});
  EXPECT_THROW(eng.run(), std::logic_error);
}

/// Cross-domain ping-pong through post(): each hop lands `latency` after
/// the send, alternating domains. Exercises the staging path and the
/// conservative window loop end to end.
std::vector<std::pair<unsigned, sim::Time>> ping_pong(unsigned threads,
                                                      int hops) {
  constexpr sim::Duration kLatency = 1'000;
  sim::EventLoop loops[2];
  sim::ParallelEngine eng(threads);
  unsigned ids[2] = {eng.add_domain(loops[0], "a"),
                     eng.add_domain(loops[1], "b")};
  eng.set_lookahead(kLatency);

  std::vector<std::pair<unsigned, sim::Time>> trace;
  std::function<void(unsigned)> hop = [&](unsigned at_domain) {
    trace.emplace_back(at_domain, loops[at_domain].now());
    if (int(trace.size()) >= hops) return;
    unsigned next = 1 - at_domain;
    eng.post(ids[at_domain], ids[next],
             loops[at_domain].now() + kLatency, [&hop, next] { hop(next); });
  };
  loops[0].schedule_at(0, [&] { hop(0); });
  eng.run();
  return trace;
}

TEST(ParallelEngine, CrossDomainPingPong) {
  auto trace = ping_pong(1, 6);
  ASSERT_EQ(trace.size(), 6u);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(trace[std::size_t(i)].first, unsigned(i % 2));
    EXPECT_EQ(trace[std::size_t(i)].second, sim::Time(i) * 1'000);
  }
}

TEST(ParallelEngine, ThreadCountDoesNotChangeTheSchedule) {
  auto t1 = ping_pong(1, 9);
  auto t2 = ping_pong(2, 9);
  auto t8 = ping_pong(8, 9);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(t1, t8);
}

TEST(ParallelEngine, SimultaneousDeliveriesMergeBySourceThenSeq) {
  // Domains a and b both deliver into c at the same instant; the merge
  // must order them (src asc, then per-src send order) — never by which
  // worker finished first.
  sim::EventLoop a, b, c;
  sim::ParallelEngine eng(4);
  unsigned ia = eng.add_domain(a, "a");
  unsigned ib = eng.add_domain(b, "b");
  unsigned ic = eng.add_domain(c, "c");
  eng.set_lookahead(500);

  std::vector<int> order;
  a.schedule_at(0, [&] {
    eng.post(ia, ic, 500, [&] { order.push_back(10); });
    eng.post(ia, ic, 500, [&] { order.push_back(11); });
  });
  b.schedule_at(0, [&] {
    eng.post(ib, ic, 500, [&] { order.push_back(20); });
  });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{10, 11, 20}));
  EXPECT_EQ(c.now(), 500u);
}

TEST(ParallelEngine, RunUntilAlignsEveryDomainClock) {
  sim::EventLoop a, b;
  sim::ParallelEngine eng(2);
  eng.add_domain(a, "a");
  eng.add_domain(b, "b");
  eng.set_lookahead(100);
  int fired = 0;
  a.schedule_at(50, [&] { ++fired; });
  b.schedule_at(7'000, [&] { ++fired; });  // beyond the deadline
  eng.run_until(5'000);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(a.now(), 5'000u);
  EXPECT_EQ(b.now(), 5'000u);
  EXPECT_EQ(eng.now(), 5'000u);
}

TEST(ParallelEngine, WorkerExceptionPropagatesToCaller) {
  sim::EventLoop a, b;
  sim::ParallelEngine eng(2);
  eng.add_domain(a, "a");
  eng.add_domain(b, "b");
  eng.set_lookahead(100);
  a.schedule_at(10, [] { throw std::runtime_error("boom in domain"); });
  EXPECT_THROW(eng.run(), std::runtime_error);
}

// ---------------------------------------------------------------------------
// SMP CpuModel
// ---------------------------------------------------------------------------

TEST(SmpCpu, ChargeInsideCompletionFollowsExecutingCore) {
  sim::EventLoop loop;
  sim::CpuModel cpu(loop, "cpu", 4);
  // The completion runs inside core 2's context; the nested fire-and-forget
  // charge must land on core 2, not default to core 0 (the attribution bug
  // this PR fixes).
  cpu.submit_on(2, 100, [&] { cpu.charge(50); });
  loop.run();
  EXPECT_EQ(cpu.core_busy_ns(2), 150);
  EXPECT_EQ(cpu.core_busy_ns(0), 0);
  EXPECT_EQ(cpu.core_items(2), 2u);
}

TEST(SmpCpu, CoroutineResumesInsideSteeredCoreContext) {
  sim::EventLoop loop;
  sim::CpuModel cpu(loop, "cpu", 4);
  unsigned seen = sim::CpuModel::kNoCore;
  auto t = [&]() -> Task<void> {
    co_await cpu.run_on(3, 100);
    seen = cpu.current_core();
    cpu.charge(25);  // synchronous follow-on work: same core
  };
  sim::sync_wait(loop, t());
  EXPECT_EQ(seen, 3u);
  EXPECT_EQ(cpu.core_busy_ns(3), 125);
}

TEST(SmpCpu, DeterministicStealToLowestIdleCore) {
  sim::EventLoop loop;
  sim::CpuModel cpu(loop, "cpu", 3);
  cpu.set_steal_threshold(100);
  cpu.submit_on(0, 1'000, nullptr);  // core 0 now backlogged past 100 ns
  cpu.submit_on(0, 1'000, nullptr);  // stolen by core 1 (lowest idle)
  cpu.submit_on(0, 1'000, nullptr);  // stolen by core 2
  cpu.submit_on(0, 1'000, nullptr);  // nobody idle: stays on core 0
  EXPECT_EQ(cpu.steals(), 2u);
  EXPECT_EQ(cpu.core_busy_ns(0), 2'000);
  EXPECT_EQ(cpu.core_busy_ns(1), 1'000);
  EXPECT_EQ(cpu.core_busy_ns(2), 1'000);
}

TEST(SmpCpu, RssOffSteersEverythingToCoreZero) {
  sim::EventLoop loop;
  sim::CpuModel cpu(loop, "cpu", 4);
  cpu.set_rss(false);
  for (std::uint64_t h = 0; h < 64; ++h) EXPECT_EQ(cpu.steer(h), 0u);
  cpu.set_rss(true);
  bool spread = false;
  for (std::uint64_t h = 0; h < 64 && !spread; ++h) spread = cpu.steer(h) != 0;
  EXPECT_TRUE(spread) << "RSS should use more than one core";
}

// ---------------------------------------------------------------------------
// cores= topology attribute
// ---------------------------------------------------------------------------

TEST(TopologyCores, BuilderRoundTripsThroughText) {
  topo::Topology t = topo::TopologyBuilder("smp")
                         .ether_switch("sw")
                         .target("storage0")
                         .server("server0")
                         .cores(4)
                         .link("storage0", "sw")
                         .link("server0", "sw")
                         .build();
  ASSERT_NE(t.find("server0"), nullptr);
  EXPECT_EQ(t.find("server0")->attrs.at("cores"), "4");
  topo::Topology parsed = topo::Topology::parse(t.describe());
  EXPECT_EQ(parsed, t) << "cores= must survive describe()/parse()";
}

TEST(TopologyCores, BuilderRejectsCoresOffServer) {
  topo::TopologyBuilder b("bad");
  b.ether_switch("sw").client("c0");
  EXPECT_THROW(b.cores(2), topo::TopologyError);
}

topo::Topology with_cores_attr(const std::string& value) {
  topo::TopologyBuilder b("bad");
  b.ether_switch("sw").target("storage0").server("server0");
  b.attr("cores", value);
  b.link("storage0", "sw").link("server0", "sw");
  return b.peek();  // unvalidated
}

TEST(TopologyCores, ValidatorRejectsMalformedCoreCounts) {
  EXPECT_THROW(with_cores_attr("0").validate(), topo::TopologyError);
  EXPECT_THROW(with_cores_attr("65").validate(), topo::TopologyError);
  EXPECT_THROW(with_cores_attr("four").validate(), topo::TopologyError);
  EXPECT_THROW(with_cores_attr("4x").validate(), topo::TopologyError);
  EXPECT_NO_THROW(with_cores_attr("4").validate());
}

TEST(TopologyCores, ValidatorRejectsCoresOnNonServer) {
  topo::TopologyBuilder b("bad");
  b.ether_switch("sw").target("storage0").server("server0");
  b.link("storage0", "sw").link("server0", "sw");
  topo::Topology t = b.peek();
  t.nodes[1].attrs["cores"] = "2";  // storage0
  EXPECT_THROW(t.validate(), topo::TopologyError);
}

// ---------------------------------------------------------------------------
// Partitioned worlds
// ---------------------------------------------------------------------------

/// Closed-loop Zipf reader folding payload bytes into an order-sensitive
/// FNV stream hash (same shape as the cluster parity tests).
Task<void> zipf_worker(nfs::NfsClient* cl, int client,
                       const std::vector<std::uint64_t>* files,
                       const ZipfSampler* zipf, std::uint64_t seed,
                       workload::StopFlag* stop, std::uint64_t* stream_hash,
                       std::uint64_t* ops) {
  ++stop->live_workers;
  Pcg32 rng(seed, 0xA000u + std::uint64_t(client));
  while (!stop->stopped) {
    std::uint64_t fh = (*files)[zipf->sample(rng)];
    std::uint64_t off = 32768ull * rng.below(2);
    auto r = co_await cl->read(std::uint32_t(fh), off, 32768);
    if (r.status == Status::Ok) {
      for (std::byte b : r.data.to_bytes()) {
        *stream_hash = (*stream_hash ^ std::uint64_t(b)) * 0x100000001b3ull;
      }
      ++*ops;
    }
  }
  --stop->live_workers;
}

struct RacksRun {
  std::vector<std::uint64_t> hashes;
  std::uint64_t total_ops = 0;
  sim::Time end_time = 0;
  std::string metrics_json;
  std::uint64_t rounds = 0;
};

struct RacksOptions {
  unsigned threads = 1;
  unsigned cores = 1;
  bool rss = true;
  int racks = 2;
  int clients_per_rack = 2;
  sim::Duration duration = 120 * sim::kMillisecond;
};

RacksRun run_racks(const RacksOptions& opt) {
  topo::WorldConfig cfg;
  cfg.mode = PassMode::NCache;
  cfg.partitioned = true;
  cfg.threads = opt.threads;
  cfg.server_cores = opt.cores;
  cfg.peer_without_balancer = true;
  topo::World world(
      topo::presets::cluster_racks(opt.racks, opt.clients_per_rack), cfg);

  std::vector<std::uint64_t> files;
  for (int i = 0; i < 32; ++i) {
    files.push_back(world.image().add_file("z" + std::to_string(i), 64 * 1024));
  }
  world.start_nfs();
  if (!opt.rss) {
    for (int s = 0; s < world.server_count(); ++s) {
      world.server(s).node->stack.cpu().set_rss(false);
    }
  }

  const int n = world.client_count();
  ZipfSampler zipf(32, 0.98);
  RacksRun run;
  run.hashes.assign(std::size_t(n), 0xcbf29ce484222325ull);
  std::vector<std::uint64_t> ops(std::size_t(n), 0);
  workload::StopFlag stop;
  for (int c = 0; c < n; ++c) {
    unsigned d = world.domain_of("client" + std::to_string(c));
    zipf_worker(&world.nfs_client(c), c, &files, &zipf, 77, &stop,
                &run.hashes[std::size_t(c)], &ops[std::size_t(c)])
        .detach(world.engine().domain_loop(d).reaper());
  }
  workload::run_measurement(world.engine(), stop, opt.duration);
  for (std::uint64_t o : ops) run.total_ops += o;
  run.end_time = world.engine().now();
  run.metrics_json = world.metrics().to_json().dump();
  run.rounds = world.engine().rounds();
  return run;
}

TEST(PartitionedWorld, ServesCorrectBytesAcrossRacks) {
  constexpr std::size_t kSize = 96 * 1024;
  topo::WorldConfig cfg;
  cfg.mode = PassMode::NCache;
  cfg.partitioned = true;
  cfg.peer_without_balancer = true;
  topo::World world(topo::presets::cluster_racks(2, 1), cfg);
  std::uint32_t ino = world.image().add_file("f.bin", kSize);
  world.start_nfs();
  ASSERT_TRUE(world.partitioned());
  EXPECT_THROW(world.loop(), std::logic_error);

  // One reader per rack; every block content-verified against the image.
  std::atomic<int> done{0};
  for (int c = 0; c < world.client_count(); ++c) {
    auto reader = [&world, &done, ino, c]() -> Task<void> {
      for (std::uint64_t off = 0; off < kSize; off += 32768) {
        auto r = co_await world.nfs_client(c).read(ino, off, 32768);
        EXPECT_EQ(r.status, Status::Ok) << "client " << c << " off " << off;
        auto bytes = r.data.to_bytes();
        EXPECT_EQ(fs::verify_content(ino, off, bytes), std::size_t(-1));
      }
      ++done;
    };
    unsigned d = world.domain_of("client" + std::to_string(c));
    reader().detach(world.engine().domain_loop(d).reaper());
  }
  world.engine().run([&] { return done.load() == world.client_count(); });
  EXPECT_EQ(done.load(), world.client_count());
  EXPECT_GT(world.engine().rounds(), 0u);
}

TEST(PartitionedWorld, ThreadCountByteIdentical) {
  RacksOptions opt;
  opt.threads = 1;
  RacksRun t1 = run_racks(opt);
  opt.threads = 2;
  RacksRun t2 = run_racks(opt);
  opt.threads = 8;
  RacksRun t8 = run_racks(opt);

  EXPECT_GT(t1.total_ops, 0u);
  EXPECT_EQ(t1.hashes, t2.hashes) << "T=2 diverged from T=1";
  EXPECT_EQ(t1.hashes, t8.hashes) << "T=8 diverged from T=1";
  EXPECT_EQ(t1.total_ops, t2.total_ops);
  EXPECT_EQ(t1.total_ops, t8.total_ops);
  EXPECT_EQ(t1.end_time, t2.end_time);
  EXPECT_EQ(t1.end_time, t8.end_time);
  EXPECT_EQ(t1.metrics_json, t2.metrics_json)
      << "metrics must not depend on the worker count";
  EXPECT_EQ(t1.metrics_json, t8.metrics_json);
  EXPECT_EQ(t1.rounds, t2.rounds);
  EXPECT_EQ(t1.rounds, t8.rounds);
}

TEST(PartitionedWorld, SmpRssOffMatchesSingleCoreModel) {
  // K=4 with steering forced to core 0 must replay the K=1 run exactly
  // (the SMP model degenerates to the historical single-core one).
  RacksOptions opt;
  RacksRun k1 = run_racks(opt);
  opt.cores = 4;
  opt.rss = false;
  RacksRun k4 = run_racks(opt);
  EXPECT_GT(k1.total_ops, 0u);
  EXPECT_EQ(k1.hashes, k4.hashes);
  EXPECT_EQ(k1.total_ops, k4.total_ops);
  EXPECT_EQ(k1.end_time, k4.end_time);
}

TEST(PartitionedWorld, SmpServersSpreadLoadAndAccountHandoffs) {
  topo::WorldConfig cfg;
  cfg.mode = PassMode::NCache;
  cfg.partitioned = true;
  cfg.peer_without_balancer = true;
  cfg.server_cores = 4;
  topo::World world(topo::presets::cluster_racks(1, 4), cfg);
  std::vector<std::uint64_t> files;
  for (int i = 0; i < 32; ++i) {
    files.push_back(world.image().add_file("z" + std::to_string(i), 64 * 1024));
  }
  world.start_nfs();

  const int n = world.client_count();
  ZipfSampler zipf(32, 0.98);
  std::vector<std::uint64_t> hashes(std::size_t(n), 0xcbf29ce484222325ull);
  std::vector<std::uint64_t> ops(std::size_t(n), 0);
  workload::StopFlag stop;
  for (int c = 0; c < n; ++c) {
    unsigned d = world.domain_of("client" + std::to_string(c));
    zipf_worker(&world.nfs_client(c), c, &files, &zipf, 77, &stop,
                &hashes[std::size_t(c)], &ops[std::size_t(c)])
        .detach(world.engine().domain_loop(d).reaper());
  }
  workload::run_measurement(world.engine(), stop, 120 * sim::kMillisecond);

  sim::CpuModel& cpu = world.server(0).node->stack.cpu();
  ASSERT_EQ(cpu.cores(), 4u);
  int used = 0;
  for (unsigned c = 0; c < cpu.cores(); ++c) {
    if (cpu.core_items(c) > 0) ++used;
  }
  EXPECT_GT(used, 1) << "4 client flows on 4 cores should use more than one";
  // Key ownership (hash of the cache key) is independent of flow steering,
  // so some egress substitutions must cross cores.
  EXPECT_GT(world.server(0).ncache->stats().cross_core_handoffs, 0u);
  // The SMP-only metric rows exist.
  std::string json = world.metrics().to_json().dump();
  EXPECT_NE(json.find("ncache.cross_core_handoff"), std::string::npos);
  EXPECT_NE(json.find("cpu.core1.items"), std::string::npos);
  EXPECT_NE(json.find("cpu.steal"), std::string::npos);
}

TEST(PartitionedWorld, TracksSequentialSingleLoopWorld) {
  // The same topology driven as one sequential loop. The two are NOT
  // byte-identical by design: a single wheel serializes same-nanosecond
  // events across the whole world in insertion order, while the
  // partitioned engine serializes each domain's window in isolation and
  // orders cross-domain ties by (time, src_domain, seq) — a different,
  // equally valid schedule of the same simulated system. (The engine's
  // byte-identity guarantee is across thread counts, tested above.) What
  // must hold: both make progress and the throughput they simulate agrees
  // closely — the tie-order only perturbs interleaving, not the modeled
  // work.
  topo::WorldConfig cfg;
  cfg.mode = PassMode::NCache;
  cfg.partitioned = false;
  cfg.peer_without_balancer = true;
  topo::World world(topo::presets::cluster_racks(2, 2), cfg);
  std::vector<std::uint64_t> files;
  for (int i = 0; i < 32; ++i) {
    files.push_back(world.image().add_file("z" + std::to_string(i), 64 * 1024));
  }
  world.start_nfs();

  const int n = world.client_count();
  ZipfSampler zipf(32, 0.98);
  std::vector<std::uint64_t> hashes(std::size_t(n), 0xcbf29ce484222325ull);
  std::vector<std::uint64_t> ops(std::size_t(n), 0);
  workload::StopFlag stop;
  for (int c = 0; c < n; ++c) {
    zipf_worker(&world.nfs_client(c), c, &files, &zipf, 77, &stop,
                &hashes[std::size_t(c)], &ops[std::size_t(c)])
        .detach(world.loop().reaper());
  }
  workload::run_measurement(world.loop(), stop, 120 * sim::kMillisecond);
  std::uint64_t total = 0;
  for (std::uint64_t o : ops) total += o;

  RacksOptions opt;
  RacksRun part = run_racks(opt);
  EXPECT_GT(total, 0u);
  EXPECT_GT(part.total_ops, 0u);
  double ratio = double(part.total_ops) / double(total);
  EXPECT_GT(ratio, 0.9) << "partitioned run simulated far fewer ops";
  EXPECT_LT(ratio, 1.1) << "partitioned run simulated far more ops";
}

}  // namespace
}  // namespace ncache
