// Coverage for surfaces the larger suites exercise only incidentally:
// switch learning/flooding, NIC filters and meters, stack demux errors,
// HTTP parsing pathologies, image-builder edges, and CPU/link meter
// windows under load.
#include <gtest/gtest.h>

#include "fs/image_builder.h"
#include "http/client.h"
#include "http/khttpd.h"
#include "netbuf/copy_engine.h"
#include "proto/stack.h"
#include "proto/switch.h"
#include "testbed/testbed.h"

namespace ncache {
namespace {

using netbuf::MsgBuffer;
using proto::make_ipv4;

struct Trio {
  Trio()
      : book(std::make_shared<proto::AddressBook>()),
        sw(loop, "sw", costs) {
    for (int i = 0; i < 3; ++i) {
      cpus.push_back(std::make_unique<sim::CpuModel>(loop, "cpu"));
      copiers.push_back(
          std::make_unique<netbuf::CopyEngine>(*cpus.back(), costs));
      stacks.push_back(std::make_unique<proto::NetworkStack>(
          loop, *cpus.back(), *copiers.back(), costs,
          "h" + std::to_string(i), book));
      stacks.back()->add_nic(0xa0 + std::uint64_t(i),
                             make_ipv4(10, 0, 0, std::uint8_t(1 + i)));
      sw.connect(stacks.back()->nic(0));
    }
  }
  sim::EventLoop loop;
  sim::CostModel costs;
  std::shared_ptr<proto::AddressBook> book;
  proto::EthernetSwitch sw;
  std::vector<std::unique_ptr<sim::CpuModel>> cpus;
  std::vector<std::unique_ptr<netbuf::CopyEngine>> copiers;
  std::vector<std::unique_ptr<proto::NetworkStack>> stacks;
};

TEST(Switch, ForwardsOnlyToDestination) {
  Trio t;
  int h2_count = 0, h1_count = 0;
  t.stacks[1]->udp_bind(5, [&](proto::Ipv4Addr, std::uint16_t,
                               proto::Ipv4Addr, std::uint16_t, MsgBuffer) {
    ++h1_count;
  });
  t.stacks[2]->udp_bind(5, [&](proto::Ipv4Addr, std::uint16_t,
                               proto::Ipv4Addr, std::uint16_t, MsgBuffer) {
    ++h2_count;
  });
  t.stacks[0]->udp_send(make_ipv4(10, 0, 0, 1), 5, make_ipv4(10, 0, 0, 2), 5,
                        MsgBuffer::from_string("x"));
  t.loop.run();
  EXPECT_EQ(h1_count, 1);
  EXPECT_EQ(h2_count, 0);
  EXPECT_GE(t.sw.forwarded(), 1u);
  EXPECT_EQ(t.sw.flooded(), 0u);  // static MAC table: no floods
}

TEST(Switch, CrossTrafficSharesDistinctPorts) {
  // h0->h1 and h2->h1 both deliver; h1's single downlink serializes them.
  Trio t;
  int got = 0;
  t.stacks[1]->udp_bind(5, [&](proto::Ipv4Addr, std::uint16_t,
                               proto::Ipv4Addr, std::uint16_t, MsgBuffer) {
    ++got;
  });
  for (int i = 0; i < 10; ++i) {
    t.stacks[0]->udp_send(make_ipv4(10, 0, 0, 1), 5, make_ipv4(10, 0, 0, 2),
                          5, MsgBuffer::from_bytes(std::vector<std::byte>(1000)));
    t.stacks[2]->udp_send(make_ipv4(10, 0, 0, 3), 5, make_ipv4(10, 0, 0, 2),
                          5, MsgBuffer::from_bytes(std::vector<std::byte>(1000)));
  }
  t.loop.run();
  EXPECT_EQ(got, 20);
}

TEST(Nic, IngressFilterDropsAndCounts) {
  Trio t;
  t.stacks[1]->set_ingress_filter([](proto::Frame&) { return false; });
  int got = 0;
  t.stacks[1]->udp_bind(5, [&](proto::Ipv4Addr, std::uint16_t,
                               proto::Ipv4Addr, std::uint16_t, MsgBuffer) {
    ++got;
  });
  t.stacks[0]->udp_send(make_ipv4(10, 0, 0, 1), 5, make_ipv4(10, 0, 0, 2), 5,
                        MsgBuffer::from_string("x"));
  t.loop.run();
  EXPECT_EQ(got, 0);
  EXPECT_EQ(t.stacks[1]->nic(0).dropped(), 1u);
  // The frame still counted as received at the NIC (it reached the host).
  EXPECT_EQ(t.stacks[1]->nic(0).rx_frames().value(), 1u);
}

TEST(Stack, SendFromUnknownSourceIpThrows) {
  Trio t;
  EXPECT_THROW(t.stacks[0]->udp_send(make_ipv4(9, 9, 9, 9), 5,
                                     make_ipv4(10, 0, 0, 2), 5,
                                     MsgBuffer::from_string("x")),
               std::invalid_argument);
  EXPECT_THROW(t.stacks[0]->udp_send(make_ipv4(10, 0, 0, 1), 5,
                                     make_ipv4(10, 9, 9, 9), 5,
                                     MsgBuffer::from_string("x")),
               std::invalid_argument);
}

TEST(Stack, OversizeDatagramRejected) {
  Trio t;
  EXPECT_THROW(
      t.stacks[0]->udp_send(make_ipv4(10, 0, 0, 1), 5, make_ipv4(10, 0, 0, 2),
                            5, MsgBuffer::junk(70000)),
      std::length_error);
}

TEST(Stack, DoubleBindRejected) {
  Trio t;
  auto h = [](proto::Ipv4Addr, std::uint16_t, proto::Ipv4Addr, std::uint16_t,
              MsgBuffer) {};
  t.stacks[0]->udp_bind(7, h);
  EXPECT_THROW(t.stacks[0]->udp_bind(7, h), std::invalid_argument);
  t.stacks[0]->udp_unbind(7);
  EXPECT_NO_THROW(t.stacks[0]->udp_bind(7, h));
}

TEST(Stack, FrameForOtherHostDropped) {
  // Deliver a frame whose IP dst is not local: counted, not dispatched.
  Trio t;
  proto::Frame f;
  f.eth.dst = 0xa1;
  f.eth.src = 0xa0;
  f.ip.src = make_ipv4(10, 0, 0, 1);
  f.ip.dst = make_ipv4(10, 0, 0, 99);
  f.ip.protocol = proto::IpProto::Udp;
  f.udp = proto::UdpHeader{1, 2, 8, 0};
  t.stacks[1]->nic(0).deliver(std::move(f));
  t.loop.run();
  EXPECT_EQ(t.stacks[1]->stats().not_mine_drops, 1u);
}

// ---------------------------------------------------------------------------
// HTTP parsing pathologies
// ---------------------------------------------------------------------------

struct WebRig {
  WebRig() {
    cfg.mode = core::PassMode::Original;
    tb = std::make_unique<testbed::Testbed>(cfg);
    tb->image().add_file("a.html", 5000);
    tb->start_base();
    http::KHttpd::Config hc;
    server = std::make_unique<http::KHttpd>(tb->server_node().stack,
                                            tb->fs(), hc, nullptr);
    server->start();
  }
  testbed::TestbedConfig cfg;
  std::unique_ptr<testbed::Testbed> tb;
  std::unique_ptr<http::KHttpd> server;
};

TEST(HttpParsing, HeaderSplitAcrossSegments) {
  WebRig rig;
  auto fn = [&]() -> Task<void> {
    auto conn = co_await rig.tb->client_node(0).stack.tcp_connect(
        rig.tb->client_ip(0), rig.tb->server_ip(0), 80);
    std::vector<std::byte> got;
    conn->set_data_handler([&](MsgBuffer m) {
      auto b = m.to_bytes();
      got.insert(got.end(), b.begin(), b.end());
    });
    // Drip the request one byte... in three fragments with the terminator
    // straddling the boundary.
    std::string req = "GET /a.html HTTP/1.1\r\nHost: h\r\n\r\n";
    conn->send(MsgBuffer::from_string(req.substr(0, 10)));
    co_await sim::sleep_for(rig.tb->loop(), 5 * sim::kMillisecond);
    conn->send(MsgBuffer::from_string(req.substr(10, req.size() - 12)));
    co_await sim::sleep_for(rig.tb->loop(), 5 * sim::kMillisecond);
    conn->send(MsgBuffer::from_string(req.substr(req.size() - 2)));
    co_await sim::sleep_for(rig.tb->loop(), 100 * sim::kMillisecond);
    std::string text(reinterpret_cast<const char*>(got.data()), got.size());
    EXPECT_NE(text.find("200 OK"), std::string::npos);
    EXPECT_NE(text.find("Content-Length: 5000"), std::string::npos);
  };
  sim::sync_wait(rig.tb->loop(), fn());
}

TEST(HttpParsing, ClientHandlesSplitHeaderAndBody) {
  WebRig rig;
  http::HttpClient client(rig.tb->client_node(0).stack, rig.tb->client_ip(0),
                          rig.tb->server_ip(0));
  auto fn = [&]() -> Task<void> {
    co_await client.connect();
    for (int i = 0; i < 3; ++i) {
      auto r = co_await client.get("/a.html");
      EXPECT_EQ(r.status, 200);
      EXPECT_EQ(r.content_length, 5000u);
    }
  };
  sim::sync_wait(rig.tb->loop(), fn());
  EXPECT_EQ(client.stats().ok, 3u);
}

// ---------------------------------------------------------------------------
// Image builder edges
// ---------------------------------------------------------------------------

TEST(ImageBuilder, RejectsAfterFinishAndBadNames) {
  sim::EventLoop loop;
  sim::CostModel costs;
  blockdev::BlockStore store(loop, costs, "st", 4096);
  fs::FsImageBuilder b(store, 4096, 256);
  EXPECT_EQ(b.add_file("", 100), 0u);
  EXPECT_EQ(b.add_file(std::string(200, 'x'), 100), 0u);
  EXPECT_NE(b.add_file("ok", 100), 0u);
  b.finish();
  EXPECT_TRUE(b.finished());
  EXPECT_THROW(b.add_file("late", 100), std::logic_error);
  EXPECT_THROW(b.finish(), std::logic_error);
}

TEST(ImageBuilder, ZeroByteFile) {
  sim::EventLoop loop;
  sim::CostModel costs;
  blockdev::BlockStore store(loop, costs, "st", 4096);
  fs::FsImageBuilder b(store, 4096, 256);
  std::uint32_t ino = b.add_file("empty", 0);
  ASSERT_NE(ino, 0u);
  b.finish();

  sim::CpuModel cpu(loop, "cpu");
  netbuf::CopyEngine copier(cpu, costs);
  iscsi::LocalBlockClient client(store, copier);
  fs::SimpleFs fsys(loop, client, 64);
  auto fn = [&]() -> Task<void> {
    co_await fsys.mount();
    auto attr = co_await fsys.getattr(ino);
    EXPECT_EQ(attr.size, 0u);
    auto data = co_await fsys.read(ino, 0, 4096);
    EXPECT_TRUE(data.empty());
  };
  sim::sync_wait(loop, fn());
}

TEST(ImageBuilder, ContentBytesDistinctAcrossFilesAndOffsets) {
  // The deterministic pattern must differ between files and along a file,
  // or integrity checks would pass vacuously.
  int same_file = 0, same_offset = 0;
  for (int i = 0; i < 256; ++i) {
    if (fs::content_byte(1, std::uint64_t(i)) ==
        fs::content_byte(2, std::uint64_t(i))) {
      ++same_offset;
    }
    if (fs::content_byte(1, std::uint64_t(i)) ==
        fs::content_byte(1, std::uint64_t(i) + 4096)) {
      ++same_file;
    }
  }
  EXPECT_LT(same_offset, 64);
  EXPECT_LT(same_file, 64);
}

// ---------------------------------------------------------------------------
// Copy engine / meters under the testbed
// ---------------------------------------------------------------------------

TEST(Meters, SnapshotWindowsAreConsistent) {
  testbed::TestbedConfig cfg;
  cfg.mode = core::PassMode::NCache;
  testbed::Testbed tb(cfg);
  std::uint32_t ino = tb.image().add_file("f.bin", 1 << 20);
  tb.start_nfs();

  auto fn = [&]() -> Task<void> {
    for (std::uint64_t off = 0; off < (1u << 20); off += 32768) {
      (void)co_await tb.nfs_client(0).read(ino, off, 32768);
    }
  };
  tb.reset_stats();
  sim::Time t0 = tb.loop().now();
  sim::sync_wait(tb.loop(), fn());
  auto snap = tb.snapshot(t0);

  EXPECT_GT(snap.elapsed_s, 0.0);
  EXPECT_GE(snap.server_cpu, 0.0);
  EXPECT_LE(snap.server_cpu, 1.0);
  EXPECT_GE(snap.storage_cpu, 0.0);
  EXPECT_LE(snap.server_link_util, 1.0);
  EXPECT_EQ(snap.server_data_copies, 0u);  // NCache mode
  EXPECT_GT(snap.server_logical_copies, 0u);
  EXPECT_EQ(snap.nfs_requests, 32u);
  EXPECT_EQ(snap.read_bytes_served, 1u << 20);
}

}  // namespace
}  // namespace ncache
