// NFS end-to-end tests over the full 4-node testbed: protocol codecs,
// data integrity in every server mode, Table-2 copy counts, the FHO
// write/remap pipeline, second-level-cache behaviour, metadata operations,
// and UDP retransmission.
#include <gtest/gtest.h>

#include "fs/image_builder.h"
#include "nfs/client.h"
#include "nfs/protocol.h"
#include "testbed/testbed.h"

namespace ncache::nfs {
namespace {

using core::PassMode;
using netbuf::MsgBuffer;
using testbed::Testbed;
using testbed::TestbedConfig;

TEST(NfsProtocol, HeaderRoundTrips) {
  std::vector<std::byte> buf;
  ByteWriter w(buf);
  CallHeader{77, kNfsProgram, kNfsVersion, Proc::Read}.serialize(w);
  ASSERT_EQ(buf.size(), kCallHeaderBytes);
  ByteReader r(buf);
  auto h = CallHeader::parse(r);
  ASSERT_TRUE(h);
  EXPECT_EQ(h->xid, 77u);
  EXPECT_EQ(h->proc, Proc::Read);

  std::vector<std::byte> rbuf;
  ByteWriter rw(rbuf);
  ReplyHeader{77, Status::NoEnt}.serialize(rw);
  ASSERT_EQ(rbuf.size(), kReplyHeaderBytes);
  ByteReader rr(rbuf);
  auto rh = ReplyHeader::parse(rr);
  ASSERT_TRUE(rh);
  EXPECT_EQ(rh->status, Status::NoEnt);
}

TEST(NfsProtocol, CallRejectsReplyTag) {
  std::vector<std::byte> buf;
  ByteWriter w(buf);
  ReplyHeader{5, Status::Ok}.serialize(w);
  w.zeros(8);
  ByteReader r(buf);
  EXPECT_FALSE(CallHeader::parse(r));
}

TEST(NfsProtocol, ArgsRoundTrip) {
  {
    std::vector<std::byte> b;
    ByteWriter w(b);
    LookupArgs{7, "file.txt"}.serialize(w);
    ByteReader r(b);
    auto a = LookupArgs::parse(r);
    EXPECT_EQ(a.dir_fh, 7u);
    EXPECT_EQ(a.name, "file.txt");
  }
  {
    std::vector<std::byte> b;
    ByteWriter w(b);
    ReadArgs{9, 65536, 32768}.serialize(w);
    ByteReader r(b);
    auto a = ReadArgs::parse(r);
    EXPECT_EQ(a.fh, 9u);
    EXPECT_EQ(a.offset, 65536u);
    EXPECT_EQ(a.count, 32768u);
  }
  {
    std::vector<std::byte> b;
    ByteWriter w(b);
    serialize_dir_entries(
        w, {{1, fs::InodeType::File, "a"}, {2, fs::InodeType::Directory, "b"}});
    ByteReader r(b);
    auto es = parse_dir_entries(r);
    ASSERT_EQ(es.size(), 2u);
    EXPECT_EQ(es[0].name, "a");
    EXPECT_EQ(es[1].fh, 2u);
  }
}

// ---------------------------------------------------------------------------
// End-to-end fixture
// ---------------------------------------------------------------------------

struct EndToEnd {
  explicit EndToEnd(PassMode mode, TestbedConfig base = {}) {
    base.mode = mode;
    tb = std::make_unique<Testbed>(base);
    file_ino = tb->image().add_file("data.bin", kFileSize);
    tb->start_nfs();
  }

  static constexpr std::uint64_t kFileSize = 4 * 1024 * 1024;

  template <typename F>
  void run(F&& body) {
    auto t_fn = [&]() -> Task<void> { co_await body(); };
    sim::sync_wait(tb->loop(), t_fn());
  }

  std::unique_ptr<Testbed> tb;
  std::uint32_t file_ino = 0;
};

class NfsModes : public ::testing::TestWithParam<PassMode> {};

TEST_P(NfsModes, LookupAndGetattr) {
  EndToEnd e(GetParam());
  e.run([&]() -> Task<void> {
    auto& client = e.tb->nfs_client(0);
    auto fh = co_await client.lookup(fs::kRootIno, "data.bin");
    EXPECT_TRUE(fh);
    if (!fh) co_return;
    EXPECT_EQ(*fh, e.file_ino);
    auto attr = co_await client.getattr(*fh);
    EXPECT_TRUE(attr);
    if (!attr) co_return;
    EXPECT_EQ(attr->size, EndToEnd::kFileSize);
    EXPECT_EQ(attr->type, fs::InodeType::File);
  });
}

TEST_P(NfsModes, ReadsAreSizedAndShaped) {
  EndToEnd e(GetParam());
  e.run([&]() -> Task<void> {
    auto& client = e.tb->nfs_client(0);
    auto r = co_await client.read(e.file_ino, 32768, 32768);
    EXPECT_EQ(r.status, Status::Ok);
    EXPECT_EQ(r.data.size(), 32768u);
    if (GetParam() == PassMode::Baseline) {
      EXPECT_TRUE(r.junk);  // §5.1: baseline payloads are random bits
    } else {
      EXPECT_FALSE(r.junk);
      auto bytes = r.data.to_bytes();
      EXPECT_EQ(fs::verify_content(e.file_ino, 32768, bytes), std::size_t(-1));
    }
  });
}

TEST_P(NfsModes, SequentialReadWholeFileIntegrity) {
  EndToEnd e(GetParam());
  if (GetParam() == PassMode::Baseline) GTEST_SKIP() << "junk by design";
  e.run([&]() -> Task<void> {
    auto& client = e.tb->nfs_client(0);
    for (std::uint64_t off = 0; off < 512 * 1024; off += 32768) {
      auto r = co_await client.read(e.file_ino, off, 32768);
      EXPECT_EQ(r.status, Status::Ok);
      auto bytes = r.data.to_bytes();
      EXPECT_EQ(fs::verify_content(e.file_ino, off, bytes), std::size_t(-1))
          << "corruption at offset " << off;
    }
  });
}

TEST_P(NfsModes, WriteThenReadBack) {
  EndToEnd e(GetParam());
  if (GetParam() == PassMode::Baseline) GTEST_SKIP() << "junk by design";
  e.run([&]() -> Task<void> {
    auto& client = e.tb->nfs_client(0);
    auto fh = co_await client.create(fs::kRootIno, "new.bin");
    EXPECT_TRUE(fh);
    if (!fh) co_return;
    std::vector<std::byte> data(32768);
    fs::fill_content(std::uint32_t(*fh), 0, data);
    EXPECT_EQ(co_await client.write(*fh, 0, data), Status::Ok);
    auto r = co_await client.read(*fh, 0, 32768);
    EXPECT_EQ(r.status, Status::Ok);
    EXPECT_EQ(r.data.to_bytes(), data);
  });
}

TEST_P(NfsModes, MetadataOps) {
  EndToEnd e(GetParam());
  e.run([&]() -> Task<void> {
    auto& client = e.tb->nfs_client(0);
    auto dir = co_await client.create(fs::kRootIno, "dir", /*directory=*/true);
    EXPECT_TRUE(dir);
    if (!dir) co_return;
    auto f1 = co_await client.create(*dir, "x");
    auto f2 = co_await client.create(*dir, "y");
    EXPECT_TRUE(f1 && f2);
    auto entries = co_await client.readdir(*dir);
    EXPECT_EQ(entries.size(), 2u);
    EXPECT_EQ(co_await client.remove(*dir, "x"), Status::Ok);
    entries = co_await client.readdir(*dir);
    EXPECT_EQ(entries.size(), 1u);
    EXPECT_EQ(co_await client.remove(*dir, "x"), Status::NoEnt);
  });
}

INSTANTIATE_TEST_SUITE_P(AllModes, NfsModes,
                         ::testing::Values(PassMode::Original,
                                           PassMode::NCache,
                                           PassMode::Baseline),
                         [](const auto& info) {
                           return std::string(core::to_string(info.param));
                         });

// ---------------------------------------------------------------------------
// Copy accounting (Table 2) and NCache-specific behaviour
// ---------------------------------------------------------------------------

TEST(NfsCopyCounts, OriginalReadMissIsThreeCopies) {
  EndToEnd e(PassMode::Original);
  e.run([&]() -> Task<void> {
    auto& client = e.tb->nfs_client(0);
    // Warm metadata so only the data path is measured.
    (void)co_await client.getattr(e.file_ino);
    e.tb->server_node().copier.reset_stats();
    auto r = co_await client.read(e.file_ino, 0, fs::kBlockSize);
    EXPECT_EQ(r.status, Status::Ok);
    // Miss: iSCSI->buffer cache, cache->daemon, daemon->stack.
    EXPECT_EQ(e.tb->server_node().copier.stats().data_copy_ops, 3u);

    e.tb->server_node().copier.reset_stats();
    r = co_await client.read(e.file_ino, 0, fs::kBlockSize);
    EXPECT_EQ(r.status, Status::Ok);
    // Hit: cache->daemon, daemon->stack.
    EXPECT_EQ(e.tb->server_node().copier.stats().data_copy_ops, 2u);
  });
}

TEST(NfsCopyCounts, OriginalWritePaths) {
  TestbedConfig cfg;
  cfg.fs_cache_blocks = 64;  // small: flushes happen quickly
  EndToEnd e(PassMode::Original, cfg);
  e.run([&]() -> Task<void> {
    auto& client = e.tb->nfs_client(0);
    auto fh = co_await client.create(fs::kRootIno, "w.bin");
    EXPECT_TRUE(fh);
    if (!fh) co_return;
    e.tb->server_node().copier.reset_stats();
    std::vector<std::byte> block(fs::kBlockSize);
    EXPECT_EQ(co_await client.write(*fh, 0, block), Status::Ok);
    // Overwritten-in-cache path: one copy (socket -> page cache).
    EXPECT_EQ(e.tb->server_node().copier.stats().data_copy_ops, 1u);

    // Force the flush: the second copy (page cache -> iSCSI socket).
    co_await e.tb->fs().sync();
    EXPECT_EQ(e.tb->server_node().copier.stats().data_copy_ops, 2u);
  });
}

TEST(NfsCopyCounts, NCacheMovesNoDataBytes) {
  EndToEnd e(PassMode::NCache);
  e.run([&]() -> Task<void> {
    auto& client = e.tb->nfs_client(0);
    (void)co_await client.getattr(e.file_ino);
    e.tb->server_node().copier.reset_stats();
    auto r = co_await client.read(e.file_ino, 0, 32768);
    EXPECT_EQ(r.status, Status::Ok);
    EXPECT_FALSE(r.junk);
    EXPECT_EQ(fs::verify_content(e.file_ino, 0, r.data.to_bytes()),
              std::size_t(-1));
    // Zero physical copies of regular data on the server; only logical
    // copies of keys.
    EXPECT_EQ(e.tb->server_node().copier.stats().data_copy_ops, 0u);
    EXPECT_GT(e.tb->server_node().copier.stats().logical_copy_ops, 0u);
    EXPECT_GT(e.tb->ncache()->stats().frames_substituted, 0u);
  });
}

TEST(NfsNCache, WriteFlushRemapsIntoLbnCache) {
  TestbedConfig cfg;
  cfg.fs_cache_blocks = 64;
  EndToEnd e(PassMode::NCache, cfg);
  e.run([&]() -> Task<void> {
    auto& client = e.tb->nfs_client(0);
    auto fh = co_await client.create(fs::kRootIno, "w.bin");
    EXPECT_TRUE(fh);
    if (!fh) co_return;
    std::vector<std::byte> data(8 * fs::kBlockSize);
    fs::fill_content(std::uint32_t(*fh), 0, data);
    EXPECT_EQ(co_await client.write(*fh, 0, data), Status::Ok);
    EXPECT_GT(e.tb->ncache()->cache().stats().fho_inserts, 0u);

    co_await e.tb->fs().sync();
    EXPECT_GE(e.tb->ncache()->cache().stats().remaps, 8u);

    // Storage must hold the real bytes (egress substitution materialized
    // the iSCSI write payload).
    auto attr = co_await e.tb->fs().getattr(std::uint32_t(*fh));
    EXPECT_EQ(attr.size, data.size());
    auto r = co_await client.read(*fh, 0, std::uint32_t(data.size() / 2));
    EXPECT_EQ(r.data.to_bytes(),
              std::vector<std::byte>(data.begin(),
                                     data.begin() + long(data.size() / 2)));
  });
}

TEST(NfsNCache, ActsAsSecondLevelCache) {
  TestbedConfig cfg;
  cfg.fs_cache_blocks = 64;  // tiny fs cache, big NCache
  EndToEnd e(PassMode::NCache, cfg);
  e.run([&]() -> Task<void> {
    auto& client = e.tb->nfs_client(0);
    // Read 1 MB: populates the LBN cache.
    for (std::uint64_t off = 0; off < 1024 * 1024; off += 32768) {
      (void)co_await client.read(e.file_ino, off, 32768);
    }
    // Evict the (tiny) fs cache, then re-read: the LBN cache absorbs the
    // misses without new storage traffic.
    co_await e.tb->fs().cache().drop_all();
    std::uint64_t target_reads = e.tb->target().stats().reads;
    auto probe_hits = e.tb->ncache()->stats().second_level_hits;
    for (std::uint64_t off = 0; off < 1024 * 1024; off += 32768) {
      auto r = co_await client.read(e.file_ino, off, 32768);
      EXPECT_EQ(fs::verify_content(e.file_ino, off, r.data.to_bytes()),
                std::size_t(-1));
    }
    // Metadata blocks (inode table, indirect) may be refetched — they are
    // not in the network-centric cache — but no *data* re-reads happen.
    EXPECT_LE(e.tb->target().stats().reads, target_reads + 2);
    EXPECT_GT(e.tb->ncache()->stats().second_level_hits, probe_hits);
  });
}

TEST(NfsClientBehaviour, RetransmitsAndRecovers) {
  EndToEnd e(PassMode::Original);
  // Drop one request frame at the client's egress.
  int dropped = 0;
  e.tb->client_node(0).stack.nic(0).set_egress_filter([&](proto::Frame&) {
    if (dropped == 0) {
      ++dropped;
      return false;
    }
    return true;
  });
  e.run([&]() -> Task<void> {
    auto& client = e.tb->nfs_client(0);
    auto attr = co_await client.getattr(e.file_ino);
    EXPECT_TRUE(attr);
    EXPECT_EQ(client.stats().retransmits, 1u);
  });
  EXPECT_EQ(dropped, 1);
}

TEST(NfsClientBehaviour, TimesOutAgainstDeadServer) {
  EndToEnd e(PassMode::Original);
  e.tb->nfs_server().stop();
  e.run([&]() -> Task<void> {
    auto& client = e.tb->nfs_client(0);
    auto attr = co_await client.getattr(e.file_ino);
    EXPECT_FALSE(attr);
    EXPECT_EQ(client.stats().timeouts, 1u);
  });
}

Task<void> concurrent_reader(Testbed& tb, int ci, std::uint32_t ino,
                             int* counter) {
  auto& client = tb.nfs_client(ci);
  for (std::uint64_t off = 0; off < 256 * 1024; off += 16384) {
    auto r = co_await client.read(ino, off, 16384);
    EXPECT_EQ(r.status, Status::Ok);
    EXPECT_EQ(fs::verify_content(ino, off, r.data.to_bytes()),
              std::size_t(-1));
  }
  ++*counter;
}

TEST(NfsServerBehaviour, ManyConcurrentClients) {
  TestbedConfig cfg;
  cfg.client_count = 2;
  EndToEnd e(PassMode::NCache, cfg);

  int done = 0;
  concurrent_reader(*e.tb, 0, e.file_ino, &done).detach();
  concurrent_reader(*e.tb, 1, e.file_ino, &done).detach();
  e.tb->loop().run();
  EXPECT_EQ(done, 2);
}


TEST(NfsServerBehaviour, RenameAcrossDirectories) {
  EndToEnd e(PassMode::Original);
  e.run([&]() -> Task<void> {
    auto& client = e.tb->nfs_client(0);
    auto dir = co_await client.create(fs::kRootIno, "sub", /*directory=*/true);
    EXPECT_TRUE(dir);
    if (!dir) co_return;
    auto fh = co_await client.create(fs::kRootIno, "old.bin");
    EXPECT_TRUE(fh);
    if (!fh) co_return;
    std::vector<std::byte> data(8192);
    fs::fill_content(std::uint32_t(*fh), 0, data);
    EXPECT_EQ(co_await client.write(*fh, 0, data), Status::Ok);

    // Move into the subdirectory under a new name.
    EXPECT_EQ(co_await client.rename(fs::kRootIno, "old.bin", *dir, "new.bin"),
              Status::Ok);
    EXPECT_FALSE(co_await client.lookup(fs::kRootIno, "old.bin"));
    auto moved = co_await client.lookup(*dir, "new.bin");
    EXPECT_TRUE(moved);
    if (!moved) co_return;
    EXPECT_EQ(*moved, *fh);  // same inode: contents intact
    auto r = co_await client.read(*moved, 0, 8192);
    EXPECT_EQ(r.data.to_bytes(), data);

    // Error paths: missing source, occupied destination.
    EXPECT_EQ(co_await client.rename(fs::kRootIno, "ghost", *dir, "x"),
              Status::NoEnt);
    auto clash = co_await client.create(*dir, "clash");
    EXPECT_TRUE(clash);
    EXPECT_EQ(co_await client.rename(*dir, "new.bin", *dir, "clash"),
              Status::NoEnt);
  });
}

TEST(NfsServerBehaviour, SetattrTruncateAndExtend) {
  EndToEnd e(PassMode::NCache);
  e.run([&]() -> Task<void> {
    auto& client = e.tb->nfs_client(0);
    auto fh = co_await client.create(fs::kRootIno, "t.bin");
    EXPECT_TRUE(fh);
    if (!fh) co_return;
    std::vector<std::byte> data(4 * fs::kBlockSize);
    fs::fill_content(std::uint32_t(*fh), 0, data);
    EXPECT_EQ(co_await client.write(*fh, 0, data), Status::Ok);

    EXPECT_EQ(co_await client.setattr_size(*fh, fs::kBlockSize), Status::Ok);
    auto attr = co_await client.getattr(*fh);
    EXPECT_EQ(attr->size, fs::kBlockSize);
    // Surviving prefix intact.
    auto r = co_await client.read(*fh, 0, fs::kBlockSize);
    EXPECT_EQ(fs::verify_content(std::uint32_t(*fh), 0, r.data.to_bytes()),
              std::size_t(-1));

    // Extend: reads past the old end are clamped to the new size.
    EXPECT_EQ(co_await client.setattr_size(*fh, 2 * fs::kBlockSize),
              Status::Ok);
    attr = co_await client.getattr(*fh);
    EXPECT_EQ(attr->size, 2 * fs::kBlockSize);
  });
}

TEST(NfsServerBehaviour, StaleFileHandle) {
  EndToEnd e(PassMode::Original);
  e.run([&]() -> Task<void> {
    auto& client = e.tb->nfs_client(0);
    auto attr = co_await client.getattr(9999);  // beyond inode table
    EXPECT_FALSE(attr);
  });
}

}  // namespace
}  // namespace ncache::nfs
