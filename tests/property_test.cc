// Property-based suites (parameterized sweeps) over the library's core
// invariants:
//   * MsgBuffer slice/append algebra equals byte-string algebra;
//   * IP fragmentation/reassembly is the identity for every size and
//     arrival order;
//   * TCP delivers the exact byte stream for every (size, loss-rate)
//     combination;
//   * the network-centric cache honours freshness/forwarding/budget
//     invariants under randomized op sequences;
//   * incremental checksums equal one-shot checksums for random splits.
#include <gtest/gtest.h>

#include <unordered_set>

#include "common/checksum.h"
#include "common/rng.h"
#include "core/net_centric_cache.h"
#include "netbuf/msg_buffer.h"
#include "proto/stack.h"
#include "proto/switch.h"

namespace ncache {
namespace {

using netbuf::MsgBuffer;

std::vector<std::byte> rand_bytes(Pcg32& rng, std::size_t n) {
  std::vector<std::byte> v(n);
  for (auto& b : v) b = std::byte(rng.next() & 0xff);
  return v;
}

// ---------------------------------------------------------------------------
// MsgBuffer algebra
// ---------------------------------------------------------------------------

class MsgBufferAlgebra : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(MsgBufferAlgebra, RandomCompositionMatchesByteString) {
  Pcg32 rng(GetParam());
  // Build a message from random-size physical pieces; keep a golden copy.
  std::vector<std::byte> golden;
  MsgBuffer msg;
  int pieces = 1 + int(rng.below(12));
  for (int i = 0; i < pieces; ++i) {
    auto piece = rand_bytes(rng, 1 + rng.below(4000));
    golden.insert(golden.end(), piece.begin(), piece.end());
    msg.append(MsgBuffer::from_bytes(piece));
  }
  ASSERT_EQ(msg.size(), golden.size());
  EXPECT_EQ(msg.to_bytes(), golden);

  // Random slices agree with substring.
  for (int trial = 0; trial < 50; ++trial) {
    std::size_t off = rng.below(std::uint32_t(golden.size()));
    std::size_t len = rng.below(std::uint32_t(golden.size() - off + 1));
    MsgBuffer s = msg.slice(off, len);
    std::vector<std::byte> expect(golden.begin() + long(off),
                                  golden.begin() + long(off + len));
    EXPECT_EQ(s.to_bytes(), expect);
  }

  // Slice-of-slice composes like nested substrings.
  std::size_t a = rng.below(std::uint32_t(golden.size() / 2 + 1));
  std::size_t alen = golden.size() - a;
  MsgBuffer outer = msg.slice(a, alen);
  std::size_t b = rng.below(std::uint32_t(alen + 1));
  std::size_t blen = alen - b;
  EXPECT_EQ(outer.slice(b, blen).to_bytes(),
            msg.slice(a + b, blen).to_bytes());

  // Splitting at every boundary and re-appending is the identity.
  std::size_t cut = rng.below(std::uint32_t(golden.size() + 1));
  MsgBuffer left = msg.slice(0, cut);
  MsgBuffer right = msg.slice(cut, golden.size() - cut);
  MsgBuffer joined;
  joined.append(std::move(left));
  joined.append(std::move(right));
  EXPECT_EQ(joined.to_bytes(), golden);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MsgBufferAlgebra,
                         ::testing::Range(1u, 13u));

// ---------------------------------------------------------------------------
// UDP datagram sizes: fragmentation identity end-to-end
// ---------------------------------------------------------------------------

struct TwoHosts {
  TwoHosts()
      : book(std::make_shared<proto::AddressBook>()),
        sw(loop, "sw", costs),
        a_cpu(loop, "a"),
        a_cp(a_cpu, costs),
        a(loop, a_cpu, a_cp, costs, "A", book),
        b_cpu(loop, "b"),
        b_cp(b_cpu, costs),
        b(loop, b_cpu, b_cp, costs, "B", book) {
    a.add_nic(0xa, proto::make_ipv4(10, 0, 0, 1));
    b.add_nic(0xb, proto::make_ipv4(10, 0, 0, 2));
    sw.connect(a.nic(0));
    sw.connect(b.nic(0));
  }
  sim::EventLoop loop;
  sim::CostModel costs;
  std::shared_ptr<proto::AddressBook> book;
  proto::EthernetSwitch sw;
  sim::CpuModel a_cpu;
  netbuf::CopyEngine a_cp;
  proto::NetworkStack a;
  sim::CpuModel b_cpu;
  netbuf::CopyEngine b_cp;
  proto::NetworkStack b;
};

class UdpSizes : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(UdpSizes, FragmentationIsIdentity) {
  TwoHosts h;
  Pcg32 rng(GetParam() * 31 + 7);
  auto payload = rand_bytes(rng, GetParam());

  std::vector<std::byte> got;
  bool received = false;
  h.b.udp_bind(9, [&](proto::Ipv4Addr, std::uint16_t, proto::Ipv4Addr,
                      std::uint16_t, MsgBuffer m) {
    got = m.to_bytes();
    received = true;
  });
  h.a.udp_send(proto::make_ipv4(10, 0, 0, 1), 8, proto::make_ipv4(10, 0, 0, 2),
               9, MsgBuffer::from_bytes(payload));
  h.loop.run();
  ASSERT_TRUE(received);
  EXPECT_EQ(got, payload);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, UdpSizes,
    ::testing::Values(1u, 100u, 1471u, 1472u, 1473u, 1480u, 2944u, 2953u,
                      4096u, 8192u, 16384u, 32768u, 60000u),
    [](const auto& info) { return "b" + std::to_string(info.param); });

// ---------------------------------------------------------------------------
// TCP: byte-stream identity under loss
// ---------------------------------------------------------------------------

class TcpLossSweep
    : public ::testing::TestWithParam<std::pair<std::uint32_t, int>> {};

TEST_P(TcpLossSweep, StreamSurvives) {
  auto [size, drop_mod] = GetParam();
  TwoHosts h;
  if (drop_mod > 0) {
    int counter = 0;
    // Drop every drop_mod-th frame in both directions.
    h.a.nic(0).set_egress_filter(
        [counter, drop_mod](proto::Frame&) mutable {
          return ++counter % drop_mod != 0;
        });
    h.b.nic(0).set_egress_filter(
        [counter, drop_mod](proto::Frame&) mutable {
          return ++counter % (drop_mod + 3) != 0;
        });
  }

  Pcg32 rng(size);
  auto payload = rand_bytes(rng, size);
  std::vector<std::byte> got;
  h.b.tcp_listen(80, [&](proto::TcpConnectionPtr conn) {
    conn->set_data_handler([&](MsgBuffer m) {
      auto bytes = m.to_bytes();
      got.insert(got.end(), bytes.begin(), bytes.end());
    });
  });

  auto driver_fn = [&]() -> Task<void> {
    auto conn = co_await h.a.tcp_connect(proto::make_ipv4(10, 0, 0, 1),
                                         proto::make_ipv4(10, 0, 0, 2), 80);
    // Send in random-size chunks to exercise segmentation boundaries.
    std::size_t off = 0;
    Pcg32 crng(size + 1);
    while (off < payload.size()) {
      std::size_t take = std::min<std::size_t>(1 + crng.below(20000),
                                               payload.size() - off);
      conn->send(MsgBuffer::from_bytes(
          {payload.data() + off, take}));
      off += take;
    }
  }();
  std::move(driver_fn).detach();
  h.loop.run_until(60 * sim::kSecond);
  EXPECT_EQ(got, payload);
}

INSTANTIATE_TEST_SUITE_P(
    SizeLoss, TcpLossSweep,
    ::testing::Values(std::pair{1000u, 0}, std::pair{65536u, 0},
                      std::pair{300000u, 0}, std::pair{65536u, 23},
                      std::pair{300000u, 17}, std::pair{300000u, 41},
                      std::pair{100000u, 7}),
    [](const auto& info) {
      return "b" + std::to_string(info.param.first) + "_drop" +
             std::to_string(info.param.second);
    });

// ---------------------------------------------------------------------------
// NetCentricCache randomized invariants
// ---------------------------------------------------------------------------

class CacheInvariants : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(CacheInvariants, RandomOpsPreserveInvariants) {
  sim::EventLoop loop;
  sim::CostModel costs;
  sim::CpuModel cpu(loop, "cpu");
  core::NetCentricCache cache(cpu, costs, {40 * 5200, 4096});

  Pcg32 rng(GetParam());
  // Model of truth: latest content per FHO key and per LBN key. After a
  // remap the FHO key *aliases* the LBN entry (in the real system the
  // flush wrote the same bytes to storage, so any later re-read of that
  // LBN carries identical content).
  std::unordered_map<std::uint64_t, int> fho_version;
  std::unordered_map<std::uint64_t, int> lbn_version;
  std::unordered_set<std::uint64_t> aliased;  // fho k forwards to lbn k
  int version = 0;

  auto chain_v = [&](int v) {
    auto buf = netbuf::make_buffer(4096);
    auto span = buf->put(4096);
    for (std::size_t i = 0; i < 4096; ++i) {
      span[i] = std::byte((i * 7 + std::size_t(v)) & 0xff);
    }
    MsgBuffer m;
    m.append(netbuf::ByteSeg{std::move(buf), 0, 4096});
    return m;
  };
  auto version_of = [&](const MsgBuffer& m) {
    auto bytes = m.to_bytes();
    return int(std::to_integer<unsigned>(bytes[0]));  // i=0 -> v & 0xff
  };

  for (int step = 0; step < 400; ++step) {
    std::uint32_t op = rng.below(10);
    std::uint64_t k = rng.below(30);
    if (op < 3) {
      ++version;
      if (cache.insert_lbn(netbuf::LbnKey{0, k}, chain_v(version))) {
        lbn_version[k] = version;
        if (aliased.contains(k)) fho_version[k] = version;
      }
    } else if (op < 6) {
      ++version;
      if (cache.insert_fho(netbuf::FhoKey{1, k * 4096}, chain_v(version))) {
        fho_version[k] = version;
        aliased.erase(k);  // fresh dirty data shadows any forwarding
      }
    } else if (op < 8) {
      // Remap a random dirty FHO entry to an LBN.
      if (cache.remap(netbuf::FhoKey{1, k * 4096}, netbuf::LbnKey{0, k})) {
        auto it = fho_version.find(k);
        ASSERT_NE(it, fho_version.end());
        lbn_version[k] = it->second;  // newest data lands in the LBN index
        aliased.insert(k);  // FHO key now forwards to the LBN entry
      }
    } else {
      // Lookup both kinds; when present, content must be the newest
      // version recorded for that key (FHO freshness rule).
      auto by_fho = cache.lookup(netbuf::CacheKey(netbuf::FhoKey{1, k * 4096}));
      if (by_fho && fho_version.contains(k)) {
        EXPECT_EQ(version_of(*by_fho) , fho_version[k] & 0xff);
      }
      auto by_lbn = cache.lookup(netbuf::CacheKey(netbuf::LbnKey{0, k}));
      if (by_lbn && lbn_version.contains(k)) {
        EXPECT_EQ(version_of(*by_lbn), lbn_version[k] & 0xff);
      }
    }
    // Budget invariant: pinned bytes never exceed the pool budget.
    EXPECT_LE(cache.pinned_bytes(), cache.budget_bytes());
  }
  // Dirty FHO chunks are never silently dropped by eviction: every key
  // whose newest insert succeeded and was not remapped (aliased entries
  // are clean and may be evicted like any LBN chunk) still resolves.
  for (const auto& [k, v] : fho_version) {
    if (aliased.contains(k)) continue;
    auto found = cache.lookup(netbuf::CacheKey(netbuf::FhoKey{1, k * 4096}));
    ASSERT_TRUE(found) << "dirty FHO chunk lost for key " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheInvariants, ::testing::Range(100u, 112u));

// ---------------------------------------------------------------------------
// Checksum: incremental == one-shot for random even splits
// ---------------------------------------------------------------------------

class ChecksumSplits : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ChecksumSplits, AccumulateEqualsOneShot) {
  Pcg32 rng(GetParam());
  auto data = rand_bytes(rng, 200 + rng.below(5000));
  std::uint16_t whole = internet_checksum(data);

  // Split into random *even-length* pieces (the ones-complement sum is
  // only split-invariant on 16-bit boundaries, which is how the stack
  // feeds it).
  std::uint32_t acc = 0;
  std::size_t pos = 0;
  std::span<const std::byte> s(data);
  while (pos < data.size()) {
    std::size_t take = std::min<std::size_t>((1 + rng.below(300)) * 2,
                                             data.size() - pos);
    acc = checksum_accumulate(s.subspan(pos, take), acc);
    pos += take;
  }
  EXPECT_EQ(checksum_finish(acc), whole);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChecksumSplits, ::testing::Range(20u, 32u));

}  // namespace
}  // namespace ncache
