// Unit tests for the simulation substrate: event loop ordering, CPU
// queueing/utilization, link serialization, and coroutine integration.
#include <gtest/gtest.h>

#include <vector>

#include "sim/cost_model.h"
#include "sim/cpu_model.h"
#include "sim/event_loop.h"
#include "sim/link.h"

namespace ncache::sim {
namespace {

TEST(EventLoop, FiresInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(30, [&] { order.push_back(3); });
  loop.schedule_at(10, [&] { order.push_back(1); });
  loop.schedule_at(20, [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 30u);
}

TEST(EventLoop, SameTimeFifo) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    loop.schedule_at(100, [&, i] { order.push_back(i); });
  }
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoop, PastEventsClampToNow) {
  EventLoop loop;
  loop.schedule_at(100, [] {});
  loop.run();
  bool fired = false;
  loop.schedule_at(50, [&] { fired = true; });  // in the past
  loop.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(loop.now(), 100u);
}

TEST(EventLoop, RunUntilStopsAtDeadline) {
  EventLoop loop;
  int count = 0;
  // Self-rescheduling ticker.
  std::function<void()> tick = [&] {
    ++count;
    loop.schedule_in(10, tick);
  };
  loop.schedule_in(10, tick);
  loop.run_until(100);
  EXPECT_EQ(count, 10);
  EXPECT_EQ(loop.now(), 100u);
  EXPECT_GE(loop.pending(), 1u);
}

TEST(EventLoop, SameTimeFifoAcrossCascadeInterleavings) {
  // Two events for the same instant, scheduled from very different
  // distances: the first lands on an upper wheel level and cascades down,
  // the second is pushed directly near the deadline. FIFO by scheduling
  // order must survive the cascade.
  EventLoop loop;
  std::vector<int> order;
  const Time kT = 3 * kSecond + 12'345;  // upper-level slot from t=0
  loop.schedule_at(kT, [&] { order.push_back(1); });
  loop.run_until(kT - 100);              // cursor now close to kT
  loop.schedule_at(kT, [&] { order.push_back(2); });
  loop.schedule_at(kT, [&] { order.push_back(3); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventLoop, ScheduleEarlierThanPendingBatchFiresFirst) {
  // run_until() may have peeked (forming the earliest ready batch) before
  // a later schedule lands strictly between now and that batch: the
  // newcomer must still fire first.
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(1'000, [&] { order.push_back(2); });
  loop.run_until(500);  // peeks at the t=1000 event, now()==500
  loop.schedule_at(700, [&] { order.push_back(1); });
  loop.schedule_at(1'000, [&] { order.push_back(3); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 1'000u);
}

TEST(EventLoop, ClampedEventsCounted) {
  EventLoop loop;
  EXPECT_EQ(loop.clamped_events(), 0u);
  loop.schedule_at(100, [] {});
  loop.run();
  loop.schedule_at(40, [] {});  // past: clamps to now()==100
  loop.schedule_at(99, [] {});  // past: clamps too
  loop.schedule_at(100, [] {}); // exactly now: not a clamp
  loop.run();
  EXPECT_EQ(loop.clamped_events(), 2u);
  EXPECT_EQ(loop.now(), 100u);
}

TEST(EventLoop, EventsBeyondWheelHorizonFireInOrder) {
  // Deadlines past the wheel's ~68.7 s horizon wait in the overflow heap
  // and must interleave correctly with near events.
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(200 * kSecond, [&] { order.push_back(4); });
  loop.schedule_at(100 * kSecond, [&] { order.push_back(3); });
  loop.schedule_at(100 * kSecond - 1, [&] { order.push_back(2); });
  loop.schedule_at(10, [&] {
    order.push_back(1);
    loop.schedule_at(200 * kSecond, [&] { order.push_back(5); });
  });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
  EXPECT_EQ(loop.now(), 200 * kSecond);
}

TEST(EventLoop, NullCallbackIsPureTimeMarker) {
  EventLoop loop;
  loop.schedule_at(500, nullptr);
  EXPECT_EQ(loop.run(), 1u);
  EXPECT_EQ(loop.now(), 500u);
  EXPECT_EQ(loop.dispatched(), 1u);
}

TEST(EventLoop, NestedScheduling) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(10, [&] {
    order.push_back(1);
    loop.schedule_in(5, [&] { order.push_back(2); });
  });
  loop.schedule_at(20, [&] { order.push_back(3); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Cpu, SerializesWork) {
  EventLoop loop;
  CpuModel cpu(loop, "cpu");
  std::vector<Time> finish;
  cpu.submit(100, [&] { finish.push_back(loop.now()); });
  cpu.submit(50, [&] { finish.push_back(loop.now()); });
  cpu.submit(25, [&] { finish.push_back(loop.now()); });
  loop.run();
  EXPECT_EQ(finish, (std::vector<Time>{100, 150, 175}));
}

TEST(Cpu, IdleGapsDoNotAccumulateBusy) {
  EventLoop loop;
  CpuModel cpu(loop, "cpu");
  cpu.submit(100, nullptr);
  loop.schedule_at(1000, [&] { cpu.submit(100, nullptr); });
  loop.run();
  // Force time to 2000 for a clean denominator.
  loop.schedule_at(2000, [] {});
  loop.run();
  EXPECT_NEAR(cpu.utilization(), 200.0 / 2000.0, 1e-9);
}

TEST(Cpu, UtilizationWindowReset) {
  EventLoop loop;
  CpuModel cpu(loop, "cpu");
  cpu.submit(500, nullptr);
  loop.schedule_at(1000, [] {});
  loop.run();
  EXPECT_NEAR(cpu.utilization(), 0.5, 1e-9);
  cpu.reset_stats();
  loop.schedule_at(2000, [] {});
  loop.run();
  EXPECT_NEAR(cpu.utilization(), 0.0, 1e-9);
}

TEST(Cpu, SaturatedUtilizationIsOne) {
  EventLoop loop;
  CpuModel cpu(loop, "cpu");
  for (int i = 0; i < 10; ++i) cpu.submit(100, nullptr);
  loop.schedule_at(500, [] {});  // half the queued work done by then
  loop.run_until(500);
  EXPECT_NEAR(cpu.utilization(), 1.0, 1e-9);
}

TEST(Cpu, AwaitableRun) {
  EventLoop loop;
  CpuModel cpu(loop, "cpu");
  Time done_at = 0;
  auto t_fn = [&]() -> Task<void> {
    co_await cpu.run(250);
    done_at = loop.now();
  };
  auto t = t_fn();
  std::move(t).detach();
  loop.run();
  EXPECT_EQ(done_at, 250u);
}

TEST(Link, SerializationAndLatency) {
  EventLoop loop;
  // 1 Gb/s, 10us latency, 38B overhead.
  Link link(loop, "l", 1'000'000'000, 10'000, 38);
  Time t1 = 0, t2 = 0;
  link.transmit(1462, [&] { t1 = loop.now(); });  // 1500B wire = 12us
  link.transmit(1462, [&] { t2 = loop.now(); });
  loop.run();
  EXPECT_EQ(t1, 22'000u);  // 12us ser + 10us latency
  EXPECT_EQ(t2, 34'000u);  // queued behind the first frame
}

TEST(Link, UtilizationAccounting) {
  EventLoop loop;
  Link link(loop, "l", 1'000'000'000, 0, 0);
  link.transmit(12'500, nullptr);  // 100us at 1Gb/s
  loop.schedule_at(200'000, [] {});
  loop.run();
  EXPECT_NEAR(link.utilization(), 0.5, 1e-6);
  EXPECT_EQ(link.frames(), 1u);
  EXPECT_EQ(link.payload_bytes(), 12'500u);
}

TEST(Link, TxTimeIncludesOverhead) {
  EventLoop loop;
  Link link(loop, "l", 1'000'000'000, 0, 38);
  EXPECT_EQ(link.tx_time(1462), 12'000u);  // (1462+38)*8 ns
}

TEST(SyncWait, ReturnsValue) {
  EventLoop loop;
  auto t_fn = [&]() -> Task<int> {
    co_await sleep_for(loop, 100);
    co_return 7;
  };
  auto t = t_fn();
  EXPECT_EQ(sync_wait(loop, std::move(t)), 7);
  EXPECT_EQ(loop.now(), 100u);
}

TEST(SyncWait, PropagatesException) {
  EventLoop loop;
  auto t_fn = [&]() -> Task<int> {
    co_await sleep_for(loop, 10);
    throw std::runtime_error("bad");
  };
  auto t = t_fn();
  EXPECT_THROW(sync_wait(loop, std::move(t)), std::runtime_error);
}

TEST(CostModelDefaults, SanityRelations) {
  const CostModel& m = default_cost_model();
  // Copying must dominate logical copying by orders of magnitude for a
  // 4 KB block — this gap is the paper's entire premise.
  EXPECT_GT(m.copy_cost(4096), 100 * m.logical_copy_ns);
  EXPECT_TRUE(m.checksum_offload);
  EXPECT_GT(m.packet_tx_ns, 0u);
  EXPECT_EQ(m.copy_cost(0), 0u);
}

}  // namespace
}  // namespace ncache::sim
