// Unit tests for the netbuf module: sk_buff-style buffers, pinned pools,
// cache keys, MsgBuffer segment algebra, and the copy engine's
// accounting (which Table 2 is regenerated from).
#include <gtest/gtest.h>

#include <cstring>

#include "netbuf/cache_key.h"
#include "netbuf/copy_engine.h"
#include "netbuf/msg_buffer.h"
#include "netbuf/net_buffer.h"
#include "netbuf/slab_cache.h"

namespace ncache::netbuf {
namespace {

std::vector<std::byte> pattern(std::size_t n, int seed = 1) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = std::byte((i * 31 + seed) & 0xff);
  return v;
}

TEST(NetBuffer, PushPullPutTrim) {
  NetBuffer b(64, 256);
  EXPECT_EQ(b.headroom(), 64u);
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(b.tailroom(), 256u);

  auto pat = pattern(100);
  b.append(pat);
  EXPECT_EQ(b.size(), 100u);

  std::byte* hdr = b.push(14);
  EXPECT_EQ(b.headroom(), 50u);
  EXPECT_EQ(b.size(), 114u);
  std::memset(hdr, 0xee, 14);

  std::byte* old = b.pull(14);
  EXPECT_EQ(std::to_integer<int>(*old), 0xee);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_TRUE(std::equal(pat.begin(), pat.end(), b.data().begin()));

  b.trim(10);
  EXPECT_EQ(b.size(), 10u);
}

TEST(NetBuffer, BoundsViolationsThrow) {
  NetBuffer b(8, 16);
  EXPECT_THROW(b.push(9), std::length_error);
  EXPECT_THROW(b.pull(1), std::length_error);
  EXPECT_THROW(b.put(17), std::length_error);
  b.put(4);
  EXPECT_THROW(b.trim(5), std::length_error);
}

TEST(BufferPool, BudgetEnforced) {
  BufferPool pool("p", 3 * (4096 + 128 + BufferPool::kPerBufferOverhead));
  auto a = pool.allocate(4096);
  auto b = pool.allocate(4096);
  auto c = pool.allocate(4096);
  ASSERT_TRUE(a && b && c);
  EXPECT_EQ(pool.allocate(4096), nullptr);
  EXPECT_EQ(pool.failures(), 1u);

  // Releasing one makes room again.
  a.reset();
  EXPECT_NE(pool.allocate(4096), nullptr);
}

TEST(BufferPool, InUseTracksLifetime) {
  BufferPool pool("p", 1 << 20);
  EXPECT_EQ(pool.in_use(), 0u);
  {
    auto a = pool.allocate(1000, 100);
    EXPECT_EQ(pool.in_use(), 1100 + BufferPool::kPerBufferOverhead);
  }
  EXPECT_EQ(pool.in_use(), 0u);
}

TEST(BufferPool, AdoptChargesAndMoves) {
  BufferPool pool("p", 1 << 20);
  auto buf = make_buffer(2048, 0);
  ASSERT_TRUE(pool.adopt(*buf));
  EXPECT_EQ(pool.in_use(), 2048 + BufferPool::kPerBufferOverhead);
  buf.reset();
  EXPECT_EQ(pool.in_use(), 0u);
}

TEST(BufferPool, AdoptRejectsWhenFull) {
  BufferPool pool("p", 100);
  auto buf = make_buffer(2048, 0);
  EXPECT_FALSE(pool.adopt(*buf));
  EXPECT_EQ(buf->pool(), nullptr);
}

TEST(BufferPool, AdoptAfterReleaseRebalancesInUse) {
  BufferPool a("a", 1 << 20);
  BufferPool b("b", 1 << 20);
  auto buf = a.allocate(1000, 100);
  ASSERT_TRUE(buf);
  std::size_t charge = 1100 + BufferPool::kPerBufferOverhead;
  EXPECT_EQ(a.in_use(), charge);
  ASSERT_TRUE(b.adopt(*buf));  // moves the charge from a to b
  EXPECT_EQ(a.in_use(), 0u);
  EXPECT_EQ(b.in_use(), charge);
  buf.reset();
  EXPECT_EQ(b.in_use(), 0u);
}

TEST(SlabRecycling, PoolReusesReleasedStorage) {
  BufferPool pool("p", 1 << 20);
  SlabCache::process().drain();  // isolate from other tests' leftovers
  auto a = pool.allocate(3333);  // odd size: class not shared with others
  ASSERT_TRUE(a);
  std::uint64_t miss0 = pool.slab_misses();
  a.reset();
  auto b = pool.allocate(3333);
  ASSERT_TRUE(b);
  EXPECT_GE(pool.recycled(), 1u);
  EXPECT_EQ(pool.slab_misses(), miss0);  // second allocation hit the slab
  EXPECT_EQ(pool.recycled() + pool.slab_misses(), pool.allocations());
}

TEST(SlabRecycling, MakeBufferReusesThroughProcessSlab) {
  SlabCache& slab = SlabCache::process();
  slab.drain();
  auto a = make_buffer(7777, 0);
  std::uint64_t hits0 = slab.hits();
  a.reset();
  auto b = make_buffer(7777, 0);
  EXPECT_EQ(slab.hits(), hits0 + 1);
}

TEST(SlabRecycling, RecycledStorageComesBackZeroed) {
  SlabCache::process().drain();
  auto a = make_buffer(512, 16);
  std::memset(a->put(512), 0xab, 512);
  a.reset();
  auto b = make_buffer(512, 16);  // same size class: recycles a's storage
  const std::byte* raw = b->put(512);
  for (std::size_t i = 0; i < 512; ++i) {
    ASSERT_EQ(std::to_integer<int>(raw[i]), 0) << "offset " << i;
  }
}

TEST(SlabRecycling, LogicalCapacityDecoupledFromSlabClass) {
  // 3000 bytes lands in the 4096-byte slab class, but the buffer's
  // capacity — and the pool's accounting — must stay at the requested
  // logical size.
  BufferPool pool("p", 1 << 20);
  auto buf = pool.allocate(3000, 0);
  ASSERT_TRUE(buf);
  EXPECT_EQ(buf->capacity(), 3000u);
  EXPECT_EQ(buf->tailroom(), 3000u);
  EXPECT_EQ(pool.in_use(), 3000 + BufferPool::kPerBufferOverhead);
  buf->put(3000);
  EXPECT_THROW(buf->put(1), std::length_error);  // class slack unreachable
}

TEST(CacheKey, EqualityAndHashing) {
  CacheKey a = LbnKey{0, 42};
  CacheKey b = LbnKey{0, 42};
  CacheKey c = LbnKey{1, 42};
  CacheKey d = FhoKey{42, 0};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);  // LBN and FHO never compare equal
  EXPECT_EQ(CacheKeyHash{}(a), CacheKeyHash{}(b));
  EXPECT_TRUE(is_lbn(a));
  EXPECT_TRUE(is_fho(d));
  EXPECT_EQ(to_string(a), "LBN(t0,42)");
  EXPECT_EQ(to_string(d), "FHO(fh42,0)");
}

TEST(MsgBuffer, FromBytesRoundTrip) {
  auto pat = pattern(300);
  MsgBuffer m = MsgBuffer::from_bytes(pat);
  EXPECT_EQ(m.size(), 300u);
  EXPECT_TRUE(m.fully_physical());
  EXPECT_EQ(m.to_bytes(), pat);
}

TEST(MsgBuffer, SliceSharesBuffers) {
  auto pat = pattern(1000);
  MsgBuffer m = MsgBuffer::from_bytes(pat);
  MsgBuffer s = m.slice(100, 200);
  EXPECT_EQ(s.size(), 200u);
  auto expect = std::vector<std::byte>(pat.begin() + 100, pat.begin() + 300);
  EXPECT_EQ(s.to_bytes(), expect);
  // Shared, not copied: same underlying NetBuffer.
  const auto* orig = std::get_if<ByteSeg>(&m.segments()[0]);
  const auto* sub = std::get_if<ByteSeg>(&s.segments()[0]);
  ASSERT_TRUE(orig && sub);
  EXPECT_EQ(orig->buf.get(), sub->buf.get());
}

TEST(MsgBuffer, SliceAcrossSegments) {
  MsgBuffer m;
  m.append(MsgBuffer::from_bytes(pattern(100, 1)));
  m.append(MsgBuffer::from_bytes(pattern(100, 2)));
  m.append(MsgBuffer::from_bytes(pattern(100, 3)));
  ASSERT_EQ(m.size(), 300u);
  MsgBuffer s = m.slice(50, 200);
  EXPECT_EQ(s.size(), 200u);
  auto whole = m.to_bytes();
  auto expect = std::vector<std::byte>(whole.begin() + 50, whole.begin() + 250);
  EXPECT_EQ(s.to_bytes(), expect);
  EXPECT_EQ(s.segments().size(), 3u);
}

TEST(MsgBuffer, SliceOutOfRangeThrows) {
  MsgBuffer m = MsgBuffer::from_bytes(pattern(10));
  EXPECT_THROW(m.slice(5, 6), std::out_of_range);
  EXPECT_NO_THROW(m.slice(5, 5));
  EXPECT_EQ(m.slice(10, 0).size(), 0u);
}

TEST(MsgBuffer, KeyAndJunkSegments) {
  MsgBuffer m;
  m.append(MsgBuffer::from_bytes(pattern(64)));
  m.append(MsgBuffer::from_key(LbnKey{0, 7}, 0, 4096));
  m.append(MsgBuffer::junk(100));
  EXPECT_EQ(m.size(), 64u + 4096 + 100);
  EXPECT_FALSE(m.fully_physical());
  EXPECT_TRUE(m.has_keys());
  EXPECT_TRUE(m.has_junk());
  EXPECT_EQ(m.key_count(), 1u);
  EXPECT_EQ(m.logical_bytes(), 4196u);

  // Slicing a key segment re-ranges it.
  MsgBuffer s = m.slice(64 + 1000, 2000);
  ASSERT_EQ(s.segments().size(), 1u);
  const auto* k = std::get_if<KeySeg>(&s.segments()[0]);
  ASSERT_TRUE(k);
  EXPECT_EQ(k->off, 1000u);
  EXPECT_EQ(k->len, 2000u);
  EXPECT_EQ(k->key, CacheKey(LbnKey{0, 7}));
}

TEST(MsgBuffer, PeekBytesPhysicalPrefix) {
  MsgBuffer m;
  m.append(MsgBuffer::from_bytes(pattern(32)));
  m.append(MsgBuffer::junk(10));
  auto head = m.peek_bytes(32);
  EXPECT_EQ(head, pattern(32));
  EXPECT_THROW(m.peek_bytes(33), std::logic_error);
  EXPECT_THROW(m.peek_bytes(100), std::out_of_range);
}

TEST(MsgBuffer, AppendSplicesWithoutCopy) {
  MsgBuffer a = MsgBuffer::from_bytes(pattern(10, 1));
  const auto* buf_before = std::get_if<ByteSeg>(&a.segments()[0])->buf.get();
  MsgBuffer b;
  b.append(std::move(a));
  EXPECT_EQ(std::get_if<ByteSeg>(&b.segments()[0])->buf.get(), buf_before);
}

class CopyEngineTest : public ::testing::Test {
 protected:
  sim::EventLoop loop_;
  sim::CpuModel cpu_{loop_, "cpu"};
  sim::CostModel costs_{};
  CopyEngine eng_{cpu_, costs_};
};

TEST_F(CopyEngineTest, PhysicalCopyCountsAndCharges) {
  auto pat = pattern(4096);
  MsgBuffer src = MsgBuffer::from_bytes(pat);
  MsgBuffer dst = eng_.copy_message(src, CopyClass::RegularData);
  EXPECT_EQ(dst.to_bytes(), pat);
  EXPECT_EQ(eng_.stats().data_copy_ops, 1u);
  EXPECT_EQ(eng_.stats().data_copy_bytes, 4096u);
  EXPECT_EQ(eng_.stats().meta_copy_ops, 0u);
  EXPECT_EQ(cpu_.busy_ns(), costs_.copy_cost(4096));
}

TEST_F(CopyEngineTest, MetadataClassSeparated) {
  auto pat = pattern(128);
  eng_.copy_bytes_in(pat, CopyClass::Metadata);
  EXPECT_EQ(eng_.stats().meta_copy_ops, 1u);
  EXPECT_EQ(eng_.stats().data_copy_ops, 0u);
}

TEST_F(CopyEngineTest, LogicalCopySharesAndIsCheap) {
  MsgBuffer src;
  src.append(MsgBuffer::from_key(FhoKey{9, 4096}, 0, 4096));
  src.append(MsgBuffer::from_key(FhoKey{9, 8192}, 0, 4096));
  MsgBuffer dst = eng_.logical_copy(src);
  EXPECT_EQ(dst.size(), 8192u);
  EXPECT_EQ(dst.key_count(), 2u);
  EXPECT_EQ(eng_.stats().logical_copy_ops, 1u);
  EXPECT_EQ(eng_.stats().logical_copy_keys, 2u);
  EXPECT_EQ(eng_.stats().data_copy_ops, 0u);
  // Orders of magnitude cheaper than a physical copy of the same bytes.
  EXPECT_LT(cpu_.busy_ns(), costs_.copy_cost(8192) / 50);
}

TEST_F(CopyEngineTest, CopyBytesOutGathers) {
  MsgBuffer m;
  m.append(MsgBuffer::from_bytes(pattern(100, 1)));
  m.append(MsgBuffer::from_bytes(pattern(100, 2)));
  std::vector<std::byte> out(200);
  eng_.copy_bytes_out(m, out, CopyClass::RegularData);
  EXPECT_EQ(out, m.to_bytes());
  EXPECT_EQ(eng_.stats().data_copy_ops, 1u);
}

TEST_F(CopyEngineTest, CopyRawValidatesSize) {
  auto src = pattern(64);
  std::vector<std::byte> dst(32);
  EXPECT_THROW(eng_.copy_raw(src, dst, CopyClass::RegularData),
               std::length_error);
}

TEST_F(CopyEngineTest, ChecksumCharging) {
  eng_.charge_checksum(1000);
  EXPECT_EQ(eng_.stats().checksum_ops, 1u);
  EXPECT_EQ(eng_.stats().checksum_bytes, 1000u);
  EXPECT_EQ(cpu_.busy_ns(), costs_.checksum_cost(1000));
}

TEST_F(CopyEngineTest, ResetStats) {
  eng_.copy_bytes_in(pattern(10), CopyClass::RegularData);
  eng_.reset_stats();
  EXPECT_EQ(eng_.stats().data_copy_ops, 0u);
}

}  // namespace
}  // namespace ncache::netbuf
