// TCP edge cases beyond the happy path: Nagle/SWS behaviour, RST
// handling, duplicate SYNs, window-limited transfers, logical payloads
// through retransmission, and connection table reaping.
#include <gtest/gtest.h>

#include "netbuf/copy_engine.h"
#include "proto/stack.h"
#include "proto/switch.h"

namespace ncache::proto {
namespace {

using netbuf::MsgBuffer;

std::vector<std::byte> pattern(std::size_t n, int seed = 1) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = std::byte((i * 13 + seed) & 0xff);
  return v;
}

struct Pair {
  Pair()
      : book(std::make_shared<AddressBook>()),
        sw(loop, "sw", costs),
        a_cpu(loop, "a"),
        a_cp(a_cpu, costs),
        a(loop, a_cpu, a_cp, costs, "A", book),
        b_cpu(loop, "b"),
        b_cp(b_cpu, costs),
        b(loop, b_cpu, b_cp, costs, "B", book) {
    a.add_nic(0xa, make_ipv4(10, 0, 0, 1));
    b.add_nic(0xb, make_ipv4(10, 0, 0, 2));
    sw.connect(a.nic(0));
    sw.connect(b.nic(0));
  }
  sim::EventLoop loop;
  sim::CostModel costs;
  std::shared_ptr<AddressBook> book;
  EthernetSwitch sw;
  sim::CpuModel a_cpu;
  netbuf::CopyEngine a_cp;
  NetworkStack a;
  sim::CpuModel b_cpu;
  netbuf::CopyEngine b_cp;
  NetworkStack b;

  TcpConnectionPtr connect(std::uint16_t port) {
    TcpConnectionPtr out;
    auto fn = [&]() -> Task<void> {
      out = co_await a.tcp_connect(make_ipv4(10, 0, 0, 1),
                                   make_ipv4(10, 0, 0, 2), port);
    };
    sim::sync_wait(loop, fn());
    return out;
  }
};

TEST(TcpEdge, NagleCoalescesTinyWrites) {
  Pair p;
  std::uint64_t frames = 0;
  std::vector<std::byte> got;
  p.b.tcp_listen(80, [&](TcpConnectionPtr conn) {
    conn->set_data_handler([&](MsgBuffer m) {
      auto b = m.to_bytes();
      got.insert(got.end(), b.begin(), b.end());
    });
  });
  auto conn = p.connect(80);
  // 200 ten-byte sends back to back: without Nagle this would be 200
  // tiny frames; with it, the first goes out alone and the rest coalesce
  // into MSS-bounded segments.
  auto data = pattern(2000);
  for (int i = 0; i < 200; ++i) {
    conn->send(MsgBuffer::from_bytes(
        {data.data() + i * 10, 10}));
  }
  p.loop.run();
  frames = conn->stats().segments_sent;
  EXPECT_EQ(got, data);
  EXPECT_LT(frames, 30u);  // far fewer segments than sends
}

TEST(TcpEdge, WindowLimitsInflight) {
  Pair p;
  TcpConnectionPtr server_side;
  p.b.tcp_listen(80, [&](TcpConnectionPtr conn) {
    server_side = conn;
    conn->set_data_handler([](MsgBuffer) {});
  });
  auto conn = p.connect(80);
  conn->send(MsgBuffer::from_bytes(pattern(200 * 1000)));
  // At any instant the unacked bytes never exceed the 64 KB window.
  bool violated = false;
  for (int i = 0; i < 10000 && !p.loop.idle(); ++i) {
    p.loop.step();
    if (conn->unacked_bytes() > TcpConnection::kWindow) violated = true;
  }
  p.loop.run();
  EXPECT_FALSE(violated);
}

TEST(TcpEdge, RstTearsDownBothEnds) {
  Pair p;
  TcpConnectionPtr server_side;
  bool server_closed = false;
  p.b.tcp_listen(80, [&](TcpConnectionPtr conn) {
    server_side = conn;
    conn->set_on_close([&] { server_closed = true; });
    conn->set_data_handler([](MsgBuffer) {});
  });
  auto conn = p.connect(80);
  bool client_closed = false;
  conn->set_on_close([&] { client_closed = true; });
  conn->send(MsgBuffer::from_bytes(pattern(100)));
  p.loop.run();
  conn->reset();
  p.loop.run();
  EXPECT_TRUE(client_closed);
  EXPECT_TRUE(server_closed);
  EXPECT_EQ(server_side->state(), TcpConnection::State::Closed);
}

TEST(TcpEdge, DuplicateSynIsReanswered) {
  Pair p;
  int accepts = 0;
  p.b.tcp_listen(80, [&](TcpConnectionPtr) { ++accepts; });
  // Drop B's first SYNACK so A retransmits its SYN.
  int counter = 0;
  p.b.nic(0).set_egress_filter([&](Frame& f) {
    if (f.tcp && f.tcp->syn() && ++counter == 1) return false;
    return true;
  });
  auto conn = p.connect(80);
  ASSERT_TRUE(conn);
  EXPECT_TRUE(conn->established());
  p.loop.run();  // let the final ACK reach B
  EXPECT_EQ(accepts, 1);  // one logical connection despite the retry
}

TEST(TcpEdge, LogicalPayloadRetransmitsAsKeys) {
  // A KeySeg payload travels through the TCP retransmit queue without
  // materialization until (a missing) egress filter; both copies arrive
  // as logical segments.
  Pair p;
  std::size_t got_logical = 0;
  std::size_t got_total = 0;
  p.b.tcp_listen(80, [&](TcpConnectionPtr conn) {
    conn->set_data_handler([&](MsgBuffer m) {
      got_total += m.size();
      got_logical += m.logical_bytes();
    });
  });
  // Drop one data frame to force a retransmission.
  int counter = 0;
  p.a.nic(0).set_egress_filter([&](Frame& f) {
    if (f.tcp && !f.payload.empty() && ++counter == 2) return false;
    return true;
  });
  auto conn = p.connect(80);
  MsgBuffer payload;
  payload.append(MsgBuffer::from_key(netbuf::LbnKey{0, 1}, 0, 4096));
  payload.append(MsgBuffer::from_key(netbuf::LbnKey{0, 2}, 0, 4096));
  conn->send(std::move(payload));
  p.loop.run_until(10 * sim::kSecond);
  EXPECT_EQ(got_total, 8192u);
  EXPECT_EQ(got_logical, 8192u);
  EXPECT_GT(conn->stats().retransmits, 0u);
}

TEST(TcpEdge, ManySequentialConnections) {
  Pair p;
  int served = 0;
  p.b.tcp_listen(80, [&](TcpConnectionPtr conn) {
    conn->set_data_handler([conn, &served](MsgBuffer m) {
      ++served;
      conn->send(std::move(m));  // echo
      conn->close();
    });
  });
  auto fn = [&]() -> Task<void> {
    for (int i = 0; i < 50; ++i) {
      auto conn = co_await p.a.tcp_connect(make_ipv4(10, 0, 0, 1),
                                           make_ipv4(10, 0, 0, 2), 80);
      bool echoed = false;
      conn->set_data_handler([&](MsgBuffer) { echoed = true; });
      conn->send(MsgBuffer::from_string("ping"));
      while (!echoed) co_await sim::sleep_for(p.loop, sim::kMillisecond);
      conn->close();
    }
  };
  sim::sync_wait(p.loop, fn());
  EXPECT_EQ(served, 50);
}

TEST(TcpEdge, SendAfterCloseIsDropped) {
  Pair p;
  p.b.tcp_listen(80, [](TcpConnectionPtr conn) {
    conn->set_data_handler([](MsgBuffer) {});
  });
  auto conn = p.connect(80);
  conn->close();
  p.loop.run();
  auto sent_before = conn->stats().bytes_sent;
  conn->send(MsgBuffer::from_bytes(pattern(100)));
  p.loop.run();
  EXPECT_EQ(conn->stats().bytes_sent, sent_before);
}

TEST(TcpEdge, ZeroByteSendIsNoop) {
  Pair p;
  p.b.tcp_listen(80, [](TcpConnectionPtr conn) {
    conn->set_data_handler([](MsgBuffer) {});
  });
  auto conn = p.connect(80);
  auto segs = conn->stats().segments_sent;
  conn->send(MsgBuffer{});
  p.loop.run();
  EXPECT_EQ(conn->stats().segments_sent, segs);
}

}  // namespace
}  // namespace ncache::proto
