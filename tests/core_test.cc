// Tests for the network-centric cache: both indexes, LRU eviction under
// the pinned-memory budget, the FHO->LBN remapping protocol with
// forwarding, the freshness rule (FHO before LBN), and the module's
// egress substitution filter.
#include <gtest/gtest.h>

#include "core/ncache_module.h"
#include "core/net_centric_cache.h"
#include "proto/switch.h"

namespace ncache::core {
namespace {

using netbuf::CacheKey;
using netbuf::FhoKey;
using netbuf::LbnKey;
using netbuf::MsgBuffer;

MsgBuffer chain_of(std::size_t bytes, int seed) {
  // Mimic a wire chain: MTU-ish fragments.
  MsgBuffer m;
  std::size_t left = bytes;
  while (left > 0) {
    std::size_t take = std::min<std::size_t>(1460, left);
    auto buf = netbuf::make_buffer(take);
    auto span = buf->put(take);
    for (std::size_t i = 0; i < take; ++i) {
      span[i] = std::byte((i * 17 + seed) & 0xff);
    }
    m.append(netbuf::ByteSeg{std::move(buf), 0, std::uint32_t(take)});
    left -= take;
  }
  return m;
}

class CacheTest : public ::testing::Test {
 protected:
  CacheTest() : cpu_(loop_, "cpu") {}

  NetCentricCache make_cache(std::size_t budget) {
    return NetCentricCache(cpu_, costs_, {budget, 4096});
  }

  sim::EventLoop loop_;
  sim::CostModel costs_{};
  sim::CpuModel cpu_;
};

TEST_F(CacheTest, InsertAndLookupLbn) {
  auto cache = make_cache(1 << 20);
  MsgBuffer chain = chain_of(4096, 1);
  auto expected = chain.to_bytes();
  ASSERT_TRUE(cache.insert_lbn(LbnKey{0, 7}, std::move(chain)));
  EXPECT_EQ(cache.chunk_count(), 1u);
  EXPECT_TRUE(cache.contains_lbn(7, 0));
  EXPECT_FALSE(cache.contains_lbn(7, 1));  // different target

  auto got = cache.lookup(CacheKey(LbnKey{0, 7}));
  ASSERT_TRUE(got);
  EXPECT_EQ(got->to_bytes(), expected);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_FALSE(cache.lookup(CacheKey(LbnKey{0, 8})));
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST_F(CacheTest, PinnedBytesIncludeOverhead) {
  auto cache = make_cache(1 << 20);
  cache.insert_lbn(LbnKey{0, 1}, chain_of(4096, 1));
  // 3 fragments of ~1460B each + headroom + descriptor overhead: the
  // chunk must cost measurably more than its 4096 payload bytes — the
  // §6(a) metadata overhead.
  EXPECT_GT(cache.pinned_bytes(), 4096u + 300);
}

TEST_F(CacheTest, LruEvictionUnderBudget) {
  // Budget for roughly 4 chunks.
  auto cache = make_cache(4 * 5200);
  for (std::uint64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(cache.insert_lbn(LbnKey{0, i}, chain_of(4096, int(i))));
  }
  EXPECT_GT(cache.stats().evictions, 0u);
  // Oldest blocks evicted; newest retained.
  EXPECT_FALSE(cache.contains_lbn(0, 0));
  EXPECT_TRUE(cache.contains_lbn(7, 0));
}

TEST_F(CacheTest, LookupTouchProtectsHotChunks) {
  auto cache = make_cache(4 * 5200);
  for (std::uint64_t i = 0; i < 4; ++i) {
    cache.insert_lbn(LbnKey{0, i}, chain_of(4096, int(i)));
  }
  // Touch block 0 so block 1 becomes the LRU victim.
  (void)cache.lookup(CacheKey(LbnKey{0, 0}));
  cache.insert_lbn(LbnKey{0, 100}, chain_of(4096, 9));
  EXPECT_TRUE(cache.contains_lbn(0, 0));
  EXPECT_FALSE(cache.contains_lbn(1, 0));
}

TEST_F(CacheTest, FhoFreshnessBeatsLbn) {
  auto cache = make_cache(1 << 20);
  // Same logical block: old LBN copy and a newer FHO write.
  cache.insert_lbn(LbnKey{0, 5}, chain_of(4096, 1));
  MsgBuffer newer = chain_of(4096, 2);
  auto newer_bytes = newer.to_bytes();
  cache.insert_fho(FhoKey{42, 0}, std::move(newer));

  auto got = cache.lookup(CacheKey(FhoKey{42, 0}));
  ASSERT_TRUE(got);
  EXPECT_EQ(got->to_bytes(), newer_bytes);
}

TEST_F(CacheTest, FhoOverwriteKeepsLatest) {
  auto cache = make_cache(1 << 20);
  cache.insert_fho(FhoKey{1, 0}, chain_of(4096, 1));
  MsgBuffer v2 = chain_of(4096, 2);
  auto v2_bytes = v2.to_bytes();
  cache.insert_fho(FhoKey{1, 0}, std::move(v2));
  EXPECT_EQ(cache.stats().fho_overwrites, 1u);
  EXPECT_EQ(cache.chunk_count(), 1u);
  auto got = cache.lookup(CacheKey(FhoKey{1, 0}));
  ASSERT_TRUE(got);
  EXPECT_EQ(got->to_bytes(), v2_bytes);
}

TEST_F(CacheTest, RemapMovesToLbnWithForwarding) {
  auto cache = make_cache(1 << 20);
  MsgBuffer data = chain_of(4096, 3);
  auto bytes = data.to_bytes();
  cache.insert_fho(FhoKey{9, 8192}, std::move(data));

  ASSERT_TRUE(cache.remap(FhoKey{9, 8192}, LbnKey{0, 55}));
  EXPECT_EQ(cache.stats().remaps, 1u);
  EXPECT_TRUE(cache.contains_lbn(55, 0));

  // Both the new LBN key and the old FHO key resolve (§3.4: replies can
  // carry both).
  auto by_lbn = cache.lookup(CacheKey(LbnKey{0, 55}));
  ASSERT_TRUE(by_lbn);
  EXPECT_EQ(by_lbn->to_bytes(), bytes);
  auto by_fho = cache.lookup(CacheKey(FhoKey{9, 8192}));
  ASSERT_TRUE(by_fho);
  EXPECT_EQ(by_fho->to_bytes(), bytes);
  EXPECT_EQ(cache.stats().forward_hits, 1u);

  // Remapping something absent fails.
  EXPECT_FALSE(cache.remap(FhoKey{9, 0}, LbnKey{0, 56}));
}

TEST_F(CacheTest, RemapOverwritesStaleLbnEntry) {
  auto cache = make_cache(1 << 20);
  cache.insert_lbn(LbnKey{0, 30}, chain_of(4096, 1));  // stale
  MsgBuffer fresh = chain_of(4096, 2);
  auto fresh_bytes = fresh.to_bytes();
  cache.insert_fho(FhoKey{7, 0}, std::move(fresh));
  ASSERT_TRUE(cache.remap(FhoKey{7, 0}, LbnKey{0, 30}));
  EXPECT_EQ(cache.stats().remap_overwrites, 1u);
  auto got = cache.lookup(CacheKey(LbnKey{0, 30}));
  ASSERT_TRUE(got);
  EXPECT_EQ(got->to_bytes(), fresh_bytes);
  EXPECT_EQ(cache.chunk_count(), 1u);
}

TEST_F(CacheTest, DirtyFhoChunksSurviveEviction) {
  auto cache = make_cache(4 * 5200);
  cache.insert_fho(FhoKey{1, 0}, chain_of(4096, 1));  // dirty, unflushed
  for (std::uint64_t i = 0; i < 8; ++i) {
    cache.insert_lbn(LbnKey{0, i}, chain_of(4096, int(i)));
  }
  // The dirty chunk must never have been reclaimed.
  EXPECT_TRUE(cache.lookup(CacheKey(FhoKey{1, 0})));
  EXPECT_GT(cache.stats().dirty_skips, 0u);
}

TEST_F(CacheTest, RewriteAfterRemapDropsForwarding) {
  auto cache = make_cache(1 << 20);
  cache.insert_fho(FhoKey{3, 0}, chain_of(4096, 1));
  cache.remap(FhoKey{3, 0}, LbnKey{0, 77});
  // A second write to the same file offset.
  MsgBuffer v2 = chain_of(4096, 9);
  auto v2_bytes = v2.to_bytes();
  cache.insert_fho(FhoKey{3, 0}, std::move(v2));
  // FHO lookups now see the new dirty data, not the remapped old chunk.
  auto got = cache.lookup(CacheKey(FhoKey{3, 0}));
  ASSERT_TRUE(got);
  EXPECT_EQ(got->to_bytes(), v2_bytes);
}

TEST_F(CacheTest, ClearDropsEverything) {
  auto cache = make_cache(1 << 20);
  cache.insert_lbn(LbnKey{0, 1}, chain_of(4096, 1));
  cache.insert_fho(FhoKey{1, 0}, chain_of(4096, 2));
  cache.clear();
  EXPECT_EQ(cache.chunk_count(), 0u);
  EXPECT_EQ(cache.pinned_bytes(), 0u);
}

// ---------------------------------------------------------------------------
// Module: ingestion + egress substitution
// ---------------------------------------------------------------------------

class ModuleTest : public ::testing::Test {
 protected:
  ModuleTest()
      : book_(std::make_shared<proto::AddressBook>()),
        cpu_(loop_, "cpu"),
        copier_(cpu_, costs_),
        stack_(loop_, cpu_, copier_, costs_, "host", book_),
        module_(stack_, {1 << 20, 4096}) {
    stack_.add_nic(0xaa, proto::make_ipv4(10, 0, 0, 1));
  }

  sim::EventLoop loop_;
  sim::CostModel costs_{};
  std::shared_ptr<proto::AddressBook> book_;
  sim::CpuModel cpu_;
  netbuf::CopyEngine copier_;
  proto::NetworkStack stack_;
  NCacheModule module_;
};

TEST_F(ModuleTest, IngestLbnReturnsKeys) {
  MsgBuffer chain = chain_of(4096, 4);
  auto bytes = chain.to_bytes();
  MsgBuffer keys = module_.ingest_lbn(0, 123, std::move(chain));
  EXPECT_EQ(keys.size(), 4096u);
  EXPECT_TRUE(keys.has_keys());
  EXPECT_EQ(keys.key_count(), 1u);
  auto cached = module_.cache().lookup(CacheKey(LbnKey{0, 123}));
  ASSERT_TRUE(cached);
  EXPECT_EQ(cached->to_bytes(), bytes);
}

TEST_F(ModuleTest, EgressSubstitutesKeysWithRealBytes) {
  MsgBuffer chain = chain_of(4096, 5);
  auto bytes = chain.to_bytes();
  module_.ingest_lbn(0, 9, std::move(chain));

  proto::Frame f;
  f.payload.append(MsgBuffer::from_bytes(std::vector<std::byte>(32)));  // hdr
  f.payload.append(MsgBuffer::from_key(CacheKey(LbnKey{0, 9}), 1000, 1460));
  ASSERT_TRUE(module_.egress_filter(f));

  EXPECT_TRUE(f.payload.fully_physical());
  EXPECT_TRUE(f.l4_checksum_inherited);
  auto out = f.payload.to_bytes();
  std::vector<std::byte> tail(out.begin() + 32, out.end());
  std::vector<std::byte> expect(bytes.begin() + 1000, bytes.begin() + 2460);
  EXPECT_EQ(tail, expect);
  EXPECT_EQ(module_.stats().frames_substituted, 1u);
  EXPECT_EQ(module_.stats().keys_substituted, 1u);
}

TEST_F(ModuleTest, EgressPassesMetadataFramesUntouched) {
  proto::Frame f;
  f.payload = MsgBuffer::from_string("metadata only");
  ASSERT_TRUE(module_.egress_filter(f));
  EXPECT_EQ(module_.stats().frames_passed, 1u);
  EXPECT_FALSE(f.l4_checksum_inherited);
}

TEST_F(ModuleTest, EgressMissBecomesJunkNotDrop) {
  proto::Frame f;
  f.payload.append(MsgBuffer::from_key(CacheKey(LbnKey{0, 404}), 0, 1460));
  ASSERT_TRUE(module_.egress_filter(f));  // frame must not be dropped
  EXPECT_TRUE(f.payload.has_junk());
  EXPECT_EQ(module_.stats().substitution_misses, 1u);
}

TEST_F(ModuleTest, RemapOnFlushWalksKeySegments) {
  module_.ingest_fho(FhoKey{11, 0}, chain_of(4096, 1));
  module_.ingest_fho(FhoKey{11, 4096}, chain_of(4096, 2));

  MsgBuffer payload;
  payload.append(MsgBuffer::from_key(CacheKey(FhoKey{11, 0}), 0, 4096));
  module_.remap_on_flush(0, 500, payload);
  EXPECT_TRUE(module_.cache().contains_lbn(500, 0));
  // Second block untouched.
  EXPECT_FALSE(module_.cache().contains_lbn(501, 0));
  EXPECT_TRUE(module_.cache().lookup(CacheKey(FhoKey{11, 4096})));
}

TEST_F(ModuleTest, SubstitutionChargesCpu) {
  module_.ingest_lbn(0, 9, chain_of(4096, 5));
  auto busy_before = cpu_.busy_ns();
  proto::Frame f;
  f.payload.append(MsgBuffer::from_key(CacheKey(LbnKey{0, 9}), 0, 1460));
  module_.egress_filter(f);
  EXPECT_GE(cpu_.busy_ns() - busy_before, costs_.ncache_substitute_ns);
}

}  // namespace
}  // namespace ncache::core
