// Tests for the §6 extension: wire-format block cache on the iSCSI
// target. Correctness (byte-identical data with the extension enabled in
// every app-server mode), target-side copy elimination (2 -> 1 cold,
// 2 -> 0 warm), disk-traffic elimination on warm reads, and write-path
// ingestion.
#include <gtest/gtest.h>

#include "fs/image_builder.h"
#include "testbed/testbed.h"

namespace ncache {
namespace {

using core::PassMode;
using nfs::Status;
using testbed::Testbed;
using testbed::TestbedConfig;

template <typename F>
void run_on(Testbed& tb, F&& body) {
  auto t_fn = [&]() -> Task<void> { co_await body(); };
  sim::sync_wait(tb.loop(), t_fn());
}

class WireTargetModes : public ::testing::TestWithParam<PassMode> {};

TEST_P(WireTargetModes, EndToEndIntegrityWithExtension) {
  TestbedConfig cfg;
  cfg.mode = GetParam();
  cfg.wire_format_target = true;
  Testbed tb(cfg);
  std::uint32_t ino = tb.image().add_file("f.bin", 1 << 20);
  tb.start_nfs();
  if (GetParam() == PassMode::Baseline) GTEST_SKIP() << "junk by design";

  run_on(tb, [&]() -> Task<void> {
    auto& client = tb.nfs_client(0);
    for (int pass = 0; pass < 2; ++pass) {  // cold pass, then warm
      co_await tb.fs().cache().drop_all();
      if (tb.ncache()) tb.ncache()->cache().clear();
      for (std::uint64_t off = 0; off < (1u << 20); off += 32768) {
        auto r = co_await client.read(ino, off, 32768);
        EXPECT_EQ(r.status, Status::Ok);
        EXPECT_EQ(fs::verify_content(ino, off, r.data.to_bytes()),
                  std::size_t(-1))
            << "pass " << pass << " offset " << off;
      }
    }
  });
  EXPECT_GT(tb.target().stats().wire_cache_misses, 0u);
  EXPECT_GT(tb.target().stats().wire_cache_hits, 0u);
}

INSTANTIATE_TEST_SUITE_P(Modes, WireTargetModes,
                         ::testing::Values(PassMode::Original,
                                           PassMode::NCache),
                         [](const auto& info) {
                           return std::string(core::to_string(info.param));
                         });

TEST(WireTarget, ColdReadIsOneCopyWarmReadIsZero) {
  TestbedConfig cfg;
  cfg.mode = PassMode::Original;
  cfg.wire_format_target = true;
  Testbed tb(cfg);
  std::uint32_t ino = tb.image().add_file("f.bin", 256 * 1024);
  tb.start_nfs();

  run_on(tb, [&]() -> Task<void> {
    auto& client = tb.nfs_client(0);
    (void)co_await client.getattr(ino);  // warm server metadata

    // Cold block: one disk-to-wire copy on the target.
    tb.storage_node().copier.reset_stats();
    (void)co_await client.read(ino, 0, fs::kBlockSize);
    EXPECT_EQ(tb.storage_node().copier.stats().data_copy_ops, 1u);

    // Warm block via a different fs offset (app-server caches would hide
    // repeats of the same block): evict app caches, reread.
    co_await tb.fs().cache().drop_all();
    tb.storage_node().copier.reset_stats();
    (void)co_await client.read(ino, 0, fs::kBlockSize);
    EXPECT_EQ(tb.storage_node().copier.stats().data_copy_ops, 0u);
  });
}

TEST(WireTarget, WarmReadsSkipTheDisks) {
  TestbedConfig cfg;
  cfg.mode = PassMode::Original;
  cfg.fs_cache_blocks = 64;  // tiny app cache: rereads reach the target
  cfg.wire_format_target = true;
  Testbed tb(cfg);
  std::uint32_t ino = tb.image().add_file("f.bin", 1 << 20);
  tb.start_nfs();

  run_on(tb, [&]() -> Task<void> {
    auto& client = tb.nfs_client(0);
    for (std::uint64_t off = 0; off < (1u << 20); off += 32768) {
      (void)co_await client.read(ino, off, 32768);
    }
    std::uint64_t disk_reads = tb.store().reads();
    co_await tb.fs().cache().drop_all();
    for (std::uint64_t off = 0; off < (1u << 20); off += 32768) {
      auto r = co_await client.read(ino, off, 32768);
      EXPECT_EQ(fs::verify_content(ino, off, r.data.to_bytes()),
                std::size_t(-1));
    }
    // The second sweep was served from the target's wire cache: at most a
    // couple of metadata re-reads touched the disks.
    EXPECT_LE(tb.store().reads(), disk_reads + 2);
  });
}

TEST(WireTarget, WritesAreIngestedForFreeReads) {
  TestbedConfig cfg;
  cfg.mode = PassMode::Original;
  cfg.fs_cache_blocks = 64;
  cfg.wire_format_target = true;
  Testbed tb(cfg);
  tb.start_nfs();

  run_on(tb, [&]() -> Task<void> {
    auto& client = tb.nfs_client(0);
    auto fh = co_await client.create(fs::kRootIno, "w.bin");
    EXPECT_TRUE(fh);
    if (!fh) co_return;
    std::vector<std::byte> data(32768);
    fs::fill_content(std::uint32_t(*fh), 0, data);
    EXPECT_EQ(co_await client.write(*fh, 0, data), Status::Ok);
    co_await tb.fs().sync();  // flush: the write chain lands in the target

    // Drop app caches, reread: the target serves from its wire cache
    // without reading the disks.
    co_await tb.fs().cache().drop_all();
    std::uint64_t disk_reads = tb.store().reads();
    auto r = co_await client.read(*fh, 0, 32768);
    EXPECT_EQ(r.data.to_bytes(), data);
    // Data blocks came from the wire cache (metadata may still re-read).
    EXPECT_LE(tb.store().reads(), disk_reads + 2);
    EXPECT_GT(tb.target().stats().wire_cache_hits, 0u);
  });
}

TEST(WireTarget, DisabledByDefault) {
  TestbedConfig cfg;
  Testbed tb(cfg);
  EXPECT_EQ(tb.wire_target(), nullptr);
  EXPECT_FALSE(tb.target().wire_cache_attached());
}

}  // namespace
}  // namespace ncache
