// kHTTPd end-to-end tests over the testbed: request parsing, keep-alive,
// 404s, body integrity per mode, sendfile copy counts (Table 2's kHTTPd
// row), and NCache substitution on the HTTP path.
#include <gtest/gtest.h>

#include "http/client.h"
#include "http/khttpd.h"
#include "testbed/testbed.h"

namespace ncache::http {
namespace {

using core::PassMode;
using netbuf::MsgBuffer;
using testbed::Testbed;
using testbed::TestbedConfig;

struct WebEnd {
  explicit WebEnd(PassMode mode, TestbedConfig base = {}) {
    base.mode = mode;
    tb = std::make_unique<Testbed>(base);
    small_ino = tb->image().add_file("index.html", 30'000);
    big_ino = tb->image().add_file("big.bin", 700'000);
    sub = tb->image().add_dir("assets");
    nested_ino = tb->image().add_file("logo.png", 12'345, sub);
    tb->start_base();

    KHttpd::Config hc;
    hc.mode = mode;
    server = std::make_unique<KHttpd>(tb->server_node().stack, tb->fs(), hc,
                                      tb->ncache());
    server->start();

    client = std::make_unique<HttpClient>(tb->client_node(0).stack,
                                          tb->client_ip(0), tb->server_ip(0));
  }

  template <typename F>
  void run(F&& body) {
    auto t_fn = [&]() -> Task<void> { co_await body(); };
    sim::sync_wait(tb->loop(), t_fn());
  }

  std::unique_ptr<Testbed> tb;
  std::unique_ptr<KHttpd> server;
  std::unique_ptr<HttpClient> client;
  std::uint32_t small_ino = 0, big_ino = 0, nested_ino = 0, sub = 0;
};

class HttpModes : public ::testing::TestWithParam<PassMode> {};

TEST_P(HttpModes, GetSmallPage) {
  WebEnd e(GetParam());
  e.run([&]() -> Task<void> {
    EXPECT_TRUE(co_await e.client->connect());
    auto r = co_await e.client->get("/index.html");
    EXPECT_EQ(r.status, 200);
    EXPECT_EQ(r.content_length, 30'000u);
    if (GetParam() == PassMode::Baseline) {
      EXPECT_TRUE(r.junk);
    } else {
      EXPECT_FALSE(r.junk);
      EXPECT_EQ(fs::verify_content(e.small_ino, 0, r.body.to_bytes()),
                std::size_t(-1));
    }
  });
}

TEST_P(HttpModes, GetLargeBodyAcrossManyChunks) {
  WebEnd e(GetParam());
  if (GetParam() == PassMode::Baseline) GTEST_SKIP() << "junk by design";
  e.run([&]() -> Task<void> {
    EXPECT_TRUE(co_await e.client->connect());
    auto r = co_await e.client->get("/big.bin");
    EXPECT_EQ(r.status, 200);
    EXPECT_EQ(r.content_length, 700'000u);
    EXPECT_EQ(fs::verify_content(e.big_ino, 0, r.body.to_bytes()),
              std::size_t(-1));
  });
}

TEST_P(HttpModes, KeepAliveSequence) {
  WebEnd e(GetParam());
  e.run([&]() -> Task<void> {
    EXPECT_TRUE(co_await e.client->connect());
    for (int i = 0; i < 5; ++i) {
      auto r = co_await e.client->get("/index.html");
      EXPECT_EQ(r.status, 200);
    }
    auto r404 = co_await e.client->get("/missing.html");
    EXPECT_EQ(r404.status, 404);
    auto again = co_await e.client->get("/index.html");
    EXPECT_EQ(again.status, 200);
  });
  EXPECT_EQ(e.server->stats().requests, 7u);
  EXPECT_EQ(e.server->stats().connections, 1u);
}

TEST_P(HttpModes, NestedPathResolution) {
  WebEnd e(GetParam());
  e.run([&]() -> Task<void> {
    EXPECT_TRUE(co_await e.client->connect());
    auto r = co_await e.client->get("/assets/logo.png");
    EXPECT_EQ(r.status, 200);
    EXPECT_EQ(r.content_length, 12'345u);
    auto miss = co_await e.client->get("/assets/absent.png");
    EXPECT_EQ(miss.status, 404);
  });
}

INSTANTIATE_TEST_SUITE_P(AllModes, HttpModes,
                         ::testing::Values(PassMode::Original,
                                           PassMode::NCache,
                                           PassMode::Baseline),
                         [](const auto& info) {
                           return std::string(core::to_string(info.param));
                         });

TEST(HttpCopyCounts, SendfileIsOneCopyOnHitTwoOnMiss) {
  WebEnd e(PassMode::Original);
  e.run([&]() -> Task<void> {
    EXPECT_TRUE(co_await e.client->connect());
    // Warm metadata (root dir + inode blocks) with a 404 probe + getattr
    // via a first small read of a *different* file than we measure.
    (void)co_await e.client->get("/missing");
    e.tb->server_node().copier.reset_stats();

    // Cold file: miss = initiator copy + sendfile copy = 2.
    auto r = co_await e.client->get("/index.html");
    EXPECT_EQ(r.status, 200);
    // The 30 KB file is read in one 64 KB sendfile chunk: 1 iSCSI->cache
    // copy + 1 cache->socket copy.
    EXPECT_EQ(e.tb->server_node().copier.stats().data_copy_ops, 2u);

    // Warm file: hit = sendfile copy only = 1.
    e.tb->server_node().copier.reset_stats();
    r = co_await e.client->get("/index.html");
    EXPECT_EQ(r.status, 200);
    EXPECT_EQ(e.tb->server_node().copier.stats().data_copy_ops, 1u);
  });
}

TEST(HttpNCache, ZeroServerDataCopiesAndSubstitution) {
  WebEnd e(PassMode::NCache);
  e.run([&]() -> Task<void> {
    EXPECT_TRUE(co_await e.client->connect());
    (void)co_await e.client->get("/missing");
    e.tb->server_node().copier.reset_stats();
    auto r = co_await e.client->get("/big.bin");
    EXPECT_EQ(r.status, 200);
    EXPECT_FALSE(r.junk);
    EXPECT_EQ(fs::verify_content(e.big_ino, 0, r.body.to_bytes()),
              std::size_t(-1));
    EXPECT_EQ(e.tb->server_node().copier.stats().data_copy_ops, 0u);
    EXPECT_GT(e.tb->ncache()->stats().frames_substituted, 100u);  // ~480
  });
}

TEST(HttpBehaviour, RejectsNonGet) {
  WebEnd e(PassMode::Original);
  e.run([&]() -> Task<void> {
    // Hand-roll a POST over a raw TCP connection.
    auto conn = co_await e.tb->client_node(0).stack.tcp_connect(
        e.tb->client_ip(0), e.tb->server_ip(0), 80);
    std::vector<std::byte> got;
    conn->set_data_handler([&](MsgBuffer m) {
      auto b = m.to_bytes();
      got.insert(got.end(), b.begin(), b.end());
    });
    conn->send(MsgBuffer::from_string(
        "POST /x HTTP/1.1\r\nHost: h\r\nContent-Length: 0\r\n\r\n"));
    co_await sim::sleep_for(e.tb->loop(), 50 * sim::kMillisecond);
    std::string text(reinterpret_cast<const char*>(got.data()), got.size());
    EXPECT_NE(text.find("400 Bad Request"), std::string::npos);
  });
}

TEST(HttpBehaviour, PipelinedRequestsServeInOrder) {
  WebEnd e(PassMode::Original);
  e.run([&]() -> Task<void> {
    auto conn = co_await e.tb->client_node(0).stack.tcp_connect(
        e.tb->client_ip(0), e.tb->server_ip(0), 80);
    std::vector<std::byte> got;
    conn->set_data_handler([&](MsgBuffer m) {
      auto b = m.to_bytes();
      got.insert(got.end(), b.begin(), b.end());
    });
    // Two requests in one segment.
    conn->send(MsgBuffer::from_string(
        "GET /assets/logo.png HTTP/1.1\r\n\r\nGET /missing HTTP/1.1\r\n\r\n"));
    co_await sim::sleep_for(e.tb->loop(), 200 * sim::kMillisecond);
    std::string text(reinterpret_cast<const char*>(got.data()), got.size());
    auto first = text.find("200 OK");
    auto second = text.find("404 Not Found");
    EXPECT_NE(first, std::string::npos);
    EXPECT_NE(second, std::string::npos);
    EXPECT_LT(first, second);
  });
}

}  // namespace
}  // namespace ncache::http
