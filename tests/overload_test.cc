// The overload-control spine (PR 9), bottom to top:
//
//  * Primitives: token-bucket refill/cap, retry-budget deposit/withdraw/
//    reserve accounting, the CoDel control law (arm, ramp, reset), and
//    AIMD clamping — all on caller-supplied nanoseconds.
//  * Cache freshness: insert_lbn/insert_fho stamp chunks with the loop
//    clock, so the ServeStale brownout tier can bound staleness by age.
//  * Brownout ladder: sustained pressure escalates Normal -> ServeStale ->
//    PhysicalCopy -> Shed (the window is not cleared between tiers, and a
//    big enough window skips tiers); recovery steps down one tier at a
//    time, gated by dwell + quiet hysteresis. The PhysicalCopy crossing
//    keeps the legacy degraded()/degraded_ns() accounting intact.
//  * NFS server: the hard queue bound drops (and meters) floods even with
//    every overload gate off; with the gate on, CoDel sheds standing
//    queues while metadata ops jump past the data backlog.
//  * kHTTPd: the connection cap refuses accepts; CoDel sheds pipelined
//    requests with a cheap 503.
//  * Cluster: VIP admission sheds a flood at ingress and the AIMD
//    controller backs off on replica queue-depth feedback piggybacked on
//    heartbeat acks (zero extra packets).
//  * Retry budget end-to-end: with an empty budget a dead server fails
//    fast (one RTO, no retransmit storm) instead of walking the full
//    six-attempt ladder; service resumes when the cable heals.
//  * Differential discipline: with every gate off, runs are byte-identical
//    across repeats and across inert queue-bound changes (streams and
//    metrics JSON both).
//  * ParallelEngine: a flash-crowd spike over cluster_racks is
//    byte-identical at T=1 and T=2 while shedding is active.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cluster/cluster_testbed.h"
#include "common/overload.h"
#include "core/ncache_module.h"
#include "fs/image_builder.h"
#include "http/client.h"
#include "http/khttpd.h"
#include "proto/switch.h"
#include "testbed/testbed.h"
#include "topo/instantiator.h"
#include "topo/presets.h"
#include "workload/counters.h"
#include "workload/load_curve.h"

namespace ncache {
namespace {

using cluster::ClusterConfig;
using cluster::ClusterTestbed;
using core::BrownoutTier;
using core::NCacheModule;
using core::PassMode;
using http::HttpClient;
using http::KHttpd;
using netbuf::CacheKey;
using netbuf::LbnKey;
using netbuf::MsgBuffer;
using nfs::Status;
using sim::kMillisecond;
using sim::kSecond;
using testbed::Testbed;
using testbed::TestbedConfig;

template <typename F>
void run_on(sim::EventLoop& loop, F&& body) {
  auto t_fn = [&]() -> Task<void> { co_await body(); };
  sim::sync_wait(loop, t_fn());
}

/// Strips the process-global slab-recycler lines from a metrics dump so
/// back-to-back runs in one process compare equal (see cluster_test).
std::string scrub_slab(const std::string& json) {
  std::string out;
  std::size_t pos = 0;
  while (pos < json.size()) {
    std::size_t eol = json.find('\n', pos);
    if (eol == std::string::npos) eol = json.size();
    std::string_view line(json.data() + pos, eol - pos);
    if (line.find("netbuf.slab") == std::string_view::npos) {
      out.append(line);
      out.push_back('\n');
    }
    pos = eol + 1;
  }
  return out;
}

MsgBuffer chain_of(std::size_t bytes, int seed) {
  MsgBuffer m;
  std::size_t left = bytes;
  while (left > 0) {
    std::size_t take = std::min<std::size_t>(1460, left);
    auto buf = netbuf::make_buffer(take);
    auto span = buf->put(take);
    for (std::size_t i = 0; i < take; ++i) {
      span[i] = std::byte((i * 17 + seed) & 0xff);
    }
    m.append(netbuf::ByteSeg{std::move(buf), 0, std::uint32_t(take)});
    left -= take;
  }
  return m;
}

// ---------------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------------

TEST(OverloadPrimitives, TokenBucketRefillAndCap) {
  overload::TokenBucket tb(100.0, 10.0);
  EXPECT_DOUBLE_EQ(tb.available(0), 10.0);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(tb.try_take(0));
  EXPECT_FALSE(tb.try_take(0));

  // 50 ms at 100/s refills 5 tokens.
  EXPECT_NEAR(tb.available(50'000'000), 5.0, 1e-9);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(tb.try_take(50'000'000));
  EXPECT_FALSE(tb.try_take(50'000'000));

  // A long idle stretch caps at the burst, never beyond.
  EXPECT_DOUBLE_EQ(tb.available(100 * kSecond), 10.0);

  tb.set_rate(200.0);
  EXPECT_DOUBLE_EQ(tb.rate(), 200.0);
}

TEST(OverloadPrimitives, RetryBudgetDepositWithdrawReserve) {
  overload::RetryBudget::Config c;
  c.deposit_ratio = 0.5;
  c.capacity = 3.0;
  c.reserve_per_sec = 0.0;
  c.initial = 1.0;
  overload::RetryBudget b(c);

  EXPECT_TRUE(b.try_withdraw(0));
  EXPECT_FALSE(b.try_withdraw(0));  // drained; no reserve
  EXPECT_EQ(b.withdrawn(), 1u);
  EXPECT_EQ(b.denied(), 1u);

  // Two successes buy one retry at a 0.5 deposit ratio.
  b.deposit(0);
  EXPECT_FALSE(b.try_withdraw(0));
  b.deposit(0);
  EXPECT_TRUE(b.try_withdraw(0));

  // Deposits cap at `capacity`.
  for (int i = 0; i < 100; ++i) b.deposit(0);
  EXPECT_DOUBLE_EQ(b.balance(0), 3.0);

  b.reset_counters();
  EXPECT_EQ(b.withdrawn(), 0u);
  EXPECT_EQ(b.denied(), 0u);

  // The time-based reserve keeps probes alive with zero successes.
  overload::RetryBudget::Config rc;
  rc.reserve_per_sec = 2.0;
  rc.initial = 0.0;
  overload::RetryBudget probe(rc);
  EXPECT_FALSE(probe.try_withdraw(0));
  EXPECT_NEAR(probe.balance(1 * kSecond), 2.0, 1e-9);
  EXPECT_TRUE(probe.try_withdraw(1 * kSecond));
}

TEST(OverloadPrimitives, CoDelArmsRampsAndResets) {
  overload::CoDelState::Config c;
  c.target_ns = 5'000'000;     // 5 ms
  c.interval_ns = 100'000'000; // 100 ms
  overload::CoDelState codel(c);

  // Below target: nothing happens.
  EXPECT_FALSE(codel.on_dequeue(1 * kSecond, 1'000'000));
  EXPECT_FALSE(codel.dropping());

  // Above target arms the window; drops only after a full interval above.
  EXPECT_FALSE(codel.on_dequeue(1 * kSecond, 10'000'000));
  EXPECT_FALSE(codel.on_dequeue(1 * kSecond + 50 * kMillisecond, 10'000'000));
  EXPECT_TRUE(codel.on_dequeue(1 * kSecond + 100 * kMillisecond, 10'000'000));
  EXPECT_TRUE(codel.dropping());
  EXPECT_EQ(codel.drop_count(), 1u);

  // The ramp: next drop one interval later, then interval/sqrt(count).
  EXPECT_FALSE(codel.on_dequeue(1 * kSecond + 150 * kMillisecond, 10'000'000));
  EXPECT_TRUE(codel.on_dequeue(1 * kSecond + 200 * kMillisecond, 10'000'000));
  EXPECT_EQ(codel.drop_count(), 2u);

  // A sojourn back under target ends the spell and restarts the window.
  EXPECT_FALSE(codel.on_dequeue(1 * kSecond + 250 * kMillisecond, 1'000'000));
  EXPECT_FALSE(codel.dropping());
  EXPECT_FALSE(codel.on_dequeue(1 * kSecond + 260 * kMillisecond, 10'000'000));
  EXPECT_FALSE(codel.dropping());
}

TEST(OverloadPrimitives, AimdClampsAndCounts) {
  overload::AimdRate::Config c;
  c.min_rate = 50.0;
  c.max_rate = 200.0;
  c.initial = 100.0;
  c.increase_per_round = 30.0;
  c.decrease_factor = 0.5;
  overload::AimdRate aimd(c);

  EXPECT_DOUBLE_EQ(aimd.rate(), 100.0);
  EXPECT_DOUBLE_EQ(aimd.on_round(false), 130.0);
  EXPECT_DOUBLE_EQ(aimd.on_round(false), 160.0);
  EXPECT_DOUBLE_EQ(aimd.on_round(false), 190.0);
  EXPECT_DOUBLE_EQ(aimd.on_round(false), 200.0);  // clamped at max
  EXPECT_DOUBLE_EQ(aimd.on_round(true), 100.0);
  EXPECT_DOUBLE_EQ(aimd.on_round(true), 50.0);
  EXPECT_DOUBLE_EQ(aimd.on_round(true), 50.0);  // clamped at min
  EXPECT_EQ(aimd.increases(), 4u);
  EXPECT_EQ(aimd.decreases(), 3u);
}

// ---------------------------------------------------------------------------
// Cache freshness + brownout ladder (standalone module)
// ---------------------------------------------------------------------------

class OverloadModuleTest : public ::testing::Test {
 protected:
  OverloadModuleTest()
      : book_(std::make_shared<proto::AddressBook>()),
        cpu_(loop_, "cpu"),
        copier_(cpu_, costs_),
        stack_(loop_, cpu_, copier_, costs_, "host", book_),
        module_(stack_, {1 << 20, 4096}) {
    stack_.add_nic(0xaa, proto::make_ipv4(10, 0, 0, 1));
  }

  /// One pressure event: an egress frame whose key was never cached.
  void press() {
    proto::Frame f;
    f.payload.append(MsgBuffer::from_key(CacheKey(LbnKey{0, 0xdead}), 0, 100));
    module_.egress_filter(f);
  }

  sim::EventLoop loop_;
  sim::CostModel costs_{};
  std::shared_ptr<proto::AddressBook> book_;
  sim::CpuModel cpu_;
  netbuf::CopyEngine copier_;
  proto::NetworkStack stack_;
  NCacheModule module_;
};

TEST_F(OverloadModuleTest, InsertTimestampsFollowTheClock) {
  loop_.advance_to(5 * kMillisecond);
  module_.ingest_lbn(0, 42, chain_of(4096, 1));
  auto at = module_.cache().lbn_inserted_at(42, 0);
  ASSERT_TRUE(at.has_value());
  EXPECT_EQ(*at, 5 * kMillisecond);

  // An overwrite refreshes the stamp.
  loop_.advance_to(9 * kMillisecond);
  module_.ingest_lbn(0, 42, chain_of(4096, 2));
  at = module_.cache().lbn_inserted_at(42, 0);
  ASSERT_TRUE(at.has_value());
  EXPECT_EQ(*at, 9 * kMillisecond);

  EXPECT_FALSE(module_.cache().lbn_inserted_at(43, 0).has_value());
}

TEST_F(OverloadModuleTest, LadderEscalatesStepwiseAndRecoversWithHysteresis) {
  auto& bc = module_.brownout_config();
  bc.enabled = true;
  bc.tier1_threshold = 2;
  bc.tier2_threshold = 4;
  bc.tier3_threshold = 6;
  bc.min_dwell = 10 * kMillisecond;
  bc.quiet_period = 5 * kMillisecond;

  loop_.advance_to(1 * kMillisecond);
  press();
  EXPECT_EQ(module_.brownout_tier(), BrownoutTier::Normal);
  press();
  EXPECT_EQ(module_.brownout_tier(), BrownoutTier::ServeStale);
  EXPECT_FALSE(module_.degraded());

  // The window is NOT cleared on escalation: two more events (window now
  // at 4) cross tier2 — with a cleared window they could not.
  press();
  press();
  EXPECT_EQ(module_.brownout_tier(), BrownoutTier::PhysicalCopy);
  EXPECT_TRUE(module_.degraded());
  EXPECT_EQ(module_.stats().degrade_entries, 1u);

  press();
  press();
  EXPECT_EQ(module_.brownout_tier(), BrownoutTier::Shed);
  EXPECT_TRUE(module_.shed_active());
  EXPECT_TRUE(module_.shed_probe());
  EXPECT_EQ(module_.stats().brownout_escalations, 3u);

  // Recovery: one tier per qualifying probe, dwell restarting each step.
  loop_.advance_to(17 * kMillisecond);
  EXPECT_FALSE(module_.shed_probe());
  EXPECT_EQ(module_.brownout_tier(), BrownoutTier::PhysicalCopy);
  EXPECT_TRUE(module_.degraded());
  // A second probe at the same instant must not double-step.
  module_.shed_probe();
  EXPECT_EQ(module_.brownout_tier(), BrownoutTier::PhysicalCopy);

  loop_.advance_to(28 * kMillisecond);
  module_.shed_probe();
  EXPECT_EQ(module_.brownout_tier(), BrownoutTier::ServeStale);
  EXPECT_FALSE(module_.degraded());
  EXPECT_EQ(module_.stats().degrade_exits, 1u);
  EXPECT_GT(module_.degraded_ns(), 0u);

  loop_.advance_to(39 * kMillisecond);
  module_.shed_probe();
  EXPECT_EQ(module_.brownout_tier(), BrownoutTier::Normal);
  EXPECT_EQ(module_.stats().brownout_deescalations, 3u);
}

TEST_F(OverloadModuleTest, EscalationSkipsTiersUnderABurst) {
  auto& bc = module_.brownout_config();
  bc.enabled = true;
  bc.tier1_threshold = 2;
  bc.tier2_threshold = 2;
  bc.tier3_threshold = 2;

  loop_.advance_to(1 * kMillisecond);
  press();
  press();
  // One jump straight to the top tier, counted as a single escalation.
  EXPECT_EQ(module_.brownout_tier(), BrownoutTier::Shed);
  EXPECT_EQ(module_.stats().brownout_escalations, 1u);
  EXPECT_TRUE(module_.degraded());
  EXPECT_EQ(module_.stats().degrade_entries, 1u);
}

// ---------------------------------------------------------------------------
// Brownout through the testbed gate
// ---------------------------------------------------------------------------

TEST(Brownout, TestbedGateEngagesServeStaleAndRecovers) {
  TestbedConfig cfg;
  cfg.mode = PassMode::NCache;
  // Pool smaller than a block: every ingest insert fails deterministically.
  cfg.ncache_budget_bytes = 2048;
  cfg.overload.brownout = true;
  cfg.overload.brownout_cfg.tier1_threshold = 2;
  cfg.overload.brownout_cfg.tier2_threshold = 100;
  cfg.overload.brownout_cfg.tier3_threshold = 200;
  // Dwell/quiet well above the disk-paced ingest cadence, so the tier
  // cannot flap between the per-block pressure events of one read.
  cfg.overload.brownout_cfg.min_dwell = 200 * kMillisecond;
  cfg.overload.brownout_cfg.quiet_period = 100 * kMillisecond;
  Testbed tb(cfg);
  std::uint32_t ino = tb.image().add_file("f.bin", 256 * 1024);
  tb.start_nfs();
  NCacheModule* mod = tb.ncache();
  ASSERT_NE(mod, nullptr);

  run_on(tb.loop(), [&]() -> Task<void> {
    auto& client = tb.nfs_client(0);
    // 8 ingests: the first two fail and trip ServeStale, the rest bypass
    // the pool (physical copies).
    auto first = co_await client.read(ino, 0, 32768);
    EXPECT_EQ(first.status, Status::Ok);
    EXPECT_EQ(mod->brownout_tier(), BrownoutTier::ServeStale);
    EXPECT_FALSE(mod->degraded());  // tier 1 is gentler than PhysicalCopy
    EXPECT_GT(mod->stats().degraded_ingest_bypass, 0u);
    // ServeStale still serves real bytes: flush the pre-trip junk markers
    // out of the fs cache, then reread through the bypass path.
    co_await tb.fs().cache().drop_all();
    auto r = co_await client.read(ino, 0, 32768);
    EXPECT_EQ(r.status, Status::Ok);
    EXPECT_FALSE(r.junk);
    EXPECT_EQ(fs::verify_content(ino, 0, r.data.to_bytes()), std::size_t(-1));
  });

  EXPECT_EQ(mod->stats().brownout_escalations, 1u);
  // Brownout rows register only when the gate is on.
  EXPECT_DOUBLE_EQ(tb.metrics().gauge_value("server0", "ncache.brownout.tier"),
                   1.0);
  EXPECT_EQ(tb.metrics().counter_value("server0", "ncache.brownout.escalations"),
            1u);

  run_on(tb.loop(), [&]() -> Task<void> {
    co_await sim::sleep_for(tb.loop(), 350 * kMillisecond);
  });
  EXPECT_FALSE(mod->shed_probe());  // runs the lazy recovery check
  EXPECT_EQ(mod->brownout_tier(), BrownoutTier::Normal);
  EXPECT_EQ(mod->stats().brownout_deescalations, 1u);
  EXPECT_DOUBLE_EQ(tb.metrics().gauge_value("server0", "ncache.brownout.tier"),
                   0.0);
}

// ---------------------------------------------------------------------------
// NFS server: hard bound + CoDel + metadata priority
// ---------------------------------------------------------------------------

Task<void> one_read(nfs::NfsClient* c, std::uint64_t fh, std::uint64_t off,
                    std::uint32_t count, int* done, int* ok) {
  auto r = co_await c->read(fh, off, count);
  ++*done;
  if (r.status == Status::Ok) ++*ok;
}

TEST(NfsOverload, HardQueueBoundDropsFloodsEvenWithGatesOff) {
  TestbedConfig cfg;
  cfg.nfs_daemons = 1;
  cfg.overload.nfs_queue_limit = 2;  // the bound is always enforced
  Testbed tb(cfg);
  std::uint32_t ino = tb.image().add_file("blob", 1 << 20);
  tb.start_nfs();

  int done = 0, ok = 0;
  run_on(tb.loop(), [&]() -> Task<void> {
    for (int i = 0; i < 40; ++i) {
      one_read(&tb.nfs_client(0), ino, std::uint64_t(i) * 4096, 4096, &done,
               &ok)
          .detach(tb.loop().reaper());
    }
    while (done < 40) co_await sim::sleep_for(tb.loop(), 100 * kMillisecond);
  });

  const auto& st = tb.nfs_server().stats();
  EXPECT_GT(st.queue_drops, 0u);
  EXPECT_GT(ok, 0);
  // The drop counter is visible unconditionally through the registry.
  EXPECT_EQ(tb.metrics().counter_value("server0", "nfs.queue_drops"),
            st.queue_drops);
  // Gated rows stay absent with the gate off.
  EXPECT_EQ(tb.metrics().counter_value("server0", "overload.shed"), 0u);
}

TEST(NfsOverload, CoDelShedsWhileMetadataJumpsTheQueue) {
  TestbedConfig cfg;
  cfg.nfs_daemons = 1;
  cfg.overload.server_queue = true;
  cfg.overload.codel.target_ns = 1'000'000;    // 1 ms
  cfg.overload.codel.interval_ns = 10'000'000; // 10 ms
  Testbed tb(cfg);
  std::uint32_t ino = tb.image().add_file("big", 2 << 20);
  tb.start_nfs();

  int done = 0, ok = 0;
  run_on(tb.loop(), [&]() -> Task<void> {
    for (int i = 0; i < 60; ++i) {
      one_read(&tb.nfs_client(0), ino, std::uint64_t(i) * 32768, 32768, &done,
               &ok)
          .detach(tb.loop().reaper());
    }
    co_await sim::sleep_for(tb.loop(), 5 * kMillisecond);
    // Metadata dequeues ahead of the standing data backlog.
    auto attr = co_await tb.nfs_client(0).getattr(ino);
    EXPECT_TRUE(attr.has_value());
    EXPECT_LT(done, 60) << "getattr should finish while data ops still queue";
    while (done < 60) co_await sim::sleep_for(tb.loop(), 100 * kMillisecond);
  });

  EXPECT_GT(tb.nfs_server().stats().shed, 0u);
  EXPECT_GT(ok, 0);
  EXPECT_EQ(tb.metrics().counter_value("server0", "overload.shed"),
            tb.nfs_server().stats().shed);
}

// ---------------------------------------------------------------------------
// kHTTPd: connection cap + CoDel 503s
// ---------------------------------------------------------------------------

TEST(HttpOverload, ConnectionCapRefusesAccepts) {
  TestbedConfig base;
  Testbed tb(base);
  std::uint32_t ino = tb.image().add_file("index.html", 1000);
  tb.start_base();

  KHttpd::Config hc;
  hc.overload.enabled = true;
  hc.overload.max_connections = 1;
  KHttpd server(tb.server_node().stack, tb.fs(), hc, tb.ncache());
  server.start();

  HttpClient a(tb.client_node(0).stack, tb.client_ip(0), tb.server_ip(0));
  HttpClient b(tb.client_node(1).stack, tb.client_ip(1), tb.server_ip(0));

  run_on(tb.loop(), [&]() -> Task<void> {
    EXPECT_TRUE(co_await a.connect());
    auto r = co_await a.get("/index.html");
    EXPECT_EQ(r.status, 200);
    EXPECT_EQ(r.content_length, 1000u);
    co_await b.connect();
    co_await sim::sleep_for(tb.loop(), 10 * kMillisecond);
    EXPECT_EQ(server.stats().conn_rejects, 1u);
    // The admitted connection keeps working at the cap.
    auto r2 = co_await a.get("/index.html");
    EXPECT_EQ(r2.status, 200);
  });
  (void)ino;
}

TEST(HttpOverload, CoDelShedsWithCheap503) {
  TestbedConfig base;
  Testbed tb(base);
  tb.image().add_file("index.html", 1000);
  tb.start_base();

  KHttpd::Config hc;
  hc.overload.enabled = true;
  // Degenerate law: every sojourn is "above target", and the observation
  // window is one nanosecond — the second request starts the 503 shed.
  hc.overload.codel.target_ns = 0;
  hc.overload.codel.interval_ns = 1;
  KHttpd server(tb.server_node().stack, tb.fs(), hc, tb.ncache());
  server.start();

  HttpClient c(tb.client_node(0).stack, tb.client_ip(0), tb.server_ip(0));
  run_on(tb.loop(), [&]() -> Task<void> {
    EXPECT_TRUE(co_await c.connect());
    auto r1 = co_await c.get("/index.html");
    EXPECT_EQ(r1.status, 200);
    auto r2 = co_await c.get("/index.html");
    EXPECT_EQ(r2.status, 503);
  });

  EXPECT_GE(server.stats().shed, 1u);
  EXPECT_GE(server.stats().responses_503, 1u);
}

// ---------------------------------------------------------------------------
// Cluster: VIP admission + queue-depth feedback
// ---------------------------------------------------------------------------

TEST(ClusterOverload, AdmissionShedsFloodAndAimdBacksOffOnQdepth) {
  ClusterConfig cfg;
  cfg.server_count = 2;
  cfg.client_count = 2;
  cfg.nfs_daemons = 1;
  cfg.overload.admission = true;
  cfg.overload.qdepth_feedback = true;
  cfg.overload.aimd.min_rate = 50.0;
  cfg.overload.aimd.max_rate = 400.0;
  cfg.overload.aimd.initial = 200.0;
  cfg.overload.aimd.increase_per_round = 1.0;
  cfg.overload.aimd.decrease_factor = 0.7;
  cfg.overload.admission_qdepth_high = 1;
  ClusterTestbed tb(cfg);
  std::vector<std::uint64_t> files;
  for (int i = 0; i < 4; ++i) {
    files.push_back(tb.image().add_file("a" + std::to_string(i), 64 * 1024));
  }
  tb.start_nfs();

  int done = 0, ok = 0;
  run_on(tb.loop(), [&]() -> Task<void> {
    for (int c = 0; c < 2; ++c) {
      for (int i = 0; i < 200; ++i) {
        one_read(&tb.nfs_client(c), files[std::size_t(i % 4)],
                 std::uint64_t(i % 16) * 4096, 4096, &done, &ok)
            .detach(tb.loop().reaper());
      }
    }
    co_await sim::sleep_for(tb.loop(), 60 * kMillisecond);
    // Two heartbeat rounds in: the acks piggybacked a nonzero depth (no
    // extra packets on the wire) and the AIMD controller backed off.
    std::uint32_t qd = 0;
    for (std::uint32_t id = 0; id < 4; ++id) {
      qd = std::max(qd, tb.lb().replica_qdepth(id));
    }
    EXPECT_GT(qd, 0u) << "heartbeat acks should carry replica queue depth";
    EXPECT_LT(tb.lb().admission_rate(), 200.0);
    while (done < 400) co_await sim::sleep_for(tb.loop(), 50 * kMillisecond);
  });

  const auto& st = tb.lb().stats();
  EXPECT_GT(st.admitted, 0u);
  EXPECT_GT(st.admission_shed, 0u);
  EXPECT_GT(ok, 0);
  EXPECT_EQ(tb.metrics().counter_value("lb0", "overload.shed"),
            st.admission_shed);
}

// ---------------------------------------------------------------------------
// Retry budget end-to-end: fail fast against a dead server
// ---------------------------------------------------------------------------

TEST(RetryBudgetE2E, EmptyBudgetFailsFastAndHealsWithTheCable) {
  TestbedConfig cfg;
  cfg.overload.retry_budget = true;
  cfg.overload.budget.initial = 0.0;
  cfg.overload.budget.reserve_per_sec = 0.0;
  Testbed tb(cfg);
  std::uint32_t ino = tb.image().add_file("f", 64 * 1024);
  tb.start_nfs();

  auto& cable = tb.world().cable("server0");
  run_on(tb.loop(), [&]() -> Task<void> {
    // Baseline: service works and successes deposit into the budget
    // (0.1 per reply — not yet a whole retry token).
    auto warm = co_await tb.nfs_client(0).read(ino, 0, 4096);
    EXPECT_EQ(warm.status, Status::Ok);

    cable.a_to_b.set_admin_up(false);
    cable.b_to_a.set_admin_up(false);
    sim::Time t0 = tb.loop().now();
    auto r = co_await tb.nfs_client(0).read(ino, 4096, 4096);
    EXPECT_NE(r.status, Status::Ok);
    sim::Duration elapsed = tb.loop().now() - t0;
    // One learned RTO (clamped at 200 ms after the warm read), then the
    // budget denies the first retransmit and the call fails — not the
    // multi-second six-attempt ladder.
    EXPECT_GE(elapsed, 100 * kMillisecond);
    EXPECT_LT(elapsed, 2 * kSecond);
    EXPECT_EQ(tb.nfs_client(0).stats().budget_denied, 1u);
    EXPECT_EQ(tb.nfs_client(0).stats().retransmits, 0u);

    cable.a_to_b.set_admin_up(true);
    cable.b_to_a.set_admin_up(true);
    auto healed = co_await tb.nfs_client(0).read(ino, 0, 4096);
    EXPECT_EQ(healed.status, Status::Ok);
  });

  // Gated budget rows registered because the gate is on.
  EXPECT_EQ(tb.metrics().counter_value("client0", "nfs_client.budget_denied"),
            1u);
  EXPECT_EQ(tb.metrics().counter_value("client0", "retry_budget.denied"), 1u);
}

// ---------------------------------------------------------------------------
// Differential: all gates off => byte-identical, bound changes inert
// ---------------------------------------------------------------------------

struct PlainRun {
  std::uint64_t stream_hash = 0xcbf29ce484222325ull;
  std::string metrics_json;
  sim::Time end_time = 0;
};

PlainRun run_plain(const TestbedConfig& cfg) {
  Testbed tb(cfg);
  std::uint32_t f0 = tb.image().add_file("d0", 64 * 1024);
  std::uint32_t f1 = tb.image().add_file("d1", 32 * 1024);
  tb.start_nfs();

  PlainRun out;
  run_on(tb.loop(), [&]() -> Task<void> {
    auto& client = tb.nfs_client(0);
    std::vector<std::byte> payload(8192);
    for (std::size_t i = 0; i < payload.size(); ++i) {
      payload[i] = std::byte((i * 31 + 7) & 0xff);
    }
    EXPECT_EQ(co_await client.write(f1, 0, payload), Status::Ok);
    for (std::uint64_t off = 0; off < 64 * 1024; off += 32768) {
      auto r = co_await client.read(f0, off, 32768);
      EXPECT_EQ(r.status, Status::Ok);
      for (std::byte b : r.data.to_bytes()) {
        out.stream_hash =
            (out.stream_hash ^ std::uint64_t(b)) * 0x100000001b3ull;
      }
    }
    auto r = co_await client.read(f1, 0, 8192);
    EXPECT_EQ(r.status, Status::Ok);
    for (std::byte b : r.data.to_bytes()) {
      out.stream_hash = (out.stream_hash ^ std::uint64_t(b)) * 0x100000001b3ull;
    }
    auto attr = co_await client.getattr(f1);
    EXPECT_TRUE(attr.has_value());
  });
  out.metrics_json = scrub_slab(tb.metrics().to_json().dump());
  out.end_time = tb.loop().now();
  return out;
}

TEST(OverloadDifferential, DisabledGatesAreByteIdentical) {
  TestbedConfig base;
  base.mode = PassMode::NCache;
  PlainRun a = run_plain(base);
  PlainRun b = run_plain(base);  // same-seed repeat
  EXPECT_EQ(a.stream_hash, b.stream_hash);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.metrics_json, b.metrics_json);

  // The always-on queue bound is inert while never hit: changing it must
  // not perturb a single byte of behavior or telemetry.
  TestbedConfig bound = base;
  bound.overload.nfs_queue_limit = 1234;
  PlainRun c = run_plain(bound);
  EXPECT_EQ(a.stream_hash, c.stream_hash);
  EXPECT_EQ(a.end_time, c.end_time);
  EXPECT_EQ(a.metrics_json, c.metrics_json);
}

// ---------------------------------------------------------------------------
// ParallelEngine: flash crowd byte-identical across thread counts
// ---------------------------------------------------------------------------

struct OverloadRacksRun {
  std::vector<std::uint64_t> ops;
  std::vector<std::uint64_t> errors;
  std::uint64_t total_ops = 0;
  std::uint64_t sheds = 0;
  sim::Time end_time = 0;
  std::uint64_t rounds = 0;
  std::string metrics_json;
};

OverloadRacksRun run_racks_overload(unsigned threads) {
  topo::WorldConfig cfg;
  cfg.mode = PassMode::NCache;
  cfg.partitioned = true;
  cfg.threads = threads;
  cfg.peer_without_balancer = true;
  cfg.overload.server_queue = true;
  cfg.overload.retry_budget = true;
  cfg.overload.brownout = true;
  cfg.overload.nfs_queue_limit = 32;
  cfg.overload.codel.target_ns = 1'000'000;
  cfg.overload.codel.interval_ns = 10'000'000;
  topo::World world(topo::presets::cluster_racks(2, 2), cfg);

  auto files = std::make_shared<
      std::vector<std::pair<std::uint64_t, std::uint64_t>>>();
  for (int i = 0; i < 8; ++i) {
    files->push_back(
        {world.image().add_file("o" + std::to_string(i), 64 * 1024),
         64 * 1024});
  }
  world.start_nfs();

  workload::LoadCurve::Config lc;
  lc.base_rate_per_sec = 400.0;
  lc.spikes.push_back({30 * kMillisecond, 40 * kMillisecond, 12.0});
  auto curve = std::make_shared<const workload::LoadCurve>(lc);

  const int n = world.client_count();
  std::vector<workload::Counters> counters;
  counters.resize(std::size_t(n));
  workload::StopFlag stop;
  for (int c = 0; c < n; ++c) {
    unsigned d = world.domain_of("client" + std::to_string(c));
    workload::open_loop_nfs_reads(world.nfs_client(c), curve, files, 16384,
                                  std::uint32_t(300 + c), &stop,
                                  &counters[std::size_t(c)])
        .detach(world.engine().domain_loop(d).reaper());
  }
  workload::run_measurement(world.engine(), stop, 120 * kMillisecond);

  OverloadRacksRun run;
  for (auto& c : counters) {
    run.ops.push_back(c.ops);
    run.errors.push_back(c.errors);
    run.total_ops += c.ops;
  }
  for (int i = 0; i < world.server_count(); ++i) {
    const auto& st = world.server(i).nfs->stats();
    run.sheds += st.queue_drops + st.shed + st.brownout_shed;
  }
  run.end_time = world.engine().now();
  run.rounds = world.engine().rounds();
  run.metrics_json = scrub_slab(world.metrics().to_json().dump());
  return run;
}

TEST(OverloadParallel, FlashCrowdByteIdenticalAcrossThreadCounts) {
  OverloadRacksRun t1 = run_racks_overload(1);
  OverloadRacksRun t2 = run_racks_overload(2);

  EXPECT_GT(t1.total_ops, 0u);
  EXPECT_GT(t1.sheds, 0u) << "the spike should engage the shedding spine";
  EXPECT_EQ(t1.ops, t2.ops) << "T=2 diverged from T=1 under overload";
  EXPECT_EQ(t1.errors, t2.errors);
  EXPECT_EQ(t1.sheds, t2.sheds);
  EXPECT_EQ(t1.end_time, t2.end_time);
  EXPECT_EQ(t1.rounds, t2.rounds);
  EXPECT_EQ(t1.metrics_json, t2.metrics_json)
      << "metrics must not depend on the worker count";
}

}  // namespace
}  // namespace ncache
