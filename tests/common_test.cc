// Unit tests for src/common: byte codecs, checksums, RNG/Zipf, stats,
// intrusive list, and the coroutine Task plumbing.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/bytes.h"
#include "common/checksum.h"
#include "common/intrusive_list.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/task.h"
#include "common/zipf.h"

namespace ncache {
namespace {

TEST(Bytes, RoundTripScalars) {
  std::vector<std::byte> out;
  ByteWriter w(out);
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  ASSERT_EQ(out.size(), 1u + 2 + 4 + 8);

  ByteReader r(out);
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Bytes, BigEndianLayout) {
  std::vector<std::byte> out;
  ByteWriter w(out);
  w.u16(0x0102);
  EXPECT_EQ(std::to_integer<int>(out[0]), 1);
  EXPECT_EQ(std::to_integer<int>(out[1]), 2);
}

TEST(Bytes, UnderrunThrows) {
  std::vector<std::byte> out;
  ByteWriter w(out);
  w.u16(7);
  ByteReader r(out);
  r.u8();
  EXPECT_THROW(r.u32(), std::out_of_range);
}

TEST(Bytes, XdrOpaquePadsToFourBytes) {
  std::vector<std::byte> out;
  ByteWriter w(out);
  w.xdr_opaque("abcde");  // 4 len + 5 data + 3 pad
  EXPECT_EQ(out.size(), 12u);
  ByteReader r(out);
  EXPECT_EQ(r.xdr_opaque(), "abcde");
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Bytes, XdrOpaqueEmptyAndAligned) {
  std::vector<std::byte> out;
  ByteWriter w(out);
  w.xdr_opaque("");
  w.xdr_opaque("abcd");
  ByteReader r(out);
  EXPECT_EQ(r.xdr_opaque(), "");
  EXPECT_EQ(r.xdr_opaque(), "abcd");
}

TEST(Checksum, Rfc1071KnownVector) {
  // Classic example: 0x0001 0xf203 0xf4f5 0xf6f7 -> checksum 0x220d.
  std::vector<std::byte> data = {std::byte{0x00}, std::byte{0x01},
                                 std::byte{0xf2}, std::byte{0x03},
                                 std::byte{0xf4}, std::byte{0xf5},
                                 std::byte{0xf6}, std::byte{0xf7}};
  EXPECT_EQ(internet_checksum(data), 0x220d);
}

TEST(Checksum, ValidatesToZero) {
  std::vector<std::byte> data;
  for (int i = 0; i < 17; ++i) data.push_back(std::byte(i * 13 + 1));
  std::uint16_t c = internet_checksum(data);
  // Appending the checksum (padded) makes the whole thing sum to 0.
  data.push_back(std::byte(c >> 8));
  data.push_back(std::byte(c & 0xff));
  // Odd-length original means the checksum bytes shifted; recompute
  // directly instead: accumulate(data) with checksum folded in == 0 only
  // for even-length. Use even-length input for the invariant.
  std::vector<std::byte> even;
  for (int i = 0; i < 20; ++i) even.push_back(std::byte(i * 7 + 3));
  std::uint16_t c2 = internet_checksum(even);
  even.push_back(std::byte(c2 >> 8));
  even.push_back(std::byte(c2 & 0xff));
  EXPECT_EQ(internet_checksum(even), 0);
}

TEST(Checksum, AccumulateSplitsEquivalent) {
  std::vector<std::byte> data;
  for (int i = 0; i < 64; ++i) data.push_back(std::byte(i));
  std::uint16_t whole = internet_checksum(data);
  std::span<const std::byte> s(data);
  std::uint32_t acc = checksum_accumulate(s.subspan(0, 10), 0);
  acc = checksum_accumulate(s.subspan(10, 30), acc);
  acc = checksum_accumulate(s.subspan(40), acc);
  EXPECT_EQ(checksum_finish(acc), whole);
}

TEST(Checksum, Crc32KnownVector) {
  // CRC32("123456789") == 0xCBF43926
  EXPECT_EQ(crc32(as_bytes("123456789")), 0xCBF43926u);
}

TEST(Rng, DeterministicPerSeed) {
  Pcg32 a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
  bool differs = false;
  Pcg32 a2(42);
  for (int i = 0; i < 100; ++i) {
    if (a2.next() != c.next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Rng, BelowIsInRangeAndCoversValues) {
  Pcg32 rng(7);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 2000; ++i) {
    std::uint32_t v = rng.below(10);
    ASSERT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, RangeInclusive) {
  Pcg32 rng(9);
  for (int i = 0; i < 1000; ++i) {
    auto v = rng.range(5, 8);
    ASSERT_GE(v, 5u);
    ASSERT_LE(v, 8u);
  }
  EXPECT_EQ(rng.range(3, 3), 3u);
}

TEST(Rng, UniformInUnitInterval) {
  Pcg32 rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Zipf, PmfSumsToOneAndIsMonotone) {
  ZipfSampler z(100, 0.8);
  double sum = 0;
  for (std::size_t i = 0; i < z.size(); ++i) {
    sum += z.pmf(i);
    if (i > 0) EXPECT_LE(z.pmf(i), z.pmf(i - 1) + 1e-12);
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Zipf, SamplesFollowRankBias) {
  ZipfSampler z(50, 1.0);
  Pcg32 rng(123);
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 50000; ++i) counts[z.sample(rng)]++;
  // Rank 0 should be sampled roughly 1/H(50) of the time (~22%).
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], 8000);
  double expected = z.pmf(0) * 50000;
  EXPECT_NEAR(counts[0], expected, expected * 0.15);
}

TEST(Zipf, AlphaZeroIsUniform) {
  ZipfSampler z(10, 0.0);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_NEAR(z.pmf(i), 0.1, 1e-9);
}

TEST(Zipf, RejectsDegenerateArgs) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(10, -1.0), std::invalid_argument);
}

TEST(Stats, ByteMeterRate) {
  ByteMeter m;
  m.add(1'000'000);  // 1 MB over 0.5 s -> 2 MB/s
  EXPECT_DOUBLE_EQ(m.mb_per_sec(500'000'000), 2.0);
  EXPECT_DOUBLE_EQ(m.mb_per_sec(0), 0.0);
}

TEST(Stats, LatencyHistogramBasics) {
  LatencyHistogram h;
  h.record(500);
  h.record(1'500);
  h.record(1'000'000);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min_ns(), 500u);
  EXPECT_EQ(h.max_ns(), 1'000'000u);
  EXPECT_NEAR(h.mean_ns(), (500 + 1500 + 1'000'000) / 3.0, 1.0);
  EXPECT_GE(h.quantile_ns(1.0), 1'000'000u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
}

TEST(Stats, ByteMeterZeroIntervalYieldsZeroRate) {
  ByteMeter m;
  EXPECT_DOUBLE_EQ(m.mb_per_sec(0), 0.0);  // empty meter, empty window
  m.add(1'000'000);
  EXPECT_DOUBLE_EQ(m.mb_per_sec(0), 0.0);  // bytes but a zero window
}

TEST(Stats, LatencyHistogramQuantileEmpty) {
  LatencyHistogram h;
  EXPECT_EQ(h.quantile_ns(0.0), 0u);
  EXPECT_EQ(h.quantile_ns(0.5), 0u);
  EXPECT_EQ(h.quantile_ns(1.0), 0u);
}

TEST(Stats, LatencyHistogramQuantileEndpoints) {
  LatencyHistogram h;
  h.record(500);
  h.record(1'500);
  h.record(1'000'000);
  // q<=0 pins to the minimum, q>=1 to the maximum — exactly, not to a
  // bucket boundary.
  EXPECT_EQ(h.quantile_ns(0.0), h.min_ns());
  EXPECT_EQ(h.quantile_ns(-1.0), h.min_ns());
  EXPECT_EQ(h.quantile_ns(1.0), h.max_ns());
  EXPECT_EQ(h.quantile_ns(2.0), h.max_ns());
  // Interior quantiles are monotone between the endpoints.
  EXPECT_GE(h.quantile_ns(0.5), h.min_ns());
  EXPECT_LE(h.quantile_ns(0.5), h.max_ns());
}

TEST(Stats, LatencyHistogramQuantileSingleSample) {
  LatencyHistogram h;
  h.record(777);
  EXPECT_EQ(h.quantile_ns(0.0), 777u);
  EXPECT_EQ(h.quantile_ns(1.0), 777u);
  EXPECT_GE(h.quantile_ns(0.5), 777u);  // bucket upper bound >= sample
}

TEST(Stats, RunningStatSingleSample) {
  RunningStat s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  // Sample variance of one observation is undefined; it must report 0,
  // not NaN or a division-by-zero artifact.
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(Stats, RunningStatEmpty) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Stats, RunningStatMoments) {
  RunningStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.01);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

struct Item : ListHook {
  explicit Item(int v) : value(v) {}
  int value;
};

TEST(IntrusiveList, PushRemoveOrder) {
  IntrusiveList<Item> list;
  Item a(1), b(2), c(3);
  list.push_back(a);
  list.push_back(b);
  list.push_back(c);
  EXPECT_EQ(list.size(), 3u);
  EXPECT_EQ(list.front()->value, 1);
  EXPECT_EQ(list.back()->value, 3);

  list.move_to_back(a);  // LRU touch
  EXPECT_EQ(list.front()->value, 2);
  EXPECT_EQ(list.back()->value, 1);

  list.remove(b);
  EXPECT_EQ(list.size(), 2u);
  EXPECT_EQ(list.front()->value, 3);

  Item* popped = list.pop_front();
  ASSERT_NE(popped, nullptr);
  EXPECT_EQ(popped->value, 3);
  EXPECT_EQ(list.size(), 1u);
  list.remove(a);
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.pop_front(), nullptr);
}

TEST(IntrusiveList, Iteration) {
  IntrusiveList<Item> list;
  Item a(1), b(2), c(3);
  list.push_back(a);
  list.push_back(b);
  list.push_back(c);
  int sum = 0;
  for (auto& it : list) sum += it.value;
  EXPECT_EQ(sum, 6);
  list.remove(a);
  list.remove(b);
  list.remove(c);
}

// --- Task / coroutine plumbing ---------------------------------------------

Task<int> answer() { co_return 42; }

Task<int> add(int x) {
  int a = co_await answer();
  co_return a + x;
}

TEST(Task, NestedAwaitPropagatesValue) {
  // Drive without an event loop: everything completes synchronously on
  // first resume.
  int out = 0;
  auto t_fn = [&]() -> Task<void> {
    out = co_await add(8);
  };
  auto t = t_fn();
  std::move(t).detach();
  EXPECT_EQ(out, 50);
}

Task<int> thrower() {
  throw std::runtime_error("boom");
  co_return 0;
}

TEST(Task, ExceptionPropagatesToAwaiter) {
  bool caught = false;
  auto t_fn = [&]() -> Task<void> {
    try {
      (void)co_await thrower();
    } catch (const std::runtime_error& e) {
      caught = std::string(e.what()) == "boom";
    }
  };
  auto t = t_fn();
  std::move(t).detach();
  EXPECT_TRUE(caught);
}

TEST(Task, VoidTaskCompletes) {
  bool ran = false;
  auto inner = [&]() -> Task<void> {
    ran = true;
    co_return;
  };
  auto t_fn = [&]() -> Task<void> { co_await inner(); };
  auto t = t_fn();
  std::move(t).detach();
  EXPECT_TRUE(ran);
}

}  // namespace
}  // namespace ncache
