// Scale-out cluster subsystem.
//
//  * HashRing: consistent remapping — removing a member only moves the
//    keys that member owned.
//  * A 1-replica cluster behind the balancer is byte-identical to the
//    single-server Testbed, in Original and NCache modes.
//  * Same-seed cluster runs are bit-identical: metrics dump and the
//    per-client data streams match exactly.
//  * Cooperative peering at N=4 under a Zipf web mix produces peer hits
//    and strictly fewer iSCSI target reads than N independent replicas.
//  * Killing a replica mid-run: the balancer's heartbeats detect the
//    silence, the ring rebalances, retransmitted reads land on survivors
//    and converge to the fault-free byte stream; the restarted replica is
//    re-admitted on its first ack.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "cluster/cluster_testbed.h"
#include "common/rng.h"
#include "common/zipf.h"
#include "fault/fault_injector.h"
#include "fs/image_builder.h"
#include "testbed/testbed.h"
#include "workload/counters.h"

namespace ncache {
namespace {

using cluster::ClusterConfig;
using cluster::ClusterTestbed;
using cluster::HashRing;
using core::PassMode;
using fault::FaultInjector;
using nfs::Status;

template <typename F>
void run_on(sim::EventLoop& loop, F&& body) {
  auto t_fn = [&]() -> Task<void> { co_await body(); };
  sim::sync_wait(loop, t_fn());
}

/// Reads [0, size) in 32 KB chunks, verifying every byte against the
/// deterministic generator and appending the stream to `out` if given.
Task<void> read_all(nfs::NfsClient& client, std::uint32_t ino,
                    std::size_t size, std::vector<std::byte>* out) {
  for (std::uint64_t off = 0; off < size; off += 32768) {
    auto r = co_await client.read(ino, off, 32768);
    EXPECT_EQ(r.status, Status::Ok) << "offset " << off;
    auto bytes = r.data.to_bytes();
    EXPECT_EQ(fs::verify_content(ino, off, bytes), std::size_t(-1))
        << "offset " << off;
    if (out) out->insert(out->end(), bytes.begin(), bytes.end());
  }
}

// ---------------------------------------------------------------------------
// HashRing
// ---------------------------------------------------------------------------

TEST(HashRing, ConsistentRemapping) {
  HashRing ring(64);
  for (std::uint32_t id = 0; id < 4; ++id) ring.add_member(id);
  EXPECT_EQ(ring.member_count(), 4u);
  EXPECT_EQ(ring.point_count(), 4u * 64u);
  EXPECT_TRUE(ring.has_member(2));

  // Every member owns a share of a modest key space.
  std::map<std::uint64_t, std::uint32_t> before;
  std::map<std::uint32_t, int> share;
  for (std::uint64_t k = 0; k < 1000; ++k) {
    std::uint32_t owner = ring.owner(HashRing::mix64(k));
    before[k] = owner;
    ++share[owner];
  }
  EXPECT_EQ(share.size(), 4u) << "a member owns no keys at all";

  // Consistency: dropping member 2 must only move member 2's keys.
  ring.remove_member(2);
  EXPECT_FALSE(ring.has_member(2));
  for (std::uint64_t k = 0; k < 1000; ++k) {
    std::uint32_t owner = ring.owner(HashRing::mix64(k));
    if (before[k] != 2) {
      EXPECT_EQ(owner, before[k]) << "key " << k << " moved needlessly";
    } else {
      EXPECT_NE(owner, 2u);
    }
  }

  // Re-adding restores the exact original assignment (the ring is a pure
  // function of the member set).
  ring.add_member(2);
  for (std::uint64_t k = 0; k < 1000; ++k) {
    EXPECT_EQ(ring.owner(HashRing::mix64(k)), before[k]);
  }
  EXPECT_EQ(ring.members(), (std::vector<std::uint32_t>{0, 1, 2, 3}));
}

TEST(HashRing, HashBytesMatchesKnownKeys) {
  // FNV-1a sanity plus the NFS-fh/URL key seam: different keys spread.
  EXPECT_NE(HashRing::hash_bytes("fh:42"), HashRing::hash_bytes("fh:43"));
  EXPECT_EQ(HashRing::hash_bytes("/index.html"),
            HashRing::hash_bytes("/index.html"));
}

// ---------------------------------------------------------------------------
// N=1 cluster == single-server Testbed, byte for byte
// ---------------------------------------------------------------------------

class SingleReplicaModes : public ::testing::TestWithParam<PassMode> {};

TEST_P(SingleReplicaModes, MatchesTestbedByteForByte) {
  constexpr std::size_t kSize = 256 * 1024;

  // Reference: the PR-2 single-server testbed.
  testbed::TestbedConfig scfg;
  scfg.mode = GetParam();
  scfg.client_count = 1;
  testbed::Testbed tb(scfg);
  std::uint32_t ino = tb.image().add_file("f.bin", kSize);
  tb.start_nfs();
  std::vector<std::byte> reference;
  run_on(tb.loop(), [&]() -> Task<void> {
    co_await read_all(tb.nfs_client(0), ino, kSize, &reference);
  });

  // Same image behind a 1-replica cluster: the balancer NAT and the peer
  // agent (which has nobody to talk to) must be fully transparent.
  ClusterConfig ccfg;
  ccfg.mode = GetParam();
  ccfg.server_count = 1;
  ccfg.client_count = 1;
  ClusterTestbed cc(ccfg);
  std::uint32_t cino = cc.image().add_file("f.bin", kSize);
  ASSERT_EQ(cino, ino);
  cc.start_nfs();
  std::vector<std::byte> clustered;
  run_on(cc.loop(), [&]() -> Task<void> {
    co_await read_all(cc.nfs_client(0), cino, kSize, &clustered);
  });

  EXPECT_EQ(reference.size(), kSize);
  EXPECT_TRUE(reference == clustered)
      << "client-visible stream differs through the balancer";
  EXPECT_GT(cc.lb().stats().forwards, 0u);
  EXPECT_EQ(cc.lb().stats().drops_no_member, 0u);
  // With one member there is nobody to fetch from.
  EXPECT_EQ(cc.total_peer_hits(), 0u);
  EXPECT_EQ(cc.peers(0).stats().fetches_sent, 0u);
}

INSTANTIATE_TEST_SUITE_P(Modes, SingleReplicaModes,
                         ::testing::Values(PassMode::Original,
                                           PassMode::NCache),
                         [](const ::testing::TestParamInfo<PassMode>& i) {
                           return std::string(core::to_string(i.param));
                         });

// ---------------------------------------------------------------------------
// Same-seed determinism
// ---------------------------------------------------------------------------

struct ZipfFiles {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> files;  ///< fh, size
  ZipfSampler zipf;
};

ZipfFiles make_zipf_files(ClusterTestbed& tb, int count, std::size_t bytes,
                          double alpha) {
  ZipfFiles out{{}, ZipfSampler(std::size_t(count), alpha)};
  for (int i = 0; i < count; ++i) {
    std::uint32_t ino = tb.image().add_file("z" + std::to_string(i), bytes);
    out.files.emplace_back(ino, bytes);
  }
  return out;
}

/// Closed-loop Zipf reader against the cluster VIP; folds every payload
/// byte into an order-sensitive FNV stream hash.
Task<void> zipf_worker(ClusterTestbed* tb, int client, const ZipfFiles* fs,
                       std::uint64_t seed, workload::StopFlag* stop,
                       std::uint64_t* stream_hash, std::uint64_t* ops) {
  ++stop->live_workers;
  Pcg32 rng(seed, 0x9000u + std::uint64_t(client));
  auto& cl = tb->nfs_client(client);
  while (!stop->stopped) {
    auto [fh, size] = fs->files[fs->zipf.sample(rng)];
    auto chunks = std::uint32_t(size / 32768);
    std::uint64_t off = 32768ull * rng.below(chunks ? chunks : 1);
    auto r = co_await cl.read(fh, off, 32768);
    if (r.status == Status::Ok) {
      for (std::byte b : r.data.to_bytes()) {
        *stream_hash = (*stream_hash ^ std::uint64_t(b)) * 0x100000001b3ull;
      }
      ++*ops;
    }
  }
  --stop->live_workers;
}

struct ClusterRun {
  std::string metrics_json;
  std::vector<std::uint64_t> stream_hashes;
  std::uint64_t total_ops = 0;
};

ClusterRun run_zipf_cluster(std::uint64_t seed) {
  ClusterConfig cfg;
  cfg.mode = PassMode::NCache;
  cfg.server_count = 2;
  cfg.client_count = 2;
  ClusterTestbed tb(cfg);
  ZipfFiles fs = make_zipf_files(tb, 32, 64 * 1024, 0.98);
  tb.start_nfs();

  workload::StopFlag stop;
  ClusterRun run;
  run.stream_hashes.assign(std::size_t(cfg.client_count),
                           0xcbf29ce484222325ull);
  std::vector<std::uint64_t> ops(std::size_t(cfg.client_count), 0);
  for (int c = 0; c < cfg.client_count; ++c) {
    zipf_worker(&tb, c, &fs, seed, &stop, &run.stream_hashes[std::size_t(c)],
                &ops[std::size_t(c)])
        .detach(tb.loop().reaper());
  }
  workload::run_measurement(tb.loop(), stop, 200 * sim::kMillisecond);

  for (std::uint64_t o : ops) run.total_ops += o;
  run.metrics_json = tb.metrics().to_json().dump();

  // The slab recycler is process-global, so its hit counter is warm on the
  // second run in the same process; every per-node counter must match.
  std::string scrubbed;
  std::size_t pos = 0;
  while (pos < run.metrics_json.size()) {
    std::size_t eol = run.metrics_json.find('\n', pos);
    if (eol == std::string::npos) eol = run.metrics_json.size();
    std::string_view line(run.metrics_json.data() + pos, eol - pos);
    if (line.find("netbuf.slab") == std::string_view::npos) {
      scrubbed.append(line);
      scrubbed.push_back('\n');
    }
    pos = eol + 1;
  }
  run.metrics_json = std::move(scrubbed);
  return run;
}

TEST(ClusterDeterminism, SameSeedRunsAreBitIdentical) {
  ClusterRun a = run_zipf_cluster(1234);
  ClusterRun b = run_zipf_cluster(1234);
  EXPECT_GT(a.total_ops, 0u);
  EXPECT_EQ(a.total_ops, b.total_ops);
  EXPECT_EQ(a.stream_hashes, b.stream_hashes);
  EXPECT_EQ(a.metrics_json, b.metrics_json)
      << "metrics dumps diverged between same-seed runs";
}

// ---------------------------------------------------------------------------
// Peering wins at N=4
// ---------------------------------------------------------------------------

struct N4Run {
  std::uint64_t target_reads = 0;
  std::uint64_t ops = 0;
  std::uint64_t peer_hits = 0;
};

N4Run run_n4_zipf(bool peering) {
  ClusterConfig cfg;
  cfg.mode = PassMode::NCache;
  cfg.server_count = 4;
  cfg.client_count = 6;  // enough flows to land on several replicas
  cfg.peering = peering;
  ClusterTestbed tb(cfg);
  ZipfFiles fs = make_zipf_files(tb, 64, 64 * 1024, 1.0);
  tb.start_nfs();

  workload::StopFlag stop;
  std::vector<std::uint64_t> hashes(std::size_t(cfg.client_count),
                                    0xcbf29ce484222325ull);
  std::vector<std::uint64_t> ops(std::size_t(cfg.client_count), 0);
  for (int c = 0; c < cfg.client_count; ++c) {
    zipf_worker(&tb, c, &fs, /*seed=*/777, &stop, &hashes[std::size_t(c)],
                &ops[std::size_t(c)])
        .detach(tb.loop().reaper());
  }
  workload::run_measurement(tb.loop(), stop, 250 * sim::kMillisecond);

  // The flow hash must have spread the clients over >1 replica or the
  // comparison is vacuous.
  int active = 0;
  for (int i = 0; i < tb.server_count(); ++i) {
    if (tb.nfs_server(i).stats().requests > 0) ++active;
  }
  EXPECT_GT(active, 1) << "flow hash parked every client on one replica";

  N4Run run;
  run.target_reads = tb.total_target_reads();
  run.peer_hits = tb.total_peer_hits();
  for (std::uint64_t o : ops) run.ops += o;
  return run;
}

TEST(ClusterPeering, FewerTargetReadsThanIndependentReplicas) {
  N4Run with_peering = run_n4_zipf(true);
  N4Run without = run_n4_zipf(false);
  EXPECT_GT(with_peering.peer_hits, 0u) << "no block was ever served by a peer";
  ASSERT_GT(with_peering.ops, 0u);
  ASSERT_GT(without.ops, 0u);
  // Both runs are closed-loop, and peering makes reads faster — so the
  // peering run completes more ops and meets more cold extents. Compare
  // target reads *per op* (cross-multiplied to stay in integers), not
  // absolute counts.
  EXPECT_LT(with_peering.target_reads * without.ops,
            without.target_reads * with_peering.ops)
      << "cooperative caching did not reduce target reads per op";
}

// ---------------------------------------------------------------------------
// Replica crash mid-run: rebalance + convergence
// ---------------------------------------------------------------------------

TEST(ClusterFault, ReplicaCrashRebalancesAndConverges) {
  ClusterConfig cfg;
  cfg.mode = PassMode::NCache;
  cfg.server_count = 4;
  cfg.client_count = 1;
  ClusterTestbed tb(cfg);
  constexpr std::size_t kSize = 256 * 1024;
  std::uint32_t ino = tb.image().add_file("f.bin", kSize);
  tb.start_nfs();

  // Mirror the balancer's flow routing to find which replica serves
  // client 0, so the crash provably hits the active path.
  HashRing ring(64);
  for (std::uint32_t id = 0; id < 4; ++id) ring.add_member(id);
  std::uint64_t flow_key =
      (std::uint64_t(tb.client_ip(0)) << 16) | std::uint16_t(700);
  int victim = int(ring.owner(HashRing::mix64(flow_key)));

  FaultInjector inj(tb.loop(), /*seed=*/5);

  run_on(tb.loop(), [&]() -> Task<void> {
    // First half of the file, fault-free.
    co_await read_all(tb.nfs_client(0), ino, kSize / 2, nullptr);
    // Power-fail the serving replica; script its return for later.
    tb.crash_replica(victim);
    EXPECT_TRUE(tb.replica_crashed(victim));
    inj.at(tb.loop().now() + 600 * sim::kMillisecond,
           [&tb, victim] { tb.restart_replica(victim); });
    // Second half: the first read stalls against the corpse, the balancer
    // marks it dead within miss_limit heartbeats (75 ms), and the client's
    // 200 ms-floor retransmission lands on the rebalanced ring.
    auto& client = tb.nfs_client(0);
    for (std::uint64_t off = kSize / 2; off < kSize; off += 32768) {
      auto r = co_await client.read(ino, off, 32768);
      EXPECT_EQ(r.status, Status::Ok) << "offset " << off;
      EXPECT_EQ(fs::verify_content(ino, off, r.data.to_bytes()),
                std::size_t(-1))
          << "offset " << off;
    }
    EXPECT_EQ(tb.lb().live_count(), 3u);
    EXPECT_GE(tb.lb().stats().rebalances, 1u);
    EXPECT_NE(tb.lb().last_rebalance_at(), 0u);
    // Survivors learned the new epoch and rebuilt their rings.
    for (int i = 0; i < tb.server_count(); ++i) {
      if (i == victim) continue;
      EXPECT_GE(tb.peers(i).stats().membership_updates, 1u) << "replica " << i;
      EXPECT_FALSE(tb.peers(i).ring().has_member(std::uint32_t(victim)));
    }
    // Wait out the restart plus a couple of heartbeat rounds: the first
    // ack from the revived replica re-admits it.
    co_await sim::sleep_for(tb.loop(), 800 * sim::kMillisecond);
    EXPECT_FALSE(tb.replica_crashed(victim));
    EXPECT_EQ(tb.lb().live_count(), 4u);
    // And the full stream is still the fault-free one.
    co_await read_all(tb.nfs_client(0), ino, kSize, nullptr);
  });

  EXPECT_EQ(inj.stats().events_fired, 1u);
  EXPECT_GT(tb.nfs_client(0).stats().retransmits, 0u);
}

}  // namespace
}  // namespace ncache
