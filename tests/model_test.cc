// Cost-model sweep properties over the full testbed: the directional
// claims the reproduction rests on must hold across a range of model
// parameters, not just at the calibrated point.
//
//   * NCache's throughput gain is monotonically non-decreasing in the
//     copy cost (more expensive copies -> more to save);
//   * the gain grows with request size under an all-hit workload;
//   * disabling checksum offload never hurts NCache relative to original;
//   * CPU utilization + throughput are consistent (no free lunch):
//     observed throughput never exceeds what the busy CPU could produce.
#include <gtest/gtest.h>

#include "fs/image_builder.h"
#include "testbed/testbed.h"
#include "workload/nfs_workloads.h"

namespace ncache {
namespace {

using core::PassMode;
using testbed::Testbed;
using testbed::TestbedConfig;

struct HotResult {
  double mb_s;
  double server_cpu;
};

HotResult hot_run(PassMode mode, sim::CostModel costs,
                  std::uint32_t request = 32768) {
  TestbedConfig cfg;
  cfg.mode = mode;
  cfg.server_nics = 2;
  cfg.nfs_daemons = 12;
  cfg.costs = costs;
  Testbed tb(cfg);
  std::uint32_t ino = tb.image().add_file("hot.bin", 2 << 20);
  tb.start_nfs();

  auto warm = [&]() -> Task<void> {
    for (std::uint64_t off = 0; off < (2u << 20); off += request) {
      (void)co_await tb.nfs_client(0).read(ino, off, request);
    }
  };
  sim::sync_wait(tb.loop(), warm());

  workload::StopFlag stop;
  workload::Counters counters;
  for (int ci = 0; ci < tb.client_count(); ++ci) {
    for (int w = 0; w < 8; ++w) {
      workload::hot_read_worker(tb.nfs_client(ci), ino, 2 << 20, request,
                                std::uint32_t(ci * 10 + w + 1), &stop,
                                &counters)
          .detach();
    }
  }
  tb.reset_stats();
  sim::Time t0 = tb.loop().now();
  workload::run_measurement(tb.loop(), stop, 150 * sim::kMillisecond);
  auto snap = tb.snapshot(t0);
  return {counters.mb_per_sec(150 * sim::kMillisecond), snap.server_cpu};
}

TEST(ModelSweep, GainMonotoneInCopyCost) {
  double last_gain = -1.0;
  for (double copy_ns : {1.0, 2.0, 3.2, 5.0}) {
    sim::CostModel costs;
    costs.copy_ns_per_byte = copy_ns;
    double orig = hot_run(PassMode::Original, costs).mb_s;
    double nc = hot_run(PassMode::NCache, costs).mb_s;
    double gain = nc / orig;
    EXPECT_GE(gain, last_gain - 0.02) << "copy_ns=" << copy_ns;
    EXPECT_GT(gain, 1.0) << "copy_ns=" << copy_ns;
    last_gain = gain;
  }
}

TEST(ModelSweep, GainGrowsWithRequestSize) {
  sim::CostModel costs;
  double last_gain = 0.0;
  for (std::uint32_t req : {4096u, 8192u, 16384u, 32768u}) {
    double orig = hot_run(PassMode::Original, costs, req).mb_s;
    double nc = hot_run(PassMode::NCache, costs, req).mb_s;
    double gain = nc / orig;
    EXPECT_GE(gain, last_gain - 0.03) << "req=" << req;
    last_gain = gain;
  }
  EXPECT_GT(last_gain, 1.5);  // substantial at 32 KB
}

TEST(ModelSweep, SoftwareChecksumsFavorNCache) {
  sim::CostModel on;
  sim::CostModel off;
  off.checksum_offload = false;
  double gain_on = hot_run(PassMode::NCache, on).mb_s /
                   hot_run(PassMode::Original, on).mb_s;
  double gain_off = hot_run(PassMode::NCache, off).mb_s /
                    hot_run(PassMode::Original, off).mb_s;
  EXPECT_GE(gain_off, gain_on - 0.02);
}

TEST(ModelSweep, NoFreeLunch) {
  // Throughput * per-byte CPU floor <= CPU time available. The floor for
  // any mode includes at least the per-frame costs of sending the data.
  sim::CostModel costs;
  auto r = hot_run(PassMode::NCache, costs);
  double bytes_per_sec = r.mb_s * 1e6;
  double frames_per_sec = bytes_per_sec / 1448.0;
  double floor_busy =
      frames_per_sec * double(costs.packet_tx_ns) * 1e-9;  // tx only
  EXPECT_LE(floor_busy, 1.0 + 1e-6);
  // And the measured utilization is consistent with at least that floor.
  EXPECT_GE(r.server_cpu, floor_busy * 0.5);
}

TEST(ModelSweep, BaselineDominatesNCacheDominatesOriginal) {
  for (std::uint32_t req : {8192u, 32768u}) {
    sim::CostModel costs;
    double orig = hot_run(PassMode::Original, costs, req).mb_s;
    double nc = hot_run(PassMode::NCache, costs, req).mb_s;
    double base = hot_run(PassMode::Baseline, costs, req).mb_s;
    EXPECT_GT(nc, orig * 0.98) << req;
    EXPECT_GT(base, nc * 0.98) << req;
  }
}

TEST(ModelSweep, SlowerLinkShiftsBottleneck) {
  // On a 100 Mb/s link everyone is link-bound and the modes converge.
  sim::CostModel slow;
  slow.link_bandwidth_bps = 100'000'000;
  double orig = hot_run(PassMode::Original, slow).mb_s;
  double nc = hot_run(PassMode::NCache, slow).mb_s;
  EXPECT_NEAR(nc / orig, 1.0, 0.08);
  // Both near the (2-NIC) fast-ethernet payload cap (the drain tail of
  // in-flight ops inflates the short measurement window slightly).
  EXPECT_GT(orig, 15.0);
  EXPECT_LT(orig, 28.0);
}

}  // namespace
}  // namespace ncache
