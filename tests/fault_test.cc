// Scripted fault injection and recovery.
//
//  * Gilbert–Elliott burst loss on every hop, in both Original and NCache
//    modes: reads converge byte-identical to a fault-free run.
//  * Mid-transfer link flap: short flaps ride out on protocol
//    retransmission; a flap longer than the iSCSI command timeout kills
//    the session and recovery (re-login + replay) finishes the transfer.
//  * Server crash/restart: caches and sessions are lost, clients converge
//    through NFS retransmission once the server returns.
//  * Disk read faults (latent sector error, checksum mismatch): the
//    target reports CHECK CONDITION, the initiator rereads, data heals.
//  * IP reassembly expiry: a lost fragment's partial datagram is evicted
//    by the self-arming timer, nobody leaks, the loop still drains.
//  * NCache graceful degradation: pressure trips the physical-copy
//    fallback, dwell accumulates, quiet recovers.
#include <gtest/gtest.h>

#include "fault/fault_injector.h"
#include "fs/image_builder.h"
#include "testbed/testbed.h"

namespace ncache {
namespace {

using core::PassMode;
using fault::FaultInjector;
using fault::FaultPlan;
using fault::GilbertElliott;
using netbuf::MsgBuffer;
using nfs::Status;
using testbed::Testbed;
using testbed::TestbedConfig;

template <typename F>
void run_on(Testbed& tb, F&& body) {
  auto t_fn = [&]() -> Task<void> { co_await body(); };
  sim::sync_wait(tb.loop(), t_fn());
}

/// Reads the whole file in 32 KB chunks and checks every byte against the
/// deterministic generator — i.e. against what a fault-free run returns.
Task<void> read_and_verify(Testbed& tb, std::uint32_t ino, std::size_t size) {
  auto& client = tb.nfs_client(0);
  for (std::uint64_t off = 0; off < size; off += 32768) {
    auto r = co_await client.read(ino, off, 32768);
    EXPECT_EQ(r.status, Status::Ok) << "offset " << off;
    EXPECT_EQ(fs::verify_content(ino, off, r.data.to_bytes()), std::size_t(-1))
        << "offset " << off;
  }
}

// ---------------------------------------------------------------------------
// Burst loss on every hop x both modes
// ---------------------------------------------------------------------------

// Param: (hop, mode). Hops: 0=client cable, 1=server cable, 2=storage cable.
class BurstLossHops
    : public ::testing::TestWithParam<std::tuple<int, PassMode>> {};

TEST_P(BurstLossHops, ReadsConvergeByteIdentical) {
  auto [hop, mode] = GetParam();
  TestbedConfig cfg;
  cfg.mode = mode;
  Testbed tb(cfg);
  constexpr std::size_t kSize = 256 * 1024;
  std::uint32_t ino = tb.image().add_file("f.bin", kSize);
  tb.start_nfs();

  testbed::Node* nodes[] = {&tb.client_node(0), &tb.server_node(),
                            &tb.storage_node()};
  auto& cable = tb.ether_switch().cable_of(nodes[hop]->stack.nic(0));

  FaultInjector inj(tb.loop(), /*seed=*/42);
  GilbertElliott::Params ge;  // defaults: 50% loss in Bad, mean burst 5
  // The server hop carries ~23-fragment UDP replies where one lost
  // fragment loses the datagram; keep bursts rarer there so the test
  // converges in bounded retransmission rounds.
  if (hop == 1) ge.p_good_bad = 0.002;
  FaultPlan plan;
  plan.duplex_burst_loss(cable, tb.loop().now() + sim::kMillisecond,
                         2 * sim::kSecond, ge);
  plan.apply(inj);

  run_on(tb, [&]() -> Task<void> { co_await read_and_verify(tb, ino, kSize); });

  EXPECT_GT(inj.frames_dropped(), 0u) << "fault window never bit";
  EXPECT_EQ(inj.stats().burst_windows, 2u);  // one GE stream per direction
}

std::string burst_name(
    const ::testing::TestParamInfo<std::tuple<int, PassMode>>& info) {
  const char* hops[] = {"client", "server", "storage"};
  return std::string(hops[std::get<0>(info.param)]) +
         (std::get<1>(info.param) == PassMode::Original ? "_original"
                                                        : "_ncache");
}
INSTANTIATE_TEST_SUITE_P(
    Hops, BurstLossHops,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(PassMode::Original, PassMode::NCache)),
    burst_name);

// ---------------------------------------------------------------------------
// Link flaps
// ---------------------------------------------------------------------------

TEST(Fault, ShortFlapRidesOnRetransmission) {
  // A 300 ms client-cable flap mid-transfer: shorter than any session
  // timeout, so pure NFS retransmission absorbs it.
  TestbedConfig cfg;
  cfg.mode = PassMode::NCache;
  Testbed tb(cfg);
  constexpr std::size_t kSize = 256 * 1024;
  std::uint32_t ino = tb.image().add_file("f.bin", kSize);
  tb.start_nfs();

  auto& cable = tb.ether_switch().cable_of(tb.client_node(0).stack.nic(0));
  FaultInjector inj(tb.loop(), 7);
  FaultPlan plan;
  plan.duplex_down(cable, tb.loop().now() + sim::kMillisecond,
                   300 * sim::kMillisecond);
  plan.apply(inj);

  run_on(tb, [&]() -> Task<void> { co_await read_and_verify(tb, ino, kSize); });

  EXPECT_EQ(inj.stats().link_downs, 2u);  // both directions
  EXPECT_EQ(inj.stats().link_ups, 2u);
  EXPECT_GT(cable.a_to_b.dropped_down() + cable.b_to_a.dropped_down(), 0u);
  EXPECT_GT(tb.nfs_client(0).stats().retransmits, 0u);
}

TEST(Fault, LongStorageFlapTriggersSessionRecovery) {
  // Flap the server<->storage cable past the iSCSI command timeout: the
  // watchdog declares the session dead, the reconnect loop backs off until
  // the cable returns, then re-login replays the parked commands and the
  // transfer completes correctly.
  TestbedConfig cfg;
  cfg.mode = PassMode::Original;
  Testbed tb(cfg);
  constexpr std::size_t kSize = 256 * 1024;
  std::uint32_t ino = tb.image().add_file("f.bin", kSize);
  tb.start_nfs();
  tb.initiator().recovery().command_timeout = 200 * sim::kMillisecond;

  auto& cable = tb.ether_switch().cable_of(tb.storage_node().stack.nic(0));
  FaultInjector inj(tb.loop(), 11);
  FaultPlan plan;
  plan.duplex_down(cable, tb.loop().now() + 10 * sim::kMillisecond,
                   600 * sim::kMillisecond);
  plan.apply(inj);

  run_on(tb, [&]() -> Task<void> { co_await read_and_verify(tb, ino, kSize); });

  const auto& st = tb.initiator().stats();
  EXPECT_GE(st.command_timeouts, 1u);
  EXPECT_GE(st.session_drops, 1u);
  EXPECT_GE(st.relogins, 1u);
  EXPECT_GE(st.replays, 1u);
}

// ---------------------------------------------------------------------------
// Server crash / restart
// ---------------------------------------------------------------------------

class CrashModes : public ::testing::TestWithParam<PassMode> {};

TEST_P(CrashModes, CrashRestartConvergesByteIdentical) {
  TestbedConfig cfg;
  cfg.mode = GetParam();
  Testbed tb(cfg);
  constexpr std::size_t kSize = 256 * 1024;
  std::uint32_t ino = tb.image().add_file("f.bin", kSize);
  tb.start_nfs();

  FaultInjector inj(tb.loop(), 3);

  run_on(tb, [&]() -> Task<void> {
    // First half of the transfer, fault-free.
    co_await read_and_verify(tb, ino, kSize / 2);
    // Power-fail the server mid-transfer; script the restart for later.
    tb.crash_server();
    EXPECT_TRUE(tb.server_crashed());
    inj.at(tb.loop().now() + 300 * sim::kMillisecond,
           [&tb] { tb.restart_server(); });
    // The second half stalls against the dead server, retransmits, and
    // converges byte-identical once the restarted instance answers.
    auto& client = tb.nfs_client(0);
    for (std::uint64_t off = kSize / 2; off < kSize; off += 32768) {
      auto r = co_await client.read(ino, off, 32768);
      EXPECT_EQ(r.status, Status::Ok) << "offset " << off;
      EXPECT_EQ(fs::verify_content(ino, off, r.data.to_bytes()),
                std::size_t(-1))
          << "offset " << off;
    }
    // The server still accepts writes after its restart.
    auto fh = co_await client.create(fs::kRootIno, "post-crash");
    EXPECT_TRUE(fh);
    std::vector<std::byte> data(8192);
    fs::fill_content(std::uint32_t(*fh), 0, data);
    EXPECT_EQ(co_await client.write(*fh, 0, data), Status::Ok);
    co_await tb.fs().sync();
    auto r = co_await client.read(*fh, 0, 8192);
    EXPECT_EQ(r.data.to_bytes(), data);
  });

  EXPECT_EQ(inj.stats().events_fired, 1u);
  EXPECT_FALSE(tb.server_crashed());
  EXPECT_GE(tb.initiator().stats().session_drops, 1u);
  EXPECT_GT(tb.nfs_client(0).stats().retransmits, 0u);
}

INSTANTIATE_TEST_SUITE_P(Modes, CrashModes,
                         ::testing::Values(PassMode::Original,
                                           PassMode::NCache),
                         [](const ::testing::TestParamInfo<PassMode>& i) {
                           return std::string(core::to_string(i.param));
                         });

// ---------------------------------------------------------------------------
// Disk faults
// ---------------------------------------------------------------------------

class DiskFaultModes : public ::testing::TestWithParam<PassMode> {};

TEST_P(DiskFaultModes, LatentSectorErrorHealsViaRetry) {
  TestbedConfig cfg;
  cfg.mode = GetParam();
  Testbed tb(cfg);
  constexpr std::size_t kSize = 128 * 1024;
  std::uint32_t ino = tb.image().add_file("f.bin", kSize);
  tb.start_nfs();

  // Arm a one-shot medium error across the start of the data region: the
  // first overlapping read fails with CHECK CONDITION, the reread lands.
  tb.store().inject_read_fault(tb.fs().superblock().data_start, 64,
                               blockdev::DiskFaultKind::LatentSectorError);

  run_on(tb, [&]() -> Task<void> { co_await read_and_verify(tb, ino, kSize); });

  EXPECT_GE(tb.store().read_errors(), 1u);
  EXPECT_GE(tb.initiator().stats().io_retries, 1u);
  EXPECT_EQ(tb.initiator().stats().errors, 0u);
}

TEST_P(DiskFaultModes, ChecksumMismatchCaughtAndHealed) {
  TestbedConfig cfg;
  cfg.mode = GetParam();
  Testbed tb(cfg);
  constexpr std::size_t kSize = 128 * 1024;
  std::uint32_t ino = tb.image().add_file("f.bin", kSize);
  tb.start_nfs();

  tb.store().inject_read_fault(tb.fs().superblock().data_start, 64,
                               blockdev::DiskFaultKind::ChecksumMismatch);

  run_on(tb, [&]() -> Task<void> { co_await read_and_verify(tb, ino, kSize); });

  // The corruption never reached the client: the per-block CRC flagged it
  // and the initiator reread clean bytes.
  EXPECT_GE(tb.store().checksum_mismatches(), 1u);
  EXPECT_GE(tb.initiator().stats().io_retries, 1u);
}

INSTANTIATE_TEST_SUITE_P(Modes, DiskFaultModes,
                         ::testing::Values(PassMode::Original,
                                           PassMode::NCache),
                         [](const ::testing::TestParamInfo<PassMode>& i) {
                           return std::string(core::to_string(i.param));
                         });

// ---------------------------------------------------------------------------
// IP reassembly expiry
// ---------------------------------------------------------------------------

TEST(Fault, ReassemblyExpiryEvictsStalePartials) {
  // Drop exactly one fragment of one server reply: the client holds a
  // partial datagram that can never complete (the retransmitted reply uses
  // a fresh IP id). The self-arming expiry timer must evict it without
  // anyone calling expire() — and the loop must still drain afterwards.
  TestbedConfig cfg;
  cfg.mode = PassMode::Original;
  Testbed tb(cfg);
  std::uint32_t ino = tb.image().add_file("f.bin", 64 * 1024);
  tb.start_nfs();

  int fragments_seen = 0;
  tb.server_node().stack.nic(0).set_egress_filter(
      [&fragments_seen](proto::Frame& f) {
        if (f.ip.more_fragments && ++fragments_seen == 1) return false;
        return true;
      });

  run_on(tb, [&]() -> Task<void> {
    auto r = co_await tb.nfs_client(0).read(ino, 0, 32768);
    EXPECT_EQ(r.status, Status::Ok);
    EXPECT_EQ(fs::verify_content(ino, 0, r.data.to_bytes()), std::size_t(-1));
    // Outlive the 2 s reassembly timeout; the timer fires on its own.
    co_await sim::sleep_for(tb.loop(), 2500 * sim::kMillisecond);
  });

  auto& reasm = tb.client_node(0).stack.reassembler();
  EXPECT_GE(reasm.timeouts(), 1u);
  EXPECT_EQ(reasm.pending(), 0u);
  // Satellite: the counter is visible through the registry.
  EXPECT_EQ(tb.metrics().counter_value("client0", "ip.reassembly_timeouts"),
            reasm.timeouts());
}

// ---------------------------------------------------------------------------
// NCache graceful degradation
// ---------------------------------------------------------------------------

TEST(Fault, DegradationEngagesAndRecovers) {
  TestbedConfig cfg;
  cfg.mode = PassMode::NCache;
  // Pool smaller than a single block: every ingest insert fails, so the
  // pressure source is exact and deterministic.
  cfg.ncache_budget_bytes = 2048;
  Testbed tb(cfg);
  constexpr std::size_t kSize = 256 * 1024;
  std::uint32_t ino = tb.image().add_file("f.bin", kSize);
  tb.start_nfs();
  auto& dc = tb.ncache()->degrade_config();
  dc.pressure_threshold = 4;

  run_on(tb, [&]() -> Task<void> {
    auto& client = tb.nfs_client(0);
    // One 32 KB read ingests 8 blocks; the first `threshold` inserts fail
    // and trip degradation, the rest bypass the pool.
    auto first = co_await client.read(ino, 0, 32768);
    EXPECT_EQ(first.status, Status::Ok);
    EXPECT_TRUE(tb.ncache()->degraded());
    // Degraded reads bypass the pool and carry real bytes (Original-path
    // semantics) — never junk. Flush the fs cache first so the reread
    // re-ingests instead of serving the pre-trip junk markers.
    co_await tb.fs().cache().drop_all();
    auto r = co_await client.read(ino, 0, 32768);
    EXPECT_EQ(r.status, Status::Ok);
    EXPECT_FALSE(r.junk);
    EXPECT_EQ(fs::verify_content(ino, 0, r.data.to_bytes()), std::size_t(-1));
    // Phase 2: quiet period beyond dwell + quiet thresholds, then one
    // fresh-offset touch to run the lazy recovery check.
    co_await sim::sleep_for(tb.loop(), dc.min_dwell + dc.quiet_period +
                                           50 * sim::kMillisecond);
    auto r2 = co_await client.read(ino, 65536, 32768);
    EXPECT_EQ(r2.status, Status::Ok);
  });

  const auto& st = tb.ncache()->stats();
  EXPECT_GE(st.degrade_entries, 1u);
  EXPECT_GE(st.degrade_exits, 1u);
  EXPECT_GT(st.degraded_ingest_bypass, 0u);
  EXPECT_GT(tb.ncache()->degraded_ns(), 0u);
}

}  // namespace
}  // namespace ncache
