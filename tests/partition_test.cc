// Partition tolerance: deterministic network partitions, epoch-fenced
// coherence, and anti-entropy repair.
//
//  * epoch_newer implements RFC 1982 serial comparison: the u32 epoch
//    counter wraps seamlessly, and a diff of exactly 2^31 is undefined
//    (false from both orderings).
//  * PeerCache and LoadBalancer ride an epoch wrap end to end: a replica
//    crash at 0xFFFFFFFF re-admits at epoch 0 and every agent follows.
//  * Membership edge cases: serially-stale broadcasts and duplicates are
//    ignored; a fenced peer (excluded from the newest live set) and a
//    peer behind the requester's epoch refuse FETCH.
//  * Flap damping: a flapping link costs exactly one death + one
//    re-admission; the balancer's quiet period suppresses the churn in
//    between and meters every suppression.
//  * Reliable invalidation: a write during a partition retransmits the
//    INVALIDATE with capped backoff until the cut heals and the stale
//    peer acks; the pending set drains to zero and a re-read through the
//    stale peer returns the new bytes.
//  * Differential convergence matrix: symmetric cut, asymmetric one-way
//    cut, cut + concurrent writes, cut during a crash/restart rebalance —
//    each partitioned run converges and its post-heal client streams are
//    byte-identical to the fault-free twin, with zero stale reads. One
//    scenario double-runs to prove same-seed bit-identity.
//  * The same Partition primitive composes with the ParallelEngine:
//    a partitioned cluster_racks run is byte-identical at T=1 and T=2.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cluster/cluster_testbed.h"
#include "cluster/epoch.h"
#include "common/rng.h"
#include "common/zipf.h"
#include "fault/fault_injector.h"
#include "fs/image_builder.h"
#include "topo/instantiator.h"
#include "topo/presets.h"
#include "workload/counters.h"

namespace ncache {
namespace {

using cluster::ClusterConfig;
using cluster::ClusterTestbed;
using cluster::epoch_newer;
using cluster::kExtentBlocks;
using core::PassMode;
using nfs::Status;
using sim::kMillisecond;

template <typename F>
void run_on(sim::EventLoop& loop, F&& body) {
  auto t_fn = [&]() -> Task<void> { co_await body(); };
  sim::sync_wait(loop, t_fn());
}

/// Strips the process-global slab-recycler lines from a metrics dump so
/// back-to-back runs in one process compare equal (see cluster_test).
std::string scrub_slab(const std::string& json) {
  std::string out;
  std::size_t pos = 0;
  while (pos < json.size()) {
    std::size_t eol = json.find('\n', pos);
    if (eol == std::string::npos) eol = json.size();
    std::string_view line(json.data() + pos, eol - pos);
    if (line.find("netbuf.slab") == std::string_view::npos) {
      out.append(line);
      out.push_back('\n');
    }
    pos = eol + 1;
  }
  return out;
}

// ---------------------------------------------------------------------------
// RFC 1982 serial epochs
// ---------------------------------------------------------------------------

TEST(EpochSerial, CompareTruthTable) {
  EXPECT_FALSE(epoch_newer(0, 0));
  EXPECT_TRUE(epoch_newer(1, 0));
  EXPECT_FALSE(epoch_newer(0, 1));
  EXPECT_TRUE(epoch_newer(2, 1));

  // The wrap: 0 is the successor of 0xFFFFFFFF, not the distant past.
  EXPECT_TRUE(epoch_newer(0, 0xFFFFFFFFu));
  EXPECT_FALSE(epoch_newer(0xFFFFFFFFu, 0));
  EXPECT_TRUE(epoch_newer(5, 0xFFFFFFFBu));

  // Largest forward step: half the space minus nothing.
  EXPECT_TRUE(epoch_newer(0x7FFFFFFFu, 0));
  EXPECT_FALSE(epoch_newer(0, 0x7FFFFFFFu));
  EXPECT_TRUE(epoch_newer(0, 0x80000001u));

  // A diff of exactly 2^31 is undefined (RFC 1982 §3.2): neither side may
  // win, or two agents would apply the same broadcast in opposite orders.
  EXPECT_FALSE(epoch_newer(0x80000000u, 0));
  EXPECT_FALSE(epoch_newer(0, 0x80000000u));
  EXPECT_FALSE(epoch_newer(0xC0000000u, 0x40000000u));
  EXPECT_FALSE(epoch_newer(0x40000000u, 0xC0000000u));
}

TEST(EpochSerial, PeerCacheWalksAcrossTheWrap) {
  ClusterConfig cfg;
  cfg.mode = PassMode::NCache;
  cfg.server_count = 2;
  cfg.client_count = 1;
  ClusterTestbed tb(cfg);
  auto& p = tb.peers(0);
  const std::vector<std::uint32_t> both{0, 1};

  // Each hop is < 2^31, so serial comparison applies every step; the walk
  // crosses the u32 wrap without the agent freezing on 0xFFFFFFFF.
  EXPECT_EQ(p.epoch(), 0u);
  p.apply_membership(0x7FFFFFFFu, both);
  p.apply_membership(0xFFFFFFFEu, both);
  p.apply_membership(0xFFFFFFFFu, both);
  p.apply_membership(0u, both);  // the wrap itself
  p.apply_membership(1u, both);
  EXPECT_EQ(p.epoch(), 1u);
  EXPECT_EQ(p.stats().membership_updates, 5u);
  EXPECT_FALSE(p.fenced());

  // Serially stale across the boundary: 0xFFFFFFFF is now in the past.
  p.apply_membership(0xFFFFFFFFu, both);
  EXPECT_EQ(p.epoch(), 1u);
  EXPECT_EQ(p.stats().stale_epoch_ignored, 1u);

  // A duplicate of the current epoch is idempotent, not an update.
  p.apply_membership(1u, both);
  EXPECT_EQ(p.stats().stale_epoch_ignored, 2u);
  EXPECT_EQ(p.stats().membership_updates, 5u);
}

TEST(EpochSerial, ClusterRidesTheWrapEndToEnd) {
  ClusterConfig cfg;
  cfg.mode = PassMode::NCache;
  cfg.server_count = 3;
  cfg.client_count = 1;
  ClusterTestbed tb(cfg);
  tb.start_nfs();

  // Position the whole cluster one step short of the wrap (<2^31 hops).
  const std::vector<std::uint32_t> all{0, 1, 2};
  for (int i = 0; i < 3; ++i) {
    tb.peers(i).apply_membership(0x7FFFFFFFu, all);
    tb.peers(i).apply_membership(0xFFFFFFFEu, all);
  }
  tb.lb().reset_epoch(0xFFFFFFFEu);
  std::uint64_t repairs_before = tb.peers(2).stats().repair_rounds;

  run_on(tb.loop(), [&]() -> Task<void> {
    tb.crash_replica(2);
    tb.world().faults().at(tb.loop().now() + 300 * kMillisecond,
                           [&tb] { tb.restart_replica(2); });
    co_await sim::sleep_for(tb.loop(), 200 * kMillisecond);
    // The death broadcast took the last pre-wrap epoch.
    EXPECT_EQ(tb.lb().live_count(), 2u);
    EXPECT_EQ(tb.lb().epoch(), 0xFFFFFFFFu);
    EXPECT_EQ(tb.peers(0).epoch(), 0xFFFFFFFFu);
    EXPECT_EQ(tb.peers(1).epoch(), 0xFFFFFFFFu);

    co_await sim::sleep_for(tb.loop(), 600 * kMillisecond);
    // Re-admission wrapped to epoch 0 and every agent followed.
    EXPECT_EQ(tb.lb().live_count(), 3u);
    EXPECT_EQ(tb.lb().epoch(), 0u);
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(tb.peers(i).epoch(), 0u) << "replica " << i;
      EXPECT_FALSE(tb.peers(i).fenced()) << "replica " << i;
    }
    // The revived replica missed the death epoch: it sees a serial gap
    // across the wrap (0xFFFFFFFE -> 0) and starts an anti-entropy pass.
    EXPECT_GT(tb.peers(2).stats().repair_rounds, repairs_before);
  });
}

// ---------------------------------------------------------------------------
// Membership edge cases: stale, duplicate, fenced FETCH
// ---------------------------------------------------------------------------

TEST(Membership, StaleDuplicateAndFencedFetch) {
  ClusterConfig cfg;
  cfg.mode = PassMode::NCache;
  cfg.server_count = 2;
  cfg.client_count = 1;
  ClusterTestbed tb(cfg);
  tb.image().add_file("f.bin", 64 * 1024);
  tb.start_nfs();

  auto& p0 = tb.peers(0);
  auto& p1 = tb.peers(1);

  run_on(tb.loop(), [&]() -> Task<void> {
    p0.apply_membership(2, {0, 1});
    p1.apply_membership(2, {0});  // excluded from its own newest live set
    EXPECT_TRUE(p1.fenced());
    EXPECT_FALSE(p0.fenced());

    // Stale epoch and exact duplicate are both ignored, idempotently.
    std::uint64_t updates = p0.stats().membership_updates;
    p0.apply_membership(1, {0});
    p0.apply_membership(2, {0, 1});
    EXPECT_EQ(p0.stats().membership_updates, updates);
    EXPECT_EQ(p0.stats().stale_epoch_ignored, 2u);
    EXPECT_EQ(p0.epoch(), 2u);

    // A FETCH landing at the fenced peer is refused, not served.
    std::uint64_t lbn = 0;
    while (p0.owner_of(lbn) != 1) lbn += kExtentBlocks;
    auto r = co_await p0.fetch(lbn, 1);
    EXPECT_FALSE(r.has_value());
    EXPECT_GE(p1.stats().fenced_refusals, 1u);

    // Re-admit peer 1 at epoch 3, then advance only the requester to 4:
    // the server must refuse a request from a future epoch — it may have
    // missed a ring change and cannot prove its copies current.
    p1.apply_membership(3, {0, 1});
    EXPECT_FALSE(p1.fenced());
    p0.apply_membership(4, {0, 1});
    std::uint64_t refusals = p1.stats().fenced_refusals;
    auto r2 = co_await p0.fetch(lbn, 1);
    EXPECT_FALSE(r2.has_value());
    EXPECT_EQ(p1.stats().fenced_refusals, refusals + 1);

    // Epochs agree again: the same fetch is answered on the merits (an
    // honest miss here — nothing was ever cached), not refused.
    p1.apply_membership(4, {0, 1});
    auto r3 = co_await p0.fetch(lbn, 1);
    EXPECT_FALSE(r3.has_value());
    EXPECT_EQ(p1.stats().fenced_refusals, refusals + 1);
    EXPECT_GE(p1.stats().serve_misses, 1u);
  });
}

// ---------------------------------------------------------------------------
// Flap damping: a flapping cable costs one death + one re-admission
// ---------------------------------------------------------------------------

TEST(FlapDamping, QuietPeriodSuppressesChurn) {
  ClusterConfig cfg;
  cfg.mode = PassMode::NCache;
  cfg.server_count = 2;
  cfg.client_count = 1;
  ClusterTestbed tb(cfg);
  tb.start_nfs();

  // Two cut windows over server1's cable. With heartbeats every 25 ms,
  // miss_limit 3 and readmit_quiet_rounds 2:
  //   [30, 140)  probes 50..125 lost -> dead at the 125 ms evaluation;
  //              the 150 ms probe is acked -> streak 1 (deferred).
  //   [155, 230) the renewed silence resets the probation (suppressed)
  //              before the streak reaches 2 — the flap never re-admits.
  //   after 230  two consecutive acked rounds -> re-admitted at ~300 ms.
  auto part = tb.world().make_partition({"server1"});
  tb.world().faults().partition(part, 30 * kMillisecond, 110 * kMillisecond);
  tb.world().faults().partition(part, 155 * kMillisecond, 75 * kMillisecond);
  EXPECT_EQ(tb.world().faults().stats().partitions_armed, 2u);
  EXPECT_EQ(tb.world().faults().stats().partition_cuts, 4u);

  run_on(tb.loop(), [&]() -> Task<void> {
    co_await sim::sleep_for(tb.loop(), 145 * kMillisecond);
    EXPECT_EQ(tb.lb().live_count(), 1u) << "first window never killed it";
    co_await sim::sleep_for(tb.loop(), 140 * kMillisecond);  // t = 285 ms
    EXPECT_EQ(tb.lb().live_count(), 1u)
        << "re-admitted mid-flap: the quiet period did not hold";
    co_await sim::sleep_for(tb.loop(), 115 * kMillisecond);  // t = 400 ms
    EXPECT_EQ(tb.lb().live_count(), 2u) << "never re-admitted after the heal";
  });

  // Exactly one death and one re-admission — the flap in between was
  // damping's job, and every suppressed churn event is metered.
  EXPECT_EQ(tb.lb().stats().rebalances, 2u);
  EXPECT_GE(tb.lb().stats().flaps_suppressed, 3u);
  EXPECT_EQ(tb.lb().epoch(), 2u);
  // The cut replica missed the death epoch; re-admission shows it a
  // serial gap, which triggers its anti-entropy pass.
  EXPECT_EQ(tb.peers(1).epoch(), 2u);
  EXPECT_GE(tb.peers(1).stats().repair_rounds, 1u);
  EXPECT_GE(tb.peers(0).stats().membership_updates, 2u);
}

// ---------------------------------------------------------------------------
// Reliable invalidation through a partition (balancer-less racks)
// ---------------------------------------------------------------------------

TEST(ReliableInvalidate, RetransmitsAcrossTheCutAndConverges) {
  topo::WorldConfig cfg;
  cfg.mode = PassMode::NCache;
  cfg.peer_without_balancer = true;
  topo::World world(topo::presets::cluster_racks(2, 1), cfg);
  constexpr std::size_t kSize = 64 * 1024;
  constexpr std::size_t kWrite = 32 * 1024;
  std::uint32_t ino = world.image().add_file("f.bin", kSize);
  world.start_nfs();

  auto& p0 = *world.server(0).peers;
  auto& p1 = *world.server(1).peers;

  run_on(world.loop(), [&]() -> Task<void> {
    // Warm both rack servers: each rack's client reads the whole file
    // through its rack-local server.
    for (int c = 0; c < 2; ++c) {
      for (std::uint64_t off = 0; off < kSize; off += 32768) {
        auto r = co_await world.nfs_client(c).read(ino, off, 32768);
        EXPECT_EQ(r.status, Status::Ok);
        EXPECT_EQ(fs::verify_content(ino, off, r.data.to_bytes()),
                  std::size_t(-1));
      }
    }

    // Cut rack1 off the core for 150 ms, then write through rack0 while
    // the cut holds: the INVALIDATE to server1 cannot be delivered, so
    // the sender retransmits it with capped backoff.
    auto part = world.make_partition({"rack1"});
    sim::Time t0 = world.loop().now();
    world.faults().partition(part, t0 + 1 * kMillisecond,
                             150 * kMillisecond);
    co_await sim::sleep_for(world.loop(), 5 * kMillisecond);

    std::vector<std::byte> pat(kWrite);
    for (std::size_t i = 0; i < pat.size(); ++i) {
      pat[i] = std::byte((0x5A + i * 97) & 0xff);
    }
    auto st = co_await world.nfs_client(0).write(ino, 0, pat);
    EXPECT_EQ(st, Status::Ok);
    // The coherence task (flush + broadcast) is detached from the write
    // reply; give it a moment, then the INVALIDATE must be stuck un-acked
    // behind the cut.
    co_await sim::sleep_for(world.loop(), 20 * kMillisecond);
    EXPECT_GT(p0.pending_reliable(), 0u)
        << "the invalidate was acked through a cut trunk?";

    // Ride out the heal plus one capped backoff: the retransmission lands,
    // server1 drops its stale copies and acks, and the pending set drains.
    co_await sim::sleep_for(world.loop(), 250 * kMillisecond);
    EXPECT_GT(p0.stats().retransmits, 0u);
    EXPECT_GE(p0.stats().invalidate_acks, 1u);
    EXPECT_EQ(p0.pending_reliable(), 0u);
    EXPECT_GE(p1.stats().invalidates_received, 1u);
    EXPECT_GE(p1.stats().blocks_invalidated, 1u);

    // Balancer-less worlds have no epoch stream to flag the gap, so the
    // healed side runs anti-entropy explicitly.
    p1.run_repair();
    EXPECT_GE(p1.stats().repair_rounds, 1u);
    co_await sim::sleep_for(world.loop(), 50 * kMillisecond);
    EXPECT_FALSE(p1.repairing());
    EXPECT_EQ(p1.pending_reliable(), 0u);
    EXPECT_GE(p1.stats().digests_sent, 1u);

    // The stale peer serves the NEW bytes: its invalidated copies miss
    // and the read falls through to fresh data.
    for (std::uint64_t off = 0; off < kWrite; off += 32768) {
      auto r = co_await world.nfs_client(1).read(ino, off, 32768);
      EXPECT_EQ(r.status, Status::Ok);
      auto bytes = r.data.to_bytes();
      EXPECT_EQ(bytes.size(), std::size_t(32768));
      for (std::size_t i = 0; i < bytes.size(); ++i) {
        if (bytes[i] != pat[off + i]) {
          ADD_FAILURE() << "stale byte at offset " << off + i
                        << " after convergence";
          break;
        }
      }
    }
  });
}

// ---------------------------------------------------------------------------
// Differential convergence matrix
// ---------------------------------------------------------------------------

/// A balancer cluster split over two switches: lb + servers 0,1 + both
/// clients + storage on switch0; servers 2,3 alone on switch1 behind a
/// trunk. Cutting {switch1} partitions half the replica set away from
/// the balancer, the storage and every client.
topo::Topology split_cluster() {
  topo::TopologyBuilder b("split_cluster");
  b.ether_switch("switch0").ether_switch("switch1");
  b.target("storage0");
  b.balancer("lb0");
  b.server("server0").server("server1").server("server2").server("server3");
  b.client("client0").client("client1");
  b.link("storage0", "switch0");
  b.link("lb0", "switch0");
  b.link("server0", "switch0").link("server1", "switch0");
  b.link("server2", "switch1").link("server3", "switch1");
  b.link("client0", "switch0").link("client1", "switch0");
  b.link("switch0", "switch1");
  return b.build();
}

constexpr std::size_t kDiffFileSize = 64 * 1024;
constexpr std::size_t kDiffWriteBytes = 32 * 1024;

inline std::byte wbyte(std::uint64_t i) {
  return std::byte((0x5A + i * 97) & 0xff);
}

struct DiffOptions {
  bool cut = false;        ///< arm the partition window
  bool one_way = false;    ///< asymmetric: switch1 transmits, hears nothing
  bool writes = false;     ///< client 0 writes f0's head mid-window
  bool rebalance = false;  ///< crash/restart server1 during the window
};

struct DiffRun {
  std::vector<std::byte> stream;  ///< post-convergence client payloads
  std::uint64_t stale = 0;        ///< bytes that matched neither image nor write
  bool converged = false;
  sim::Time converged_at = 0;
  std::string metrics_json;  ///< slab-scrubbed full dump
  std::uint64_t retransmits = 0;
  std::uint64_t repair_rounds = 0;
  std::uint64_t rebalances = 0;
};

/// Reads `ino` in full through `client`, checking every byte against the
/// deterministic image (or the written pattern over f0's head when
/// `written` — the caller only sets it after the write has converged).
Task<void> diff_read_file(nfs::NfsClient& client, std::uint32_t ino,
                          bool written, std::vector<std::byte>* out,
                          std::uint64_t* stale) {
  for (std::uint64_t off = 0; off < kDiffFileSize; off += 32768) {
    auto r = co_await client.read(ino, off, 32768);
    EXPECT_EQ(r.status, Status::Ok) << "ino " << ino << " offset " << off;
    auto bytes = r.data.to_bytes();
    EXPECT_EQ(bytes.size(), std::size_t(32768));
    if (r.status != Status::Ok || bytes.size() != 32768) co_return;
    for (std::size_t i = 0; i < bytes.size(); ++i) {
      std::byte want = (written && off + i < kDiffWriteBytes)
                           ? wbyte(off + i)
                           : fs::content_byte(ino, off + i);
      if (bytes[i] != want) ++*stale;
    }
    if (out) out->insert(out->end(), bytes.begin(), bytes.end());
  }
}

DiffRun run_diff(const DiffOptions& opt) {
  topo::WorldConfig cfg;
  cfg.mode = PassMode::NCache;
  topo::World world(split_cluster(), cfg);
  std::uint32_t f0 = world.image().add_file("f0.bin", kDiffFileSize);
  std::uint32_t f1 = world.image().add_file("f1.bin", kDiffFileSize);
  world.start_nfs();

  DiffRun run;
  run_on(world.loop(), [&]() -> Task<void> {
    // Warm phase, fault-free: both clients read both files. push-on-miss
    // homes extents onto all four replicas, so the cut side provably
    // holds data that could go stale.
    for (int c = 0; c < 2; ++c) {
      co_await diff_read_file(world.nfs_client(c), f0, false, nullptr,
                              &run.stale);
      co_await diff_read_file(world.nfs_client(c), f1, false, nullptr,
                              &run.stale);
    }

    sim::Time t0 = world.loop().now();
    if (opt.cut) {
      auto part = world.make_partition({"switch1"}, opt.one_way);
      world.faults().partition(part, t0 + 5 * kMillisecond,
                               300 * kMillisecond);
    }
    if (opt.rebalance) {
      world.faults().at(t0 + 25 * kMillisecond,
                        [&world] { world.crash_server(1); });
      world.faults().at(t0 + 200 * kMillisecond,
                        [&world] { world.restart_server(1); });
    }
    if (opt.writes) {
      co_await sim::sleep_for(world.loop(), 50 * kMillisecond);
      std::vector<std::byte> pat(kDiffWriteBytes);
      for (std::size_t i = 0; i < pat.size(); ++i) pat[i] = wbyte(i);
      auto st = co_await world.nfs_client(0).write(f0, 0, pat);
      EXPECT_EQ(st, Status::Ok);
    }

    // Deep inside the window (the balancer has long since shed the cut
    // replicas): reads must keep succeeding against the degraded ring.
    sim::Time mid = t0 + 150 * kMillisecond;
    if (world.loop().now() < mid) {
      co_await sim::sleep_for(world.loop(), mid - world.loop().now());
    }
    if (opt.cut) {
      EXPECT_EQ(world.lb()->live_count(), opt.rebalance ? 1u : 2u)
          << "the cut replicas were never marked dead";
    }
    for (int c = 0; c < 2; ++c) {
      co_await diff_read_file(world.nfs_client(c), f1, false, nullptr,
                              &run.stale);
    }

    // Convergence: the ring is whole again, no reliable datagram is
    // un-acked anywhere, nobody is fenced or mid-repair.
    sim::Time deadline = t0 + 3 * sim::kSecond;
    while (world.loop().now() < deadline) {
      bool ok = world.lb()->live_count() == 4;
      for (int s = 0; ok && s < world.server_count(); ++s) {
        auto& p = *world.server(s).peers;
        if (p.pending_reliable() != 0 || p.repairing() || p.fenced()) {
          ok = false;
        }
      }
      if (ok) {
        run.converged = true;
        run.converged_at = world.loop().now();
        break;
      }
      co_await sim::sleep_for(world.loop(), 10 * kMillisecond);
    }
    EXPECT_TRUE(run.converged) << "cluster never converged after the heal";

    // The differential stream: every byte of every file through both
    // clients, verified strictly — after convergence there is no excuse.
    for (int c = 0; c < 2; ++c) {
      co_await diff_read_file(world.nfs_client(c), f0, opt.writes,
                              &run.stream, &run.stale);
      co_await diff_read_file(world.nfs_client(c), f1, false, &run.stream,
                              &run.stale);
    }
  });

  run.metrics_json = scrub_slab(world.metrics().to_json().dump());
  for (int s = 0; s < world.server_count(); ++s) {
    run.retransmits += world.server(s).peers->stats().retransmits;
    run.repair_rounds += world.server(s).peers->stats().repair_rounds;
  }
  run.rebalances = world.lb()->stats().rebalances;
  return run;
}

void expect_identical_streams(const DiffRun& cut, const DiffRun& twin) {
  EXPECT_EQ(cut.stale, 0u) << "stale bytes served in the partitioned run";
  EXPECT_EQ(twin.stale, 0u) << "stale bytes served in the fault-free run";
  ASSERT_EQ(cut.stream.size(), twin.stream.size());
  EXPECT_TRUE(cut.stream == twin.stream)
      << "partitioned-then-healed run diverged from the fault-free twin";
}

TEST(PartitionDiff, SymmetricCutConvergesAndIsDeterministic) {
  DiffOptions opt;
  opt.cut = true;
  DiffRun cut = run_diff(opt);
  DiffRun twin = run_diff(DiffOptions{});
  expect_identical_streams(cut, twin);
  // Two deaths + two re-admissions, and the healed side saw an epoch gap.
  EXPECT_GE(cut.rebalances, 4u);
  EXPECT_GT(cut.repair_rounds, twin.repair_rounds);

  // Same seed, same plan: the whole run is bit-reproducible, metrics dump
  // included.
  DiffRun again = run_diff(opt);
  EXPECT_TRUE(cut.stream == again.stream);
  EXPECT_EQ(cut.converged_at, again.converged_at);
  EXPECT_EQ(cut.metrics_json, again.metrics_json)
      << "same-seed partitioned runs diverged";
}

TEST(PartitionDiff, AsymmetricOneWayCutConverges) {
  DiffOptions opt;
  opt.cut = true;
  opt.one_way = true;
  DiffRun cut = run_diff(opt);
  DiffRun twin = run_diff(DiffOptions{});
  expect_identical_streams(cut, twin);
  EXPECT_GE(cut.rebalances, 4u);
}

TEST(PartitionDiff, ConcurrentWritesNoStaleReads) {
  DiffOptions opt;
  opt.cut = true;
  opt.writes = true;
  DiffRun cut = run_diff(opt);
  DiffOptions twin_opt;
  twin_opt.writes = true;
  DiffRun twin = run_diff(twin_opt);
  expect_identical_streams(cut, twin);
  // The write's INVALIDATE could not reach the cut replicas first try.
  EXPECT_GT(cut.retransmits, 0u);
}

TEST(PartitionDiff, CutDuringRebalanceConverges) {
  DiffOptions opt;
  opt.cut = true;
  opt.rebalance = true;
  DiffRun cut = run_diff(opt);
  DiffOptions twin_opt;
  twin_opt.rebalance = true;
  DiffRun twin = run_diff(twin_opt);
  expect_identical_streams(cut, twin);
  // Partition deaths + crash death + three re-admissions.
  EXPECT_GE(cut.rebalances, 6u);
}

// ---------------------------------------------------------------------------
// Partition under the ParallelEngine: byte-identical across thread counts
// ---------------------------------------------------------------------------

Task<void> zipf_worker(nfs::NfsClient* client, int id,
                       const std::vector<std::uint64_t>* files,
                       const ZipfSampler* zipf, std::uint64_t seed,
                       workload::StopFlag* stop, std::uint64_t* stream_hash,
                       std::uint64_t* ops) {
  ++stop->live_workers;
  Pcg32 rng(seed, 0x7000u + std::uint64_t(id));
  while (!stop->stopped) {
    std::uint64_t fh = (*files)[zipf->sample(rng)];
    std::uint64_t off = 32768ull * rng.below(2);
    auto r = co_await client->read(fh, off, 32768);
    if (r.status == Status::Ok) {
      for (std::byte b : r.data.to_bytes()) {
        *stream_hash = (*stream_hash ^ std::uint64_t(b)) * 0x100000001b3ull;
      }
      ++*ops;
    }
  }
  --stop->live_workers;
}

struct PartitionRacksRun {
  std::vector<std::uint64_t> hashes;
  std::uint64_t total_ops = 0;
  sim::Time end_time = 0;
  std::string metrics_json;
  std::uint64_t rounds = 0;
};

PartitionRacksRun run_racks_partition(unsigned threads) {
  topo::WorldConfig cfg;
  cfg.mode = PassMode::NCache;
  cfg.partitioned = true;
  cfg.threads = threads;
  cfg.peer_without_balancer = true;
  topo::World world(topo::presets::cluster_racks(2, 2), cfg);

  std::vector<std::uint64_t> files;
  for (int i = 0; i < 16; ++i) {
    files.push_back(world.image().add_file("z" + std::to_string(i), 64 * 1024));
  }
  world.start_nfs();

  // Cut rack1 for [30 ms, 80 ms). Arming happens before the engine runs;
  // at fire time each domain flips only the link directions it owns.
  auto part = world.make_partition({"rack1"});
  world.faults().partition(part, 30 * kMillisecond, 50 * kMillisecond);
  EXPECT_EQ(world.faults().stats().partitions_armed, 1u);
  EXPECT_EQ(world.faults().stats().partition_cuts, 2u);

  const int n = world.client_count();
  ZipfSampler zipf(16, 0.98);
  PartitionRacksRun run;
  run.hashes.assign(std::size_t(n), 0xcbf29ce484222325ull);
  std::vector<std::uint64_t> ops(std::size_t(n), 0);
  workload::StopFlag stop;
  for (int c = 0; c < n; ++c) {
    unsigned d = world.domain_of("client" + std::to_string(c));
    zipf_worker(&world.nfs_client(c), c, &files, &zipf, 91, &stop,
                &run.hashes[std::size_t(c)], &ops[std::size_t(c)])
        .detach(world.engine().domain_loop(d).reaper());
  }
  workload::run_measurement(world.engine(), stop, 120 * kMillisecond);
  for (std::uint64_t o : ops) run.total_ops += o;
  run.end_time = world.engine().now();
  run.metrics_json = scrub_slab(world.metrics().to_json().dump());
  run.rounds = world.engine().rounds();
  return run;
}

TEST(PartitionParallel, ThreadCountByteIdenticalUnderPartition) {
  PartitionRacksRun t1 = run_racks_partition(1);
  PartitionRacksRun t2 = run_racks_partition(2);

  EXPECT_GT(t1.total_ops, 0u);
  EXPECT_EQ(t1.hashes, t2.hashes) << "T=2 diverged from T=1 under partition";
  EXPECT_EQ(t1.total_ops, t2.total_ops);
  EXPECT_EQ(t1.end_time, t2.end_time);
  EXPECT_EQ(t1.rounds, t2.rounds);
  EXPECT_EQ(t1.metrics_json, t2.metrics_json)
      << "metrics must not depend on the worker count";
}

}  // namespace
}  // namespace ncache
