// Instantiator parity and end-to-end topology coverage.
//
//  * N=1: the Testbed facade (presets::single_server through topo::World)
//    is byte-identical to a hand-wired replica of the historical
//    single-server constructor — same client streams, same event count,
//    same final sim time, in Original and NCache modes, 1 and 2 NICs.
//  * M×N×1: the ClusterTestbed facade matches a hand-wired replica of the
//    historical cluster constructor under a Zipf read mix — same
//    per-client stream hashes, ops, target reads, peer traffic, and
//    final sim time.
//  * A world built from Topology::parse(describe(preset)) behaves
//    bit-identically to one built from the preset object (metrics dump
//    compared after scrubbing the process-global slab counters).
//  * The two-rack WAN shape — inexpressible before the topology API —
//    works end to end: correct bytes through the trunk, trunk actually
//    carries the traffic, and lossy same-seed runs replay bit-for-bit.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster_testbed.h"
#include "common/rng.h"
#include "common/zipf.h"
#include "testbed/testbed.h"
#include "topo/instantiator.h"
#include "topo/presets.h"
#include "workload/counters.h"

namespace ncache {
namespace {

using core::PassMode;
using nfs::Status;

template <typename F>
void run_on(sim::EventLoop& loop, F&& body) {
  auto t_fn = [&]() -> Task<void> { co_await body(); };
  sim::sync_wait(loop, t_fn());
}

Task<void> read_all(nfs::NfsClient& client, std::uint32_t ino,
                    std::size_t size, std::vector<std::byte>* out) {
  for (std::uint64_t off = 0; off < size; off += 32768) {
    auto r = co_await client.read(ino, off, 32768);
    EXPECT_EQ(r.status, Status::Ok) << "offset " << off;
    auto bytes = r.data.to_bytes();
    EXPECT_EQ(fs::verify_content(ino, off, bytes), std::size_t(-1))
        << "offset " << off;
    if (out) out->insert(out->end(), bytes.begin(), bytes.end());
  }
}

/// Scrubs the process-global slab-recycler counters (warm on the second
/// run in one process) so same-seed dumps compare byte-for-byte.
std::string scrub_slab(const std::string& json) {
  std::string scrubbed;
  std::size_t pos = 0;
  while (pos < json.size()) {
    std::size_t eol = json.find('\n', pos);
    if (eol == std::string::npos) eol = json.size();
    std::string_view line(json.data() + pos, eol - pos);
    if (line.find("netbuf.slab") == std::string_view::npos) {
      scrubbed.append(line);
      scrubbed.push_back('\n');
    }
    pos = eol + 1;
  }
  return scrubbed;
}

// ---------------------------------------------------------------------------
// Hand-wired replica of the historical single-server constructor
// (pre-topology testbed.cc), kept verbatim as the parity reference.
// ---------------------------------------------------------------------------

struct LegacySingle {
  sim::EventLoop loop;
  sim::CostModel costs{};
  std::shared_ptr<proto::AddressBook> book;
  std::unique_ptr<proto::EthernetSwitch> sw;
  std::unique_ptr<topo::Node> storage, server;
  std::vector<std::unique_ptr<topo::Node>> clients;
  std::unique_ptr<blockdev::BlockStore> store;
  std::unique_ptr<fs::FsImageBuilder> image;
  std::unique_ptr<iscsi::IscsiTarget> target;
  std::unique_ptr<iscsi::IscsiInitiator> initiator;
  std::unique_ptr<core::NCacheModule> ncache;
  std::unique_ptr<fs::SimpleFs> sfs;
  std::unique_ptr<nfs::NfsServer> nfs;
  std::vector<std::unique_ptr<nfs::NfsClient>> nfs_clients;
  int server_nics;

  static proto::Ipv4Addr server_ip(int nic) {
    return proto::make_ipv4(10, 0, 0, std::uint8_t(10 + nic));
  }
  static proto::Ipv4Addr client_ip(int i) {
    return proto::make_ipv4(10, 0, 0, std::uint8_t(100 + i));
  }

  LegacySingle(PassMode mode, int nics, int client_count)
      : server_nics(nics) {
    constexpr proto::Ipv4Addr kStorageIp = proto::make_ipv4(10, 0, 0, 1);
    book = std::make_shared<proto::AddressBook>();
    sw = std::make_unique<proto::EthernetSwitch>(loop, "switch", costs);

    storage = topo::make_wired_node(loop, costs, book, *sw, "storage",
                                    {{0x10, kStorageIp}});
    std::vector<topo::NicSpec> server_specs;
    for (int n = 0; n < nics; ++n) {
      server_specs.push_back({0x20 + std::uint64_t(n), server_ip(n)});
    }
    server = topo::make_wired_node(loop, costs, book, *sw, "server",
                                   server_specs);
    for (int i = 0; i < client_count; ++i) {
      clients.push_back(topo::make_wired_node(
          loop, costs, book, *sw, "client" + std::to_string(i),
          {{0x30 + std::uint64_t(i), client_ip(i)}}));
    }

    store = std::make_unique<blockdev::BlockStore>(loop, costs, "raid0",
                                                   64 * 1024);
    image = std::make_unique<fs::FsImageBuilder>(*store, 64 * 1024, 16 * 1024);
    target = std::make_unique<iscsi::IscsiTarget>(storage->stack, *store);
    initiator = std::make_unique<iscsi::IscsiInitiator>(
        server->stack, server_ip(0), kStorageIp, /*target_id=*/0);

    switch (mode) {
      case PassMode::Original:
        initiator->set_payload_policy(iscsi::PayloadPolicy::Copy);
        break;
      case PassMode::NCache: {
        core::NetCentricCache::Config cc;
        cc.pool_budget_bytes = 192u << 20;
        ncache = std::make_unique<core::NCacheModule>(server->stack, cc);
        ncache->attach_egress();
        ncache->attach_initiator(*initiator);
        break;
      }
      case PassMode::Baseline:
        initiator->set_payload_policy(iscsi::PayloadPolicy::Junk);
        break;
    }
    sfs = std::make_unique<fs::SimpleFs>(loop, *initiator, 4096, 8);
  }

  void start_nfs(PassMode mode) {
    if (!image->finished()) image->finish();
    target->start();
    run_on(loop, [&]() -> Task<void> {
      bool ok = co_await initiator->login();
      if (!ok) throw std::runtime_error("legacy: login failed");
      co_await sfs->mount();
    });
    nfs::NfsServer::Config sc;
    sc.mode = mode;
    sc.daemons = 8;
    nfs = std::make_unique<nfs::NfsServer>(server->stack, *sfs, sc,
                                           ncache.get());
    nfs->start();
    for (std::size_t i = 0; i < clients.size(); ++i) {
      nfs_clients.push_back(std::make_unique<nfs::NfsClient>(
          clients[i]->stack, client_ip(int(i)),
          server_ip(int(i) % server_nics), std::uint16_t(700 + i)));
    }
  }
};

struct SingleParam {
  PassMode mode;
  int nics;
};

class SingleServerParity : public ::testing::TestWithParam<SingleParam> {};

TEST_P(SingleServerParity, FacadeMatchesHandWiredLegacy) {
  constexpr std::size_t kSize = 192 * 1024;
  const auto [mode, nics] = GetParam();

  LegacySingle legacy(mode, nics, 2);
  std::uint32_t ino = legacy.image->add_file("f.bin", kSize);
  legacy.start_nfs(mode);
  std::vector<std::byte> legacy_bytes;
  run_on(legacy.loop, [&]() -> Task<void> {
    co_await read_all(*legacy.nfs_clients[0], ino, kSize, &legacy_bytes);
    co_await read_all(*legacy.nfs_clients[1], ino, kSize, &legacy_bytes);
  });

  testbed::TestbedConfig cfg;
  cfg.mode = mode;
  cfg.server_nics = nics;
  cfg.client_count = 2;
  testbed::Testbed tb(cfg);
  std::uint32_t tino = tb.image().add_file("f.bin", kSize);
  ASSERT_EQ(tino, ino);
  tb.start_nfs();
  std::vector<std::byte> facade_bytes;
  run_on(tb.loop(), [&]() -> Task<void> {
    co_await read_all(tb.nfs_client(0), tino, kSize, &facade_bytes);
    co_await read_all(tb.nfs_client(1), tino, kSize, &facade_bytes);
  });

  EXPECT_EQ(legacy_bytes.size(), 2 * kSize);
  EXPECT_TRUE(legacy_bytes == facade_bytes)
      << "client-visible stream differs from the hand-wired constructor";
  EXPECT_EQ(legacy.loop.now(), tb.loop().now())
      << "event timelines diverged";
  EXPECT_EQ(legacy.target->stats().reads, tb.target().stats().reads);
  EXPECT_EQ(legacy.initiator->stats().reads, tb.initiator().stats().reads);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SingleServerParity,
    ::testing::Values(SingleParam{PassMode::Original, 1},
                      SingleParam{PassMode::NCache, 1},
                      SingleParam{PassMode::NCache, 2}),
    [](const ::testing::TestParamInfo<SingleParam>& i) {
      return std::string(core::to_string(i.param.mode)) + "_nic" +
             std::to_string(i.param.nics);
    });

// ---------------------------------------------------------------------------
// Hand-wired replica of the historical M×N×1 cluster constructor
// (pre-topology cluster_testbed.cc).
// ---------------------------------------------------------------------------

struct LegacyCluster {
  static constexpr proto::Ipv4Addr kStorageIp = proto::make_ipv4(10, 0, 0, 1);
  static constexpr proto::Ipv4Addr kLbIp = proto::make_ipv4(10, 0, 0, 5);

  struct Replica {
    std::unique_ptr<topo::Node> node;
    std::unique_ptr<iscsi::IscsiInitiator> initiator;
    std::unique_ptr<core::NCacheModule> ncache;
    std::unique_ptr<cluster::PeerCache> peers;
    std::unique_ptr<cluster::PeerBlockClient> block_client;
    std::unique_ptr<fs::SimpleFs> sfs;
    std::unique_ptr<nfs::NfsServer> nfs;
  };

  sim::EventLoop loop;
  sim::CostModel costs{};
  std::shared_ptr<proto::AddressBook> book;
  std::unique_ptr<proto::EthernetSwitch> sw;
  std::unique_ptr<topo::Node> storage, lb_node;
  std::vector<std::unique_ptr<Replica>> replicas;
  std::vector<std::unique_ptr<topo::Node>> clients;
  std::unique_ptr<blockdev::BlockStore> store;
  std::unique_ptr<fs::FsImageBuilder> image;
  std::unique_ptr<iscsi::IscsiTarget> target;
  std::unique_ptr<cluster::LoadBalancer> lb;
  std::vector<std::unique_ptr<nfs::NfsClient>> nfs_clients;
  PassMode mode;

  static proto::Ipv4Addr replica_ip(int i) {
    return proto::make_ipv4(10, 0, 0, std::uint8_t(10 + i));
  }
  static proto::Ipv4Addr client_ip(int i) {
    return proto::make_ipv4(10, 0, 0, std::uint8_t(100 + i));
  }

  LegacyCluster(PassMode m, int server_count, int client_count) : mode(m) {
    book = std::make_shared<proto::AddressBook>();
    sw = std::make_unique<proto::EthernetSwitch>(loop, "switch", costs);
    storage = topo::make_wired_node(loop, costs, book, *sw, "storage",
                                    {{0x10, kStorageIp}});
    lb_node = topo::make_wired_node(loop, costs, book, *sw, "lb",
                                    {{0x50, kLbIp}});

    std::vector<cluster::Peer> peer_list;
    std::vector<cluster::LoadBalancer::Member> member_list;
    for (int i = 0; i < server_count; ++i) {
      peer_list.push_back({std::uint32_t(i), replica_ip(i)});
      member_list.push_back({std::uint32_t(i), replica_ip(i)});
    }

    store = std::make_unique<blockdev::BlockStore>(loop, costs, "raid0",
                                                   64 * 1024);
    image = std::make_unique<fs::FsImageBuilder>(*store, 64 * 1024, 16 * 1024);
    target = std::make_unique<iscsi::IscsiTarget>(storage->stack, *store);

    for (int i = 0; i < server_count; ++i) {
      auto r = std::make_unique<Replica>();
      r->node = topo::make_wired_node(
          loop, costs, book, *sw, "server" + std::to_string(i),
          {{0x20 + std::uint64_t(i), replica_ip(i)}});
      r->initiator = std::make_unique<iscsi::IscsiInitiator>(
          r->node->stack, replica_ip(i), kStorageIp, /*target_id=*/0);
      switch (mode) {
        case PassMode::Original:
          r->initiator->set_payload_policy(iscsi::PayloadPolicy::Copy);
          break;
        case PassMode::NCache: {
          core::NetCentricCache::Config cc;
          cc.pool_budget_bytes = 192u << 20;
          r->ncache = std::make_unique<core::NCacheModule>(r->node->stack, cc);
          r->ncache->attach_egress();
          r->ncache->attach_initiator(*r->initiator);
          break;
        }
        case PassMode::Baseline:
          r->initiator->set_payload_policy(iscsi::PayloadPolicy::Junk);
          break;
      }
      cluster::PeerCache::Config pc;
      pc.self_id = std::uint32_t(i);
      pc.target_id = 0;
      pc.mode = mode;
      pc.enabled = true;
      pc.push_on_miss = true;
      r->peers = std::make_unique<cluster::PeerCache>(r->node->stack, pc,
                                                      peer_list);
      r->block_client = std::make_unique<cluster::PeerBlockClient>(
          *r->initiator, *r->peers, r->ncache.get());
      r->sfs = std::make_unique<fs::SimpleFs>(loop, *r->block_client, 4096, 8);
      r->peers->attach(r->ncache.get(), r->sfs.get());
      replicas.push_back(std::move(r));
    }

    for (int i = 0; i < client_count; ++i) {
      clients.push_back(topo::make_wired_node(
          loop, costs, book, *sw, "client" + std::to_string(i),
          {{0x30 + std::uint64_t(i), client_ip(i)}}));
    }

    cluster::LoadBalancer::Config lc;
    lb = std::make_unique<cluster::LoadBalancer>(lb_node->stack, lc,
                                                 member_list);
  }

  void start_nfs() {
    if (!image->finished()) image->finish();
    target->start();
    for (auto& r : replicas) {
      run_on(loop, [&]() -> Task<void> {
        bool ok = co_await r->initiator->login();
        if (!ok) throw std::runtime_error("legacy cluster: login failed");
        co_await r->sfs->mount();
      });
    }
    for (auto& r : replicas) {
      r->peers->start();
      nfs::NfsServer::Config sc;
      sc.mode = mode;
      sc.daemons = 8;
      r->nfs = std::make_unique<nfs::NfsServer>(r->node->stack, *r->sfs, sc,
                                                r->ncache.get());
      r->nfs->start();
    }
    lb->start();
    for (std::size_t i = 0; i < clients.size(); ++i) {
      nfs_clients.push_back(std::make_unique<nfs::NfsClient>(
          clients[i]->stack, client_ip(int(i)), kLbIp,
          std::uint16_t(700 + i)));
    }
  }
};

/// Closed-loop Zipf reader; folds every payload byte into an
/// order-sensitive FNV stream hash.
Task<void> zipf_worker(nfs::NfsClient* cl, int client,
                       const std::vector<std::uint64_t>* files,
                       const ZipfSampler* zipf, std::uint64_t seed,
                       workload::StopFlag* stop, std::uint64_t* stream_hash,
                       std::uint64_t* ops) {
  ++stop->live_workers;
  Pcg32 rng(seed, 0x9000u + std::uint64_t(client));
  while (!stop->stopped) {
    std::uint64_t fh = (*files)[zipf->sample(rng)];
    std::uint64_t off = 32768ull * rng.below(2);
    auto r = co_await cl->read(std::uint32_t(fh), off, 32768);
    if (r.status == Status::Ok) {
      for (std::byte b : r.data.to_bytes()) {
        *stream_hash = (*stream_hash ^ std::uint64_t(b)) * 0x100000001b3ull;
      }
      ++*ops;
    }
  }
  --stop->live_workers;
}

struct ZipfResult {
  std::vector<std::uint64_t> hashes;
  std::uint64_t total_ops = 0;
  sim::Time end_time = 0;
  std::uint64_t target_reads = 0;
  std::uint64_t peer_hits = 0;
  std::uint64_t peer_misses = 0;
};

TEST(ClusterParity, FacadeMatchesHandWiredLegacy) {
  constexpr int kServers = 2, kClients = 2;

  LegacyCluster legacy(PassMode::NCache, kServers, kClients);
  std::vector<std::uint64_t> lfiles;
  ZipfResult lres;
  {
    for (int i = 0; i < 32; ++i) {
      lfiles.push_back(
          legacy.image->add_file("z" + std::to_string(i), 64 * 1024));
    }
    legacy.start_nfs();
    ZipfSampler zipf(32, 0.98);
    lres.hashes.assign(kClients, 0xcbf29ce484222325ull);
    std::vector<std::uint64_t> ops(kClients, 0);
    workload::StopFlag stop;
    for (int c = 0; c < kClients; ++c) {
      zipf_worker(legacy.nfs_clients[std::size_t(c)].get(), c, &lfiles, &zipf,
                  77, &stop, &lres.hashes[std::size_t(c)],
                  &ops[std::size_t(c)])
          .detach(legacy.loop.reaper());
    }
    workload::run_measurement(legacy.loop, stop, 150 * sim::kMillisecond);
    for (std::uint64_t o : ops) lres.total_ops += o;
    lres.end_time = legacy.loop.now();
    lres.target_reads = legacy.target->stats().reads;
    for (auto& r : legacy.replicas) {
      lres.peer_hits += r->peers->stats().peer_hits;
      lres.peer_misses += r->peers->stats().peer_misses;
    }
  }

  cluster::ClusterConfig cfg;
  cfg.mode = PassMode::NCache;
  cfg.server_count = kServers;
  cfg.client_count = kClients;
  cluster::ClusterTestbed cc(cfg);
  std::vector<std::uint64_t> cfiles;
  for (int i = 0; i < 32; ++i) {
    cfiles.push_back(cc.image().add_file("z" + std::to_string(i), 64 * 1024));
  }
  ASSERT_EQ(cfiles, lfiles);
  cc.start_nfs();
  ZipfResult cres;
  {
    ZipfSampler zipf(32, 0.98);
    cres.hashes.assign(kClients, 0xcbf29ce484222325ull);
    std::vector<std::uint64_t> ops(kClients, 0);
    workload::StopFlag stop;
    for (int c = 0; c < kClients; ++c) {
      zipf_worker(&cc.nfs_client(c), c, &cfiles, &zipf, 77, &stop,
                  &cres.hashes[std::size_t(c)], &ops[std::size_t(c)])
          .detach(cc.loop().reaper());
    }
    workload::run_measurement(cc.loop(), stop, 150 * sim::kMillisecond);
    for (std::uint64_t o : ops) cres.total_ops += o;
    cres.end_time = cc.loop().now();
    cres.target_reads = cc.total_target_reads();
    cres.peer_hits = cc.total_peer_hits();
    cres.peer_misses = cc.total_peer_misses();
  }

  EXPECT_GT(lres.total_ops, 0u);
  EXPECT_EQ(lres.hashes, cres.hashes)
      << "client streams differ from the hand-wired cluster";
  EXPECT_EQ(lres.total_ops, cres.total_ops);
  EXPECT_EQ(lres.end_time, cres.end_time) << "event timelines diverged";
  EXPECT_EQ(lres.target_reads, cres.target_reads);
  EXPECT_EQ(lres.peer_hits, cres.peer_hits);
  EXPECT_EQ(lres.peer_misses, cres.peer_misses);
}

// ---------------------------------------------------------------------------
// parse(describe()) worlds behave identically to builder worlds
// ---------------------------------------------------------------------------

std::string run_world_metrics(const topo::Topology& shape) {
  topo::WorldConfig cfg;
  cfg.mode = PassMode::NCache;
  topo::World world(shape, cfg);
  std::uint32_t ino = world.image().add_file("f.bin", 128 * 1024);
  world.start_nfs();
  run_on(world.loop(), [&]() -> Task<void> {
    for (int c = 0; c < world.client_count(); ++c) {
      co_await read_all(world.nfs_client(c), ino, 128 * 1024, nullptr);
    }
  });
  return scrub_slab(world.metrics().to_json().dump());
}

TEST(TopologyWorld, ParsedTextMatchesBuilderBitForBit) {
  topo::Topology built = topo::presets::cluster(2, 2);
  topo::Topology parsed = topo::Topology::parse(built.describe());
  EXPECT_EQ(run_world_metrics(built), run_world_metrics(parsed))
      << "a parsed topology must materialize the same world";
}

// ---------------------------------------------------------------------------
// Two racks over a WAN trunk — end to end
// ---------------------------------------------------------------------------

TEST(TwoRackWan, ReadsTraverseTheTrunkCorrectly) {
  constexpr std::size_t kSize = 128 * 1024;
  topo::WorldConfig cfg;
  cfg.mode = PassMode::NCache;
  topo::World world(
      topo::presets::two_racks_wan(2, 200'000'000, 5 * sim::kMillisecond),
      cfg);
  std::uint32_t ino = world.image().add_file("f.bin", kSize);
  world.start_nfs();

  std::vector<std::byte> bytes;
  sim::Time t0 = world.loop().now();
  run_on(world.loop(), [&]() -> Task<void> {
    co_await read_all(world.nfs_client(0), ino, kSize, &bytes);
    co_await read_all(world.nfs_client(1), ino, kSize, &bytes);
  });
  EXPECT_EQ(bytes.size(), 2 * kSize);

  // The client racks' only path to the server is the trunk.
  sim::DuplexLink& trunk = world.trunk("rack_a", "rack_b");
  EXPECT_GT(trunk.a_to_b.frames(), 0u);
  EXPECT_GT(trunk.b_to_a.frames(), 0u);
  EXPECT_GT(trunk.b_to_a.payload_bytes(), 2 * kSize)
      << "read payloads must have crossed the WAN";
  // Every request pays at least one 5 ms WAN round trip.
  EXPECT_GT(world.loop().now() - t0, 2 * 5 * sim::kMillisecond);
}

struct LossyRun {
  std::string metrics_json;
  sim::Time end_time = 0;
  std::uint64_t trunk_drops = 0;
};

LossyRun run_lossy_wan(std::uint64_t seed) {
  topo::WorldConfig cfg;
  cfg.mode = PassMode::Original;
  cfg.fault_seed = seed;
  topo::World world(topo::presets::two_racks_wan(2, 200'000'000,
                                                 2 * sim::kMillisecond,
                                                 0.02),
                    cfg);
  std::uint32_t ino = world.image().add_file("f.bin", 96 * 1024);
  world.start_nfs();
  run_on(world.loop(), [&]() -> Task<void> {
    co_await read_all(world.nfs_client(0), ino, 96 * 1024, nullptr);
  });
  sim::DuplexLink& trunk = world.trunk("rack_a", "rack_b");
  LossyRun run;
  run.metrics_json = scrub_slab(world.metrics().to_json().dump());
  run.end_time = world.loop().now();
  run.trunk_drops =
      trunk.a_to_b.dropped_faults() + trunk.b_to_a.dropped_faults();
  return run;
}

TEST(TwoRackWan, LossySameSeedRunsReplayBitForBit) {
  LossyRun a = run_lossy_wan(42);
  LossyRun b = run_lossy_wan(42);
  EXPECT_GT(a.trunk_drops, 0u)
      << "a 2% lossy trunk should actually drop frames";
  EXPECT_EQ(a.trunk_drops, b.trunk_drops);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.metrics_json, b.metrics_json)
      << "seeded loss hooks must be deterministic";
}

}  // namespace
}  // namespace ncache
