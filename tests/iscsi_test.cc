// Tests for the iSCSI substrate: PDU codec, stream framing, and full
// initiator <-> target exchanges over the simulated network, including the
// three payload policies (Copy / NCache-ingest / Junk).
#include <gtest/gtest.h>

#include "blockdev/block_store.h"
#include "iscsi/initiator.h"
#include "iscsi/pdu.h"
#include "iscsi/target.h"
#include "proto/switch.h"

namespace ncache::iscsi {
namespace {

using netbuf::MsgBuffer;
using proto::make_ipv4;

std::vector<std::byte> block_pattern(std::size_t blocks, int seed) {
  std::vector<std::byte> v(blocks * blockdev::kBlockSize);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = std::byte((i * 11 + seed) & 0xff);
  }
  return v;
}

TEST(Pdu, BhsRoundTripCommand) {
  Pdu p;
  p.opcode = Opcode::ScsiCommand;
  p.final_flag = true;
  p.lun = 1;
  p.itt = 0x1234;
  p.expected_length = 8192;
  p.cmd_sn = 7;
  p.exp_sn = 9;
  p.cdb = make_rw_cdb(ScsiRw{false, 12345, 16});

  auto bhs = p.serialize_bhs();
  ASSERT_EQ(bhs.size(), kBhsBytes);
  Pdu q = Pdu::parse_bhs(bhs);
  EXPECT_EQ(q.opcode, Opcode::ScsiCommand);
  EXPECT_EQ(q.itt, 0x1234u);
  EXPECT_EQ(q.expected_length, 8192u);
  auto rw = parse_rw_cdb(q.cdb);
  ASSERT_TRUE(rw);
  EXPECT_FALSE(rw->is_write);
  EXPECT_EQ(rw->lba, 12345u);
  EXPECT_EQ(rw->blocks, 16u);
}

TEST(Pdu, BhsRoundTripDataIn) {
  Pdu p;
  p.opcode = Opcode::ScsiDataIn;
  p.itt = 5;
  p.data_sn = 3;
  p.buffer_offset = 16384;
  p.status = ScsiStatus::Good;
  p.data = MsgBuffer::from_string("hello world!");  // 12 bytes

  auto bhs = p.serialize_bhs();
  Pdu q = Pdu::parse_bhs(bhs);
  EXPECT_EQ(q.opcode, Opcode::ScsiDataIn);
  EXPECT_EQ(q.data_sn, 3u);
  EXPECT_EQ(q.buffer_offset, 16384u);
  EXPECT_EQ(q.data.size(), 12u);  // placeholder carries the data length
}

TEST(Pdu, RwCdbRejectsOtherOpcodes) {
  std::array<std::uint8_t, 16> cdb{};
  cdb[0] = 0x12;  // INQUIRY
  EXPECT_FALSE(parse_rw_cdb(cdb));
}

TEST(Pdu, StreamSizePadsToFour) {
  Pdu p;
  p.opcode = Opcode::NopOut;
  p.data = MsgBuffer::from_string("abcde");  // 5 -> pad 3
  EXPECT_EQ(p.stream_size(), kBhsBytes + 8);
  EXPECT_EQ(p.to_stream().size(), kBhsBytes + 8);
}

TEST(PduParserTest, ReassemblesSplitStream) {
  Pdu a;
  a.opcode = Opcode::NopOut;
  a.itt = 1;
  a.data = MsgBuffer::from_string("payload-one");
  Pdu b;
  b.opcode = Opcode::NopIn;
  b.itt = 2;
  b.data = MsgBuffer::from_string("x");

  MsgBuffer stream = a.to_stream();
  stream.append(b.to_stream());

  // Feed in pathological 7-byte chunks.
  PduParser parser;
  std::vector<Pdu> got;
  auto sink = [&](Pdu p) { got.push_back(std::move(p)); };
  for (std::size_t off = 0; off < stream.size(); off += 7) {
    std::size_t take = std::min<std::size_t>(7, stream.size() - off);
    parser.feed(stream.slice(off, take), sink);
  }
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].itt, 1u);
  EXPECT_EQ(got[0].data.to_bytes(), MsgBuffer::from_string("payload-one").to_bytes());
  EXPECT_EQ(got[1].itt, 2u);
  EXPECT_EQ(got[1].data.size(), 1u);
  EXPECT_EQ(parser.buffered(), 0u);
}

TEST(PduParserTest, ZeroLengthDataSegment) {
  Pdu a;
  a.opcode = Opcode::ScsiResponse;
  a.itt = 9;
  PduParser parser;
  std::vector<Pdu> got;
  parser.feed(a.to_stream(), [&](Pdu p) { got.push_back(std::move(p)); });
  ASSERT_EQ(got.size(), 1u);
  EXPECT_TRUE(got[0].data.empty());
}

// ---------------------------------------------------------------------------
// End-to-end fixture: storage node + app node
// ---------------------------------------------------------------------------

class IscsiEndToEnd : public ::testing::Test {
 protected:
  static constexpr auto kStorageIp = make_ipv4(10, 0, 0, 1);
  static constexpr auto kAppIp = make_ipv4(10, 0, 0, 2);

  IscsiEndToEnd()
      : book_(std::make_shared<proto::AddressBook>()),
        sw_(loop_, "sw", costs_),
        storage_cpu_(loop_, "storage.cpu"),
        storage_copier_(storage_cpu_, costs_),
        storage_stack_(loop_, storage_cpu_, storage_copier_, costs_, "storage",
                       book_),
        app_cpu_(loop_, "app.cpu"),
        app_copier_(app_cpu_, costs_),
        app_stack_(loop_, app_cpu_, app_copier_, costs_, "app", book_),
        store_(loop_, costs_, "disks", 4096),
        target_(storage_stack_, store_),
        initiator_(app_stack_, kAppIp, kStorageIp, /*target_id=*/0) {
    storage_stack_.add_nic(0x01, kStorageIp);
    app_stack_.add_nic(0x02, kAppIp);
    sw_.connect(storage_stack_.nic(0));
    sw_.connect(app_stack_.nic(0));
    target_.start();
  }

  void login() {
    auto t_fn = [&]() -> Task<void> {
      bool ok = co_await initiator_.login();
      EXPECT_TRUE(ok);
    };
    sim::sync_wait(loop_, t_fn());
  }

  sim::EventLoop loop_;
  sim::CostModel costs_{};
  std::shared_ptr<proto::AddressBook> book_;
  proto::EthernetSwitch sw_;
  sim::CpuModel storage_cpu_;
  netbuf::CopyEngine storage_copier_;
  proto::NetworkStack storage_stack_;
  sim::CpuModel app_cpu_;
  netbuf::CopyEngine app_copier_;
  proto::NetworkStack app_stack_;
  blockdev::BlockStore store_;
  IscsiTarget target_;
  IscsiInitiator initiator_;
};

TEST_F(IscsiEndToEnd, LoginAndPing) {
  login();
  auto t_fn = [&]() -> Task<void> {
    EXPECT_TRUE(co_await initiator_.ping());
  };
  sim::sync_wait(loop_, t_fn());
  EXPECT_EQ(target_.stats().logins, 1u);
}

TEST_F(IscsiEndToEnd, ReadBlocksCopyPolicy) {
  auto data = block_pattern(4, 3);
  store_.poke(100, data);
  login();

  auto t_fn = [&]() -> Task<void> {
    MsgBuffer got = co_await initiator_.read_blocks(100, 4, /*metadata=*/false);
    EXPECT_EQ(got.size(), data.size());
    EXPECT_TRUE(got.fully_physical());
    EXPECT_EQ(got.to_bytes(), data);
  };
  sim::sync_wait(loop_, t_fn());

  // Target side: 2 regular-data copies; app side: 1 (copy policy).
  EXPECT_EQ(storage_copier_.stats().data_copy_ops, 2u);
  EXPECT_EQ(app_copier_.stats().data_copy_ops, 1u);
  EXPECT_EQ(target_.stats().reads, 1u);
}

TEST_F(IscsiEndToEnd, MetadataReadsAreCopiedAsMetadata) {
  auto data = block_pattern(1, 8);
  store_.poke(5, data);
  login();
  auto t_fn = [&]() -> Task<void> {
    MsgBuffer got = co_await initiator_.read_blocks(5, 1, /*metadata=*/true);
    EXPECT_EQ(got.to_bytes(), data);
  };
  sim::sync_wait(loop_, t_fn());
  EXPECT_EQ(app_copier_.stats().meta_copy_ops, 1u);
  EXPECT_EQ(app_copier_.stats().data_copy_ops, 0u);
}

TEST_F(IscsiEndToEnd, WriteThenReadBack) {
  login();
  auto data = block_pattern(2, 7);
  auto t_fn = [&]() -> Task<void> {
    bool ok = co_await initiator_.write_blocks(
        200, MsgBuffer::from_bytes(data), /*metadata=*/false);
    EXPECT_TRUE(ok);
    MsgBuffer got = co_await initiator_.read_blocks(200, 2, false);
    EXPECT_EQ(got.to_bytes(), data);
  };
  sim::sync_wait(loop_, t_fn());
  EXPECT_EQ(target_.stats().writes, 1u);
  EXPECT_EQ(store_.peek(200, 2), data);
}

TEST_F(IscsiEndToEnd, NCachePolicyIngestsAndReturnsKeys) {
  auto data = block_pattern(2, 4);
  store_.poke(50, data);
  login();

  std::vector<std::pair<std::uint64_t, std::size_t>> ingested;
  initiator_.set_payload_policy(PayloadPolicy::NCache);
  initiator_.set_ingest_hook([&](std::uint64_t lbn, MsgBuffer chain) {
    ingested.emplace_back(lbn, chain.size());
    return MsgBuffer::from_key(netbuf::LbnKey{0, lbn}, 0,
                               std::uint32_t(chain.size()));
  });

  auto t_fn = [&]() -> Task<void> {
    MsgBuffer got = co_await initiator_.read_blocks(50, 2, false);
    EXPECT_EQ(got.size(), 2 * blockdev::kBlockSize);
    EXPECT_TRUE(got.has_keys());
    EXPECT_EQ(got.key_count(), 2u);
  };
  sim::sync_wait(loop_, t_fn());

  ASSERT_EQ(ingested.size(), 2u);
  EXPECT_EQ(ingested[0].first, 50u);
  EXPECT_EQ(ingested[1].first, 51u);
  // Zero data copies on the app server.
  EXPECT_EQ(app_copier_.stats().data_copy_ops, 0u);
  EXPECT_EQ(initiator_.stats().ingests, 1u);
}

TEST_F(IscsiEndToEnd, JunkPolicyMovesNothing) {
  auto data = block_pattern(1, 2);
  store_.poke(9, data);
  login();
  initiator_.set_payload_policy(PayloadPolicy::Junk);
  auto t_fn = [&]() -> Task<void> {
    MsgBuffer got = co_await initiator_.read_blocks(9, 1, false);
    EXPECT_EQ(got.size(), blockdev::kBlockSize);
    EXPECT_TRUE(got.has_junk());
  };
  sim::sync_wait(loop_, t_fn());
  EXPECT_EQ(app_copier_.stats().data_copy_ops, 0u);
}

TEST_F(IscsiEndToEnd, WriteRemapHookFiresPerKeyBlock) {
  login();
  initiator_.set_payload_policy(PayloadPolicy::NCache);
  std::vector<std::uint64_t> remapped;
  initiator_.set_remap_hook(
      [&](std::uint64_t lbn, const MsgBuffer&) { remapped.push_back(lbn); });

  MsgBuffer payload;
  payload.append(MsgBuffer::from_key(netbuf::FhoKey{7, 0}, 0,
                                     std::uint32_t(blockdev::kBlockSize)));
  payload.append(MsgBuffer::from_key(netbuf::FhoKey{7, 4096}, 0,
                                     std::uint32_t(blockdev::kBlockSize)));
  auto t_fn = [&]() -> Task<void> {
    // Without an egress substitution filter the junk-materialized frames
    // still complete the protocol exchange; remap must have fired.
    (void)co_await initiator_.write_blocks(300, std::move(payload), false);
  };
  sim::sync_wait(loop_, t_fn());
  EXPECT_EQ(remapped, (std::vector<std::uint64_t>{300, 301}));
}

TEST_F(IscsiEndToEnd, ConcurrentReadsInterleave) {
  auto d1 = block_pattern(8, 1);
  auto d2 = block_pattern(8, 2);
  store_.poke(0, d1);
  store_.poke(1000, d2);
  login();

  bool ok1 = false, ok2 = false;
  auto r1_fn = [&]() -> Task<void> {
    MsgBuffer got = co_await initiator_.read_blocks(0, 8, false);
    ok1 = got.to_bytes() == d1;
  };
  auto r2_fn = [&]() -> Task<void> {
    MsgBuffer got = co_await initiator_.read_blocks(1000, 8, false);
    ok2 = got.to_bytes() == d2;
  };
  auto r1 = r1_fn();
  auto r2 = r2_fn();
  std::move(r1).detach();
  std::move(r2).detach();
  loop_.run();
  EXPECT_TRUE(ok1);
  EXPECT_TRUE(ok2);
}

TEST_F(IscsiEndToEnd, LargeSequentialReadSaturation) {
  // 64 blocks in 8-block commands: exercises Data-In segmentation (8 KB
  // PDUs over 1460 B segments) and block store integrity at volume.
  auto data = block_pattern(64, 6);
  store_.poke(0, data);
  login();

  std::vector<std::byte> assembled;
  auto t_fn = [&]() -> Task<void> {
    for (int i = 0; i < 8; ++i) {
      MsgBuffer got = co_await initiator_.read_blocks(i * 8, 8, false);
      auto bytes = got.to_bytes();
      assembled.insert(assembled.end(), bytes.begin(), bytes.end());
    }
  };
  sim::sync_wait(loop_, t_fn());
  EXPECT_EQ(assembled, data);
  EXPECT_EQ(target_.stats().read_bytes, 64u * blockdev::kBlockSize);
}

TEST(LocalBlockClientTest, DirectReadWrite) {
  sim::EventLoop loop;
  sim::CostModel costs;
  sim::CpuModel cpu(loop, "cpu");
  netbuf::CopyEngine copier(cpu, costs);
  blockdev::BlockStore store(loop, costs, "st", 128);
  LocalBlockClient client(store, copier);

  auto data = block_pattern(2, 5);
  auto t_fn = [&]() -> Task<void> {
    co_await client.write_blocks(3, MsgBuffer::from_bytes(data), false);
    MsgBuffer got = co_await client.read_blocks(3, 2, false);
    EXPECT_EQ(got.to_bytes(), data);
  };
  sim::sync_wait(loop, t_fn());
}

}  // namespace
}  // namespace ncache::iscsi
