// Tests for the protocol stack: header codecs, IP fragmentation and
// reassembly, NIC/switch forwarding, UDP end-to-end, and TCP behaviour
// including loss recovery driven through the driver-boundary frame filter
// (the same hook NCache attaches to).
#include <gtest/gtest.h>

#include <memory>

#include "netbuf/copy_engine.h"
#include "proto/headers.h"
#include "proto/ip_reassembly.h"
#include "proto/stack.h"
#include "proto/switch.h"
#include "sim/cost_model.h"

namespace ncache::proto {
namespace {

using netbuf::MsgBuffer;

std::vector<std::byte> pattern(std::size_t n, int seed = 1) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = std::byte((i * 13 + seed) & 0xff);
  return v;
}

TEST(Headers, EthRoundTrip) {
  EthHeader h{0x001122334455ULL, 0x66778899aabbULL, kEtherTypeIpv4};
  std::vector<std::byte> buf;
  ByteWriter w(buf);
  h.serialize(w);
  ASSERT_EQ(buf.size(), kEthHeaderBytes);
  ByteReader r(buf);
  EXPECT_EQ(EthHeader::parse(r), h);
}

TEST(Headers, Ipv4RoundTripAndChecksum) {
  Ipv4Header h;
  h.total_length = 1500;
  h.id = 777;
  h.more_fragments = true;
  h.fragment_offset = 185;
  h.protocol = IpProto::Tcp;
  h.src = make_ipv4(10, 0, 0, 1);
  h.dst = make_ipv4(10, 0, 0, 2);
  auto bytes = h.serialize_with_checksum();
  ASSERT_EQ(bytes.size(), kIpv4HeaderBytes);
  EXPECT_TRUE(Ipv4Header::checksum_ok(bytes));

  ByteReader r(bytes);
  Ipv4Header parsed = Ipv4Header::parse(r);
  EXPECT_EQ(parsed.id, 777);
  EXPECT_TRUE(parsed.more_fragments);
  EXPECT_EQ(parsed.fragment_offset, 185);
  EXPECT_EQ(parsed.src, h.src);

  // Corruption is detected.
  bytes[8] ^= std::byte{0xff};
  EXPECT_FALSE(Ipv4Header::checksum_ok(bytes));
}

TEST(Headers, UdpTcpRoundTrip) {
  UdpHeader u{2049, 700, 1008, 0xabcd};
  std::vector<std::byte> b1;
  ByteWriter w1(b1);
  u.serialize(w1);
  ByteReader r1(b1);
  EXPECT_EQ(UdpHeader::parse(r1), u);

  TcpHeader t;
  t.src_port = 3260;
  t.dst_port = 49152;
  t.seq = 0xdeadbeef;
  t.ack = 0x01020304;
  t.flags = kTcpPsh | kTcpAck;
  t.window = 65535;
  std::vector<std::byte> b2;
  ByteWriter w2(b2);
  t.serialize(w2);
  ASSERT_EQ(b2.size(), kTcpHeaderBytes);
  ByteReader r2(b2);
  EXPECT_EQ(TcpHeader::parse(r2), t);
}

TEST(Headers, Ipv4ToString) {
  EXPECT_EQ(ipv4_to_string(make_ipv4(192, 168, 1, 10)), "192.168.1.10");
}

// ---------------------------------------------------------------------------
// Reassembly
// ---------------------------------------------------------------------------

Frame make_fragment(std::uint16_t id, std::uint32_t data_off,
                    MsgBuffer payload, bool more, bool with_udp) {
  Frame f;
  f.ip.id = id;
  f.ip.protocol = IpProto::Udp;
  f.ip.src = make_ipv4(10, 0, 0, 1);
  f.ip.dst = make_ipv4(10, 0, 0, 2);
  f.ip.fragment_offset = static_cast<std::uint16_t>(data_off / 8);
  f.ip.more_fragments = more;
  if (with_udp) f.udp = UdpHeader{1, 2, 0, 0};
  f.payload = std::move(payload);
  return f;
}

TEST(Reassembly, InOrderFragments) {
  sim::EventLoop loop;
  IpReassembler ra(loop);
  auto pat = pattern(3000);
  MsgBuffer whole = MsgBuffer::from_bytes(pat);

  EXPECT_FALSE(ra.feed(make_fragment(5, 0, whole.slice(0, 1472), true, true)));
  EXPECT_FALSE(
      ra.feed(make_fragment(5, 1472, whole.slice(1472, 1480), true, false)));
  auto done =
      ra.feed(make_fragment(5, 2952, whole.slice(2952, 48), false, false));
  ASSERT_TRUE(done);
  EXPECT_EQ(done->payload.to_bytes(), pat);
  ASSERT_TRUE(done->udp);
  EXPECT_EQ(ra.pending(), 0u);
}

TEST(Reassembly, OutOfOrderAndInterleavedFlows) {
  sim::EventLoop loop;
  IpReassembler ra(loop);
  auto pa = pattern(2000, 1);
  auto pb = pattern(2000, 2);
  MsgBuffer a = MsgBuffer::from_bytes(pa);
  MsgBuffer b = MsgBuffer::from_bytes(pb);

  EXPECT_FALSE(ra.feed(make_fragment(1, 1472, a.slice(1472, 528), false, false)));
  EXPECT_FALSE(ra.feed(make_fragment(2, 1472, b.slice(1472, 528), false, false)));
  EXPECT_EQ(ra.pending(), 2u);
  auto da = ra.feed(make_fragment(1, 0, a.slice(0, 1472), true, true));
  ASSERT_TRUE(da);
  EXPECT_EQ(da->payload.to_bytes(), pa);
  auto db = ra.feed(make_fragment(2, 0, b.slice(0, 1472), true, true));
  ASSERT_TRUE(db);
  EXPECT_EQ(db->payload.to_bytes(), pb);
}

TEST(Reassembly, DuplicateFragmentHarmless) {
  sim::EventLoop loop;
  IpReassembler ra(loop);
  auto pat = pattern(2000);
  MsgBuffer m = MsgBuffer::from_bytes(pat);
  EXPECT_FALSE(ra.feed(make_fragment(9, 0, m.slice(0, 1472), true, true)));
  EXPECT_FALSE(ra.feed(make_fragment(9, 0, m.slice(0, 1472), true, true)));
  auto done = ra.feed(make_fragment(9, 1472, m.slice(1472, 528), false, false));
  ASSERT_TRUE(done);
  EXPECT_EQ(done->payload.to_bytes(), pat);
}

TEST(Reassembly, ExpireDropsStalePartials) {
  sim::EventLoop loop;
  IpReassembler ra(loop, 1000);
  auto pat = pattern(2000);
  MsgBuffer m = MsgBuffer::from_bytes(pat);
  ra.feed(make_fragment(3, 0, m.slice(0, 1472), true, true));
  EXPECT_EQ(ra.pending(), 1u);
  loop.schedule_at(5000, [] {});
  loop.run();
  // The self-arming expiry timer evicted the stale partial during run();
  // a manual sweep finds nothing left.
  EXPECT_EQ(ra.pending(), 0u);
  EXPECT_EQ(ra.timeouts(), 1u);
  EXPECT_EQ(ra.expire(), 0u);
}

TEST(Reassembly, UnfragmentedPassThrough) {
  sim::EventLoop loop;
  IpReassembler ra(loop);
  auto done = ra.feed(make_fragment(1, 0, MsgBuffer::from_bytes(pattern(100)),
                                    false, true));
  ASSERT_TRUE(done);
  EXPECT_EQ(done->payload.size(), 100u);
}

// ---------------------------------------------------------------------------
// Two-host fixture: A and B on one switch
// ---------------------------------------------------------------------------

struct Host {
  Host(sim::EventLoop& loop, const sim::CostModel& costs,
       std::shared_ptr<AddressBook> book, std::string name, MacAddr mac,
       Ipv4Addr ip)
      : cpu(loop, name + ".cpu"),
        copier(cpu, costs),
        stack(loop, cpu, copier, costs, name, std::move(book)) {
    stack.add_nic(mac, ip);
  }
  sim::CpuModel cpu;
  netbuf::CopyEngine copier;
  NetworkStack stack;
};

class TwoHostTest : public ::testing::Test {
 protected:
  TwoHostTest()
      : book_(std::make_shared<AddressBook>()),
        sw_(loop_, "sw", costs_),
        a_(loop_, costs_, book_, "A", 0xaa, make_ipv4(10, 0, 0, 1)),
        b_(loop_, costs_, book_, "B", 0xbb, make_ipv4(10, 0, 0, 2)) {
    sw_.connect(a_.stack.nic(0));
    sw_.connect(b_.stack.nic(0));
  }

  sim::EventLoop loop_;
  sim::CostModel costs_{};
  std::shared_ptr<AddressBook> book_;
  EthernetSwitch sw_;
  Host a_;
  Host b_;
};

TEST_F(TwoHostTest, UdpSmallDatagram) {
  auto pat = pattern(512);
  MsgBuffer got;
  bool received = false;
  b_.stack.udp_bind(2049, [&](Ipv4Addr sip, std::uint16_t sport, Ipv4Addr dip,
                              std::uint16_t dport, MsgBuffer m) {
    EXPECT_EQ(sip, make_ipv4(10, 0, 0, 1));
    EXPECT_EQ(sport, 700);
    EXPECT_EQ(dip, make_ipv4(10, 0, 0, 2));
    EXPECT_EQ(dport, 2049);
    got = std::move(m);
    received = true;
  });
  a_.stack.udp_send(make_ipv4(10, 0, 0, 1), 700, make_ipv4(10, 0, 0, 2), 2049,
                    MsgBuffer::from_bytes(pat));
  loop_.run();
  ASSERT_TRUE(received);
  EXPECT_EQ(got.to_bytes(), pat);
  EXPECT_EQ(b_.stack.stats().bad_checksum_drops, 0u);
}

TEST_F(TwoHostTest, UdpFragmentedDatagramReassembles) {
  auto pat = pattern(32 * 1024);
  MsgBuffer got;
  b_.stack.udp_bind(2049, [&](Ipv4Addr, std::uint16_t, Ipv4Addr, std::uint16_t,
                              MsgBuffer m) { got = std::move(m); });
  a_.stack.udp_send(make_ipv4(10, 0, 0, 1), 700, make_ipv4(10, 0, 0, 2), 2049,
                    MsgBuffer::from_bytes(pat));
  loop_.run();
  EXPECT_EQ(got.to_bytes(), pat);
  // ~23 frames for 32 KB.
  EXPECT_GE(b_.stack.nic(0).rx_frames().value(), 22u);
}

TEST_F(TwoHostTest, UdpEchoRequestResponse) {
  b_.stack.udp_bind(53, [&](Ipv4Addr sip, std::uint16_t sport, Ipv4Addr dip,
                            std::uint16_t, MsgBuffer m) {
    b_.stack.udp_send(dip, 53, sip, sport, std::move(m));
  });
  auto pat = pattern(100);
  bool echoed = false;
  a_.stack.udp_bind(700, [&](Ipv4Addr, std::uint16_t, Ipv4Addr, std::uint16_t,
                             MsgBuffer m) {
    echoed = m.to_bytes() == pat;
  });
  a_.stack.udp_send(make_ipv4(10, 0, 0, 1), 700, make_ipv4(10, 0, 0, 2), 53,
                    MsgBuffer::from_bytes(pat));
  loop_.run();
  EXPECT_TRUE(echoed);
}

TEST_F(TwoHostTest, UdpUnboundPortDropped) {
  a_.stack.udp_send(make_ipv4(10, 0, 0, 1), 700, make_ipv4(10, 0, 0, 2), 9999,
                    MsgBuffer::from_bytes(pattern(10)));
  loop_.run();
  EXPECT_EQ(b_.stack.stats().no_handler_drops, 1u);
}

TEST_F(TwoHostTest, UdpLogicalPayloadTravelsAsKeys) {
  // A KeySeg payload that is never materialized (no egress filter): it must
  // arrive as keys with the checksum marked inherited, not as bytes.
  MsgBuffer got;
  b_.stack.udp_bind(2049, [&](Ipv4Addr, std::uint16_t, Ipv4Addr, std::uint16_t,
                              MsgBuffer m) { got = std::move(m); });
  MsgBuffer payload;
  payload.append(MsgBuffer::from_key(netbuf::LbnKey{0, 11}, 0, 4096));
  a_.stack.udp_send(make_ipv4(10, 0, 0, 1), 700, make_ipv4(10, 0, 0, 2), 2049,
                    std::move(payload));
  loop_.run();
  EXPECT_EQ(got.size(), 4096u);
  EXPECT_TRUE(got.has_keys());
  EXPECT_EQ(got.key_count(), 3u);  // sliced across 3 MTU fragments
}

TEST_F(TwoHostTest, TcpConnectTransfersBidirectional) {
  auto c2s = pattern(100 * 1000, 3);
  auto s2c = pattern(50 * 1000, 4);

  std::vector<std::byte> server_got, client_got;
  b_.stack.tcp_listen(3260, [&](TcpConnectionPtr conn) {
    conn->set_data_handler([&, conn](MsgBuffer m) {
      auto bytes = m.to_bytes();
      server_got.insert(server_got.end(), bytes.begin(), bytes.end());
      if (server_got.size() == c2s.size()) {
        conn->send(MsgBuffer::from_bytes(s2c));
      }
    });
  });

  bool done = false;
  auto driver_fn = [&]() -> Task<void> {
    auto conn = co_await a_.stack.tcp_connect(
        make_ipv4(10, 0, 0, 1), make_ipv4(10, 0, 0, 2), 3260);
    conn->set_data_handler([&](MsgBuffer m) {
      auto bytes = m.to_bytes();
      client_got.insert(client_got.end(), bytes.begin(), bytes.end());
      if (client_got.size() == s2c.size()) done = true;
    });
    conn->send(MsgBuffer::from_bytes(c2s));
  };
  auto driver = driver_fn();
  std::move(driver).detach();
  loop_.run();

  ASSERT_TRUE(done);
  EXPECT_EQ(server_got, c2s);
  EXPECT_EQ(client_got, s2c);
}

TEST_F(TwoHostTest, TcpRecoversFromLoss) {
  // Drop ~3% of frames on A's egress via the driver-boundary filter — the
  // same attachment point NCache uses.
  int counter = 0;
  a_.stack.nic(0).set_egress_filter([&](Frame&) {
    ++counter;
    return counter % 31 != 0;
  });

  auto payload = pattern(200 * 1000, 9);
  std::vector<std::byte> got;
  b_.stack.tcp_listen(80, [&](TcpConnectionPtr conn) {
    conn->set_data_handler([&](MsgBuffer m) {
      auto bytes = m.to_bytes();
      got.insert(got.end(), bytes.begin(), bytes.end());
    });
  });

  TcpConnectionPtr client;
  auto driver_fn = [&]() -> Task<void> {
    client = co_await a_.stack.tcp_connect(make_ipv4(10, 0, 0, 1),
                                           make_ipv4(10, 0, 0, 2), 80);
    client->send(MsgBuffer::from_bytes(payload));
  };
  auto driver = driver_fn();
  std::move(driver).detach();
  loop_.run();

  EXPECT_EQ(got, payload);
  ASSERT_TRUE(client);
  EXPECT_GT(client->stats().retransmits, 0u);
}

TEST_F(TwoHostTest, TcpGracefulClose) {
  bool server_closed = false, client_closed = false;
  TcpConnectionPtr server_conn;
  b_.stack.tcp_listen(80, [&](TcpConnectionPtr conn) {
    server_conn = conn;
    conn->set_on_close([&] { server_closed = true; });
    conn->set_data_handler([conn](MsgBuffer) { conn->close(); });
  });

  auto driver_fn = [&]() -> Task<void> {
    auto conn = co_await a_.stack.tcp_connect(make_ipv4(10, 0, 0, 1),
                                              make_ipv4(10, 0, 0, 2), 80);
    conn->set_on_close([&] { client_closed = true; });
    conn->send(MsgBuffer::from_bytes(pattern(10)));
    conn->close();
  };
  auto driver = driver_fn();
  std::move(driver).detach();
  loop_.run();

  EXPECT_TRUE(server_closed);
  EXPECT_TRUE(client_closed);
}

TEST_F(TwoHostTest, TcpConnectToClosedPortNeverEstablishes) {
  bool established = false;
  auto driver_fn = [&]() -> Task<void> {
    auto conn = co_await a_.stack.tcp_connect(make_ipv4(10, 0, 0, 1),
                                              make_ipv4(10, 0, 0, 2), 4444);
    (void)conn;
    established = true;
  };
  auto driver = driver_fn();
  std::move(driver).detach();
  loop_.run_until(10 * sim::kSecond);
  EXPECT_FALSE(established);
}

TEST_F(TwoHostTest, PerFrameCpuCostIsCharged) {
  auto pat = pattern(32 * 1024);
  b_.stack.udp_bind(2049, [&](Ipv4Addr, std::uint16_t, Ipv4Addr, std::uint16_t,
                              MsgBuffer) {});
  a_.stack.udp_send(make_ipv4(10, 0, 0, 1), 700, make_ipv4(10, 0, 0, 2), 2049,
                    MsgBuffer::from_bytes(pat));
  loop_.run();
  // 23 fragments * 6us tx on A.
  EXPECT_GE(a_.cpu.busy_ns(), 22 * costs_.packet_tx_ns);
  EXPECT_GE(b_.cpu.busy_ns(), 22 * costs_.packet_rx_ns);
}

TEST_F(TwoHostTest, ThroughputBoundedByLineRate) {
  // Blast 20 MB of UDP; goodput cannot exceed ~117 MB/s on GbE. Measure at
  // the last delivery: rx-queue overflow drops leave incomplete datagrams
  // behind, and run() now extends past their reassembly-expiry sweep.
  std::size_t got = 0;
  sim::Time last = 0;
  b_.stack.udp_bind(2049, [&](Ipv4Addr, std::uint16_t, Ipv4Addr, std::uint16_t,
                              MsgBuffer m) {
    got += m.size();
    last = loop_.now();
  });
  const std::size_t kChunk = 32 * 1024;
  auto pat = pattern(kChunk);
  for (int i = 0; i < 640; ++i) {
    a_.stack.udp_send(make_ipv4(10, 0, 0, 1), 700, make_ipv4(10, 0, 0, 2),
                      2049, MsgBuffer::from_bytes(pat));
  }
  loop_.run();
  double secs = double(last) / 1e9;
  double mbps = double(got) / 1e6 / secs;
  EXPECT_LT(mbps, 125.0);
  EXPECT_GT(mbps, 80.0);
}

}  // namespace
}  // namespace ncache::proto
