// Tests for SimpleFS: on-disk codecs, the buffer cache (LRU, writeback,
// read-ahead coalescing, capacity budget), file operations end-to-end over
// a local block client, image-builder/mount interop, and large-file
// (indirect/double-indirect) mapping.
#include <gtest/gtest.h>

#include <cstring>

#include "fs/buffer_cache.h"
#include "fs/image_builder.h"
#include "fs/simple_fs.h"

namespace ncache::fs {
namespace {

using netbuf::MsgBuffer;

TEST(Layout, SuperBlockRoundTrip) {
  SuperBlock sb = SuperBlock::make(100'000, 4096);
  std::vector<std::byte> buf;
  ByteWriter w(buf);
  sb.serialize(w);
  ByteReader r(buf);
  EXPECT_EQ(SuperBlock::parse(r), sb);
}

TEST(Layout, SuperBlockLayoutIsConsistent) {
  SuperBlock sb = SuperBlock::make(1 << 20, 65536);
  EXPECT_EQ(sb.inode_bitmap_start, 1u);
  EXPECT_LE(sb.inode_bitmap_start + sb.inode_bitmap_blocks,
            sb.block_bitmap_start);
  EXPECT_LE(sb.block_bitmap_start + sb.block_bitmap_blocks,
            sb.inode_table_start);
  EXPECT_LE(sb.inode_table_start + sb.inode_table_blocks, sb.data_start);
  EXPECT_LT(sb.data_start, sb.total_blocks);
  // Enough bitmap bits for every block.
  EXPECT_GE(std::uint64_t(sb.block_bitmap_blocks) * kBlockSize * 8,
            sb.total_blocks);
}

TEST(Layout, SuperBlockRejectsTinyVolume) {
  EXPECT_THROW(SuperBlock::make(4, 1024), std::invalid_argument);
}

TEST(Layout, BadMagicRejected) {
  std::vector<std::byte> buf(64);
  ByteReader r(buf);
  EXPECT_THROW(SuperBlock::parse(r), std::runtime_error);
}

TEST(Layout, DiskInodeRoundTripExactSize) {
  DiskInode in;
  in.type = InodeType::File;
  in.nlink = 3;
  in.size = 0x123456789aULL;
  in.block_count = 77;
  for (std::size_t i = 0; i < kDirectBlocks; ++i) {
    in.direct[i] = std::uint32_t(100 + i);
  }
  in.indirect = 500;
  in.double_indirect = 501;

  std::vector<std::byte> buf;
  ByteWriter w(buf);
  in.serialize(w);
  EXPECT_EQ(buf.size(), kInodeSize);
  ByteReader r(buf);
  EXPECT_EQ(DiskInode::parse(r), in);
}

TEST(Layout, DirentRoundTripAndLimits) {
  Dirent d{42, InodeType::File, "hello.txt"};
  std::vector<std::byte> buf;
  ByteWriter w(buf);
  d.serialize(w);
  EXPECT_EQ(buf.size(), kDirentSize);
  ByteReader r(buf);
  Dirent q = Dirent::parse(r);
  EXPECT_EQ(q.ino, 42u);
  EXPECT_EQ(q.name, "hello.txt");

  Dirent too_long{1, InodeType::File, std::string(kMaxNameLen + 1, 'x')};
  std::vector<std::byte> buf2;
  ByteWriter w2(buf2);
  EXPECT_THROW(too_long.serialize(w2), std::invalid_argument);
}

TEST(Layout, BitmapOps) {
  std::vector<std::byte> bits(16);
  EXPECT_FALSE(bitmap_test(bits, 9));
  bitmap_set(bits, 9, true);
  EXPECT_TRUE(bitmap_test(bits, 9));
  bitmap_set(bits, 9, false);
  EXPECT_FALSE(bitmap_test(bits, 9));

  for (int i = 0; i < 5; ++i) bitmap_set(bits, i, true);
  auto found = bitmap_find_clear(bits, 0, 128);
  EXPECT_TRUE(found);
  EXPECT_EQ(*found, 5u);
  // Rotor wrap-around.
  auto wrapped = bitmap_find_clear(bits, 100, 101);
  EXPECT_TRUE(wrapped);
  EXPECT_EQ(*wrapped, 100u);
}

TEST(Layout, LocateInode) {
  SuperBlock sb = SuperBlock::make(10'000, 1024);
  auto loc0 = locate_inode(sb, 1);
  EXPECT_EQ(loc0.block, sb.inode_table_start);
  EXPECT_EQ(loc0.offset, kInodeSize);
  auto loc33 = locate_inode(sb, 33);
  EXPECT_EQ(loc33.block, sb.inode_table_start + 1);
  EXPECT_EQ(loc33.offset, kInodeSize);
  EXPECT_THROW(locate_inode(sb, 0), std::out_of_range);
  EXPECT_THROW(locate_inode(sb, 1024), std::out_of_range);
}

TEST(Content, DeterministicAndVerifiable) {
  std::vector<std::byte> buf(1000);
  fill_content(7, 123, buf);
  EXPECT_EQ(verify_content(7, 123, buf), std::size_t(-1));
  buf[500] ^= std::byte{1};
  EXPECT_EQ(verify_content(7, 123, buf), 500u);
  // Different inode -> different content.
  std::vector<std::byte> other(1000);
  fill_content(8, 123, other);
  EXPECT_NE(buf, other);
}

// ---------------------------------------------------------------------------
// Fixture: SimpleFS over a local block client
// ---------------------------------------------------------------------------

class FsTest : public ::testing::Test {
 protected:
  FsTest()
      : cpu_(loop_, "cpu"),
        copier_(cpu_, costs_),
        store_(loop_, costs_, "disk", 16384),  // 64 MB volume
        client_(store_, copier_),
        fs_(loop_, client_, /*cache_blocks=*/256) {}

  void mkfs_mount() {
    auto t_fn = [&]() -> Task<void> {
      co_await fs_.mkfs(16384, 1024);
      co_await fs_.mount();
    };
    sim::sync_wait(loop_, t_fn());
  }

  template <typename F>
  void run(F&& body) {
    auto t_fn = [&]() -> Task<void> { co_await body(); };
    sim::sync_wait(loop_, t_fn());
  }

  sim::EventLoop loop_;
  sim::CostModel costs_{};
  sim::CpuModel cpu_;
  netbuf::CopyEngine copier_;
  blockdev::BlockStore store_;
  iscsi::LocalBlockClient client_;
  SimpleFs fs_;
};

TEST_F(FsTest, MkfsMountRoundTrip) {
  mkfs_mount();
  EXPECT_TRUE(fs_.mounted());
  EXPECT_EQ(fs_.superblock().total_blocks, 16384u);
  run([&]() -> Task<void> {
    FileAttr root = co_await fs_.getattr(kRootIno);
    EXPECT_EQ(root.type, InodeType::Directory);
  });
}

TEST_F(FsTest, CreateLookupGetattr) {
  mkfs_mount();
  run([&]() -> Task<void> {
    std::uint32_t ino = co_await fs_.create(kRootIno, "a.dat", InodeType::File);
    EXPECT_NE(ino, 0u);
    auto found = co_await fs_.lookup(kRootIno, "a.dat");
    EXPECT_TRUE(found);
    if (!found) co_return;
    EXPECT_EQ(*found, ino);
    EXPECT_FALSE(co_await fs_.lookup(kRootIno, "missing"));
    FileAttr attr = co_await fs_.getattr(ino);
    EXPECT_EQ(attr.type, InodeType::File);
    EXPECT_EQ(attr.size, 0u);
  });
}

TEST_F(FsTest, CreateDuplicateFails) {
  mkfs_mount();
  run([&]() -> Task<void> {
    EXPECT_NE(co_await fs_.create(kRootIno, "x", InodeType::File), 0u);
    EXPECT_EQ(co_await fs_.create(kRootIno, "x", InodeType::File), 0u);
  });
}

TEST_F(FsTest, WriteReadBackSmall) {
  mkfs_mount();
  run([&]() -> Task<void> {
    std::uint32_t ino = co_await fs_.create(kRootIno, "f", InodeType::File);
    std::vector<std::byte> data(1000);
    fill_content(99, 0, data);
    std::uint32_t n =
        co_await fs_.write(ino, 0, MsgBuffer::from_bytes(data));
    EXPECT_EQ(n, 1000u);
    FileAttr attr = co_await fs_.getattr(ino);
    EXPECT_EQ(attr.size, 1000u);
    MsgBuffer got = co_await fs_.read(ino, 0, 2000);  // clamped at EOF
    EXPECT_EQ(got.size(), 1000u);
    EXPECT_EQ(got.to_bytes(), data);
  });
}

TEST_F(FsTest, WriteAcrossBlockBoundaries) {
  mkfs_mount();
  run([&]() -> Task<void> {
    std::uint32_t ino = co_await fs_.create(kRootIno, "f", InodeType::File);
    std::vector<std::byte> data(3 * kBlockSize + 500);
    fill_content(5, 0, data);
    EXPECT_EQ(co_await fs_.write(ino, 0, MsgBuffer::from_bytes(data)),
              data.size());
    // Overwrite a range straddling blocks 1-2.
    std::vector<std::byte> patch(kBlockSize);
    fill_content(77, 0, patch);
    EXPECT_EQ(co_await fs_.write(ino, kBlockSize + 100,
                                 MsgBuffer::from_bytes(patch)),
              patch.size());
    std::memcpy(data.data() + kBlockSize + 100, patch.data(), patch.size());
    MsgBuffer got = co_await fs_.read(ino, 0, std::uint32_t(data.size()));
    EXPECT_EQ(got.to_bytes(), data);
  });
}

TEST_F(FsTest, SparseWriteReadsHoleAsFiller) {
  mkfs_mount();
  run([&]() -> Task<void> {
    std::uint32_t ino = co_await fs_.create(kRootIno, "s", InodeType::File);
    std::vector<std::byte> tail(100);
    fill_content(3, 0, tail);
    // Write at 3 blocks in; blocks 0-2 become holes.
    co_await fs_.write(ino, 3 * kBlockSize, MsgBuffer::from_bytes(tail));
    FileAttr attr = co_await fs_.getattr(ino);
    EXPECT_EQ(attr.size, 3 * kBlockSize + 100);
    MsgBuffer got = co_await fs_.read(ino, 0, std::uint32_t(attr.size));
    EXPECT_EQ(got.size(), attr.size);
    // The hole region is junk/filler; the tail bytes must be exact.
    MsgBuffer tail_got = co_await fs_.read(ino, 3 * kBlockSize, 100);
    EXPECT_EQ(tail_got.to_bytes(), tail);
  });
}

TEST_F(FsTest, LargeFileThroughIndirects) {
  mkfs_mount();
  run([&]() -> Task<void> {
    std::uint32_t ino = co_await fs_.create(kRootIno, "big", InodeType::File);
    // 13 MB: direct (48 KB) + indirect (4 MB) + into double-indirect.
    const std::uint64_t size = 13ull * 1024 * 1024;
    std::vector<std::byte> chunk(64 * 1024);
    for (std::uint64_t off = 0; off < size; off += chunk.size()) {
      fill_content(ino, off, chunk);
      EXPECT_EQ(co_await fs_.write(ino, off, MsgBuffer::from_bytes(chunk)),
                chunk.size());
    }
    FileAttr attr = co_await fs_.getattr(ino);
    EXPECT_EQ(attr.size, size);

    // Spot-check reads at each mapping tier.
    for (std::uint64_t off : {0ull, 40ull * 1024, 1000ull * 1024,
                              5000ull * 1024, 12ull * 1024 * 1024}) {
      MsgBuffer got = co_await fs_.read(ino, off, 8192);
      auto bytes = got.to_bytes();
      EXPECT_EQ(verify_content(ino, off, bytes), std::size_t(-1))
          << "mismatch at offset " << off;
    }
  });
}

TEST_F(FsTest, RemoveFreesAndForgets) {
  mkfs_mount();
  run([&]() -> Task<void> {
    std::uint32_t ino = co_await fs_.create(kRootIno, "gone", InodeType::File);
    std::vector<std::byte> data(2 * kBlockSize);
    co_await fs_.write(ino, 0, MsgBuffer::from_bytes(data));
    EXPECT_TRUE(co_await fs_.remove(kRootIno, "gone"));
    EXPECT_FALSE(co_await fs_.lookup(kRootIno, "gone"));
    EXPECT_FALSE(co_await fs_.remove(kRootIno, "gone"));
    // Freed space is reusable: create a new file of the same size.
    std::uint32_t again = co_await fs_.create(kRootIno, "new", InodeType::File);
    EXPECT_EQ(co_await fs_.write(again, 0, MsgBuffer::from_bytes(data)),
              data.size());
  });
}

TEST_F(FsTest, ReaddirListsEntries) {
  mkfs_mount();
  run([&]() -> Task<void> {
    for (int i = 0; i < 100; ++i) {
      EXPECT_NE(co_await fs_.create(kRootIno, "file" + std::to_string(i),
                                    InodeType::File),
                0u);
    }
    auto entries = co_await fs_.readdir(kRootIno);
    EXPECT_EQ(entries.size(), 100u);
  });
}

TEST_F(FsTest, TruncateShrinkAndRegrow) {
  mkfs_mount();
  run([&]() -> Task<void> {
    std::uint32_t ino = co_await fs_.create(kRootIno, "t", InodeType::File);
    std::vector<std::byte> data(4 * kBlockSize);
    fill_content(ino, 0, data);
    co_await fs_.write(ino, 0, MsgBuffer::from_bytes(data));
    EXPECT_TRUE(co_await fs_.truncate(ino, kBlockSize));
    FileAttr attr = co_await fs_.getattr(ino);
    EXPECT_EQ(attr.size, kBlockSize);
    // Regrow: new blocks must be freshly allocated, old bytes intact.
    std::vector<std::byte> more(kBlockSize);
    fill_content(ino, kBlockSize, more);
    co_await fs_.write(ino, kBlockSize, MsgBuffer::from_bytes(more));
    MsgBuffer got = co_await fs_.read(ino, 0, 2 * kBlockSize);
    EXPECT_EQ(verify_content(ino, 0, got.to_bytes()), std::size_t(-1));
  });
}

TEST_F(FsTest, SyncPersistsThroughRemount) {
  mkfs_mount();
  std::uint32_t ino = 0;
  run([&]() -> Task<void> {
    ino = co_await fs_.create(kRootIno, "p", InodeType::File);
    std::vector<std::byte> data(kBlockSize * 2);
    fill_content(ino, 0, data);
    co_await fs_.write(ino, 0, MsgBuffer::from_bytes(data));
    co_await fs_.sync();
  });

  // A second fs instance over the same store must see everything.
  SimpleFs fs2(loop_, client_, 64);
  run([&]() -> Task<void> {
    co_await fs2.mount();
    auto found = co_await fs2.lookup(kRootIno, "p");
    EXPECT_TRUE(found);
    if (!found) co_return;
    EXPECT_EQ(*found, ino);
    MsgBuffer got = co_await fs2.read(*found, 0, 2 * kBlockSize);
    EXPECT_EQ(verify_content(ino, 0, got.to_bytes()), std::size_t(-1));
  });
}

TEST_F(FsTest, ImageBuilderMountsAndVerifies) {
  FsImageBuilder builder(store_, 16384, 1024);
  std::uint32_t f1 = builder.add_file("data1.bin", 100'000);
  std::uint32_t f2 = builder.add_file("data2.bin", 5'000'000);  // indirect
  std::uint32_t sub = builder.add_dir("subdir");
  std::uint32_t f3 = builder.add_file("nested.bin", 5'000, sub);
  EXPECT_NE(f1, 0u);
  EXPECT_NE(f2, 0u);
  EXPECT_NE(f3, 0u);
  builder.finish();

  run([&]() -> Task<void> {
    co_await fs_.mount();
    auto i1 = co_await fs_.lookup(kRootIno, "data1.bin");
    EXPECT_TRUE(i1);
    if (!i1) co_return;
    FileAttr a1 = co_await fs_.getattr(*i1);
    EXPECT_EQ(a1.size, 100'000u);
    MsgBuffer got = co_await fs_.read(*i1, 12'345, 4'000);
    EXPECT_EQ(verify_content(*i1, 12'345, got.to_bytes()), std::size_t(-1));

    auto i2 = co_await fs_.lookup(kRootIno, "data2.bin");
    EXPECT_TRUE(i2);
    if (!i2) co_return;
    MsgBuffer deep = co_await fs_.read(*i2, 4'900'000, 8'192);
    EXPECT_EQ(verify_content(*i2, 4'900'000, deep.to_bytes()), std::size_t(-1));

    auto isub = co_await fs_.lookup(kRootIno, "subdir");
    EXPECT_TRUE(isub);
    if (!isub) co_return;
    auto i3 = co_await fs_.lookup(*isub, "nested.bin");
    EXPECT_TRUE(i3);
    if (!i3) co_return;
    EXPECT_EQ(*i3, f3);
  });
}

TEST_F(FsTest, ImageBuilderManyFilesInRoot) {
  FsImageBuilder builder(store_, 16384, 4096);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_NE(builder.add_file("f" + std::to_string(i), 128), 0u);
  }
  builder.finish();
  run([&]() -> Task<void> {
    co_await fs_.mount();
    auto entries = co_await fs_.readdir(kRootIno);
    EXPECT_EQ(entries.size(), 2000u);
    auto found = co_await fs_.lookup(kRootIno, "f1999");
    EXPECT_TRUE(found);
  });
}

// ---------------------------------------------------------------------------
// Buffer cache behaviour
// ---------------------------------------------------------------------------

TEST_F(FsTest, CacheHitsAfterFirstRead) {
  mkfs_mount();
  run([&]() -> Task<void> {
    std::uint32_t ino = co_await fs_.create(kRootIno, "h", InodeType::File);
    std::vector<std::byte> data(8 * kBlockSize);
    co_await fs_.write(ino, 0, MsgBuffer::from_bytes(data));
    co_await fs_.sync();
    fs_.cache().reset_stats();
    (void)co_await fs_.read(ino, 0, 8 * kBlockSize);
    auto first_misses = fs_.cache().stats().misses;
    (void)co_await fs_.read(ino, 0, 8 * kBlockSize);
    EXPECT_EQ(fs_.cache().stats().misses, first_misses);
    EXPECT_GE(fs_.cache().stats().hits, 8u);
  });
}

TEST_F(FsTest, CacheCapacityTriggersEvictionAndWriteback) {
  mkfs_mount();
  fs_.cache().set_capacity(32);
  run([&]() -> Task<void> {
    std::uint32_t ino = co_await fs_.create(kRootIno, "e", InodeType::File);
    // Write 128 dirty blocks through a 32-block cache: evictions must
    // flush dirty data, and reading everything back must still verify.
    std::vector<std::byte> chunk(kBlockSize);
    for (std::uint64_t fb = 0; fb < 128; ++fb) {
      fill_content(ino, fb * kBlockSize, chunk);
      co_await fs_.write(ino, fb * kBlockSize, MsgBuffer::from_bytes(chunk));
    }
    EXPECT_GT(fs_.cache().stats().writebacks, 0u);
    EXPECT_GT(fs_.cache().stats().evictions, 0u);
    EXPECT_LE(fs_.cache().size(), 40u);  // small transient overflow allowed

    for (std::uint64_t fb : {0ull, 64ull, 127ull}) {
      MsgBuffer got = co_await fs_.read(ino, fb * kBlockSize, kBlockSize);
      EXPECT_EQ(verify_content(ino, fb * kBlockSize, got.to_bytes()),
                std::size_t(-1));
    }
  });
}

TEST_F(FsTest, ReadCoalescesContiguousBlocks) {
  FsImageBuilder builder(store_, 16384, 256);
  std::uint32_t ino = builder.add_file("c.bin", 64 * kBlockSize);
  builder.finish();
  run([&]() -> Task<void> {
    co_await fs_.mount();
    (void)co_await fs_.getattr(ino);  // warm the inode-table block
    fs_.cache().reset_stats();
    std::uint64_t reads_before = store_.reads();
    // 8 contiguous blocks -> one block-client command.
    (void)co_await fs_.read(ino, 0, 8 * kBlockSize);
    EXPECT_EQ(store_.reads() - reads_before, 1u);
    EXPECT_EQ(fs_.cache().stats().misses, 8u);
  });
}

TEST_F(FsTest, ReadaheadPrefetchesBeyondRequest) {
  FsImageBuilder builder(store_, 16384, 256);
  std::uint32_t ino = builder.add_file("ra.bin", 64 * kBlockSize);
  builder.finish();
  fs_.cache().set_readahead(4);
  run([&]() -> Task<void> {
    co_await fs_.mount();
    fs_.cache().reset_stats();
    (void)co_await fs_.read(ino, 0, 4 * kBlockSize);
    EXPECT_GE(fs_.cache().stats().readahead_blocks, 4u);
    // The next sequential read is served entirely from the cache: its
    // blocks were prefetched, so no new *required* misses appear (the
    // extension itself prefetches further, counting as read-ahead only).
    auto misses = fs_.cache().stats().misses;
    (void)co_await fs_.read(ino, 4 * kBlockSize, 4 * kBlockSize);
    EXPECT_EQ(fs_.cache().stats().misses, misses);
    EXPECT_GE(fs_.cache().stats().readahead_blocks, 8u);
  });
}

// Free coroutine (not a capturing lambda) so the frame owns its arguments
// and nothing dangles once the for-loop iteration ends.
Task<void> read_and_verify(SimpleFs& fs, std::uint32_t ino, int* done) {
  MsgBuffer got = co_await fs.read(ino, 0, 8 * kBlockSize);
  EXPECT_EQ(verify_content(ino, 0, got.to_bytes()), std::size_t(-1));
  ++*done;
}

TEST_F(FsTest, ConcurrentReadersDedupFetches) {
  FsImageBuilder builder(store_, 16384, 256);
  std::uint32_t ino = builder.add_file("d.bin", 16 * kBlockSize);
  builder.finish();
  run([&]() -> Task<void> {
    co_await fs_.mount();
    (void)co_await fs_.getattr(ino);  // warm the inode-table block
  });

  std::uint64_t reads_before = store_.reads();
  int done = 0;
  for (int r = 0; r < 4; ++r) {
    read_and_verify(fs_, ino, &done).detach();
  }
  loop_.run();
  EXPECT_EQ(done, 4);
  // All four readers share one fetch of the 8 blocks.
  EXPECT_EQ(store_.reads() - reads_before, 1u);
}

}  // namespace
}  // namespace ncache::fs
