// Extended-socket facade (src/sock) equivalence tests: the NFS server
// and kHTTPd now move every payload through sock::UdpSocket /
// sock::TcpSocket::send_data(), so all three PassModes must keep
// delivering exactly what the old direct CopyEngine/raw-send paths did —
// byte-identical payloads in Original and NCache, length-correct junk in
// Baseline — while the per-mode copy accounting still matches Table 2.
#include <gtest/gtest.h>

#include <vector>

#include "fs/image_builder.h"
#include "http/client.h"
#include "http/khttpd.h"
#include "nfs/client.h"
#include "testbed/testbed.h"

namespace ncache {
namespace {

using core::PassMode;
using testbed::Testbed;
using testbed::TestbedConfig;

constexpr std::uint64_t kFileSize = 1 << 20;
constexpr std::uint32_t kReq = 32768;

// ---- NFS over sock::UdpSocket ----------------------------------------------

struct NfsEnd {
  explicit NfsEnd(PassMode mode) {
    TestbedConfig cfg;
    cfg.mode = mode;
    cfg.volume_blocks = 16 * 1024;
    tb = std::make_unique<Testbed>(cfg);
    ino = tb->image().add_file("data.bin", kFileSize);
    tb->start_nfs();
  }

  // Reads [off, off+len) and returns (payload bytes, junk flag).
  std::pair<std::vector<std::byte>, bool> read(std::uint64_t off,
                                               std::uint32_t len) {
    std::vector<std::byte> bytes;
    bool junk = false;
    auto t_fn = [&]() -> Task<void> {
      auto r = co_await tb->nfs_client(0).read(ino, off, len);
      EXPECT_EQ(r.status, nfs::Status::Ok);
      bytes = r.data.to_bytes();
      junk = r.junk;
    };
    sim::sync_wait(tb->loop(), t_fn());
    return {std::move(bytes), junk};
  }

  std::unique_ptr<Testbed> tb;
  std::uint32_t ino = 0;
};

TEST(SockFacadeNfs, AllThreeModesDeliverEquivalentPayloads) {
  NfsEnd original(PassMode::Original);
  NfsEnd ncache(PassMode::NCache);
  NfsEnd baseline(PassMode::Baseline);

  for (std::uint64_t off : {std::uint64_t(0), std::uint64_t(kReq),
                            std::uint64_t(kFileSize - kReq)}) {
    auto [o, o_junk] = original.read(off, kReq);
    auto [n, n_junk] = ncache.read(off, kReq);
    auto [b, b_junk] = baseline.read(off, kReq);

    ASSERT_EQ(o.size(), kReq);
    EXPECT_FALSE(o_junk);
    EXPECT_FALSE(n_junk);
    // send_copied (Original) and send_chain (NCache) must hand the client
    // the same bytes, and those bytes must be the file's real content.
    EXPECT_EQ(o, n) << "payload diverges at offset " << off;
    EXPECT_EQ(fs::verify_content(original.ino, off, o), std::size_t(-1));
    EXPECT_EQ(fs::verify_content(ncache.ino, off, n), std::size_t(-1));
    // send_junk elides content but must preserve the payload length.
    EXPECT_TRUE(b_junk);
    EXPECT_EQ(b.size(), kReq);
  }
}

TEST(SockFacadeNfs, SendDataDispatchesPerModeCopySemantics) {
  // Warm a block first so the measured read is a pure cache hit, then
  // check the Table 2 NFS-read-hit accounting through the facade:
  // Original = 2 physical copies (read + sendmsg crossings), NCache = 0
  // physical with logical copies instead, Baseline = 0 of either.
  struct Case {
    PassMode mode;
    std::uint64_t data_copies;
    bool expect_logical;
  };
  for (const Case& c : {Case{PassMode::Original, 2, false},
                        Case{PassMode::NCache, 0, true},
                        Case{PassMode::Baseline, 0, false}}) {
    NfsEnd e(c.mode);
    (void)e.read(0, kReq);  // warm
    e.tb->reset_stats();
    sim::Time start = e.tb->loop().now();
    (void)e.read(0, kReq);
    auto snap = e.tb->snapshot(start);
    EXPECT_EQ(snap.server_data_copies, c.data_copies)
        << core::to_string(c.mode);
    if (c.expect_logical) {
      EXPECT_GT(snap.server_logical_copies, 0u) << core::to_string(c.mode);
    } else {
      EXPECT_EQ(snap.server_logical_copies, 0u) << core::to_string(c.mode);
    }
  }
}

// ---- kHTTPd over sock::TcpSocket -------------------------------------------

struct WebEnd {
  explicit WebEnd(PassMode mode) {
    TestbedConfig cfg;
    cfg.mode = mode;
    cfg.volume_blocks = 16 * 1024;
    tb = std::make_unique<Testbed>(cfg);
    ino = tb->image().add_file("page.bin", kFileSize);
    tb->start_base();

    http::KHttpd::Config hc;
    hc.mode = mode;
    server = std::make_unique<http::KHttpd>(tb->server_node().stack, tb->fs(),
                                            hc, tb->ncache());
    server->start();
    client = std::make_unique<http::HttpClient>(
        tb->client_node(0).stack, tb->client_ip(0), tb->server_ip(0));
  }

  // GETs the page and returns (body bytes, junk flag, content length).
  std::tuple<std::vector<std::byte>, bool, std::uint64_t> get() {
    std::vector<std::byte> bytes;
    bool junk = false;
    std::uint64_t content_length = 0;
    auto t_fn = [&]() -> Task<void> {
      EXPECT_TRUE(co_await client->connect());
      auto r = co_await client->get("/page.bin");
      EXPECT_EQ(r.status, 200);
      bytes = r.body.to_bytes();
      junk = r.junk;
      content_length = r.content_length;
    };
    sim::sync_wait(tb->loop(), t_fn());
    return {std::move(bytes), junk, content_length};
  }

  std::unique_ptr<Testbed> tb;
  std::unique_ptr<http::KHttpd> server;
  std::unique_ptr<http::HttpClient> client;
  std::uint32_t ino = 0;
};

TEST(SockFacadeHttp, AllThreeModesDeliverEquivalentBodies) {
  WebEnd original(PassMode::Original);
  WebEnd ncache(PassMode::NCache);
  WebEnd baseline(PassMode::Baseline);

  auto [o, o_junk, o_len] = original.get();
  auto [n, n_junk, n_len] = ncache.get();
  auto [b, b_junk, b_len] = baseline.get();

  EXPECT_EQ(o_len, kFileSize);
  EXPECT_EQ(n_len, kFileSize);
  EXPECT_EQ(b_len, kFileSize);

  EXPECT_FALSE(o_junk);
  EXPECT_FALSE(n_junk);
  ASSERT_EQ(o.size(), kFileSize);
  EXPECT_EQ(o, n);
  EXPECT_EQ(fs::verify_content(original.ino, 0, o), std::size_t(-1));
  EXPECT_EQ(fs::verify_content(ncache.ino, 0, n), std::size_t(-1));

  EXPECT_TRUE(b_junk);
  EXPECT_EQ(b.size(), kFileSize);
}

}  // namespace
}  // namespace ncache
