// Topology description layer.
//
//  * parse -> describe round trip is the identity on every preset (and on
//    graphs with link profiles, attributes, comments and unit suffixes).
//  * validate() rejects malformed graphs: dangling edges, duplicate node
//    ids, zero-bandwidth links, host-to-host links, trunk cycles,
//    disconnected fabrics, bad role counts.
//  * The builder's refinement calls (bandwidth/latency/loss/attr) target
//    the most recent edge/node and throw when there is none.
#include <gtest/gtest.h>

#include "topo/presets.h"
#include "topo/topology.h"

namespace ncache::topo {
namespace {

// ---------------------------------------------------------------------------
// Round trips
// ---------------------------------------------------------------------------

void expect_round_trip(const Topology& topo) {
  std::string text = topo.describe();
  Topology parsed = Topology::parse(text);
  EXPECT_EQ(parsed.name, topo.name);
  EXPECT_EQ(parsed.nodes, topo.nodes);
  EXPECT_EQ(parsed.edges, topo.edges);
  EXPECT_EQ(parsed.describe(), text) << "describe() is not a fixed point";
  parsed.validate();  // presets must stay instantiable through the text form
}

TEST(TopologyRoundTrip, Presets) {
  expect_round_trip(presets::single_server(1, 2));
  expect_round_trip(presets::single_server(2, 4));
  expect_round_trip(presets::cluster(1, 1));
  expect_round_trip(presets::cluster(4, 8));
  expect_round_trip(presets::two_racks_wan(2));
  expect_round_trip(presets::two_racks_wan(3, 200'000'000,
                                           5 * sim::kMillisecond, 0.001));
}

TEST(TopologyRoundTrip, AttrsAndProfilesSurvive) {
  Topology t = TopologyBuilder("attrs")
                   .ether_switch("sw")
                   .target("storage0")
                   .server("server0")
                   .attr("rack", "b")
                   .attr("zone", "1")
                   .link("storage0", "sw")
                   .link("server0", "sw")
                   .bandwidth(250'000'000)
                   .latency(1'500)
                   .loss(0.0625)
                   .build();
  expect_round_trip(t);
  const NodeSpec* server = t.find("server0");
  ASSERT_NE(server, nullptr);
  EXPECT_EQ(server->attrs.at("rack"), "b");
  EXPECT_EQ(server->attrs.at("zone"), "1");
}

TEST(TopologyParse, UnitSuffixes) {
  Topology t = Topology::parse(
      "topology units\n"
      "node sw switch\n"
      "node storage0 target\n"
      "node server0 server\n"
      "# comment line\n"
      "link storage0 sw bandwidth=1Gbps latency=10us\n"
      "link server0 sw bandwidth=200Mbps latency=5ms loss=0.001  # trailing\n");
  t.validate();
  ASSERT_EQ(t.edges.size(), 2u);
  EXPECT_EQ(t.edges[0].link.bandwidth_bps, 1'000'000'000u);
  EXPECT_EQ(t.edges[0].link.latency_ns, 10'000);
  EXPECT_EQ(t.edges[1].link.bandwidth_bps, 200'000'000u);
  EXPECT_EQ(t.edges[1].link.latency_ns, 5'000'000);
  EXPECT_DOUBLE_EQ(t.edges[1].link.loss, 0.001);
}

TEST(TopologyParse, RawNumbersAndBpsSuffix) {
  Topology t = Topology::parse(
      "topology raw\n"
      "node sw switch\n"
      "node storage0 target\n"
      "node server0 server\n"
      "link storage0 sw bandwidth=123456789bps latency=777\n"
      "link server0 sw bandwidth=54Kbps latency=2s\n");
  EXPECT_EQ(t.edges[0].link.bandwidth_bps, 123'456'789u);
  EXPECT_EQ(t.edges[0].link.latency_ns, 777);
  EXPECT_EQ(t.edges[1].link.bandwidth_bps, 54'000u);
  EXPECT_EQ(t.edges[1].link.latency_ns, 2'000'000'000);
}

// ---------------------------------------------------------------------------
// Structural validation
// ---------------------------------------------------------------------------

TopologyBuilder minimal() {
  TopologyBuilder b("minimal");
  b.ether_switch("sw").target("storage0").server("server0");
  b.link("storage0", "sw").link("server0", "sw");
  return b;
}

TEST(TopologyValidate, MinimalGraphPasses) {
  EXPECT_NO_THROW(minimal().build());
}

TEST(TopologyValidate, DanglingEdge) {
  auto b = minimal();
  b.link("ghost", "sw");
  EXPECT_THROW(b.build(), TopologyError);
}

TEST(TopologyValidate, DuplicateNodeId) {
  auto b = minimal();
  b.client("server0").link("server0", "sw");
  EXPECT_THROW(b.build(), TopologyError);
}

TEST(TopologyValidate, ZeroBandwidthLink) {
  auto b = minimal();
  b.client("c0").link("c0", "sw").bandwidth(0);
  EXPECT_THROW(b.build(), TopologyError);
}

TEST(TopologyValidate, HostToHostLink) {
  auto b = minimal();
  b.client("c0").link("c0", "server0");
  EXPECT_THROW(b.build(), TopologyError);
}

TEST(TopologyValidate, SelfAndDuplicateLinks) {
  auto a = minimal();
  a.link("sw", "sw");
  EXPECT_THROW(a.build(), TopologyError);

  // A second server-switch cable is just a 2-NIC server — legal.
  auto b = minimal();
  b.link("server0", "sw");
  EXPECT_NO_THROW(b.build());

  // A parallel trunk is not.
  TopologyBuilder c("t");
  c.ether_switch("s1").ether_switch("s2");
  c.target("storage0").server("server0");
  c.link("storage0", "s1").link("server0", "s2");
  c.link("s1", "s2").link("s2", "s1");
  EXPECT_THROW(c.build(), TopologyError);
}

TEST(TopologyValidate, TrunkCycle) {
  TopologyBuilder b("cycle");
  b.ether_switch("s1").ether_switch("s2").ether_switch("s3");
  b.target("storage0").server("server0");
  b.link("storage0", "s1").link("server0", "s2");
  b.link("s1", "s2").link("s2", "s3").link("s3", "s1");
  EXPECT_THROW(b.build(), TopologyError);
}

TEST(TopologyValidate, DisconnectedFabric) {
  TopologyBuilder b("split");
  b.ether_switch("s1").ether_switch("s2");
  b.target("storage0").server("server0");
  b.link("storage0", "s1").link("server0", "s2");
  EXPECT_THROW(b.build(), TopologyError);
}

TEST(TopologyValidate, RoleCounts) {
  // No target.
  TopologyBuilder no_target("t");
  no_target.ether_switch("sw").server("server0").link("server0", "sw");
  EXPECT_THROW(no_target.build(), TopologyError);

  // Two targets.
  auto two_targets = minimal();
  two_targets.target("storage1").link("storage1", "sw");
  EXPECT_THROW(two_targets.build(), TopologyError);

  // Two balancers.
  auto two_lbs = minimal();
  two_lbs.balancer("lb0").link("lb0", "sw");
  two_lbs.balancer("lb1").link("lb1", "sw");
  EXPECT_THROW(two_lbs.build(), TopologyError);

  // No server.
  TopologyBuilder no_server("t");
  no_server.ether_switch("sw").target("storage0").link("storage0", "sw");
  EXPECT_THROW(no_server.build(), TopologyError);

  // No switch.
  TopologyBuilder no_switch("t");
  no_switch.target("storage0").server("server0");
  no_switch.link("server0", "storage0");
  EXPECT_THROW(no_switch.build(), TopologyError);
}

TEST(TopologyValidate, OnlyServersMayBeMultiHomed) {
  // A 2-NIC server is the paper's Fig 5b shape — allowed.
  EXPECT_NO_THROW(presets::single_server(2, 1).validate());

  // A 2-NIC client is not.
  TopologyBuilder b("t");
  b.ether_switch("s1").ether_switch("s2").link("s1", "s2");
  b.target("storage0").server("server0").client("c0");
  b.link("storage0", "s1").link("server0", "s1");
  b.link("c0", "s1").link("c0", "s2");
  EXPECT_THROW(b.build(), TopologyError);
}

TEST(TopologyValidate, IsolatedHost) {
  auto b = minimal();
  b.client("loner");  // declared but never linked
  EXPECT_THROW(b.build(), TopologyError);
}

TEST(TopologyValidate, LossRange) {
  auto b = minimal();
  b.client("c0").link("c0", "sw").loss(1.0);
  EXPECT_THROW(b.build(), TopologyError);
}

// ---------------------------------------------------------------------------
// Parser error paths
// ---------------------------------------------------------------------------

TEST(TopologyParse, ErrorsCarryLineNumbers) {
  try {
    Topology::parse("topology t\nnode sw switch\nnode bad wombat\n");
    FAIL() << "expected TopologyError";
  } catch (const TopologyError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(TopologyParse, RejectsBadInput) {
  EXPECT_THROW(Topology::parse("frobnicate x y\n"), TopologyError);
  EXPECT_THROW(Topology::parse("topology a\ntopology b\n"), TopologyError);
  EXPECT_THROW(Topology::parse("node 0bad client\n"), TopologyError);
  EXPECT_THROW(Topology::parse("node sw\n"), TopologyError);
  EXPECT_THROW(Topology::parse("link a\n"), TopologyError);
  EXPECT_THROW(Topology::parse("link a b frobs=1\n"), TopologyError);
  EXPECT_THROW(Topology::parse("link a b bandwidth=fast\n"), TopologyError);
  EXPECT_THROW(Topology::parse("link a b latency=-5ms\n"), TopologyError);
  EXPECT_THROW(Topology::parse("link a b loss=1.5\n"), TopologyError);
  EXPECT_THROW(Topology::parse("node n client badattr\n"), TopologyError);
}

TEST(TopologyBuilder_, RefinementNeedsAnEdge) {
  TopologyBuilder b("t");
  EXPECT_THROW(b.bandwidth(1), TopologyError);
  EXPECT_THROW(b.latency(1), TopologyError);
  EXPECT_THROW(b.loss(0.5), TopologyError);
  EXPECT_THROW(b.attr("k", "v"), TopologyError);
}

// ---------------------------------------------------------------------------
// Query helpers
// ---------------------------------------------------------------------------

TEST(TopologyQuery, FindOfKindEdgesOf) {
  Topology t = presets::cluster(3, 2);
  EXPECT_NE(t.find("lb0"), nullptr);
  EXPECT_EQ(t.find("nope"), nullptr);
  EXPECT_EQ(t.of_kind(NodeKind::Server).size(), 3u);
  EXPECT_EQ(t.of_kind(NodeKind::Client).size(), 2u);
  EXPECT_EQ(t.of_kind(NodeKind::Balancer).size(), 1u);
  EXPECT_EQ(t.edges_of("switch0").size(), t.edges.size());
  EXPECT_EQ(t.edges_of("server1").size(), 1u);
}

TEST(TopologyQuery, TwoRackShapeIsExpressible) {
  // The previously inexpressible shape: clients on rack A, server and
  // storage on rack B, a profiled WAN trunk between the racks.
  Topology t = presets::two_racks_wan(2, 200'000'000, 5 * sim::kMillisecond,
                                      0.001);
  EXPECT_EQ(t.of_kind(NodeKind::Switch).size(), 2u);
  const EdgeSpec* trunk = nullptr;
  for (const EdgeSpec& e : t.edges) {
    if (e.a == "rack_a" && e.b == "rack_b") trunk = &e;
  }
  ASSERT_NE(trunk, nullptr);
  EXPECT_EQ(trunk->link.bandwidth_bps, 200'000'000u);
  EXPECT_EQ(trunk->link.latency_ns, 5 * sim::kMillisecond);
  EXPECT_DOUBLE_EQ(trunk->link.loss, 0.001);
}

}  // namespace
}  // namespace ncache::topo
