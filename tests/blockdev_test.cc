// Tests for the disk subsystem: spindle timing, RAID-0 striping and
// parallelism, and the sparse block store contents.
#include <gtest/gtest.h>

#include "blockdev/block_store.h"

namespace ncache::blockdev {
namespace {

std::vector<std::byte> block_pattern(std::size_t blocks, int seed) {
  std::vector<std::byte> v(blocks * kBlockSize);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = std::byte((i * 7 + seed) & 0xff);
  }
  return v;
}

TEST(Disk, SequentialSkipsSeek) {
  sim::EventLoop loop;
  sim::CostModel costs;
  DiskModel d(loop, costs, "d0");
  d.access(0, 65536, nullptr);      // head starts at 0: sequential
  d.access(65536, 65536, nullptr);  // sequential successor
  d.access(500 << 20, 65536, nullptr);  // far jump: full seek
  d.access((500 << 20) + 65536 + 4096, 65536, nullptr);  // near band: no seek
  loop.run();
  EXPECT_EQ(d.requests(), 4u);
  EXPECT_EQ(d.seeks(), 1u);
}

TEST(Disk, TimingMatchesModel) {
  sim::EventLoop loop;
  sim::CostModel costs;
  DiskModel d(loop, costs, "d0");
  sim::Time done = 0;
  d.access(0, 65536, [&] { done = loop.now(); });
  loop.run();
  // No seek (sequential from 0): command + transfer.
  sim::Duration expect =
      costs.disk_command_ns +
      sim::Duration(65536.0 * 8e9 / double(costs.disk_bandwidth_bps));
  EXPECT_EQ(done, expect);
}

TEST(Disk, QueueingSerializes) {
  sim::EventLoop loop;
  sim::CostModel costs;
  DiskModel d(loop, costs, "d0");
  sim::Time t1 = 0, t2 = 0;
  d.access(0, 65536, [&] { t1 = loop.now(); });
  d.access(65536, 65536, [&] { t2 = loop.now(); });
  loop.run();
  EXPECT_GT(t2, t1);
  EXPECT_NEAR(double(t2), 2.0 * double(t1), double(t1) * 0.01);
}

TEST(Raid0, StripesAcrossDisksInParallel) {
  sim::EventLoop loop;
  sim::CostModel costs;
  Raid0 raid(loop, costs, "r", 4, 64 * 1024);
  sim::Time raid_done = 0;
  raid.access(0, 256 * 1024, [&] { raid_done = loop.now(); });  // 4 stripes
  loop.run();

  DiskModel single(loop, costs, "s");
  sim::Time single_start = loop.now();
  sim::Time single_done = 0;
  single.access(0, 256 * 1024, [&] { single_done = loop.now(); });
  loop.run();

  // 4-way parallel must be well under the single-disk time.
  EXPECT_LT(raid_done, (single_done - single_start) / 2);
  for (unsigned i = 0; i < 4; ++i) {
    EXPECT_EQ(raid.disk(i).requests(), 1u);
  }
}

TEST(Raid0, SmallRequestHitsOneDisk) {
  sim::EventLoop loop;
  sim::CostModel costs;
  Raid0 raid(loop, costs, "r", 4, 64 * 1024);
  bool done = false;
  raid.access(64 * 1024, 4096, [&] { done = true; });  // second stripe
  loop.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(raid.disk(0).requests(), 0u);
  EXPECT_EQ(raid.disk(1).requests(), 1u);
}

TEST(BlockStore, ReadBackWhatWasWritten) {
  sim::EventLoop loop;
  sim::CostModel costs;
  BlockStore store(loop, costs, "st", 1024);
  auto data = block_pattern(3, 5);

  auto task_fn = [&]() -> Task<void> {
    co_await store.write(10, data);
    auto got = co_await store.read(10, 3);
    EXPECT_TRUE(got.ok);
    EXPECT_EQ(got.data, data);
  };
  sim::sync_wait(loop, task_fn());
  EXPECT_EQ(store.writes(), 1u);
  EXPECT_EQ(store.reads(), 1u);
}

TEST(BlockStore, UnwrittenBlocksReadZero) {
  sim::EventLoop loop;
  sim::CostModel costs;
  BlockStore store(loop, costs, "st", 64);
  auto got = store.peek(5, 1);
  EXPECT_TRUE(std::all_of(got.begin(), got.end(),
                          [](std::byte b) { return b == std::byte{0}; }));
}

TEST(BlockStore, PokePeekBypassTiming) {
  sim::EventLoop loop;
  sim::CostModel costs;
  BlockStore store(loop, costs, "st", 64);
  auto data = block_pattern(1, 9);
  store.poke(7, data);
  EXPECT_EQ(store.peek(7, 1), data);
  EXPECT_EQ(loop.now(), 0u);  // no simulated time consumed
}

TEST(BlockStore, RangeChecks) {
  sim::EventLoop loop;
  sim::CostModel costs;
  BlockStore store(loop, costs, "st", 8);
  EXPECT_THROW(store.peek(8, 1), std::out_of_range);
  EXPECT_THROW(store.peek(7, 2), std::out_of_range);
  EXPECT_THROW(store.poke(0, std::vector<std::byte>(100)),
               std::invalid_argument);
}

TEST(BlockStore, ReadTimingScalesWithSize) {
  sim::EventLoop loop;
  sim::CostModel costs;
  BlockStore store(loop, costs, "st", 4096);

  auto t_small_fn = [&]() -> Task<void> { (void)co_await store.read(0, 1); };
  sim::sync_wait(loop, t_small_fn());
  sim::Time small = loop.now();

  BlockStore store2(loop, costs, "st2", 4096);
  auto t_big_fn = [&]() -> Task<void> { (void)co_await store2.read(0, 256); };
  sim::Time before = loop.now();
  sim::sync_wait(loop, t_big_fn());
  EXPECT_GT(loop.now() - before, small / 2);
}

}  // namespace
}  // namespace ncache::blockdev
