// ParallelEngine — conservative-window parallel driver for a partitioned
// simulation.
//
// The world is split into *domains*, each owning one EventLoop (the topo
// instantiator uses one domain per switch, i.e. per rack). The engine
// advances all domains in rounds:
//
//   1. floor   = min over domains of their next pending event time.
//   2. horizon = floor + lookahead, where lookahead is the minimum
//      latency of any link crossing a domain boundary. No event executed
//      in this window can cause an effect in another domain before
//      `horizon`, so every domain may run all events strictly below it
//      without further coordination (classic YAWNS-style conservative
//      synchronization).
//   3. Each domain runs its window — on a worker thread when the engine
//      has them, inline otherwise. Cross-domain deliveries produced during
//      the window (trunk Link directions carry a remote hook that calls
//      post()) are staged in per-(src,dst) outboxes, not delivered.
//   4. Barrier: the staged deliveries are merged into their destination
//      loops in (time, src_domain, send_seq) order.
//
// Determinism: a domain's window execution depends only on its own loop
// contents, so its event stream — and the outbox it stages — is the same
// regardless of which thread runs it or how many workers exist. The merge
// order is a pure function of the staged messages. A T-thread run is
// therefore byte-identical to the T=1 run.
#pragma once

#include <condition_variable>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sim/event_loop.h"

namespace ncache::sim {

class ParallelEngine {
 public:
  /// `threads` is the worker count the *windows* are spread over; 1 means
  /// everything runs inline on the calling thread (no threads spawned).
  explicit ParallelEngine(unsigned threads = 1);
  ~ParallelEngine();
  ParallelEngine(const ParallelEngine&) = delete;
  ParallelEngine& operator=(const ParallelEngine&) = delete;

  /// Registers a domain; returns its id (dense, in registration order).
  /// All domains must be registered before the first run.
  unsigned add_domain(EventLoop& loop, std::string name);
  unsigned domain_count() const noexcept { return unsigned(domains_.size()); }
  EventLoop& domain_loop(unsigned d) { return *domains_.at(d)->loop; }
  const std::string& domain_name(unsigned d) const {
    return domains_.at(d)->name;
  }

  /// The conservative window width: the minimum latency of any
  /// cross-domain link. Must be > 0 when more than one domain exists.
  void set_lookahead(Duration ns) noexcept { lookahead_ = ns; }
  Duration lookahead() const noexcept { return lookahead_; }
  unsigned threads() const noexcept { return threads_; }

  /// Per-window bracketing, called on the thread about to run (enter) /
  /// done running (exit) a domain's window. The topo layer binds each
  /// domain's SlabCache here so buffer recycling stays per-domain (and
  /// its counters thread-count-independent).
  using ScopeHook = std::function<void(unsigned domain)>;
  void set_scope_hooks(ScopeHook enter, ScopeHook exit) {
    enter_ = std::move(enter);
    exit_ = std::move(exit);
  }

  /// Stages a delivery into `dst` at absolute time `at`. May only be
  /// called from code executing inside domain `src`'s window (that is the
  /// single-writer guarantee for the outbox). Trunk links call this via
  /// their remote hook.
  void post(unsigned src, unsigned dst, Time at, InlineCallback fn);

  /// Convenience: a remote hook for a link whose transmit side runs in
  /// `src` and whose receive side lives in `dst`.
  std::function<void(Time, InlineCallback)> remote_hook(unsigned src,
                                                        unsigned dst) {
    return [this, src, dst](Time at, InlineCallback fn) {
      post(src, dst, at, std::move(fn));
    };
  }

  /// Runs rounds until every domain is idle (or `stop` returns true at a
  /// round boundary). Returns events processed.
  std::size_t run(const std::function<bool()>& stop = {});

  /// Runs every event with time <= deadline, then aligns all domain
  /// clocks to exactly `deadline` (like EventLoop::run_until).
  std::size_t run_until(Time deadline);

  /// Latest domain clock (after run_until, every domain reads the same).
  Time now() const noexcept;
  /// Conservative windows executed so far (telemetry: events/round is the
  /// parallelism the topology actually exposes).
  std::uint64_t rounds() const noexcept { return rounds_; }

 private:
  struct Msg {
    Time at;
    std::uint64_t seq;
    InlineCallback fn;
  };
  struct Domain {
    EventLoop* loop;
    std::string name;
    std::vector<std::vector<Msg>> outbox;  ///< staged sends, per dst
    std::uint64_t out_seq = 0;
    std::size_t processed = 0;             ///< events run this round
    std::exception_ptr error;              ///< thrown during this round
  };

  Time next_floor();
  std::size_t round(Time limit);
  void run_domain(unsigned d, Time limit);
  void merge_outboxes();
  void worker_main();

  std::vector<std::unique_ptr<Domain>> domains_;
  Duration lookahead_ = 0;
  ScopeHook enter_, exit_;
  std::uint64_t rounds_ = 0;
  bool running_ = false;

  // Worker pool (threads_ - 1 spawned threads; the caller participates).
  unsigned threads_;
  std::vector<std::thread> workers_;
  std::mutex m_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::uint64_t generation_ = 0;  ///< bumped per round (guarded by m_)
  Time round_limit_ = 0;
  std::atomic<unsigned> next_domain_{0};
  unsigned workers_busy_ = 0;  ///< workers still claiming (guarded by m_)
  bool shutdown_ = false;
};

}  // namespace ncache::sim
