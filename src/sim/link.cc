#include "sim/link.h"

#include <algorithm>

#include "common/metrics.h"

namespace ncache::sim {

Duration Link::tx_time(std::size_t bytes) const noexcept {
  std::uint64_t wire_bytes = bytes + overhead_bytes_;
  // ns = bytes * 8 bits * 1e9 / bps
  return static_cast<Duration>(double(wire_bytes) * 8e9 /
                               double(bandwidth_bps_));
}

void Link::transmit(std::size_t bytes, InlineCallback delivered) {
  // Fault gate: a downed or lossy link eats the frame before it touches
  // the serializer, so drops cost no line time and skew no utilization.
  if (!admin_up_) {
    ++dropped_down_;
    return;
  }
  if (drop_hook_ && drop_hook_(bytes)) {
    ++dropped_faults_;
    return;
  }

  Time start = std::max(loop_.now(), idle_at_);
  Duration ser = tx_time(bytes);
  Time done_tx = start + ser;
  idle_at_ = done_tx;

  Time acct_start = std::max(start, window_start_);
  if (done_tx > acct_start) busy_ns_ += done_tx - acct_start;
  ++frames_;
  payload_bytes_ += bytes;

  Time deliver_at = done_tx + latency_ns_;
  if (remote_) {
    // Receive side lives in another domain: stage the delivery with the
    // engine instead of the local loop. Fire-and-forget frames (null
    // callback) have nothing to do remotely.
    if (delivered) remote_(deliver_at, std::move(delivered));
    return;
  }
  loop_.schedule_at(deliver_at, std::move(delivered));
}

double Link::utilization() const noexcept {
  Time now = loop_.now();
  if (now <= window_start_) return 0.0;
  Duration elapsed = now - window_start_;
  Duration busy = busy_ns_;
  if (idle_at_ > now) {
    Duration future = idle_at_ - now;
    busy = busy > future ? busy - future : 0;
  }
  return std::min(1.0, double(busy) / double(elapsed));
}

void Link::reset_stats() noexcept {
  busy_ns_ = 0;
  frames_ = 0;
  payload_bytes_ = 0;
  window_start_ = loop_.now();
  if (idle_at_ > window_start_) busy_ns_ = idle_at_ - window_start_;
}

void Link::register_metrics(MetricRegistry& registry, const std::string& node,
                            const std::string& prefix) {
  registry.gauge(node, prefix + ".utilization",
                 [this] { return utilization(); });
  registry.counter(node, prefix + ".frames", [this] { return frames_; });
  registry.bytes(node, prefix + ".payload_bytes",
                 [this] { return payload_bytes_; });
  registry.counter(node, prefix + ".dropped_down",
                   [this] { return dropped_down_; });
  registry.counter(node, prefix + ".dropped_faults",
                   [this] { return dropped_faults_; });
  registry.on_reset([this] { reset_stats(); });
}

}  // namespace ncache::sim
