// Slow paths of the hierarchical timer wheel: pool growth, the overflow
// heap, and the batch-refill cascade. The per-event fast paths (push, pop,
// peek, insert_wheel) are inline in timer_wheel.h.
#include "sim/timer_wheel.h"

#include <algorithm>

namespace ncache::sim {

namespace {

// Min-heap order for the overflow heap: front is the smallest (at, seq).
constexpr auto kLater = [](const auto* a, const auto* b) noexcept {
  if (a->e.at != b->e.at) return a->e.at > b->e.at;
  return a->e.seq > b->e.seq;
};

constexpr auto kEarlier = [](const auto* a, const auto* b) noexcept {
  if (a->e.at != b->e.at) return a->e.at < b->e.at;
  return a->e.seq < b->e.seq;
};

}  // namespace

void TimerWheel::grow_pool() {
  blocks_.push_back(std::make_unique<Node[]>(kBlockNodes));
  Node* block = blocks_.back().get();
  for (std::size_t i = 0; i < kBlockNodes; ++i) {
    block[i].next = free_;
    free_ = &block[i];
  }
}

void TimerWheel::reserve(std::size_t entries) {
  while (blocks_.size() * kBlockNodes < entries) grow_pool();
  overflow_.reserve(entries);
  scratch_.reserve(entries);
}

void TimerWheel::push_overflow(Node* n) {
  overflow_.push_back(n);
  std::push_heap(overflow_.begin(), overflow_.end(), kLater);
}

void TimerWheel::drain_overflow_at(Time t) {
  while (!overflow_.empty() && overflow_.front()->e.at == t) {
    std::pop_heap(overflow_.begin(), overflow_.end(), kLater);
    append(ready_, overflow_.back());
    overflow_.pop_back();
  }
}

/// Relink paths keep batches in (at, seq) order by construction: slots
/// receive cascaded nodes (older seqs) before direct pushes (newer seqs)
/// and every walk is order-preserving. This pass verifies that in O(n)
/// and falls back to an explicit sort if a merge ever breaks it, so
/// dispatch order never silently depends on the structural argument.
void TimerWheel::ensure_ready_sorted() {
  for (Node* n = ready_.head; n && n->next; n = n->next) {
    if (kEarlier(n->next, n)) {
      scratch_.clear();
      for (Node* m = ready_.head; m; m = m->next) scratch_.push_back(m);
      std::sort(scratch_.begin(), scratch_.end(), kEarlier);
      ready_ = List{};
      for (Node* m : scratch_) append(ready_, m);
      return;
    }
  }
}

bool TimerWheel::fill_ready() {
  if (ready_.head) return true;
  if (size_ == 0) return false;

  for (;;) {
    // The first non-empty level holds the earliest pending slot: level-0
    // entries precede the cursor's next level-1 boundary, which precedes
    // every occupied level-1 slot, and so on up.
    int level = -1;
    std::size_t slot = 0;
    Time wheel_t = 0;
    for (int l = 0; l < kLevels; ++l) {
      auto cursor =
          std::size_t(elapsed_ >> (l * kLevelBits)) & (kSlotsPerLevel - 1);
      // Occupied slots are strictly above the cursor digit at their level
      // (equal-or-below would mean a deadline at or before the cursor).
      std::uint64_t mask =
          cursor + 1 >= kSlotsPerLevel
              ? 0
              : occupied_[l] & (~std::uint64_t(0) << (cursor + 1));
      if (mask) {
        level = l;
        slot = std::size_t(std::countr_zero(mask));
        Time span = Time(1) << ((l + 1) * kLevelBits);
        wheel_t = (elapsed_ & ~(span - 1)) | (Time(slot) << (l * kLevelBits));
        break;
      }
    }

    bool have_overflow = !overflow_.empty();
    Time overflow_t = have_overflow ? overflow_.front()->e.at : 0;

    if (level < 0 && !have_overflow) return false;

    if (level < 0 || (have_overflow && overflow_t < wheel_t)) {
      // Every wheel entry is at or after wheel_t, so the overflow front
      // is globally earliest; batch out all entries sharing its deadline
      // (heap pops arrive in (at, seq) order already).
      elapsed_ = overflow_t;
      drain_overflow_at(overflow_t);
      ensure_ready_sorted();
      return true;
    }

    if (level == 0) {
      // A level-0 slot stores exactly one deadline (the cursor's upper
      // digits plus this slot index), so the whole slot is one batch:
      // taking it is a pointer swap, no per-entry work.
      elapsed_ = wheel_t;
      ready_ = slots_[0][slot];
      slots_[0][slot] = List{};
      occupied_[0] &= ~(std::uint64_t(1) << slot);
      if (have_overflow && overflow_t == wheel_t) drain_overflow_at(wheel_t);
      ensure_ready_sorted();
      return true;
    }

    // Cascade: advance the cursor to the slot's region start and re-bin
    // its nodes; each relinks at a lower level (or into ready when its
    // deadline is exactly the region start).
    elapsed_ = wheel_t;
    List l = slots_[level][slot];
    slots_[level][slot] = List{};
    occupied_[level] &= ~(std::uint64_t(1) << slot);
    for (Node* n = l.head; n;) {
      Node* next = n->next;
      if (n->e.at == elapsed_) {
        append(ready_, n);
      } else {
        insert_wheel(n);
      }
      n = next;
    }
    if (ready_.head) {
      if (have_overflow && overflow_t == wheel_t) drain_overflow_at(wheel_t);
      ensure_ready_sorted();
      return true;
    }
  }
}

}  // namespace ncache::sim
