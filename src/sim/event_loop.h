// Deterministic discrete-event loop: the heart of the simulation.
//
// Time is a 64-bit nanosecond counter. Events scheduled for the same
// instant fire in scheduling order (a monotone sequence number breaks
// ties), which makes every run bit-for-bit reproducible.
//
// The pending set lives in a hierarchical timer wheel (sim/timer_wheel.h)
// and callbacks in 48-byte small-buffer InlineCallback slots
// (sim/inline_callback.h), so a steady-state schedule/dispatch cycle
// performs zero heap allocations — the property bench/perf_core.cc
// measures and tools/perf_compare.py tracks across PRs.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>

#include "common/task.h"
#include "sim/inline_callback.h"
#include "sim/timer_wheel.h"

namespace ncache::sim {

constexpr Duration kMicrosecond = 1'000;
constexpr Duration kMillisecond = 1'000'000;
constexpr Duration kSecond = 1'000'000'000;

class EventLoop {
 public:
  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  Time now() const noexcept { return now_; }

  /// Schedules `fn` at absolute time `at` (clamped to now if in the past;
  /// clamps are counted in clamped_events()).
  void schedule_at(Time at, InlineCallback fn) {
    if (at < now_) {
      at = now_;
      ++clamped_;
    }
    wheel_.push(at, next_seq_++, std::move(fn));
  }

  /// Schedules `fn` after `delay` ns.
  void schedule_in(Duration delay, InlineCallback fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  /// Runs until no events remain. Returns number of events processed.
  std::size_t run();

  /// Runs until the clock would pass `deadline` or no events remain.
  /// Events at exactly `deadline` are processed.
  std::size_t run_until(Time deadline);

  /// Runs every event strictly before `horizon` (events at exactly
  /// `horizon` stay pending) and leaves the clock at the last event
  /// processed. The conservative-window primitive of the parallel engine:
  /// a domain may safely run to its neighbors' floor + lookahead.
  std::size_t run_before(Time horizon);

  /// Processes a single event; returns false if none is pending.
  bool step();

  /// Earliest pending event time, or kNoEvent when the loop is idle.
  /// (Non-const: peeking may advance the wheel cursor — see run_until.)
  static constexpr Time kNoEvent = ~Time(0);
  Time next_event_time() noexcept {
    const TimerWheel::Entry* next = wheel_.peek();
    return next ? next->at : kNoEvent;
  }

  /// Moves the clock forward to `t` without dispatching anything (no-op if
  /// `t` is in the past). The parallel engine aligns domain clocks at a
  /// deadline with this, exactly like run_until()'s trailing advance.
  void advance_to(Time t) noexcept {
    if (t > now_) now_ = t;
  }

  bool idle() const noexcept { return wheel_.empty(); }
  std::size_t pending() const noexcept { return wheel_.size(); }

  /// Total events ever dispatched (for sanity checks in tests).
  std::uint64_t dispatched() const noexcept { return dispatched_; }

  /// Schedules whose target time was already in the past and got clamped
  /// to now. A burst of these means some model is emitting events faster
  /// than it advances time; surfaced as the "sim.clamped_events" metric.
  std::uint64_t clamped_events() const noexcept { return clamped_; }

  /// Pre-grows the timer wheel's node pool to `events` concurrently
  /// pending events (see TimerWheel::reserve), so scheduling never
  /// allocates while the pending set stays under that high-water mark.
  /// Optional; benches call it before the measured phase.
  void reserve_pending(std::size_t events) { wheel_.reserve(events); }

  /// Events dispatched by every loop in this process (wall-clock telemetry:
  /// the BENCH_*.json "wall" block divides by elapsed real time). Relaxed
  /// atomic: the parallel engine dispatches from several worker threads.
  static std::uint64_t process_dispatched() noexcept;

  /// Registry for detached root coroutines driven by this loop. Declared
  /// before the wheel so it is destroyed after it: pending events (which
  /// may hold raw frame handles) are dropped first, then any frames still
  /// suspended at teardown are destroyed instead of leaking.
  TaskReaper& reaper() noexcept { return reaper_; }

 private:
  TaskReaper reaper_;
  TimerWheel wheel_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;
  std::uint64_t clamped_ = 0;
};

/// Awaitable pause: `co_await sleep_for(loop, 10 * kMicrosecond);`
inline auto sleep_for(EventLoop& loop, Duration d) {
  struct Awaiter {
    EventLoop& loop;
    Duration d;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      loop.schedule_in(d, [h] { h.resume(); });
    }
    void await_resume() const noexcept {}
  };
  return Awaiter{loop, d};
}

/// Runs a Task<T> to completion by pumping the loop; for tests/examples.
/// Throws if the loop drains before the task finishes (deadlock in the
/// modelled system).
namespace detail {
// Free functions, not capturing lambdas: a coroutine created from a
// temporary closure dangles once the closure dies (the frame stores only a
// pointer to it), so all internal wrappers take everything as parameters.
template <typename T>
Task<void> sync_wrapper(Task<T> task, std::optional<T>* out, bool* failed,
                        std::exception_ptr* error) {
  try {
    out->emplace(co_await std::move(task));
  } catch (...) {
    *error = std::current_exception();
    *failed = true;
  }
}

inline Task<void> sync_wrapper_void(Task<void> task, bool* done,
                                    std::exception_ptr* error) {
  try {
    co_await std::move(task);
  } catch (...) {
    *error = std::current_exception();
  }
  *done = true;
}
}  // namespace detail

template <typename T>
T sync_wait(EventLoop& loop, Task<T> task) {
  std::optional<T> out;
  bool failed = false;
  std::exception_ptr error;
  detail::sync_wrapper(std::move(task), &out, &failed, &error)
      .detach(loop.reaper());
  while (!out && !failed && loop.step()) {
  }
  if (failed) std::rethrow_exception(error);
  if (!out) throw std::runtime_error("sync_wait: event loop drained before task completed");
  return std::move(*out);
}

inline void sync_wait(EventLoop& loop, Task<void> task) {
  bool done = false;
  std::exception_ptr error;
  detail::sync_wrapper_void(std::move(task), &done, &error)
      .detach(loop.reaper());
  while (!done && loop.step()) {
  }
  if (error) std::rethrow_exception(error);
  if (!done) throw std::runtime_error("sync_wait: event loop drained before task completed");
}

}  // namespace ncache::sim
