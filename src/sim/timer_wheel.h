// Hierarchical timer wheel — the event loop's pending-event store.
//
// The old implementation kept every pending event in one binary heap:
// O(log n) comparisons per operation, one heap-boxed std::function per
// event, and a const_cast to move out of priority_queue::top. This is the
// calendar-queue / timing-wheel discipline instead (Brown '88; Varghese &
// Lauck '87; the same shape the Linux kernel uses for its timers):
//
//   * 6 levels x 64 slots, 1 ns ticks. Level L slots span 64^L ns, so the
//     wheel covers 64^6 ns (~68 simulated seconds) ahead of the cursor;
//     events beyond the horizon wait in a small min-heap and enter the
//     wheel as the cursor approaches.
//   * An event lands at the level of the highest 6-bit digit in which its
//     deadline differs from the cursor (`at XOR elapsed`), i.e. as low as
//     possible without ambiguity. Advancing the cursor into a higher-level
//     slot cascades its events down; each event cascades at most 5 times.
//   * Occupancy bitmaps (one 64-bit word per level) make "next non-empty
//     slot" a count-trailing-zeros, so an idle wheel skips any distance in
//     O(levels) — no tick-by-tick stepping.
//   * Slots are intrusive singly-linked lists of pool-recycled nodes
//     (the kernel's timer/sk_buff idiom): a cascade relinks a node in
//     O(1) instead of moving an 80-byte entry, and once the pool reaches
//     the workload's high-water mark of concurrently-pending events,
//     schedule/dispatch performs zero heap allocations regardless of the
//     delay distribution (bench/perf_core.cc asserts this via a global
//     operator-new counter).
//
// Determinism contract (load-bearing: BENCH_*.json must be byte-identical
// across same-seed runs): events fire in exactly (time, seq) order, the
// same total order the old heap produced. A level-0 slot holds events of
// exactly one deadline, and every relink path preserves relative order,
// so a drained batch is already FIFO by sequence number; a defensive sort
// pass restores it if any merge ever breaks that invariant.
#pragma once

#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/inline_callback.h"

namespace ncache::sim {

using Time = std::uint64_t;      // absolute simulated time, ns
using Duration = std::uint64_t;  // simulated interval, ns

class TimerWheel {
 public:
  struct Entry {
    Time at = 0;
    std::uint64_t seq = 0;
    InlineCallback fn;
  };
  /// Pool node; exposed so the event loop can dispatch callbacks in
  /// place via pop_node()/recycle() without moving the Entry out. The
  /// link precedes the entry so relink walks (next/at/seq) stay within
  /// the node's first cache line; callback bytes are only touched at
  /// dispatch.
  struct Node {
    Node* next = nullptr;
    Entry e;
  };

  TimerWheel() = default;
  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  /// Pre-grows the node pool to hold `entries` concurrently-pending
  /// events (plus the overflow/scratch vectors), so a workload that never
  /// exceeds that high-water mark never allocates after this call.
  void reserve(std::size_t entries);

  /// Inserts an entry. `at` must be >= the time of the last popped entry
  /// (the EventLoop clamps past-due schedules before calling).
  void push(Entry e) { push(e.at, e.seq, std::move(e.fn)); }

  /// Same, constructing the entry directly in its pool node — the
  /// scheduling hot path (one callback move total).
  void push(Time at, std::uint64_t seq, InlineCallback&& fn) {
    ++size_;
    Node* n = acquire();
    n->e.at = at;
    n->e.seq = seq;
    n->e.fn = std::move(fn);
    if (ready_.head && at <= ready_.tail->e.at) {
      // The ready batch holds the earliest pending deadlines, so an entry
      // landing at or before its tail belongs inside it. Same-deadline
      // entries already present carry smaller sequence numbers (seq is
      // monotone), so inserting before the first strictly-later deadline
      // preserves the (at, seq) order.
      Node** pp = &ready_.head;
      while (*pp && (*pp)->e.at <= at) pp = &(*pp)->next;
      n->next = *pp;
      *pp = n;
      if (!n->next) ready_.tail = n;
      return;
    }
    if (at <= elapsed_) {
      // Only reachable with at == elapsed_ (schedule-at-now while the
      // current batch drains): append keeps seq order since seq is
      // monotone.
      append(ready_, n);
      return;
    }
    insert_wheel(n);
  }

  /// Moves the earliest entry (by (at, seq)) into `out`; false when empty.
  bool pop(Entry& out) {
    Node* n = pop_node();
    if (!n) return false;
    out.at = n->e.at;
    out.seq = n->e.seq;
    out.fn = std::move(n->e.fn);
    recycle(n);
    return true;
  }

  /// Zero-copy dispatch interface: unlinks the earliest node so the
  /// caller can invoke its callback in place, then hand the node back via
  /// recycle(). The node stays valid across interleaved push() calls (it
  /// is off every list); recycle() destroys the callback so a popped
  /// event never outlives its dispatch.
  Node* pop_node() {
    if (!ready_.head && !fill_ready()) return nullptr;
    Node* n = ready_.head;
    ready_.head = n->next;
    if (!ready_.head) {
      ready_.tail = nullptr;
    } else {
      // Pool nodes are scattered across blocks; start pulling the next
      // event's cache lines while this one's callback runs.
      __builtin_prefetch(ready_.head);
    }
    --size_;
    return n;
  }
  void recycle(Node* n) noexcept {
    n->e.fn = nullptr;
    release(n);
  }

  /// Earliest pending entry without consuming it (nullptr when empty).
  /// May advance the internal cursor; interleaved push() calls remain
  /// valid at any time >= the last popped entry's.
  const Entry* peek() {
    if (!ready_.head && !fill_ready()) return nullptr;
    return &ready_.head->e;
  }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  static constexpr int kLevelBits = 6;
  static constexpr int kLevels = 6;
  static constexpr std::size_t kSlotsPerLevel = std::size_t(1) << kLevelBits;
  /// Deadlines >= cursor + kHorizon wait in the overflow heap.
  static constexpr Time kHorizon = Time(1) << (kLevelBits * kLevels);

 private:
  /// Intrusive FIFO list; nodes are appended at the tail so each slot
  /// keeps its entries in push order.
  struct List {
    Node* head = nullptr;
    Node* tail = nullptr;
  };

  Node* acquire() {
    if (!free_) grow_pool();
    Node* n = free_;
    free_ = n->next;
    n->next = nullptr;
    return n;
  }
  void release(Node* n) noexcept {
    n->next = free_;
    free_ = n;
  }
  static void append(List& l, Node* n) noexcept {
    n->next = nullptr;
    if (l.tail) {
      l.tail->next = n;
    } else {
      l.head = n;
    }
    l.tail = n;
  }
  void insert_wheel(Node* n) {
    std::uint64_t diff = n->e.at ^ elapsed_;  // at > elapsed_, so diff != 0
    int msb = 63 - std::countl_zero(diff);
    int level = msb / kLevelBits;
    if (level >= kLevels) {
      push_overflow(n);
      return;
    }
    auto slot =
        std::size_t(n->e.at >> (level * kLevelBits)) & (kSlotsPerLevel - 1);
    append(slots_[level][slot], n);
    occupied_[level] |= std::uint64_t(1) << slot;
  }
  void grow_pool();
  bool fill_ready();
  void push_overflow(Node* n);
  void drain_overflow_at(Time t);
  void ensure_ready_sorted();

  List slots_[kLevels][kSlotsPerLevel];
  std::uint64_t occupied_[kLevels] = {};
  std::vector<Node*> overflow_;  ///< min-heap by (at, seq)
  /// Earliest batch, in (at, seq) order; consumed from the head. Pushes
  /// at or before the tail's deadline insert here to keep global order.
  List ready_;
  Time elapsed_ = 0;  ///< wheel cursor; <= every pending entry's deadline
  std::size_t size_ = 0;

  // Node pool: blocks are handed out once and recycled through free_
  // forever after; scratch_ backs the (rare) defensive batch sort.
  static constexpr std::size_t kBlockNodes = 1024;
  std::vector<std::unique_ptr<Node[]>> blocks_;
  Node* free_ = nullptr;
  std::vector<Node*> scratch_;
};

}  // namespace ncache::sim
