// Serializing point-to-point link model.
//
// A Link is unidirectional: frames queue behind each other at the line
// rate, then arrive after the propagation delay. Utilization accounting
// mirrors CpuModel so benches can identify which resource saturates.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "sim/cost_model.h"
#include "sim/event_loop.h"

namespace ncache {
class MetricRegistry;
}

namespace ncache::sim {

class Link {
 public:
  Link(EventLoop& loop, std::string name, std::uint64_t bandwidth_bps,
       Duration latency_ns, std::uint32_t per_frame_overhead_bytes)
      : loop_(loop),
        name_(std::move(name)),
        bandwidth_bps_(bandwidth_bps),
        latency_ns_(latency_ns),
        overhead_bytes_(per_frame_overhead_bytes) {}

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Fault-injection drop decision, consulted once per offered frame with
  /// the payload size. Returning true discards the frame (the `delivered`
  /// callback never fires — exactly a frame lost on the wire).
  using DropHook = std::function<bool(std::size_t)>;

  /// Cross-domain delivery: when set, the receive side of this link lives
  /// in a different event-loop domain, and `delivered` is handed to the
  /// hook (with its absolute arrival time) instead of the local loop. The
  /// parallel engine installs these on trunk directions and merges the
  /// staged deliveries deterministically at its window barrier.
  using RemoteHook = std::function<void(Time deliver_at, InlineCallback fn)>;

  /// Transmits a frame of `bytes` payload (wire overhead added internally);
  /// `delivered` fires at the receiver once the last bit arrives (pass
  /// nullptr to model fire-and-forget traffic). Frames offered while the
  /// link is administratively down, or vetoed by the drop hook, vanish
  /// without consuming serialization time.
  void transmit(std::size_t bytes, InlineCallback delivered);

  /// Administrative (carrier) state: while down every offered frame is
  /// silently discarded, as if the cable were unplugged.
  void set_admin_up(bool up) noexcept { admin_up_ = up; }
  bool admin_up() const noexcept { return admin_up_; }

  /// Installs (or clears, with nullptr) the fault-injection drop hook.
  void set_drop_hook(DropHook hook) { drop_hook_ = std::move(hook); }

  /// Installs (or clears) the cross-domain delivery hook.
  void set_remote_hook(RemoteHook hook) { remote_ = std::move(hook); }

  std::uint64_t dropped_down() const noexcept { return dropped_down_; }
  std::uint64_t dropped_faults() const noexcept { return dropped_faults_; }

  /// Busy fraction since last reset_stats().
  double utilization() const noexcept;
  std::uint64_t frames() const noexcept { return frames_; }
  std::uint64_t payload_bytes() const noexcept { return payload_bytes_; }
  void reset_stats() noexcept;

  /// Serialization time for a frame of `bytes` payload.
  Duration tx_time(std::size_t bytes) const noexcept;

  /// Publishes <prefix>.utilization / .frames / .payload_bytes under `node`
  /// and hooks reset_stats() into the registry reset.
  void register_metrics(MetricRegistry& registry, const std::string& node,
                        const std::string& prefix);

  const std::string& name() const noexcept { return name_; }

 private:
  EventLoop& loop_;
  std::string name_;
  std::uint64_t bandwidth_bps_;
  Duration latency_ns_;
  std::uint32_t overhead_bytes_;

  Time idle_at_ = 0;
  Duration busy_ns_ = 0;
  std::uint64_t frames_ = 0;
  std::uint64_t payload_bytes_ = 0;
  Time window_start_ = 0;

  bool admin_up_ = true;
  DropHook drop_hook_;
  RemoteHook remote_;
  std::uint64_t dropped_down_ = 0;
  std::uint64_t dropped_faults_ = 0;
};

/// A full-duplex cable: two independent directions. Each direction is
/// driven by the loop of its *transmitting* side, so a cable spanning two
/// event-loop domains (a partitioned world's trunk) serializes each
/// direction on the correct clock; the single-loop constructor covers the
/// common same-domain case.
struct DuplexLink {
  DuplexLink(EventLoop& loop, const std::string& name,
             std::uint64_t bandwidth_bps, Duration latency_ns,
             std::uint32_t overhead_bytes)
      : DuplexLink(loop, loop, name, bandwidth_bps, latency_ns,
                   overhead_bytes) {}

  DuplexLink(EventLoop& loop_a, EventLoop& loop_b, const std::string& name,
             std::uint64_t bandwidth_bps, Duration latency_ns,
             std::uint32_t overhead_bytes)
      : a_to_b(loop_a, name + ".fwd", bandwidth_bps, latency_ns,
               overhead_bytes),
        b_to_a(loop_b, name + ".rev", bandwidth_bps, latency_ns,
               overhead_bytes) {}

  Link a_to_b;
  Link b_to_a;
};

}  // namespace ncache::sim
