#include "sim/parallel.h"

#include <algorithm>
#include <atomic>
#include <stdexcept>

namespace ncache::sim {

ParallelEngine::ParallelEngine(unsigned threads)
    : threads_(threads == 0 ? 1 : threads) {
  for (unsigned t = 1; t < threads_; ++t) {
    workers_.emplace_back([this] { worker_main(); });
  }
}

ParallelEngine::~ParallelEngine() {
  {
    std::lock_guard<std::mutex> lock(m_);
    shutdown_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& w : workers_) w.join();
}

unsigned ParallelEngine::add_domain(EventLoop& loop, std::string name) {
  if (running_) {
    throw std::logic_error("ParallelEngine: add_domain after first run");
  }
  auto d = std::make_unique<Domain>();
  d->loop = &loop;
  d->name = std::move(name);
  domains_.push_back(std::move(d));
  return unsigned(domains_.size() - 1);
}

void ParallelEngine::post(unsigned src, unsigned dst, Time at,
                          InlineCallback fn) {
  Domain& s = *domains_.at(src);
  s.outbox.at(dst).push_back(Msg{at, s.out_seq++, std::move(fn)});
}

Time ParallelEngine::next_floor() {
  Time floor = EventLoop::kNoEvent;
  for (auto& d : domains_) {
    floor = std::min(floor, d->loop->next_event_time());
  }
  return floor;
}

void ParallelEngine::run_domain(unsigned d, Time limit) {
  Domain& dom = *domains_[d];
  if (enter_) enter_(d);
  try {
    dom.processed = dom.loop->run_before(limit);
  } catch (...) {
    dom.error = std::current_exception();
  }
  if (exit_) exit_(d);
}

void ParallelEngine::merge_outboxes() {
  struct Item {
    Time at;
    unsigned src;
    std::uint64_t seq;
    InlineCallback* fn;
  };
  const unsigned n = domain_count();
  std::vector<Item> items;
  for (unsigned dst = 0; dst < n; ++dst) {
    items.clear();
    for (unsigned src = 0; src < n; ++src) {
      for (Msg& m : domains_[src]->outbox[dst]) {
        items.push_back(Item{m.at, src, m.seq, &m.fn});
      }
    }
    // Total order over the inbox: arrival time, then source domain, then
    // send order within the source. This is a pure function of what the
    // domains staged, so the destination loop's (time, seq) stream is the
    // same for every worker-thread count.
    std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
      if (a.at != b.at) return a.at < b.at;
      if (a.src != b.src) return a.src < b.src;
      return a.seq < b.seq;
    });
    for (Item& it : items) {
      domains_[dst]->loop->schedule_at(it.at, std::move(*it.fn));
    }
    for (unsigned src = 0; src < n; ++src) domains_[src]->outbox[dst].clear();
  }
}

std::size_t ParallelEngine::round(Time limit) {
  const unsigned n = domain_count();
  // Pre-scan for domains that actually have work below the horizon. In a
  // sparse stretch (e.g. a long simulated idle tail) most windows hold
  // events in exactly one domain; running it inline skips the worker-pool
  // handshake — two context switches per round that would otherwise
  // dominate the wall clock. The scan itself is a wheel peek per domain,
  // the same operation next_floor() just did.
  unsigned busy = 0;
  unsigned only = 0;
  for (unsigned d = 0; d < n; ++d) {
    if (domains_[d]->loop->next_event_time() < limit) {
      ++busy;
      only = d;
    }
  }
  const unsigned executors = std::min(threads_, busy ? busy : 1u);
  if (executors <= 1) {
    if (busy <= 1) {
      if (busy) run_domain(only, limit);
    } else {
      for (unsigned d = 0; d < n; ++d) run_domain(d, limit);
    }
  } else {
    {
      std::lock_guard<std::mutex> lock(m_);
      round_limit_ = limit;
      next_domain_.store(0, std::memory_order_relaxed);
      workers_busy_ = unsigned(workers_.size());
      ++generation_;
    }
    cv_work_.notify_all();
    // The caller is an executor too.
    for (unsigned d; (d = next_domain_.fetch_add(1)) < n;) {
      run_domain(d, limit);
    }
    std::unique_lock<std::mutex> lock(m_);
    cv_done_.wait(lock, [this] { return workers_busy_ == 0; });
  }

  // First error wins, lowest domain id first so reporting is
  // deterministic. Outboxes are still merged: schedules already staged
  // stay consistent if the caller catches and resumes.
  merge_outboxes();
  ++rounds_;
  std::size_t total = 0;
  std::exception_ptr error;
  for (auto& d : domains_) {
    total += d->processed;
    d->processed = 0;
    if (d->error && !error) error = d->error;
    d->error = nullptr;
  }
  if (error) std::rethrow_exception(error);
  return total;
}

void ParallelEngine::worker_main() {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(m_);
      cv_work_.wait(lock,
                    [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
    }
    const unsigned n = domain_count();
    for (unsigned d; (d = next_domain_.fetch_add(1)) < n;) {
      run_domain(d, round_limit_);
    }
    {
      std::lock_guard<std::mutex> lock(m_);
      --workers_busy_;
    }
    cv_done_.notify_one();
  }
}

std::size_t ParallelEngine::run(const std::function<bool()>& stop) {
  if (domains_.empty()) return 0;
  if (domain_count() > 1 && lookahead_ == 0) {
    throw std::logic_error("ParallelEngine: lookahead must be > 0");
  }
  running_ = true;
  for (auto& d : domains_) d->outbox.resize(domain_count());

  std::size_t total = 0;
  for (;;) {
    if (stop && stop()) break;
    Time floor = next_floor();
    if (floor == EventLoop::kNoEvent) break;
    Time limit =
        domain_count() == 1 ? EventLoop::kNoEvent : floor + lookahead_;
    total += round(limit);
  }
  return total;
}

std::size_t ParallelEngine::run_until(Time deadline) {
  if (domains_.empty()) return 0;
  if (domain_count() > 1 && lookahead_ == 0) {
    throw std::logic_error("ParallelEngine: lookahead must be > 0");
  }
  running_ = true;
  for (auto& d : domains_) d->outbox.resize(domain_count());

  std::size_t total = 0;
  for (;;) {
    Time floor = next_floor();
    if (floor == EventLoop::kNoEvent || floor > deadline) break;
    Time limit = deadline + 1;  // run_before is strict, so events at
                                // exactly `deadline` still run
    if (domain_count() > 1) {
      limit = std::min(limit, floor + lookahead_);
    }
    total += round(limit);
  }
  for (auto& d : domains_) d->loop->advance_to(deadline);
  return total;
}

Time ParallelEngine::now() const noexcept {
  Time latest = 0;
  for (auto& d : domains_) latest = std::max(latest, d->loop->now());
  return latest;
}

}  // namespace ncache::sim
