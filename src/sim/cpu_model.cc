#include "sim/cpu_model.h"

#include <algorithm>
#include <stdexcept>

#include "common/metrics.h"

namespace ncache::sim {

void CpuModel::set_cores(unsigned k) {
  if (k == 0 || k > kMaxCores) {
    throw std::invalid_argument("CpuModel: cores must be in [1, 64]");
  }
  if (submitted_ != 0) {
    throw std::logic_error("CpuModel: set_cores() after work was submitted");
  }
  // Fresh vector rather than resize: Core is move-only (the completion
  // FIFO holds InlineCallbacks) and the CPU is cold, so nothing carries
  // over.
  cores_ = std::vector<Core>(k);
}

unsigned CpuModel::steer(std::uint64_t flow_hash) const noexcept {
  if (!rss_ || cores_.size() == 1) return 0;
  // mix64 (splitmix finalizer): the low bits of raw tuples are far from
  // uniform, exactly the reason real RSS hashes before indirection.
  flow_hash ^= flow_hash >> 33;
  flow_hash *= 0xff51afd7ed558ccdull;
  flow_hash ^= flow_hash >> 33;
  flow_hash *= 0xc4ceb9fe1a85ec53ull;
  flow_hash ^= flow_hash >> 33;
  return unsigned(flow_hash % cores_.size());
}

void CpuModel::submit_on(unsigned core, Duration cost, InlineCallback done) {
  if (core >= cores_.size()) core = 0;
  Time now = loop_.now();
  // Deterministic steal: if the steered core is backlogged past the
  // threshold and some other core is idle, the lowest-numbered idle core
  // takes the item (what a work-stealing scheduler or kernel softirq
  // spreading would do, collapsed to a deterministic rule).
  if (steal_threshold_ != 0 && cores_.size() > 1 &&
      cores_[core].free_at > now + steal_threshold_) {
    for (unsigned c = 0; c < cores_.size(); ++c) {
      if (c != core && cores_[c].free_at <= now) {
        core = c;
        ++steals_;
        break;
      }
    }
  }

  Core& cpu = cores_[core];
  Time start = std::max(now, cpu.free_at);
  Time finish = start + cost;
  cpu.free_at = finish;
  // Clip accounting to the current measurement window: work queued before
  // reset_stats() but finishing after it counts only its in-window part.
  Time acct_start = std::max(start, window_start_);
  if (finish > acct_start) cpu.busy_ns += finish - acct_start;
  ++cpu.items;
  ++submitted_;
  if (done) {
    // Completions pop from a per-core FIFO so the dispatch runs inside
    // this core's context (current_core() == core): nested charge() calls
    // attribute to the core doing the work. Per-core finish times are
    // monotone, so FIFO order is finish order.
    cpu.done_q.push_back(std::move(done));
    loop_.schedule_at(finish, [this, core] { dispatch_done(core); });
  }
}

void CpuModel::dispatch_done(unsigned core) {
  InlineCallback done = std::move(cores_[core].done_q.front());
  cores_[core].done_q.pop_front();
  CoreGuard ctx(*this, core);
  done();
}

Duration CpuModel::busy_ns() const noexcept {
  Duration total = 0;
  for (const Core& c : cores_) total += c.busy_ns;
  return total;
}

std::uint64_t CpuModel::items() const noexcept {
  std::uint64_t total = 0;
  for (const Core& c : cores_) total += c.items;
  return total;
}

Time CpuModel::free_at() const noexcept {
  Time latest = 0;
  for (const Core& c : cores_) latest = std::max(latest, c.free_at);
  return latest;
}

double CpuModel::core_utilization(unsigned core) const noexcept {
  Time now = loop_.now();
  if (now <= window_start_) return 0.0;
  Duration elapsed = now - window_start_;
  const Core& c = cores_[core];
  // busy_ns may exceed elapsed transiently when queued work extends past
  // `now`; count only busy time already in the past.
  Duration busy = c.busy_ns;
  if (c.free_at > now) {
    Duration future = c.free_at - now;
    busy = busy > future ? busy - future : 0;
  }
  return std::min(1.0, double(busy) / double(elapsed));
}

double CpuModel::utilization() const noexcept {
  Time now = loop_.now();
  if (now <= window_start_) return 0.0;
  Duration elapsed = now - window_start_;
  Duration busy = 0;
  for (const Core& c : cores_) {
    Duration b = c.busy_ns;
    if (c.free_at > now) {
      Duration future = c.free_at - now;
      b = b > future ? b - future : 0;
    }
    busy += std::min(Duration(elapsed), b);
  }
  return std::min(1.0, double(busy) / double(elapsed * cores_.size()));
}

void CpuModel::reset_stats() noexcept {
  window_start_ = loop_.now();
  for (Core& c : cores_) {
    c.busy_ns = 0;
    c.items = 0;
    // If the core is mid-item, the remaining in-flight work belongs to
    // the new window.
    if (c.free_at > window_start_) c.busy_ns = c.free_at - window_start_;
  }
  steals_ = 0;
}

void CpuModel::register_metrics(MetricRegistry& registry,
                                const std::string& node) {
  registry.gauge(node, "cpu.utilization", [this] { return utilization(); });
  registry.counter(node, "cpu.busy_ns",
                   [this] { return std::uint64_t(busy_ns()); });
  registry.counter(node, "cpu.items", [this] { return items(); });
  if (cores_.size() > 1) {
    for (unsigned c = 0; c < cores_.size(); ++c) {
      std::string prefix = "cpu.core" + std::to_string(c);
      registry.counter(node, prefix + ".busy_ns", [this, c] {
        return std::uint64_t(cores_[c].busy_ns);
      });
      registry.counter(node, prefix + ".items",
                       [this, c] { return cores_[c].items; });
    }
    registry.counter(node, "cpu.steal", [this] { return steals_; });
  }
  registry.on_reset([this] { reset_stats(); });
}

}  // namespace ncache::sim
