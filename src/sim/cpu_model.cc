#include "sim/cpu_model.h"

#include <algorithm>

#include "common/metrics.h"

namespace ncache::sim {

void CpuModel::submit(Duration cost, InlineCallback done) {
  Time start = std::max(loop_.now(), free_at_);
  Time finish = start + cost;
  free_at_ = finish;
  // Clip accounting to the current measurement window: work queued before
  // reset_stats() but finishing after it counts only its in-window part.
  Time acct_start = std::max(start, window_start_);
  if (finish > acct_start) busy_ns_ += finish - acct_start;
  ++items_;
  if (done) {
    loop_.schedule_at(finish, std::move(done));
  }
}

double CpuModel::utilization() const noexcept {
  Time now = loop_.now();
  if (now <= window_start_) return 0.0;
  Duration elapsed = now - window_start_;
  // busy_ns_ may exceed elapsed transiently when queued work extends past
  // `now`; clamp for reporting. Count only busy time already in the past.
  Duration busy = busy_ns_;
  if (free_at_ > now) {
    Duration future = free_at_ - now;
    busy = busy > future ? busy - future : 0;
  }
  return std::min(1.0, double(busy) / double(elapsed));
}

void CpuModel::reset_stats() noexcept {
  busy_ns_ = 0;
  items_ = 0;
  window_start_ = loop_.now();
  // If the CPU is mid-item, the remaining in-flight work belongs to the new
  // window.
  if (free_at_ > window_start_) busy_ns_ = free_at_ - window_start_;
}

void CpuModel::register_metrics(MetricRegistry& registry,
                                const std::string& node) {
  registry.gauge(node, "cpu.utilization", [this] { return utilization(); });
  registry.counter(node, "cpu.busy_ns",
                   [this] { return std::uint64_t(busy_ns_); });
  registry.counter(node, "cpu.items", [this] { return items_; });
  registry.on_reset([this] { reset_stats(); });
}

}  // namespace ncache::sim
