// Calibrated CPU/network cost constants for the simulated testbed.
//
// The paper's testbed (§5.2): Pentium III 1 GHz hosts, Intel Pro/1000 GbE
// NICs with checksum offload enabled, NetGear gigabit switch, storage server
// with 4 IDE disks in RAID-0. The constants below reproduce that era's
// resource balance:
//
//  * Copy cost ~3.2 ns/byte: a P-III memcpy is memory-bound; with
//    ~600 MB/s effective SDRAM bandwidth and two bus crossings per copied
//    byte (read + write), sustained copy bandwidth is ~300 MB/s.
//  * Per-packet stack cost ~6 us: interrupt + driver + IP/UDP processing
//    per 1500-byte frame on a 1 GHz core (≈6000 cycles), consistent with
//    early-2000s measurements of Linux 2.4.
//  * Checksum ~1.5 ns/byte when computed on the CPU; the testbed offloads
//    it to the NIC, so it is charged only when offload is disabled
//    (ablation benches flip this).
//
// All benches read these constants from one place so calibration changes
// are global and auditable.
#pragma once

#include <cstdint>

#include "sim/event_loop.h"

namespace ncache::sim {

struct CostModel {
  // --- per-byte costs (ns/byte) -------------------------------------------
  /// Physical memcpy of payload across a module boundary.
  double copy_ns_per_byte = 3.2;
  /// Internet checksum when computed in software.
  double checksum_ns_per_byte = 1.5;
  /// Touching payload for encryption-free "processing" (unused by default).
  double touch_ns_per_byte = 0.0;

  // --- per-packet costs (ns) ----------------------------------------------
  /// Driver + interrupt + IP/UDP/TCP header processing per wire frame,
  /// transmit side.
  Duration packet_tx_ns = 5'600;
  /// Same, receive side.
  Duration packet_rx_ns = 5'600;
  /// TCP frames cost more than UDP frames per packet (state machine,
  /// ACK clocking, timers): §5.5 "the per-packet overhead of HTTP is
  /// higher than that of NFS because HTTP runs on TCP".
  double tcp_packet_factor = 1.4;

  // --- per-request costs (ns) ---------------------------------------------
  /// Server daemon work per NFS/HTTP request independent of size
  /// (decode, file-handle lookup, scheduling).
  Duration request_ns = 30'000;

  /// TCP connection setup/teardown work (socket allocation, accept,
  /// FIN handling) — dominant for HTTP/1.0-style one-request connections.
  Duration tcp_connection_ns = 70'000;

  // --- NCache-specific overheads (ns) --------------------------------------
  /// Egress substitution of a cached chain for one wire frame
  /// (hash lookup + pointer splice) — §5.4 "packet substitution".
  Duration ncache_substitute_ns = 1'200;
  /// Cache-management work per request (insert/LRU/remap bookkeeping).
  Duration ncache_manage_ns = 3'500;
  /// Logical copy of one key across a module boundary.
  Duration logical_copy_ns = 120;

  // --- SMP (multi-core server) costs ---------------------------------------
  /// Handing a logically-copied buffer from the core that owns its NCache
  /// partition to the core serving the request: cross-core cache-line
  /// transfer + reference hand-off. Only charged when the two differ.
  Duration cross_core_handoff_ns = 1'500;
  /// Backlog (ns of queued work) beyond which an idle core steals a
  /// steered submission; 0 keeps RSS placement strict.
  Duration cpu_steal_threshold_ns = 0;

  // --- link parameters ------------------------------------------------------
  /// Gigabit Ethernet payload rate.
  std::uint64_t link_bandwidth_bps = 1'000'000'000;
  /// Per-frame wire overhead: preamble(8) + FCS(4) + IFG(12) + MAC(14).
  std::uint32_t frame_overhead_bytes = 38;
  /// One-way propagation + switch store-and-forward latency.
  Duration link_latency_ns = 10'000;

  // --- NIC ------------------------------------------------------------------
  /// Intel Pro/1000 checksum offload (paper default: on).
  bool checksum_offload = true;

  // --- disk (per spindle; 4x RAID-0 in the testbed) -------------------------
  /// IBM DTLA-307075-class IDE disk: ~35 MB/s media rate.
  std::uint64_t disk_bandwidth_bps = 280'000'000;
  /// Average positioning time for a non-sequential access.
  Duration disk_seek_ns = 8'500'000;
  /// Short reposition within the near-sequential band (queued/elevator
  /// requests slightly out of order still stream off the platter).
  Duration disk_near_seek_ns = 600'000;
  /// |offset - head| below this counts as near-sequential.
  std::uint64_t disk_near_band_bytes = 1 << 20;
  /// Fixed per-command overhead (controller + DMA setup).
  Duration disk_command_ns = 120'000;

  // --- storage-host disk I/O CPU costs ---------------------------------------
  /// IDE-era block I/O burns host CPU (interrupt handling, bounce
  /// buffers, the Promise controller's driver): fixed per I/O plus
  /// per byte. Charged to the storage server's CPU, this is what makes
  /// the all-miss workload saturate the storage node (Fig 4).
  Duration disk_io_cpu_ns = 20'000;
  double disk_io_cpu_ns_per_byte = 0.55;

  Duration copy_cost(std::size_t bytes) const noexcept {
    return static_cast<Duration>(copy_ns_per_byte * double(bytes));
  }
  Duration checksum_cost(std::size_t bytes) const noexcept {
    return static_cast<Duration>(checksum_ns_per_byte * double(bytes));
  }
};

/// The default, paper-calibrated model.
inline const CostModel& default_cost_model() {
  static const CostModel m{};
  return m;
}

}  // namespace ncache::sim
