// SMP CPU model: K FIFO cores with RSS-style flow steering and
// utilization accounting.
//
// Work is submitted with a cost in simulated nanoseconds; each core
// executes its items in order and invokes the completion callback when the
// item finishes. Utilization over a measurement window is busy-time /
// (elapsed * cores), which for K=1 is exactly how the paper reports "CPU
// utilization ratio"; a K=1 model is byte-identical to the historical
// single-core implementation (same event times, same accounting).
//
// Core selection mirrors how a pass-through server actually spreads load:
//
//   * steer(flow_hash) — receive-side-scaling: the hash of a flow's
//     4-tuple (or an FHO key) picks the core, so one flow's requests stay
//     on one core. Returns core 0 when RSS is disabled or K == 1.
//   * submit_on(core, ...) — explicit placement (per-core daemon shards).
//   * submit(...)/charge(...) with no core run on the *current* core: while
//     a completion callback (or the coroutine it resumes) executes, the
//     model remembers which core it is running on, so fire-and-forget
//     charge() costs from nested code (copy engines, checksum offload
//     paths) are attributed to the core actually doing the work rather
//     than defaulting to core 0. Outside any completion context, core 0.
//   * A deterministic steal rule models the scheduler pulling work off a
//     backlogged core: when the steered core's backlog exceeds
//     steal_threshold and another core is idle, the item runs there
//     instead (counted in steals(), surfaced as "cpu.steal").
#pragma once

#include <cstdint>
#include <functional>
#include <deque>
#include <string>
#include <vector>

#include "common/task.h"
#include "sim/event_loop.h"

namespace ncache {
class MetricRegistry;
}

namespace ncache::sim {

class CpuModel {
 public:
  static constexpr unsigned kMaxCores = 64;
  /// current_core() outside any completion context.
  static constexpr unsigned kNoCore = ~0u;

  CpuModel(EventLoop& loop, std::string name, unsigned cores = 1)
      : loop_(loop), name_(std::move(name)) {
    set_cores(cores);
  }

  CpuModel(const CpuModel&) = delete;
  CpuModel& operator=(const CpuModel&) = delete;

  /// Reshapes the model to `k` cores. Only valid while the CPU is cold
  /// (no items submitted yet) — topologies fix the core count at build.
  void set_cores(unsigned k);
  unsigned cores() const noexcept { return unsigned(cores_.size()); }

  /// RSS: maps a flow hash to a core. Identity-stable for the lifetime of
  /// the run; returns 0 when K == 1 or RSS steering is disabled.
  unsigned steer(std::uint64_t flow_hash) const noexcept;

  /// Disabling RSS forces steer() to core 0 (the "everything on one core"
  /// ablation; K>1 with RSS off is byte-identical to K=1).
  void set_rss(bool enabled) noexcept { rss_ = enabled; }
  bool rss() const noexcept { return rss_; }

  /// Backlog (in ns) beyond which a submission may be stolen by an idle
  /// core; 0 disables stealing.
  void set_steal_threshold(Duration ns) noexcept { steal_threshold_ = ns; }

  /// Enqueues `cost` ns of work on the current-context core (core 0 when
  /// outside a completion); `done` fires when the core completes it.
  void submit(Duration cost, InlineCallback done) {
    submit_on(context_core(), cost, std::move(done));
  }

  /// Enqueues on a specific core (subject to the steal rule).
  void submit_on(unsigned core, Duration cost, InlineCallback done);

  /// Charges work with no completion callback (cost still serializes on
  /// the core and counts toward utilization; used for bookkeeping-style
  /// costs whose completion nobody waits on). Attributed to the
  /// current-context core — the core whose completion callback is running
  /// — not unconditionally to core 0.
  void charge(Duration cost) { submit_on(context_core(), cost, nullptr); }
  void charge_on(unsigned core, Duration cost) {
    submit_on(core, cost, nullptr);
  }

  /// Awaitable variant for coroutine code:
  ///   co_await cpu.run(cost);          // current-context core
  ///   co_await cpu.run_on(core, cost); // explicit core
  /// The coroutine resumes *inside* that core's completion context, so
  /// synchronous work after the co_await (up to the next suspension)
  /// attributes its charges to the same core.
  auto run_on(unsigned core, Duration cost) {
    struct Awaiter {
      CpuModel& cpu;
      unsigned core;
      Duration cost;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        cpu.submit_on(core, cost, [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, core, cost};
  }
  auto run(Duration cost) { return run_on(context_core(), cost); }

  /// The core whose completion callback is currently executing, or
  /// kNoCore outside any completion context.
  unsigned current_core() const noexcept { return current_core_; }

  /// RAII core-context override for synchronous stretches that charge CPU
  /// outside a completion callback (e.g. a daemon doing copy work for a
  /// steered request after resuming from a disk await).
  class CoreGuard {
   public:
    CoreGuard(CpuModel& cpu, unsigned core) noexcept
        : cpu_(cpu), prev_(cpu.current_core_) {
      cpu_.current_core_ = core;
    }
    ~CoreGuard() { cpu_.current_core_ = prev_; }
    CoreGuard(const CoreGuard&) = delete;
    CoreGuard& operator=(const CoreGuard&) = delete;

   private:
    CpuModel& cpu_;
    unsigned prev_;
  };

  /// Busy fraction since the last reset_stats() across all cores, in
  /// [0,1] (busy time past `now`, summed over cores, over K * elapsed).
  double utilization() const noexcept;
  /// Same for one core.
  double core_utilization(unsigned core) const noexcept;

  Duration busy_ns() const noexcept;          ///< summed over cores
  std::uint64_t items() const noexcept;       ///< summed over cores
  Duration core_busy_ns(unsigned c) const noexcept { return cores_[c].busy_ns; }
  std::uint64_t core_items(unsigned c) const noexcept { return cores_[c].items; }
  std::uint64_t steals() const noexcept { return steals_; }
  const std::string& name() const noexcept { return name_; }

  /// Time at which all currently-queued work (on every core) completes.
  Time free_at() const noexcept;
  Time core_free_at(unsigned c) const noexcept { return cores_[c].free_at; }

  /// Starts a fresh measurement window at the current simulated time.
  void reset_stats() noexcept;

  /// Publishes cpu.utilization / cpu.busy_ns / cpu.items under `node` and
  /// hooks reset_stats() into the registry's measurement-window reset.
  /// SMP models (K > 1) additionally publish cpu.coreN.busy_ns /
  /// cpu.coreN.items per core and the cpu.steal counter.
  void register_metrics(MetricRegistry& registry, const std::string& node);

 private:
  struct Core {
    Time free_at = 0;
    Duration busy_ns = 0;
    std::uint64_t items = 0;
    /// Completion callbacks in finish order (per-core finish times are
    /// monotone, so a FIFO matches the schedule order exactly).
    std::deque<InlineCallback> done_q;
  };

  unsigned context_core() const noexcept {
    return current_core_ == kNoCore ? 0 : current_core_;
  }
  void dispatch_done(unsigned core);

  EventLoop& loop_;
  std::string name_;
  std::vector<Core> cores_;
  Time window_start_ = 0;
  unsigned current_core_ = kNoCore;
  bool rss_ = true;
  Duration steal_threshold_ = 0;
  std::uint64_t steals_ = 0;
  std::uint64_t submitted_ = 0;  ///< total ever; guards set_cores()
};

}  // namespace ncache::sim
