// Single-core FIFO CPU model with utilization accounting.
//
// Work is submitted with a cost in simulated nanoseconds; the CPU executes
// items in order and invokes the completion callback when the item
// finishes. Utilization over a measurement window is busy-time / elapsed,
// which is exactly how the paper reports "CPU utilization ratio".
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/task.h"
#include "sim/event_loop.h"

namespace ncache {
class MetricRegistry;
}

namespace ncache::sim {

class CpuModel {
 public:
  CpuModel(EventLoop& loop, std::string name)
      : loop_(loop), name_(std::move(name)) {}

  CpuModel(const CpuModel&) = delete;
  CpuModel& operator=(const CpuModel&) = delete;

  /// Enqueues `cost` ns of work; `done` fires when the CPU completes it.
  void submit(Duration cost, InlineCallback done);

  /// Charges work with no completion callback (cost still serializes and
  /// counts toward utilization; used for bookkeeping-style costs whose
  /// completion nobody waits on).
  void charge(Duration cost) { submit(cost, nullptr); }

  /// Awaitable variant for coroutine code:
  ///   co_await cpu.run(cost);
  auto run(Duration cost) {
    struct Awaiter {
      CpuModel& cpu;
      Duration cost;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        cpu.submit(cost, [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, cost};
  }

  /// Busy fraction since the last reset_stats(), in [0,1]. If the window
  /// has zero length, returns 0.
  double utilization() const noexcept;

  Duration busy_ns() const noexcept { return busy_ns_; }
  std::uint64_t items() const noexcept { return items_; }
  const std::string& name() const noexcept { return name_; }

  /// Time at which all currently-queued work completes.
  Time free_at() const noexcept { return free_at_; }

  /// Starts a fresh measurement window at the current simulated time.
  void reset_stats() noexcept;

  /// Publishes cpu.utilization / cpu.busy_ns / cpu.items under `node` and
  /// hooks reset_stats() into the registry's measurement-window reset.
  void register_metrics(MetricRegistry& registry, const std::string& node);

 private:
  EventLoop& loop_;
  std::string name_;
  Time free_at_ = 0;
  Duration busy_ns_ = 0;
  std::uint64_t items_ = 0;
  Time window_start_ = 0;
};

}  // namespace ncache::sim
