#include "sim/event_loop.h"

namespace ncache::sim {

void EventLoop::schedule_at(Time at, std::function<void()> fn) {
  if (at < now_) at = now_;
  queue_.push(Event{at, next_seq_++, std::move(fn)});
}

bool EventLoop::step() {
  if (queue_.empty()) return false;
  // priority_queue::top returns const&; move out via const_cast is the
  // standard workaround and safe because we pop immediately.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.at;
  ++dispatched_;
  if (ev.fn) ev.fn();  // null fn = pure time marker
  return true;
}

std::size_t EventLoop::run() {
  std::size_t n = 0;
  while (step()) ++n;
  return n;
}

std::size_t EventLoop::run_until(Time deadline) {
  std::size_t n = 0;
  while (!queue_.empty() && queue_.top().at <= deadline) {
    step();
    ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

}  // namespace ncache::sim
