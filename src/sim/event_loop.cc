#include "sim/event_loop.h"

#include <atomic>

namespace ncache::sim {

namespace {
std::atomic<std::uint64_t> g_process_dispatched{0};
}  // namespace

std::uint64_t EventLoop::process_dispatched() noexcept {
  return g_process_dispatched.load(std::memory_order_relaxed);
}

bool EventLoop::step() {
  // Dispatch in place: the unlinked node is stable storage, so the
  // callback runs without being moved out first. Schedules issued from
  // inside it relink other nodes only; recycle() then destroys the
  // callback and returns the node to the pool.
  TimerWheel::Node* n = wheel_.pop_node();
  if (!n) return false;
  now_ = n->e.at;
  ++dispatched_;
  g_process_dispatched.fetch_add(1, std::memory_order_relaxed);
  if (n->e.fn) n->e.fn();  // null fn = pure time marker
  wheel_.recycle(n);
  return true;
}

std::size_t EventLoop::run() {
  std::size_t n = 0;
  while (step()) ++n;
  return n;
}

std::size_t EventLoop::run_until(Time deadline) {
  std::size_t n = 0;
  // peek() may advance the wheel cursor past `deadline`; the wheel's ready
  // batch stays valid for schedules landing in (now, batch time), so this
  // is safe even when we stop short of the next event.
  while (const TimerWheel::Entry* next = wheel_.peek()) {
    if (next->at > deadline) break;
    step();
    ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

std::size_t EventLoop::run_before(Time horizon) {
  std::size_t n = 0;
  while (const TimerWheel::Entry* next = wheel_.peek()) {
    if (next->at >= horizon) break;
    step();
    ++n;
  }
  return n;
}

}  // namespace ncache::sim
