// InlineCallback — the event loop's allocation-free callback slot.
//
// std::function<void()> must be copyable, which forces it to heap-box any
// callable bigger than its ~16-byte SSO; every scheduling call site in this
// repo captures a shared_ptr plus a word or two, so the old event loop paid
// one malloc per scheduled event. InlineCallback is move-only and carries
// 48 bytes of inline storage — enough for every callback in src/sim,
// src/proto and the coroutine awaiters — so the schedule/dispatch hot path
// never touches the allocator. Callables that are larger than the inline
// buffer (or whose move can throw) still work; they fall back to a
// heap-boxed pointer, preserving std::function's generality.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace ncache::sim {

class InlineCallback {
 public:
  /// Inline storage size. 48 bytes holds two shared_ptrs plus two words —
  /// comfortably above the repo's largest scheduling capture.
  static constexpr std::size_t kInlineBytes = 48;

  InlineCallback() = default;
  InlineCallback(std::nullptr_t) {}

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, InlineCallback> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  InlineCallback(F&& f) {
    using D = std::remove_cvref_t<F>;
    if constexpr (fits_inline<D>) {
      ::new (storage_) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (storage_) D*(new D(std::forward<F>(f)));
      ops_ = &kBoxedOps<D>;
    }
  }

  InlineCallback(InlineCallback&& o) noexcept : ops_(o.ops_) {
    if (ops_) relocate_from(o);
    o.ops_ = nullptr;
  }

  InlineCallback& operator=(InlineCallback&& o) noexcept {
    if (this != &o) {
      if (ops_ && ops_->destroy) ops_->destroy(storage_);
      ops_ = o.ops_;
      if (ops_) relocate_from(o);
      o.ops_ = nullptr;
    }
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() {
    if (ops_ && ops_->destroy) ops_->destroy(storage_);
  }

  void operator()() { ops_->invoke(storage_); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-constructs dst from src, then destroys src; null means the
    /// callable relocates by plain memcpy (trivially copyable inline
    /// callables and the boxed pointer — i.e. every hot-path case).
    /// noexcept by construction: throwing-move callables take the boxed
    /// path.
    void (*relocate)(void* dst, void* src) noexcept;
    /// Null when destruction is a no-op (trivially destructible inline
    /// callables).
    void (*destroy)(void*) noexcept;
  };

  void relocate_from(InlineCallback& o) noexcept {
    if (ops_->relocate) {
      ops_->relocate(storage_, o.storage_);
    } else {
      __builtin_memcpy(storage_, o.storage_, kInlineBytes);
    }
  }

  template <typename D>
  static constexpr bool fits_inline =
      sizeof(D) <= kInlineBytes && alignof(D) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<D>;

  template <typename D>
  static constexpr Ops kInlineOps{
      [](void* p) { (*std::launder(static_cast<D*>(p)))(); },
      std::is_trivially_copyable_v<D>
          ? nullptr
          : +[](void* dst, void* src) noexcept {
              D* s = std::launder(static_cast<D*>(src));
              ::new (dst) D(std::move(*s));
              s->~D();
            },
      std::is_trivially_destructible_v<D>
          ? nullptr
          : +[](void* p) noexcept { std::launder(static_cast<D*>(p))->~D(); },
  };

  template <typename D>
  static constexpr Ops kBoxedOps{
      [](void* p) { (**std::launder(static_cast<D**>(p)))(); },
      nullptr,  // the boxed pointer itself relocates by memcpy
      [](void* p) noexcept { delete *std::launder(static_cast<D**>(p)); },
  };

  // ops_ precedes the payload so the null/dispatch check shares a cache
  // line with whatever header fields the containing object keeps first.
  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) std::byte storage_[kInlineBytes];
};

}  // namespace ncache::sim
