// Compatibility aliases: node construction and cabling moved to
// src/topo/node.h when the topology Instantiator became the one place
// that builds simulated hosts. Include "topo/node.h" in new code.
#pragma once

#include "topo/node.h"

namespace ncache::testbed {

using topo::make_wired_node;
using topo::NicSpec;
using topo::Node;
using topo::set_cables;

}  // namespace ncache::testbed
