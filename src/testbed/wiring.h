// Node construction and cabling shared by every testbed flavour.
//
// Testbed (one pass-through server) and cluster::ClusterTestbed (N
// replicas behind a load balancer) build the same kind of simulated host
// and wire it into the same kind of switch; the helpers here keep the
// switch/link setup — and the cables-first crash discipline — in one
// place instead of duplicated per topology.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "netbuf/copy_engine.h"
#include "proto/stack.h"
#include "proto/switch.h"
#include "sim/cpu_model.h"

namespace ncache {
class MetricRegistry;
}

namespace ncache::testbed {

/// One simulated host: CPU + copy engine + network stack.
struct Node {
  Node(sim::EventLoop& loop, const sim::CostModel& costs,
       std::shared_ptr<proto::AddressBook> book, std::string name)
      : cpu(loop, name + ".cpu"),
        copier(cpu, costs),
        stack(loop, cpu, copier, costs, name, std::move(book)) {}

  sim::CpuModel cpu;
  netbuf::CopyEngine copier;
  proto::NetworkStack stack;

  /// Registers this host's CPU, copy engine and stack/NIC metrics under
  /// one node label.
  void register_metrics(MetricRegistry& registry, const std::string& node) {
    cpu.register_metrics(registry, node);
    copier.register_metrics(registry, node);
    stack.register_metrics(registry, node);
  }
};

/// One NIC of a node under construction.
struct NicSpec {
  proto::MacAddr mac = 0;
  proto::Ipv4Addr ip = 0;
};

/// Builds a Node, adds its NICs and cables each into `ether`.
std::unique_ptr<Node> make_wired_node(sim::EventLoop& loop,
                                      const sim::CostModel& costs,
                                      std::shared_ptr<proto::AddressBook> book,
                                      proto::EthernetSwitch& ether,
                                      std::string name,
                                      const std::vector<NicSpec>& nics);

/// Admin-up/-down both directions of every cable behind `stack`'s NICs.
/// Crash paths drop cables before tearing the node down so frames already
/// queued by dying daemons vanish on the wire instead of racing the
/// restarted instance.
void set_cables(proto::EthernetSwitch& ether, proto::NetworkStack& stack,
                bool up);

}  // namespace ncache::testbed
