// The paper's 4-node testbed (§5.2) as a preset over the topology API:
//
//   storage (P-III 1 GHz, 4-disk RAID-0, iSCSI target)
//      |
//   [NetGear GbE switch] -- clients (x2, P-III 1 GHz)
//      |
//   app server
//   (NFS / kHTTPd in one of the three modes,
//    iSCSI initiator, SimpleFS + buffer cache,
//    optional NCache module; 1 or 2 NICs)
//
// Testbed is a thin facade: it builds topo::presets::single_server and
// materializes it with topo::World — same-seed behavior is byte-identical
// with the historical hand-wired constructor (tests/topology_parity_test
// proves it). Tests, examples and every bench build on it; arbitrary
// graphs (multi-rack, lossy WAN trunks) go through topo::World directly.
//
// Metric node ids follow the unified topology scheme: "server0",
// "storage0", "client0".. — identical JSON keys across single-server and
// cluster worlds.
#pragma once

#include <memory>

#include "topo/instantiator.h"
#include "topo/presets.h"

namespace ncache::testbed {

using Node = topo::Node;

struct TestbedConfig {
  core::PassMode mode = core::PassMode::Original;

  // Topology.
  int server_nics = 1;  ///< 1 (Fig 5a) or 2 (Fig 5b)
  int client_count = 2;

  // Storage volume.
  std::uint64_t volume_blocks = 64 * 1024;  ///< 256 MB default
  std::uint32_t inode_count = 16 * 1024;

  // App-server caches.
  std::size_t fs_cache_blocks = 4096;       ///< 16 MB buffer cache
  std::size_t fs_readahead_blocks = 8;      ///< tuned per experiment (§5.4)
  std::size_t ncache_budget_bytes = 192u << 20;

  // §6 extension: wire-format block cache on the storage server.
  bool wire_format_target = false;
  std::size_t wire_target_budget_bytes = 96u << 20;

  // NFS.
  int nfs_daemons = 8;

  // Overload-control spine (all gates off by default — see WorldConfig).
  topo::WorldConfig::OverloadConfig overload;

  sim::CostModel costs{};
};

class Testbed {
 public:
  explicit Testbed(TestbedConfig config);

  /// Phase 1 (before start): populate the storage volume directly.
  fs::FsImageBuilder& image() { return world_.image(); }

  /// Phase 2: brings the system up — iSCSI login, fs mount, NFS server
  /// start. Runs the event loop until ready.
  void start_nfs() { world_.start_nfs(); }
  /// Same bring-up without an NFS server (kHTTPd attaches separately).
  void start_base() { world_.start_base(); }

  sim::EventLoop& loop() noexcept { return world_.loop(); }
  const TestbedConfig& config() const noexcept { return config_; }
  const sim::CostModel& costs() const noexcept { return config_.costs; }

  /// The materialized world behind this preset — fault plans, per-node
  /// cables and arbitrary-graph features live here.
  topo::World& world() noexcept { return world_; }

  Node& storage_node() noexcept { return world_.storage_node(); }
  Node& server_node() noexcept { return *world_.server(0).node; }
  Node& client_node(int i) { return world_.client_node(i); }
  int client_count() const noexcept { return world_.client_count(); }

  blockdev::BlockStore& store() noexcept { return world_.store(); }
  iscsi::IscsiTarget& target() noexcept { return world_.target(); }
  iscsi::IscsiInitiator& initiator() noexcept {
    return *world_.server(0).initiator;
  }
  fs::SimpleFs& fs() noexcept { return *world_.server(0).fs; }
  nfs::NfsServer& nfs_server() { return *world_.server(0).nfs; }
  core::NCacheModule* ncache() noexcept {
    return world_.server(0).ncache.get();
  }
  core::WireFormatTarget* wire_target() noexcept {
    return world_.wire_target();
  }
  proto::EthernetSwitch& ether_switch() noexcept { return world_.ether(); }

  /// Per-client NFS client handle. Client i binds to server NIC i %
  /// server_nics, spreading load across both NICs in the 2-NIC setup.
  nfs::NfsClient& nfs_client(int i) { return world_.nfs_client(i); }

  proto::Ipv4Addr server_ip(int nic = 0) const {
    return world_.server_ip(0, nic);
  }
  proto::Ipv4Addr client_ip(int i) const { return world_.client_ip(i); }
  static constexpr proto::Ipv4Addr kStorageIp = topo::World::kStorageIp;

  /// The testbed-wide metric registry. Every node/subsystem registers at
  /// construction (the NFS server at start_nfs); externally-attached
  /// servers (kHTTPd) register themselves via KHttpd::register_metrics.
  MetricRegistry& metrics() noexcept { return world_.metrics(); }
  const MetricRegistry& metrics() const noexcept { return world_.metrics(); }

  /// Resets every utilization window / counter for a measurement interval
  /// (fans out through the registry's reset hooks).
  void reset_stats() { world_.reset_stats(); }

  // ---- fault scenarios -------------------------------------------------------
  /// Power-fails the pass-through server (cables first, then sessions,
  /// daemons and caches — see topo::World::crash_server).
  void crash_server() { world_.crash_server(0); }
  /// Brings a crashed server back asynchronously. Safe to call from
  /// fault-plan callbacks while the loop is running.
  void restart_server() { world_.restart_server(0); }
  bool server_crashed() const noexcept { return world_.server_crashed(0); }

  /// Aggregate measurement snapshot over the window since reset_stats().
  /// A thin typed view over the registry — every field is readable by
  /// name from metrics() / its JSON export; this struct exists for
  /// ergonomic access from tests and benches.
  struct Snapshot {
    double elapsed_s = 0;
    double server_cpu = 0;   ///< utilization [0,1]
    double storage_cpu = 0;
    double client_cpu_max = 0;
    double server_link_util = 0;  ///< max across server NIC tx links
    std::uint64_t server_data_copies = 0;
    std::uint64_t server_logical_copies = 0;
    std::uint64_t nfs_requests = 0;
    std::uint64_t read_bytes_served = 0;
  };
  Snapshot snapshot(sim::Time window_start) const;

 private:
  static topo::WorldConfig world_config(const TestbedConfig& config);

  TestbedConfig config_;
  topo::World world_;
};

}  // namespace ncache::testbed
