// The paper's 4-node testbed (§5.2), assembled:
//
//   storage (P-III 1 GHz, 4-disk RAID-0, iSCSI target)
//      |
//   [NetGear GbE switch] -- clients (x2, P-III 1 GHz)
//      |
//   app server
//   (NFS / kHTTPd in one of the three modes,
//    iSCSI initiator, SimpleFS + buffer cache,
//    optional NCache module; 1 or 2 NICs)
//
// The testbed owns all nodes and wiring; tests, examples and every bench
// build on it. Metric snapshots expose per-node CPU utilization, link
// utilization, copy counts and cache stats — everything the paper's
// figures report.
#pragma once

#include <memory>

#include "blockdev/block_store.h"
#include "common/metrics.h"
#include "core/ncache_module.h"
#include "core/wire_target.h"
#include "fs/image_builder.h"
#include "fs/simple_fs.h"
#include "iscsi/initiator.h"
#include "iscsi/target.h"
#include "nfs/client.h"
#include "nfs/server.h"
#include "proto/switch.h"
#include "testbed/wiring.h"

namespace ncache::testbed {

struct TestbedConfig {
  core::PassMode mode = core::PassMode::Original;

  // Topology.
  int server_nics = 1;  ///< 1 (Fig 5a) or 2 (Fig 5b)
  int client_count = 2;

  // Storage volume.
  std::uint64_t volume_blocks = 64 * 1024;  ///< 256 MB default
  std::uint32_t inode_count = 16 * 1024;

  // App-server caches.
  std::size_t fs_cache_blocks = 4096;       ///< 16 MB buffer cache
  std::size_t fs_readahead_blocks = 8;      ///< tuned per experiment (§5.4)
  std::size_t ncache_budget_bytes = 192u << 20;

  // §6 extension: wire-format block cache on the storage server.
  bool wire_format_target = false;
  std::size_t wire_target_budget_bytes = 96u << 20;

  // NFS.
  int nfs_daemons = 8;

  sim::CostModel costs{};
};

class Testbed {
 public:
  explicit Testbed(TestbedConfig config);

  /// Phase 1 (before start): populate the storage volume directly.
  fs::FsImageBuilder& image() { return *image_; }

  /// Phase 2: brings the system up — iSCSI login, fs mount, NFS server
  /// start. Runs the event loop until ready.
  void start_nfs();
  /// Same bring-up without an NFS server (kHTTPd attaches separately).
  void start_base();

  sim::EventLoop& loop() noexcept { return loop_; }
  const TestbedConfig& config() const noexcept { return config_; }
  const sim::CostModel& costs() const noexcept { return config_.costs; }

  Node& storage_node() noexcept { return *storage_; }
  Node& server_node() noexcept { return *server_; }
  Node& client_node(int i) { return *clients_.at(i); }
  int client_count() const noexcept { return int(clients_.size()); }

  blockdev::BlockStore& store() noexcept { return *store_; }
  iscsi::IscsiTarget& target() noexcept { return *target_; }
  iscsi::IscsiInitiator& initiator() noexcept { return *initiator_; }
  fs::SimpleFs& fs() noexcept { return *fs_; }
  nfs::NfsServer& nfs_server() { return *nfs_server_; }
  core::NCacheModule* ncache() noexcept { return ncache_.get(); }
  core::WireFormatTarget* wire_target() noexcept { return wire_target_.get(); }
  proto::EthernetSwitch& ether_switch() noexcept { return *switch_; }

  /// Per-client NFS client handle. Client i binds to server NIC i %
  /// server_nics, spreading load across both NICs in the 2-NIC setup.
  nfs::NfsClient& nfs_client(int i) { return *nfs_clients_.at(i); }

  proto::Ipv4Addr server_ip(int nic = 0) const;
  proto::Ipv4Addr client_ip(int i) const;
  static constexpr proto::Ipv4Addr kStorageIp = proto::make_ipv4(10, 0, 0, 1);

  /// The testbed-wide metric registry. Every node/subsystem registers at
  /// construction (the NFS server at start_nfs); externally-attached
  /// servers (kHTTPd) register themselves via KHttpd::register_metrics.
  MetricRegistry& metrics() noexcept { return metrics_; }
  const MetricRegistry& metrics() const noexcept { return metrics_; }

  /// Resets every utilization window / counter for a measurement interval
  /// (fans out through the registry's reset hooks).
  void reset_stats();

  // ---- fault scenarios -------------------------------------------------------
  /// Power-fails the pass-through server. Its cables drop first (frames
  /// already emitted by the dying daemons vanish on the wire instead of
  /// racing the restarted instance), then the iSCSI session is torn down
  /// without reconnect, the NFS daemons stop, and every server-side cache
  /// loses its contents — dirty blocks included. Metric registrations and
  /// counters survive the crash.
  void crash_server();
  /// Brings a crashed server back asynchronously: cables up, iSCSI
  /// re-login (parked commands replay), NFS daemons relaunched. Safe to
  /// call from fault-plan callbacks while the loop is running.
  void restart_server();
  bool server_crashed() const noexcept { return server_crashed_; }

  /// Aggregate measurement snapshot over the window since reset_stats().
  /// A thin typed view over the registry — every field is readable by
  /// name from metrics() / its JSON export; this struct exists for
  /// ergonomic access from tests and benches.
  struct Snapshot {
    double elapsed_s = 0;
    double server_cpu = 0;   ///< utilization [0,1]
    double storage_cpu = 0;
    double client_cpu_max = 0;
    double server_link_util = 0;  ///< max across server NIC tx links
    std::uint64_t server_data_copies = 0;
    std::uint64_t server_logical_copies = 0;
    std::uint64_t nfs_requests = 0;
    std::uint64_t read_bytes_served = 0;
  };
  Snapshot snapshot(sim::Time window_start) const;

 private:
  Task<void> restart_task();

  TestbedConfig config_;
  sim::EventLoop loop_;
  std::shared_ptr<proto::AddressBook> book_;
  std::unique_ptr<proto::EthernetSwitch> switch_;

  std::unique_ptr<Node> storage_;
  std::unique_ptr<Node> server_;
  std::vector<std::unique_ptr<Node>> clients_;

  std::unique_ptr<blockdev::BlockStore> store_;
  std::unique_ptr<fs::FsImageBuilder> image_;
  std::unique_ptr<iscsi::IscsiTarget> target_;
  std::unique_ptr<iscsi::IscsiInitiator> initiator_;
  std::unique_ptr<core::NCacheModule> ncache_;
  std::unique_ptr<core::WireFormatTarget> wire_target_;
  std::unique_ptr<fs::SimpleFs> fs_;
  std::unique_ptr<nfs::NfsServer> nfs_server_;
  std::vector<std::unique_ptr<nfs::NfsClient>> nfs_clients_;
  bool server_crashed_ = false;

  /// Declared last: sampling callbacks hold raw pointers into the members
  /// above, so the registry must never outlive them.
  MetricRegistry metrics_;
};

}  // namespace ncache::testbed
