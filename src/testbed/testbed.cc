#include "testbed/testbed.h"

namespace ncache::testbed {

topo::WorldConfig Testbed::world_config(const TestbedConfig& config) {
  topo::WorldConfig wc;
  wc.mode = config.mode;
  wc.volume_blocks = config.volume_blocks;
  wc.inode_count = config.inode_count;
  wc.fs_cache_blocks = config.fs_cache_blocks;
  wc.fs_readahead_blocks = config.fs_readahead_blocks;
  wc.ncache_budget_bytes = config.ncache_budget_bytes;
  wc.wire_format_target = config.wire_format_target;
  wc.wire_target_budget_bytes = config.wire_target_budget_bytes;
  wc.nfs_daemons = config.nfs_daemons;
  wc.overload = config.overload;
  wc.costs = config.costs;
  return wc;
}

Testbed::Testbed(TestbedConfig config)
    : config_(config),
      world_(topo::presets::single_server(config.server_nics,
                                          config.client_count),
             world_config(config)) {}

Testbed::Snapshot Testbed::snapshot(sim::Time window_start) const {
  // A typed view over the registry: every field below is the registry
  // value under the named (node, metric) label.
  const MetricRegistry& metrics = world_.metrics();
  Snapshot s;
  s.elapsed_s = double(world_.loop().now() - window_start) / 1e9;
  s.server_cpu = metrics.gauge_value("server0", "cpu.utilization");
  s.storage_cpu = metrics.gauge_value("storage0", "cpu.utilization");
  for (int i = 0; i < world_.client_count(); ++i) {
    s.client_cpu_max =
        std::max(s.client_cpu_max,
                 metrics.gauge_value("client" + std::to_string(i),
                                     "cpu.utilization"));
  }
  const auto& server = world_.server(0);
  for (std::size_t n = 0; n < server.node->stack.nic_count(); ++n) {
    s.server_link_util = std::max(
        s.server_link_util,
        metrics.gauge_value("server0",
                            "nic" + std::to_string(n) + ".tx.utilization"));
  }
  s.server_data_copies = metrics.counter_value("server0", "copy.data_ops");
  s.server_logical_copies =
      metrics.counter_value("server0", "copy.logical_ops");
  s.nfs_requests = metrics.counter_value("server0", "nfs.requests");
  s.read_bytes_served = metrics.counter_value("server0", "nfs.read_bytes");
  return s;
}

}  // namespace ncache::testbed
