#include "testbed/testbed.h"

#include "common/logging.h"
#include "netbuf/slab_cache.h"

namespace ncache::testbed {

using proto::make_ipv4;

proto::Ipv4Addr Testbed::server_ip(int nic) const {
  return make_ipv4(10, 0, 0, std::uint8_t(10 + nic));
}

proto::Ipv4Addr Testbed::client_ip(int i) const {
  return make_ipv4(10, 0, 0, std::uint8_t(100 + i));
}

Testbed::Testbed(TestbedConfig config) : config_(std::move(config)) {
  book_ = std::make_shared<proto::AddressBook>();
  switch_ = std::make_unique<proto::EthernetSwitch>(loop_, "switch",
                                                    config_.costs);

  storage_ = make_wired_node(loop_, config_.costs, book_, *switch_, "storage",
                             {{0x10, kStorageIp}});

  std::vector<NicSpec> server_nics;
  for (int n = 0; n < config_.server_nics; ++n) {
    server_nics.push_back({0x20 + std::uint64_t(n), server_ip(n)});
  }
  server_ = make_wired_node(loop_, config_.costs, book_, *switch_, "server",
                            server_nics);

  for (int i = 0; i < config_.client_count; ++i) {
    clients_.push_back(make_wired_node(loop_, config_.costs, book_, *switch_,
                                       "client" + std::to_string(i),
                                       {{0x30 + std::uint64_t(i), client_ip(i)}}));
  }

  store_ = std::make_unique<blockdev::BlockStore>(
      loop_, config_.costs, "raid0", config_.volume_blocks);
  image_ = std::make_unique<fs::FsImageBuilder>(*store_, config_.volume_blocks,
                                                config_.inode_count);
  target_ = std::make_unique<iscsi::IscsiTarget>(storage_->stack, *store_);
  if (config_.wire_format_target) {
    core::NetCentricCache::Config wc;
    wc.pool_budget_bytes = config_.wire_target_budget_bytes;
    wire_target_ =
        std::make_unique<core::WireFormatTarget>(storage_->stack, wc);
    wire_target_->attach(*target_);
  }
  initiator_ = std::make_unique<iscsi::IscsiInitiator>(
      server_->stack, server_ip(0), kStorageIp, /*target_id=*/0);

  switch (config_.mode) {
    case core::PassMode::Original:
      initiator_->set_payload_policy(iscsi::PayloadPolicy::Copy);
      break;
    case core::PassMode::NCache: {
      core::NetCentricCache::Config cc;
      cc.pool_budget_bytes = config_.ncache_budget_bytes;
      ncache_ = std::make_unique<core::NCacheModule>(server_->stack, cc);
      ncache_->attach_egress();
      ncache_->attach_initiator(*initiator_);
      break;
    }
    case core::PassMode::Baseline:
      initiator_->set_payload_policy(iscsi::PayloadPolicy::Junk);
      break;
  }

  fs_ = std::make_unique<fs::SimpleFs>(loop_, *initiator_,
                                       config_.fs_cache_blocks,
                                       config_.fs_readahead_blocks);

  // Register every subsystem built above; the NFS server joins in
  // start_nfs(), kHTTPd (attached externally) via its own
  // register_metrics. Registration order fixes JSON export order.
  metrics_.counter("sim", "clamped_events",
                   [this] { return loop_.clamped_events(); });
  metrics_.counter("sim", "netbuf.slab_hits",
                   [] { return netbuf::SlabCache::process().hits(); });
  metrics_.counter("sim", "netbuf.slab_misses",
                   [] { return netbuf::SlabCache::process().misses(); });
  server_->register_metrics(metrics_, "server");
  storage_->register_metrics(metrics_, "storage");
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    clients_[i]->register_metrics(metrics_, "client" + std::to_string(i));
  }
  store_->register_metrics(metrics_, "storage");
  fs_->cache().register_metrics(metrics_, "server");
  if (ncache_) ncache_->register_metrics(metrics_, "server");
  if (wire_target_) {
    wire_target_->cache().register_metrics(metrics_, "storage", "wire.cache");
  }
}

void Testbed::start_base() {
  if (!image_->finished()) image_->finish();
  target_->start();
  auto up_fn = [this]() -> Task<void> {
    bool ok = co_await initiator_->login();
    if (!ok) throw std::runtime_error("Testbed: iSCSI login failed");
    co_await fs_->mount();
  };
  sim::sync_wait(loop_, up_fn());
}

void Testbed::start_nfs() {
  start_base();
  nfs::NfsServer::Config sc;
  sc.mode = config_.mode;
  sc.daemons = config_.nfs_daemons;
  nfs_server_ = std::make_unique<nfs::NfsServer>(
      server_->stack, *fs_, sc, ncache_.get());
  nfs_server_->register_metrics(metrics_, "server");
  nfs_server_->start();

  for (int i = 0; i < config_.client_count; ++i) {
    nfs_clients_.push_back(std::make_unique<nfs::NfsClient>(
        clients_[std::size_t(i)]->stack, client_ip(i),
        server_ip(i % config_.server_nics), std::uint16_t(700 + i)));
    nfs_clients_.back()->register_metrics(metrics_,
                                          "client" + std::to_string(i));
  }
}

void Testbed::crash_server() {
  if (server_crashed_) return;
  server_crashed_ = true;
  // Cables first: frames already queued by the dying daemons must vanish
  // on the wire instead of racing the restarted instance.
  set_cables(*switch_, server_->stack, false);
  initiator_->abort_session(/*allow_reconnect=*/false);
  if (nfs_server_) nfs_server_->stop();
  fs_->cache().discard_all();
  if (ncache_) ncache_->cache().clear();
  NC_WARN("testbed", "server crashed: caches and sessions lost");
}

void Testbed::restart_server() {
  if (!server_crashed_) return;
  server_crashed_ = false;
  set_cables(*switch_, server_->stack, true);
  restart_task().detach(loop_.reaper());
}

Task<void> Testbed::restart_task() {
  bool ok = co_await initiator_->login();
  if (!ok) {
    NC_WARN("testbed", "iSCSI re-login failed after server restart");
    co_return;
  }
  if (nfs_server_) nfs_server_->start();
  NC_WARN("testbed", "server restarted: session re-established");
}

void Testbed::reset_stats() {
  // Every subsystem registered a reset hook alongside its metrics; one
  // fan-out restarts all measurement windows coherently.
  metrics_.reset_all();
}

Testbed::Snapshot Testbed::snapshot(sim::Time window_start) const {
  // A typed view over the registry: every field below is the registry
  // value under the named (node, metric) label.
  Snapshot s;
  s.elapsed_s = double(loop_.now() - window_start) / 1e9;
  s.server_cpu = metrics_.gauge_value("server", "cpu.utilization");
  s.storage_cpu = metrics_.gauge_value("storage", "cpu.utilization");
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    s.client_cpu_max =
        std::max(s.client_cpu_max,
                 metrics_.gauge_value("client" + std::to_string(i),
                                      "cpu.utilization"));
  }
  for (std::size_t n = 0; n < server_->stack.nic_count(); ++n) {
    s.server_link_util = std::max(
        s.server_link_util,
        metrics_.gauge_value("server",
                             "nic" + std::to_string(n) + ".tx.utilization"));
  }
  s.server_data_copies = metrics_.counter_value("server", "copy.data_ops");
  s.server_logical_copies =
      metrics_.counter_value("server", "copy.logical_ops");
  s.nfs_requests = metrics_.counter_value("server", "nfs.requests");
  s.read_bytes_served = metrics_.counter_value("server", "nfs.read_bytes");
  return s;
}

}  // namespace ncache::testbed
