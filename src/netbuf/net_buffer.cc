#include "netbuf/net_buffer.h"

#include <cstring>

#include "common/metrics.h"
#include "netbuf/slab_cache.h"

namespace ncache::netbuf {

NetBuffer::NetBuffer(std::size_t headroom, std::size_t capacity)
    : storage_(SlabCache::current().acquire(headroom + capacity)),
      head_(headroom),
      tail_(headroom),
      cap_(headroom + capacity) {}

NetBuffer::NetBuffer(NetBuffer&& o) noexcept
    : storage_(std::move(o.storage_)),
      head_(o.head_),
      tail_(o.tail_),
      cap_(o.cap_),
      pool_(std::move(o.pool_)) {
  o.head_ = o.tail_ = o.cap_ = 0;
}

NetBuffer& NetBuffer::operator=(NetBuffer&& o) noexcept {
  if (this != &o) {
    if (pool_) pool_->release(cap_ + BufferPool::kPerBufferOverhead);
    if (!storage_.empty()) SlabCache::current().recycle(std::move(storage_));
    storage_ = std::move(o.storage_);
    head_ = o.head_;
    tail_ = o.tail_;
    cap_ = o.cap_;
    pool_ = std::move(o.pool_);
    o.head_ = o.tail_ = o.cap_ = 0;
  }
  return *this;
}

NetBuffer::~NetBuffer() {
  if (pool_) pool_->release(cap_ + BufferPool::kPerBufferOverhead);
  if (!storage_.empty()) SlabCache::current().recycle(std::move(storage_));
}

std::byte* NetBuffer::push(std::size_t n) {
  if (n > head_) throw std::length_error("NetBuffer::push: headroom exhausted");
  head_ -= n;
  return storage_.data() + head_;
}

std::byte* NetBuffer::pull(std::size_t n) {
  if (n > size()) throw std::length_error("NetBuffer::pull: underrun");
  std::byte* old = storage_.data() + head_;
  head_ += n;
  return old;
}

std::byte* NetBuffer::put(std::size_t n) {
  if (n > tailroom()) throw std::length_error("NetBuffer::put: tailroom exhausted");
  std::byte* at = storage_.data() + tail_;
  tail_ += n;
  return at;
}

void NetBuffer::trim(std::size_t len) {
  if (len > size()) throw std::length_error("NetBuffer::trim: grows buffer");
  tail_ = head_ + len;
}

void NetBuffer::append(std::span<const std::byte> src) {
  std::byte* dst = put(src.size());
  if (!src.empty()) std::memcpy(dst, src.data(), src.size());
}

NetBufferPtr make_buffer(std::size_t capacity, std::size_t headroom) {
  // allocate_shared + RecyclingAllocator: the combined control-block/
  // object allocation recycles through a free list, like the storage.
  return std::allocate_shared<NetBuffer>(RecyclingAllocator<NetBuffer>{},
                                         headroom, capacity);
}

NetBufferPtr BufferPool::allocate(std::size_t capacity, std::size_t headroom) {
  std::size_t charge = headroom + capacity + kPerBufferOverhead;
  if (ledger_->in_use + charge > budget_) {
    ++failures_;
    return nullptr;
  }
  // Attribute the slab outcome of this construction to this pool (a slab
  // is touched by one thread at a time, so the delta is exactly our
  // acquire).
  SlabCache& slab = SlabCache::current();
  std::uint64_t hits0 = slab.hits();
  auto buf = std::allocate_shared<NetBuffer>(RecyclingAllocator<NetBuffer>{},
                                             headroom, capacity);
  if (slab.hits() != hits0) {
    ++recycled_;
  } else {
    ++slab_misses_;
  }
  buf->pool_ = ledger_;
  ledger_->in_use += charge;
  ++allocations_;
  return buf;
}

bool BufferPool::adopt(NetBuffer& buf) {
  if (buf.pool_ == ledger_) return true;
  std::size_t charge = buf.capacity() + kPerBufferOverhead;
  if (ledger_->in_use + charge > budget_) {
    ++failures_;
    return false;
  }
  if (buf.pool_) buf.pool_->release(charge);
  buf.pool_ = ledger_;
  ledger_->in_use += charge;
  ++allocations_;
  return true;
}

void BufferPool::register_metrics(MetricRegistry& registry,
                                  const std::string& node,
                                  const std::string& prefix) {
  registry.gauge(node, prefix + ".in_use_bytes",
                 [ledger = ledger_] { return double(ledger->in_use); });
  registry.counter(node, prefix + ".allocations",
                   [this] { return allocations_; });
  registry.counter(node, prefix + ".failures", [this] { return failures_; });
  registry.counter(node, prefix + ".recycled", [this] { return recycled_; });
  registry.counter(node, prefix + ".slab_misses",
                   [this] { return slab_misses_; });
}

}  // namespace ncache::netbuf
