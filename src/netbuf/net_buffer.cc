#include "netbuf/net_buffer.h"

#include <cstring>

namespace ncache::netbuf {

NetBuffer::NetBuffer(std::size_t headroom, std::size_t capacity)
    : storage_(headroom + capacity), head_(headroom), tail_(headroom) {}

NetBuffer::NetBuffer(NetBuffer&& o) noexcept
    : storage_(std::move(o.storage_)),
      head_(o.head_),
      tail_(o.tail_),
      pool_(o.pool_) {
  o.pool_ = nullptr;
  o.head_ = o.tail_ = 0;
}

NetBuffer& NetBuffer::operator=(NetBuffer&& o) noexcept {
  if (this != &o) {
    if (pool_) pool_->release(*this);
    storage_ = std::move(o.storage_);
    head_ = o.head_;
    tail_ = o.tail_;
    pool_ = o.pool_;
    o.pool_ = nullptr;
    o.head_ = o.tail_ = 0;
  }
  return *this;
}

NetBuffer::~NetBuffer() {
  if (pool_) pool_->release(*this);
}

std::byte* NetBuffer::push(std::size_t n) {
  if (n > head_) throw std::length_error("NetBuffer::push: headroom exhausted");
  head_ -= n;
  return storage_.data() + head_;
}

std::byte* NetBuffer::pull(std::size_t n) {
  if (n > size()) throw std::length_error("NetBuffer::pull: underrun");
  std::byte* old = storage_.data() + head_;
  head_ += n;
  return old;
}

std::byte* NetBuffer::put(std::size_t n) {
  if (n > tailroom()) throw std::length_error("NetBuffer::put: tailroom exhausted");
  std::byte* at = storage_.data() + tail_;
  tail_ += n;
  return at;
}

void NetBuffer::trim(std::size_t len) {
  if (len > size()) throw std::length_error("NetBuffer::trim: grows buffer");
  tail_ = head_ + len;
}

void NetBuffer::append(std::span<const std::byte> src) {
  std::byte* dst = put(src.size());
  if (!src.empty()) std::memcpy(dst, src.data(), src.size());
}

NetBufferPtr make_buffer(std::size_t capacity, std::size_t headroom) {
  return std::make_shared<NetBuffer>(headroom, capacity);
}

NetBufferPtr BufferPool::allocate(std::size_t capacity, std::size_t headroom) {
  std::size_t charge = headroom + capacity + kPerBufferOverhead;
  if (in_use_ + charge > budget_) {
    ++failures_;
    return nullptr;
  }
  auto buf = std::make_shared<NetBuffer>(headroom, capacity);
  buf->pool_ = this;
  in_use_ += charge;
  ++allocations_;
  return buf;
}

bool BufferPool::adopt(NetBuffer& buf) {
  if (buf.pool_ == this) return true;
  std::size_t charge = buf.capacity() + kPerBufferOverhead;
  if (in_use_ + charge > budget_) {
    ++failures_;
    return false;
  }
  if (buf.pool_) buf.pool_->release(buf);
  buf.pool_ = this;
  in_use_ += charge;
  ++allocations_;
  return true;
}

void BufferPool::release(const NetBuffer& buf) noexcept {
  std::size_t charge = buf.capacity() + kPerBufferOverhead;
  in_use_ = in_use_ > charge ? in_use_ - charge : 0;
}

}  // namespace ncache::netbuf
