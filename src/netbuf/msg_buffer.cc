#include "netbuf/msg_buffer.h"

#include <cstring>
#include <stdexcept>

#include "common/bytes.h"

namespace ncache::netbuf {

MsgBuffer MsgBuffer::from_bytes(std::span<const std::byte> src) {
  MsgBuffer m;
  if (!src.empty()) {
    auto buf = make_buffer(src.size());
    buf->append(src);
    m.append(ByteSeg{std::move(buf), 0, std::uint32_t(src.size())});
  }
  return m;
}

MsgBuffer MsgBuffer::from_string(std::string_view s) {
  return from_bytes(as_bytes(s));
}

MsgBuffer MsgBuffer::wrap(NetBufferPtr buf) {
  auto len = std::uint32_t(buf->size());
  return wrap(std::move(buf), 0, len);
}

MsgBuffer MsgBuffer::wrap(NetBufferPtr buf, std::uint32_t off,
                          std::uint32_t len) {
  MsgBuffer m;
  if (len > 0) m.append(ByteSeg{std::move(buf), off, len});
  return m;
}

MsgBuffer MsgBuffer::from_key(CacheKey key, std::uint32_t off,
                              std::uint32_t len) {
  MsgBuffer m;
  m.append(KeySeg{key, off, len});
  return m;
}

MsgBuffer MsgBuffer::junk(std::uint32_t len) {
  MsgBuffer m;
  if (len > 0) m.append(JunkSeg{len});
  return m;
}

void MsgBuffer::append(Segment seg) {
  std::uint32_t len = seg_len(seg);
  if (len == 0) return;
  size_ += len;
  segs_.push_back(std::move(seg));
}

void MsgBuffer::append(MsgBuffer other) {
  for (auto& s : other.segs_) append(std::move(s));
}

bool MsgBuffer::fully_physical() const noexcept {
  for (const auto& s : segs_) {
    if (!std::holds_alternative<ByteSeg>(s)) return false;
  }
  return true;
}

bool MsgBuffer::has_keys() const noexcept {
  for (const auto& s : segs_) {
    if (std::holds_alternative<KeySeg>(s)) return true;
  }
  return false;
}

bool MsgBuffer::has_junk() const noexcept {
  for (const auto& s : segs_) {
    if (std::holds_alternative<JunkSeg>(s)) return true;
  }
  return false;
}

std::size_t MsgBuffer::key_count() const noexcept {
  std::size_t n = 0;
  for (const auto& s : segs_) {
    if (std::holds_alternative<KeySeg>(s)) ++n;
  }
  return n;
}

std::size_t MsgBuffer::logical_bytes() const noexcept {
  std::size_t n = 0;
  for (const auto& s : segs_) {
    if (!std::holds_alternative<ByteSeg>(s)) n += seg_len(s);
  }
  return n;
}

MsgBuffer MsgBuffer::slice(std::size_t off, std::size_t len) const {
  if (off + len > size_) throw std::out_of_range("MsgBuffer::slice");
  MsgBuffer out;
  std::size_t pos = 0;
  for (const auto& s : segs_) {
    if (len == 0) break;
    std::uint32_t slen = seg_len(s);
    std::size_t seg_end = pos + slen;
    if (seg_end <= off) {
      pos = seg_end;
      continue;
    }
    std::size_t start_in_seg = off > pos ? off - pos : 0;
    std::size_t take = std::min<std::size_t>(slen - start_in_seg, len);
    if (const auto* b = std::get_if<ByteSeg>(&s)) {
      out.append(ByteSeg{b->buf, std::uint32_t(b->off + start_in_seg),
                         std::uint32_t(take)});
    } else if (const auto* k = std::get_if<KeySeg>(&s)) {
      out.append(KeySeg{k->key, std::uint32_t(k->off + start_in_seg),
                        std::uint32_t(take)});
    } else {
      out.append(JunkSeg{std::uint32_t(take)});
    }
    off += take;
    len -= take;
    pos = seg_end;
  }
  return out;
}

void MsgBuffer::copy_out(std::span<std::byte> dst) const {
  if (dst.size() != size_) throw std::length_error("MsgBuffer::copy_out size");
  std::size_t pos = 0;
  for (const auto& s : segs_) {
    if (const auto* b = std::get_if<ByteSeg>(&s)) {
      auto v = b->view();
      std::memcpy(dst.data() + pos, v.data(), v.size());
      pos += v.size();
    } else {
      // Non-physical segment: deterministic filler so consumers that
      // (incorrectly) read junk see a recognizable pattern.
      std::uint32_t len = seg_len(s);
      std::memset(dst.data() + pos, 0x5A, len);
      pos += len;
    }
  }
}

std::vector<std::byte> MsgBuffer::to_bytes() const {
  std::vector<std::byte> out(size_);
  copy_out(out);
  return out;
}

std::vector<std::byte> MsgBuffer::peek_bytes(std::size_t n) const {
  if (n > size_) throw std::out_of_range("MsgBuffer::peek_bytes");
  MsgBuffer prefix = slice(0, n);
  if (!prefix.fully_physical()) {
    throw std::logic_error("MsgBuffer::peek_bytes: prefix is not physical");
  }
  return prefix.to_bytes();
}

}  // namespace ncache::netbuf
