#include "netbuf/slab_cache.h"

#include <bit>
#include <cstring>

namespace ncache::netbuf {

SlabCache& SlabCache::process() {
  static SlabCache cache;
  return cache;
}

int SlabCache::class_index(std::size_t bytes) noexcept {
  if (bytes > kMaxClassBytes) return kNumClasses;
  std::size_t rounded = std::bit_ceil(bytes < kMinClassBytes ? kMinClassBytes
                                                             : bytes);
  return std::countr_zero(rounded) - std::countr_zero(kMinClassBytes);
}

std::vector<std::byte> SlabCache::acquire(std::size_t bytes) {
  int ci = class_index(bytes);
  if (ci < kNumClasses && !lists_[ci].empty()) {
    std::vector<std::byte> storage = std::move(lists_[ci].back());
    lists_[ci].pop_back();
    held_bytes_ -= storage.size();
    ++hits_;
    // Only the logical capacity is reachable through NetBuffer's API, so
    // zeroing that prefix makes a recycled buffer indistinguishable from
    // a fresh one.
    if (bytes) std::memset(storage.data(), 0, bytes);
    return storage;
  }
  ++misses_;
  std::size_t alloc = ci < kNumClasses ? (kMinClassBytes << ci) : bytes;
  return std::vector<std::byte>(alloc);
}

void SlabCache::recycle(std::vector<std::byte>&& storage) noexcept {
  std::size_t n = storage.size();
  if (n == 0) return;
  int ci = class_index(n);
  if (ci >= kNumClasses || n != (kMinClassBytes << ci) ||
      lists_[ci].size() * n >= kMaxHeldBytesPerClass) {
    ++dropped_;
    return;  // storage frees on scope exit
  }
  held_bytes_ += n;
  lists_[ci].push_back(std::move(storage));
}

void SlabCache::drain() noexcept {
  for (auto& list : lists_) list.clear();
  held_bytes_ = 0;
}

}  // namespace ncache::netbuf
