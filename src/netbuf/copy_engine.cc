#include "netbuf/copy_engine.h"

#include <cstring>

#include "common/metrics.h"

namespace ncache::netbuf {

void CopyEngine::register_metrics(MetricRegistry& registry,
                                  const std::string& node) {
  registry.counter(node, "copy.data_ops", [this] { return stats_.data_copy_ops; });
  registry.bytes(node, "copy.data_bytes",
                 [this] { return stats_.data_copy_bytes; });
  registry.counter(node, "copy.meta_ops", [this] { return stats_.meta_copy_ops; });
  registry.bytes(node, "copy.meta_bytes",
                 [this] { return stats_.meta_copy_bytes; });
  registry.counter(node, "copy.logical_ops",
                   [this] { return stats_.logical_copy_ops; });
  registry.counter(node, "copy.logical_keys",
                   [this] { return stats_.logical_copy_keys; });
  registry.counter(node, "copy.checksum_ops",
                   [this] { return stats_.checksum_ops; });
  registry.bytes(node, "copy.checksum_bytes",
                 [this] { return stats_.checksum_bytes; });
  registry.on_reset([this] { reset_stats(); });
}

void CopyEngine::account(std::size_t bytes, CopyClass cls) {
  if (cls == CopyClass::RegularData) {
    stats_.data_copy_ops += 1;
    stats_.data_copy_bytes += bytes;
  } else {
    stats_.meta_copy_ops += 1;
    stats_.meta_copy_bytes += bytes;
  }
  cpu_.charge(costs_.copy_cost(bytes));
}

MsgBuffer CopyEngine::copy_message(const MsgBuffer& src, CopyClass cls) {
  account(src.size(), cls);
  auto buf = make_buffer(src.size());
  src.copy_out({buf->put(src.size()), src.size()});
  return MsgBuffer::wrap(std::move(buf));
}

MsgBuffer CopyEngine::copy_bytes_in(std::span<const std::byte> src,
                                    CopyClass cls) {
  account(src.size(), cls);
  auto buf = make_buffer(src.size());
  buf->append(src);
  return MsgBuffer::wrap(std::move(buf));
}

void CopyEngine::copy_bytes_out(const MsgBuffer& src, std::span<std::byte> dst,
                                CopyClass cls) {
  account(src.size(), cls);
  src.copy_out(dst);
}

void CopyEngine::copy_raw(std::span<const std::byte> src,
                          std::span<std::byte> dst, CopyClass cls) {
  if (src.size() != dst.size()) {
    throw std::length_error("CopyEngine::copy_raw: size mismatch");
  }
  account(src.size(), cls);
  if (!src.empty()) std::memcpy(dst.data(), src.data(), src.size());
}

MsgBuffer CopyEngine::logical_copy(const MsgBuffer& src) {
  MsgBuffer out;
  std::size_t keys = 0;
  for (const auto& s : src.segments()) {
    out.append(s);  // descriptor copy; ByteSegs share the NetBuffer
    if (std::holds_alternative<KeySeg>(s)) ++keys;
  }
  stats_.logical_copy_ops += 1;
  stats_.logical_copy_keys += keys;
  cpu_.charge(costs_.logical_copy_ns * (keys ? keys : 1));
  return out;
}

void CopyEngine::charge_checksum(std::size_t bytes) {
  stats_.checksum_ops += 1;
  stats_.checksum_bytes += bytes;
  cpu_.charge(costs_.checksum_cost(bytes));
}

void CopyEngine::charge_copy_cost_only(std::size_t bytes, CopyClass cls) {
  account(bytes, cls);
}

}  // namespace ncache::netbuf
