// MsgBuffer: the data currency of the whole simulated system.
//
// A message is an ordered list of segments. Each segment is one of:
//   * ByteSeg — real bytes in a (shared, refcounted) NetBuffer: the normal
//     physically-present representation;
//   * KeySeg — a logical-copy reference into the network-centric cache:
//     present only in NCache-mode data paths, materialized at the egress
//     interceptor;
//   * JunkSeg — a placeholder of known length with no real bytes: the
//     paper's `*-baseline` servers ship these ("packets ... contain only
//     random bits as payload", §5.1).
//
// Slicing a MsgBuffer (for IP fragmentation / TCP segmentation) is cheap
// and allocation-light: ByteSegs share the underlying NetBuffer.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "netbuf/cache_key.h"
#include "netbuf/net_buffer.h"

namespace ncache::netbuf {

struct ByteSeg {
  NetBufferPtr buf;
  std::uint32_t off = 0;  ///< offset into buf->data()
  std::uint32_t len = 0;

  std::span<const std::byte> view() const noexcept {
    return buf->data().subspan(off, len);
  }
};

struct KeySeg {
  CacheKey key;
  std::uint32_t off = 0;  ///< offset into the cached object
  std::uint32_t len = 0;
};

struct JunkSeg {
  std::uint32_t len = 0;
};

using Segment = std::variant<ByteSeg, KeySeg, JunkSeg>;

inline std::uint32_t seg_len(const Segment& s) noexcept {
  return std::visit([](const auto& v) { return v.len; }, s);
}

class MsgBuffer {
 public:
  MsgBuffer() = default;

  /// Builds a message with one ByteSeg copied from `src` (this *is* a
  /// physical copy; callers wanting accounting should go through
  /// CopyEngine).
  static MsgBuffer from_bytes(std::span<const std::byte> src);
  static MsgBuffer from_string(std::string_view s);

  /// Wraps an existing buffer without copying.
  static MsgBuffer wrap(NetBufferPtr buf);
  static MsgBuffer wrap(NetBufferPtr buf, std::uint32_t off, std::uint32_t len);

  /// A single logical-copy reference.
  static MsgBuffer from_key(CacheKey key, std::uint32_t off, std::uint32_t len);

  /// A junk placeholder.
  static MsgBuffer junk(std::uint32_t len);

  void append(Segment seg);
  void append(MsgBuffer other);  ///< splices other's segments (no copy)

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  const std::vector<Segment>& segments() const noexcept { return segs_; }

  /// True if every byte is physically present.
  bool fully_physical() const noexcept;
  /// True if any segment is a KeySeg.
  bool has_keys() const noexcept;
  /// True if any segment is junk.
  bool has_junk() const noexcept;
  /// Number of KeySegs.
  std::size_t key_count() const noexcept;
  /// Bytes covered by KeySegs / JunkSegs.
  std::size_t logical_bytes() const noexcept;

  /// Cheap sub-range view [off, off+len): ByteSegs share buffers, Key/Junk
  /// segs are re-ranged. Throws std::out_of_range if out of bounds.
  MsgBuffer slice(std::size_t off, std::size_t len) const;

  /// Gathers physical bytes into `dst` (dst.size() == size()). Junk/Key
  /// segments are filled with a deterministic pattern (they have no real
  /// bytes); callers that require real data must materialize first.
  void copy_out(std::span<std::byte> dst) const;

  /// Convenience: flattens into a fresh vector (tests, header parsing).
  std::vector<std::byte> to_bytes() const;

  /// First `n` physical bytes flattened (for protocol header peeking);
  /// throws if the prefix is not fully physical.
  std::vector<std::byte> peek_bytes(std::size_t n) const;

  void clear() noexcept {
    segs_.clear();
    size_ = 0;
  }

 private:
  std::vector<Segment> segs_;
  std::size_t size_ = 0;
};

}  // namespace ncache::netbuf
