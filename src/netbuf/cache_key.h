// Logical-copy keys (§3.1, §3.4).
//
// Regular data in the network-centric cache is identified by one of two
// keys, matching its two possible origins:
//   * LbnKey — data that arrived from the iSCSI target, indexed by the
//     logical block number in the iSCSI read request;
//   * FhoKey — data that arrived in an NFS WRITE request, indexed by
//     file handle + file offset.
// A logical copy moves one of these 16-byte keys instead of the payload.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <variant>

namespace ncache::netbuf {

struct LbnKey {
  std::uint32_t target = 0;  ///< iSCSI target id (one per storage server)
  std::uint64_t lbn = 0;     ///< logical block number (fs-block-sized units)

  friend bool operator==(const LbnKey&, const LbnKey&) = default;
};

struct FhoKey {
  std::uint64_t fh = 0;      ///< NFS file handle (inode id in SimpleFS)
  std::uint64_t offset = 0;  ///< byte offset, fs-block aligned

  friend bool operator==(const FhoKey&, const FhoKey&) = default;
};

using CacheKey = std::variant<LbnKey, FhoKey>;

inline bool is_lbn(const CacheKey& k) noexcept {
  return std::holds_alternative<LbnKey>(k);
}
inline bool is_fho(const CacheKey& k) noexcept {
  return std::holds_alternative<FhoKey>(k);
}

inline std::string to_string(const CacheKey& k) {
  if (auto* l = std::get_if<LbnKey>(&k)) {
    return "LBN(t" + std::to_string(l->target) + "," + std::to_string(l->lbn) +
           ")";
  }
  const auto& f = std::get<FhoKey>(k);
  return "FHO(fh" + std::to_string(f.fh) + "," + std::to_string(f.offset) + ")";
}

struct LbnKeyHash {
  std::size_t operator()(const LbnKey& k) const noexcept {
    std::uint64_t h = k.lbn * 0x9e3779b97f4a7c15ULL;
    h ^= (std::uint64_t(k.target) << 32) | k.target;
    return std::size_t(h ^ (h >> 29));
  }
};

struct FhoKeyHash {
  std::size_t operator()(const FhoKey& k) const noexcept {
    std::uint64_t h = k.fh * 0xff51afd7ed558ccdULL;
    h ^= k.offset * 0x9e3779b97f4a7c15ULL;
    return std::size_t(h ^ (h >> 33));
  }
};

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& k) const noexcept {
    if (auto* l = std::get_if<LbnKey>(&k)) return LbnKeyHash{}(*l) * 2;
    return FhoKeyHash{}(std::get<FhoKey>(k)) * 2 + 1;
  }
};

/// On-the-wire / in-descriptor size of one key (paper: an LBN "is much
/// smaller than a file block"). Used for the logical-copy cost model.
constexpr std::size_t kKeyBytes = 16;

}  // namespace ncache::netbuf
