// SlabCache — size-class recycling for NetBuffer storage (and, via
// RecyclingAllocator, for their shared_ptr control blocks).
//
// The paper's data path allocates and frees network buffers at wire rate:
// every cached chunk, every frame, every NFS message body is a NetBuffer.
// Before this cache each buffer cost two heap round-trips (storage vector
// + control block); under churn that is the dominant cost of the buffer
// path (bench/perf_core.cc's buffer_pool case measured 2.0 allocs per
// cycle). SlabCache keeps freed storage on per-size-class free lists and
// hands it back zeroed, the way the kernel's kmem caches back sk_buff
// data — so a steady-state allocate/release cycle touches no allocator.
//
// Size classes are powers of two from 256 B to 1 MB. A request is served
// from the smallest class that fits; the vector handed out has the class
// size, while the NetBuffer keeps its own logical capacity — pool byte
// accounting charges the logical size, so recycling never perturbs the
// budget arithmetic the cache's eviction behavior (and the figures)
// depend on. Requests above the largest class fall through to exact-size
// allocation and are not retained.
//
// Threading: a slab is never locked. Single-loop worlds use the process()
// singleton; the parallel engine gives each event-loop domain its own
// SlabCache and binds it to the executing worker thread for the duration
// of a window (see bind()/current()), so every slab is only ever touched
// by one thread at a time. Storage allocated in one domain and released
// in another (a frame crossing a trunk) simply migrates between slabs;
// which slab receives it depends only on simulated causality, never on
// the worker-thread count, so hit/miss counters stay deterministic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace ncache::netbuf {

class SlabCache {
 public:
  static constexpr std::size_t kMinClassBytes = 256;
  static constexpr std::size_t kMaxClassBytes = std::size_t(1) << 20;
  /// Retention bound per class, in bytes: beyond it a recycled vector is
  /// freed instead of held, so an allocation burst cannot pin its
  /// high-water mark in the cache forever.
  static constexpr std::size_t kMaxHeldBytesPerClass = 64u << 20;

  /// Storage of at least `bytes` (the containing size class), zeroed up
  /// to `bytes` — identical observable contents to a freshly
  /// value-initialized vector.
  std::vector<std::byte> acquire(std::size_t bytes);

  /// Returns storage to its size-class free list (or frees it, when the
  /// size is not a class size or the class is at its retention bound).
  void recycle(std::vector<std::byte>&& storage) noexcept;

  /// Drops all held storage (tests; memory pressure is not modelled).
  void drain() noexcept;

  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }
  std::uint64_t dropped() const noexcept { return dropped_; }
  std::size_t held_bytes() const noexcept { return held_bytes_; }

  /// The process-wide instance every NetBuffer recycles through when no
  /// domain slab is bound to the calling thread.
  static SlabCache& process();

  /// The slab NetBuffers on this thread allocate from / recycle into:
  /// the bound domain slab, or process() when none is bound.
  static SlabCache& current() noexcept {
    SlabCache* bound = bound_ref();
    return bound ? *bound : process();
  }

  /// Binds `slab` to the calling thread (nullptr unbinds). The parallel
  /// engine brackets each domain window with this.
  static void bind(SlabCache* slab) noexcept { bound_ref() = slab; }

 private:
  static SlabCache*& bound_ref() noexcept {
    thread_local SlabCache* bound = nullptr;
    return bound;
  }
  static constexpr int kNumClasses = 13;  // 2^8 .. 2^20

  /// Smallest class index whose size is >= bytes; kNumClasses if none.
  static int class_index(std::size_t bytes) noexcept;

  std::vector<std::vector<std::byte>> lists_[kNumClasses];
  std::size_t held_bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Minimal std allocator over a per-type free list; sizeof(T) must be at
/// least a pointer. std::allocate_shared uses it to recycle shared_ptr
/// control blocks the same way SlabCache recycles buffer storage. The
/// list is thread-local (parallel-engine workers each recycle their own
/// blocks; a block freed on another thread just migrates lists), holds at
/// most the type's high-water live count per thread, and is freed when
/// the thread exits — blocks deallocated during thread teardown, after
/// the list's own destructor has run, go straight back to the heap.
template <typename T>
struct RecyclingAllocator {
  using value_type = T;

  RecyclingAllocator() = default;
  template <typename U>
  RecyclingAllocator(const RecyclingAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    static_assert(sizeof(T) >= sizeof(void*));
    if (n == 1) {
      FreeList& list = free_list();
      if (list.head) {
        void* p = list.head;
        list.head = *static_cast<void**>(p);
        return static_cast<T*>(p);
      }
    }
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }

  void deallocate(T* p, std::size_t n) noexcept {
    if (n == 1) {
      FreeList& list = free_list();
      if (list.alive) {
        *reinterpret_cast<void**>(static_cast<void*>(p)) = list.head;
        list.head = p;
        return;
      }
    }
    ::operator delete(p);
  }

  template <typename U>
  bool operator==(const RecyclingAllocator<U>&) const noexcept {
    return true;
  }

 private:
  // Destructor frees the held blocks so a worker thread's list does not
  // outlive the thread as unreachable memory; `alive` guards against
  // re-population during thread teardown (destruction order of
  // thread_locals is unspecified, and a shared_ptr released by another
  // thread_local's destructor may deallocate through here afterwards).
  struct FreeList {
    void* head = nullptr;
    bool alive = true;
    ~FreeList() {
      while (head) {
        void* next = *static_cast<void**>(head);
        ::operator delete(head);
        head = next;
      }
      alive = false;
    }
  };

  static FreeList& free_list() noexcept {
    thread_local FreeList list;
    return list;
  }
};

}  // namespace ncache::netbuf
