// NetBuffer: the simulation's sk_buff.
//
// One NetBuffer is a contiguous allocation with reserved headroom so that
// protocol layers can prepend headers with push() without copying — exactly
// the sk_buff/mbuf discipline the paper's design relies on. Buffers
// belonging to the network-centric cache are allocated from a pinned
// BufferPool (the paper allocates them in device-driver context, which pins
// them and, as a side effect, bounds the OS page cache — §4.1).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace ncache {
class MetricRegistry;
}

namespace ncache::netbuf {

class BufferPool;

namespace detail {
/// Accounting block shared between a BufferPool and every buffer charged to
/// it. Buffers can outlive their pool (in-flight frames still queued on the
/// event loop or in retransmit queues at teardown); the ledger keeps the
/// release path valid after the pool is gone — `owner` is nulled by
/// ~BufferPool and late releases just decrement the orphaned counter.
struct PoolLedger {
  BufferPool* owner = nullptr;
  std::size_t in_use = 0;
  void release(std::size_t charge) noexcept {
    in_use = in_use > charge ? in_use - charge : 0;
  }
};
}  // namespace detail

class NetBuffer {
 public:
  static constexpr std::size_t kDefaultHeadroom = 128;

  /// A buffer with `headroom` bytes reserved for headers and room for
  /// `capacity` bytes of data.
  NetBuffer(std::size_t headroom, std::size_t capacity);

  NetBuffer(const NetBuffer&) = delete;
  NetBuffer& operator=(const NetBuffer&) = delete;
  NetBuffer(NetBuffer&&) noexcept;
  NetBuffer& operator=(NetBuffer&&) noexcept;
  ~NetBuffer();

  /// Prepends `n` bytes (header space); returns pointer to the new front.
  std::byte* push(std::size_t n);
  /// Strips `n` bytes from the front; returns pointer to the old front.
  std::byte* pull(std::size_t n);
  /// Appends `n` bytes at the tail; returns pointer to the new region.
  std::byte* put(std::size_t n);
  /// Shrinks the data region to `len` bytes.
  void trim(std::size_t len);

  std::span<std::byte> data() noexcept {
    return {storage_.data() + head_, tail_ - head_};
  }
  std::span<const std::byte> data() const noexcept {
    return {storage_.data() + head_, tail_ - head_};
  }

  std::size_t size() const noexcept { return tail_ - head_; }
  std::size_t headroom() const noexcept { return head_; }
  std::size_t tailroom() const noexcept { return cap_ - tail_; }
  /// Logical capacity (headroom + data room), the size pools charge for.
  /// The backing storage may be larger: it comes from a SlabCache size
  /// class so that release/allocate cycles recycle it without touching
  /// the heap. Only the first capacity() bytes are ever reachable.
  std::size_t capacity() const noexcept { return cap_; }

  /// Appends the given bytes (convenience over put + memcpy).
  void append(std::span<const std::byte> src);

  /// Pool this buffer is charged against, or nullptr (also nullptr once
  /// the pool itself has been destroyed).
  BufferPool* pool() const noexcept { return pool_ ? pool_->owner : nullptr; }

 private:
  friend class BufferPool;

  std::vector<std::byte> storage_;  // slab-class sized, >= cap_
  std::size_t head_ = 0;
  std::size_t tail_ = 0;
  std::size_t cap_ = 0;  // logical capacity; accounting unit
  std::shared_ptr<detail::PoolLedger> pool_;  // set by BufferPool::allocate
};

using NetBufferPtr = std::shared_ptr<NetBuffer>;

/// Makes an unpooled buffer (ordinary kernel memory).
NetBufferPtr make_buffer(std::size_t capacity,
                         std::size_t headroom = NetBuffer::kDefaultHeadroom);

/// Pinned-memory accounting for network-centric cache buffers.
///
/// The pool has a byte budget; allocation beyond the budget fails, which is
/// what forces the NetCentricCache to evict (LRU) before inserting. The
/// budget models physical memory carved out of the machine in driver
/// context (§4.1): memory held here is unavailable to the FS buffer cache.
class BufferPool {
 public:
  BufferPool(std::string name, std::size_t budget_bytes)
      : name_(std::move(name)), budget_(budget_bytes) {
    ledger_->owner = this;
  }
  ~BufferPool() { ledger_->owner = nullptr; }

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Allocates a pooled buffer or returns nullptr if the budget would be
  /// exceeded. The accounted size is the full capacity plus a fixed
  /// per-buffer metadata overhead (descriptor, list links, hash entry) —
  /// this overhead is what degrades NCache at large working sets in
  /// Fig 6(a).
  NetBufferPtr allocate(std::size_t capacity,
                        std::size_t headroom = NetBuffer::kDefaultHeadroom);

  /// Adopts an existing buffer into this pool (charges its capacity).
  /// Returns false if the budget would be exceeded.
  bool adopt(NetBuffer& buf);

  std::size_t budget() const noexcept { return budget_; }
  std::size_t in_use() const noexcept { return ledger_->in_use; }
  std::size_t available() const noexcept {
    return budget_ > in_use() ? budget_ - in_use() : 0;
  }
  std::uint64_t allocations() const noexcept { return allocations_; }
  std::uint64_t failures() const noexcept { return failures_; }
  /// Allocations whose storage came off a slab free list / had to hit
  /// the heap. recycled + slab_misses == allocations.
  std::uint64_t recycled() const noexcept { return recycled_; }
  std::uint64_t slab_misses() const noexcept { return slab_misses_; }

  /// Publishes <prefix>.* occupancy and recycling metrics under `node`.
  void register_metrics(MetricRegistry& registry, const std::string& node,
                        const std::string& prefix);

  /// Per-buffer bookkeeping overhead in bytes (descriptor + links + index).
  static constexpr std::size_t kPerBufferOverhead = 96;

 private:
  std::string name_;
  std::size_t budget_;
  std::shared_ptr<detail::PoolLedger> ledger_ =
      std::make_shared<detail::PoolLedger>();
  std::uint64_t allocations_ = 0;
  std::uint64_t failures_ = 0;
  std::uint64_t recycled_ = 0;
  std::uint64_t slab_misses_ = 0;
};

}  // namespace ncache::netbuf
