// CopyEngine: the single choke point for all data movement on a node.
//
// Every physical copy of payload across a module boundary goes through
// here so that (a) the bytes are actually moved — end-to-end integrity is
// testable — (b) the simulated CPU is charged the per-byte cost, and
// (c) the copy is counted by category. Table 2 of the paper ("number of
// data copying operations per request") is regenerated directly from these
// counters.
//
// Logical copies (NCache mode) move only KeySeg descriptors and charge the
// small per-key cost instead.
#pragma once

#include <cstdint>
#include <span>

#include "netbuf/msg_buffer.h"
#include "sim/cost_model.h"
#include "sim/cpu_model.h"

namespace ncache {
class MetricRegistry;
}

namespace ncache::netbuf {

enum class CopyClass : std::uint8_t {
  RegularData,  ///< file-block payload (the copies NCache eliminates)
  Metadata,     ///< inodes, directories, protocol headers, small control data
};

struct CopyStats {
  std::uint64_t data_copy_ops = 0;
  std::uint64_t data_copy_bytes = 0;
  std::uint64_t meta_copy_ops = 0;
  std::uint64_t meta_copy_bytes = 0;
  std::uint64_t logical_copy_ops = 0;
  std::uint64_t logical_copy_keys = 0;
  std::uint64_t checksum_ops = 0;
  std::uint64_t checksum_bytes = 0;

  void reset() { *this = CopyStats{}; }
};

class CopyEngine {
 public:
  CopyEngine(sim::CpuModel& cpu, const sim::CostModel& costs)
      : cpu_(cpu), costs_(costs) {}

  CopyEngine(const CopyEngine&) = delete;
  CopyEngine& operator=(const CopyEngine&) = delete;

  /// Physically copies `src` into a fresh contiguous buffer-backed message.
  /// Charges CPU, counts one copy operation of `src.size()` bytes.
  MsgBuffer copy_message(const MsgBuffer& src, CopyClass cls);

  /// Physically copies raw bytes into a message (e.g. user buffer ->
  /// socket).
  MsgBuffer copy_bytes_in(std::span<const std::byte> src, CopyClass cls);

  /// Physically copies a message out into caller storage (socket -> user
  /// buffer). `dst.size()` must equal `src.size()`.
  void copy_bytes_out(const MsgBuffer& src, std::span<std::byte> dst,
                      CopyClass cls);

  /// Copies between two raw buffers (fs block moves).
  void copy_raw(std::span<const std::byte> src, std::span<std::byte> dst,
                CopyClass cls);

  /// Logical copy: duplicates the segment descriptors (ByteSegs share the
  /// underlying NetBuffers; KeySegs copy 16-byte keys). Charges the per-key
  /// logical-copy cost.
  MsgBuffer logical_copy(const MsgBuffer& src);

  /// Accounts one software checksum pass over `bytes` (skipped when the
  /// NIC offloads).
  void charge_checksum(std::size_t bytes);

  /// Charges copy cost without moving bytes (for code paths where the
  /// destination already holds the bytes but the cost/count must register,
  /// e.g. baseline junk movement is *not* charged, while modelled DMA-less
  /// moves are).
  void charge_copy_cost_only(std::size_t bytes, CopyClass cls);

  const CopyStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_.reset(); }

  /// Publishes copy.* counters under `node` and hooks reset_stats() into
  /// the registry reset.
  void register_metrics(MetricRegistry& registry, const std::string& node);

  sim::CpuModel& cpu() noexcept { return cpu_; }
  const sim::CostModel& costs() const noexcept { return costs_; }

 private:
  void account(std::size_t bytes, CopyClass cls);

  sim::CpuModel& cpu_;
  const sim::CostModel& costs_;
  CopyStats stats_;
};

}  // namespace ncache::netbuf
