#include "workload/trace.h"

#include <charconv>
#include <sstream>
#include <stdexcept>

namespace ncache::workload {

using nfs::Status;

Task<void> TracePlayer::issue(const TraceOp& op, Counters* counters) {
  sim::Time start = loop_.now();
  switch (op.type) {
    case TraceOpType::Read: {
      auto r = co_await client_.read(op.fh, op.offset, op.len);
      counters->record(r.data.size(), loop_.now() - start,
                       r.status == Status::Ok);
      break;
    }
    case TraceOpType::Write: {
      std::vector<std::byte> buf(op.len);
      for (std::size_t i = 0; i < buf.size(); ++i) {
        buf[i] = std::byte((op.offset + i) & 0xff);
      }
      Status s = co_await client_.write(op.fh, op.offset, buf);
      counters->record(op.len, loop_.now() - start, s == Status::Ok);
      break;
    }
    case TraceOpType::Getattr: {
      auto attr = co_await client_.getattr(op.fh);
      counters->record(0, loop_.now() - start, attr.has_value());
      break;
    }
    case TraceOpType::Lookup: {
      auto found = co_await client_.lookup(fs::kRootIno, op.name);
      counters->record(0, loop_.now() - start, found.has_value());
      break;
    }
  }
}

Task<void> TracePlayer::play_closed(Counters* counters) {
  sim::Time base = loop_.now();
  for (const auto& op : ops_) {
    sim::Time due = base + op.at;
    if (loop_.now() < due) {
      co_await sim::sleep_for(loop_, due - loop_.now());
    }
    co_await issue(op, counters);
  }
}

namespace {
Task<void> issue_tracked(TracePlayer* player, const TraceOp* op,
                         Counters* counters, int* outstanding,
                         Task<void> (TracePlayer::*fn)(const TraceOp&,
                                                       Counters*)) {
  co_await (player->*fn)(*op, counters);
  --*outstanding;
}
}  // namespace

Task<void> TracePlayer::play_open(Counters* counters, double speedup) {
  if (speedup <= 0) throw std::invalid_argument("play_open: bad speedup");
  int outstanding = 0;
  for (const auto& op : ops_) {
    sim::Duration due = sim::Duration(double(op.at) / speedup);
    ++outstanding;
    const TraceOp* op_ptr = &op;
    TracePlayer* self = this;
    Counters* c = counters;
    int* out = &outstanding;
    loop_.schedule_in(due, [self, op_ptr, c, out] {
      issue_tracked(self, op_ptr, c, out, &TracePlayer::issue)
          .detach(self->loop_.reaper());
    });
  }
  // Wait for the tail to drain.
  while (outstanding > 0) {
    co_await sim::sleep_for(loop_, 100 * sim::kMicrosecond);
  }
}

std::vector<TraceOp> TracePlayer::parse(std::string_view text) {
  std::vector<TraceOp> ops;
  std::istringstream in{std::string(text)};
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::uint64_t time_us;
    std::string verb;
    if (!(ls >> time_us >> verb)) {
      throw std::invalid_argument("trace: malformed line: " + line);
    }
    TraceOp op;
    op.at = time_us * sim::kMicrosecond;
    if (verb == "read" || verb == "write") {
      op.type = verb == "read" ? TraceOpType::Read : TraceOpType::Write;
      if (!(ls >> op.fh >> op.offset >> op.len)) {
        throw std::invalid_argument("trace: malformed rw line: " + line);
      }
    } else if (verb == "getattr") {
      op.type = TraceOpType::Getattr;
      if (!(ls >> op.fh)) {
        throw std::invalid_argument("trace: malformed getattr: " + line);
      }
    } else if (verb == "lookup") {
      op.type = TraceOpType::Lookup;
      if (!(ls >> op.name)) {
        throw std::invalid_argument("trace: malformed lookup: " + line);
      }
    } else {
      throw std::invalid_argument("trace: unknown verb: " + verb);
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

std::string TracePlayer::format(const std::vector<TraceOp>& ops) {
  std::ostringstream out;
  for (const auto& op : ops) {
    out << op.at / sim::kMicrosecond << ' ';
    switch (op.type) {
      case TraceOpType::Read:
        out << "read " << op.fh << ' ' << op.offset << ' ' << op.len;
        break;
      case TraceOpType::Write:
        out << "write " << op.fh << ' ' << op.offset << ' ' << op.len;
        break;
      case TraceOpType::Getattr:
        out << "getattr " << op.fh;
        break;
      case TraceOpType::Lookup:
        out << "lookup " << op.name;
        break;
    }
    out << '\n';
  }
  return out.str();
}

std::vector<TraceOp> TracePlayer::synth_sequential_read(
    std::uint64_t fh, std::uint64_t file_size, std::uint32_t request,
    sim::Duration gap) {
  std::vector<TraceOp> ops;
  sim::Duration at = 0;
  for (std::uint64_t off = 0; off < file_size; off += request) {
    TraceOp op;
    op.at = at;
    op.type = TraceOpType::Read;
    op.fh = fh;
    op.offset = off;
    op.len = std::uint32_t(std::min<std::uint64_t>(request, file_size - off));
    ops.push_back(op);
    at += gap;
  }
  return ops;
}

}  // namespace ncache::workload
