#include "workload/nfs_workloads.h"

namespace ncache::workload {

using nfs::Status;

Task<void> sequential_read_worker(nfs::NfsClient& client, std::uint64_t fh,
                                  std::uint64_t file_size,
                                  std::uint32_t request_size,
                                  std::uint64_t start_offset, StopFlag* stop,
                                  Counters* counters) {
  ++stop->live_workers;
  std::uint64_t offset = start_offset % file_size;
  while (!stop->stopped) {
    std::uint32_t want = std::uint32_t(
        std::min<std::uint64_t>(request_size, file_size - offset));
    auto r = co_await client.read(fh, offset, want);
    counters->record(r.data.size(), 0, r.status == Status::Ok);
    offset += want;
    if (offset >= file_size) offset = 0;
  }
  --stop->live_workers;
}

Task<void> windowed_sequential_worker(nfs::NfsClient& client,
                                      std::uint64_t fh,
                                      std::uint64_t file_size,
                                      std::uint32_t request_size,
                                      std::shared_ptr<std::uint64_t> cursor,
                                      StopFlag* stop, Counters* counters) {
  ++stop->live_workers;
  while (!stop->stopped) {
    std::uint64_t offset = *cursor;
    *cursor += request_size;
    if (*cursor >= file_size) *cursor = 0;
    std::uint32_t want = std::uint32_t(
        std::min<std::uint64_t>(request_size, file_size - offset));
    auto r = co_await client.read(fh, offset, want);
    counters->record(r.data.size(), 0, r.status == nfs::Status::Ok);
  }
  --stop->live_workers;
}

Task<void> hot_read_worker(nfs::NfsClient& client, std::uint64_t fh,
                           std::uint64_t file_size, std::uint32_t request_size,
                           std::uint32_t seed, StopFlag* stop,
                           Counters* counters) {
  ++stop->live_workers;
  Pcg32 rng(seed);
  std::uint64_t chunks = std::max<std::uint64_t>(1, file_size / request_size);
  while (!stop->stopped) {
    std::uint64_t chunk = rng.below(std::uint32_t(chunks));
    std::uint64_t offset = chunk * request_size;
    std::uint32_t want = std::uint32_t(
        std::min<std::uint64_t>(request_size, file_size - offset));
    auto r = co_await client.read(fh, offset, want);
    counters->record(r.data.size(), 0, r.status == Status::Ok);
  }
  --stop->live_workers;
}

Task<void> specsfs_worker(nfs::NfsClient& client,
                          std::shared_ptr<const std::vector<
                              std::pair<std::uint64_t, std::uint64_t>>> files,
                          SpecSfsConfig config, std::uint32_t worker_id,
                          StopFlag* stop, Counters* counters) {
  ++stop->live_workers;
  Pcg32 rng(config.seed * 7919 + worker_id);
  std::vector<std::byte> write_buf(32768);

  while (!stop->stopped) {
    const auto& [fh, size] = (*files)[rng.below(std::uint32_t(files->size()))];
    bool data_op = rng.uniform() < config.data_op_fraction;
    if (!data_op) {
      // Metadata mix: GETATTR-heavy, some LOOKUPs on the root directory.
      if (rng.uniform() < 0.7) {
        auto attr = co_await client.getattr(fh);
        counters->record(0, 0, attr.has_value());
      } else {
        auto found = co_await client.lookup(
            fs::kRootIno, "sfs" + std::to_string(rng.below(
                              std::uint32_t(files->size()))));
        counters->record(0, 0, found.has_value());
      }
      continue;
    }

    std::uint32_t req =
        config.size_table[rng.below(std::uint32_t(config.size_table.size()))];
    std::uint64_t max_chunk = size > req ? size / req : 1;
    std::uint64_t offset = std::uint64_t(rng.below(std::uint32_t(max_chunk))) *
                           req;
    if (offset >= size) offset = 0;
    std::uint32_t len =
        std::uint32_t(std::min<std::uint64_t>(req, size - offset));

    if (rng.uniform() < config.read_fraction) {
      sim::Time t0 = client.loop().now();
      auto r = co_await client.read(fh, offset, len);
      counters->record(r.data.size(), client.loop().now() - t0,
                       r.status == Status::Ok);
    } else {
      // Block-aligned write of fresh bytes (keeps NCache's aligned path
      // hot, like SPECsfs's full-block writes).
      std::uint32_t wlen = len < 4096 ? 4096 : len & ~4095u;
      std::uint64_t woff = offset & ~4095ull;
      for (std::size_t i = 0; i < wlen; ++i) {
        write_buf[i] = std::byte((i + worker_id) & 0xff);
      }
      sim::Time t0 = client.loop().now();
      Status s = co_await client.write(
          fh, woff, std::span<const std::byte>(write_buf.data(), wlen));
      counters->record(wlen, client.loop().now() - t0, s == Status::Ok);
    }
  }
  --stop->live_workers;
}

}  // namespace ncache::workload
