// Shared accounting for workload generators.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/stats.h"
#include "sim/event_loop.h"
#include "sim/parallel.h"

namespace ncache::workload {

struct Counters {
  std::uint64_t ops = 0;
  std::uint64_t bytes = 0;
  std::uint64_t errors = 0;
  LatencyHistogram latency;

  void record(std::uint64_t op_bytes, sim::Duration lat_ns, bool ok) {
    if (ok) {
      ++ops;
      bytes += op_bytes;
      latency.record(lat_ns);
    } else {
      ++errors;
    }
  }

  double ops_per_sec(sim::Duration elapsed_ns) const {
    return elapsed_ns ? double(ops) * 1e9 / double(elapsed_ns) : 0.0;
  }
  double mb_per_sec(sim::Duration elapsed_ns) const {
    return elapsed_ns ? double(bytes) / 1e6 * 1e9 / double(elapsed_ns) : 0.0;
  }
};

/// Cooperative stop flag shared between a driver and its workers.
/// Atomic because a partitioned world's workers poll it from different
/// domain threads (single-loop worlds pay nothing they'd notice).
struct StopFlag {
  std::atomic<bool> stopped = false;
  std::atomic<int> live_workers = 0;
};

/// Standard measurement driver: runs the event loop for `duration` of
/// simulated time, raises the stop flag, then drains in-flight work.
/// Returns the measurement window (== duration; the small tail of ops
/// completing during the drain is counted, as in any fixed-interval
/// benchmark).
inline sim::Duration run_measurement(sim::EventLoop& loop, StopFlag& stop,
                                     sim::Duration duration) {
  sim::Time start = loop.now();
  loop.run_until(start + duration);
  stop.stopped = true;
  while (stop.live_workers > 0 && loop.step()) {
  }
  return duration;
}

/// Partitioned-world variant: drives every domain to the deadline through
/// the engine, raises the flag, then keeps running rounds until the
/// workers drain (or the world goes quiet).
inline sim::Duration run_measurement(sim::ParallelEngine& engine,
                                     StopFlag& stop, sim::Duration duration) {
  sim::Time start = engine.now();
  engine.run_until(start + duration);
  stop.stopped = true;
  engine.run([&] { return stop.live_workers.load() <= 0; });
  return duration;
}

}  // namespace ncache::workload
