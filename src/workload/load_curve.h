// Time-varying offered load (PR 9): a deterministic request-rate curve —
// base rate, optional diurnal sine, and flash-crowd spike windows — plus
// an *open-loop* arrival worker that launches requests at the curve's
// rate regardless of completions. Open-loop arrivals are what make
// overload metastable: a closed-loop worker slows down with the server,
// an open-loop crowd does not (it is the crowd, not the benchmark, that
// backs off — i.e. nobody).
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "nfs/client.h"
#include "workload/counters.h"

namespace ncache::workload {

/// Pure function of simulated time: every worker sampling the same curve
/// at the same sim time sees the same rate, on any engine thread count.
class LoadCurve {
 public:
  struct Spike {
    sim::Time start = 0;
    sim::Duration duration = 0;
    double multiplier = 1.0;  ///< rate factor inside [start, start+duration)
  };

  struct Config {
    double base_rate_per_sec = 1000.0;
    /// Diurnal sine: rate swings ±amplitude·base over one period.
    /// Amplitude 0 or period 0 disables it.
    double diurnal_amplitude = 0.0;
    sim::Duration diurnal_period = 0;
    std::vector<Spike> spikes;
  };

  explicit LoadCurve(Config config) : config_(std::move(config)) {}

  /// Aggregate arrival rate (requests/sec) at `now`. Never below 1/sec so
  /// interarrival draws stay finite.
  double rate_at(sim::Time now) const;

  /// One exponential interarrival draw at the current rate (Poisson
  /// arrivals; deterministic given the caller's RNG state).
  sim::Duration interarrival_at(sim::Time now, Pcg32& rng) const;

  const Config& config() const noexcept { return config_; }

 private:
  Config config_;
};

/// Open-loop NFS read arrivals: sleeps out curve interarrivals and fires
/// one detached READ per arrival against a random (fh, size) from `files`,
/// recording completion latency into `counters`. In-flight reads count in
/// `stop->live_workers`, so run_measurement's drain waits for the tail.
Task<void> open_loop_nfs_reads(
    nfs::NfsClient& client, std::shared_ptr<const LoadCurve> curve,
    std::shared_ptr<const std::vector<std::pair<std::uint64_t, std::uint64_t>>>
        files,
    std::uint32_t request_size, std::uint32_t seed, StopFlag* stop,
    Counters* counters);

}  // namespace ncache::workload
