#include "workload/web_workloads.h"

namespace ncache::workload {

WebFileSet build_web_fileset(fs::FsImageBuilder& image,
                             std::uint64_t working_set_bytes,
                             std::uint64_t mean_page_bytes,
                             std::uint32_t seed) {
  // SPECweb99-like size classes (weight, size-as-fraction-of-mean): many
  // small pages, a tail of large ones; calibrated so the weighted mean is
  // ~1.0x `mean_page_bytes`.
  struct Class {
    double weight;
    double scale;
  };
  static const Class kClasses[] = {
      {0.35, 0.12},  // small html
      {0.50, 0.60},  // images
      {0.14, 3.00},  // documents
      {0.01, 13.0},  // downloads
  };

  WebFileSet out;
  Pcg32 rng(seed);
  std::uint64_t accumulated = 0;
  std::uint32_t index = 0;
  while (accumulated < working_set_bytes) {
    double u = rng.uniform();
    double scale = kClasses[3].scale;
    for (const auto& c : kClasses) {
      if (u < c.weight) {
        scale = c.scale;
        break;
      }
      u -= c.weight;
    }
    // +/-30% spread within a class.
    double jitter = 0.7 + 0.6 * rng.uniform();
    auto size = std::uint64_t(double(mean_page_bytes) * scale * jitter);
    size = std::max<std::uint64_t>(size, 512);
    size = std::min(size, working_set_bytes);  // no monster outliers

    std::string name = "p" + std::to_string(index++);
    if (image.add_file(name, size) == 0) break;  // volume full
    out.paths.push_back("/" + name);
    out.sizes.push_back(size);
    accumulated += size;
  }
  out.total_bytes = accumulated;
  return out;
}

Task<void> web_get_worker(http::HttpClient& client,
                          std::shared_ptr<const WebFileSet> files,
                          std::shared_ptr<const ZipfSampler> zipf,
                          std::uint32_t seed, StopFlag* stop,
                          Counters* counters) {
  ++stop->live_workers;
  Pcg32 rng(seed);
  while (!stop->stopped) {
    std::size_t rank = zipf->sample(rng);
    const std::string& path = files->paths[rank];
    auto r = co_await client.get(path);
    counters->record(r.content_length, 0, r.status == 200);
  }
  --stop->live_workers;
}

Task<void> web_hot_worker(http::HttpClient& client, std::string path,
                          StopFlag* stop, Counters* counters) {
  ++stop->live_workers;
  while (!stop->stopped) {
    auto r = co_await client.get(path);
    counters->record(r.content_length, 0, r.status == 200);
  }
  --stop->live_workers;
}

}  // namespace ncache::workload
