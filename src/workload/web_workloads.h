// SPECweb99-style web workload (§5.3): page popularity follows Zipf's law
// (Breslau et al.), page sizes come from a class table tuned to the
// paper's ~75 KB average, and a configurable working-set size drives the
// Fig 6(a) sweep.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/zipf.h"
#include "fs/image_builder.h"
#include "http/client.h"
#include "workload/counters.h"

namespace ncache::workload {

struct WebFileSet {
  std::vector<std::string> paths;  ///< "/pN" page names, rank order
  std::vector<std::uint64_t> sizes;
  std::uint64_t total_bytes = 0;
};

/// Builds the page set into the fs image: `working_set_bytes` of pages
/// whose sizes follow a SPECweb99-like class mix with the given mean.
/// Pages are named "p0".."pN-1" in popularity-rank order.
WebFileSet build_web_fileset(fs::FsImageBuilder& image,
                             std::uint64_t working_set_bytes,
                             std::uint64_t mean_page_bytes = 75 * 1024,
                             std::uint32_t seed = 42);

/// One HTTP worker: Zipf-samples pages and GETs them until stopped.
Task<void> web_get_worker(http::HttpClient& client,
                          std::shared_ptr<const WebFileSet> files,
                          std::shared_ptr<const ZipfSampler> zipf,
                          std::uint32_t seed, StopFlag* stop,
                          Counters* counters);

/// Repeatedly fetches one small hot set (the §5.5 all-hit microbenchmark)
/// with a fixed request (= page) size.
Task<void> web_hot_worker(http::HttpClient& client, std::string path,
                          StopFlag* stop, Counters* counters);

}  // namespace ncache::workload
