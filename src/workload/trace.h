// ATP-style NFS trace player (§5.3 drives its microbenchmarks with
// "synthetic traces and an Active Trace Player" [20]).
//
// A trace is a list of timestamped NFS operations. The player replays it
// either closed-loop (each op waits for the previous; think-time = the
// timestamp gaps) or open-loop (ops fire at their timestamps regardless of
// completion, like ATP's accelerated replay). Traces round-trip through a
// simple text format:
//
//   <time_us> read    <fh> <offset> <len>
//   <time_us> write   <fh> <offset> <len>
//   <time_us> getattr <fh>
//   <time_us> lookup  <name>
#pragma once

#include <string>
#include <vector>

#include "nfs/client.h"
#include "workload/counters.h"

namespace ncache::workload {

enum class TraceOpType { Read, Write, Getattr, Lookup };

struct TraceOp {
  sim::Duration at = 0;  ///< offset from trace start, ns
  TraceOpType type = TraceOpType::Read;
  std::uint64_t fh = 0;
  std::uint64_t offset = 0;
  std::uint32_t len = 0;
  std::string name;  ///< Lookup only

  friend bool operator==(const TraceOp&, const TraceOp&) = default;
};

class TracePlayer {
 public:
  TracePlayer(sim::EventLoop& loop, nfs::NfsClient& client,
              std::vector<TraceOp> ops)
      : loop_(loop), client_(client), ops_(std::move(ops)) {}

  /// Replays honouring inter-op gaps; each op completes before the next
  /// is issued.
  Task<void> play_closed(Counters* counters);

  /// Issues each op at its timestamp (divided by `speedup`), not waiting
  /// for completions. Returns once every op has completed.
  Task<void> play_open(Counters* counters, double speedup = 1.0);

  std::size_t size() const noexcept { return ops_.size(); }

  // --- text format -----------------------------------------------------------
  static std::vector<TraceOp> parse(std::string_view text);
  static std::string format(const std::vector<TraceOp>& ops);

  // --- synthetic generators ---------------------------------------------------
  /// Sequential whole-file read split into `request` chunks with a fixed
  /// inter-arrival gap.
  static std::vector<TraceOp> synth_sequential_read(std::uint64_t fh,
                                                    std::uint64_t file_size,
                                                    std::uint32_t request,
                                                    sim::Duration gap);

 private:
  Task<void> issue(const TraceOp& op, Counters* counters);

  sim::EventLoop& loop_;
  nfs::NfsClient& client_;
  std::vector<TraceOp> ops_;
};

}  // namespace ncache::workload
