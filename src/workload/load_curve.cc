#include "workload/load_curve.h"

#include <cmath>

namespace ncache::workload {

double LoadCurve::rate_at(sim::Time now) const {
  double rate = config_.base_rate_per_sec;
  if (config_.diurnal_amplitude > 0.0 && config_.diurnal_period > 0) {
    double phase = double(now % config_.diurnal_period) /
                   double(config_.diurnal_period);
    rate *= 1.0 + config_.diurnal_amplitude * std::sin(2.0 * M_PI * phase);
  }
  for (const auto& s : config_.spikes) {
    if (now >= s.start && now < s.start + s.duration) rate *= s.multiplier;
  }
  return rate < 1.0 ? 1.0 : rate;
}

sim::Duration LoadCurve::interarrival_at(sim::Time now, Pcg32& rng) const {
  // Exponential draw with mean 1/rate; 1-u keeps the log argument in (0,1].
  double u = 1.0 - rng.uniform();
  double seconds = -std::log(u) / rate_at(now);
  auto ns = sim::Duration(seconds * 1e9);
  return ns == 0 ? 1 : ns;  // never two arrivals at the same instant
}

namespace {

// Free coroutine, everything by value/pointer: detached frames must not
// reference a caller's locals.
Task<void> one_read(nfs::NfsClient* client, std::uint64_t fh,
                    std::uint64_t offset, std::uint32_t count,
                    sim::Time launched, StopFlag* stop, Counters* counters) {
  ++stop->live_workers;
  auto r = co_await client->read(fh, offset, count);
  counters->record(r.data.size(), client->loop().now() - launched,
                   r.status == nfs::Status::Ok);
  --stop->live_workers;
}

}  // namespace

Task<void> open_loop_nfs_reads(
    nfs::NfsClient& client, std::shared_ptr<const LoadCurve> curve,
    std::shared_ptr<const std::vector<std::pair<std::uint64_t, std::uint64_t>>>
        files,
    std::uint32_t request_size, std::uint32_t seed, StopFlag* stop,
    Counters* counters) {
  ++stop->live_workers;
  Pcg32 rng(seed * 40503u + 9973u);
  sim::EventLoop& loop = client.loop();
  while (!stop->stopped) {
    co_await sleep_for(loop, curve->interarrival_at(loop.now(), rng));
    if (stop->stopped) break;
    const auto& [fh, size] = (*files)[rng.below(std::uint32_t(files->size()))];
    std::uint64_t chunks = std::max<std::uint64_t>(1, size / request_size);
    std::uint64_t offset = std::uint64_t(rng.below(std::uint32_t(chunks))) *
                           request_size;
    std::uint32_t want = std::uint32_t(
        std::min<std::uint64_t>(request_size, size - offset));
    one_read(&client, fh, offset, want, loop.now(), stop, counters)
        .detach(loop.reaper());
  }
  --stop->live_workers;
}

}  // namespace ncache::workload
