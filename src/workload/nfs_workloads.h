// NFS workload generators reproducing §5.3:
//
//  * sequential_read_worker — the *all-miss* microbenchmark: sequentially
//    read a file far larger than every cache, so each request reaches the
//    storage server;
//  * hot_read_worker — the *all-hit* microbenchmark: repeatedly read a
//    small (5 MB) file that stays resident;
//  * SpecSfsWorkload — the SPECsfs-flavoured macrobenchmark: an op mix
//    over a 10 % active file set with small-request-dominated sizes, a
//    5:1 read:write ratio among data ops, and a sweepable fraction of
//    regular-data vs metadata operations (Fig 7's x-axis).
#pragma once

#include <memory>
#include <vector>

#include "common/rng.h"
#include "nfs/client.h"
#include "workload/counters.h"

namespace ncache::workload {

/// Sequentially reads [start_offset, file_size) in `request_size` chunks,
/// wrapping around, until `stop->stopped`. One worker models one
/// outstanding request stream (the paper tunes daemon/stream counts).
Task<void> sequential_read_worker(nfs::NfsClient& client, std::uint64_t fh,
                                  std::uint64_t file_size,
                                  std::uint32_t request_size,
                                  std::uint64_t start_offset, StopFlag* stop,
                                  Counters* counters);

/// Windowed sequential reader: several workers share one cursor, so the
/// file is read in strict offset order with (workers) requests in flight —
/// the ATP-style pipelined sequential stream the all-miss microbenchmark
/// needs to saturate the storage path while keeping disks sequential.
Task<void> windowed_sequential_worker(nfs::NfsClient& client,
                                      std::uint64_t fh,
                                      std::uint64_t file_size,
                                      std::uint32_t request_size,
                                      std::shared_ptr<std::uint64_t> cursor,
                                      StopFlag* stop, Counters* counters);

/// Repeatedly reads random aligned chunks of a small resident file.
Task<void> hot_read_worker(nfs::NfsClient& client, std::uint64_t fh,
                           std::uint64_t file_size, std::uint32_t request_size,
                           std::uint32_t seed, StopFlag* stop,
                           Counters* counters);

struct SpecSfsConfig {
  /// Fraction of operations that touch regular data (READ/WRITE); the
  /// remainder are metadata ops (GETATTR/LOOKUP/READDIR). Fig 7 sweeps
  /// this.
  double data_op_fraction = 0.5;
  /// Among data ops: reads / (reads + writes). Default 5:1 (§5.3).
  double read_fraction = 5.0 / 6.0;
  /// Request-size distribution: SPECsfs is dominated by small requests
  /// (<16 KB); sizes drawn from {4K x8, 8K x4, 16K x2, 32K x1}.
  std::vector<std::uint32_t> size_table = {
      4096, 4096, 4096, 4096, 4096,  4096,  4096,  4096,
      8192, 8192, 8192, 8192, 16384, 16384, 32768};
  std::uint32_t seed = 1;
};

/// One SPECsfs worker: issues the op mix against a pre-built file set.
/// `files` are (fh, size) pairs — the active set (10 % of the volume).
Task<void> specsfs_worker(nfs::NfsClient& client,
                          std::shared_ptr<const std::vector<
                              std::pair<std::uint64_t, std::uint64_t>>> files,
                          SpecSfsConfig config, std::uint32_t worker_id,
                          StopFlag* stop, Counters* counters);

}  // namespace ncache::workload
