// iSCSI initiator: the app server's block client.
//
// This is one of the two places the paper modifies the kernel (<150 lines,
// Table 1): the initiator's socket call sites are switched to the extended
// zero-copy interface, and NCache attaches two hooks here:
//
//   * ingest hook — when a Data-In payload for *regular file data*
//     completes, the payload chain is inserted into the LBN cache and a
//     key-bearing message travels up instead (the §3.2 flow, steps 2-3);
//   * remap hook — when a key-bearing dirty block is flushed, the FHO
//     cache entry is remapped to the LBN named in the write (§3.4).
//
// Metadata transfers always use the classic copy path, so the file system
// above can interpret them.
#pragma once

#include <functional>
#include <unordered_map>

#include "blockdev/block_store.h"
#include "common/overload.h"
#include "common/rng.h"
#include "iscsi/pdu.h"
#include "proto/stack.h"

namespace ncache::iscsi {

/// How the initiator represents completed *regular data* read payloads.
enum class PayloadPolicy {
  Copy,    ///< physical copy into a contiguous buffer (NFS-original)
  NCache,  ///< hand to the ingest hook; keys travel up (NFS-NCache)
  Junk,    ///< placeholder only, no data movement (NFS-baseline)
};

/// Abstract async block client so the file system can also run directly on
/// a local BlockStore in unit tests.
class BlockClient {
 public:
  virtual ~BlockClient() = default;

  /// Reads `count` fs blocks at `lbn`. `metadata` is the inode-type hint
  /// (§3.3) that classifies the payload.
  virtual Task<netbuf::MsgBuffer> read_blocks(std::uint64_t lbn,
                                              std::uint32_t count,
                                              bool metadata) = 0;
  /// Writes whole blocks; payload may be logical (key-bearing).
  virtual Task<bool> write_blocks(std::uint64_t lbn, netbuf::MsgBuffer data,
                                  bool metadata) = 0;
};

struct InitiatorStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t read_bytes = 0;
  std::uint64_t write_bytes = 0;
  std::uint64_t ingests = 0;
  std::uint64_t remaps = 0;
  std::uint64_t errors = 0;
  std::uint64_t session_drops = 0;     ///< sessions declared dead
  std::uint64_t command_timeouts = 0;  ///< watchdog expiries that killed one
  std::uint64_t login_attempts = 0;    ///< reconnect tries (incl. failures)
  std::uint64_t relogins = 0;          ///< successful session re-logins
  std::uint64_t replays = 0;           ///< commands replayed after re-login
  std::uint64_t io_retries = 0;        ///< reads retried on CHECK CONDITION
  std::uint64_t budget_denied = 0;     ///< retries refused by the budget
};

class IscsiInitiator final : public BlockClient {
 public:
  using IngestHook =
      std::function<netbuf::MsgBuffer(std::uint64_t lbn, netbuf::MsgBuffer)>;
  using RemapHook =
      std::function<void(std::uint64_t lbn, const netbuf::MsgBuffer&)>;
  /// Presence probe into the LBN cache: when every block of a regular-data
  /// read is already cached, the read is served locally (the
  /// network-centric cache acting as second-level cache, §3.4).
  using LbnProbe = std::function<bool(std::uint64_t lbn)>;

  /// Session-recovery policy (all delays in sim nanoseconds, all decisions
  /// deterministic).
  struct RecoveryConfig {
    bool auto_reconnect = true;
    /// A tracked command with no response (or Data-In progress) for this
    /// long declares the session dead and triggers recovery.
    sim::Duration command_timeout = 2 * sim::kSecond;
    sim::Duration initial_backoff = 10 * sim::kMillisecond;
    sim::Duration max_backoff = 640 * sim::kMillisecond;
    unsigned max_read_retries = 4;  ///< rereads after CHECK CONDITION
    sim::Duration read_retry_backoff = 5 * sim::kMillisecond;
  };

  IscsiInitiator(proto::NetworkStack& stack, proto::Ipv4Addr local_ip,
                 proto::Ipv4Addr target_ip, std::uint32_t target_id,
                 std::uint16_t target_port = kIscsiPort);

  /// Connects the TCP session and performs login; on success any commands
  /// parked while disconnected are replayed. Must complete before I/O.
  Task<bool> login();
  bool connected() const noexcept { return conn_ && conn_->established(); }

  /// Tears the session down (RST to the target). With `allow_reconnect`
  /// the re-login loop starts with capped exponential backoff and in-flight
  /// commands replay after login; without it (node crash) every in-flight
  /// command fails and the initiator stays down until login() is called.
  void abort_session(bool allow_reconnect = true);

  RecoveryConfig& recovery() noexcept { return recovery_; }

  Task<netbuf::MsgBuffer> read_blocks(std::uint64_t lbn, std::uint32_t count,
                                      bool metadata) override;
  Task<bool> write_blocks(std::uint64_t lbn, netbuf::MsgBuffer data,
                          bool metadata) override;

  /// Round-trip liveness probe (NOP-Out / NOP-In).
  Task<bool> ping();

  void set_payload_policy(PayloadPolicy p) noexcept { policy_ = p; }
  PayloadPolicy payload_policy() const noexcept { return policy_; }
  void set_ingest_hook(IngestHook h) { ingest_ = std::move(h); }
  void set_remap_hook(RemapHook h) { remap_ = std::move(h); }
  void set_lbn_probe(LbnProbe p) { probe_ = std::move(p); }

  std::uint32_t target_id() const noexcept { return target_id_; }
  const InitiatorStats& stats() const noexcept { return stats_; }

  /// Publishes iscsi.* counters (including the recovery ones) under `node`.
  /// Call after set_retry_budget so the budget counter registers too.
  void register_metrics(MetricRegistry& registry, const std::string& node);

  /// Shared retry budget (one per node; the NFS/peer paths on the same
  /// node draw from it too). When set, CHECK CONDITION rereads and
  /// re-login attempts past the first must win a token; a denied reread
  /// fails the I/O, a denied re-login waits out the backoff cap.
  void set_retry_budget(overload::RetryBudget* budget) {
    retry_budget_ = budget;
  }

 private:
  struct Pending {
    netbuf::MsgBuffer accumulated;
    std::function<void(Pdu)> on_response;  ///< fires on ScsiResponse/NopIn/LoginResponse
    std::optional<Pdu> early_response;     ///< response beat the waiter
    std::vector<Pdu> frames;  ///< command (+ Data-Out) kept for replay
    bool replayable = false;  ///< SCSI commands replay; login/nop fail fast
    sim::Time deadline = 0;   ///< watchdog expiry (replayable only)
  };

  void on_stream(netbuf::MsgBuffer chunk);
  void on_pdu(Pdu pdu);
  /// Assigns ITT/CmdSN, registers tracking, transmits. Returns the ITT.
  std::uint32_t send_tracked(Pdu pdu);
  Task<Pdu> wait_response(std::uint32_t itt);
  Task<Pdu> send_and_wait(Pdu pdu);

  /// TCP connect + login exchange + replay of parked commands.
  Task<bool> establish();
  void on_conn_closed();
  /// Common session-death path: clears framing state, fails waiters that
  /// cannot replay (all of them when `fail_all`), optionally starts the
  /// reconnect loop.
  void handle_session_down(bool allow_reconnect, bool fail_all);
  Task<void> reconnect_loop();
  void replay_pending();
  void arm_watchdog();
  void watchdog_fire();

  proto::NetworkStack& stack_;
  proto::Ipv4Addr local_ip_;
  proto::Ipv4Addr target_ip_;
  std::uint32_t target_id_;
  std::uint16_t target_port_;

  proto::TcpConnectionPtr conn_;
  PduParser parser_;
  std::unordered_map<std::uint32_t, Pending> pending_;
  std::uint32_t next_itt_ = 1;
  std::uint32_t cmd_sn_ = 1;

  RecoveryConfig recovery_;
  Pcg32 rng_{0x15ca51};  ///< backoff jitter; reseeded per-initiator below
  bool reconnecting_ = false;
  bool watchdog_armed_ = false;
  bool down_ = false;  ///< deliberately aborted; no auto-reconnect

  PayloadPolicy policy_ = PayloadPolicy::Copy;
  overload::RetryBudget* retry_budget_ = nullptr;
  IngestHook ingest_;
  RemapHook remap_;
  LbnProbe probe_;
  InitiatorStats stats_;
};

/// Direct, in-process block client (no network): used by fs unit tests and
/// by mkfs-time population.
class LocalBlockClient final : public BlockClient {
 public:
  LocalBlockClient(blockdev::BlockStore& store, netbuf::CopyEngine& copier)
      : store_(store), copier_(copier) {}

  Task<netbuf::MsgBuffer> read_blocks(std::uint64_t lbn, std::uint32_t count,
                                      bool metadata) override;
  Task<bool> write_blocks(std::uint64_t lbn, netbuf::MsgBuffer data,
                          bool metadata) override;

 private:
  blockdev::BlockStore& store_;
  netbuf::CopyEngine& copier_;
};

}  // namespace ncache::iscsi
