#include "iscsi/target.h"

#include "common/logging.h"

namespace ncache::iscsi {

using netbuf::CopyClass;
using netbuf::MsgBuffer;

IscsiTarget::IscsiTarget(proto::NetworkStack& stack,
                         blockdev::BlockStore& store, std::uint16_t port)
    : stack_(stack), store_(store), port_(port) {}

void IscsiTarget::start() {
  stack_.tcp_listen(port_,
                    [this](proto::TcpConnectionPtr c) { on_accept(std::move(c)); });
}

void IscsiTarget::on_accept(proto::TcpConnectionPtr conn) {
  auto session = std::make_shared<Session>(*this, std::move(conn));
  // The connection's handler slots are never cleared (they live as long as
  // the TcpConnection), and the session holds the connection — so these
  // captures must be weak or they tie a Session<->TcpConnection cycle.
  // sessions_ owns the session; in-flight I/O coroutines pin it via
  // shared_from_this().
  std::weak_ptr<Session> weak = session;
  session->conn->set_data_handler([weak](MsgBuffer m) {
    if (auto s = weak.lock()) s->on_data(std::move(m));
  });
  session->conn->set_on_close([this, weak] {
    if (auto s = weak.lock()) std::erase(sessions_, s);
  });
  sessions_.push_back(std::move(session));
}

void IscsiTarget::Session::on_data(MsgBuffer chunk) {
  // Stream chunks land here straight out of TCP; the PDU framer charges no
  // copy (sk_buffs travel by reference inside the kernel) — copies happen
  // when payloads cross into the target process below.
  auto self = shared_from_this();
  parser.feed(std::move(chunk), [self](Pdu p) { self->handle(std::move(p)); });
}

void IscsiTarget::Session::send_pdu(Pdu pdu) {
  pdu.exp_sn = stat_sn++;
  conn->send(pdu.to_stream());
}

void IscsiTarget::Session::send_status(std::uint32_t itt, ScsiStatus status) {
  Pdu resp;
  resp.opcode = Opcode::ScsiResponse;
  resp.itt = itt;
  resp.status = status;
  send_pdu(std::move(resp));
}

void IscsiTarget::Session::handle(Pdu pdu) {
  auto& copier = target.stack_.copier();
  const auto& costs = target.stack_.costs();

  switch (pdu.opcode) {
    case Opcode::LoginRequest: {
      ++target.stats_.logins;
      Pdu resp;
      resp.opcode = Opcode::LoginResponse;
      resp.itt = pdu.itt;
      resp.data = MsgBuffer::from_string("TargetPortalGroupTag=1");
      send_pdu(std::move(resp));
      return;
    }
    case Opcode::NopOut: {
      Pdu resp;
      resp.opcode = Opcode::NopIn;
      resp.itt = pdu.itt;
      resp.data = copier.copy_message(pdu.data, CopyClass::Metadata);
      send_pdu(std::move(resp));
      return;
    }
    case Opcode::ScsiCommand: {
      auto rw = parse_rw_cdb(pdu.cdb);
      if (!rw) {
        ++target.stats_.bad_commands;
        send_status(pdu.itt, ScsiStatus::CheckCondition);
        return;
      }
      copier.cpu().charge(costs.request_ns);  // command decode + task setup
      if (rw->is_write) {
        Session::WriteState ws;
        ws.lbn = rw->lba;
        ws.expected = pdu.expected_length;
        // Immediate data may ride on the command PDU.
        if (!pdu.data.empty()) ws.accumulated = std::move(pdu.data);
        std::uint32_t itt = pdu.itt;
        writes[itt] = std::move(ws);
        if (writes[itt].accumulated.size() >= writes[itt].expected) {
          do_write_complete(itt).detach(target.stack_.loop().reaper());
        }
      } else {
        do_read(std::move(pdu), *rw).detach(target.stack_.loop().reaper());
      }
      return;
    }
    case Opcode::ScsiDataOut: {
      auto it = writes.find(pdu.itt);
      if (it == writes.end()) {
        ++target.stats_.bad_commands;
        return;
      }
      it->second.accumulated.append(std::move(pdu.data));
      if (it->second.accumulated.size() >= it->second.expected) {
        do_write_complete(pdu.itt).detach(target.stack_.loop().reaper());
      }
      return;
    }
    default:
      ++target.stats_.bad_commands;
      return;
  }
}

Task<void> IscsiTarget::Session::do_read(Pdu cmd, ScsiRw rw) {
  auto self = shared_from_this();  // keep session alive across the disk I/O
  (void)self;
  auto& copier = target.stack_.copier();
  const auto& costs = target.stack_.costs();
  constexpr std::size_t kBlk = blockdev::kBlockSize;

  ++target.stats_.reads;

  MsgBuffer wire;
  // §6 extension: serve straight from the target's wire-format cache.
  bool all_hit = false;
  if (target.wire_lookup_) {
    all_hit = true;
    MsgBuffer assembled;
    for (std::uint32_t i = 0; i < rw.blocks && all_hit; ++i) {
      auto chain = target.wire_lookup_(rw.lba + i);
      if (chain && chain->size() == kBlk) {
        assembled.append(std::move(*chain));
      } else {
        all_hit = false;
      }
    }
    if (all_hit) {
      ++target.stats_.wire_cache_hits;
      target.stats_.read_bytes += assembled.size();
      wire = std::move(assembled);  // zero copies on the target
    }
  }

  if (!all_hit) {
    auto result = co_await target.store_.read(rw.lba, rw.blocks);
    if (!result.ok) {
      // Medium error (latent sector or CRC mismatch): surface it as CHECK
      // CONDITION so the initiator can retry — never serve corrupt bytes.
      ++target.stats_.read_faults;
      send_status(cmd.itt, ScsiStatus::CheckCondition);
      co_return;
    }
    std::vector<std::byte> bytes = std::move(result.data);
    target.stats_.read_bytes += bytes.size();
    // Block-layer + IDE interrupt work for this I/O, on the storage CPU.
    copier.cpu().charge(costs.disk_io_cpu_ns +
                        sim::Duration(costs.disk_io_cpu_ns_per_byte *
                                      double(bytes.size())));
    if (target.wire_insert_) {
      ++target.stats_.wire_cache_misses;
      // One copy: disk buffer straight into wire-format buffers, which are
      // then both sent and cached (the §6 "disk-resident data in a
      // network-ready format" data path).
      wire = copier.copy_bytes_in(bytes, CopyClass::RegularData);
      for (std::uint32_t i = 0; i < rw.blocks; ++i) {
        target.wire_insert_(rw.lba + i,
                            wire.slice(std::size_t(i) * kBlk, kBlk));
      }
    } else {
      // Stock path. Copy 1: disk buffer -> target process buffer.
      MsgBuffer payload = copier.copy_bytes_in(bytes, CopyClass::RegularData);
      // Copy 2: process buffer -> socket. After this the payload travels
      // by reference through TCP.
      wire = copier.copy_message(payload, CopyClass::RegularData);
    }
  }

  // Emit Data-In PDUs of at most kMaxDataSegment each, then the response.
  std::uint32_t off = 0;
  std::uint32_t dsn = 0;
  while (off < wire.size()) {
    auto take = std::uint32_t(
        std::min<std::size_t>(kMaxDataSegment, wire.size() - off));
    Pdu din;
    din.opcode = Opcode::ScsiDataIn;
    din.itt = cmd.itt;
    din.data_sn = dsn++;
    din.buffer_offset = off;
    din.final_flag = off + take == wire.size();
    din.data = wire.slice(off, take);
    send_pdu(std::move(din));
    off += take;
  }
  send_status(cmd.itt, ScsiStatus::Good);
}

Task<void> IscsiTarget::Session::do_write_complete(std::uint32_t itt) {
  auto self = shared_from_this();  // keep session alive across the disk I/O
  (void)self;
  auto it = writes.find(itt);
  if (it == writes.end()) co_return;
  WriteState ws = std::move(it->second);
  writes.erase(it);

  auto& copier = target.stack_.copier();
  ++target.stats_.writes;
  target.stats_.write_bytes += ws.accumulated.size();

  // Copy 1: socket -> target process buffer; copy 2: process -> disk
  // buffer. (With the wire cache attached, the received chain is also
  // ingested as-is — a logical insert, no extra copy — so subsequent reads
  // of these blocks skip the disk AND the copies.)
  MsgBuffer staged = copier.copy_message(ws.accumulated, CopyClass::RegularData);
  std::vector<std::byte> bytes(staged.size());
  copier.copy_bytes_out(staged, bytes, CopyClass::RegularData);
  if (target.wire_insert_ &&
      ws.accumulated.size() % blockdev::kBlockSize == 0 &&
      ws.accumulated.fully_physical()) {
    constexpr std::size_t kBlk = blockdev::kBlockSize;
    for (std::size_t i = 0; i * kBlk < ws.accumulated.size(); ++i) {
      target.wire_insert_(ws.lbn + i, ws.accumulated.slice(i * kBlk, kBlk));
    }
  }

  // Round down to whole blocks (protocol guarantees alignment).
  if (bytes.size() % blockdev::kBlockSize != 0) {
    send_status(itt, ScsiStatus::CheckCondition);
    co_return;
  }
  const auto& costs = target.stack_.costs();
  copier.cpu().charge(costs.disk_io_cpu_ns +
                      sim::Duration(costs.disk_io_cpu_ns_per_byte *
                                    double(bytes.size())));
  co_await target.store_.write(ws.lbn, std::move(bytes));
  send_status(itt, ScsiStatus::Good);
}

}  // namespace ncache::iscsi
