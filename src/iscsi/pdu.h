// iSCSI PDU subset (RFC 3720-shaped): login, SCSI command with Read(10)/
// Write(10) CDBs, Data-In/Data-Out, SCSI response, and NOP.
//
// The Basic Header Segment is a real 48-byte serialized structure; the
// data segment follows, padded to a 4-byte boundary. Field placement
// follows the RFC's common layout (opcode-specific words are documented
// inline where we diverge for simplicity).
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "common/bytes.h"
#include "netbuf/msg_buffer.h"

namespace ncache::iscsi {

enum class Opcode : std::uint8_t {
  NopOut = 0x00,
  ScsiCommand = 0x01,
  LoginRequest = 0x03,
  ScsiDataOut = 0x05,
  NopIn = 0x20,
  ScsiResponse = 0x21,
  LoginResponse = 0x23,
  ScsiDataIn = 0x25,
};

enum class ScsiStatus : std::uint8_t {
  Good = 0x00,
  CheckCondition = 0x02,
};

constexpr std::size_t kBhsBytes = 48;
constexpr std::uint16_t kIscsiPort = 3260;
/// MaxRecvDataSegmentLength we "negotiate": one Data-In/Out PDU carries at
/// most this much payload.
constexpr std::size_t kMaxDataSegment = 8192;

/// SCSI block size exposed by the target: matches the fs block so one LBN
/// is one file-system block (the paper keys the LBN cache this way).
constexpr std::size_t kScsiBlockSize = 4096;

struct Pdu {
  Opcode opcode = Opcode::NopOut;
  bool final_flag = true;
  std::uint64_t lun = 0;
  std::uint32_t itt = 0;      ///< initiator task tag
  std::uint32_t expected_length = 0;  ///< ScsiCommand: total transfer bytes
  std::uint32_t cmd_sn = 0;
  std::uint32_t exp_sn = 0;
  std::uint32_t data_sn = 0;         ///< Data-In/Out ordering
  std::uint32_t buffer_offset = 0;   ///< Data-In/Out placement
  ScsiStatus status = ScsiStatus::Good;
  std::array<std::uint8_t, 16> cdb{};  ///< ScsiCommand only

  netbuf::MsgBuffer data;  ///< data segment (may be logical pre-egress)

  /// Serializes the 48-byte BHS (not the data segment).
  std::vector<std::byte> serialize_bhs() const;
  static Pdu parse_bhs(std::span<const std::byte> bhs);

  std::size_t data_padding() const noexcept {
    return (4 - (data.size() & 3)) & 3;
  }
  /// BHS + data + pad: bytes this PDU occupies on the TCP stream.
  std::size_t stream_size() const noexcept {
    return kBhsBytes + data.size() + data_padding();
  }

  /// Whole PDU as a stream message: BHS bytes followed by the data segment
  /// (spliced, not copied) and padding.
  netbuf::MsgBuffer to_stream() const;
};

// --- SCSI CDBs --------------------------------------------------------------

struct ScsiRw {
  bool is_write = false;
  std::uint32_t lba = 0;     ///< in kScsiBlockSize units
  std::uint16_t blocks = 0;
};

/// Builds a Read(10) (0x28) or Write(10) (0x2A) CDB.
std::array<std::uint8_t, 16> make_rw_cdb(const ScsiRw& rw);
/// Parses a Read/Write(10) CDB; nullopt for other opcodes.
std::optional<ScsiRw> parse_rw_cdb(const std::array<std::uint8_t, 16>& cdb);

/// Incremental PDU framer over a TCP byte stream. Feed in-order stream
/// chunks; complete PDUs pop out. The receiver side always sees physical
/// bytes (NCache substitution happens on the sender's NIC egress).
class PduParser {
 public:
  /// Appends a stream chunk; calls `sink` for each completed PDU.
  void feed(netbuf::MsgBuffer chunk,
            const std::function<void(Pdu)>& sink);

  std::size_t buffered() const noexcept { return pending_.size(); }

 private:
  netbuf::MsgBuffer pending_;
  std::optional<Pdu> header_;   ///< parsed BHS awaiting its data segment
  std::size_t need_ = kBhsBytes;
};

}  // namespace ncache::iscsi
