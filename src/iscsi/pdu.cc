#include "iscsi/pdu.h"

#include <stdexcept>

namespace ncache::iscsi {

std::vector<std::byte> Pdu::serialize_bhs() const {
  std::vector<std::byte> out;
  out.reserve(kBhsBytes);
  ByteWriter w(out);
  w.u8(static_cast<std::uint8_t>(opcode));
  w.u8(final_flag ? 0x80 : 0x00);  // flags
  w.u16(0);                        // opcode-specific flags (unused)
  w.u8(0);                         // total AHS length
  // 24-bit DataSegmentLength.
  auto dlen = std::uint32_t(data.size());
  w.u8(static_cast<std::uint8_t>(dlen >> 16));
  w.u16(static_cast<std::uint16_t>(dlen));
  w.u64(lun);
  w.u32(itt);
  w.u32(expected_length);
  w.u32(cmd_sn);
  w.u32(exp_sn);
  // Bytes 32-47 are opcode-specific, as in RFC 3720: the CDB for SCSI
  // commands, DataSN/BufferOffset/Status for data and response PDUs.
  if (opcode == Opcode::ScsiCommand) {
    for (std::uint8_t b : cdb) w.u8(b);
  } else {
    w.u32(data_sn);
    w.u32(buffer_offset);
    w.u8(static_cast<std::uint8_t>(status));
    w.zeros(7);
  }
  if (out.size() != kBhsBytes) {
    throw std::logic_error("Pdu::serialize_bhs: layout size mismatch");
  }
  return out;
}

Pdu Pdu::parse_bhs(std::span<const std::byte> bhs) {
  if (bhs.size() < kBhsBytes) {
    throw std::invalid_argument("Pdu::parse_bhs: short header");
  }
  ByteReader r(bhs.subspan(0, kBhsBytes));
  Pdu p;
  p.opcode = static_cast<Opcode>(r.u8());
  p.final_flag = (r.u8() & 0x80) != 0;
  r.u16();
  r.u8();
  std::uint32_t dlen = (std::uint32_t(r.u8()) << 16) | r.u16();
  p.lun = r.u64();
  p.itt = r.u32();
  p.expected_length = r.u32();
  p.cmd_sn = r.u32();
  p.exp_sn = r.u32();
  if (p.opcode == Opcode::ScsiCommand) {
    for (auto& b : p.cdb) b = r.u8();
  } else {
    p.data_sn = r.u32();
    p.buffer_offset = r.u32();
    p.status = static_cast<ScsiStatus>(r.u8());
    r.skip(7);
  }
  // Caller attaches the data segment; stash its expected size in
  // expected_length if needed. We return dlen via a convention:
  p.data = netbuf::MsgBuffer::junk(dlen);  // placeholder sized to dlen
  return p;
}

netbuf::MsgBuffer Pdu::to_stream() const {
  netbuf::MsgBuffer out = netbuf::MsgBuffer::from_bytes(serialize_bhs());
  std::size_t pad = data_padding();
  out.append(data);  // splice (shares buffers / keys)
  if (pad) {
    static const std::byte zeros[4] = {};
    out.append(netbuf::MsgBuffer::from_bytes({zeros, pad}));
  }
  return out;
}

std::array<std::uint8_t, 16> make_rw_cdb(const ScsiRw& rw) {
  std::array<std::uint8_t, 16> cdb{};
  cdb[0] = rw.is_write ? 0x2A : 0x28;
  cdb[2] = static_cast<std::uint8_t>(rw.lba >> 24);
  cdb[3] = static_cast<std::uint8_t>(rw.lba >> 16);
  cdb[4] = static_cast<std::uint8_t>(rw.lba >> 8);
  cdb[5] = static_cast<std::uint8_t>(rw.lba);
  cdb[7] = static_cast<std::uint8_t>(rw.blocks >> 8);
  cdb[8] = static_cast<std::uint8_t>(rw.blocks);
  return cdb;
}

std::optional<ScsiRw> parse_rw_cdb(const std::array<std::uint8_t, 16>& cdb) {
  if (cdb[0] != 0x28 && cdb[0] != 0x2A) return std::nullopt;
  ScsiRw rw;
  rw.is_write = cdb[0] == 0x2A;
  rw.lba = (std::uint32_t(cdb[2]) << 24) | (std::uint32_t(cdb[3]) << 16) |
           (std::uint32_t(cdb[4]) << 8) | cdb[5];
  rw.blocks = static_cast<std::uint16_t>((cdb[7] << 8) | cdb[8]);
  return rw;
}

void PduParser::feed(netbuf::MsgBuffer chunk,
                     const std::function<void(Pdu)>& sink) {
  pending_.append(std::move(chunk));
  while (pending_.size() >= need_) {
    if (!header_) {
      auto bhs = pending_.peek_bytes(kBhsBytes);
      Pdu p = Pdu::parse_bhs(bhs);
      std::size_t dlen = p.data.size();  // placeholder length from header
      std::size_t pad = (4 - (dlen & 3)) & 3;
      pending_ = pending_.slice(kBhsBytes, pending_.size() - kBhsBytes);
      header_ = std::move(p);
      need_ = dlen + pad;
      if (need_ == 0) {
        header_->data = {};
        Pdu done = std::move(*header_);
        header_.reset();
        need_ = kBhsBytes;
        sink(std::move(done));
      }
      continue;
    }
    // Data segment (+ pad) is available.
    std::size_t dlen = header_->data.size();
    header_->data = pending_.slice(0, dlen);
    pending_ = pending_.slice(need_, pending_.size() - need_);
    Pdu done = std::move(*header_);
    header_.reset();
    need_ = kBhsBytes;
    sink(std::move(done));
  }
}

}  // namespace ncache::iscsi
