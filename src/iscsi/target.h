// iSCSI target: the storage server process.
//
// Listens on TCP 3260, accepts logins, serves Read(10)/Write(10) against a
// BlockStore. This node is a *plain* server in every configuration — the
// paper applies NCache only to the pass-through application server — so
// its data path pays honest copies: disk buffer -> PDU buffer -> socket on
// reads (2 data copies), socket -> PDU buffer -> disk buffer on writes.
// That CPU load is what saturates the storage server in the all-miss
// experiment (Fig 4) and caps everyone's throughput there.
#pragma once

#include <memory>
#include <unordered_map>

#include "blockdev/block_store.h"
#include "iscsi/pdu.h"
#include "proto/stack.h"

namespace ncache::iscsi {

struct TargetStats {
  std::uint64_t logins = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t read_bytes = 0;
  std::uint64_t write_bytes = 0;
  std::uint64_t bad_commands = 0;
  std::uint64_t read_faults = 0;  ///< media errors surfaced as CHECK CONDITION
  std::uint64_t wire_cache_hits = 0;    ///< reads served without the disk
  std::uint64_t wire_cache_misses = 0;  ///< reads that built fresh chains
};

class IscsiTarget {
 public:
  IscsiTarget(proto::NetworkStack& stack, blockdev::BlockStore& store,
              std::uint16_t port = kIscsiPort);

  /// Begins listening. Safe to call once.
  void start();

  // --- §6 extension seam: wire-format block cache on the *target* -----------
  /// The paper's future-work direction ("organizing disk-resident data in
  /// a network-ready format") applied to the storage server: when these
  /// hooks are attached, read payloads that hit the wire cache are sent
  /// with ZERO target-side copies, cold reads pay ONE copy (disk ->
  /// wire-format buffers) instead of two, and incoming write chains are
  /// ingested for free.
  using ChainLookup =
      std::function<std::optional<netbuf::MsgBuffer>(std::uint64_t lbn)>;
  using ChainInsert =
      std::function<void(std::uint64_t lbn, netbuf::MsgBuffer chain)>;
  void set_wire_cache(ChainLookup lookup, ChainInsert insert) {
    wire_lookup_ = std::move(lookup);
    wire_insert_ = std::move(insert);
  }
  bool wire_cache_attached() const noexcept { return bool(wire_lookup_); }

  const TargetStats& stats() const noexcept { return stats_; }
  blockdev::BlockStore& store() noexcept { return store_; }

 private:
  struct Session : std::enable_shared_from_this<Session> {
    Session(IscsiTarget& t, proto::TcpConnectionPtr c)
        : target(t), conn(std::move(c)) {}

    IscsiTarget& target;
    proto::TcpConnectionPtr conn;
    PduParser parser;
    std::uint32_t stat_sn = 1;

    /// Partially-received SCSI WRITE transfers, keyed by ITT.
    struct WriteState {
      std::uint64_t lbn;
      std::uint32_t expected;
      netbuf::MsgBuffer accumulated;
    };
    std::unordered_map<std::uint32_t, WriteState> writes;

    void on_data(netbuf::MsgBuffer chunk);
    void handle(Pdu pdu);
    Task<void> do_read(Pdu cmd, ScsiRw rw);
    Task<void> do_write_complete(std::uint32_t itt);
    void send_pdu(Pdu pdu);
    void send_status(std::uint32_t itt, ScsiStatus status);
  };

  void on_accept(proto::TcpConnectionPtr conn);

  proto::NetworkStack& stack_;
  blockdev::BlockStore& store_;
  std::uint16_t port_;
  ChainLookup wire_lookup_;
  ChainInsert wire_insert_;
  TargetStats stats_;
  std::vector<std::shared_ptr<Session>> sessions_;
};

}  // namespace ncache::iscsi
