#include "iscsi/initiator.h"

#include <algorithm>

#include "common/logging.h"
#include "common/metrics.h"

namespace ncache::iscsi {

using netbuf::CopyClass;
using netbuf::MsgBuffer;

IscsiInitiator::IscsiInitiator(proto::NetworkStack& stack,
                               proto::Ipv4Addr local_ip,
                               proto::Ipv4Addr target_ip,
                               std::uint32_t target_id,
                               std::uint16_t target_port)
    : stack_(stack),
      local_ip_(local_ip),
      target_ip_(target_ip),
      target_id_(target_id),
      target_port_(target_port),
      rng_(0x15ca51u ^ (std::uint64_t(target_id) << 32) ^ local_ip,
           target_id) {}

Task<bool> IscsiInitiator::login() {
  down_ = false;
  co_return co_await establish();
}

Task<bool> IscsiInitiator::establish() {
  parser_ = PduParser{};  // drop any half-framed bytes from the old session
  conn_ = co_await stack_.tcp_connect(local_ip_, target_ip_, target_port_);
  conn_->set_data_handler(
      [this](MsgBuffer m) { on_stream(std::move(m)); });
  conn_->set_on_close([this] { on_conn_closed(); });

  Pdu req;
  req.opcode = Opcode::LoginRequest;
  req.data = MsgBuffer::from_string(
      "InitiatorName=iqn.2005.ncache:appserver MaxRecvDataSegmentLength=8192");
  Pdu resp = co_await send_and_wait(std::move(req));
  pending_.erase(resp.itt);
  bool ok = resp.opcode == Opcode::LoginResponse;
  if (ok) replay_pending();
  co_return ok;
}

void IscsiInitiator::on_conn_closed() {
  // The peer reset/closed under us; recover unless deliberately down.
  conn_.reset();
  handle_session_down(/*allow_reconnect=*/!down_, /*fail_all=*/down_);
}

void IscsiInitiator::abort_session(bool allow_reconnect) {
  down_ = !allow_reconnect;
  if (conn_) {
    auto old = std::move(conn_);
    conn_.reset();
    old->set_on_close(nullptr);  // we handle the death below, once
    old->set_data_handler(nullptr);
    old->reset();  // RST to the target; its session state evaporates
  }
  handle_session_down(allow_reconnect, /*fail_all=*/!allow_reconnect);
}

void IscsiInitiator::handle_session_down(bool allow_reconnect, bool fail_all) {
  ++stats_.session_drops;
  parser_ = PduParser{};
  // Partially-accumulated Data-In is worthless: replay re-reads everything.
  std::vector<std::uint32_t> doomed;
  for (auto& [itt, p] : pending_) {
    p.accumulated = MsgBuffer{};
    if (fail_all || !p.replayable) doomed.push_back(itt);
  }
  std::sort(doomed.begin(), doomed.end());  // deterministic waiter wakeups
  for (std::uint32_t itt : doomed) {
    auto it = pending_.find(itt);
    Pdu fail;
    fail.opcode = Opcode::ScsiResponse;
    fail.status = ScsiStatus::CheckCondition;
    fail.itt = itt;
    if (it->second.on_response) {
      auto handler = std::move(it->second.on_response);
      pending_.erase(it);
      handler(std::move(fail));
    } else {
      it->second.early_response = std::move(fail);
      it->second.replayable = false;
    }
  }
  if (allow_reconnect && recovery_.auto_reconnect && !reconnecting_) {
    reconnecting_ = true;
    reconnect_loop().detach(stack_.loop().reaper());
  }
}

Task<void> IscsiInitiator::reconnect_loop() {
  sim::Duration backoff = recovery_.initial_backoff;
  bool first_attempt = true;
  for (;;) {
    // ±25% deterministic jitter decorrelates initiators sharing a fabric.
    auto jitter = sim::Duration(double(backoff) * (rng_.uniform() * 0.5 - 0.25));
    co_await sim::sleep_for(stack_.loop(), backoff + jitter);
    if (down_) break;
    if (!first_attempt && retry_budget_ &&
        !retry_budget_->try_withdraw(stack_.loop().now())) {
      // Budget exhausted: keep probing, but only at the backoff cap — a
      // fleet of budget-starved initiators cannot stampede the target.
      ++stats_.budget_denied;
      backoff = recovery_.max_backoff;
      continue;
    }
    first_attempt = false;
    ++stats_.login_attempts;
    if (co_await establish()) {
      ++stats_.relogins;
      break;
    }
    backoff = std::min<sim::Duration>(backoff * 2, recovery_.max_backoff);
  }
  reconnecting_ = false;
}

void IscsiInitiator::replay_pending() {
  std::vector<std::uint32_t> itts;
  for (const auto& [itt, p] : pending_) {
    if (p.replayable) itts.push_back(itt);
  }
  std::sort(itts.begin(), itts.end());  // hash order is not deterministic
  for (std::uint32_t itt : itts) {
    Pending& p = pending_[itt];
    p.deadline = stack_.loop().now() + recovery_.command_timeout;
    ++stats_.replays;
    for (const Pdu& f : p.frames) conn_->send(f.to_stream());
  }
  if (!itts.empty()) arm_watchdog();
}

void IscsiInitiator::arm_watchdog() {
  if (watchdog_armed_) return;
  sim::Time earliest = 0;
  bool any = false;
  for (const auto& [itt, p] : pending_) {
    if (p.replayable && (!any || p.deadline < earliest)) {
      earliest = p.deadline;
      any = true;
    }
  }
  if (!any) return;
  watchdog_armed_ = true;
  stack_.loop().schedule_at(earliest, [this] { watchdog_fire(); });
}

void IscsiInitiator::watchdog_fire() {
  watchdog_armed_ = false;
  if (down_) return;
  sim::Time now = stack_.loop().now();
  bool expired = false;
  for (const auto& [itt, p] : pending_) {
    if (p.replayable && now >= p.deadline) {
      expired = true;
      break;
    }
  }
  if (expired && conn_) {
    // The session has gone quiet past the command timeout: declare it dead
    // and run session recovery (re-login + replay).
    ++stats_.command_timeouts;
    abort_session(/*allow_reconnect=*/true);
    return;
  }
  arm_watchdog();
}

void IscsiInitiator::on_stream(MsgBuffer chunk) {
  parser_.feed(std::move(chunk), [this](Pdu p) { on_pdu(std::move(p)); });
}

void IscsiInitiator::on_pdu(Pdu pdu) {
  auto it = pending_.find(pdu.itt);
  if (it == pending_.end()) {
    ++stats_.errors;
    NC_WARN("iscsi", "initiator: PDU for unknown ITT %u", pdu.itt);
    return;
  }
  if (pdu.opcode == Opcode::ScsiDataIn) {
    it->second.accumulated.append(std::move(pdu.data));
    // Data-In counts as progress: a slow large transfer is not a dead one.
    it->second.deadline = stack_.loop().now() + recovery_.command_timeout;
    return;
  }
  // Terminal PDU for this task.
  if (it->second.on_response) {
    auto handler = std::move(it->second.on_response);
    handler(std::move(pdu));
  } else {
    it->second.early_response = std::move(pdu);
  }
}

std::uint32_t IscsiInitiator::send_tracked(Pdu pdu) {
  pdu.itt = next_itt_++;
  pdu.cmd_sn = cmd_sn_++;
  std::uint32_t itt = pdu.itt;
  Pending& slot = pending_[itt];  // create before the response can race in
  slot.replayable = pdu.opcode == Opcode::ScsiCommand;
  if (slot.replayable) {
    slot.deadline = stack_.loop().now() + recovery_.command_timeout;
    slot.frames.push_back(pdu);  // copy kept for session-recovery replay
  }
  if (conn_) {
    conn_->send(pdu.to_stream());
  } else if (!slot.replayable) {
    // No session and nothing to replay it on: fail the waiter instead of
    // hanging it (login sends on the fresh connection it just made, so
    // only pings land here).
    Pdu fail;
    fail.opcode = Opcode::ScsiResponse;
    fail.status = ScsiStatus::CheckCondition;
    fail.itt = itt;
    slot.early_response = std::move(fail);
  }
  // else: parked; replay_pending() ships it after the next login.
  if (slot.replayable) arm_watchdog();
  return itt;
}

Task<Pdu> IscsiInitiator::wait_response(std::uint32_t itt) {
  AwaitCallback<Pdu> awaiter([this, itt](auto resolve) {
    auto r = std::make_shared<decltype(resolve)>(std::move(resolve));
    auto& slot = pending_[itt];
    if (slot.early_response) {
      // Response already arrived; finish on the next loop turn (the
      // AwaitCallback contract forbids synchronous resolution).
      auto early = std::make_shared<Pdu>(std::move(*slot.early_response));
      slot.early_response.reset();
      stack_.loop().schedule_in(0, [r, early] { (*r)(std::move(*early)); });
    } else {
      slot.on_response = [r](Pdu p) { (*r)(std::move(p)); };
    }
  });
  co_return co_await awaiter;
}

Task<Pdu> IscsiInitiator::send_and_wait(Pdu pdu) {
  std::uint32_t itt = send_tracked(std::move(pdu));
  co_return co_await wait_response(itt);
}

Task<bool> IscsiInitiator::ping() {
  Pdu nop;
  nop.opcode = Opcode::NopOut;
  nop.data = MsgBuffer::from_string("ping");
  Pdu resp = co_await send_and_wait(std::move(nop));
  bool ok = resp.opcode == Opcode::NopIn;
  pending_.erase(resp.itt);
  co_return ok;
}

Task<MsgBuffer> IscsiInitiator::read_blocks(std::uint64_t lbn,
                                            std::uint32_t count,
                                            bool metadata) {
  // Second-level-cache check (§3.4): when every requested block already
  // sits in the network-centric cache, the fs-cache miss is absorbed
  // locally — no iSCSI round trip, no storage-server work.
  if (!metadata && policy_ == PayloadPolicy::NCache && probe_) {
    bool all_present = true;
    for (std::uint32_t i = 0; i < count && all_present; ++i) {
      all_present = probe_(lbn + i);
    }
    if (all_present) {
      // Inline kernel-context work: charge the CPU without a scheduling
      // round trip (a blocking wait here would serialize every cache hit
      // behind the whole CPU queue under load).
      stack_.cpu().charge(stack_.costs().ncache_manage_ns);
      MsgBuffer keys;
      for (std::uint32_t i = 0; i < count; ++i) {
        keys.append(MsgBuffer::from_key(
            netbuf::LbnKey{target_id_, lbn + i}, 0,
            std::uint32_t(kScsiBlockSize)));
      }
      ++stats_.reads;
      stats_.read_bytes += keys.size();
      co_return keys;
    }
  }

  ++stats_.reads;
  MsgBuffer chain;
  unsigned attempt = 0;
  for (;;) {
    Pdu cmd;
    cmd.opcode = Opcode::ScsiCommand;
    cmd.expected_length = count * std::uint32_t(kScsiBlockSize);
    cmd.cdb = make_rw_cdb(
        ScsiRw{false, std::uint32_t(lbn), std::uint16_t(count)});
    Pdu resp = co_await send_and_wait(std::move(cmd));
    chain = std::move(pending_[resp.itt].accumulated);
    pending_.erase(resp.itt);

    if (resp.status == ScsiStatus::Good &&
        chain.size() == count * kScsiBlockSize) {
      break;
    }
    // CHECK CONDITION (media error, or a session that died without
    // reconnect): retry with capped exponential backoff — latent sector
    // errors are transient, a reread usually lands.
    if (attempt >= recovery_.max_read_retries) {
      ++stats_.errors;
      co_return MsgBuffer{};
    }
    if (retry_budget_ &&
        !retry_budget_->try_withdraw(stack_.loop().now())) {
      // Budget exhausted: fail the I/O instead of rereading — the error
      // path sheds load that backoff alone would only delay.
      ++stats_.budget_denied;
      ++stats_.errors;
      co_return MsgBuffer{};
    }
    ++stats_.io_retries;
    co_await sim::sleep_for(stack_.loop(),
                            recovery_.read_retry_backoff << attempt);
    ++attempt;
  }
  stats_.read_bytes += chain.size();
  // A completed read is goodput: it earns the node's budget back a
  // fraction of a retry token.
  if (retry_budget_) retry_budget_->deposit(stack_.loop().now());

  auto& copier = stack_.copier();
  if (metadata) {
    // Metadata is interpreted above: always physically copied up.
    co_return copier.copy_message(chain, CopyClass::Metadata);
  }
  switch (policy_) {
    case PayloadPolicy::Copy:
      // NFS-original read path, copy #1: network buffers -> block buffer.
      co_return copier.copy_message(chain, CopyClass::RegularData);
    case PayloadPolicy::NCache: {
      if (ingest_) {
        ++stats_.ingests;
        // Payload chains enter the LBN cache block-by-block; keys travel up.
        MsgBuffer keys;
        for (std::uint32_t i = 0; i < count; ++i) {
          keys.append(ingest_(
              lbn + i, chain.slice(std::size_t(i) * kScsiBlockSize,
                                   kScsiBlockSize)));
        }
        co_return keys;
      }
      co_return copier.logical_copy(chain);
    }
    case PayloadPolicy::Junk:
      co_return MsgBuffer::junk(std::uint32_t(chain.size()));
  }
  co_return MsgBuffer{};
}

Task<bool> IscsiInitiator::write_blocks(std::uint64_t lbn, MsgBuffer data,
                                        bool metadata) {
  if (data.size() % kScsiBlockSize != 0) {
    throw std::invalid_argument("write_blocks: unaligned payload");
  }
  auto count = std::uint32_t(data.size() / kScsiBlockSize);
  auto& copier = stack_.copier();

  MsgBuffer wire;
  if (metadata) {
    wire = copier.copy_message(data, CopyClass::Metadata);
  } else {
    switch (policy_) {
      case PayloadPolicy::Copy:
        // NFS-original flush path, copy #2: block buffer -> socket.
        wire = copier.copy_message(data, CopyClass::RegularData);
        break;
      case PayloadPolicy::NCache: {
        // Remap dirty FHO entries to the LBNs this flush assigns (§3.4),
        // then ship the key-bearing chain; the egress interceptor
        // materializes it below the stack.
        if (remap_ && data.has_keys()) {
          for (std::uint32_t i = 0; i < count; ++i) {
            MsgBuffer slice =
                data.slice(std::size_t(i) * kScsiBlockSize, kScsiBlockSize);
            if (slice.has_keys()) {
              ++stats_.remaps;
              remap_(lbn + i, slice);
            }
          }
        }
        wire = copier.logical_copy(data);
        break;
      }
      case PayloadPolicy::Junk:
        wire = MsgBuffer::junk(std::uint32_t(data.size()));
        break;
    }
  }

  Pdu cmd;
  cmd.opcode = Opcode::ScsiCommand;
  cmd.expected_length = std::uint32_t(data.size());
  cmd.cdb = make_rw_cdb(ScsiRw{true, std::uint32_t(lbn), std::uint16_t(count)});
  ++stats_.writes;
  stats_.write_bytes += data.size();

  // Command first, then its Data-Out PDUs back-to-back, then await status.
  std::uint32_t itt = send_tracked(std::move(cmd));
  std::uint32_t off = 0, dsn = 0;
  while (off < wire.size()) {
    auto take = std::uint32_t(
        std::min<std::size_t>(kMaxDataSegment, wire.size() - off));
    Pdu dout;
    dout.opcode = Opcode::ScsiDataOut;
    dout.itt = itt;
    dout.data_sn = dsn++;
    dout.buffer_offset = off;
    dout.final_flag = off + take == wire.size();
    dout.data = wire.slice(off, take);
    pending_[itt].frames.push_back(dout);  // whole transfer replays together
    if (conn_) conn_->send(dout.to_stream());
    off += take;
  }

  Pdu resp = co_await wait_response(itt);
  pending_.erase(resp.itt);
  if (retry_budget_ && resp.status == ScsiStatus::Good) {
    retry_budget_->deposit(stack_.loop().now());
  }
  co_return resp.status == ScsiStatus::Good;
}

void IscsiInitiator::register_metrics(MetricRegistry& registry,
                                      const std::string& node) {
  registry.counter(node, "iscsi.session_drops",
                   [this] { return stats_.session_drops; });
  registry.counter(node, "iscsi.command_timeouts",
                   [this] { return stats_.command_timeouts; });
  registry.counter(node, "iscsi.login_attempts",
                   [this] { return stats_.login_attempts; });
  registry.counter(node, "iscsi.relogins", [this] { return stats_.relogins; });
  registry.counter(node, "iscsi.replays", [this] { return stats_.replays; });
  registry.counter(node, "iscsi.io_retries",
                   [this] { return stats_.io_retries; });
  registry.counter(node, "iscsi.errors", [this] { return stats_.errors; });
  if (retry_budget_) {
    // Registered only when a budget is attached, so budget-less runs keep
    // their metrics JSON byte-identical.
    registry.counter(node, "iscsi.budget_denied",
                     [this] { return stats_.budget_denied; });
  }
}

// ---------------------------------------------------------------------------

Task<MsgBuffer> LocalBlockClient::read_blocks(std::uint64_t lbn,
                                              std::uint32_t count,
                                              bool metadata) {
  auto result = co_await store_.read(lbn, count);
  if (!result.ok) {
    // Unit-test-only path with no retry machinery: surface loudly.
    throw std::runtime_error("LocalBlockClient: unrecovered disk read fault");
  }
  co_return copier_.copy_bytes_in(
      result.data, metadata ? CopyClass::Metadata : CopyClass::RegularData);
}

Task<bool> LocalBlockClient::write_blocks(std::uint64_t lbn, MsgBuffer data,
                                          bool metadata) {
  (void)metadata;
  std::vector<std::byte> bytes(data.size());
  data.copy_out(bytes);
  co_await store_.write(lbn, std::move(bytes));
  co_return true;
}

}  // namespace ncache::iscsi
