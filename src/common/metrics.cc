#include "common/metrics.h"

namespace ncache {

void MetricRegistry::counter(std::string node, std::string name, U64Fn fn) {
  metrics_.push_back(Metric{std::move(node), std::move(name),
                            MetricKind::Counter, std::move(fn), {}, nullptr});
}

void MetricRegistry::gauge(std::string node, std::string name, F64Fn fn) {
  metrics_.push_back(Metric{std::move(node), std::move(name), MetricKind::Gauge,
                            {}, std::move(fn), nullptr});
}

void MetricRegistry::bytes(std::string node, std::string name, U64Fn fn) {
  metrics_.push_back(Metric{std::move(node), std::move(name), MetricKind::Bytes,
                            std::move(fn), {}, nullptr});
}

void MetricRegistry::histogram(std::string node, std::string name,
                               const LatencyHistogram* h) {
  metrics_.push_back(
      Metric{std::move(node), std::move(name), MetricKind::Histogram, {}, {}, h});
}

void MetricRegistry::on_reset(std::function<void()> fn) {
  reset_hooks_.push_back(std::move(fn));
}

void MetricRegistry::reset_all() {
  for (auto& fn : reset_hooks_) fn();
}

std::vector<MetricRegistry::Sample> MetricRegistry::sample() const {
  std::vector<Sample> out;
  out.reserve(metrics_.size());
  for (const auto& m : metrics_) {
    Sample s;
    s.node = m.node;
    s.name = m.name;
    s.kind = m.kind;
    switch (m.kind) {
      case MetricKind::Counter:
      case MetricKind::Bytes:
        s.u64 = m.u64 ? m.u64() : 0;
        break;
      case MetricKind::Gauge:
        s.f64 = m.f64 ? m.f64() : 0.0;
        break;
      case MetricKind::Histogram:
        s.u64 = m.hist ? m.hist->count() : 0;
        break;
    }
    out.push_back(std::move(s));
  }
  return out;
}

const MetricRegistry::Metric* MetricRegistry::find(std::string_view node,
                                                   std::string_view name) const {
  for (const auto& m : metrics_)
    if (m.node == node && m.name == name) return &m;
  return nullptr;
}

std::uint64_t MetricRegistry::counter_value(std::string_view node,
                                            std::string_view name) const {
  const Metric* m = find(node, name);
  if (!m) return 0;
  if (m->kind == MetricKind::Histogram) return m->hist ? m->hist->count() : 0;
  return m->u64 ? m->u64() : 0;
}

double MetricRegistry::gauge_value(std::string_view node,
                                   std::string_view name) const {
  const Metric* m = find(node, name);
  if (!m) return 0.0;
  if (m->kind == MetricKind::Gauge) return m->f64 ? m->f64() : 0.0;
  if (m->kind == MetricKind::Histogram) return double(m->hist ? m->hist->count() : 0);
  return double(m->u64 ? m->u64() : 0);
}

bool MetricRegistry::has(std::string_view node, std::string_view name) const {
  return find(node, name) != nullptr;
}

json::Value MetricRegistry::to_json() const {
  json::Value root = json::Value::object();
  for (const auto& m : metrics_) {
    json::Value* group = root.find(m.node);
    if (!group) group = &root.set(m.node, json::Value::object());
    switch (m.kind) {
      case MetricKind::Counter:
      case MetricKind::Bytes:
        group->set(m.name, json::Value(m.u64 ? m.u64() : 0));
        break;
      case MetricKind::Gauge:
        group->set(m.name, json::Value(m.f64 ? m.f64() : 0.0));
        break;
      case MetricKind::Histogram: {
        json::Value h = json::Value::object();
        const LatencyHistogram* lh = m.hist;
        h.set("count", json::Value(lh ? lh->count() : 0));
        h.set("p50_ns", json::Value(lh ? lh->quantile_ns(0.5) : 0));
        h.set("p99_ns", json::Value(lh ? lh->quantile_ns(0.99) : 0));
        h.set("max_ns", json::Value(lh ? lh->max_ns() : 0));
        group->set(m.name, std::move(h));
        break;
      }
    }
  }
  return root;
}

}  // namespace ncache
