// Doubly-linked intrusive list used for LRU chains in the buffer cache and
// the network-centric cache. Intrusive so that moving an entry to the MRU
// end is O(1) with no allocation — the same property the kernel's list_head
// gives the original implementation.
#pragma once

#include <cassert>
#include <cstddef>

namespace ncache {

struct ListHook {
  ListHook* prev = nullptr;
  ListHook* next = nullptr;

  bool linked() const noexcept { return prev != nullptr; }
};

/// Intrusive list over T, where T derives from (or contains, via Hook
/// member pointer access through static_cast) ListHook.
template <typename T>
class IntrusiveList {
 public:
  IntrusiveList() {
    sentinel_.prev = &sentinel_;
    sentinel_.next = &sentinel_;
  }

  IntrusiveList(const IntrusiveList&) = delete;
  IntrusiveList& operator=(const IntrusiveList&) = delete;

  bool empty() const noexcept { return sentinel_.next == &sentinel_; }
  std::size_t size() const noexcept { return size_; }

  void push_back(T& item) noexcept { insert_before(sentinel_, item); }
  void push_front(T& item) noexcept { insert_before(*sentinel_.next, item); }

  void remove(T& item) noexcept {
    ListHook& h = item;
    assert(h.linked());
    h.prev->next = h.next;
    h.next->prev = h.prev;
    h.prev = h.next = nullptr;
    --size_;
  }

  /// Moves an already-linked item to the back (MRU position).
  void move_to_back(T& item) noexcept {
    remove(item);
    push_back(item);
  }

  T* front() noexcept {
    return empty() ? nullptr : static_cast<T*>(sentinel_.next);
  }
  T* back() noexcept {
    return empty() ? nullptr : static_cast<T*>(sentinel_.prev);
  }

  T* pop_front() noexcept {
    T* f = front();
    if (f) remove(*f);
    return f;
  }

  /// Iteration support (forward only, non-invalidating for reads).
  class iterator {
   public:
    explicit iterator(ListHook* at) : at_(at) {}
    T& operator*() const noexcept { return *static_cast<T*>(at_); }
    T* operator->() const noexcept { return static_cast<T*>(at_); }
    iterator& operator++() noexcept {
      at_ = at_->next;
      return *this;
    }
    bool operator!=(const iterator& o) const noexcept { return at_ != o.at_; }
    bool operator==(const iterator& o) const noexcept { return at_ == o.at_; }

   private:
    ListHook* at_;
  };

  iterator begin() noexcept { return iterator(sentinel_.next); }
  iterator end() noexcept { return iterator(&sentinel_); }

 private:
  void insert_before(ListHook& pos, T& item) noexcept {
    ListHook& h = item;
    assert(!h.linked());
    h.prev = pos.prev;
    h.next = &pos;
    pos.prev->next = &h;
    pos.prev = &h;
    ++size_;
  }

  ListHook sentinel_;
  std::size_t size_ = 0;
};

}  // namespace ncache
