// Minimal JSON value tree with deterministic serialization.
//
// Built for the metrics/bench telemetry pipeline: objects preserve
// insertion order and numbers are printed through one fixed snprintf
// format, so two runs of the same deterministic simulation dump
// byte-identical files (an acceptance criterion for BENCH_*.json).
// The parser exists for the consumers inside this repo — the bench JSON
// validator and the registry round-trip tests — not as a general library.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ncache::json {

class Value;
using Member = std::pair<std::string, Value>;

class Value {
 public:
  enum class Type : std::uint8_t { Null, Bool, Int, Double, String, Array, Object };

  Value() : type_(Type::Null) {}
  Value(std::nullptr_t) : type_(Type::Null) {}
  Value(bool b) : type_(Type::Bool), bool_(b) {}
  Value(int v) : type_(Type::Int), int_(v) {}
  Value(unsigned v) : type_(Type::Int), int_(v) {}
  Value(std::int64_t v) : type_(Type::Int), int_(v) {}
  Value(std::uint64_t v) : type_(Type::Int), int_(std::int64_t(v)) {}
  Value(double v) : type_(Type::Double), double_(v) {}
  Value(const char* s) : type_(Type::String), string_(s) {}
  Value(std::string s) : type_(Type::String), string_(std::move(s)) {}
  Value(std::string_view s) : type_(Type::String), string_(s) {}

  static Value object() { Value v; v.type_ = Type::Object; return v; }
  static Value array() { Value v; v.type_ = Type::Array; return v; }

  Type type() const noexcept { return type_; }
  bool is_null() const noexcept { return type_ == Type::Null; }
  bool is_number() const noexcept {
    return type_ == Type::Int || type_ == Type::Double;
  }
  bool is_object() const noexcept { return type_ == Type::Object; }
  bool is_array() const noexcept { return type_ == Type::Array; }
  bool is_string() const noexcept { return type_ == Type::String; }

  bool as_bool() const { return bool_; }
  std::int64_t as_int() const {
    return type_ == Type::Double ? std::int64_t(double_) : int_;
  }
  double as_double() const {
    return type_ == Type::Int ? double(int_) : double_;
  }
  const std::string& as_string() const { return string_; }

  // ---- object access ---------------------------------------------------------
  /// Inserts or overwrites a member (insertion order preserved).
  Value& set(std::string key, Value v);
  /// Member lookup; nullptr when absent (or not an object).
  const Value* find(std::string_view key) const;
  Value* find(std::string_view key);
  /// Dotted-path lookup: "cpu.server" descends two object levels.
  const Value* find_path(std::string_view dotted) const;
  const std::vector<Member>& members() const noexcept { return members_; }

  // ---- array access ----------------------------------------------------------
  Value& push_back(Value v);
  const std::vector<Value>& items() const noexcept { return items_; }
  std::size_t size() const noexcept {
    return type_ == Type::Array ? items_.size() : members_.size();
  }

  /// Serializes deterministically. `indent` < 0 yields compact one-line
  /// output; otherwise pretty-printed with that indent step.
  std::string dump(int indent = 2) const;

  /// Strict-enough recursive-descent parse of UTF-8 JSON text. Returns
  /// nullopt (with an error description in `*error` when given) on
  /// malformed input, including NaN/Inf which JSON cannot carry.
  static std::optional<Value> parse(std::string_view text,
                                    std::string* error = nullptr);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_ = Type::Null;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Member> members_;  ///< Object
  std::vector<Value> items_;     ///< Array
};

/// Writes `v.dump()` to `path` (trailing newline added). Returns false on
/// I/O failure.
bool write_file(const Value& v, const std::string& path);

}  // namespace ncache::json
