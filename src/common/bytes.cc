#include "common/bytes.h"

#include <stdexcept>

namespace ncache {

void ByteWriter::u8(std::uint8_t v) { out_.push_back(std::byte{v}); }

void ByteWriter::u16(std::uint16_t v) {
  u8(static_cast<std::uint8_t>(v >> 8));
  u8(static_cast<std::uint8_t>(v));
}

void ByteWriter::u32(std::uint32_t v) {
  u16(static_cast<std::uint16_t>(v >> 16));
  u16(static_cast<std::uint16_t>(v));
}

void ByteWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v >> 32));
  u32(static_cast<std::uint32_t>(v));
}

void ByteWriter::bytes(std::span<const std::byte> data) {
  out_.insert(out_.end(), data.begin(), data.end());
}

void ByteWriter::zeros(std::size_t n) {
  out_.insert(out_.end(), n, std::byte{0});
}

void ByteWriter::xdr_opaque(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  bytes(as_bytes(s));
  std::size_t pad = (4 - (s.size() & 3)) & 3;
  zeros(pad);
}

void ByteReader::need(std::size_t n) const {
  if (pos_ + n > in_.size()) {
    throw std::out_of_range("ByteReader: truncated input");
  }
}

std::uint8_t ByteReader::u8() {
  need(1);
  return std::to_integer<std::uint8_t>(in_[pos_++]);
}

std::uint16_t ByteReader::u16() {
  std::uint16_t hi = u8();
  return static_cast<std::uint16_t>((hi << 8) | u8());
}

std::uint32_t ByteReader::u32() {
  std::uint32_t hi = u16();
  return (hi << 16) | u16();
}

std::uint64_t ByteReader::u64() {
  std::uint64_t hi = u32();
  return (hi << 32) | u32();
}

std::span<const std::byte> ByteReader::bytes(std::size_t n) {
  need(n);
  auto out = in_.subspan(pos_, n);
  pos_ += n;
  return out;
}

void ByteReader::skip(std::size_t n) {
  need(n);
  pos_ += n;
}

std::string ByteReader::xdr_opaque() {
  std::uint32_t len = u32();
  auto payload = bytes(len);
  skip((4 - (len & 3)) & 3);
  return std::string(as_string_view(payload));
}

}  // namespace ncache
