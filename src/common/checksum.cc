#include "common/checksum.h"

#include <array>

namespace ncache {

std::uint32_t checksum_accumulate(std::span<const std::byte> data,
                                  std::uint32_t acc) noexcept {
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    acc += (std::to_integer<std::uint32_t>(data[i]) << 8) |
           std::to_integer<std::uint32_t>(data[i + 1]);
  }
  if (i < data.size()) {
    acc += std::to_integer<std::uint32_t>(data[i]) << 8;
  }
  return acc;
}

std::uint16_t checksum_finish(std::uint32_t acc) noexcept {
  while (acc >> 16) acc = (acc & 0xffff) + (acc >> 16);
  return static_cast<std::uint16_t>(~acc & 0xffff);
}

std::uint16_t internet_checksum(std::span<const std::byte> data) noexcept {
  return checksum_finish(checksum_accumulate(data, 0));
}

namespace {
std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    t[i] = c;
  }
  return t;
}
}  // namespace

std::uint32_t crc32(std::span<const std::byte> data,
                    std::uint32_t seed) noexcept {
  static const auto table = make_crc_table();
  std::uint32_t c = seed ^ 0xffffffffu;
  for (std::byte b : data) {
    c = table[(c ^ std::to_integer<std::uint32_t>(b)) & 0xff] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

}  // namespace ncache
