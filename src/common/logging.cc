#include "common/logging.h"

#include <cstdio>

namespace ncache::log {

namespace {
Level g_level = Level::Warn;

const char* level_name(Level l) {
  switch (l) {
    case Level::Trace: return "TRACE";
    case Level::Debug: return "DEBUG";
    case Level::Info: return "INFO";
    case Level::Warn: return "WARN";
    case Level::Error: return "ERROR";
    case Level::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void set_level(Level level) noexcept { g_level = level; }
Level level() noexcept { return g_level; }
bool enabled(Level l) noexcept { return l >= g_level && g_level != Level::Off; }

void write(Level l, const char* tag, const char* fmt, ...) {
  if (!enabled(l)) return;
  std::fprintf(stderr, "[%-5s] %-10s ", level_name(l), tag);
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace ncache::log
