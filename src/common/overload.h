// Overload-control primitives shared by every layer of the request path:
// token buckets (LoadBalancer admission), retry budgets (NFS client, iSCSI
// initiator, PeerCache retransmits), CoDel sojourn-time shedding (NFS
// server + kHTTPd queues) and an AIMD rate controller (VIP admission).
//
// All state advances on simulated nanoseconds passed in by the caller, so
// the primitives stay deterministic under the ParallelEngine: a node's
// controller is only ever touched from its own domain loop, and identical
// call sequences produce identical decisions bit-for-bit.
#pragma once

#include <cstdint>

namespace ncache::overload {

/// Deterministic token bucket. Tokens accrue continuously at `rate_per_sec`
/// up to `burst`; `try_take` withdraws one token or reports depletion.
class TokenBucket {
 public:
  TokenBucket() = default;
  TokenBucket(double rate_per_sec, double burst)
      : rate_per_sec_(rate_per_sec), burst_(burst), tokens_(burst) {}

  void configure(double rate_per_sec, double burst) {
    rate_per_sec_ = rate_per_sec;
    burst_ = burst;
    if (tokens_ > burst_) tokens_ = burst_;
  }

  /// Retunes the refill rate without disturbing the stored balance
  /// (the AIMD controller calls this every feedback round).
  void set_rate(double rate_per_sec) { rate_per_sec_ = rate_per_sec; }
  double rate() const noexcept { return rate_per_sec_; }
  double burst() const noexcept { return burst_; }

  bool try_take(std::uint64_t now_ns, double cost = 1.0) {
    refill(now_ns);
    if (tokens_ < cost) return false;
    tokens_ -= cost;
    return true;
  }

  double available(std::uint64_t now_ns) {
    refill(now_ns);
    return tokens_;
  }

 private:
  void refill(std::uint64_t now_ns);

  double rate_per_sec_ = 0.0;
  double burst_ = 0.0;
  double tokens_ = 0.0;
  std::uint64_t last_ns_ = 0;
};

/// Finagle-style retry budget: every success deposits `deposit_ratio`
/// tokens, every retry withdraws one, so sustained retry traffic is capped
/// at ~deposit_ratio of goodput. A slow time-based reserve keeps a trickle
/// of probes alive when successes stop entirely — without it a total
/// outage would drain the budget and recovery could never begin.
class RetryBudget {
 public:
  struct Config {
    double deposit_ratio = 0.1;    ///< tokens deposited per success
    double capacity = 100.0;       ///< max stored tokens
    double reserve_per_sec = 2.0;  ///< background refill (probe floor)
    double initial = 10.0;         ///< starting balance
  };

  RetryBudget() : RetryBudget(Config{}) {}
  explicit RetryBudget(const Config& c)
      : config_(c), tokens_(c.initial) {}

  /// Record a successful (non-retried) response.
  void deposit(std::uint64_t now_ns) {
    refill(now_ns);
    tokens_ += config_.deposit_ratio;
    if (tokens_ > config_.capacity) tokens_ = config_.capacity;
  }

  /// Ask permission to send one retry. Denials are counted for metering.
  bool try_withdraw(std::uint64_t now_ns) {
    refill(now_ns);
    if (tokens_ < 1.0) {
      ++denied_;
      return false;
    }
    tokens_ -= 1.0;
    ++withdrawn_;
    return true;
  }

  double balance(std::uint64_t now_ns) {
    refill(now_ns);
    return tokens_;
  }

  std::uint64_t denied() const noexcept { return denied_; }
  std::uint64_t withdrawn() const noexcept { return withdrawn_; }
  const Config& config() const noexcept { return config_; }

  void reset_counters() noexcept {
    denied_ = 0;
    withdrawn_ = 0;
  }

 private:
  void refill(std::uint64_t now_ns);

  Config config_;
  double tokens_ = 0.0;
  std::uint64_t last_ns_ = 0;
  std::uint64_t denied_ = 0;
  std::uint64_t withdrawn_ = 0;
};

/// CoDel control law over queue sojourn time (Nichols/Jacobson). The
/// caller reports each dequeue's sojourn; `on_dequeue` returns true when
/// that item should be shed. Shedding starts only after sojourn has stayed
/// above `target_ns` for a full `interval_ns`, then repeats at
/// interval/sqrt(drop_count) until sojourn dips below target — so brief
/// bursts ride through untouched while standing queues drain.
class CoDelState {
 public:
  struct Config {
    std::uint64_t target_ns = 5'000'000;     ///< 5 ms acceptable sojourn
    std::uint64_t interval_ns = 100'000'000; ///< 100 ms observation window
  };

  CoDelState() : CoDelState(Config{}) {}
  explicit CoDelState(const Config& c) : config_(c) {}

  bool on_dequeue(std::uint64_t now_ns, std::uint64_t sojourn_ns);

  bool dropping() const noexcept { return dropping_; }
  std::uint64_t drop_count() const noexcept { return count_; }

 private:
  std::uint64_t next_drop_at(std::uint64_t from_ns) const;

  Config config_;
  bool dropping_ = false;
  std::uint64_t first_above_ns_ = 0;  ///< 0 = sojourn currently below target
  std::uint64_t drop_next_ns_ = 0;
  std::uint64_t count_ = 0;           ///< drops in the current dropping spell
};

/// AIMD rate controller for ingress admission: each feedback round either
/// adds `increase_per_round` (healthy) or multiplies by `decrease_factor`
/// (congested), clamped to [min_rate, max_rate].
class AimdRate {
 public:
  struct Config {
    double min_rate = 50.0;
    double max_rate = 1'000'000.0;
    double initial = 1'000'000.0;
    double increase_per_round = 100.0;
    double decrease_factor = 0.7;
  };

  AimdRate() : AimdRate(Config{}) {}
  explicit AimdRate(const Config& c) : config_(c), rate_(c.initial) {
    clamp();
  }

  /// One feedback round; returns the new rate.
  double on_round(bool congested) {
    if (congested) {
      rate_ *= config_.decrease_factor;
      ++decreases_;
    } else {
      rate_ += config_.increase_per_round;
      ++increases_;
    }
    clamp();
    return rate_;
  }

  double rate() const noexcept { return rate_; }
  std::uint64_t increases() const noexcept { return increases_; }
  std::uint64_t decreases() const noexcept { return decreases_; }

 private:
  void clamp() {
    if (rate_ < config_.min_rate) rate_ = config_.min_rate;
    if (rate_ > config_.max_rate) rate_ = config_.max_rate;
  }

  Config config_;
  double rate_ = 0.0;
  std::uint64_t increases_ = 0;
  std::uint64_t decreases_ = 0;
};

}  // namespace ncache::overload
