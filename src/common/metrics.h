// MetricRegistry — the repo-wide observability surface.
//
// Every subsystem (CPU models, links, copy engines, caches, servers)
// registers its counters/gauges here under a (node, name) label, e.g.
// ("server", "copy.data_ops"). The registry samples live values through
// callbacks, so registration is cheap and subsystems keep their own
// storage; `reset_all()` fans out to per-subsystem reset hooks so a
// measurement window can be restarted from one place (this is what
// Testbed::reset_stats() is built on).
//
// Metric names are dotted paths; the JSON exporter groups by node and
// preserves registration order, which — together with the deterministic
// simulation — makes two same-seed runs dump byte-identical snapshots.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.h"
#include "common/stats.h"

namespace ncache {

enum class MetricKind : std::uint8_t {
  Counter,    ///< monotonically increasing count (ops, requests, frames)
  Gauge,      ///< instantaneous double (utilization, ratios, sizes)
  Bytes,      ///< byte total (exported raw; rates derive from elapsed time)
  Histogram,  ///< latency histogram (exported as count/quantile summary)
};

class MetricRegistry {
 public:
  using U64Fn = std::function<std::uint64_t()>;
  using F64Fn = std::function<double()>;

  struct Metric {
    std::string node;   ///< owner label: "server", "storage", "client0", …
    std::string name;   ///< dotted metric path: "cpu.utilization", …
    MetricKind kind = MetricKind::Counter;
    U64Fn u64;                              ///< Counter / Bytes
    F64Fn f64;                              ///< Gauge
    const LatencyHistogram* hist = nullptr; ///< Histogram
  };

  /// A sampled scalar (histograms flatten into summary scalars on export).
  struct Sample {
    std::string node;
    std::string name;
    MetricKind kind;
    std::uint64_t u64 = 0;
    double f64 = 0.0;
  };

  void counter(std::string node, std::string name, U64Fn fn);
  void gauge(std::string node, std::string name, F64Fn fn);
  void bytes(std::string node, std::string name, U64Fn fn);
  void histogram(std::string node, std::string name, const LatencyHistogram* h);

  /// Registers a hook run by reset_all(); subsystems use this to clear
  /// their window counters when a new measurement interval starts.
  void on_reset(std::function<void()> fn);

  /// Starts a fresh measurement window across every registered subsystem.
  void reset_all();

  /// Samples every metric now (in registration order).
  std::vector<Sample> sample() const;

  // Point lookups for typed views (Testbed::Snapshot) — zero if absent.
  std::uint64_t counter_value(std::string_view node, std::string_view name) const;
  double gauge_value(std::string_view node, std::string_view name) const;
  bool has(std::string_view node, std::string_view name) const;

  /// Full snapshot as {"node": {"metric.name": value, ...}, ...} grouped
  /// by node in first-registration order. Histograms expand to an object
  /// {count, p50_ns, p99_ns, max_ns}.
  json::Value to_json() const;

  std::size_t size() const noexcept { return metrics_.size(); }
  const std::vector<Metric>& metrics() const noexcept { return metrics_; }

 private:
  const Metric* find(std::string_view node, std::string_view name) const;

  std::vector<Metric> metrics_;
  std::vector<std::function<void()>> reset_hooks_;
};

}  // namespace ncache
