#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>

namespace ncache::json {
namespace {

void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

// One fixed formatting for every double so identical simulations dump
// identical bytes. %.9g round-trips the values we emit (utilizations,
// MB/s, ratios) without trailing-digit jitter across runs.
void append_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    // JSON has no NaN/Inf; the validator treats null as "not finite".
    out += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  out += buf;
}

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string err;

  bool fail(const std::string& what) {
    if (err.empty()) err = what + " at offset " + std::to_string(pos);
    return false;
  }
  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r'))
      ++pos;
  }
  bool consume(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) { ++pos; return true; }
    return false;
  }
  bool expect(char c) {
    if (consume(c)) return true;
    return fail(std::string("expected '") + c + "'");
  }

  bool parse_string(std::string& out) {
    if (!expect('"')) return false;
    while (pos < text.size()) {
      char c = text[pos++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos >= text.size()) return fail("bad escape");
        char e = text[pos++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos + 4 > text.size()) return fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text[pos++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= unsigned(h - '0');
              else if (h >= 'a' && h <= 'f') code |= unsigned(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= unsigned(h - 'A' + 10);
              else return fail("bad \\u escape");
            }
            // Encode as UTF-8 (surrogate pairs unsupported; we never emit them).
            if (code < 0x80) {
              out += char(code);
            } else if (code < 0x800) {
              out += char(0xC0 | (code >> 6));
              out += char(0x80 | (code & 0x3F));
            } else {
              out += char(0xE0 | (code >> 12));
              out += char(0x80 | ((code >> 6) & 0x3F));
              out += char(0x80 | (code & 0x3F));
            }
            break;
          }
          default: return fail("bad escape");
        }
      } else {
        out += c;
      }
    }
    return fail("unterminated string");
  }

  bool parse_value(Value& out) {
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    char c = text[pos];
    if (c == '{') {
      ++pos;
      out = Value::object();
      skip_ws();
      if (consume('}')) return true;
      while (true) {
        std::string key;
        if (!parse_string(key)) return false;
        if (!expect(':')) return false;
        Value v;
        if (!parse_value(v)) return false;
        out.set(std::move(key), std::move(v));
        if (consume(',')) continue;
        return expect('}');
      }
    }
    if (c == '[') {
      ++pos;
      out = Value::array();
      skip_ws();
      if (consume(']')) return true;
      while (true) {
        Value v;
        if (!parse_value(v)) return false;
        out.push_back(std::move(v));
        if (consume(',')) continue;
        return expect(']');
      }
    }
    if (c == '"') {
      std::string s;
      if (!parse_string(s)) return false;
      out = Value(std::move(s));
      return true;
    }
    if (text.compare(pos, 4, "true") == 0) { pos += 4; out = Value(true); return true; }
    if (text.compare(pos, 5, "false") == 0) { pos += 5; out = Value(false); return true; }
    if (text.compare(pos, 4, "null") == 0) { pos += 4; out = Value(nullptr); return true; }
    // number
    std::size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) ++pos;
    bool is_double = false;
    if (pos < text.size() && text[pos] == '.') {
      is_double = true;
      ++pos;
      while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) ++pos;
    }
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      is_double = true;
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) ++pos;
    }
    if (pos == start || (pos == start + 1 && text[start] == '-'))
      return fail("invalid value");
    std::string num(text.substr(start, pos - start));
    if (is_double) {
      out = Value(std::strtod(num.c_str(), nullptr));
    } else {
      out = Value(std::int64_t(std::strtoll(num.c_str(), nullptr, 10)));
    }
    return true;
  }
};

}  // namespace

Value& Value::set(std::string key, Value v) {
  type_ = Type::Object;
  for (auto& [k, existing] : members_) {
    if (k == key) {
      existing = std::move(v);
      return existing;
    }
  }
  members_.emplace_back(std::move(key), std::move(v));
  return members_.back().second;
}

const Value* Value::find(std::string_view key) const {
  for (const auto& [k, v] : members_)
    if (k == key) return &v;
  return nullptr;
}

Value* Value::find(std::string_view key) {
  for (auto& [k, v] : members_)
    if (k == key) return &v;
  return nullptr;
}

const Value* Value::find_path(std::string_view dotted) const {
  const Value* cur = this;
  while (!dotted.empty()) {
    std::size_t dot = dotted.find('.');
    std::string_view head = dotted.substr(0, dot);
    cur = cur->find(head);
    if (!cur) return nullptr;
    if (dot == std::string_view::npos) break;
    dotted.remove_prefix(dot + 1);
  }
  return cur;
}

Value& Value::push_back(Value v) {
  type_ = Type::Array;
  items_.push_back(std::move(v));
  return items_.back();
}

void Value::dump_to(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  auto newline_pad = [&](int d) {
    if (!pretty) return;
    out += '\n';
    out.append(std::size_t(indent) * std::size_t(d), ' ');
  };
  switch (type_) {
    case Type::Null: out += "null"; break;
    case Type::Bool: out += bool_ ? "true" : "false"; break;
    case Type::Int: out += std::to_string(int_); break;
    case Type::Double: append_double(out, double_); break;
    case Type::String: append_escaped(out, string_); break;
    case Type::Array: {
      if (items_.empty()) { out += "[]"; break; }
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i) out += ',';
        newline_pad(depth + 1);
        items_[i].dump_to(out, indent, depth + 1);
      }
      newline_pad(depth);
      out += ']';
      break;
    }
    case Type::Object: {
      if (members_.empty()) { out += "{}"; break; }
      out += '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i) out += ',';
        newline_pad(depth + 1);
        append_escaped(out, members_[i].first);
        out += pretty ? ": " : ":";
        members_[i].second.dump_to(out, indent, depth + 1);
      }
      newline_pad(depth);
      out += '}';
      break;
    }
  }
}

std::string Value::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

std::optional<Value> Value::parse(std::string_view text, std::string* error) {
  Parser p{text, 0, {}};
  Value v;
  if (!p.parse_value(v)) {
    if (error) *error = p.err;
    return std::nullopt;
  }
  p.skip_ws();
  if (p.pos != text.size()) {
    if (error) *error = "trailing garbage at offset " + std::to_string(p.pos);
    return std::nullopt;
  }
  return v;
}

bool write_file(const Value& v, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << v.dump(2) << '\n';
  return bool(out);
}

}  // namespace ncache::json
