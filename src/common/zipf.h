// Zipf-distributed sampler for web-page popularity (SPECweb99-style
// workloads follow Zipf's law; Breslau et al., INFOCOM'99).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace ncache {

/// Samples ranks 0..n-1 with P(rank k) proportional to 1/(k+1)^alpha.
///
/// Uses a precomputed CDF and binary search: O(n) setup, O(log n) sample.
/// Deterministic for a given RNG stream.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double alpha);

  /// Draws one rank in [0, size()).
  std::size_t sample(Pcg32& rng) const;

  std::size_t size() const noexcept { return cdf_.size(); }
  double alpha() const noexcept { return alpha_; }

  /// Probability mass of a single rank (for tests).
  double pmf(std::size_t rank) const;

 private:
  std::vector<double> cdf_;
  double alpha_ = 0.0;
};

}  // namespace ncache
