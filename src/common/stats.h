// Lightweight metric primitives used by the testbed and benches:
// counters, byte meters with rate computation, and a fixed-bucket
// latency histogram.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ncache {

/// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_ += n; }
  std::uint64_t value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Accumulates bytes and converts to MB/s over a simulated interval.
class ByteMeter {
 public:
  void add(std::uint64_t bytes) noexcept { bytes_ += bytes; }
  std::uint64_t bytes() const noexcept { return bytes_; }
  void reset() noexcept { bytes_ = 0; }

  /// Rate in MB/s (decimal: 1e6 bytes) over `interval_ns`.
  double mb_per_sec(std::uint64_t interval_ns) const noexcept;

 private:
  std::uint64_t bytes_ = 0;
};

/// Log-scaled latency histogram (ns). Buckets double from 1us.
class LatencyHistogram {
 public:
  LatencyHistogram();
  void record(std::uint64_t ns) noexcept;

  std::uint64_t count() const noexcept { return count_; }
  double mean_ns() const noexcept;
  std::uint64_t max_ns() const noexcept { return max_; }
  std::uint64_t min_ns() const noexcept { return count_ ? min_ : 0; }
  /// Approximate quantile (bucket upper bound), q in [0,1].
  std::uint64_t quantile_ns(double q) const noexcept;
  void reset() noexcept;

  std::string summary() const;

 private:
  static constexpr int kBuckets = 40;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

/// Simple online mean/variance (Welford) for bench summaries.
class RunningStat {
 public:
  void add(double x) noexcept;
  std::uint64_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace ncache
