#include "common/zipf.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ncache {

ZipfSampler::ZipfSampler(std::size_t n, double alpha) : alpha_(alpha) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n must be > 0");
  if (alpha < 0) throw std::invalid_argument("ZipfSampler: alpha must be >= 0");
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(double(k + 1), alpha);
    cdf_[k] = acc;
  }
  for (auto& v : cdf_) v /= acc;
  cdf_.back() = 1.0;  // guard against FP round-off
}

std::size_t ZipfSampler::sample(Pcg32& rng) const {
  double u = rng.uniform();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::pmf(std::size_t rank) const {
  if (rank >= cdf_.size()) throw std::out_of_range("ZipfSampler::pmf");
  if (rank == 0) return cdf_[0];
  return cdf_[rank] - cdf_[rank - 1];
}

}  // namespace ncache
