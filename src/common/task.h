// Minimal C++20 coroutine task used for all multi-step asynchronous logic
// in the simulation (filesystem block walks, NFS daemon loops, iSCSI
// exchanges). Tasks are lazy; awaiting one starts it with symmetric
// transfer. `detach()` launches a fire-and-forget root task that owns
// itself until completion (the idiom for daemon loops driven purely by
// event-loop callbacks).
//
// The simulation is single-threaded, so no atomics are needed anywhere in
// the continuation hand-off.
#pragma once

#include <coroutine>
#include <exception>
#include <functional>
#include <optional>
#include <utility>

namespace ncache {

template <typename T>
class Task;

namespace detail {

struct PromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr error;
  bool detached = false;

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }

    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      auto& p = h.promise();
      if (p.detached) {
        // Root task: nobody awaits it. Surface swallowed exceptions hard —
        // a silently-dead daemon loop is the worst failure mode in a sim.
        if (p.error) std::rethrow_exception(p.error);
        h.destroy();
        return std::noop_coroutine();
      }
      if (p.continuation) return p.continuation;
      return std::noop_coroutine();
    }

    void await_resume() noexcept {}
  };

  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() { error = std::current_exception(); }
};

}  // namespace detail

/// Lazily-started coroutine returning T. Move-only; owns the frame unless
/// detached.
template <typename T>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase {
    std::optional<T> value;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_value(T v) { value.emplace(std::move(v)); }
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Task(Task&& o) noexcept : handle_(std::exchange(o.handle_, {})) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      destroy();
      handle_ = std::exchange(o.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const noexcept { return bool(handle_); }
  bool done() const noexcept { return handle_ && handle_.done(); }

  /// Launches the task as a self-owning root coroutine.
  void detach() && {
    auto h = std::exchange(handle_, {});
    h.promise().detached = true;
    h.resume();
  }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> cont) noexcept {
        h.promise().continuation = cont;
        return h;
      }
      T await_resume() {
        if (h.promise().error) std::rethrow_exception(h.promise().error);
        return std::move(*h.promise().value);
      }
    };
    return Awaiter{handle_};
  }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() {}
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Task(Task&& o) noexcept : handle_(std::exchange(o.handle_, {})) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      destroy();
      handle_ = std::exchange(o.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const noexcept { return bool(handle_); }
  bool done() const noexcept { return handle_ && handle_.done(); }

  void detach() && {
    auto h = std::exchange(handle_, {});
    h.promise().detached = true;
    h.resume();
  }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> cont) noexcept {
        h.promise().continuation = cont;
        return h;
      }
      void await_resume() {
        if (h.promise().error) std::rethrow_exception(h.promise().error);
      }
    };
    return Awaiter{handle_};
  }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

/// Adapts a callback-style async API into an awaitable:
///
///   AwaitCallback<T> awaiter([&](auto resolve) {
///     api.start(args, std::move(resolve));
///   });
///   T v = co_await awaiter;
///
/// IMPORTANT: always bind the AwaitCallback to a named local as above and
/// never `co_await AwaitCallback<T>(...)` directly. GCC 12 destroys
/// non-trivial temporaries inside a co_await full-expression twice when
/// the frame is torn down from final_suspend (detached root tasks), which
/// double-frees the starter's captured state. Named locals are destroyed
/// exactly once.
///
/// The starter MUST complete asynchronously (via the event loop); resolving
/// synchronously from inside the starter would resume before suspension
/// bookkeeping finishes and is rejected by an assert in debug builds.
template <typename T>
class AwaitCallback {
 public:
  using Resolve = std::function<void(T)>;

  explicit AwaitCallback(std::function<void(Resolve)> starter)
      : starter_(std::move(starter)) {}

  bool await_ready() const noexcept { return false; }

  void await_suspend(std::coroutine_handle<> h) {
    starter_([this, h](T v) {
      result_.emplace(std::move(v));
      h.resume();
    });
  }

  T await_resume() { return std::move(*result_); }

 private:
  std::function<void(Resolve)> starter_;
  std::optional<T> result_;
};

}  // namespace ncache
