// Minimal C++20 coroutine task used for all multi-step asynchronous logic
// in the simulation (filesystem block walks, NFS daemon loops, iSCSI
// exchanges). Tasks are lazy; awaiting one starts it with symmetric
// transfer. `detach()` launches a fire-and-forget root task that owns
// itself until completion (the idiom for daemon loops driven purely by
// event-loop callbacks).
//
// The simulation is single-threaded, so no atomics are needed anywhere in
// the continuation hand-off.
#pragma once

#include <coroutine>
#include <exception>
#include <functional>
#include <optional>
#include <unordered_set>
#include <utility>

namespace ncache {

template <typename T>
class Task;

/// Owns detached root coroutines that are still suspended at teardown.
///
/// A detached task normally destroys its own frame at final_suspend, but a
/// daemon loop or in-flight exchange parked on an event that will never
/// fire (the testbed is being torn down) would otherwise leak its frame —
/// and everything the frame holds: sessions, buffers, child task frames.
/// Destroying the registered root frame cascades, since frame locals own
/// any child tasks. Completed tasks deregister themselves, so only frames
/// genuinely stuck at teardown are reaped.
class TaskReaper {
 public:
  TaskReaper() = default;
  TaskReaper(const TaskReaper&) = delete;
  TaskReaper& operator=(const TaskReaper&) = delete;
  ~TaskReaper() { reap(); }

  /// Destroys every registered root frame still suspended.
  void reap() noexcept {
    while (!roots_.empty()) {
      auto it = roots_.begin();
      void* addr = *it;
      roots_.erase(it);
      std::coroutine_handle<>::from_address(addr).destroy();
    }
  }

  std::size_t pending() const noexcept { return roots_.size(); }

  // Registration is managed by Task::detach and the final awaiter.
  void add(std::coroutine_handle<> h) { roots_.insert(h.address()); }
  void remove(std::coroutine_handle<> h) noexcept { roots_.erase(h.address()); }

 private:
  std::unordered_set<void*> roots_;
};

namespace detail {

struct PromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr error;
  TaskReaper* reaper = nullptr;
  bool detached = false;

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }

    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      auto& p = h.promise();
      if (p.detached) {
        // Root task: nobody awaits it. Surface swallowed exceptions hard —
        // a silently-dead daemon loop is the worst failure mode in a sim.
        if (p.error) std::rethrow_exception(p.error);
        if (p.reaper) p.reaper->remove(h);
        h.destroy();
        return std::noop_coroutine();
      }
      if (p.continuation) return p.continuation;
      return std::noop_coroutine();
    }

    void await_resume() noexcept {}
  };

  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() { error = std::current_exception(); }
};

}  // namespace detail

/// Lazily-started coroutine returning T. Move-only; owns the frame unless
/// detached.
template <typename T>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase {
    std::optional<T> value;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_value(T v) { value.emplace(std::move(v)); }
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Task(Task&& o) noexcept : handle_(std::exchange(o.handle_, {})) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      destroy();
      handle_ = std::exchange(o.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const noexcept { return bool(handle_); }
  bool done() const noexcept { return handle_ && handle_.done(); }

  /// Launches the task as a self-owning root coroutine.
  void detach() && {
    auto h = std::exchange(handle_, {});
    h.promise().detached = true;
    h.resume();
  }

  /// Like detach(), but registers the root frame with `reaper` so that a
  /// frame still suspended when the reaper dies is destroyed, not leaked.
  void detach(TaskReaper& reaper) && {
    auto h = std::exchange(handle_, {});
    h.promise().detached = true;
    h.promise().reaper = &reaper;
    reaper.add(h);
    h.resume();
  }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> cont) noexcept {
        h.promise().continuation = cont;
        return h;
      }
      T await_resume() {
        if (h.promise().error) std::rethrow_exception(h.promise().error);
        return std::move(*h.promise().value);
      }
    };
    return Awaiter{handle_};
  }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() {}
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Task(Task&& o) noexcept : handle_(std::exchange(o.handle_, {})) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      destroy();
      handle_ = std::exchange(o.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const noexcept { return bool(handle_); }
  bool done() const noexcept { return handle_ && handle_.done(); }

  void detach() && {
    auto h = std::exchange(handle_, {});
    h.promise().detached = true;
    h.resume();
  }

  /// Like detach(), but registers the root frame with `reaper` so that a
  /// frame still suspended when the reaper dies is destroyed, not leaked.
  void detach(TaskReaper& reaper) && {
    auto h = std::exchange(handle_, {});
    h.promise().detached = true;
    h.promise().reaper = &reaper;
    reaper.add(h);
    h.resume();
  }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> cont) noexcept {
        h.promise().continuation = cont;
        return h;
      }
      void await_resume() {
        if (h.promise().error) std::rethrow_exception(h.promise().error);
      }
    };
    return Awaiter{handle_};
  }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

/// Adapts a callback-style async API into an awaitable:
///
///   AwaitCallback<T> awaiter([&](auto resolve) {
///     api.start(args, std::move(resolve));
///   });
///   T v = co_await awaiter;
///
/// IMPORTANT: always bind the AwaitCallback to a named local as above and
/// never `co_await AwaitCallback<T>(...)` directly. GCC 12 destroys
/// non-trivial temporaries inside a co_await full-expression twice when
/// the frame is torn down from final_suspend (detached root tasks), which
/// double-frees the starter's captured state. Named locals are destroyed
/// exactly once.
///
/// The starter MUST complete asynchronously (via the event loop); resolving
/// synchronously from inside the starter would resume before suspension
/// bookkeeping finishes and is rejected by an assert in debug builds.
template <typename T>
class AwaitCallback {
 public:
  using Resolve = std::function<void(T)>;

  explicit AwaitCallback(std::function<void(Resolve)> starter)
      : starter_(std::move(starter)) {}

  bool await_ready() const noexcept { return false; }

  void await_suspend(std::coroutine_handle<> h) {
    starter_([this, h](T v) {
      result_.emplace(std::move(v));
      h.resume();
    });
  }

  T await_resume() { return std::move(*result_); }

 private:
  std::function<void(Resolve)> starter_;
  std::optional<T> result_;
};

}  // namespace ncache
