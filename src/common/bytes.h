// Big-endian (network order) byte stream codecs used by every protocol
// layer (Ethernet/IP/UDP/TCP headers, RPC, NFS XDR-ish bodies, iSCSI BHS).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace ncache {

/// Appends network-order fields to a byte vector.
class ByteWriter {
 public:
  explicit ByteWriter(std::vector<std::byte>& out) : out_(out) {}

  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void bytes(std::span<const std::byte> data);
  void zeros(std::size_t n);
  /// XDR-style: 4-byte length, payload, zero padding to 4-byte multiple.
  void xdr_opaque(std::string_view s);

  std::size_t size() const noexcept { return out_.size(); }

 private:
  std::vector<std::byte>& out_;
};

/// Reads network-order fields from a byte span. All accessors throw
/// std::out_of_range on underrun so malformed packets surface loudly.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> in) : in_(in) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::span<const std::byte> bytes(std::size_t n);
  void skip(std::size_t n);
  std::string xdr_opaque();

  std::size_t remaining() const noexcept { return in_.size() - pos_; }
  std::size_t position() const noexcept { return pos_; }
  std::span<const std::byte> rest() const noexcept { return in_.subspan(pos_); }

 private:
  void need(std::size_t n) const;

  std::span<const std::byte> in_;
  std::size_t pos_ = 0;
};

/// Convenience: view a string as bytes.
inline std::span<const std::byte> as_bytes(std::string_view s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

inline std::string_view as_string_view(std::span<const std::byte> b) {
  return {reinterpret_cast<const char*>(b.data()), b.size()};
}

}  // namespace ncache
