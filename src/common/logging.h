// Minimal leveled logging for the NCache library.
//
// The simulation is single-threaded and deterministic, so logging is kept
// deliberately simple: a global level, a printf-style macro front-end, and
// stderr output. Benchmarks set the level to Warn so measurement loops stay
// quiet.
#pragma once

#include <cstdarg>
#include <cstdint>

namespace ncache::log {

enum class Level : std::uint8_t { Trace = 0, Debug, Info, Warn, Error, Off };

/// Sets the global log threshold; messages below it are discarded.
void set_level(Level level) noexcept;
Level level() noexcept;

/// True when a message at `l` would actually be emitted.
bool enabled(Level l) noexcept;

/// Emits one formatted line (printf-style) tagged with `tag`.
void write(Level l, const char* tag, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));

}  // namespace ncache::log

#define NC_LOG(level, tag, ...)                                  \
  do {                                                           \
    if (::ncache::log::enabled(level)) {                         \
      ::ncache::log::write(level, tag, __VA_ARGS__);             \
    }                                                            \
  } while (0)

#define NC_TRACE(tag, ...) NC_LOG(::ncache::log::Level::Trace, tag, __VA_ARGS__)
#define NC_DEBUG(tag, ...) NC_LOG(::ncache::log::Level::Debug, tag, __VA_ARGS__)
#define NC_INFO(tag, ...) NC_LOG(::ncache::log::Level::Info, tag, __VA_ARGS__)
#define NC_WARN(tag, ...) NC_LOG(::ncache::log::Level::Warn, tag, __VA_ARGS__)
#define NC_ERROR(tag, ...) NC_LOG(::ncache::log::Level::Error, tag, __VA_ARGS__)
