#include "common/overload.h"

#include <cmath>

namespace ncache::overload {

void TokenBucket::refill(std::uint64_t now_ns) {
  if (now_ns <= last_ns_) return;
  const std::uint64_t dt = now_ns - last_ns_;
  last_ns_ = now_ns;
  tokens_ += rate_per_sec_ * (static_cast<double>(dt) * 1e-9);
  if (tokens_ > burst_) tokens_ = burst_;
}

void RetryBudget::refill(std::uint64_t now_ns) {
  if (now_ns <= last_ns_) return;
  const std::uint64_t dt = now_ns - last_ns_;
  last_ns_ = now_ns;
  tokens_ += config_.reserve_per_sec * (static_cast<double>(dt) * 1e-9);
  if (tokens_ > config_.capacity) tokens_ = config_.capacity;
}

std::uint64_t CoDelState::next_drop_at(std::uint64_t from_ns) const {
  // interval / sqrt(count): the classic CoDel drop-rate ramp.
  const double denom = std::sqrt(static_cast<double>(count_ ? count_ : 1));
  return from_ns + static_cast<std::uint64_t>(
                       static_cast<double>(config_.interval_ns) / denom);
}

bool CoDelState::on_dequeue(std::uint64_t now_ns, std::uint64_t sojourn_ns) {
  if (sojourn_ns < config_.target_ns) {
    // Below target: leave the dropping state and restart the observation
    // window from scratch.
    first_above_ns_ = 0;
    dropping_ = false;
    return false;
  }

  if (!dropping_) {
    if (first_above_ns_ == 0) {
      // First sample above target — arm the window.
      first_above_ns_ = now_ns + config_.interval_ns;
      return false;
    }
    if (now_ns < first_above_ns_) return false;
    // Sojourn stayed above target for a full interval: start shedding.
    dropping_ = true;
    // Resume near the previous drop rate if the last spell was recent
    // (standard CoDel refinement); otherwise start the ramp over.
    count_ = (count_ > 2) ? count_ - 2 : 1;
    drop_next_ns_ = next_drop_at(now_ns);
    return true;
  }

  if (now_ns >= drop_next_ns_) {
    ++count_;
    drop_next_ns_ = next_drop_at(drop_next_ns_);
    return true;
  }
  return false;
}

}  // namespace ncache::overload
