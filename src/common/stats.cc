#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace ncache {

double ByteMeter::mb_per_sec(std::uint64_t interval_ns) const noexcept {
  if (interval_ns == 0) return 0.0;
  return double(bytes_) / 1e6 / (double(interval_ns) / 1e9);
}

LatencyHistogram::LatencyHistogram() : buckets_(kBuckets, 0) {}

namespace {
// Bucket i covers [1us * 2^(i-1), 1us * 2^i); bucket 0 covers [0, 1us).
int bucket_for(std::uint64_t ns) {
  if (ns < 1000) return 0;
  int b = 1;
  std::uint64_t bound = 2000;
  while (ns >= bound && b < 39) {
    bound <<= 1;
    ++b;
  }
  return b;
}

std::uint64_t bucket_upper(int i) {
  if (i == 0) return 1000;
  return 1000ull << i;
}
}  // namespace

void LatencyHistogram::record(std::uint64_t ns) noexcept {
  buckets_[std::min(bucket_for(ns), kBuckets - 1)]++;
  if (count_ == 0 || ns < min_) min_ = ns;
  if (ns > max_) max_ = ns;
  sum_ += ns;
  ++count_;
}

double LatencyHistogram::mean_ns() const noexcept {
  return count_ ? double(sum_) / double(count_) : 0.0;
}

std::uint64_t LatencyHistogram::quantile_ns(double q) const noexcept {
  if (count_ == 0) return 0;
  if (q <= 0.0) return min_ns();
  if (q >= 1.0) return max_ns();
  // Rank of the requested sample, 1-based; q*count rounds up so that
  // e.g. q=0.5 over 2 samples lands on the first, not the zeroth.
  std::uint64_t target =
      std::max<std::uint64_t>(1, std::uint64_t(std::ceil(q * double(count_))));
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= target) return bucket_upper(i);
  }
  return max_;
}

void LatencyHistogram::reset() noexcept {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = sum_ = min_ = max_ = 0;
}

std::string LatencyHistogram::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.1fus p50=%.1fus p99=%.1fus max=%.1fus",
                static_cast<unsigned long long>(count_), mean_ns() / 1e3,
                double(quantile_ns(0.5)) / 1e3, double(quantile_ns(0.99)) / 1e3,
                double(max_) / 1e3);
  return buf;
}

void RunningStat::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  double delta = x - mean_;
  mean_ += delta / double(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const noexcept {
  return n_ > 1 ? m2_ / double(n_ - 1) : 0.0;
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

}  // namespace ncache
