// Checksums used on the simulated wire.
//
// The Internet checksum (RFC 1071) is computed over IP/UDP/TCP exactly as a
// real stack would; whether its cost is charged to the host CPU depends on
// the NIC's checksum-offload setting (the paper's testbed had offload
// enabled). CRC32 is used by the block store to validate on-disk integrity.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace ncache {

/// RFC 1071 ones-complement sum. `accumulate` lets callers fold multiple
/// fragments (or a pseudo-header) into one checksum.
std::uint32_t checksum_accumulate(std::span<const std::byte> data,
                                  std::uint32_t acc) noexcept;

/// Finalizes an accumulated sum into the 16-bit ones-complement checksum.
std::uint16_t checksum_finish(std::uint32_t acc) noexcept;

/// One-shot Internet checksum of a contiguous buffer.
std::uint16_t internet_checksum(std::span<const std::byte> data) noexcept;

/// CRC-32 (IEEE 802.3 polynomial, reflected).
std::uint32_t crc32(std::span<const std::byte> data,
                    std::uint32_t seed = 0) noexcept;

}  // namespace ncache
