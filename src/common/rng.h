// Deterministic PRNG (PCG32) used by all workload generators and the
// simulation so that every run is reproducible from a single seed.
#pragma once

#include <cstdint>
#include <limits>

namespace ncache {

/// PCG-XSH-RR 64/32. Small, fast, and statistically solid; used instead of
/// <random> engines so streams are stable across standard libraries.
class Pcg32 {
 public:
  using result_type = std::uint32_t;

  explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t stream = 0xda3e39cb94b95bdbULL) noexcept {
    state_ = 0;
    inc_ = (stream << 1u) | 1u;
    next();
    state_ += seed;
    next();
  }

  std::uint32_t next() noexcept {
    std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    auto xorshifted = static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    auto rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((-rot) & 31u));
  }

  std::uint32_t operator()() noexcept { return next(); }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Uniform integer in [0, bound) with Lemire rejection (unbiased).
  std::uint32_t below(std::uint32_t bound) noexcept {
    if (bound <= 1) return 0;
    std::uint64_t m = std::uint64_t(next()) * bound;
    auto lo = static_cast<std::uint32_t>(m);
    if (lo < bound) {
      std::uint32_t t = (-bound) % bound;
      while (lo < t) {
        m = std::uint64_t(next()) * bound;
        lo = static_cast<std::uint32_t>(m);
      }
    }
    return static_cast<std::uint32_t>(m >> 32);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) noexcept {
    if (hi <= lo) return lo;
    std::uint64_t span = hi - lo + 1;
    // Compose two 32-bit draws for 64-bit spans.
    std::uint64_t draw = (std::uint64_t(next()) << 32) | next();
    return lo + draw % span;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return (next() >> 8) * (1.0 / 16777216.0);
  }

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

}  // namespace ncache
