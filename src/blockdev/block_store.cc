#include "blockdev/block_store.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "common/checksum.h"
#include "common/metrics.h"

namespace ncache::blockdev {

DiskModel::DiskModel(sim::EventLoop& loop, const sim::CostModel& costs,
                     std::string name)
    : loop_(loop), costs_(costs), name_(std::move(name)) {}

void DiskModel::access(std::uint64_t offset, std::size_t bytes,
                       sim::InlineCallback done) {
  sim::Duration cost = costs_.disk_command_ns;
  if (offset != next_sequential_offset_) {
    std::uint64_t delta = offset > next_sequential_offset_
                              ? offset - next_sequential_offset_
                              : next_sequential_offset_ - offset;
    if (delta <= costs_.disk_near_band_bytes) {
      // Slightly out-of-order request in the queue: the elevator absorbs
      // it without a full positioning cycle.
      cost += costs_.disk_near_seek_ns;
    } else {
      cost += costs_.disk_seek_ns;
      ++seeks_;
    }
  }
  cost += static_cast<sim::Duration>(double(bytes) * 8e9 /
                                     double(costs_.disk_bandwidth_bps));
  next_sequential_offset_ = offset + bytes;
  ++requests_;

  sim::Time start = std::max(loop_.now(), idle_at_);
  sim::Time finish = start + cost;
  idle_at_ = finish;
  sim::Time acct = std::max(start, window_start_);
  if (finish > acct) busy_ns_ += finish - acct;
  loop_.schedule_at(finish, std::move(done));
}

double DiskModel::utilization() const noexcept {
  sim::Time now = loop_.now();
  if (now <= window_start_) return 0.0;
  sim::Duration busy = busy_ns_;
  if (idle_at_ > now) {
    sim::Duration future = idle_at_ - now;
    busy = busy > future ? busy - future : 0;
  }
  return std::min(1.0, double(busy) / double(now - window_start_));
}

void DiskModel::reset_stats() noexcept {
  busy_ns_ = 0;
  requests_ = 0;
  seeks_ = 0;
  window_start_ = loop_.now();
  if (idle_at_ > window_start_) busy_ns_ = idle_at_ - window_start_;
}

Raid0::Raid0(sim::EventLoop& loop, const sim::CostModel& costs,
             std::string name, unsigned disks, std::size_t stripe_unit_bytes)
    : loop_(loop), stripe_unit_(stripe_unit_bytes) {
  if (disks == 0) throw std::invalid_argument("Raid0: need >= 1 disk");
  for (unsigned i = 0; i < disks; ++i) {
    disks_.push_back(std::make_unique<DiskModel>(
        loop, costs, name + ".d" + std::to_string(i)));
  }
}

void Raid0::access(std::uint64_t offset, std::size_t bytes,
                   sim::InlineCallback done) {
  if (bytes == 0) {
    loop_.schedule_in(0, std::move(done));
    return;
  }
  // Split [offset, offset+bytes) into stripe-unit extents and fan out.
  struct Join {
    std::size_t remaining = 0;
    sim::InlineCallback done;
  };
  auto join = std::make_shared<Join>();
  join->done = std::move(done);

  std::uint64_t pos = offset;
  std::uint64_t end = offset + bytes;
  while (pos < end) {
    std::uint64_t stripe = pos / stripe_unit_;
    std::uint64_t in_stripe = pos % stripe_unit_;
    std::size_t extent =
        std::min<std::uint64_t>(stripe_unit_ - in_stripe, end - pos);
    unsigned disk_index = unsigned(stripe % disks_.size());
    // Per-disk linear offset: which stripe row on the spindle.
    std::uint64_t row = stripe / disks_.size();
    std::uint64_t disk_offset = row * stripe_unit_ + in_stripe;

    ++join->remaining;
    disks_[disk_index]->access(disk_offset, extent, [join] {
      if (--join->remaining == 0 && join->done) join->done();
    });
    pos += extent;
  }
}

void Raid0::reset_stats() noexcept {
  for (auto& d : disks_) d->reset_stats();
}

BlockStore::BlockStore(sim::EventLoop& loop, const sim::CostModel& costs,
                       std::string name, std::uint64_t capacity_blocks,
                       unsigned disks)
    : loop_(loop),
      raid_(loop, costs, name, disks),
      capacity_(capacity_blocks) {}

void BlockStore::check_range(std::uint64_t lbn, std::uint32_t count) const {
  if (lbn + count > capacity_ || count == 0) {
    throw std::out_of_range("BlockStore: block range out of bounds");
  }
}

BlockStore::FaultWindow* BlockStore::find_fault(std::uint64_t lbn,
                                                std::uint32_t count) {
  for (FaultWindow& f : faults_) {
    if (f.remaining == 0) continue;
    if (lbn < f.lbn + f.count && f.lbn < lbn + count) return &f;
  }
  return nullptr;
}

void BlockStore::inject_read_fault(std::uint64_t lbn, std::uint32_t count,
                                   DiskFaultKind kind, std::uint32_t times) {
  check_range(lbn, count);
  faults_.push_back(FaultWindow{lbn, count, kind, times});
  verify_reads_ = true;
}

Task<BlockStore::ReadResult> BlockStore::read(std::uint64_t lbn,
                                              std::uint32_t count) {
  check_range(lbn, count);
  ++reads_;
  AwaitCallback<bool> io([this, lbn, count](auto resolve) {
    auto r = std::make_shared<decltype(resolve)>(std::move(resolve));
    raid_.access(lbn * kBlockSize, std::size_t(count) * kBlockSize,
                 [r] { (*r)(true); });
  });
  co_await io;

  FaultWindow* fault = find_fault(lbn, count);
  if (fault) {
    --fault->remaining;
    if (fault->kind == DiskFaultKind::LatentSectorError) {
      // The drive cannot return the sector at all: unrecovered read error.
      ++read_errors_;
      co_return ReadResult{{}, false};
    }
  }

  ReadResult out{peek(lbn, count), true};
  if (fault) {
    // Silent corruption on the wire from the platter: flip one byte in the
    // first faulted block of the range.
    std::uint64_t bad = std::max(lbn, fault->lbn);
    std::size_t at = std::size_t(bad - lbn) * kBlockSize;
    out.data[at] ^= std::byte{0xFF};
  }
  if (verify_reads_) {
    // End-to-end integrity: per-block CRC catches what the drive missed.
    static const std::uint32_t kZeroCrc = [] {
      std::vector<std::byte> z(kBlockSize);
      return crc32(z);
    }();
    for (std::uint32_t i = 0; i < count; ++i) {
      auto it = crcs_.find(lbn + i);
      std::uint32_t want = it != crcs_.end() ? it->second : kZeroCrc;
      std::span<const std::byte> blk(out.data.data() +
                                         std::size_t(i) * kBlockSize,
                                     kBlockSize);
      if (crc32(blk) != want) {
        ++checksum_mismatches_;
        ++read_errors_;
        out.ok = false;
        break;
      }
    }
  }
  co_return out;
}

Task<void> BlockStore::write(std::uint64_t lbn, std::vector<std::byte> data) {
  if (data.size() % kBlockSize != 0) {
    throw std::invalid_argument("BlockStore::write: unaligned size");
  }
  auto count = std::uint32_t(data.size() / kBlockSize);
  check_range(lbn, count);
  ++writes_;
  AwaitCallback<bool> io([this, lbn, &data](auto resolve) {
    auto r = std::make_shared<decltype(resolve)>(std::move(resolve));
    raid_.access(lbn * kBlockSize, data.size(), [r] { (*r)(true); });
  });
  co_await io;
  poke(lbn, data);
}

void BlockStore::poke(std::uint64_t lbn, std::span<const std::byte> data) {
  if (data.size() % kBlockSize != 0) {
    throw std::invalid_argument("BlockStore::poke: unaligned size");
  }
  for (std::size_t i = 0; i * kBlockSize < data.size(); ++i) {
    auto& slot = blocks_[lbn + i];
    if (!slot) slot = std::make_unique<std::byte[]>(kBlockSize);
    std::memcpy(slot.get(), data.data() + i * kBlockSize, kBlockSize);
    crcs_[lbn + i] = crc32({slot.get(), kBlockSize});
  }
}

std::vector<std::byte> BlockStore::peek(std::uint64_t lbn,
                                        std::uint32_t count) const {
  check_range(lbn, count);
  std::vector<std::byte> out(std::size_t(count) * kBlockSize);
  for (std::uint32_t i = 0; i < count; ++i) {
    auto it = blocks_.find(lbn + i);
    if (it != blocks_.end()) {
      std::memcpy(out.data() + std::size_t(i) * kBlockSize, it->second.get(),
                  kBlockSize);
    }  // else zeros
  }
  return out;
}

void BlockStore::register_metrics(MetricRegistry& registry,
                                  const std::string& node) {
  registry.counter(node, "disk.reads", [this] { return reads_; });
  registry.counter(node, "disk.writes", [this] { return writes_; });
  registry.counter(node, "disk.read_errors", [this] { return read_errors_; });
  registry.counter(node, "disk.checksum_mismatches",
                   [this] { return checksum_mismatches_; });
  for (unsigned i = 0; i < raid_.disk_count(); ++i) {
    DiskModel* d = &raid_.disk(i);
    std::string prefix = "disk" + std::to_string(i);
    registry.counter(node, prefix + ".requests",
                     [d] { return d->requests(); });
    registry.counter(node, prefix + ".seeks", [d] { return d->seeks(); });
    registry.gauge(node, prefix + ".utilization",
                   [d] { return d->utilization(); });
  }
  registry.on_reset([this] { raid_.reset_stats(); });
}

}  // namespace ncache::blockdev
