// Storage-server disk subsystem: per-spindle timing model, RAID-0
// striping, and the backing byte store.
//
// The testbed's storage node has 4 IDE disks (IBM DTLA-307075) in RAID-0
// (§5.2). Timing is modelled per spindle — positioning cost for
// non-sequential access, media-rate transfer, per-command overhead — and
// striped requests proceed in parallel across spindles, which is what lets
// the all-miss workload saturate the storage server's *CPU* rather than
// its disks (Fig 4).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/task.h"
#include "sim/cost_model.h"
#include "sim/cpu_model.h"
#include "sim/event_loop.h"

namespace ncache {
class MetricRegistry;
}

namespace ncache::blockdev {

constexpr std::size_t kBlockSize = 4096;  ///< logical block, matches fs block

/// One spindle: requests queue FIFO; sequential successors skip the seek.
class DiskModel {
 public:
  DiskModel(sim::EventLoop& loop, const sim::CostModel& costs,
            std::string name);

  /// Timing-only access of `bytes` at `offset`; `done` fires at completion.
  void access(std::uint64_t offset, std::size_t bytes,
              sim::InlineCallback done);

  std::uint64_t requests() const noexcept { return requests_; }
  std::uint64_t seeks() const noexcept { return seeks_; }
  double utilization() const noexcept;
  void reset_stats() noexcept;

 private:
  sim::EventLoop& loop_;
  const sim::CostModel& costs_;
  std::string name_;
  sim::Time idle_at_ = 0;
  std::uint64_t next_sequential_offset_ = 0;
  std::uint64_t requests_ = 0;
  std::uint64_t seeks_ = 0;
  sim::Duration busy_ns_ = 0;
  sim::Time window_start_ = 0;
};

/// RAID-0 over N spindles with a fixed stripe unit. A logical request is
/// split into per-disk extents that proceed in parallel; completion fires
/// when the last extent lands.
class Raid0 {
 public:
  Raid0(sim::EventLoop& loop, const sim::CostModel& costs, std::string name,
        unsigned disks, std::size_t stripe_unit_bytes = 64 * 1024);

  void access(std::uint64_t offset, std::size_t bytes,
              sim::InlineCallback done);

  unsigned disk_count() const noexcept { return unsigned(disks_.size()); }
  DiskModel& disk(unsigned i) { return *disks_.at(i); }
  void reset_stats() noexcept;

 private:
  sim::EventLoop& loop_;
  std::vector<std::unique_ptr<DiskModel>> disks_;
  std::size_t stripe_unit_;
};

/// Injectable read-path disk faults (latent sector errors surface as a
/// medium error; checksum mismatches deliver corrupt bytes that the
/// per-block CRC catches).
enum class DiskFaultKind : std::uint8_t {
  LatentSectorError,
  ChecksumMismatch,
};

/// The byte contents of the array plus RAID-0 timing: the storage server's
/// complete disk subsystem. Contents are sparse (unwritten blocks read as
/// zeros) so multi-GB volumes cost only what is touched.
class BlockStore {
 public:
  struct ReadResult {
    std::vector<std::byte> data;  ///< empty on a latent sector error
    bool ok = true;
  };

  BlockStore(sim::EventLoop& loop, const sim::CostModel& costs,
             std::string name, std::uint64_t capacity_blocks,
             unsigned disks = 4);

  /// Asynchronous block read: bytes are produced after the RAID timing
  /// elapses. `ok` is false when an armed fault fires on the range (or a
  /// CRC verify catches corruption) — the medium-error path a real
  /// initiator sees as CHECK CONDITION.
  Task<ReadResult> read(std::uint64_t lbn, std::uint32_t count);
  Task<void> write(std::uint64_t lbn, std::vector<std::byte> data);

  /// Arms a transient read fault: the next `times` reads overlapping
  /// [lbn, lbn+count) fail with `kind`, then the range heals (transient
  /// latent errors — a reread after remap/retry succeeds).
  void inject_read_fault(std::uint64_t lbn, std::uint32_t count,
                         DiskFaultKind kind, std::uint32_t times = 1);

  /// Synchronous accessors for test setup / mkfs-style population (no
  /// timing charged).
  void poke(std::uint64_t lbn, std::span<const std::byte> data);
  std::vector<std::byte> peek(std::uint64_t lbn, std::uint32_t count) const;

  std::uint64_t capacity_blocks() const noexcept { return capacity_; }
  Raid0& raid() noexcept { return raid_; }
  std::uint64_t reads() const noexcept { return reads_; }
  std::uint64_t writes() const noexcept { return writes_; }
  std::uint64_t read_errors() const noexcept { return read_errors_; }
  std::uint64_t checksum_mismatches() const noexcept {
    return checksum_mismatches_;
  }

  /// Publishes disk.* request counters and per-spindle utilization gauges
  /// under `node`; hooks the RAID stats reset into the registry reset.
  void register_metrics(MetricRegistry& registry, const std::string& node);

 private:
  struct FaultWindow {
    std::uint64_t lbn;
    std::uint32_t count;
    DiskFaultKind kind;
    std::uint32_t remaining;
  };

  void check_range(std::uint64_t lbn, std::uint32_t count) const;
  /// The armed fault (if any) overlapping [lbn, lbn+count) with shots left.
  FaultWindow* find_fault(std::uint64_t lbn, std::uint32_t count);

  sim::EventLoop& loop_;
  Raid0 raid_;
  std::uint64_t capacity_;
  std::unordered_map<std::uint64_t, std::unique_ptr<std::byte[]>> blocks_;
  /// Per-block CRC32 maintained on every write; verified on read only once
  /// fault injection has been armed (fault-free runs skip the scan).
  std::unordered_map<std::uint64_t, std::uint32_t> crcs_;
  std::vector<FaultWindow> faults_;
  bool verify_reads_ = false;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
  std::uint64_t read_errors_ = 0;
  std::uint64_t checksum_mismatches_ = 0;
};

}  // namespace ncache::blockdev
