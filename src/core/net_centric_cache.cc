#include "core/net_centric_cache.h"

#include <algorithm>

#include "common/logging.h"

namespace ncache::core {

using netbuf::CacheKey;
using netbuf::FhoKey;
using netbuf::LbnKey;
using netbuf::MsgBuffer;

NetCentricCache::NetCentricCache(sim::CpuModel& cpu,
                                 const sim::CostModel& costs, Config config)
    : cpu_(cpu),
      costs_(costs),
      config_(config),
      pool_("ncache", config.pool_budget_bytes) {}

void NetCentricCache::drop_chunk(Chunk& c) {
  lru_.remove(c);
  if (c.fho && forward_.contains(*c.fho)) forward_.erase(*c.fho);
  // Erasing from the owning index destroys the chunk; buffers unpin as
  // their last reference (cache or in-flight frame) goes away.
  if (c.lbn) {
    lbn_index_.erase(*c.lbn);
  } else if (c.fho) {
    fho_index_.erase(*c.fho);
  }
}

bool NetCentricCache::evict_one() {
  for (auto it = lru_.begin(); it != lru_.end(); ++it) {
    Chunk& c = *it;
    if (c.dirty) {
      // Dirty chunks are FHO data not yet flushed by the fs; the paper's
      // sizing argument (§3.4) says this should not be the LRU victim.
      ++stats_.dirty_skips;
      continue;
    }
    ++stats_.evictions;
    drop_chunk(c);
    return true;
  }
  return false;
}

std::optional<std::size_t> NetCentricCache::pin_chain(MsgBuffer& chain) {
  std::size_t pinned = 0;
  for (const auto& seg : chain.segments()) {
    const auto* b = std::get_if<netbuf::ByteSeg>(&seg);
    if (!b) return std::nullopt;  // only physical chains are cacheable
    if (b->buf->pool() == &pool_) continue;  // shared buffer already pinned
    std::size_t before = pool_.in_use();
    while (!pool_.adopt(*b->buf)) {
      if (!evict_one()) {
        ++stats_.insert_failures;
        return std::nullopt;
      }
    }
    pinned += pool_.in_use() - before;
  }
  return pinned;
}

bool NetCentricCache::insert_lbn(LbnKey key, MsgBuffer chain) {
  cpu_.charge(costs_.ncache_manage_ns);
  auto it = lbn_index_.find(key);
  if (it != lbn_index_.end()) {
    // Fresh copy of a block we already hold: replace the chain.
    auto pinned = pin_chain(chain);
    if (!pinned) return false;
    it->second->chain = std::move(chain);
    it->second->pinned = *pinned;
    it->second->inserted_at = stamp();
    touch(*it->second);
    ++stats_.lbn_inserts;
    return true;
  }
  auto pinned = pin_chain(chain);
  if (!pinned) return false;
  auto chunk = std::make_unique<Chunk>();
  chunk->chain = std::move(chain);
  chunk->lbn = key;
  chunk->pinned = *pinned;
  chunk->inserted_at = stamp();
  lru_.push_back(*chunk);
  lbn_index_.emplace(key, std::move(chunk));
  ++stats_.lbn_inserts;
  return true;
}

bool NetCentricCache::insert_fho(FhoKey key, MsgBuffer chain) {
  cpu_.charge(costs_.ncache_manage_ns);
  auto pinned = pin_chain(chain);
  if (!pinned) return false;
  auto it = fho_index_.find(key);
  if (it != fho_index_.end()) {
    it->second->chain = std::move(chain);
    it->second->pinned = *pinned;
    it->second->dirty = true;
    it->second->inserted_at = stamp();
    touch(*it->second);
    ++stats_.fho_overwrites;
    return true;
  }
  // A re-write of a previously remapped block: drop the stale forwarding;
  // the FHO index now holds the freshest data and is consulted first.
  forward_.erase(key);
  auto chunk = std::make_unique<Chunk>();
  chunk->chain = std::move(chain);
  chunk->fho = key;
  chunk->dirty = true;
  chunk->pinned = *pinned;
  chunk->inserted_at = stamp();
  lru_.push_back(*chunk);
  fho_index_.emplace(key, std::move(chunk));
  ++stats_.fho_inserts;
  return true;
}

std::optional<MsgBuffer> NetCentricCache::lookup(const CacheKey& key) {
  if (const auto* f = std::get_if<FhoKey>(&key)) {
    auto it = fho_index_.find(*f);
    if (it != fho_index_.end()) {
      ++stats_.hits;
      touch(*it->second);
      return it->second->chain;
    }
    auto fwd = forward_.find(*f);
    if (fwd != forward_.end()) {
      auto lit = lbn_index_.find(fwd->second);
      if (lit != lbn_index_.end()) {
        ++stats_.hits;
        ++stats_.forward_hits;
        touch(*lit->second);
        return lit->second->chain;
      }
    }
    ++stats_.misses;
    return std::nullopt;
  }
  const auto& l = std::get<LbnKey>(key);
  auto it = lbn_index_.find(l);
  if (it == lbn_index_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  touch(*it->second);
  return it->second->chain;
}

bool NetCentricCache::contains_lbn(std::uint64_t lbn_block,
                                   std::uint32_t target) const {
  return lbn_index_.contains(LbnKey{target, lbn_block});
}

std::optional<sim::Time> NetCentricCache::lbn_inserted_at(
    std::uint64_t lbn_block, std::uint32_t target) const {
  auto it = lbn_index_.find(LbnKey{target, lbn_block});
  if (it == lbn_index_.end()) return std::nullopt;
  return it->second->inserted_at;
}

std::vector<LbnKey> NetCentricCache::lbn_keys() const {
  std::vector<LbnKey> keys;
  keys.reserve(lbn_index_.size());
  for (const auto& [key, chunk] : lbn_index_) keys.push_back(key);
  std::sort(keys.begin(), keys.end(), [](const LbnKey& a, const LbnKey& b) {
    return a.target != b.target ? a.target < b.target : a.lbn < b.lbn;
  });
  return keys;
}

bool NetCentricCache::invalidate_lbn(const LbnKey& key) {
  auto it = lbn_index_.find(key);
  if (it == lbn_index_.end()) return false;
  cpu_.charge(costs_.ncache_manage_ns);
  drop_chunk(*it->second);
  return true;
}

bool NetCentricCache::remap(FhoKey fho, LbnKey lbn) {
  cpu_.charge(costs_.ncache_manage_ns);
  auto it = fho_index_.find(fho);
  if (it == fho_index_.end()) return false;

  std::unique_ptr<Chunk> chunk = std::move(it->second);
  fho_index_.erase(it);

  // "If the LBN cache already has an entry with the same LBN, the FHO
  // cache entry is overwritten on it because data in the FHO cache is
  // always more up-to-date." (§3.4)
  auto existing = lbn_index_.find(lbn);
  if (existing != lbn_index_.end()) {
    ++stats_.remap_overwrites;
    drop_chunk(*existing->second);
  }

  chunk->lbn = lbn;
  chunk->fho = fho;  // retained for forwarding cleanup on eviction
  chunk->dirty = false;  // the triggering flush is writing it to storage
  chunk->inserted_at = stamp();  // remap refreshes: the flush just wrote it
  forward_[fho] = lbn;
  lbn_index_.emplace(lbn, std::move(chunk));
  ++stats_.remaps;
  return true;
}

void NetCentricCache::clear() {
  while (Chunk* c = lru_.front()) drop_chunk(*c);
  forward_.clear();
}

void NetCentricCache::register_metrics(MetricRegistry& registry,
                                       const std::string& node,
                                       const std::string& prefix) {
  registry.counter(node, prefix + ".lbn_inserts",
                   [this] { return stats_.lbn_inserts; });
  registry.counter(node, prefix + ".fho_inserts",
                   [this] { return stats_.fho_inserts; });
  registry.counter(node, prefix + ".fho_overwrites",
                   [this] { return stats_.fho_overwrites; });
  registry.counter(node, prefix + ".remap_overwrites",
                   [this] { return stats_.remap_overwrites; });
  registry.counter(node, prefix + ".hits", [this] { return stats_.hits; });
  registry.counter(node, prefix + ".misses", [this] { return stats_.misses; });
  registry.counter(node, prefix + ".remaps", [this] { return stats_.remaps; });
  registry.counter(node, prefix + ".evictions",
                   [this] { return stats_.evictions; });
  registry.counter(node, prefix + ".dirty_skips",
                   [this] { return stats_.dirty_skips; });
  registry.counter(node, prefix + ".insert_failures",
                   [this] { return stats_.insert_failures; });
  registry.counter(node, prefix + ".forward_hits",
                   [this] { return stats_.forward_hits; });
  registry.gauge(node, prefix + ".chunk_count",
                 [this] { return double(chunk_count()); });
  registry.gauge(node, prefix + ".pinned_bytes",
                 [this] { return double(pinned_bytes()); });
  pool_.register_metrics(registry, node, prefix + ".pool");
  registry.on_reset([this] { reset_stats(); });
}

}  // namespace ncache::core
