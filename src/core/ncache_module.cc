#include "core/ncache_module.h"

#include "common/logging.h"

namespace ncache::core {

using netbuf::CacheKey;
using netbuf::CacheKeyHash;
using netbuf::FhoKey;
using netbuf::KeySeg;
using netbuf::LbnKey;
using netbuf::MsgBuffer;

NCacheModule::NCacheModule(proto::NetworkStack& stack,
                           NetCentricCache::Config config)
    : stack_(stack), cache_(stack.cpu(), stack.costs(), config) {
  // Freshness stamps cost nothing and are never serialized; the brownout
  // ServeStale tier reads them through lbn_inserted_at.
  cache_.set_clock([this] { return stack_.loop().now(); });
}

void NCacheModule::attach_egress() {
  stack_.set_egress_filter(
      [this](proto::Frame& f) { return egress_filter(f); });
}

void NCacheModule::attach_initiator(iscsi::IscsiInitiator& initiator) {
  initiator.set_payload_policy(iscsi::PayloadPolicy::NCache);
  std::uint32_t target = initiator.target_id();
  initiator.set_ingest_hook(
      [this, target](std::uint64_t lbn, MsgBuffer chain) {
        return ingest_lbn(target, lbn, std::move(chain));
      });
  initiator.set_remap_hook(
      [this, target](std::uint64_t lbn, const MsgBuffer& payload) {
        remap_on_flush(target, lbn, payload);
      });
  initiator.set_lbn_probe([this, target](std::uint64_t lbn) {
    maybe_recover();
    if (brownout_.enabled) {
      if (tier_ >= BrownoutTier::PhysicalCopy) return false;
      if (tier_ == BrownoutTier::ServeStale) {
        // Ingestion is bypassed in this tier, so cached chunks only age;
        // answer from cache while they are younger than the TTL.
        auto at = cache_.lbn_inserted_at(lbn, target);
        if (!at) return false;
        if (stack_.loop().now() - *at > brownout_.stale_ttl) return false;
        ++stats_.second_level_hits;
        ++stats_.brownout_stale_hits;
        return true;
      }
    } else if (degraded_) {
      return false;  // fall through to the physical chain
    }
    if (!cache_.contains_lbn(lbn, target)) return false;
    ++stats_.second_level_hits;
    return true;
  });
}

void NCacheModule::note_pressure() {
  if (brownout_.enabled) {
    brownout_note_pressure();
    return;
  }
  if (!degrade_.enabled) return;
  sim::Time now = stack_.loop().now();
  last_pressure_ = now;
  if (degraded_) return;
  pressure_events_.push_back(now);
  sim::Time horizon =
      now > degrade_.pressure_window ? now - degrade_.pressure_window : 0;
  while (!pressure_events_.empty() && pressure_events_.front() < horizon) {
    pressure_events_.pop_front();
  }
  if (pressure_events_.size() >= degrade_.pressure_threshold) {
    degraded_ = true;
    degraded_since_ = now;
    pressure_events_.clear();
    ++stats_.degrade_entries;
    NC_WARN("ncache", "pressure spike: degrading to physical-copy path");
  }
}

void NCacheModule::brownout_note_pressure() {
  sim::Time now = stack_.loop().now();
  last_pressure_ = now;
  pressure_events_.push_back(now);
  sim::Time horizon =
      now > brownout_.pressure_window ? now - brownout_.pressure_window : 0;
  while (!pressure_events_.empty() && pressure_events_.front() < horizon) {
    pressure_events_.pop_front();
  }
  // The window is NOT cleared on escalation: sustained pressure keeps the
  // count climbing through the higher thresholds.
  std::size_t n = pressure_events_.size();
  BrownoutTier target = BrownoutTier::Normal;
  if (n >= brownout_.tier3_threshold) {
    target = BrownoutTier::Shed;
  } else if (n >= brownout_.tier2_threshold) {
    target = BrownoutTier::PhysicalCopy;
  } else if (n >= brownout_.tier1_threshold) {
    target = BrownoutTier::ServeStale;
  }
  if (target > tier_) set_tier(target, now);
}

void NCacheModule::brownout_maybe_recover() {
  if (tier_ == BrownoutTier::Normal) return;
  sim::Time now = stack_.loop().now();
  if (now - tier_since_ < brownout_.min_dwell) return;
  if (now - last_pressure_ < brownout_.quiet_period) return;
  // One tier at a time; the dwell clock restarts at every step.
  set_tier(BrownoutTier(int(tier_) - 1), now);
}

void NCacheModule::set_tier(BrownoutTier tier, sim::Time now) {
  bool was_degraded = tier_ >= BrownoutTier::PhysicalCopy;
  bool is_degraded = tier >= BrownoutTier::PhysicalCopy;
  if (tier > tier_) {
    ++stats_.brownout_escalations;
    NC_WARN("ncache", "brownout escalation: tier %d -> %d", int(tier_),
            int(tier));
  } else {
    ++stats_.brownout_deescalations;
    NC_WARN("ncache", "brownout recovery step: tier %d -> %d", int(tier_),
            int(tier));
  }
  tier_ = tier;
  tier_since_ = now;
  // Keep the legacy degraded flag (and its time accounting) mirroring the
  // PhysicalCopy boundary so degraded()/degraded_ns() stay meaningful.
  if (!was_degraded && is_degraded) {
    degraded_ = true;
    degraded_since_ = now;
    ++stats_.degrade_entries;
  } else if (was_degraded && !is_degraded) {
    degraded_ = false;
    degraded_total_ns_ += now - degraded_since_;
    ++stats_.degrade_exits;
  }
}

void NCacheModule::maybe_recover() {
  if (brownout_.enabled) {
    brownout_maybe_recover();
    return;
  }
  if (!degraded_) return;
  sim::Time now = stack_.loop().now();
  if (now - degraded_since_ < degrade_.min_dwell) return;
  if (now - last_pressure_ < degrade_.quiet_period) return;
  degraded_ = false;
  degraded_total_ns_ += now - degraded_since_;
  ++stats_.degrade_exits;
  NC_WARN("ncache", "pressure subsided: resuming logical-copy path");
}

sim::Duration NCacheModule::degraded_ns() const noexcept {
  sim::Duration total = degraded_total_ns_;
  if (degraded_) total += stack_.loop().now() - degraded_since_;
  return total;
}

MsgBuffer NCacheModule::ingest_lbn(std::uint32_t target, std::uint64_t lbn,
                                   MsgBuffer chain) {
  maybe_recover();
  auto len = std::uint32_t(chain.size());
  if (ingest_bypass()) {
    // Degraded: behave like the Original path — one physical copy up, no
    // cache traffic, so replies carry real bytes regardless of pool state.
    ++stats_.degraded_ingest_bypass;
    return stack_.copier().copy_message(chain, netbuf::CopyClass::RegularData);
  }
  LbnKey key{target, lbn};
  if (!cache_.insert_lbn(key, std::move(chain))) {
    note_pressure();
    NC_WARN("ncache", "LBN ingest failed for block %llu; passing physical",
            static_cast<unsigned long long>(lbn));
    // Caller still needs the data; re-resolve (insert kept nothing).
    // Fall back to a junk marker only if the chain was consumed — it was
    // moved, so resolve through lookup or return junk.
    auto cached = cache_.lookup(CacheKey(key));
    if (cached) return std::move(*cached);
    return MsgBuffer::junk(len);
  }
  return MsgBuffer::from_key(CacheKey(key), 0, len);
}

MsgBuffer NCacheModule::ingest_fho(FhoKey key, MsgBuffer chain) {
  maybe_recover();
  auto len = std::uint32_t(chain.size());
  if (ingest_bypass()) {
    ++stats_.degraded_ingest_bypass;
    return stack_.copier().copy_message(chain, netbuf::CopyClass::RegularData);
  }
  if (!cache_.insert_fho(key, std::move(chain))) {
    note_pressure();
    NC_WARN("ncache", "FHO ingest failed for %s", to_string(CacheKey(key)).c_str());
    return MsgBuffer::junk(len);
  }
  return MsgBuffer::from_key(CacheKey(key), 0, len);
}

void NCacheModule::remap_on_flush(std::uint32_t target, std::uint64_t lbn,
                                  const MsgBuffer& payload) {
  for (const auto& seg : payload.segments()) {
    const auto* k = std::get_if<KeySeg>(&seg);
    if (!k) continue;
    if (const auto* f = std::get_if<FhoKey>(&k->key)) {
      cache_.remap(*f, LbnKey{target, lbn});
    }
  }
}

bool NCacheModule::egress_filter(proto::Frame& frame) {
  if (!frame.payload.has_keys()) {
    ++stats_.frames_passed;
    return true;
  }

  MsgBuffer rebuilt;
  std::size_t keys = 0;
  for (const auto& seg : frame.payload.segments()) {
    const auto* k = std::get_if<KeySeg>(&seg);
    if (!k) {
      rebuilt.append(seg);
      continue;
    }
    ++keys;
    auto cached = cache_.lookup(k->key);
    if (!cached || k->off + k->len > cached->size()) {
      ++stats_.substitution_misses;
      note_pressure();
      NC_WARN("ncache", "egress key %s unresolved; junk substituted",
              to_string(k->key).c_str());
      rebuilt.append(MsgBuffer::junk(k->len));
      continue;
    }
    // SMP: the cache is logically partitioned by key hash — the same RSS
    // map that steers flows. Materializing a key whose owner core differs
    // from the transmitting core pulls the chain's cache lines across the
    // interconnect; charge the handoff to the core doing the transmit.
    if (stack_.cpu().cores() > 1) {
      unsigned owner = stack_.cpu().steer(CacheKeyHash{}(k->key));
      unsigned here = stack_.cpu().current_core();
      if (here == sim::CpuModel::kNoCore) here = 0;
      if (owner != here) {
        ++stats_.cross_core_handoffs;
        stack_.cpu().charge_on(here, stack_.costs().cross_core_handoff_ns);
      }
    }
    rebuilt.append(cached->slice(k->off, k->len));
  }
  frame.payload = std::move(rebuilt);
  // Checksums are inherited from the cached originator (§1); no CPU cost.
  frame.l4_checksum_inherited = true;
  ++stats_.frames_substituted;
  stats_.keys_substituted += keys;
  // Hash lookup + pointer splice per frame (§5.4 "packet substitution").
  stack_.cpu().charge(stack_.costs().ncache_substitute_ns);
  return true;
}

void NCacheModule::register_metrics(MetricRegistry& registry,
                                    const std::string& node) {
  registry.counter(node, "ncache.frames_substituted",
                   [this] { return stats_.frames_substituted; });
  registry.counter(node, "ncache.keys_substituted",
                   [this] { return stats_.keys_substituted; });
  registry.counter(node, "ncache.substitution_misses",
                   [this] { return stats_.substitution_misses; });
  registry.counter(node, "ncache.frames_passed",
                   [this] { return stats_.frames_passed; });
  // SMP-only row, mirroring cpu.coreN.*: K=1 output stays byte-identical
  // to the historical single-core model.
  if (stack_.cpu().cores() > 1) {
    registry.counter(node, "ncache.cross_core_handoff",
                     [this] { return stats_.cross_core_handoffs; });
  }
  registry.counter(node, "ncache.second_level_hits",
                   [this] { return stats_.second_level_hits; });
  registry.counter(node, "ncache.degrade_entries",
                   [this] { return stats_.degrade_entries; });
  registry.counter(node, "ncache.degrade_exits",
                   [this] { return stats_.degrade_exits; });
  registry.counter(node, "ncache.degraded_ingest_bypass",
                   [this] { return stats_.degraded_ingest_bypass; });
  registry.gauge(node, "ncache.degraded", [this] { return degraded_ ? 1.0 : 0.0; });
  registry.counter(node, "ncache.degraded_ns",
                   [this] { return std::uint64_t(degraded_ns()); });
  // Brownout rows only exist when the ladder is on: disabled runs keep the
  // historical metrics JSON byte-for-byte.
  if (brownout_.enabled) {
    registry.gauge(node, "ncache.brownout.tier",
                   [this] { return double(int(tier_)); });
    registry.counter(node, "ncache.brownout.escalations",
                     [this] { return stats_.brownout_escalations; });
    registry.counter(node, "ncache.brownout.deescalations",
                     [this] { return stats_.brownout_deescalations; });
    registry.counter(node, "ncache.brownout.stale_hits",
                     [this] { return stats_.brownout_stale_hits; });
  }
  registry.on_reset([this] { reset_stats(); });
  cache_.register_metrics(registry, node, "ncache.cache");
}

}  // namespace ncache::core
