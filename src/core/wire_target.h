// §6 extension: network-ready data at the storage server.
//
// The paper closes with "it is possible to take this idea one step further
// by organizing disk-resident data in a network-ready format ... so that
// even non-pass-through file servers can also benefit". This adapter
// applies the same NetCentricCache to the *iSCSI target*: read payloads
// are kept as wire-format chains on the storage server, so warm reads are
// sent with zero target-side copies (and no disk I/O), and cold reads pay
// a single disk-to-wire copy instead of the stock target's two.
//
// Combined with an NCache app server, the whole storage-to-client path
// then moves each byte exactly once — at the original disk DMA.
#pragma once

#include "core/net_centric_cache.h"
#include "iscsi/target.h"

namespace ncache::core {

class WireFormatTarget {
 public:
  WireFormatTarget(proto::NetworkStack& storage_stack,
                   NetCentricCache::Config config)
      : cache_(storage_stack.cpu(), storage_stack.costs(), config),
        cpu_(storage_stack.cpu()),
        costs_(storage_stack.costs()) {}

  /// Installs the lookup/insert hooks on the target.
  void attach(iscsi::IscsiTarget& target) {
    target.set_wire_cache(
        [this](std::uint64_t lbn) { return lookup(lbn); },
        [this](std::uint64_t lbn, netbuf::MsgBuffer chain) {
          insert(lbn, std::move(chain));
        });
  }

  NetCentricCache& cache() noexcept { return cache_; }

 private:
  std::optional<netbuf::MsgBuffer> lookup(std::uint64_t lbn) {
    return cache_.lookup(netbuf::CacheKey(netbuf::LbnKey{0, lbn}));
  }

  void insert(std::uint64_t lbn, netbuf::MsgBuffer chain) {
    // Target-side chunks are always clean: the disk (or the in-flight
    // write that is about to land) holds the same bytes.
    cache_.insert_lbn(netbuf::LbnKey{0, lbn}, std::move(chain));
  }

  NetCentricCache cache_;
  sim::CpuModel& cpu_;
  const sim::CostModel& costs_;
};

}  // namespace ncache::core
