// The NCache kernel module (§4.1): glue between the network-centric cache
// and the rest of the pass-through server.
//
// Responsibilities, mirroring the paper's module boundaries:
//   * ingestion hooks wired into the iSCSI initiator (LBN data arriving
//     from storage) and the NFS server's write path (FHO data arriving
//     from clients) — the "modified read/write interfaces" of Table 1;
//   * the egress interceptor installed between the network stack and the
//     Ethernet driver, substituting cached chains for key-bearing frames
//     just before transmission (§3.2 step 6);
//   * the remap hook fired when the fs flushes a key-bearing dirty block
//     (§3.4);
//   * the second-level-cache probe letting the initiator satisfy fs-cache
//     misses from the LBN cache without touching the network (§3.4,
//     "acts as a second-level cache with respect to the file system
//     buffer cache").
#pragma once

#include <deque>

#include "core/net_centric_cache.h"
#include "iscsi/initiator.h"
#include "proto/stack.h"

namespace ncache::core {

struct ModuleStats {
  std::uint64_t frames_substituted = 0;
  std::uint64_t keys_substituted = 0;
  std::uint64_t substitution_misses = 0;  ///< key evicted before egress
  std::uint64_t frames_passed = 0;        ///< frames with no keys (metadata)
  std::uint64_t cross_core_handoffs = 0;  ///< key owned by another core (SMP)
  std::uint64_t second_level_hits = 0;    ///< initiator reads served locally
  std::uint64_t degrade_entries = 0;      ///< times the module fell back
  std::uint64_t degrade_exits = 0;        ///< times it recovered
  std::uint64_t degraded_ingest_bypass = 0;  ///< ingests served physically
};

class NCacheModule {
 public:
  /// Graceful-degradation policy: when the pinned pool is exhausted or
  /// substitution misses spike (`pressure_threshold` events inside
  /// `pressure_window`), the module falls back to the physical-copy
  /// Original path. It stays degraded at least `min_dwell` (hysteresis)
  /// and recovers once `quiet_period` passes with no new pressure.
  struct DegradeConfig {
    bool enabled = true;
    std::size_t pressure_threshold = 8;
    sim::Duration pressure_window = 50 * sim::kMillisecond;
    sim::Duration min_dwell = 200 * sim::kMillisecond;
    sim::Duration quiet_period = 100 * sim::kMillisecond;
  };

  NCacheModule(proto::NetworkStack& stack, NetCentricCache::Config config);

  /// Installs the egress interceptor on every NIC of the host stack.
  void attach_egress();

  /// Wires the initiator's NCache seams: payload policy, LBN ingestion,
  /// remap-on-flush, and the second-level-cache probe.
  void attach_initiator(iscsi::IscsiInitiator& initiator);

  // ---- hooks (also callable directly; the NFS/Web servers use these) --------
  /// Ingests a physical chain for fs block `lbn`; returns the key-bearing
  /// message that travels up instead. Falls back to the physical chain if
  /// the cache cannot take it.
  netbuf::MsgBuffer ingest_lbn(std::uint32_t target, std::uint64_t lbn,
                               netbuf::MsgBuffer chain);

  /// Ingests an NFS WRITE payload block; returns the key message.
  netbuf::MsgBuffer ingest_fho(netbuf::FhoKey key, netbuf::MsgBuffer chain);

  /// Remaps every FHO key in a flushed block payload to its disk LBN.
  void remap_on_flush(std::uint32_t target, std::uint64_t lbn,
                      const netbuf::MsgBuffer& payload);

  /// The egress frame filter: materializes KeySegs from the cache. Never
  /// drops frames; unresolvable keys become junk (and are counted).
  bool egress_filter(proto::Frame& frame);

  NetCentricCache& cache() noexcept { return cache_; }
  const ModuleStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = ModuleStats{}; }

  bool degraded() const noexcept { return degraded_; }
  DegradeConfig& degrade_config() noexcept { return degrade_; }
  /// Total time spent degraded, including the current stretch.
  sim::Duration degraded_ns() const noexcept;

  /// Publishes ncache.* module counters (and the underlying cache's
  /// counters/gauges) under `node`.
  void register_metrics(MetricRegistry& registry, const std::string& node);

 private:
  /// Records one pressure event (insert failure / substitution miss) and
  /// enters degraded mode when the rolling window trips.
  void note_pressure();
  /// Lazy recovery check on every hook call: leave degraded mode once the
  /// dwell and quiet conditions hold.
  void maybe_recover();

  proto::NetworkStack& stack_;
  NetCentricCache cache_;
  ModuleStats stats_;

  DegradeConfig degrade_;
  bool degraded_ = false;
  std::deque<sim::Time> pressure_events_;  ///< rolling window
  sim::Time degraded_since_ = 0;
  sim::Time last_pressure_ = 0;
  sim::Duration degraded_total_ns_ = 0;
};

}  // namespace ncache::core
