// The NCache kernel module (§4.1): glue between the network-centric cache
// and the rest of the pass-through server.
//
// Responsibilities, mirroring the paper's module boundaries:
//   * ingestion hooks wired into the iSCSI initiator (LBN data arriving
//     from storage) and the NFS server's write path (FHO data arriving
//     from clients) — the "modified read/write interfaces" of Table 1;
//   * the egress interceptor installed between the network stack and the
//     Ethernet driver, substituting cached chains for key-bearing frames
//     just before transmission (§3.2 step 6);
//   * the remap hook fired when the fs flushes a key-bearing dirty block
//     (§3.4);
//   * the second-level-cache probe letting the initiator satisfy fs-cache
//     misses from the LBN cache without touching the network (§3.4,
//     "acts as a second-level cache with respect to the file system
//     buffer cache").
#pragma once

#include <deque>

#include "core/net_centric_cache.h"
#include "iscsi/initiator.h"
#include "proto/stack.h"

namespace ncache::core {

struct ModuleStats {
  std::uint64_t frames_substituted = 0;
  std::uint64_t keys_substituted = 0;
  std::uint64_t substitution_misses = 0;  ///< key evicted before egress
  std::uint64_t frames_passed = 0;        ///< frames with no keys (metadata)
  std::uint64_t cross_core_handoffs = 0;  ///< key owned by another core (SMP)
  std::uint64_t second_level_hits = 0;    ///< initiator reads served locally
  std::uint64_t degrade_entries = 0;      ///< times the module fell back
  std::uint64_t degrade_exits = 0;        ///< times it recovered
  std::uint64_t degraded_ingest_bypass = 0;  ///< ingests served physically
  std::uint64_t brownout_escalations = 0;    ///< tier steps up
  std::uint64_t brownout_deescalations = 0;  ///< tier steps down (one at a time)
  std::uint64_t brownout_stale_hits = 0;  ///< ServeStale probes within TTL
};

/// Brownout ladder (graded degradation). Tiers are ordered by severity;
/// each keeps everything the previous tier gave up and sheds more:
///   Normal       — full NCache operation;
///   ServeStale   — ingestion bypassed (relieves pool pressure); the
///                  second-level probe still answers from cache, but only
///                  for chunks younger than `stale_ttl`;
///   PhysicalCopy — the legacy degraded mode: physical copies everywhere,
///                  probe disabled;
///   Shed         — additionally tells the NFS server (via its shed probe)
///                  to drop incoming data ops at the door.
enum class BrownoutTier { Normal = 0, ServeStale = 1, PhysicalCopy = 2, Shed = 3 };

class NCacheModule {
 public:
  /// Graceful-degradation policy: when the pinned pool is exhausted or
  /// substitution misses spike (`pressure_threshold` events inside
  /// `pressure_window`), the module falls back to the physical-copy
  /// Original path. It stays degraded at least `min_dwell` (hysteresis)
  /// and recovers once `quiet_period` passes with no new pressure.
  struct DegradeConfig {
    bool enabled = true;
    std::size_t pressure_threshold = 8;
    sim::Duration pressure_window = 50 * sim::kMillisecond;
    sim::Duration min_dwell = 200 * sim::kMillisecond;
    sim::Duration quiet_period = 100 * sim::kMillisecond;
  };

  /// Brownout policy. When enabled it replaces the two-state DegradeConfig
  /// machine with the four-tier ladder above: the same pressure events
  /// (insert failures, substitution misses) accumulate in a rolling window
  /// and the window count picks the tier. Escalation is immediate and can
  /// skip tiers; recovery steps down one tier at a time, each step gated
  /// by `min_dwell` since the last change plus `quiet_period` with no
  /// pressure — the hysteresis that prevents flapping.
  struct BrownoutConfig {
    bool enabled = false;
    std::size_t tier1_threshold = 8;   ///< window count entering ServeStale
    std::size_t tier2_threshold = 16;  ///< entering PhysicalCopy
    std::size_t tier3_threshold = 32;  ///< entering Shed
    sim::Duration pressure_window = 50 * sim::kMillisecond;
    sim::Duration stale_ttl = 500 * sim::kMillisecond;  ///< ServeStale age bound
    sim::Duration min_dwell = 200 * sim::kMillisecond;
    sim::Duration quiet_period = 100 * sim::kMillisecond;
  };

  NCacheModule(proto::NetworkStack& stack, NetCentricCache::Config config);

  /// Installs the egress interceptor on every NIC of the host stack.
  void attach_egress();

  /// Wires the initiator's NCache seams: payload policy, LBN ingestion,
  /// remap-on-flush, and the second-level-cache probe.
  void attach_initiator(iscsi::IscsiInitiator& initiator);

  // ---- hooks (also callable directly; the NFS/Web servers use these) --------
  /// Ingests a physical chain for fs block `lbn`; returns the key-bearing
  /// message that travels up instead. Falls back to the physical chain if
  /// the cache cannot take it.
  netbuf::MsgBuffer ingest_lbn(std::uint32_t target, std::uint64_t lbn,
                               netbuf::MsgBuffer chain);

  /// Ingests an NFS WRITE payload block; returns the key message.
  netbuf::MsgBuffer ingest_fho(netbuf::FhoKey key, netbuf::MsgBuffer chain);

  /// Remaps every FHO key in a flushed block payload to its disk LBN.
  void remap_on_flush(std::uint32_t target, std::uint64_t lbn,
                      const netbuf::MsgBuffer& payload);

  /// The egress frame filter: materializes KeySegs from the cache. Never
  /// drops frames; unresolvable keys become junk (and are counted).
  bool egress_filter(proto::Frame& frame);

  NetCentricCache& cache() noexcept { return cache_; }
  const ModuleStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = ModuleStats{}; }

  bool degraded() const noexcept { return degraded_; }
  DegradeConfig& degrade_config() noexcept { return degrade_; }
  /// Total time spent degraded, including the current stretch.
  sim::Duration degraded_ns() const noexcept;

  /// Configure before register_metrics (brownout rows register only when
  /// enabled, preserving byte-identity of disabled runs).
  BrownoutConfig& brownout_config() noexcept { return brownout_; }
  BrownoutTier brownout_tier() const noexcept { return tier_; }
  bool shed_active() const noexcept {
    return brownout_.enabled && tier_ == BrownoutTier::Shed;
  }
  /// The NFS server's shed probe: gives recovery a chance to run (the
  /// ladder is checked lazily, on hook calls) and reports whether the
  /// top tier is active.
  bool shed_probe() {
    maybe_recover();
    return shed_active();
  }

  /// Publishes ncache.* module counters (and the underlying cache's
  /// counters/gauges) under `node`.
  void register_metrics(MetricRegistry& registry, const std::string& node);

 private:
  /// Records one pressure event (insert failure / substitution miss) and
  /// enters degraded mode when the rolling window trips.
  void note_pressure();
  /// Lazy recovery check on every hook call: leave degraded mode once the
  /// dwell and quiet conditions hold.
  void maybe_recover();

  /// Brownout variants of the two above (used when brownout_.enabled).
  void brownout_note_pressure();
  void brownout_maybe_recover();
  void set_tier(BrownoutTier tier, sim::Time now);
  /// Whether ingestion should fall back to the physical-copy path.
  bool ingest_bypass() const noexcept {
    return brownout_.enabled ? tier_ >= BrownoutTier::ServeStale : degraded_;
  }

  proto::NetworkStack& stack_;
  NetCentricCache cache_;
  ModuleStats stats_;

  DegradeConfig degrade_;
  BrownoutConfig brownout_;
  BrownoutTier tier_ = BrownoutTier::Normal;
  sim::Time tier_since_ = 0;
  bool degraded_ = false;
  std::deque<sim::Time> pressure_events_;  ///< rolling window
  sim::Time degraded_since_ = 0;
  sim::Time last_pressure_ = 0;
  sim::Duration degraded_total_ns_ = 0;
};

}  // namespace ncache::core
