// The NCache kernel module (§4.1): glue between the network-centric cache
// and the rest of the pass-through server.
//
// Responsibilities, mirroring the paper's module boundaries:
//   * ingestion hooks wired into the iSCSI initiator (LBN data arriving
//     from storage) and the NFS server's write path (FHO data arriving
//     from clients) — the "modified read/write interfaces" of Table 1;
//   * the egress interceptor installed between the network stack and the
//     Ethernet driver, substituting cached chains for key-bearing frames
//     just before transmission (§3.2 step 6);
//   * the remap hook fired when the fs flushes a key-bearing dirty block
//     (§3.4);
//   * the second-level-cache probe letting the initiator satisfy fs-cache
//     misses from the LBN cache without touching the network (§3.4,
//     "acts as a second-level cache with respect to the file system
//     buffer cache").
#pragma once

#include "core/net_centric_cache.h"
#include "iscsi/initiator.h"
#include "proto/stack.h"

namespace ncache::core {

struct ModuleStats {
  std::uint64_t frames_substituted = 0;
  std::uint64_t keys_substituted = 0;
  std::uint64_t substitution_misses = 0;  ///< key evicted before egress
  std::uint64_t frames_passed = 0;        ///< frames with no keys (metadata)
  std::uint64_t second_level_hits = 0;    ///< initiator reads served locally
};

class NCacheModule {
 public:
  NCacheModule(proto::NetworkStack& stack, NetCentricCache::Config config);

  /// Installs the egress interceptor on every NIC of the host stack.
  void attach_egress();

  /// Wires the initiator's NCache seams: payload policy, LBN ingestion,
  /// remap-on-flush, and the second-level-cache probe.
  void attach_initiator(iscsi::IscsiInitiator& initiator);

  // ---- hooks (also callable directly; the NFS/Web servers use these) --------
  /// Ingests a physical chain for fs block `lbn`; returns the key-bearing
  /// message that travels up instead. Falls back to the physical chain if
  /// the cache cannot take it.
  netbuf::MsgBuffer ingest_lbn(std::uint32_t target, std::uint64_t lbn,
                               netbuf::MsgBuffer chain);

  /// Ingests an NFS WRITE payload block; returns the key message.
  netbuf::MsgBuffer ingest_fho(netbuf::FhoKey key, netbuf::MsgBuffer chain);

  /// Remaps every FHO key in a flushed block payload to its disk LBN.
  void remap_on_flush(std::uint32_t target, std::uint64_t lbn,
                      const netbuf::MsgBuffer& payload);

  /// The egress frame filter: materializes KeySegs from the cache. Never
  /// drops frames; unresolvable keys become junk (and are counted).
  bool egress_filter(proto::Frame& frame);

  NetCentricCache& cache() noexcept { return cache_; }
  const ModuleStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = ModuleStats{}; }

  /// Publishes ncache.* module counters (and the underlying cache's
  /// counters/gauges) under `node`.
  void register_metrics(MetricRegistry& registry, const std::string& node);

 private:
  proto::NetworkStack& stack_;
  NetCentricCache cache_;
  ModuleStats stats_;
};

}  // namespace ncache::core
