// The three pass-through server configurations evaluated in the paper
// (§5.1): the stock copying server, the NCache server, and the idealized
// zero-copy baseline that ships junk payloads.
#pragma once

namespace ncache::core {

enum class PassMode { Original, NCache, Baseline };

inline const char* to_string(PassMode m) {
  switch (m) {
    case PassMode::Original: return "original";
    case PassMode::NCache: return "ncache";
    case PassMode::Baseline: return "baseline";
  }
  return "?";
}

}  // namespace ncache::core
