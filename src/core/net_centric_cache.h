// The network-centric buffer cache (§3.1, §3.4) — the paper's core data
// structure.
//
// Cached data lives as fixed-size chunks, each a chain of network buffers
// in wire-ready form, pinned in a BufferPool (driver-context allocation,
// §4.1). Two indexes identify chunks by their two possible origins:
//
//   * the LBN index — blocks that arrived from the iSCSI target, keyed by
//     logical block number;
//   * the FHO index — blocks that arrived in NFS WRITE requests, keyed by
//     file handle + offset (always dirty until remapped).
//
// Chunks are chained in one LRU list; every access moves a chunk to the
// MRU end. Reclamation frees clean chunks from the LRU head; dirty FHO
// chunks are skipped (the paper argues the much smaller fs cache always
// flushes — and thereby remaps — them first; we keep the invariant and
// count violations).
//
// remap() converts a dirty FHO chunk into a clean LBN chunk when the file
// system flushes the corresponding buffer (§3.4, Figure 3). A forwarding
// entry keeps the old FHO key resolvable while frames referencing it are
// still in flight, and to serve "read replies [that] contain both an FHO
// key and an LBN key" (§3.4).
#pragma once

#include <functional>
#include <optional>
#include <unordered_map>

#include "common/intrusive_list.h"
#include "common/metrics.h"
#include "netbuf/cache_key.h"
#include "netbuf/msg_buffer.h"
#include "netbuf/net_buffer.h"
#include "sim/cost_model.h"
#include "sim/cpu_model.h"
#include "sim/timer_wheel.h"

namespace ncache::core {

struct NetCacheStats {
  std::uint64_t lbn_inserts = 0;
  std::uint64_t fho_inserts = 0;
  std::uint64_t fho_overwrites = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t remaps = 0;
  std::uint64_t remap_overwrites = 0;  ///< remap landed on an existing LBN
  std::uint64_t evictions = 0;
  std::uint64_t dirty_skips = 0;  ///< dirty FHO chunks passed over by LRU
  std::uint64_t insert_failures = 0;
  std::uint64_t forward_hits = 0;  ///< FHO keys resolved via remap forwarding
};

class NetCentricCache {
 public:
  struct Config {
    /// Pinned-memory budget (network buffers + per-buffer overhead). This
    /// memory is carved out of the machine; the fs buffer cache must be
    /// sized to what remains (§4.1 double-buffering control).
    std::size_t pool_budget_bytes = 64 << 20;
    /// Logical chunk payload size: one fs block.
    std::size_t chunk_bytes = 4096;
  };

  NetCentricCache(sim::CpuModel& cpu, const sim::CostModel& costs,
                  Config config);

  // ---- ingestion -------------------------------------------------------------
  /// Inserts a clean chunk arriving from the storage server. The chain's
  /// buffers are adopted (pinned) into the cache pool. Returns false when
  /// space cannot be reclaimed.
  bool insert_lbn(netbuf::LbnKey key, netbuf::MsgBuffer chain);

  /// Inserts a dirty chunk carried by an NFS WRITE. Overwrites any
  /// existing chunk under the same key ("data in the FHO cache is always
  /// more up-to-date", §3.4).
  bool insert_fho(netbuf::FhoKey key, netbuf::MsgBuffer chain);

  // ---- lookup ---------------------------------------------------------------
  /// Resolves a key to its cached chain. For FHO keys the FHO index is
  /// consulted first, then remap forwarding into the LBN index — the §3.4
  /// freshness rule. Touches the LRU.
  std::optional<netbuf::MsgBuffer> lookup(const netbuf::CacheKey& key);

  /// Presence probe without LRU touch (used by the initiator's
  /// second-level-cache check).
  bool contains_lbn(std::uint64_t lbn_block, std::uint32_t target) const;

  /// When the chunk under (target, lbn) was last inserted or remapped, or
  /// nullopt when absent. Only meaningful with a clock attached; brownout's
  /// serve-stale tier uses it to bound the age of second-level hits.
  std::optional<sim::Time> lbn_inserted_at(std::uint64_t lbn_block,
                                           std::uint32_t target) const;

  /// Clock source for freshness stamps. Without one, stamps stay 0 — the
  /// cache itself never reads them, so fault-free runs are unaffected.
  void set_clock(std::function<sim::Time()> clock) { clock_ = std::move(clock); }

  /// Every LBN key currently cached, in ascending (target, lbn) order so
  /// callers iterate deterministically. Cluster peering walks this on a
  /// membership change to push chunks to their new hash owner.
  std::vector<netbuf::LbnKey> lbn_keys() const;

  /// Drops the chunk under `key` (peer write-invalidation). Returns false
  /// when not cached. In-flight frames referencing the chunk keep their
  /// buffer pins; only the cache's claim is released.
  bool invalidate_lbn(const netbuf::LbnKey& key);

  // ---- remapping -------------------------------------------------------------
  /// Moves the chunk under `fho` to the LBN index under `lbn`, marking it
  /// clean (the triggering flush is writing it to storage). Keeps a
  /// forwarding entry fho -> lbn. Returns false if `fho` is not cached.
  bool remap(netbuf::FhoKey fho, netbuf::LbnKey lbn);

  // ---- accounting ------------------------------------------------------------
  const NetCacheStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = NetCacheStats{}; }
  std::size_t chunk_count() const noexcept { return lru_.size(); }
  std::size_t pinned_bytes() const noexcept { return pool_.in_use(); }
  std::size_t budget_bytes() const noexcept { return pool_.budget(); }
  const Config& config() const noexcept { return config_; }

  /// Drops everything (tests / reconfiguration).
  void clear();

  /// Publishes <prefix>.* counters plus occupancy gauges under `node` and
  /// hooks reset_stats() into the registry reset.
  void register_metrics(MetricRegistry& registry, const std::string& node,
                        const std::string& prefix);

 private:
  struct Chunk : ListHook {
    netbuf::MsgBuffer chain;
    std::optional<netbuf::LbnKey> lbn;
    std::optional<netbuf::FhoKey> fho;
    bool dirty = false;
    std::size_t pinned = 0;  ///< bytes charged to the pool for this chunk
    sim::Time inserted_at = 0;  ///< freshness stamp (0 without a clock)
  };

  sim::Time stamp() const { return clock_ ? clock_() : 0; }

  /// Pins the chain's buffers into the pool; evicts LRU chunks as needed.
  /// Returns pinned byte count, or nullopt on failure.
  std::optional<std::size_t> pin_chain(netbuf::MsgBuffer& chain);
  bool evict_one();
  void drop_chunk(Chunk& c);
  void touch(Chunk& c) { lru_.move_to_back(c); }

  sim::CpuModel& cpu_;
  const sim::CostModel& costs_;
  Config config_;
  netbuf::BufferPool pool_;

  std::unordered_map<netbuf::LbnKey, std::unique_ptr<Chunk>,
                     netbuf::LbnKeyHash>
      lbn_index_;
  std::unordered_map<netbuf::FhoKey, std::unique_ptr<Chunk>,
                     netbuf::FhoKeyHash>
      fho_index_;
  /// Remap forwarding: old FHO key -> current LBN key.
  std::unordered_map<netbuf::FhoKey, netbuf::LbnKey, netbuf::FhoKeyHash>
      forward_;

  IntrusiveList<Chunk> lru_;
  NetCacheStats stats_;
  std::function<sim::Time()> clock_;
};

}  // namespace ncache::core
