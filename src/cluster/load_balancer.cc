#include "cluster/load_balancer.h"

#include "common/bytes.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "nfs/protocol.h"

namespace ncache::cluster {

using netbuf::MsgBuffer;

LoadBalancer::LoadBalancer(proto::NetworkStack& stack, Config config,
                           std::vector<Member> members)
    : stack_(stack),
      config_(config),
      members_(std::move(members)),
      ring_(config.vnodes),
      next_nat_port_(config.nat_base),
      aimd_(config.admission.aimd),
      bucket_(aimd_.rate(), config.admission.burst) {
  for (const Member& m : members_) ring_.add_member(m.id);
}

void LoadBalancer::start() {
  if (running_) return;
  running_ = true;
  ++generation_;
  stack_.udp_bind(config_.port,
                  [this](proto::Ipv4Addr sip, std::uint16_t sport,
                         proto::Ipv4Addr dip, std::uint16_t dport,
                         MsgBuffer msg) {
                    on_request(sip, sport, dip, dport, std::move(msg));
                  });
  stack_.udp_bind(config_.control_port,
                  [this](proto::Ipv4Addr sip, std::uint16_t sport,
                         proto::Ipv4Addr dip, std::uint16_t dport,
                         MsgBuffer msg) {
                    on_control(sip, sport, dip, dport, std::move(msg));
                  });
  std::uint64_t gen = generation_;
  stack_.loop().schedule_in(config_.heartbeat_interval,
                            [this, gen] { heartbeat_tick(gen); });
}

void LoadBalancer::stop() {
  if (!running_) return;
  running_ = false;
  ++generation_;  // orphans any scheduled heartbeat tick
  stack_.udp_unbind(config_.port);
  stack_.udp_unbind(config_.control_port);
  for (auto& [key, flow] : flows_) stack_.udp_unbind(flow.nat_port);
  flows_.clear();
}

std::optional<proto::Ipv4Addr> LoadBalancer::member_ip(
    std::uint32_t id) const {
  for (const Member& m : members_) {
    if (m.id == id) return m.ip;
  }
  return std::nullopt;
}

std::uint64_t LoadBalancer::route_key(proto::Ipv4Addr src_ip,
                                      std::uint16_t src_port,
                                      const MsgBuffer& msg) {
  if (config_.routing == Routing::ContentHash &&
      msg.size() >= nfs::kCallHeaderBytes + 8) {
    // Every NFS call body starts with the file handle (or directory
    // handle) right after the RPC header — one fixed-offset peek routes
    // all procedures file-affinely without parsing per-procedure bodies.
    try {
      auto head = msg.peek_bytes(nfs::kCallHeaderBytes + 8);
      ByteReader r(head);
      r.skip(nfs::kCallHeaderBytes);
      ++stats_.content_routes;
      return HashRing::mix64(r.u64());
    } catch (const std::exception&) {
      // Non-physical or short prefix: fall through to the flow hash.
    }
  }
  ++stats_.flow_routes;
  return HashRing::mix64((std::uint64_t(src_ip) << 16) | src_port);
}

LoadBalancer::Flow& LoadBalancer::flow_for(proto::Ipv4Addr client_ip,
                                           std::uint16_t client_port) {
  std::uint64_t key = (std::uint64_t(client_ip) << 16) | client_port;
  auto it = flows_.find(key);
  if (it != flows_.end()) return it->second;

  Flow flow;
  flow.client_ip = client_ip;
  flow.client_port = client_port;
  flow.nat_port = next_nat_port_++;
  auto [ins, _] = flows_.emplace(key, flow);
  // Replica replies land on the flow's NAT port and are cut through back
  // to the real client, from the service port (so the client's view of
  // the server address never changes).
  stack_.udp_bind(flow.nat_port,
                  [this, client_ip, client_port](
                      proto::Ipv4Addr, std::uint16_t, proto::Ipv4Addr,
                      std::uint16_t, MsgBuffer reply) {
                    if (!running_) return;
                    ++stats_.replies;
                    stack_.udp_send(stack_.primary_ip(), config_.port,
                                    client_ip, client_port,
                                    std::move(reply));
                  });
  return ins->second;
}

void LoadBalancer::on_request(proto::Ipv4Addr src_ip, std::uint16_t src_port,
                              proto::Ipv4Addr /*dst_ip*/,
                              std::uint16_t /*dst_port*/, MsgBuffer msg) {
  if (!running_) return;
  if (config_.admission.enabled) {
    // Admission control: reject at the VIP, before any replica CPU is
    // spent. The drop is silent — NFS clients resend on their adaptive
    // RTO, so shed work retries against a recovered cluster.
    if (!bucket_.try_take(stack_.loop().now())) {
      ++stats_.admission_shed;
      return;
    }
    ++stats_.admitted;
  }
  if (ring_.empty()) {
    ++stats_.drops_no_member;
    return;
  }
  std::uint32_t member = ring_.owner(route_key(src_ip, src_port, msg));
  auto ip = member_ip(member);
  if (!ip) {
    ++stats_.drops_no_member;
    return;
  }
  Flow& flow = flow_for(src_ip, src_port);
  ++stats_.forwards;
  // L4 cut-through: the datagram is re-sent by reference, never copied.
  stack_.udp_send(stack_.primary_ip(), flow.nat_port, *ip, config_.port,
                  std::move(msg));
}

void LoadBalancer::on_control(proto::Ipv4Addr /*src_ip*/,
                              std::uint16_t /*src_port*/,
                              proto::Ipv4Addr /*dst_ip*/,
                              std::uint16_t /*dst_port*/, MsgBuffer msg) {
  if (!running_ || msg.size() < 12) return;
  // Acks are 12 bytes [msg, seq, id] plus an optional trailing u32 queue
  // depth — zero-suppressed by the replica, so idle clusters put exactly
  // the same bytes on the wire as before the field existed.
  const bool has_qdepth = msg.size() >= 16;
  auto bytes = msg.peek_bytes(has_qdepth ? 16 : 12);
  ByteReader r(bytes);
  if (PeerMsg(r.u32()) != PeerMsg::HeartbeatAck) return;
  std::uint32_t seq = r.u32();
  std::uint32_t id = r.u32();
  if (seq != hb_seq_) return;  // stale round
  ++stats_.acks_received;
  hb_acked_.insert(id);
  hb_misses_[id] = 0;
  qdepth_[id] = has_qdepth ? r.u32() : 0;
  // A dead member answering is NOT re-admitted here: heartbeat_tick
  // evaluates its probation, and only `readmit_quiet_rounds` consecutive
  // acked rounds bring it back (flap damping on lossy links).
}

void LoadBalancer::heartbeat_tick(std::uint64_t generation) {
  if (!running_ || generation != generation_) return;

  // Evaluate the round that just ended (none before the first probe).
  if (hb_seq_ > 0) {
    for (const Member& m : members_) {
      if (ring_.has_member(m.id)) {
        if (hb_acked_.contains(m.id)) {
          hb_misses_[m.id] = 0;
          continue;
        }
        if (++hb_misses_[m.id] >= config_.heartbeat_miss_limit) {
          mark_dead(m.id);
        }
        continue;
      }
      // Dead member: re-admission probation. It must answer
      // readmit_quiet_rounds consecutive probes; one renewed silence
      // resets the streak, so a link dropping most acks cannot churn the
      // ring on every one that survives.
      if (hb_acked_.contains(m.id)) {
        if (++readmit_streak_[m.id] >= config_.readmit_quiet_rounds) {
          mark_live(m.id);
        } else {
          ++stats_.flaps_suppressed;  // deferred: still on probation
        }
      } else if (readmit_streak_[m.id] > 0) {
        readmit_streak_[m.id] = 0;
        ++stats_.flaps_suppressed;  // probation reset: a flap caught
      }
    }
  }

  if (config_.admission.enabled && hb_seq_ > 0) {
    // One AIMD round per heartbeat round: any live replica reporting a
    // deep queue cuts the admission rate multiplicatively; an all-clear
    // round walks it back up additively.
    std::uint32_t max_depth = 0;
    for (const Member& m : members_) {
      if (!ring_.has_member(m.id)) continue;
      max_depth = std::max(max_depth, replica_qdepth(m.id));
    }
    bucket_.set_rate(
        aimd_.on_round(max_depth >= config_.admission.qdepth_high));
  }

  hb_acked_.clear();
  ++hb_seq_;
  std::vector<std::byte> head;
  ByteWriter w(head);
  w.u32(std::uint32_t(PeerMsg::Heartbeat));
  w.u32(hb_seq_);
  // Probe every configured member, dead ones included — an ack from a
  // dead member is the re-admission signal.
  for (const Member& m : members_) {
    ++stats_.heartbeats_sent;
    stack_.udp_send(stack_.primary_ip(), config_.control_port, m.ip,
                    config_.peer_port, MsgBuffer::from_bytes(head));
  }

  std::uint64_t gen = generation_;
  stack_.loop().schedule_in(config_.heartbeat_interval,
                            [this, gen] { heartbeat_tick(gen); });
}

void LoadBalancer::mark_dead(std::uint32_t id) {
  if (!ring_.has_member(id)) return;
  ring_.remove_member(id);
  hb_misses_.erase(id);
  readmit_streak_.erase(id);
  ++stats_.rebalances;
  last_rebalance_at_ = stack_.loop().now();
  NC_WARN("lb", "member %u marked dead (%zu live)", id,
          ring_.member_count());
  broadcast_membership();
}

void LoadBalancer::mark_live(std::uint32_t id) {
  if (ring_.has_member(id)) return;
  ring_.add_member(id);
  hb_misses_[id] = 0;
  readmit_streak_.erase(id);
  ++stats_.rebalances;
  last_rebalance_at_ = stack_.loop().now();
  NC_WARN("lb", "member %u re-admitted (%zu live)", id,
          ring_.member_count());
  broadcast_membership();
}

void LoadBalancer::broadcast_membership() {
  ++epoch_;
  const std::vector<std::uint32_t>& live = ring_.members();  // sorted
  std::vector<std::byte> head;
  ByteWriter w(head);
  w.u32(std::uint32_t(PeerMsg::Membership));
  w.u32(epoch_);
  w.u32(std::uint32_t(live.size()));
  for (std::uint32_t id : live) w.u32(id);
  for (const Member& m : members_) {
    if (!ring_.has_member(m.id)) continue;  // dead: unreachable anyway
    ++stats_.membership_broadcasts;
    stack_.udp_send(stack_.primary_ip(), config_.control_port, m.ip,
                    config_.peer_port, MsgBuffer::from_bytes(head));
  }
}

void LoadBalancer::register_metrics(MetricRegistry& registry,
                                    const std::string& node) {
  registry.counter(node, "lb.forwards", [this] { return stats_.forwards; });
  registry.counter(node, "lb.replies", [this] { return stats_.replies; });
  registry.counter(node, "lb.drops_no_member",
                   [this] { return stats_.drops_no_member; });
  registry.counter(node, "lb.content_routes",
                   [this] { return stats_.content_routes; });
  registry.counter(node, "lb.flow_routes",
                   [this] { return stats_.flow_routes; });
  registry.counter(node, "lb.heartbeats_sent",
                   [this] { return stats_.heartbeats_sent; });
  registry.counter(node, "lb.acks_received",
                   [this] { return stats_.acks_received; });
  registry.counter(node, "lb.rebalances",
                   [this] { return stats_.rebalances; });
  registry.counter(node, "lb.membership_broadcasts",
                   [this] { return stats_.membership_broadcasts; });
  registry.counter(node, "lb.flaps_suppressed",
                   [this] { return stats_.flaps_suppressed; });
  registry.gauge(node, "lb.live_members",
                 [this] { return double(ring_.member_count()); });
  registry.gauge(node, "lb.ring_points",
                 [this] { return double(ring_.point_count()); });
  registry.gauge(node, "lb.epoch", [this] { return double(epoch_); });
  for (const Member& m : members_) {
    // Replica queue depth as last piggybacked on a heartbeat ack. One
    // gauge per configured member, e.g. "lb.replica0.qdepth".
    registry.gauge(node, "lb.replica" + std::to_string(m.id) + ".qdepth",
                   [this, id = m.id] { return double(replica_qdepth(id)); });
  }
  if (config_.admission.enabled) {
    // Admission metrics exist only when the feature is on, keeping a
    // disabled run's metrics JSON byte-identical.
    registry.counter(node, "overload.admitted",
                     [this] { return stats_.admitted; });
    registry.counter(node, "overload.shed",
                     [this] { return stats_.admission_shed; });
    registry.gauge(node, "overload.rate", [this] { return aimd_.rate(); });
  }
  registry.on_reset([this] { reset_stats(); });
}

}  // namespace ncache::cluster
