// L4 full-proxy load balancer for the scale-out cluster.
//
// A dedicated sim node that owns the cluster's client-facing IP. Client
// NFS requests arrive on the service port; the balancer picks a replica —
// by flow hash (client ip:port) or by *content* hash (the file handle all
// NFS call bodies carry at a fixed offset, giving file-affine routing that
// concentrates each file's working set on one replica) — and forwards the
// datagram through a NAT'd flow: the replica sees the balancer as the
// client and replies to a per-flow NAT port, where the reply is forwarded
// back to the real client. NFS clients match replies by XID only, so the
// proxy is invisible to them.
//
// Forwarding is L4 cut-through: the MsgBuffer is re-sent, not copied — the
// balancer charges no per-byte CPU, matching a switch-resident or
// SmartNIC-style appliance.
//
// The balancer is also the cluster's failure detector: it heartbeats every
// replica's peering agent; `heartbeat_miss_limit` silent intervals mark a
// replica dead, drop it from the ring, and broadcast an epoch-numbered
// MEMBERSHIP update so every peering agent rebuilds the same ring. A dead
// replica is only re-admitted after answering `readmit_quiet_rounds`
// consecutive probes (a quiet period) — a merely-lossy trunk that drops
// every third ack can therefore suspend a replica once, but cannot flap
// the ring on every lucky ack. Suppressed flaps are metered. Epochs are
// compared with serial-number (RFC 1982) arithmetic on the agent side, so
// the u32 counter wraps seamlessly.
#pragma once

#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cluster/hash_ring.h"
#include "cluster/peer_cache.h"
#include "common/overload.h"
#include "proto/stack.h"

namespace ncache::cluster {

enum class Routing {
  FlowHash,     ///< hash(client ip:port): flow-sticky, content-blind
  ContentHash,  ///< hash(NFS file handle): file-affine (falls back to
                ///< flow hash for requests without a parsable handle)
};

struct LbStats {
  std::uint64_t forwards = 0;         ///< client -> replica datagrams
  std::uint64_t replies = 0;          ///< replica -> client datagrams
  std::uint64_t drops_no_member = 0;  ///< no live replica to route to
  std::uint64_t content_routes = 0;
  std::uint64_t flow_routes = 0;
  std::uint64_t heartbeats_sent = 0;
  std::uint64_t acks_received = 0;
  std::uint64_t rebalances = 0;  ///< members marked dead or re-admitted
  std::uint64_t membership_broadcasts = 0;
  /// Ring changes damping prevented: re-admissions deferred during the
  /// quiet period, and probations reset by a renewed silence.
  std::uint64_t flaps_suppressed = 0;
  // --- admission control (overload) ---
  std::uint64_t admitted = 0;        ///< requests past the token bucket
  std::uint64_t admission_shed = 0;  ///< requests refused at ingress
};

class LoadBalancer {
 public:
  struct Member {
    std::uint32_t id = 0;
    proto::Ipv4Addr ip = 0;
  };

  struct Config {
    Routing routing = Routing::FlowHash;
    std::uint16_t port = 2049;       ///< client-facing service port
    std::uint16_t peer_port = kPeerPort;
    std::uint16_t control_port = kLbControlPort;
    std::uint16_t nat_base = 30000;  ///< first NAT flow port
    sim::Duration heartbeat_interval = 25 * sim::kMillisecond;
    int heartbeat_miss_limit = 3;
    /// Consecutive acked rounds a dead member must string together before
    /// re-admission (suspicion hysteresis; 1 ≈ the old immediate behaviour,
    /// one evaluation round later).
    int readmit_quiet_rounds = 2;
    int vnodes = 64;
    /// AIMD/token-bucket admission control at the VIP: requests past the
    /// bucket are dropped at ingress (the client's RTO resends), and the
    /// rate walks up additively each healthy heartbeat round / cuts
    /// multiplicatively when replica queue-depth feedback signals
    /// congestion. Off by default; when off nothing changes.
    struct Admission {
      bool enabled = false;
      overload::AimdRate::Config aimd;
      double burst = 256.0;            ///< bucket depth (requests)
      std::uint32_t qdepth_high = 16;  ///< replica depth = congestion
    };
    Admission admission;
  };

  LoadBalancer(proto::NetworkStack& stack, Config config,
               std::vector<Member> members);

  void start();
  void stop();
  bool running() const noexcept { return running_; }

  std::size_t live_count() const noexcept { return ring_.member_count(); }
  bool is_live(std::uint32_t id) const { return ring_.has_member(id); }
  std::uint32_t epoch() const noexcept { return epoch_; }
  /// Repositions the epoch counter (wraparound drills and recovery
  /// tooling; agents compare serially, so only steps < 2^31 apply).
  void reset_epoch(std::uint32_t epoch) noexcept { epoch_ = epoch; }
  /// Sim time of the most recent ring change (0 = never) — benches report
  /// rebalance latency as (first post-crash ring change − crash time).
  sim::Time last_rebalance_at() const noexcept { return last_rebalance_at_; }

  const Config& config() const noexcept { return config_; }
  const LbStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = LbStats{}; }

  /// Last queue depth member `id` piggybacked on a heartbeat ack
  /// (0 = never reported / reported idle).
  std::uint32_t replica_qdepth(std::uint32_t id) const {
    auto it = qdepth_.find(id);
    return it == qdepth_.end() ? 0 : it->second;
  }
  /// Current admission rate (requests/sec; the AIMD controller's output).
  double admission_rate() const noexcept { return aimd_.rate(); }

  /// Publishes lb.* counters and ring gauges under `node`.
  void register_metrics(MetricRegistry& registry, const std::string& node);

 private:
  struct Flow {
    proto::Ipv4Addr client_ip = 0;
    std::uint16_t client_port = 0;
    std::uint16_t nat_port = 0;
  };

  void on_request(proto::Ipv4Addr src_ip, std::uint16_t src_port,
                  proto::Ipv4Addr dst_ip, std::uint16_t dst_port,
                  netbuf::MsgBuffer msg);
  void on_control(proto::Ipv4Addr src_ip, std::uint16_t src_port,
                  proto::Ipv4Addr dst_ip, std::uint16_t dst_port,
                  netbuf::MsgBuffer msg);

  /// Routing key for one request under the configured policy.
  std::uint64_t route_key(proto::Ipv4Addr src_ip, std::uint16_t src_port,
                          const netbuf::MsgBuffer& msg);
  Flow& flow_for(proto::Ipv4Addr client_ip, std::uint16_t client_port);

  void heartbeat_tick(std::uint64_t generation);
  void mark_dead(std::uint32_t id);
  void mark_live(std::uint32_t id);
  void broadcast_membership();
  std::optional<proto::Ipv4Addr> member_ip(std::uint32_t id) const;

  proto::NetworkStack& stack_;
  Config config_;
  std::vector<Member> members_;

  HashRing ring_;
  std::uint32_t epoch_ = 0;
  sim::Time last_rebalance_at_ = 0;

  bool running_ = false;
  std::uint64_t generation_ = 0;  ///< invalidates stale heartbeat timers

  std::unordered_map<std::uint64_t, Flow> flows_;  ///< (ip<<16|port) -> flow
  std::uint16_t next_nat_port_;

  std::uint32_t hb_seq_ = 0;
  std::unordered_set<std::uint32_t> hb_acked_;  ///< acks this round
  std::unordered_map<std::uint32_t, int> hb_misses_;
  /// Dead members' consecutive acked rounds (re-admission probation).
  std::unordered_map<std::uint32_t, int> readmit_streak_;

  /// Replica queue depths piggybacked on heartbeat acks (zero-suppressed
  /// on the wire: an ack without the trailing field means idle).
  std::unordered_map<std::uint32_t, std::uint32_t> qdepth_;
  overload::AimdRate aimd_;      ///< admission-rate controller
  overload::TokenBucket bucket_; ///< enforces the current rate at ingress

  LbStats stats_;
};

}  // namespace ncache::cluster
