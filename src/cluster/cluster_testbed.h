// The scale-out testbed: M clients × 1 load balancer × N pass-through
// replicas × 1 iSCSI target, all on one switch.
//
//   clients ---+
//   clients ---[switch]--- lb ---(NAT'd flows)--- replica0..N-1 --- storage
//
// ClusterTestbed is a thin preset over the topology API: it builds
// topo::presets::cluster and materializes it with topo::World, which
// attaches the full per-replica stack (initiator, SimpleFS + buffer
// cache, optional NCache module, PeerCache + PeerBlockClient, NFS server)
// and the balancer. Same-seed behavior is byte-identical with the
// historical hand-wired constructor (tests/topology_parity_test).
//
// Write coherence: every replica's NFS server gets a write observer that
// flushes the fs and broadcasts INVALIDATE for the dirtied LBNs — peers
// converge within one flush+invalidate round. Mutating workloads should
// route ContentHash (file-affine) so a file's writes serialize on one
// replica.
#pragma once

#include <memory>

#include "topo/instantiator.h"
#include "topo/presets.h"

namespace ncache::cluster {

struct ClusterConfig {
  core::PassMode mode = core::PassMode::Original;

  int server_count = 2;
  int client_count = 2;

  std::uint64_t volume_blocks = 64 * 1024;  ///< 256 MB default
  std::uint32_t inode_count = 16 * 1024;

  // Per-replica caches.
  std::size_t fs_cache_blocks = 4096;
  std::size_t fs_readahead_blocks = 8;
  std::size_t ncache_budget_bytes = 192u << 20;

  int nfs_daemons = 8;

  // Peering / balancing.
  bool peering = true;        ///< cooperative cache (forced off in Baseline)
  bool push_on_miss = true;
  Routing routing = Routing::FlowHash;
  sim::Duration heartbeat_interval = 25 * sim::kMillisecond;
  int heartbeat_miss_limit = 3;

  // Overload-control spine (all gates off by default — see WorldConfig).
  topo::WorldConfig::OverloadConfig overload;

  sim::CostModel costs{};
};

class ClusterTestbed {
 public:
  explicit ClusterTestbed(ClusterConfig config);

  /// Phase 1 (before start): populate the shared storage volume.
  fs::FsImageBuilder& image() { return world_.image(); }

  /// Phase 2: target up, every replica logs in and mounts, peering agents
  /// and NFS servers start, balancer starts, clients appear.
  void start_nfs() { world_.start_nfs(); }

  sim::EventLoop& loop() noexcept { return world_.loop(); }
  const ClusterConfig& config() const noexcept { return config_; }

  /// The materialized world behind this preset.
  topo::World& world() noexcept { return world_; }

  int server_count() const noexcept { return world_.server_count(); }
  int client_count() const noexcept { return world_.client_count(); }

  blockdev::BlockStore& store() noexcept { return world_.store(); }
  iscsi::IscsiTarget& target() noexcept { return world_.target(); }
  LoadBalancer& lb() noexcept { return *world_.lb(); }
  fs::SimpleFs& fs(int i) { return *world_.server(i).fs; }
  nfs::NfsServer& nfs_server(int i) { return *world_.server(i).nfs; }
  PeerCache& peers(int i) { return *world_.server(i).peers; }
  core::NCacheModule* ncache(int i) { return world_.server(i).ncache.get(); }
  iscsi::IscsiInitiator& initiator(int i) {
    return *world_.server(i).initiator;
  }
  nfs::NfsClient& nfs_client(int i) { return world_.nfs_client(i); }
  proto::EthernetSwitch& ether_switch() noexcept { return world_.ether(); }

  proto::Ipv4Addr replica_ip(int i) const { return world_.server_ip(i); }
  proto::Ipv4Addr client_ip(int i) const { return world_.client_ip(i); }
  static constexpr proto::Ipv4Addr kStorageIp = topo::World::kStorageIp;
  static constexpr proto::Ipv4Addr kLbIp = topo::World::kLbIp;

  MetricRegistry& metrics() noexcept { return world_.metrics(); }
  const MetricRegistry& metrics() const noexcept { return world_.metrics(); }
  void reset_stats() { world_.reset_stats(); }

  // ---- fault scenarios -------------------------------------------------------
  /// Power-fails replica `i` (cables drop first, then sessions, daemons
  /// and caches). The balancer detects the silence via heartbeats and
  /// rebalances the ring.
  void crash_replica(int i) { world_.crash_server(i); }
  /// Brings replica `i` back asynchronously; the balancer re-admits it on
  /// its first heartbeat ack.
  void restart_replica(int i) { world_.restart_server(i); }
  bool replica_crashed(int i) const { return world_.server_crashed(i); }

  /// Cluster-wide aggregates for benches/tests.
  std::uint64_t total_target_reads() const;
  std::uint64_t total_peer_hits() const;
  std::uint64_t total_peer_misses() const;

 private:
  static topo::WorldConfig world_config(const ClusterConfig& config);

  ClusterConfig config_;
  topo::World world_;
};

}  // namespace ncache::cluster
