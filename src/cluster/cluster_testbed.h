// The scale-out testbed: M clients × 1 load balancer × N pass-through
// replicas × 1 iSCSI target, all on one switch.
//
//   clients ---+
//   clients ---[switch]--- lb ---(NAT'd flows)--- replica0..N-1 --- storage
//
// Each replica is a full single-server stack (initiator, SimpleFS +
// buffer cache, optional NCache module, NFS server) plus a PeerCache
// agent; the block path is interposed by a PeerBlockClient so regular-
// data misses consult the hash-designated owner replica before the
// target. The balancer owns the client-facing IP and is the failure
// detector; replica crash/restart mirrors Testbed's semantics (cables
// first, then sessions and caches).
//
// Write coherence: every replica's NFS server gets a write observer that
// flushes the fs and broadcasts INVALIDATE for the dirtied LBNs — peers
// converge within one flush+invalidate round. Mutating workloads should
// route ContentHash (file-affine) so a file's writes serialize on one
// replica.
#pragma once

#include <memory>

#include "blockdev/block_store.h"
#include "cluster/load_balancer.h"
#include "cluster/peer_cache.h"
#include "common/metrics.h"
#include "fs/image_builder.h"
#include "iscsi/target.h"
#include "nfs/client.h"
#include "nfs/server.h"
#include "proto/switch.h"
#include "testbed/wiring.h"

namespace ncache::cluster {

struct ClusterConfig {
  core::PassMode mode = core::PassMode::Original;

  int server_count = 2;
  int client_count = 2;

  std::uint64_t volume_blocks = 64 * 1024;  ///< 256 MB default
  std::uint32_t inode_count = 16 * 1024;

  // Per-replica caches.
  std::size_t fs_cache_blocks = 4096;
  std::size_t fs_readahead_blocks = 8;
  std::size_t ncache_budget_bytes = 192u << 20;

  int nfs_daemons = 8;

  // Peering / balancing.
  bool peering = true;        ///< cooperative cache (forced off in Baseline)
  bool push_on_miss = true;
  Routing routing = Routing::FlowHash;
  sim::Duration heartbeat_interval = 25 * sim::kMillisecond;
  int heartbeat_miss_limit = 3;

  sim::CostModel costs{};
};

class ClusterTestbed {
 public:
  explicit ClusterTestbed(ClusterConfig config);

  /// Phase 1 (before start): populate the shared storage volume.
  fs::FsImageBuilder& image() { return *image_; }

  /// Phase 2: target up, every replica logs in and mounts, peering agents
  /// and NFS servers start, balancer starts, clients appear.
  void start_nfs();

  sim::EventLoop& loop() noexcept { return loop_; }
  const ClusterConfig& config() const noexcept { return config_; }

  int server_count() const noexcept { return int(replicas_.size()); }
  int client_count() const noexcept { return int(clients_.size()); }

  blockdev::BlockStore& store() noexcept { return *store_; }
  iscsi::IscsiTarget& target() noexcept { return *target_; }
  LoadBalancer& lb() noexcept { return *lb_; }
  fs::SimpleFs& fs(int i) { return *replicas_.at(i)->fs; }
  nfs::NfsServer& nfs_server(int i) { return *replicas_.at(i)->nfs; }
  PeerCache& peers(int i) { return *replicas_.at(i)->peers; }
  core::NCacheModule* ncache(int i) { return replicas_.at(i)->ncache.get(); }
  iscsi::IscsiInitiator& initiator(int i) {
    return *replicas_.at(i)->initiator;
  }
  nfs::NfsClient& nfs_client(int i) { return *nfs_clients_.at(i); }
  proto::EthernetSwitch& ether_switch() noexcept { return *switch_; }

  proto::Ipv4Addr replica_ip(int i) const;
  proto::Ipv4Addr client_ip(int i) const;
  static constexpr proto::Ipv4Addr kStorageIp = proto::make_ipv4(10, 0, 0, 1);
  static constexpr proto::Ipv4Addr kLbIp = proto::make_ipv4(10, 0, 0, 5);

  MetricRegistry& metrics() noexcept { return metrics_; }
  const MetricRegistry& metrics() const noexcept { return metrics_; }
  void reset_stats() { metrics_.reset_all(); }

  // ---- fault scenarios -------------------------------------------------------
  /// Power-fails replica `i` (Testbed::crash_server semantics: cables
  /// drop first, then sessions/daemons/caches). The balancer detects the
  /// silence via heartbeats and rebalances the ring.
  void crash_replica(int i);
  /// Brings replica `i` back asynchronously; the balancer re-admits it on
  /// its first heartbeat ack.
  void restart_replica(int i);
  bool replica_crashed(int i) const { return replicas_.at(i)->crashed; }

  /// Cluster-wide aggregates for benches/tests.
  std::uint64_t total_target_reads() const { return target_->stats().reads; }
  std::uint64_t total_peer_hits() const;
  std::uint64_t total_peer_misses() const;

 private:
  struct Replica {
    std::unique_ptr<testbed::Node> node;
    std::unique_ptr<iscsi::IscsiInitiator> initiator;
    std::unique_ptr<core::NCacheModule> ncache;
    std::unique_ptr<PeerCache> peers;
    std::unique_ptr<PeerBlockClient> block_client;
    std::unique_ptr<fs::SimpleFs> fs;
    std::unique_ptr<nfs::NfsServer> nfs;
    bool crashed = false;
  };

  Task<void> bring_up_replica(int i);
  Task<void> restart_task(int i);
  Task<void> write_coherence_task(int i, std::uint64_t fh,
                                  std::uint64_t offset, std::uint32_t count);

  ClusterConfig config_;
  sim::EventLoop loop_;
  std::shared_ptr<proto::AddressBook> book_;
  std::unique_ptr<proto::EthernetSwitch> switch_;

  std::unique_ptr<testbed::Node> storage_;
  std::unique_ptr<testbed::Node> lb_node_;
  std::vector<std::unique_ptr<Replica>> replicas_;
  std::vector<std::unique_ptr<testbed::Node>> clients_;

  std::unique_ptr<blockdev::BlockStore> store_;
  std::unique_ptr<fs::FsImageBuilder> image_;
  std::unique_ptr<iscsi::IscsiTarget> target_;
  std::unique_ptr<LoadBalancer> lb_;
  std::vector<std::unique_ptr<nfs::NfsClient>> nfs_clients_;

  /// Declared last: sampling callbacks hold raw pointers into the members
  /// above, so the registry must never outlive them.
  MetricRegistry metrics_;
};

}  // namespace ncache::cluster
