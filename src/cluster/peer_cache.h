// Cooperative NCache peering across replicas (the scale-out extension).
//
// Every pass-through replica runs a PeerCache agent on a dedicated UDP
// port. Cached regular-data blocks have a single hash-designated *owner*
// replica (consistent hashing over 8-block extents); on a local miss the
// replica asks the owner before touching the iSCSI target:
//
//   * FETCH / FETCH_REPLY — the requester names an LBN run; the owner
//     answers from its network-centric cache (or its fs buffer cache) with
//     the wire-format chain as a logical copy, or reports a miss. Only a
//     peer miss falls through to the target.
//   * TRANSFER — unsolicited chunk push: after a target read the requester
//     pushes the bytes to the hash owner (so the next replica's miss hits),
//     and after a membership change each replica re-homes chunks the new
//     ring assigns elsewhere.
//   * INVALIDATE — write coherence: the replica that served an NFS WRITE
//     flushes, then broadcasts the dirtied LBNs; every peer drops its
//     copies (fs cache and NCache both). Replicas converge within one
//     flush+invalidate round.
//   * MEMBERSHIP — epoch-numbered live-set broadcasts from the load
//     balancer; each agent rebuilds its ring identically.
//   * HEARTBEAT / HEARTBEAT_ACK — the balancer's liveness probe.
//
// All messages ride the existing proto/sock stack; payloads go through the
// extended-socket mode seam, so in NCache mode a fetched chunk crosses the
// owner's boundaries as a logical copy and materializes at its NIC.
#pragma once

#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cluster/hash_ring.h"
#include "core/ncache_module.h"
#include "core/pass_mode.h"
#include "fs/simple_fs.h"
#include "sock/socket.h"

namespace ncache::cluster {

/// Peering agent port (NFS is 2049; keep clear of ephemeral NAT range).
constexpr std::uint16_t kPeerPort = 2149;
/// Load-balancer heartbeat/membership control port.
constexpr std::uint16_t kLbControlPort = 2150;
/// Ownership granularity: one 8-block (32 KB) extent — matches the NFS
/// max I/O size, so one client read maps to one owner.
constexpr std::uint32_t kExtentBlocks = 8;

enum class PeerMsg : std::uint32_t {
  Fetch = 1,
  FetchReply = 2,
  Invalidate = 3,
  Transfer = 4,
  Membership = 5,
  Heartbeat = 6,
  HeartbeatAck = 7,
};

struct Peer {
  std::uint32_t id = 0;
  proto::Ipv4Addr ip = 0;
};

struct PeerCacheStats {
  std::uint64_t fetches_sent = 0;
  std::uint64_t peer_hits = 0;    ///< fetches answered with data
  std::uint64_t peer_misses = 0;  ///< fetches answered miss
  std::uint64_t fetch_timeouts = 0;
  std::uint64_t serve_hits = 0;    ///< fetches we answered with data
  std::uint64_t serve_misses = 0;  ///< fetches we answered miss
  std::uint64_t pushes = 0;        ///< miss-path chunk pushes to the owner
  std::uint64_t invalidates_sent = 0;      ///< broadcast datagrams
  std::uint64_t invalidates_received = 0;  ///< datagrams handled
  std::uint64_t blocks_invalidated = 0;    ///< blocks actually dropped
  std::uint64_t transfers_sent = 0;
  std::uint64_t transfers_received = 0;
  std::uint64_t blocks_transferred = 0;  ///< rebalance re-homing, sent side
  std::uint64_t membership_updates = 0;  ///< epoch advances applied
  std::uint64_t heartbeats_answered = 0;
};

/// One replica's peering agent. Construct, `attach()` the caches once they
/// exist (the block client interposes *under* the fs, so construction
/// order forces late wiring), then `start()`.
class PeerCache {
 public:
  struct Config {
    std::uint32_t self_id = 0;
    std::uint32_t target_id = 0;  ///< iSCSI target the LBNs belong to
    core::PassMode mode = core::PassMode::Original;
    bool enabled = true;       ///< peering on/off (off: pure fall-through)
    bool push_on_miss = true;  ///< push target reads to the hash owner
    std::uint16_t port = kPeerPort;
    sim::Duration fetch_timeout = 10 * sim::kMillisecond;
    /// Cap on chunks re-homed per membership change (bounds the rebalance
    /// burst on the wire).
    std::size_t max_transfer_blocks = 256;
    int vnodes = 64;
  };

  PeerCache(proto::NetworkStack& stack, Config config, std::vector<Peer> peers);

  /// Wires the caches this agent serves from / invalidates into. Either
  /// may be null (ncache is null outside NCache mode).
  void attach(core::NCacheModule* ncache, fs::SimpleFs* fs);

  void start();
  void stop();
  bool running() const noexcept { return running_; }
  bool enabled() const noexcept { return config_.enabled; }

  /// The replica owning `lbn`'s extent under the current ring. Callers
  /// must not ask when the ring is empty (cannot happen while self runs:
  /// a live agent is always its own member).
  std::uint32_t owner_of(std::uint64_t lbn) const;
  bool is_owner(std::uint64_t lbn) const {
    return owner_of(lbn) == config_.self_id;
  }

  /// Asks the owner of `lbn` for `count` blocks. Resolves with the
  /// payload chain on a peer hit, nullopt on miss/timeout.
  Task<std::optional<netbuf::MsgBuffer>> fetch(std::uint64_t lbn,
                                               std::uint32_t count);

  /// Pushes freshly-read blocks to their hash owner (miss path; NCache
  /// mode only — there is no cache to ingest into otherwise).
  void push_to_owner(std::uint64_t lbn, std::uint32_t count,
                     const netbuf::MsgBuffer& chain);

  /// Write coherence: tells every live peer to drop these LBNs.
  void broadcast_invalidate(const std::vector<std::uint32_t>& lbns);

  /// Applies an epoch-numbered live set (stale epochs ignored), then
  /// re-homes cached chunks the new ring assigns to other live members.
  void apply_membership(std::uint32_t epoch,
                        const std::vector<std::uint32_t>& live);

  std::uint32_t epoch() const noexcept { return epoch_; }
  const HashRing& ring() const noexcept { return ring_; }
  const Config& config() const noexcept { return config_; }
  const PeerCacheStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = PeerCacheStats{}; }

  /// Publishes peer.* counters and ring gauges under `node`.
  void register_metrics(MetricRegistry& registry, const std::string& node);

 private:
  void on_datagram(proto::Ipv4Addr src_ip, std::uint16_t src_port,
                   proto::Ipv4Addr dst_ip, std::uint16_t dst_port,
                   netbuf::MsgBuffer msg);
  void handle_fetch(proto::Ipv4Addr src_ip, std::uint16_t src_port,
                    proto::Ipv4Addr dst_ip, ByteReader& head);
  void handle_fetch_reply(ByteReader& head, const netbuf::MsgBuffer& msg);
  void handle_invalidate(ByteReader& head);
  void handle_transfer(ByteReader& head, const netbuf::MsgBuffer& msg);
  void handle_membership(ByteReader& head);

  /// One block from the local caches in wire-ready physical form, or
  /// nullopt (serving never touches the target — that is the requester's
  /// fall-through, charged to *its* node).
  std::optional<netbuf::MsgBuffer> local_block(std::uint64_t lbn);

  std::optional<proto::Ipv4Addr> peer_ip(std::uint32_t id) const;
  sock::UdpSocket::Endpoint peer_endpoint(std::uint32_t id) const;

  proto::NetworkStack& stack_;
  Config config_;
  std::vector<Peer> peers_;
  core::NCacheModule* ncache_ = nullptr;
  fs::SimpleFs* fs_ = nullptr;
  sock::UdpSocket sock_;

  HashRing ring_;
  std::unordered_set<std::uint32_t> live_;
  std::uint32_t epoch_ = 0;

  bool running_ = false;
  std::uint32_t next_seq_ = 1;
  std::unordered_map<std::uint32_t,
                     std::function<void(std::optional<netbuf::MsgBuffer>)>>
      pending_;

  PeerCacheStats stats_;
};

struct PeerBlockClientStats {
  std::uint64_t local_reads = 0;   ///< served by the local NCache probe
  std::uint64_t peer_reads = 0;    ///< served by a peer fetch
  std::uint64_t target_reads = 0;  ///< fell through to the iSCSI target
};

/// The interposition seam: sits between the fs buffer cache and the iSCSI
/// initiator, steering regular-data misses through the peer protocol.
/// Metadata always goes straight to the target (§3.3 classification — a
/// peer cannot be trusted to hold interpretable metadata).
class PeerBlockClient final : public iscsi::BlockClient {
 public:
  PeerBlockClient(iscsi::IscsiInitiator& initiator, PeerCache& peers,
                  core::NCacheModule* ncache)
      : initiator_(initiator), peers_(peers), ncache_(ncache) {}

  Task<netbuf::MsgBuffer> read_blocks(std::uint64_t lbn, std::uint32_t count,
                                      bool metadata) override;
  Task<bool> write_blocks(std::uint64_t lbn, netbuf::MsgBuffer data,
                          bool metadata) override;

  const PeerBlockClientStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = PeerBlockClientStats{}; }
  void register_metrics(MetricRegistry& registry, const std::string& node);

 private:
  iscsi::IscsiInitiator& initiator_;
  PeerCache& peers_;
  core::NCacheModule* ncache_;
  PeerBlockClientStats stats_;
};

}  // namespace ncache::cluster
