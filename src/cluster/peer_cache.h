// Cooperative NCache peering across replicas (the scale-out extension).
//
// Every pass-through replica runs a PeerCache agent on a dedicated UDP
// port. Cached regular-data blocks have a single hash-designated *owner*
// replica (consistent hashing over 8-block extents); on a local miss the
// replica asks the owner before touching the iSCSI target:
//
//   * FETCH / FETCH_REPLY — the requester names an LBN run; the owner
//     answers from its network-centric cache (or its fs buffer cache) with
//     the wire-format chain as a logical copy, or reports a miss. Only a
//     peer miss falls through to the target. The request carries the
//     requester's membership epoch and the reply carries per-block
//     versions, so a stale peer on either end of a healed partition can
//     never inject old bytes: the server refuses requests from a newer
//     epoch than its own (it may have missed a ring change — "fencing"),
//     and the requester rejects replies whose versions lag what it knows.
//   * TRANSFER — unsolicited chunk push: after a target read the requester
//     pushes the bytes (version-stamped) to the hash owner, and after a
//     membership change each replica re-homes chunks the new ring assigns
//     elsewhere. Stale pushes are dropped by the version check.
//   * INVALIDATE / INVALIDATE_ACK — write coherence: the replica that
//     served an NFS WRITE flushes, bumps each dirtied LBN's version, then
//     broadcasts (lbn, version) pairs to every configured peer.
//     Invalidation is *reliable*: each datagram is retransmitted with
//     capped exponential backoff until the peer acks, from a bounded
//     pending set — a peer behind a network partition converges as soon
//     as the cut heals, because the retransmissions are still flowing.
//     Applying an invalidate is a version max-merge, so duplicates and
//     reorderings are harmless.
//   * DIGEST_REQUEST / DIGEST_REPLY — anti-entropy repair: after a
//     partition heals (epoch gap observed, or an explicit run_repair()),
//     a replica sends (lbn, version) digests of everything it caches to
//     the responsible peers; both sides max-merge and drop blocks the
//     other proves stale. While its own digests are outstanding a replica
//     refuses to serve fetches — repair is a fence too.
//   * MEMBERSHIP — epoch-numbered live-set broadcasts from the load
//     balancer; each agent rebuilds its ring identically. Epochs compare
//     with serial-number (RFC 1982) arithmetic so the u32 counter wraps
//     seamlessly. An agent that finds itself excluded from the newest
//     live set it has seen is *fenced*: it refuses to serve extents it no
//     longer owns until a newer epoch re-admits it.
//   * HEARTBEAT / HEARTBEAT_ACK — the balancer's liveness probe.
//
// All messages ride the existing proto/sock stack; payloads go through the
// extended-socket mode seam, so in NCache mode a fetched chunk crosses the
// owner's boundaries as a logical copy and materializes at its NIC.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cluster/hash_ring.h"
#include "common/overload.h"
#include "core/ncache_module.h"
#include "core/pass_mode.h"
#include "fs/simple_fs.h"
#include "sock/socket.h"

namespace ncache::cluster {

/// Peering agent port (NFS is 2049; keep clear of ephemeral NAT range).
constexpr std::uint16_t kPeerPort = 2149;
/// Load-balancer heartbeat/membership control port.
constexpr std::uint16_t kLbControlPort = 2150;
/// Ownership granularity: one 8-block (32 KB) extent — matches the NFS
/// max I/O size, so one client read maps to one owner.
constexpr std::uint32_t kExtentBlocks = 8;

enum class PeerMsg : std::uint32_t {
  Fetch = 1,
  FetchReply = 2,
  Invalidate = 3,
  Transfer = 4,
  Membership = 5,
  Heartbeat = 6,
  HeartbeatAck = 7,
  InvalidateAck = 8,
  DigestRequest = 9,
  DigestReply = 10,
};

struct Peer {
  std::uint32_t id = 0;
  proto::Ipv4Addr ip = 0;
};

struct PeerCacheStats {
  std::uint64_t fetches_sent = 0;
  std::uint64_t peer_hits = 0;    ///< fetches answered with data
  std::uint64_t peer_misses = 0;  ///< fetches answered miss
  std::uint64_t fetch_timeouts = 0;
  std::uint64_t serve_hits = 0;    ///< fetches we answered with data
  std::uint64_t serve_misses = 0;  ///< fetches we answered miss
  std::uint64_t pushes = 0;        ///< miss-path chunk pushes to the owner
  std::uint64_t invalidates_sent = 0;      ///< broadcast datagrams
  std::uint64_t invalidates_received = 0;  ///< datagrams handled
  std::uint64_t blocks_invalidated = 0;    ///< blocks actually dropped
  std::uint64_t transfers_sent = 0;
  std::uint64_t transfers_received = 0;
  std::uint64_t blocks_transferred = 0;  ///< rebalance re-homing, sent side
  std::uint64_t membership_updates = 0;  ///< epoch advances applied
  std::uint64_t heartbeats_answered = 0;
  // --- reliability / partition tolerance ---
  std::uint64_t retransmits = 0;        ///< reliable-datagram resends
  std::uint64_t invalidate_acks = 0;    ///< acks received (sender side)
  std::uint64_t pending_overflow = 0;   ///< reliable entries evicted (full set)
  std::uint64_t reliable_expired = 0;   ///< entries dropped at the retry cap
  std::uint64_t fenced_refusals = 0;    ///< fetches refused while fenced/repairing
  std::uint64_t ownership_refusals = 0; ///< fetches refused: not owner locally
  std::uint64_t stale_replies_rejected = 0;  ///< fetch replies behind known versions
  std::uint64_t stale_epoch_ignored = 0;     ///< membership broadcasts ignored
  std::uint64_t digests_sent = 0;       ///< DIGEST_REQUEST datagrams
  std::uint64_t digests_answered = 0;   ///< DIGEST_REPLY datagrams sent
  std::uint64_t repair_drops = 0;       ///< blocks dropped by anti-entropy
  std::uint64_t repair_rounds = 0;      ///< run_repair() passes started
};

/// One replica's peering agent. Construct, `attach()` the caches once they
/// exist (the block client interposes *under* the fs, so construction
/// order forces late wiring), then `start()`.
class PeerCache {
 public:
  struct Config {
    std::uint32_t self_id = 0;
    std::uint32_t target_id = 0;  ///< iSCSI target the LBNs belong to
    core::PassMode mode = core::PassMode::Original;
    bool enabled = true;       ///< peering on/off (off: pure fall-through)
    bool push_on_miss = true;  ///< push target reads to the hash owner
    std::uint16_t port = kPeerPort;
    sim::Duration fetch_timeout = 10 * sim::kMillisecond;
    /// Cap on chunks re-homed per membership change (bounds the rebalance
    /// burst on the wire).
    std::size_t max_transfer_blocks = 256;
    int vnodes = 64;
    /// Reliable-invalidate retransmission: first backoff, doubling to the
    /// cap, giving up after `reliable_max_attempts` sends (anti-entropy
    /// repair is the backstop for partitions outlasting the budget).
    sim::Duration reliable_backoff = 5 * sim::kMillisecond;
    sim::Duration reliable_backoff_cap = 80 * sim::kMillisecond;
    int reliable_max_attempts = 40;
    /// Bound on simultaneously un-acked reliable datagrams; the oldest is
    /// evicted (and counted) when a new one would exceed it.
    std::size_t max_pending_reliable = 1024;
  };

  PeerCache(proto::NetworkStack& stack, Config config, std::vector<Peer> peers);

  /// Wires the caches this agent serves from / invalidates into. Either
  /// may be null (ncache is null outside NCache mode).
  void attach(core::NCacheModule* ncache, fs::SimpleFs* fs);

  void start();
  void stop();
  bool running() const noexcept { return running_; }
  bool enabled() const noexcept { return config_.enabled; }

  /// The replica owning `lbn`'s extent under the current ring. Callers
  /// must not ask when the ring is empty (cannot happen while self runs:
  /// a live agent is always its own member).
  std::uint32_t owner_of(std::uint64_t lbn) const;
  bool is_owner(std::uint64_t lbn) const {
    return owner_of(lbn) == config_.self_id;
  }

  /// Asks the owner of `lbn` for `count` blocks. Resolves with the
  /// payload chain on a peer hit, nullopt on miss/timeout/stale reply.
  Task<std::optional<netbuf::MsgBuffer>> fetch(std::uint64_t lbn,
                                               std::uint32_t count);

  /// Pushes freshly-read blocks to their hash owner (miss path; NCache
  /// mode only — there is no cache to ingest into otherwise).
  void push_to_owner(std::uint64_t lbn, std::uint32_t count,
                     const netbuf::MsgBuffer& chain);

  /// Write coherence: bumps each LBN's version and reliably tells every
  /// configured peer (dead or partitioned ones included — retransmission
  /// drains once they are reachable) to drop its copies.
  void broadcast_invalidate(const std::vector<std::uint32_t>& lbns);

  /// Applies an epoch-numbered live set (serially-stale epochs ignored),
  /// re-homes cached chunks the new ring assigns to other live members,
  /// and — after rejoining from a fence or observing an epoch gap —
  /// starts an anti-entropy repair pass.
  void apply_membership(std::uint32_t epoch,
                        const std::vector<std::uint32_t>& live);

  /// Anti-entropy: digests every cached extent to the peer responsible
  /// for it under the current ring (the owner, or the lowest-id other
  /// live member for self-owned extents) and reconciles versions both
  /// ways. Invoked automatically on epoch-gap rejoin; balancer-less
  /// worlds (presets::cluster_racks) call it explicitly after a heal.
  void run_repair();

  std::uint32_t epoch() const noexcept { return epoch_; }
  /// True while excluded from the newest live set seen (must not serve).
  bool fenced() const noexcept { return fenced_; }
  /// True while repair digests are outstanding (also refuses serving).
  bool repairing() const noexcept { return repair_outstanding_ > 0; }
  /// Un-acked reliable datagrams (0 = the cluster has converged as far as
  /// this sender can tell).
  std::size_t pending_reliable() const noexcept { return reliable_.size(); }
  /// Known version of one LBN (0 = never written/invalidated).
  std::uint64_t version_of(std::uint64_t lbn) const {
    auto it = versions_.find(lbn);
    return it == versions_.end() ? 0 : it->second;
  }
  const HashRing& ring() const noexcept { return ring_; }
  const Config& config() const noexcept { return config_; }
  const PeerCacheStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = PeerCacheStats{}; }

  /// Publishes peer.* counters and ring gauges under `node`.
  void register_metrics(MetricRegistry& registry, const std::string& node);

  /// Queue-depth feedback for the balancer's admission controller: when
  /// set, heartbeat acks carry a trailing u32 with the probed depth —
  /// zero-suppressed, so an idle replica's acks keep their pre-feedback
  /// wire bytes and fault-free runs stay byte-identical.
  void set_qdepth_probe(std::function<std::size_t()> fn) {
    qdepth_probe_ = std::move(fn);
  }

  /// Shared retry budget: when set, every reliable retransmission must
  /// win a token first. A denial re-arms the timer at the backoff cap
  /// without sending — delivery stays eventual, but recovery traffic can
  /// never exceed the budgeted fraction of goodput.
  void set_retry_budget(overload::RetryBudget* budget) {
    retry_budget_ = budget;
  }

 private:
  struct PendingFetch {
    std::uint64_t lbn = 0;
    std::uint32_t count = 0;
    std::function<void(std::optional<netbuf::MsgBuffer>)> fn;
  };
  /// One un-acked reliable datagram (INVALIDATE or DIGEST_REQUEST).
  struct Reliable {
    std::uint32_t peer = 0;
    std::uint32_t seq = 0;
    bool digest = false;  ///< DIGEST_REQUEST: the reply acts as the ack
    int attempts = 1;     ///< sends so far
    sim::Duration backoff{};
    std::vector<std::byte> payload;
  };

  void on_datagram(proto::Ipv4Addr src_ip, std::uint16_t src_port,
                   proto::Ipv4Addr dst_ip, std::uint16_t dst_port,
                   netbuf::MsgBuffer msg);
  void handle_fetch(proto::Ipv4Addr src_ip, std::uint16_t src_port,
                    proto::Ipv4Addr dst_ip, ByteReader& head);
  void handle_fetch_reply(ByteReader& head, const netbuf::MsgBuffer& msg,
                          bool stamped);
  void handle_invalidate(ByteReader& head);
  void handle_transfer(ByteReader& head, const netbuf::MsgBuffer& msg,
                       bool stamped);
  void handle_membership(ByteReader& head);
  void handle_invalidate_ack(ByteReader& head);
  void handle_digest_request(ByteReader& head);
  void handle_digest_reply(ByteReader& head);

  /// Registers `payload` for at-least-once delivery to `peer` and sends
  /// the first copy; retransmits with capped backoff until acked.
  void send_reliable(std::uint32_t peer, std::uint32_t seq, bool digest,
                     const std::vector<std::byte>& payload);
  void retransmit(std::uint64_t ticket);
  void ack_reliable(std::uint32_t peer, std::uint32_t seq);
  void erase_reliable(std::map<std::uint64_t, Reliable>::iterator it);

  /// True when any of the `count` blocks from `lbn` has a nonzero
  /// version — i.e. the run has seen a write and stamps must go on the
  /// wire (all-zero stamp arrays are omitted from TRANSFER/FETCH_REPLY).
  bool versions_stamped(std::uint64_t lbn, std::uint32_t count) const;

  /// Drops every local copy of `lbn` (fs cache and NCache). Returns
  /// whether anything was resident.
  bool drop_local(std::uint64_t lbn);
  /// Every regular-data LBN this node caches, ascending (fs ∪ ncache).
  std::vector<std::uint64_t> cached_lbns() const;

  /// One block from the local caches in wire-ready physical form, or
  /// nullopt (serving never touches the target — that is the requester's
  /// fall-through, charged to *its* node).
  std::optional<netbuf::MsgBuffer> local_block(std::uint64_t lbn);

  std::optional<proto::Ipv4Addr> peer_ip(std::uint32_t id) const;
  sock::UdpSocket::Endpoint peer_endpoint(std::uint32_t id) const;

  proto::NetworkStack& stack_;
  Config config_;
  std::vector<Peer> peers_;
  core::NCacheModule* ncache_ = nullptr;
  fs::SimpleFs* fs_ = nullptr;
  sock::UdpSocket sock_;

  HashRing ring_;
  std::unordered_set<std::uint32_t> live_;
  std::uint32_t epoch_ = 0;
  bool fenced_ = false;

  /// Per-LBN write versions, max-merged from INVALIDATE / fetch replies /
  /// digests. Monotone, so every apply order converges to the same map.
  std::unordered_map<std::uint64_t, std::uint64_t> versions_;

  bool running_ = false;
  std::uint32_t next_seq_ = 1;
  std::unordered_map<std::uint32_t, PendingFetch> pending_;

  /// Reliable-delivery window: ticket -> entry, insertion-ordered so the
  /// bound evicts oldest-first; the index maps (peer,seq) to tickets for
  /// O(1) acks.
  std::map<std::uint64_t, Reliable> reliable_;
  std::unordered_map<std::uint64_t, std::uint64_t> reliable_index_;
  std::uint64_t next_ticket_ = 1;
  std::size_t repair_outstanding_ = 0;  ///< pending digest entries

  std::function<std::size_t()> qdepth_probe_;
  overload::RetryBudget* retry_budget_ = nullptr;

  PeerCacheStats stats_;
};

struct PeerBlockClientStats {
  std::uint64_t local_reads = 0;   ///< served by the local NCache probe
  std::uint64_t peer_reads = 0;    ///< served by a peer fetch
  std::uint64_t target_reads = 0;  ///< fell through to the iSCSI target
};

/// The interposition seam: sits between the fs buffer cache and the iSCSI
/// initiator, steering regular-data misses through the peer protocol.
/// Metadata always goes straight to the target (§3.3 classification — a
/// peer cannot be trusted to hold interpretable metadata).
class PeerBlockClient final : public iscsi::BlockClient {
 public:
  PeerBlockClient(iscsi::IscsiInitiator& initiator, PeerCache& peers,
                  core::NCacheModule* ncache)
      : initiator_(initiator), peers_(peers), ncache_(ncache) {}

  Task<netbuf::MsgBuffer> read_blocks(std::uint64_t lbn, std::uint32_t count,
                                      bool metadata) override;
  Task<bool> write_blocks(std::uint64_t lbn, netbuf::MsgBuffer data,
                          bool metadata) override;

  const PeerBlockClientStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = PeerBlockClientStats{}; }
  void register_metrics(MetricRegistry& registry, const std::string& node);

 private:
  iscsi::IscsiInitiator& initiator_;
  PeerCache& peers_;
  core::NCacheModule* ncache_;
  PeerBlockClientStats stats_;
};

}  // namespace ncache::cluster
