#include "cluster/hash_ring.h"

#include <algorithm>

namespace ncache::cluster {

std::uint64_t HashRing::mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t HashRing::hash_bytes(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= std::uint8_t(c);
    h *= 0x100000001b3ULL;
  }
  // One finalizer round: FNV alone clusters on short common prefixes.
  return mix64(h);
}

void HashRing::add_member(std::uint32_t member) {
  auto it = std::lower_bound(members_.begin(), members_.end(), member);
  if (it != members_.end() && *it == member) return;
  members_.insert(it, member);
  for (int v = 0; v < vnodes_; ++v) {
    std::uint64_t point =
        mix64((std::uint64_t(member) << 32) ^ std::uint64_t(v) ^
              0xa5a5a5a5a5a5a5a5ULL);
    points_.push_back(Point{point, member});
  }
  std::sort(points_.begin(), points_.end(),
            [](const Point& a, const Point& b) {
              return a.hash != b.hash ? a.hash < b.hash
                                      : a.member < b.member;
            });
}

void HashRing::remove_member(std::uint32_t member) {
  auto it = std::lower_bound(members_.begin(), members_.end(), member);
  if (it == members_.end() || *it != member) return;
  members_.erase(it);
  points_.erase(std::remove_if(points_.begin(), points_.end(),
                               [member](const Point& p) {
                                 return p.member == member;
                               }),
                points_.end());
}

bool HashRing::has_member(std::uint32_t member) const {
  return std::binary_search(members_.begin(), members_.end(), member);
}

std::uint32_t HashRing::owner(std::uint64_t key_hash) const {
  auto it = std::lower_bound(points_.begin(), points_.end(), key_hash,
                             [](const Point& p, std::uint64_t h) {
                               return p.hash < h;
                             });
  if (it == points_.end()) it = points_.begin();  // wrap
  return it->member;
}

}  // namespace ncache::cluster
