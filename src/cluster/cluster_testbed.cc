#include "cluster/cluster_testbed.h"

namespace ncache::cluster {

topo::WorldConfig ClusterTestbed::world_config(const ClusterConfig& config) {
  topo::WorldConfig wc;
  wc.mode = config.mode;
  wc.volume_blocks = config.volume_blocks;
  wc.inode_count = config.inode_count;
  wc.fs_cache_blocks = config.fs_cache_blocks;
  wc.fs_readahead_blocks = config.fs_readahead_blocks;
  wc.ncache_budget_bytes = config.ncache_budget_bytes;
  wc.nfs_daemons = config.nfs_daemons;
  wc.peering = config.peering;
  wc.push_on_miss = config.push_on_miss;
  wc.routing = config.routing;
  wc.heartbeat_interval = config.heartbeat_interval;
  wc.heartbeat_miss_limit = config.heartbeat_miss_limit;
  wc.overload = config.overload;
  wc.costs = config.costs;
  return wc;
}

ClusterTestbed::ClusterTestbed(ClusterConfig config)
    : config_(config),
      world_(topo::presets::cluster(config.server_count, config.client_count),
             world_config(config)) {}

std::uint64_t ClusterTestbed::total_target_reads() const {
  return world_.target().stats().reads;
}

std::uint64_t ClusterTestbed::total_peer_hits() const {
  std::uint64_t total = 0;
  for (int i = 0; i < world_.server_count(); ++i) {
    total += world_.server(i).peers->stats().peer_hits;
  }
  return total;
}

std::uint64_t ClusterTestbed::total_peer_misses() const {
  std::uint64_t total = 0;
  for (int i = 0; i < world_.server_count(); ++i) {
    total += world_.server(i).peers->stats().peer_misses;
  }
  return total;
}

}  // namespace ncache::cluster
