#include "cluster/cluster_testbed.h"

#include "common/logging.h"
#include "netbuf/slab_cache.h"

namespace ncache::cluster {

using proto::make_ipv4;
using testbed::make_wired_node;
using testbed::NicSpec;
using testbed::set_cables;

proto::Ipv4Addr ClusterTestbed::replica_ip(int i) const {
  return make_ipv4(10, 0, 0, std::uint8_t(10 + i));
}

proto::Ipv4Addr ClusterTestbed::client_ip(int i) const {
  return make_ipv4(10, 0, 0, std::uint8_t(100 + i));
}

ClusterTestbed::ClusterTestbed(ClusterConfig config)
    : config_(std::move(config)) {
  if (config_.mode == core::PassMode::Baseline) config_.peering = false;

  book_ = std::make_shared<proto::AddressBook>();
  switch_ = std::make_unique<proto::EthernetSwitch>(loop_, "switch",
                                                    config_.costs);

  storage_ = make_wired_node(loop_, config_.costs, book_, *switch_, "storage",
                             {{0x10, kStorageIp}});
  lb_node_ = make_wired_node(loop_, config_.costs, book_, *switch_, "lb",
                             {{0x50, kLbIp}});

  std::vector<Peer> peer_list;
  std::vector<LoadBalancer::Member> member_list;
  for (int i = 0; i < config_.server_count; ++i) {
    peer_list.push_back({std::uint32_t(i), replica_ip(i)});
    member_list.push_back({std::uint32_t(i), replica_ip(i)});
  }

  store_ = std::make_unique<blockdev::BlockStore>(
      loop_, config_.costs, "raid0", config_.volume_blocks);
  image_ = std::make_unique<fs::FsImageBuilder>(*store_, config_.volume_blocks,
                                                config_.inode_count);
  target_ = std::make_unique<iscsi::IscsiTarget>(storage_->stack, *store_);

  for (int i = 0; i < config_.server_count; ++i) {
    auto r = std::make_unique<Replica>();
    r->node = make_wired_node(loop_, config_.costs, book_, *switch_,
                              "server" + std::to_string(i),
                              {{0x20 + std::uint64_t(i), replica_ip(i)}});
    r->initiator = std::make_unique<iscsi::IscsiInitiator>(
        r->node->stack, replica_ip(i), kStorageIp, /*target_id=*/0);

    switch (config_.mode) {
      case core::PassMode::Original:
        r->initiator->set_payload_policy(iscsi::PayloadPolicy::Copy);
        break;
      case core::PassMode::NCache: {
        core::NetCentricCache::Config cc;
        cc.pool_budget_bytes = config_.ncache_budget_bytes;
        r->ncache = std::make_unique<core::NCacheModule>(r->node->stack, cc);
        r->ncache->attach_egress();
        r->ncache->attach_initiator(*r->initiator);
        break;
      }
      case core::PassMode::Baseline:
        r->initiator->set_payload_policy(iscsi::PayloadPolicy::Junk);
        break;
    }

    PeerCache::Config pc;
    pc.self_id = std::uint32_t(i);
    pc.target_id = 0;
    pc.mode = config_.mode;
    pc.enabled = config_.peering;
    pc.push_on_miss = config_.push_on_miss;
    r->peers = std::make_unique<PeerCache>(r->node->stack, pc, peer_list);

    r->block_client = std::make_unique<PeerBlockClient>(
        *r->initiator, *r->peers, r->ncache.get());
    r->fs = std::make_unique<fs::SimpleFs>(loop_, *r->block_client,
                                           config_.fs_cache_blocks,
                                           config_.fs_readahead_blocks);
    // Late wiring: the agent serves from / invalidates into these caches,
    // but the block client had to exist before the fs could.
    r->peers->attach(r->ncache.get(), r->fs.get());
    replicas_.push_back(std::move(r));
  }

  for (int i = 0; i < config_.client_count; ++i) {
    clients_.push_back(make_wired_node(loop_, config_.costs, book_, *switch_,
                                       "client" + std::to_string(i),
                                       {{0x30 + std::uint64_t(i),
                                         client_ip(i)}}));
  }

  LoadBalancer::Config lc;
  lc.routing = config_.routing;
  lc.heartbeat_interval = config_.heartbeat_interval;
  lc.heartbeat_miss_limit = config_.heartbeat_miss_limit;
  lb_ = std::make_unique<LoadBalancer>(lb_node_->stack, lc, member_list);

  metrics_.counter("sim", "clamped_events",
                   [this] { return loop_.clamped_events(); });
  metrics_.counter("sim", "netbuf.slab_hits",
                   [] { return netbuf::SlabCache::process().hits(); });
  metrics_.counter("sim", "netbuf.slab_misses",
                   [] { return netbuf::SlabCache::process().misses(); });
  storage_->register_metrics(metrics_, "storage");
  store_->register_metrics(metrics_, "storage");
  lb_node_->register_metrics(metrics_, "lb");
  lb_->register_metrics(metrics_, "lb");
  for (int i = 0; i < config_.server_count; ++i) {
    std::string node = "server" + std::to_string(i);
    Replica& r = *replicas_[std::size_t(i)];
    r.node->register_metrics(metrics_, node);
    r.initiator->register_metrics(metrics_, node);
    r.fs->cache().register_metrics(metrics_, node);
    if (r.ncache) r.ncache->register_metrics(metrics_, node);
    r.peers->register_metrics(metrics_, node);
    r.block_client->register_metrics(metrics_, node);
  }
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    clients_[i]->register_metrics(metrics_, "client" + std::to_string(i));
  }
}

Task<void> ClusterTestbed::bring_up_replica(int i) {
  Replica& r = *replicas_.at(std::size_t(i));
  bool ok = co_await r.initiator->login();
  if (!ok) {
    throw std::runtime_error("ClusterTestbed: iSCSI login failed (replica " +
                             std::to_string(i) + ")");
  }
  co_await r.fs->mount();
}

void ClusterTestbed::start_nfs() {
  if (!image_->finished()) image_->finish();
  target_->start();
  for (int i = 0; i < server_count(); ++i) {
    sim::sync_wait(loop_, bring_up_replica(i));
  }
  for (int i = 0; i < server_count(); ++i) {
    Replica& r = *replicas_[std::size_t(i)];
    r.peers->start();
    nfs::NfsServer::Config sc;
    sc.mode = config_.mode;
    sc.daemons = config_.nfs_daemons;
    r.nfs = std::make_unique<nfs::NfsServer>(r.node->stack, *r.fs, sc,
                                             r.ncache.get());
    if (config_.peering) {
      r.nfs->set_write_observer(
          [this, i](std::uint64_t fh, std::uint64_t offset,
                    std::uint32_t count) {
            if (replicas_[std::size_t(i)]->crashed) return;
            write_coherence_task(i, fh, offset, count).detach(loop_.reaper());
          });
    }
    r.nfs->register_metrics(metrics_, "server" + std::to_string(i));
    r.nfs->start();
  }
  lb_->start();
  for (int i = 0; i < config_.client_count; ++i) {
    nfs_clients_.push_back(std::make_unique<nfs::NfsClient>(
        clients_[std::size_t(i)]->stack, client_ip(i), kLbIp,
        std::uint16_t(700 + i)));
    nfs_clients_.back()->register_metrics(metrics_,
                                          "client" + std::to_string(i));
  }
}

Task<void> ClusterTestbed::write_coherence_task(int i, std::uint64_t fh,
                                                std::uint64_t offset,
                                                std::uint32_t count) {
  // Order matters: the dirtied blocks must reach the target before peers
  // are told to drop their copies, or a peer could re-fetch stale bytes.
  Replica& r = *replicas_.at(std::size_t(i));
  std::vector<std::uint32_t> lbns =
      co_await r.fs->map_range(std::uint32_t(fh), offset, count);
  if (lbns.empty()) co_return;
  co_await r.fs->sync();
  if (r.crashed) co_return;  // died while flushing
  r.peers->broadcast_invalidate(lbns);
}

void ClusterTestbed::crash_replica(int i) {
  Replica& r = *replicas_.at(std::size_t(i));
  if (r.crashed) return;
  r.crashed = true;
  set_cables(*switch_, r.node->stack, false);
  r.peers->stop();
  r.initiator->abort_session(/*allow_reconnect=*/false);
  if (r.nfs) r.nfs->stop();
  r.fs->cache().discard_all();
  if (r.ncache) r.ncache->cache().clear();
  NC_WARN("cluster", "replica %d crashed: caches and sessions lost", i);
}

void ClusterTestbed::restart_replica(int i) {
  Replica& r = *replicas_.at(std::size_t(i));
  if (!r.crashed) return;
  r.crashed = false;
  set_cables(*switch_, r.node->stack, true);
  restart_task(i).detach(loop_.reaper());
}

Task<void> ClusterTestbed::restart_task(int i) {
  Replica& r = *replicas_.at(std::size_t(i));
  bool ok = co_await r.initiator->login();
  if (!ok) {
    NC_WARN("cluster", "replica %d: iSCSI re-login failed after restart", i);
    co_return;
  }
  r.peers->start();
  if (r.nfs) r.nfs->start();
  NC_WARN("cluster", "replica %d restarted; awaiting re-admission", i);
}

std::uint64_t ClusterTestbed::total_peer_hits() const {
  std::uint64_t total = 0;
  for (const auto& r : replicas_) total += r->peers->stats().peer_hits;
  return total;
}

std::uint64_t ClusterTestbed::total_peer_misses() const {
  std::uint64_t total = 0;
  for (const auto& r : replicas_) total += r->peers->stats().peer_misses;
  return total;
}

}  // namespace ncache::cluster
