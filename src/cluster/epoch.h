// Serial-number arithmetic for membership epochs (RFC 1982 style).
//
// Membership epochs are 32-bit counters bumped on every ring change. A
// long-lived cluster wraps them, so "newer" cannot be `a > b`: after the
// wrap the successor of 0xFFFFFFFF is 0, which plain comparison calls
// ancient and every agent would freeze on the last pre-wrap epoch.
// Instead an epoch is newer when it is ahead by less than half the space,
// computed in modular arithmetic:
//
//   newer(a, b)  :=  a != b  &&  (a - b) mod 2^32 < 2^31
//
// When the two differ by exactly 2^31 the relation is undefined (RFC 1982
// §3.2); we return false from both orderings, so such a broadcast is
// ignored rather than applied in an order-dependent way. Agents only ever
// see epochs a handful of steps apart, so the half-space window is never a
// constraint in practice — it exists purely to make the wrap seamless.
#pragma once

#include <cstdint>

namespace ncache::cluster {

/// True iff epoch `a` is strictly newer than `b` under serial-number
/// (wraparound-safe) comparison.
constexpr bool epoch_newer(std::uint32_t a, std::uint32_t b) noexcept {
  return a != b && std::uint32_t(a - b) < 0x80000000u;
}

}  // namespace ncache::cluster
