// Consistent-hash ring with virtual nodes.
//
// Both halves of the scale-out extension hang off this one structure: the
// load balancer maps request keys (NFS file handles, HTTP URLs) to the
// replica that serves them, and the peer-cache protocol maps block extents
// to the replica that *owns* their cached copy. Virtual nodes smooth the
// key space so adding/removing one replica only moves ~1/N of the keys —
// the property that keeps a rebalance after a crash cheap.
//
// Determinism matters more than hash quality here: the ring is rebuilt
// identically on every node from the same (member, vnode) list, so owner
// decisions agree cluster-wide without any coordination traffic.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace ncache::cluster {

class HashRing {
 public:
  explicit HashRing(int vnodes_per_member = 64)
      : vnodes_(vnodes_per_member < 1 ? 1 : vnodes_per_member) {}

  /// Adds `member` (idempotent). Inserts vnodes_ points on the ring.
  void add_member(std::uint32_t member);
  /// Removes `member` (idempotent); its keys fall to ring successors.
  void remove_member(std::uint32_t member);
  bool has_member(std::uint32_t member) const;

  /// The member owning `key_hash`: first ring point at or after it,
  /// wrapping. Callers must check empty() first.
  std::uint32_t owner(std::uint64_t key_hash) const;

  bool empty() const noexcept { return points_.empty(); }
  std::size_t member_count() const noexcept { return members_.size(); }
  std::size_t point_count() const noexcept { return points_.size(); }
  /// Current members, sorted ascending (deterministic iteration order).
  const std::vector<std::uint32_t>& members() const noexcept {
    return members_;
  }

  /// 64-bit finalizer (splitmix64) — the shared key hash for integer keys
  /// (file handles, extent numbers).
  static std::uint64_t mix64(std::uint64_t x) noexcept;
  /// FNV-1a for string keys (HTTP URLs).
  static std::uint64_t hash_bytes(std::string_view s) noexcept;

 private:
  struct Point {
    std::uint64_t hash;
    std::uint32_t member;
  };

  int vnodes_;
  std::vector<std::uint32_t> members_;  ///< sorted
  std::vector<Point> points_;           ///< sorted by hash
};

}  // namespace ncache::cluster
