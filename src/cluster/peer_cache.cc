#include "cluster/peer_cache.h"

#include <algorithm>

#include "cluster/epoch.h"
#include "common/bytes.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "fs/layout.h"

namespace ncache::cluster {

using netbuf::MsgBuffer;

namespace {
constexpr std::size_t kFetchHeadBytes = 24;
constexpr std::size_t kFetchReplyHeadBytes = 16;  // + 8 per block (versions)
constexpr std::size_t kTransferHeadBytes = 16;    // + 8 per block (versions)
constexpr std::size_t kDigestBatch = 128;  ///< (lbn,version) pairs per datagram

std::uint64_t reliable_key(std::uint32_t peer, std::uint32_t seq) {
  return (std::uint64_t(peer) << 32) | seq;
}
}  // namespace

PeerCache::PeerCache(proto::NetworkStack& stack, Config config,
                     std::vector<Peer> peers)
    : stack_(stack),
      config_(config),
      peers_(std::move(peers)),
      sock_(stack, config.mode, config.port),
      ring_(config.vnodes) {
  for (const Peer& p : peers_) {
    ring_.add_member(p.id);
    live_.insert(p.id);
  }
}

void PeerCache::attach(core::NCacheModule* ncache, fs::SimpleFs* fs) {
  ncache_ = ncache;
  fs_ = fs;
}

void PeerCache::start() {
  if (running_) return;
  running_ = true;
  sock_.bind([this](proto::Ipv4Addr sip, std::uint16_t sport,
                    proto::Ipv4Addr dip, std::uint16_t dport, MsgBuffer msg) {
    on_datagram(sip, sport, dip, dport, std::move(msg));
  });
}

void PeerCache::stop() {
  if (!running_) return;
  running_ = false;
  sock_.unbind();
  // Fail outstanding fetches so their daemons fall through to the target
  // instead of parking until teardown.
  auto pending = std::move(pending_);
  pending_.clear();
  for (auto& [seq, pf] : pending) pf.fn(std::nullopt);
  // Forget the reliable window: whatever this instance owed the cluster
  // is re-derived after restart (crash semantics — the caches are gone
  // too). Orphaned retransmit timers no-op on the missing tickets.
  reliable_.clear();
  reliable_index_.clear();
  repair_outstanding_ = 0;
}

std::uint32_t PeerCache::owner_of(std::uint64_t lbn) const {
  return ring_.owner(HashRing::mix64(lbn / kExtentBlocks));
}

std::optional<proto::Ipv4Addr> PeerCache::peer_ip(std::uint32_t id) const {
  for (const Peer& p : peers_) {
    if (p.id == id) return p.ip;
  }
  return std::nullopt;
}

sock::UdpSocket::Endpoint PeerCache::peer_endpoint(std::uint32_t id) const {
  return {stack_.primary_ip(), *peer_ip(id), config_.port};
}

bool PeerCache::versions_stamped(std::uint64_t lbn,
                                 std::uint32_t count) const {
  for (std::uint32_t i = 0; i < count; ++i) {
    if (version_of(lbn + i) != 0) return true;
  }
  return false;
}

// ---- reliable delivery -------------------------------------------------------

void PeerCache::erase_reliable(std::map<std::uint64_t, Reliable>::iterator it) {
  if (it->second.digest && repair_outstanding_ > 0) --repair_outstanding_;
  reliable_index_.erase(reliable_key(it->second.peer, it->second.seq));
  reliable_.erase(it);
}

void PeerCache::send_reliable(std::uint32_t peer, std::uint32_t seq,
                              bool digest,
                              const std::vector<std::byte>& payload) {
  if (!peer_ip(peer)) return;
  // Bounded pending set: evict the oldest entry rather than grow without
  // limit while a peer stays unreachable (anti-entropy repair covers what
  // an evicted invalidate would have told it).
  while (reliable_.size() >= config_.max_pending_reliable) {
    ++stats_.pending_overflow;
    erase_reliable(reliable_.begin());
  }
  std::uint64_t ticket = next_ticket_++;
  Reliable r;
  r.peer = peer;
  r.seq = seq;
  r.digest = digest;
  r.backoff = config_.reliable_backoff;
  r.payload = payload;
  if (digest) ++repair_outstanding_;
  sock_.send_meta(peer_endpoint(peer), payload);
  stack_.loop().schedule_in(r.backoff, [this, ticket] { retransmit(ticket); });
  reliable_index_[reliable_key(peer, seq)] = ticket;
  reliable_.emplace(ticket, std::move(r));
}

void PeerCache::retransmit(std::uint64_t ticket) {
  auto it = reliable_.find(ticket);
  if (it == reliable_.end() || !running_) return;  // acked or stopped
  Reliable& r = it->second;
  if (r.attempts >= config_.reliable_max_attempts) {
    ++stats_.reliable_expired;
    erase_reliable(it);
    return;
  }
  if (retry_budget_ &&
      !retry_budget_->try_withdraw(stack_.loop().now())) {
    // Budget exhausted: stay silent this round but keep the entry armed
    // at the backoff cap — delivery remains eventual, without feeding
    // the retry storm. Attempts only count actual sends.
    stack_.loop().schedule_in(config_.reliable_backoff_cap,
                              [this, ticket] { retransmit(ticket); });
    return;
  }
  ++r.attempts;
  ++stats_.retransmits;
  sock_.send_meta(peer_endpoint(r.peer), r.payload);
  r.backoff = std::min(r.backoff * 2, config_.reliable_backoff_cap);
  stack_.loop().schedule_in(r.backoff, [this, ticket] { retransmit(ticket); });
}

void PeerCache::ack_reliable(std::uint32_t peer, std::uint32_t seq) {
  auto idx = reliable_index_.find(reliable_key(peer, seq));
  if (idx == reliable_index_.end()) return;  // duplicate ack
  auto it = reliable_.find(idx->second);
  if (it != reliable_.end()) {
    // A confirmed delivery is goodput: it earns the budget back a
    // fraction of a retry token.
    if (retry_budget_) retry_budget_->deposit(stack_.loop().now());
    erase_reliable(it);
  }
}

// ---- fetch -------------------------------------------------------------------

Task<std::optional<MsgBuffer>> PeerCache::fetch(std::uint64_t lbn,
                                                std::uint32_t count) {
  std::uint32_t owner = owner_of(lbn);
  auto ip = peer_ip(owner);
  // A fenced agent's ring may be stale: do not route by it at all.
  if (!running_ || fenced_ || !ip || owner == config_.self_id) {
    co_return std::nullopt;
  }

  std::uint32_t seq = next_seq_++;
  std::vector<std::byte> head;
  ByteWriter w(head);
  w.u32(std::uint32_t(PeerMsg::Fetch));
  w.u32(seq);
  w.u64(lbn);
  w.u32(count);
  w.u32(epoch_);
  ++stats_.fetches_sent;

  AwaitCallback<std::optional<MsgBuffer>> waiter([&](auto resolve) {
    auto r = std::make_shared<decltype(resolve)>(std::move(resolve));
    pending_[seq] = PendingFetch{
        lbn, count, [r](std::optional<MsgBuffer> m) { (*r)(std::move(m)); }};
    sock_.send_meta({stack_.primary_ip(), *ip, config_.port}, head);
    stack_.loop().schedule_in(config_.fetch_timeout, [this, seq] {
      auto it = pending_.find(seq);
      if (it == pending_.end()) return;  // reply won
      auto fn = std::move(it->second.fn);
      pending_.erase(it);
      ++stats_.fetch_timeouts;
      fn(std::nullopt);
    });
  });
  std::optional<MsgBuffer> result = co_await waiter;
  if (result && config_.mode == core::PassMode::Original) {
    // Copy-semantics ingress: socket buffer -> application buffer.
    result = sock_.receive_copied(*result);
  }
  co_return result;
}

void PeerCache::push_to_owner(std::uint64_t lbn, std::uint32_t count,
                              const MsgBuffer& chain) {
  if (!running_ || fenced_ || !config_.push_on_miss || !ncache_) return;
  if (count == 0 || count > kExtentBlocks) return;  // one extent per datagram
  std::uint32_t owner = owner_of(lbn);
  if (owner == config_.self_id || !peer_ip(owner)) return;
  std::vector<std::byte> head;
  ByteWriter w(head);
  w.u32(std::uint32_t(PeerMsg::Transfer));
  w.u64(lbn);
  w.u32(count);
  // Version stamps ride along only once a write has touched the run (the
  // receiver tells the two layouts apart by datagram size); all-zero
  // stamps carry no information, and a never-written cluster must put
  // byte-identical traffic on the wire with or without the coherence
  // machinery.
  if (versions_stamped(lbn, count)) {
    for (std::uint32_t i = 0; i < count; ++i) w.u64(version_of(lbn + i));
  }
  // Key-bearing chains materialize at the NIC (the egress interceptor), so
  // the owner receives physical bytes it can ingest.
  sock_.send_data(peer_endpoint(owner), head, chain, sock::Via::Sendfile);
  ++stats_.pushes;
}

// ---- write coherence ---------------------------------------------------------

void PeerCache::broadcast_invalidate(
    const std::vector<std::uint32_t>& lbns) {
  if (!running_ || !config_.enabled || lbns.empty()) return;
  std::uint32_t seq = next_seq_++;
  std::vector<std::byte> head;
  ByteWriter w(head);
  w.u32(std::uint32_t(PeerMsg::Invalidate));
  w.u32(config_.self_id);
  w.u32(epoch_);
  w.u32(seq);
  w.u32(std::uint32_t(lbns.size()));
  for (std::uint32_t lbn : lbns) {
    // The writer's copy is the fresh one; bumping the version here makes
    // every older replica copy provably stale.
    std::uint64_t v = ++versions_[lbn];
    w.u64(lbn);
    w.u64(v);
  }
  // Reliable broadcast to every *configured* peer, not just live ones: a
  // partitioned peer is exactly the one that must eventually hear this,
  // and the retransmit stream delivers it once the cut heals. Iterating
  // the fixed peer list keeps the send order deterministic.
  for (const Peer& p : peers_) {
    if (p.id == config_.self_id) continue;
    send_reliable(p.id, seq, /*digest=*/false, head);
    ++stats_.invalidates_sent;
  }
}

// ---- membership / fencing ----------------------------------------------------

void PeerCache::apply_membership(std::uint32_t epoch,
                                 const std::vector<std::uint32_t>& live) {
  if (!epoch_newer(epoch, epoch_)) {
    ++stats_.stale_epoch_ignored;  // stale or duplicate broadcast
    return;
  }
  // A serial gap means we missed at least one broadcast — and with it,
  // possibly invalidates sent while we were cut off; repair below.
  bool gap = std::uint32_t(epoch - epoch_) > 1;
  bool was_fenced = fenced_;
  epoch_ = epoch;
  ++stats_.membership_updates;
  ring_ = HashRing(config_.vnodes);
  live_.clear();
  for (std::uint32_t id : live) {
    if (!peer_ip(id)) continue;  // unknown member: ignore
    ring_.add_member(id);
    live_.insert(id);
  }
  // The fencing rule: excluded from the newest live set we have seen =>
  // our ring (and possibly our data) is suspect; serve nothing until a
  // newer epoch re-admits us.
  fenced_ = config_.enabled && !live_.contains(config_.self_id);
  if (fenced_) {
    NC_WARN("peer", "agent %u fenced at epoch %u", config_.self_id, epoch_);
  }
  if (ring_.empty() || fenced_ || !running_) return;

  if (ncache_) {
    // Re-home cached chunks the new ring assigns to another live member,
    // so fetches routed by the rebuilt ring hit immediately. lbn_keys()
    // is sorted, which keeps the transfer order deterministic.
    std::size_t moved = 0;
    for (const netbuf::LbnKey& key : ncache_->cache().lbn_keys()) {
      if (key.target != config_.target_id) continue;
      if (moved >= config_.max_transfer_blocks) break;
      std::uint32_t owner = owner_of(key.lbn);
      if (owner == config_.self_id) continue;
      auto chain = ncache_->cache().lookup(netbuf::CacheKey{key});
      if (!chain) continue;
      std::vector<std::byte> head;
      ByteWriter w(head);
      w.u32(std::uint32_t(PeerMsg::Transfer));
      w.u64(key.lbn);
      w.u32(1);
      if (versions_stamped(key.lbn, 1)) w.u64(version_of(key.lbn));
      sock_.send_data(peer_endpoint(owner), head, *chain, sock::Via::Sendfile);
      ++stats_.transfers_sent;
      ++stats_.blocks_transferred;
      ++moved;
    }
  }

  // Rejoining after a fence, or jumping an epoch gap, means invalidates
  // may have been lost to the partition: reconcile versions with the
  // responsible peers before trusting (or serving) the local contents.
  if (was_fenced || gap) run_repair();
}

// ---- anti-entropy repair -----------------------------------------------------

std::vector<std::uint64_t> PeerCache::cached_lbns() const {
  std::vector<std::uint64_t> out;
  if (ncache_) {
    for (const netbuf::LbnKey& key : ncache_->cache().lbn_keys()) {
      if (key.target == config_.target_id) out.push_back(key.lbn);
    }
  }
  if (fs_) {
    for (std::uint64_t lbn : fs_->cache().cached_data_lbns()) {
      out.push_back(lbn);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void PeerCache::run_repair() {
  if (!running_ || !config_.enabled || fenced_) return;
  ++stats_.repair_rounds;
  std::vector<std::uint64_t> lbns = cached_lbns();
  if (lbns.empty()) return;

  // Group each cached LBN under the peer responsible for checking it: the
  // ring owner, or — for extents we own ourselves — the lowest-id other
  // live member (someone must cross-check the owner too). std::map keeps
  // the peer iteration order deterministic.
  std::map<std::uint32_t, std::vector<std::uint64_t>> per_peer;
  for (std::uint64_t lbn : lbns) {
    std::uint32_t peer = owner_of(lbn);
    if (peer == config_.self_id) {
      peer = config_.self_id;
      for (std::uint32_t id : ring_.members()) {  // sorted
        if (id != config_.self_id) {
          peer = id;
          break;
        }
      }
      if (peer == config_.self_id) continue;  // alone in the ring
    }
    if (!live_.contains(peer) || !peer_ip(peer)) continue;
    per_peer[peer].push_back(lbn);
  }

  for (auto& [peer, list] : per_peer) {
    for (std::size_t off = 0; off < list.size(); off += kDigestBatch) {
      std::size_t n = std::min(kDigestBatch, list.size() - off);
      std::uint32_t seq = next_seq_++;
      std::vector<std::byte> head;
      ByteWriter w(head);
      w.u32(std::uint32_t(PeerMsg::DigestRequest));
      w.u32(config_.self_id);
      w.u32(epoch_);
      w.u32(seq);
      w.u32(std::uint32_t(n));
      for (std::size_t i = 0; i < n; ++i) {
        w.u64(list[off + i]);
        w.u64(version_of(list[off + i]));
      }
      // The DIGEST_REPLY doubles as the ack; until every reply is in,
      // repairing() fences our own serving.
      send_reliable(peer, seq, /*digest=*/true, head);
      ++stats_.digests_sent;
    }
  }
}

// ---- local cache plumbing ----------------------------------------------------

bool PeerCache::drop_local(std::uint64_t lbn) {
  bool dropped = false;
  if (fs_ && fs_->cache().discard(lbn)) dropped = true;
  if (ncache_ && ncache_->cache().invalidate_lbn(
                     netbuf::LbnKey{config_.target_id, lbn})) {
    dropped = true;
  }
  return dropped;
}

std::optional<MsgBuffer> PeerCache::local_block(std::uint64_t lbn) {
  if (ncache_ &&
      ncache_->cache().contains_lbn(lbn, config_.target_id)) {
    auto hit = ncache_->cache().lookup(
        netbuf::CacheKey{netbuf::LbnKey{config_.target_id, lbn}});
    if (hit && hit->size() == fs::kBlockSize) return hit;
  }
  if (fs_) {
    auto blk = fs_->cache().peek(lbn);
    if (blk && blk->valid && !blk->metadata &&
        blk->data.size() == fs::kBlockSize && blk->data.fully_physical()) {
      return blk->data;  // ByteSegs share buffers; no copy here
    }
  }
  return std::nullopt;
}

// ---- datagram dispatch -------------------------------------------------------

void PeerCache::on_datagram(proto::Ipv4Addr src_ip, std::uint16_t src_port,
                            proto::Ipv4Addr dst_ip, std::uint16_t /*dst_port*/,
                            MsgBuffer msg) {
  if (!running_ || msg.size() < 4) return;
  auto type_bytes = msg.peek_bytes(4);
  ByteReader tr(type_bytes);
  auto type = PeerMsg(tr.u32());
  switch (type) {
    case PeerMsg::Fetch: {
      if (msg.size() < kFetchHeadBytes) return;
      auto bytes = msg.peek_bytes(kFetchHeadBytes);
      ByteReader head(bytes);
      head.skip(4);
      handle_fetch(src_ip, src_port, dst_ip, head);
      return;
    }
    case PeerMsg::FetchReply: {
      if (msg.size() < kFetchReplyHeadBytes) return;
      // Only the header (+ optional version array) is guaranteed physical
      // — the payload may be a logical key-bearing chain, so peek, never
      // flatten. The version array is omitted while all-zero; datagram
      // size tells the layouts apart (payload is a whole multiple of the
      // block size).
      auto cb = msg.peek_bytes(kFetchReplyHeadBytes);
      ByteReader cr(cb);
      cr.skip(12);
      std::uint32_t count = cr.u32();
      if (count > kExtentBlocks) return;
      bool stamped =
          count > 0 && msg.size() != kFetchReplyHeadBytes +
                                         std::size_t(count) * fs::kBlockSize;
      std::size_t head_bytes =
          kFetchReplyHeadBytes + (stamped ? 8 * std::size_t(count) : 0);
      auto bytes = msg.peek_bytes(std::min(msg.size(), head_bytes));
      ByteReader head(bytes);
      head.skip(4);
      handle_fetch_reply(head, msg, stamped);
      return;
    }
    case PeerMsg::Invalidate: {
      auto bytes = msg.to_bytes();
      ByteReader head(bytes);
      head.skip(4);
      handle_invalidate(head);
      return;
    }
    case PeerMsg::InvalidateAck: {
      if (msg.size() < 12) return;
      auto bytes = msg.peek_bytes(12);
      ByteReader head(bytes);
      head.skip(4);
      handle_invalidate_ack(head);
      return;
    }
    case PeerMsg::Transfer: {
      if (msg.size() < kTransferHeadBytes) return;
      // Peek exactly header + version array (both physical); the payload
      // may be a logical chain and must not be flattened here. The stamp
      // array is optional (omitted while every version is 0) — datagram
      // size tells the layouts apart, unambiguously because the payload
      // is a whole multiple of the block size.
      auto cb = msg.peek_bytes(kTransferHeadBytes);
      ByteReader cr(cb);
      cr.skip(12);
      std::uint32_t count = cr.u32();
      if (count == 0 || count > kExtentBlocks) return;
      bool stamped =
          msg.size() != kTransferHeadBytes + std::size_t(count) * fs::kBlockSize;
      std::size_t head_bytes =
          kTransferHeadBytes + (stamped ? 8 * std::size_t(count) : 0);
      if (msg.size() < head_bytes) return;
      auto bytes = msg.peek_bytes(head_bytes);
      ByteReader head(bytes);
      head.skip(4);
      handle_transfer(head, msg, stamped);
      return;
    }
    case PeerMsg::Membership: {
      auto bytes = msg.to_bytes();
      ByteReader head(bytes);
      head.skip(4);
      handle_membership(head);
      return;
    }
    case PeerMsg::DigestRequest: {
      auto bytes = msg.to_bytes();
      ByteReader head(bytes);
      head.skip(4);
      handle_digest_request(head);
      return;
    }
    case PeerMsg::DigestReply: {
      auto bytes = msg.to_bytes();
      ByteReader head(bytes);
      head.skip(4);
      handle_digest_reply(head);
      return;
    }
    case PeerMsg::Heartbeat: {
      if (msg.size() < 8) return;
      auto bytes = msg.peek_bytes(8);
      ByteReader head(bytes);
      head.skip(4);
      std::uint32_t hb_seq = head.u32();
      std::vector<std::byte> ack;
      ByteWriter w(ack);
      w.u32(std::uint32_t(PeerMsg::HeartbeatAck));
      w.u32(hb_seq);
      w.u32(config_.self_id);
      if (qdepth_probe_) {
        // Piggybacked queue depth for the balancer's admission control —
        // zero extra packets, and zero-suppressed so an idle replica's
        // ack bytes are unchanged from the probe-less wire format.
        std::size_t depth = qdepth_probe_();
        if (depth > 0) w.u32(std::uint32_t(depth));
      }
      ++stats_.heartbeats_answered;
      sock_.send_meta({dst_ip, src_ip, src_port}, ack);
      return;
    }
    case PeerMsg::HeartbeatAck:
      return;  // balancer-side message; not ours
  }
}

void PeerCache::handle_fetch(proto::Ipv4Addr src_ip, std::uint16_t src_port,
                             proto::Ipv4Addr dst_ip, ByteReader& head) {
  std::uint32_t seq = head.u32();
  std::uint64_t lbn = head.u64();
  std::uint32_t count = head.u32();
  std::uint32_t req_epoch = head.u32();

  // Fences first. A fenced or mid-repair agent must not serve at all; a
  // requester ahead of our epoch proves we missed a ring change (our
  // ownership view is suspect); and an extent the *current* local ring
  // assigns elsewhere is not ours to serve even if cached.
  bool refuse = false;
  if (fenced_ || repair_outstanding_ > 0 || epoch_newer(req_epoch, epoch_)) {
    ++stats_.fenced_refusals;
    refuse = true;
  } else if (!is_owner(lbn)) {
    ++stats_.ownership_refusals;
    refuse = true;
  }

  MsgBuffer payload;
  // Fetches are extent-sized by construction (the block client splits
  // multi-extent runs), which also keeps every reply one legal datagram.
  bool all = !refuse && count > 0 && count <= kExtentBlocks;
  for (std::uint32_t i = 0; all && i < count; ++i) {
    auto blk = local_block(lbn + i);
    if (!blk) {
      all = false;
      break;
    }
    payload.append(std::move(*blk));
  }

  std::vector<std::byte> rhead;
  ByteWriter w(rhead);
  w.u32(std::uint32_t(PeerMsg::FetchReply));
  w.u32(seq);
  w.u32(all ? 1 : 0);
  w.u32(all ? count : 0);
  if (all && versions_stamped(lbn, count)) {
    // Per-block versions: the requester rejects anything behind what it
    // already knows, so a stale-but-unfenced server cannot poison it.
    // All-zero stamps are omitted (the requester infers zeros from the
    // datagram size), keeping never-written traffic byte-identical to a
    // version-less cluster.
    for (std::uint32_t i = 0; i < count; ++i) w.u64(version_of(lbn + i));
  }
  sock::UdpSocket::Endpoint ep{dst_ip, src_ip, src_port};
  if (all) {
    ++stats_.serve_hits;
    // The mode seam: Original relays with physical copies, NCache forwards
    // the chain as a logical copy (one crossing — in-kernel agent).
    sock_.send_data(ep, rhead, payload, sock::Via::Sendfile);
  } else {
    ++stats_.serve_misses;
    sock_.send_meta(ep, rhead);
  }
}

void PeerCache::handle_fetch_reply(ByteReader& head, const MsgBuffer& msg,
                                   bool stamped) {
  std::uint32_t seq = head.u32();
  std::uint32_t hit = head.u32();
  std::uint32_t count = head.u32();
  auto it = pending_.find(seq);
  if (it == pending_.end()) return;  // timed out; late reply dropped
  PendingFetch pf = std::move(it->second);
  pending_.erase(it);
  std::size_t head_bytes =
      kFetchReplyHeadBytes + (stamped ? std::size_t(count) * 8 : 0);
  std::size_t want = std::size_t(count) * fs::kBlockSize;
  if (hit != 0 && count > 0 && count <= kExtentBlocks && count == pf.count &&
      msg.size() == head_bytes + want) {
    // Version gate: if any block in the reply lags a version we already
    // know about, the server missed an invalidate — reject the whole
    // extent and let the requester fall through to the target. An
    // unstamped reply means the server knows only version 0 everywhere.
    bool stale = false;
    std::vector<std::uint64_t> vers(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      vers[i] = stamped ? head.u64() : 0;
      if (vers[i] < version_of(pf.lbn + i)) stale = true;
    }
    if (stale) {
      ++stats_.stale_replies_rejected;
      ++stats_.peer_misses;
      pf.fn(std::nullopt);
      return;
    }
    for (std::uint32_t i = 0; i < count; ++i) {
      if (vers[i] > version_of(pf.lbn + i)) versions_[pf.lbn + i] = vers[i];
    }
    ++stats_.peer_hits;
    pf.fn(msg.slice(head_bytes, want));
  } else {
    ++stats_.peer_misses;
    pf.fn(std::nullopt);
  }
}

void PeerCache::handle_invalidate(ByteReader& head) {
  std::uint32_t writer = head.u32();
  head.u32();  // writer's epoch (informational)
  std::uint32_t seq = head.u32();
  std::uint32_t n = head.u32();
  ++stats_.invalidates_received;
  for (std::uint32_t i = 0; i < n && head.remaining() >= 16; ++i) {
    std::uint64_t lbn = head.u64();
    std::uint64_t v = head.u64();
    // Version max-merge: retransmitted duplicates and reordered
    // broadcasts change nothing once the newest version is recorded.
    if (v <= version_of(lbn)) continue;
    versions_[lbn] = v;
    if (drop_local(lbn)) ++stats_.blocks_invalidated;
  }
  if (peer_ip(writer)) {
    std::vector<std::byte> ack;
    ByteWriter w(ack);
    w.u32(std::uint32_t(PeerMsg::InvalidateAck));
    w.u32(config_.self_id);
    w.u32(seq);
    sock_.send_meta(peer_endpoint(writer), ack);
  }
}

void PeerCache::handle_invalidate_ack(ByteReader& head) {
  std::uint32_t acker = head.u32();
  std::uint32_t seq = head.u32();
  ++stats_.invalidate_acks;
  ack_reliable(acker, seq);
}

void PeerCache::handle_transfer(ByteReader& head, const MsgBuffer& msg,
                                bool stamped) {
  if (!ncache_) return;  // nothing to ingest into (Original mode)
  std::uint64_t lbn = head.u64();
  std::uint32_t count = head.u32();
  std::size_t head_bytes =
      kTransferHeadBytes + (stamped ? std::size_t(count) * 8 : 0);
  std::size_t want = std::size_t(count) * fs::kBlockSize;
  if (count == 0 || count > kExtentBlocks ||
      msg.size() != head_bytes + want) {
    return;
  }
  ++stats_.transfers_received;
  MsgBuffer payload = msg.slice(head_bytes, want);
  if (!payload.fully_physical()) return;  // junk/unresolved keys: drop
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint64_t v = stamped ? head.u64() : 0;
    // A push carrying an older version than we know about is stale bytes
    // from before a write we already heard of — drop that block.
    if (v < version_of(lbn + i)) continue;
    if (v > version_of(lbn + i)) versions_[lbn + i] = v;
    // Ingest and discard the key message — nothing travels up here; the
    // point is populating the owner's cache for future fetches.
    (void)ncache_->ingest_lbn(config_.target_id, lbn + i,
                              payload.slice(std::size_t(i) * fs::kBlockSize,
                                            fs::kBlockSize));
  }
}

void PeerCache::handle_membership(ByteReader& head) {
  std::uint32_t epoch = head.u32();
  std::uint32_t n = head.u32();
  std::vector<std::uint32_t> live;
  live.reserve(n);
  for (std::uint32_t i = 0; i < n && head.remaining() >= 4; ++i) {
    live.push_back(head.u32());
  }
  apply_membership(epoch, live);
}

void PeerCache::handle_digest_request(ByteReader& head) {
  std::uint32_t requester = head.u32();
  head.u32();  // requester's epoch (informational)
  std::uint32_t seq = head.u32();
  std::uint32_t n = head.u32();
  if (!peer_ip(requester)) return;

  // Two-way reconciliation: versions the requester is ahead on are
  // max-merged (and our stale copies dropped) right here; versions we are
  // ahead on go back in the reply.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> newer;
  for (std::uint32_t i = 0; i < n && head.remaining() >= 16; ++i) {
    std::uint64_t lbn = head.u64();
    std::uint64_t v = head.u64();
    std::uint64_t mine = version_of(lbn);
    if (v > mine) {
      versions_[lbn] = v;
      if (drop_local(lbn)) ++stats_.repair_drops;
    } else if (mine > v) {
      newer.push_back({lbn, mine});
    }
  }

  std::vector<std::byte> reply;
  ByteWriter w(reply);
  w.u32(std::uint32_t(PeerMsg::DigestReply));
  w.u32(config_.self_id);
  w.u32(seq);
  w.u32(std::uint32_t(newer.size()));
  for (auto& [lbn, v] : newer) {
    w.u64(lbn);
    w.u64(v);
  }
  ++stats_.digests_answered;
  // The reply is the ack for the (reliable) request; a lost reply just
  // provokes an idempotent re-request.
  sock_.send_meta(peer_endpoint(requester), reply);
}

void PeerCache::handle_digest_reply(ByteReader& head) {
  std::uint32_t replier = head.u32();
  std::uint32_t seq = head.u32();
  std::uint32_t n = head.u32();
  ack_reliable(replier, seq);
  for (std::uint32_t i = 0; i < n && head.remaining() >= 16; ++i) {
    std::uint64_t lbn = head.u64();
    std::uint64_t v = head.u64();
    if (v <= version_of(lbn)) continue;
    versions_[lbn] = v;
    if (drop_local(lbn)) ++stats_.repair_drops;
  }
}

void PeerCache::register_metrics(MetricRegistry& registry,
                                 const std::string& node) {
  registry.counter(node, "peer.fetches_sent",
                   [this] { return stats_.fetches_sent; });
  registry.counter(node, "peer.hits", [this] { return stats_.peer_hits; });
  registry.counter(node, "peer.misses", [this] { return stats_.peer_misses; });
  registry.counter(node, "peer.fetch_timeouts",
                   [this] { return stats_.fetch_timeouts; });
  registry.counter(node, "peer.serve_hits",
                   [this] { return stats_.serve_hits; });
  registry.counter(node, "peer.serve_misses",
                   [this] { return stats_.serve_misses; });
  registry.counter(node, "peer.pushes", [this] { return stats_.pushes; });
  registry.counter(node, "peer.invalidates_sent",
                   [this] { return stats_.invalidates_sent; });
  registry.counter(node, "peer.invalidates_received",
                   [this] { return stats_.invalidates_received; });
  registry.counter(node, "peer.blocks_invalidated",
                   [this] { return stats_.blocks_invalidated; });
  registry.counter(node, "peer.transfers_sent",
                   [this] { return stats_.transfers_sent; });
  registry.counter(node, "peer.transfers_received",
                   [this] { return stats_.transfers_received; });
  registry.counter(node, "peer.blocks_transferred",
                   [this] { return stats_.blocks_transferred; });
  registry.counter(node, "peer.membership_updates",
                   [this] { return stats_.membership_updates; });
  registry.counter(node, "peer.heartbeats_answered",
                   [this] { return stats_.heartbeats_answered; });
  registry.counter(node, "peer.retransmits",
                   [this] { return stats_.retransmits; });
  registry.counter(node, "peer.invalidate_acks",
                   [this] { return stats_.invalidate_acks; });
  registry.counter(node, "peer.pending_overflow",
                   [this] { return stats_.pending_overflow; });
  registry.counter(node, "peer.reliable_expired",
                   [this] { return stats_.reliable_expired; });
  registry.counter(node, "peer.fenced_refusals",
                   [this] { return stats_.fenced_refusals; });
  registry.counter(node, "peer.ownership_refusals",
                   [this] { return stats_.ownership_refusals; });
  registry.counter(node, "peer.stale_replies_rejected",
                   [this] { return stats_.stale_replies_rejected; });
  registry.counter(node, "peer.stale_epoch_ignored",
                   [this] { return stats_.stale_epoch_ignored; });
  registry.counter(node, "peer.digests_sent",
                   [this] { return stats_.digests_sent; });
  registry.counter(node, "peer.digests_answered",
                   [this] { return stats_.digests_answered; });
  registry.counter(node, "peer.repair_drops",
                   [this] { return stats_.repair_drops; });
  registry.counter(node, "peer.repair_rounds",
                   [this] { return stats_.repair_rounds; });
  registry.gauge(node, "peer.ring_members",
                 [this] { return double(ring_.member_count()); });
  registry.gauge(node, "peer.epoch", [this] { return double(epoch_); });
  registry.gauge(node, "peer.pending_reliable",
                 [this] { return double(reliable_.size()); });
  registry.on_reset([this] { reset_stats(); });
}

// ---- PeerBlockClient ---------------------------------------------------------

Task<MsgBuffer> PeerBlockClient::read_blocks(std::uint64_t lbn,
                                             std::uint32_t count,
                                             bool metadata) {
  // Metadata is interpreted above us and always classified to the physical
  // path; disabled/stopped peering is a pure fall-through.
  if (metadata || !peers_.enabled() || !peers_.running()) {
    co_return co_await initiator_.read_blocks(lbn, count, metadata);
  }

  if (ncache_) {
    bool all_local = count > 0;
    for (std::uint32_t i = 0; all_local && i < count; ++i) {
      all_local = ncache_->cache().contains_lbn(
          lbn + i, peers_.config().target_id);
    }
    if (all_local) {
      // The initiator's second-level-cache probe serves this without
      // touching the network.
      ++stats_.local_reads;
      co_return co_await initiator_.read_blocks(lbn, count, metadata);
    }
  }

  // Ownership changes every kExtentBlocks, so a run that crosses an extent
  // boundary may belong to several peers; split it and recurse, one extent
  // per piece. This also bounds every fetch/push at one legal datagram
  // (coalesced readahead runs can otherwise exceed the 64 KB UDP limit).
  std::uint64_t extent_end = (lbn / kExtentBlocks + 1) * kExtentBlocks;
  if (lbn + count > extent_end) {
    MsgBuffer out;
    std::uint64_t at = lbn;
    std::uint32_t left = count;
    while (left > 0) {
      auto piece = std::uint32_t(std::min<std::uint64_t>(
          left, (at / kExtentBlocks + 1) * kExtentBlocks - at));
      out.append(co_await read_blocks(at, piece, metadata));
      at += piece;
      left -= piece;
    }
    co_return out;
  }

  if (!peers_.is_owner(lbn)) {
    auto hit = co_await peers_.fetch(lbn, count);
    if (hit) {
      ++stats_.peer_reads;
      if (ncache_) {
        // Populate the local LBN cache and hand keys up, exactly as an
        // initiator ingest would.
        MsgBuffer keys;
        for (std::uint32_t i = 0; i < count; ++i) {
          keys.append(ncache_->ingest_lbn(
              peers_.config().target_id, lbn + i,
              hit->slice(std::size_t(i) * fs::kBlockSize, fs::kBlockSize)));
        }
        co_return keys;
      }
      co_return std::move(*hit);
    }
  }

  ++stats_.target_reads;
  MsgBuffer data = co_await initiator_.read_blocks(lbn, count, metadata);
  if (!peers_.is_owner(lbn)) peers_.push_to_owner(lbn, count, data);
  co_return data;
}

Task<bool> PeerBlockClient::write_blocks(std::uint64_t lbn, MsgBuffer data,
                                         bool metadata) {
  // Writes always go to the target; coherence is the NFS write observer's
  // job (flush then INVALIDATE broadcast), not the block layer's.
  co_return co_await initiator_.write_blocks(lbn, std::move(data), metadata);
}

void PeerBlockClient::register_metrics(MetricRegistry& registry,
                                       const std::string& node) {
  registry.counter(node, "peer.reads_local",
                   [this] { return stats_.local_reads; });
  registry.counter(node, "peer.reads_peer",
                   [this] { return stats_.peer_reads; });
  registry.counter(node, "peer.reads_target",
                   [this] { return stats_.target_reads; });
  registry.on_reset([this] { reset_stats(); });
}

}  // namespace ncache::cluster
