#include "cluster/peer_cache.h"

#include "common/bytes.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "fs/layout.h"

namespace ncache::cluster {

using netbuf::MsgBuffer;

namespace {
constexpr std::size_t kFetchReplyHeadBytes = 16;
constexpr std::size_t kTransferHeadBytes = 16;
}  // namespace

PeerCache::PeerCache(proto::NetworkStack& stack, Config config,
                     std::vector<Peer> peers)
    : stack_(stack),
      config_(config),
      peers_(std::move(peers)),
      sock_(stack, config.mode, config.port),
      ring_(config.vnodes) {
  for (const Peer& p : peers_) {
    ring_.add_member(p.id);
    live_.insert(p.id);
  }
}

void PeerCache::attach(core::NCacheModule* ncache, fs::SimpleFs* fs) {
  ncache_ = ncache;
  fs_ = fs;
}

void PeerCache::start() {
  if (running_) return;
  running_ = true;
  sock_.bind([this](proto::Ipv4Addr sip, std::uint16_t sport,
                    proto::Ipv4Addr dip, std::uint16_t dport, MsgBuffer msg) {
    on_datagram(sip, sport, dip, dport, std::move(msg));
  });
}

void PeerCache::stop() {
  if (!running_) return;
  running_ = false;
  sock_.unbind();
  // Fail outstanding fetches so their daemons fall through to the target
  // instead of parking until teardown.
  auto pending = std::move(pending_);
  pending_.clear();
  for (auto& [seq, fn] : pending) fn(std::nullopt);
}

std::uint32_t PeerCache::owner_of(std::uint64_t lbn) const {
  return ring_.owner(HashRing::mix64(lbn / kExtentBlocks));
}

std::optional<proto::Ipv4Addr> PeerCache::peer_ip(std::uint32_t id) const {
  for (const Peer& p : peers_) {
    if (p.id == id) return p.ip;
  }
  return std::nullopt;
}

sock::UdpSocket::Endpoint PeerCache::peer_endpoint(std::uint32_t id) const {
  return {stack_.primary_ip(), *peer_ip(id), config_.port};
}

Task<std::optional<MsgBuffer>> PeerCache::fetch(std::uint64_t lbn,
                                                std::uint32_t count) {
  std::uint32_t owner = owner_of(lbn);
  auto ip = peer_ip(owner);
  if (!running_ || !ip || owner == config_.self_id) co_return std::nullopt;

  std::uint32_t seq = next_seq_++;
  std::vector<std::byte> head;
  ByteWriter w(head);
  w.u32(std::uint32_t(PeerMsg::Fetch));
  w.u32(seq);
  w.u64(lbn);
  w.u32(count);
  ++stats_.fetches_sent;

  AwaitCallback<std::optional<MsgBuffer>> waiter([&](auto resolve) {
    auto r = std::make_shared<decltype(resolve)>(std::move(resolve));
    pending_[seq] = [r](std::optional<MsgBuffer> m) { (*r)(std::move(m)); };
    sock_.send_meta({stack_.primary_ip(), *ip, config_.port}, head);
    stack_.loop().schedule_in(config_.fetch_timeout, [this, seq] {
      auto it = pending_.find(seq);
      if (it == pending_.end()) return;  // reply won
      auto fn = std::move(it->second);
      pending_.erase(it);
      ++stats_.fetch_timeouts;
      fn(std::nullopt);
    });
  });
  std::optional<MsgBuffer> result = co_await waiter;
  if (result && config_.mode == core::PassMode::Original) {
    // Copy-semantics ingress: socket buffer -> application buffer.
    result = sock_.receive_copied(*result);
  }
  co_return result;
}

void PeerCache::push_to_owner(std::uint64_t lbn, std::uint32_t count,
                              const MsgBuffer& chain) {
  if (!running_ || !config_.push_on_miss || !ncache_) return;
  if (count == 0 || count > kExtentBlocks) return;  // one extent per datagram
  std::uint32_t owner = owner_of(lbn);
  if (owner == config_.self_id || !peer_ip(owner)) return;
  std::vector<std::byte> head;
  ByteWriter w(head);
  w.u32(std::uint32_t(PeerMsg::Transfer));
  w.u64(lbn);
  w.u32(count);
  // Key-bearing chains materialize at the NIC (the egress interceptor), so
  // the owner receives physical bytes it can ingest.
  sock_.send_data(peer_endpoint(owner), head, chain, sock::Via::Sendfile);
  ++stats_.pushes;
}

void PeerCache::broadcast_invalidate(
    const std::vector<std::uint32_t>& lbns) {
  if (!running_ || !config_.enabled || lbns.empty()) return;
  std::vector<std::byte> head;
  ByteWriter w(head);
  w.u32(std::uint32_t(PeerMsg::Invalidate));
  w.u32(std::uint32_t(lbns.size()));
  for (std::uint32_t lbn : lbns) w.u64(lbn);
  // Iterate the fixed peer list (not the unordered live set) so the send
  // order is deterministic.
  for (const Peer& p : peers_) {
    if (p.id == config_.self_id || !live_.contains(p.id)) continue;
    sock_.send_meta({stack_.primary_ip(), p.ip, config_.port}, head);
    ++stats_.invalidates_sent;
  }
}

void PeerCache::apply_membership(std::uint32_t epoch,
                                 const std::vector<std::uint32_t>& live) {
  if (epoch <= epoch_) return;  // stale or duplicate broadcast
  epoch_ = epoch;
  ++stats_.membership_updates;
  ring_ = HashRing(config_.vnodes);
  live_.clear();
  for (std::uint32_t id : live) {
    if (!peer_ip(id)) continue;  // unknown member: ignore
    ring_.add_member(id);
    live_.insert(id);
  }
  if (ring_.empty() || !ncache_ || !running_) return;

  // Re-home cached chunks the new ring assigns to another live member, so
  // fetches routed by the rebuilt ring hit immediately. lbn_keys() is
  // sorted, which keeps the transfer order deterministic.
  std::size_t moved = 0;
  for (const netbuf::LbnKey& key : ncache_->cache().lbn_keys()) {
    if (key.target != config_.target_id) continue;
    if (moved >= config_.max_transfer_blocks) break;
    std::uint32_t owner = owner_of(key.lbn);
    if (owner == config_.self_id) continue;
    auto chain = ncache_->cache().lookup(netbuf::CacheKey{key});
    if (!chain) continue;
    std::vector<std::byte> head;
    ByteWriter w(head);
    w.u32(std::uint32_t(PeerMsg::Transfer));
    w.u64(key.lbn);
    w.u32(1);
    sock_.send_data(peer_endpoint(owner), head, *chain, sock::Via::Sendfile);
    ++stats_.transfers_sent;
    ++stats_.blocks_transferred;
    ++moved;
  }
}

std::optional<MsgBuffer> PeerCache::local_block(std::uint64_t lbn) {
  if (ncache_ &&
      ncache_->cache().contains_lbn(lbn, config_.target_id)) {
    auto hit = ncache_->cache().lookup(
        netbuf::CacheKey{netbuf::LbnKey{config_.target_id, lbn}});
    if (hit && hit->size() == fs::kBlockSize) return hit;
  }
  if (fs_) {
    auto blk = fs_->cache().peek(lbn);
    if (blk && blk->valid && !blk->metadata &&
        blk->data.size() == fs::kBlockSize && blk->data.fully_physical()) {
      return blk->data;  // ByteSegs share buffers; no copy here
    }
  }
  return std::nullopt;
}

void PeerCache::on_datagram(proto::Ipv4Addr src_ip, std::uint16_t src_port,
                            proto::Ipv4Addr dst_ip, std::uint16_t /*dst_port*/,
                            MsgBuffer msg) {
  if (!running_ || msg.size() < 4) return;
  auto type_bytes = msg.peek_bytes(4);
  ByteReader tr(type_bytes);
  auto type = PeerMsg(tr.u32());
  switch (type) {
    case PeerMsg::Fetch: {
      if (msg.size() < 20) return;
      auto bytes = msg.peek_bytes(20);
      ByteReader head(bytes);
      head.skip(4);
      handle_fetch(src_ip, src_port, dst_ip, head);
      return;
    }
    case PeerMsg::FetchReply: {
      if (msg.size() < kFetchReplyHeadBytes) return;
      auto bytes = msg.peek_bytes(kFetchReplyHeadBytes);
      ByteReader head(bytes);
      head.skip(4);
      handle_fetch_reply(head, msg);
      return;
    }
    case PeerMsg::Invalidate: {
      auto bytes = msg.to_bytes();
      ByteReader head(bytes);
      head.skip(4);
      handle_invalidate(head);
      return;
    }
    case PeerMsg::Transfer: {
      if (msg.size() < kTransferHeadBytes) return;
      auto bytes = msg.peek_bytes(kTransferHeadBytes);
      ByteReader head(bytes);
      head.skip(4);
      handle_transfer(head, msg);
      return;
    }
    case PeerMsg::Membership: {
      auto bytes = msg.to_bytes();
      ByteReader head(bytes);
      head.skip(4);
      handle_membership(head);
      return;
    }
    case PeerMsg::Heartbeat: {
      if (msg.size() < 8) return;
      auto bytes = msg.peek_bytes(8);
      ByteReader head(bytes);
      head.skip(4);
      std::uint32_t hb_seq = head.u32();
      std::vector<std::byte> ack;
      ByteWriter w(ack);
      w.u32(std::uint32_t(PeerMsg::HeartbeatAck));
      w.u32(hb_seq);
      w.u32(config_.self_id);
      ++stats_.heartbeats_answered;
      sock_.send_meta({dst_ip, src_ip, src_port}, ack);
      return;
    }
    case PeerMsg::HeartbeatAck:
      return;  // balancer-side message; not ours
  }
}

void PeerCache::handle_fetch(proto::Ipv4Addr src_ip, std::uint16_t src_port,
                             proto::Ipv4Addr dst_ip, ByteReader& head) {
  std::uint32_t seq = head.u32();
  std::uint64_t lbn = head.u64();
  std::uint32_t count = head.u32();

  MsgBuffer payload;
  // Fetches are extent-sized by construction (the block client splits
  // multi-extent runs), which also keeps every reply one legal datagram.
  bool all = count > 0 && count <= kExtentBlocks;
  for (std::uint32_t i = 0; all && i < count; ++i) {
    auto blk = local_block(lbn + i);
    if (!blk) {
      all = false;
      break;
    }
    payload.append(std::move(*blk));
  }

  std::vector<std::byte> rhead;
  ByteWriter w(rhead);
  w.u32(std::uint32_t(PeerMsg::FetchReply));
  w.u32(seq);
  w.u32(all ? 1 : 0);
  w.u32(all ? count : 0);
  sock::UdpSocket::Endpoint ep{dst_ip, src_ip, src_port};
  if (all) {
    ++stats_.serve_hits;
    // The mode seam: Original relays with physical copies, NCache forwards
    // the chain as a logical copy (one crossing — in-kernel agent).
    sock_.send_data(ep, rhead, payload, sock::Via::Sendfile);
  } else {
    ++stats_.serve_misses;
    sock_.send_meta(ep, rhead);
  }
}

void PeerCache::handle_fetch_reply(ByteReader& head, const MsgBuffer& msg) {
  std::uint32_t seq = head.u32();
  std::uint32_t hit = head.u32();
  std::uint32_t count = head.u32();
  auto it = pending_.find(seq);
  if (it == pending_.end()) return;  // timed out; late reply dropped
  auto fn = std::move(it->second);
  pending_.erase(it);
  std::size_t want = std::size_t(count) * fs::kBlockSize;
  if (hit != 0 && count > 0 && msg.size() == kFetchReplyHeadBytes + want) {
    ++stats_.peer_hits;
    fn(msg.slice(kFetchReplyHeadBytes, want));
  } else {
    ++stats_.peer_misses;
    fn(std::nullopt);
  }
}

void PeerCache::handle_invalidate(ByteReader& head) {
  ++stats_.invalidates_received;
  std::uint32_t n = head.u32();
  for (std::uint32_t i = 0; i < n && head.remaining() >= 8; ++i) {
    std::uint64_t lbn = head.u64();
    bool dropped = false;
    if (fs_ && fs_->cache().discard(lbn)) dropped = true;
    if (ncache_ && ncache_->cache().invalidate_lbn(
                       netbuf::LbnKey{config_.target_id, lbn})) {
      dropped = true;
    }
    if (dropped) ++stats_.blocks_invalidated;
  }
}

void PeerCache::handle_transfer(ByteReader& head, const MsgBuffer& msg) {
  if (!ncache_) return;  // nothing to ingest into (Original mode)
  std::uint64_t lbn = head.u64();
  std::uint32_t count = head.u32();
  std::size_t want = std::size_t(count) * fs::kBlockSize;
  if (count == 0 || msg.size() != kTransferHeadBytes + want) return;
  ++stats_.transfers_received;
  MsgBuffer payload = msg.slice(kTransferHeadBytes, want);
  if (!payload.fully_physical()) return;  // junk/unresolved keys: drop
  for (std::uint32_t i = 0; i < count; ++i) {
    // Ingest and discard the key message — nothing travels up here; the
    // point is populating the owner's cache for future fetches.
    (void)ncache_->ingest_lbn(config_.target_id, lbn + i,
                              payload.slice(std::size_t(i) * fs::kBlockSize,
                                            fs::kBlockSize));
  }
}

void PeerCache::handle_membership(ByteReader& head) {
  std::uint32_t epoch = head.u32();
  std::uint32_t n = head.u32();
  std::vector<std::uint32_t> live;
  live.reserve(n);
  for (std::uint32_t i = 0; i < n && head.remaining() >= 4; ++i) {
    live.push_back(head.u32());
  }
  apply_membership(epoch, live);
}

void PeerCache::register_metrics(MetricRegistry& registry,
                                 const std::string& node) {
  registry.counter(node, "peer.fetches_sent",
                   [this] { return stats_.fetches_sent; });
  registry.counter(node, "peer.hits", [this] { return stats_.peer_hits; });
  registry.counter(node, "peer.misses", [this] { return stats_.peer_misses; });
  registry.counter(node, "peer.fetch_timeouts",
                   [this] { return stats_.fetch_timeouts; });
  registry.counter(node, "peer.serve_hits",
                   [this] { return stats_.serve_hits; });
  registry.counter(node, "peer.serve_misses",
                   [this] { return stats_.serve_misses; });
  registry.counter(node, "peer.pushes", [this] { return stats_.pushes; });
  registry.counter(node, "peer.invalidates_sent",
                   [this] { return stats_.invalidates_sent; });
  registry.counter(node, "peer.invalidates_received",
                   [this] { return stats_.invalidates_received; });
  registry.counter(node, "peer.blocks_invalidated",
                   [this] { return stats_.blocks_invalidated; });
  registry.counter(node, "peer.transfers_sent",
                   [this] { return stats_.transfers_sent; });
  registry.counter(node, "peer.transfers_received",
                   [this] { return stats_.transfers_received; });
  registry.counter(node, "peer.blocks_transferred",
                   [this] { return stats_.blocks_transferred; });
  registry.counter(node, "peer.membership_updates",
                   [this] { return stats_.membership_updates; });
  registry.counter(node, "peer.heartbeats_answered",
                   [this] { return stats_.heartbeats_answered; });
  registry.gauge(node, "peer.ring_members",
                 [this] { return double(ring_.member_count()); });
  registry.gauge(node, "peer.epoch", [this] { return double(epoch_); });
  registry.on_reset([this] { reset_stats(); });
}

// ---- PeerBlockClient ---------------------------------------------------------

Task<MsgBuffer> PeerBlockClient::read_blocks(std::uint64_t lbn,
                                             std::uint32_t count,
                                             bool metadata) {
  // Metadata is interpreted above us and always classified to the physical
  // path; disabled/stopped peering is a pure fall-through.
  if (metadata || !peers_.enabled() || !peers_.running()) {
    co_return co_await initiator_.read_blocks(lbn, count, metadata);
  }

  if (ncache_) {
    bool all_local = count > 0;
    for (std::uint32_t i = 0; all_local && i < count; ++i) {
      all_local = ncache_->cache().contains_lbn(
          lbn + i, peers_.config().target_id);
    }
    if (all_local) {
      // The initiator's second-level-cache probe serves this without
      // touching the network.
      ++stats_.local_reads;
      co_return co_await initiator_.read_blocks(lbn, count, metadata);
    }
  }

  // Ownership changes every kExtentBlocks, so a run that crosses an extent
  // boundary may belong to several peers; split it and recurse, one extent
  // per piece. This also bounds every fetch/push at one legal datagram
  // (coalesced readahead runs can otherwise exceed the 64 KB UDP limit).
  std::uint64_t extent_end = (lbn / kExtentBlocks + 1) * kExtentBlocks;
  if (lbn + count > extent_end) {
    MsgBuffer out;
    std::uint64_t at = lbn;
    std::uint32_t left = count;
    while (left > 0) {
      auto piece = std::uint32_t(std::min<std::uint64_t>(
          left, (at / kExtentBlocks + 1) * kExtentBlocks - at));
      out.append(co_await read_blocks(at, piece, metadata));
      at += piece;
      left -= piece;
    }
    co_return out;
  }

  if (!peers_.is_owner(lbn)) {
    auto hit = co_await peers_.fetch(lbn, count);
    if (hit) {
      ++stats_.peer_reads;
      if (ncache_) {
        // Populate the local LBN cache and hand keys up, exactly as an
        // initiator ingest would.
        MsgBuffer keys;
        for (std::uint32_t i = 0; i < count; ++i) {
          keys.append(ncache_->ingest_lbn(
              peers_.config().target_id, lbn + i,
              hit->slice(std::size_t(i) * fs::kBlockSize, fs::kBlockSize)));
        }
        co_return keys;
      }
      co_return std::move(*hit);
    }
  }

  ++stats_.target_reads;
  MsgBuffer data = co_await initiator_.read_blocks(lbn, count, metadata);
  if (!peers_.is_owner(lbn)) peers_.push_to_owner(lbn, count, data);
  co_return data;
}

Task<bool> PeerBlockClient::write_blocks(std::uint64_t lbn, MsgBuffer data,
                                         bool metadata) {
  // Writes always go to the target; coherence is the NFS write observer's
  // job (flush then INVALIDATE broadcast), not the block layer's.
  co_return co_await initiator_.write_blocks(lbn, std::move(data), metadata);
}

void PeerBlockClient::register_metrics(MetricRegistry& registry,
                                       const std::string& node) {
  registry.counter(node, "peer.reads_local",
                   [this] { return stats_.local_reads; });
  registry.counter(node, "peer.reads_peer",
                   [this] { return stats_.peer_reads; });
  registry.counter(node, "peer.reads_target",
                   [this] { return stats_.target_reads; });
  registry.on_reset([this] { reset_stats(); });
}

}  // namespace ncache::cluster
