#include "http/khttpd.h"

#include "common/logging.h"
#include "common/metrics.h"

namespace ncache::http {

using core::PassMode;
using netbuf::MsgBuffer;

KHttpd::KHttpd(proto::NetworkStack& stack, fs::SimpleFs& fs, Config config,
               core::NCacheModule* ncache)
    : stack_(stack), fs_(fs), config_(config), ncache_(ncache) {
  if (config_.mode == PassMode::NCache && !ncache_) {
    throw std::invalid_argument("KHttpd: NCache mode requires the module");
  }
}

void KHttpd::start() {
  stack_.tcp_listen(config_.port, [this](proto::TcpConnectionPtr c) {
    on_accept(std::move(c));
  });
}

void KHttpd::register_metrics(MetricRegistry& registry,
                              const std::string& node) {
  registry.counter(node, "http.requests", [this] { return stats_.requests; });
  registry.counter(node, "http.responses_200",
                   [this] { return stats_.responses_200; });
  registry.counter(node, "http.responses_404",
                   [this] { return stats_.responses_404; });
  registry.counter(node, "http.responses_400",
                   [this] { return stats_.responses_400; });
  registry.bytes(node, "http.body_bytes",
                 [this] { return stats_.body_bytes; });
  registry.counter(node, "http.connections",
                   [this] { return stats_.connections; });
  if (config_.overload.enabled) {
    // Overload-only metrics register only when the feature is on, so a
    // disabled run's metrics JSON stays byte-identical to the seed.
    registry.counter(node, "http.responses_503",
                     [this] { return stats_.responses_503; });
    registry.counter(node, "overload.shed", [this] { return stats_.shed; });
    registry.counter(node, "overload.conn_rejects",
                     [this] { return stats_.conn_rejects; });
    registry.histogram(node, "overload.sojourn", &sojourn_);
  }
  registry.on_reset([this] { reset_stats(); });
}

void KHttpd::on_accept(proto::TcpConnectionPtr conn) {
  const OverloadConfig& ov = config_.overload;
  if (ov.enabled && connections_.size() >= ov.max_connections) {
    // Accept-queue overflow: refuse before allocating any per-connection
    // state — the cheapest point to shed a whole client.
    ++stats_.conn_rejects;
    conn->reset();
    return;
  }
  ++stats_.connections;
  // RSS: a connection's requests all run on the core its 4-tuple hashes
  // to (identically 0 on a K=1 model).
  unsigned core = stack_.cpu().steer(
      (std::uint64_t(conn->remote_ip()) << 16) ^ conn->remote_port());
  stack_.cpu().charge_on(core, stack_.costs().tcp_connection_ns);
  auto c = std::make_shared<Connection>(*this, std::move(conn));
  c->core = core;
  // Weak: the handler slots live on the connection and the Connection
  // holds that connection — strong captures would tie a cycle.
  // connections_ owns it; in-flight responses pin it via shared_from_this.
  std::weak_ptr<Connection> weak = c;
  c->sock.conn().set_data_handler([weak](MsgBuffer m) {
    if (auto s = weak.lock()) s->on_data(std::move(m));
  });
  c->sock.conn().set_on_close([this, weak] {
    if (auto s = weak.lock()) std::erase(connections_, s);
  });
  connections_.push_back(std::move(c));
}

void KHttpd::Connection::on_data(MsgBuffer m) {
  // Requests are tiny (one MTU); header bytes are interpreted, i.e.
  // metadata: parse them out of the socket without a counted data copy.
  auto bytes = m.to_bytes();
  inbox.append(reinterpret_cast<const char*>(bytes.data()), bytes.size());

  // Parse complete requests ("\r\n\r\n"-terminated).
  std::size_t pos;
  while ((pos = inbox.find("\r\n\r\n")) != std::string::npos) {
    std::string head = inbox.substr(0, pos);
    inbox.erase(0, pos + 4);
    ++server.stats_.requests;

    // Request line: METHOD SP PATH SP VERSION
    std::size_t sp1 = head.find(' ');
    std::size_t sp2 = head.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos ||
        head.substr(0, sp1) != "GET") {
      ++server.stats_.responses_400;
      sock.send_meta("HTTP/1.1 400 Bad Request\r\nContent-Length: 0\r\n\r\n");
      continue;
    }
    if (head.find("Connection: close") != std::string::npos) {
      close_after = true;  // HTTP/1.0-style non-persistent connection
    }
    const OverloadConfig& ov = server.config_.overload;
    if (ov.enabled && pipeline.size() >= ov.pipeline_limit) {
      // Pipeline cap: answer 503 immediately instead of queueing — the
      // reject costs one metadata send, no fs work.
      ++server.stats_.responses_503;
      ++server.stats_.shed;
      sock.send_meta(
          "HTTP/1.1 503 Service Unavailable\r\nContent-Length: 0\r\n\r\n");
      continue;
    }
    pipeline.push_back(PendingRequest{head.substr(sp1 + 1, sp2 - sp1 - 1),
                                      server.stack_.loop().now()});
  }
  pump();
}

void KHttpd::Connection::pump() {
  if (busy) return;
  const OverloadConfig& ov = server.config_.overload;
  while (!pipeline.empty()) {
    PendingRequest req = std::move(pipeline.front());
    pipeline.pop_front();
    if (ov.enabled) {
      const sim::Time now = server.stack_.loop().now();
      const std::uint64_t sojourn = now - req.enqueued_at;
      server.sojourn_.record(sojourn);
      if (codel.on_dequeue(now, sojourn)) {
        // Sojourn above target for a full interval: shed with a cheap 503
        // and keep draining until CoDel lets one through.
        ++server.stats_.responses_503;
        ++server.stats_.shed;
        sock.send_meta(
            "HTTP/1.1 503 Service Unavailable\r\nContent-Length: 0\r\n\r\n");
        continue;
      }
    }
    busy = true;
    serve_and_continue(std::move(req.path))
        .detach(server.stack_.loop().reaper());
    return;
  }
}

Task<void> KHttpd::Connection::serve_and_continue(std::string path) {
  auto self = shared_from_this();  // outlive the TCP connection's handlers
  co_await serve(std::move(path));
  busy = false;
  if (close_after && pipeline.empty()) {
    server.stack_.cpu().charge_on(core,
                                  server.stack_.costs().tcp_connection_ns / 2);
    sock.conn().close();
    co_return;
  }
  pump();
}

Task<std::optional<std::uint32_t>> KHttpd::resolve(std::string_view path) {
  std::uint32_t at = fs::kRootIno;
  std::size_t pos = 0;
  if (!path.empty() && path[0] == '/') pos = 1;
  while (pos < path.size()) {
    std::size_t next = path.find('/', pos);
    if (next == std::string_view::npos) next = path.size();
    std::string_view part = path.substr(pos, next - pos);
    if (!part.empty()) {
      auto found = co_await fs_.lookup(at, part);
      if (!found) co_return std::nullopt;
      at = *found;
    }
    pos = next + 1;
  }
  if (at == fs::kRootIno) co_return std::nullopt;  // directory index: none
  co_return at;
}

Task<void> KHttpd::Connection::serve(std::string path) {
  auto& stack = server.stack_;
  // Per-request server work (parse, dentry walk, socket bookkeeping) on
  // the connection's steered core.
  co_await stack.cpu().run_on(core, stack.costs().request_ns);

  auto ino = co_await server.resolve(path);
  if (!ino) {
    ++server.stats_.responses_404;
    sock.send_meta("HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\n");
    co_return;
  }
  fs::FileAttr attr = co_await server.fs_.getattr(*ino);
  if (attr.type != fs::InodeType::File) {
    ++server.stats_.responses_404;
    sock.send_meta("HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\n");
    co_return;
  }

  ++server.stats_.responses_200;
  std::string head = "HTTP/1.1 200 OK\r\nServer: kHTTPd-sim\r\nContent-Length: " +
                     std::to_string(attr.size) + "\r\n\r\n";
  // Reply headers pass through the normal (metadata) path (§4.3: "for
  // packets carrying HTTP reply headers, NCache lets them go through").
  sock.send_meta(head);

  // sendfile loop: move the body chunk-by-chunk from the fs cache to the
  // socket. One boundary crossing per chunk; the socket's PassMode picks
  // the semantics (one physical copy / logical keys / junk — Table 2).
  std::uint64_t off = 0;
  while (off < attr.size) {
    auto want = std::uint32_t(std::min<std::uint64_t>(
        server.config_.chunk_bytes, attr.size - off));
    MsgBuffer data = co_await server.fs_.read(*ino, off, want);
    if (data.size() != want) {
      sock.conn().reset();  // truncated file mid-response: abort
      co_return;
    }
    // The fs await dropped the core context; sendfile's copy charges
    // belong to the connection's steered core.
    sim::CpuModel::CoreGuard on_core(stack.cpu(), core);
    server.stats_.body_bytes += sock.send_data(data, sock::Via::Sendfile);
    off += want;
  }
}

}  // namespace ncache::http
