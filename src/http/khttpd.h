// kHTTPd: the in-kernel static web server (§4.3), second pass-through
// application of NCache.
//
// Serves GET requests for static files over TCP with keep-alive. The data
// path per mode:
//   * Original — the sendfile() path: ONE copy per request, page cache ->
//     socket (Table 2: kHTTPd hit = 1 copy, miss = 2 with the initiator's);
//   * NCache — response headers pass through untouched; body blocks travel
//     as keys and are substituted at the NIC ("for packets associated with
//     web page contents, NCache retrieves the real content from its own
//     cache and substitutes them", §4.3);
//   * Baseline — body elided (junk), the zero-copy yardstick.
#pragma once

#include <deque>

#include "common/overload.h"
#include "common/stats.h"
#include "core/ncache_module.h"
#include "core/pass_mode.h"
#include "fs/simple_fs.h"
#include "proto/stack.h"
#include "sock/socket.h"

namespace ncache {
class MetricRegistry;
}

namespace ncache::http {

struct KHttpdStats {
  std::uint64_t requests = 0;
  std::uint64_t responses_200 = 0;
  std::uint64_t responses_404 = 0;
  std::uint64_t responses_400 = 0;
  std::uint64_t body_bytes = 0;
  std::uint64_t connections = 0;
  std::uint64_t responses_503 = 0;  ///< shed with 503 (overload enabled)
  std::uint64_t shed = 0;           ///< pipeline-cap + CoDel sheds
  std::uint64_t conn_rejects = 0;   ///< accepts refused at the cap
};

class KHttpd {
 public:
  /// Overload-control knobs, all off by default (disabled runs stay
  /// byte-identical). Sheds answer with a cheap 503 before any fs work.
  struct OverloadConfig {
    bool enabled = false;
    std::size_t max_connections = 4096;  ///< accepts refused past this
    std::size_t pipeline_limit = 64;     ///< queued requests per connection
    overload::CoDelState::Config codel;  ///< sojourn shed on the pipeline
  };

  struct Config {
    core::PassMode mode = core::PassMode::Original;
    std::uint16_t port = 80;
    /// sendfile chunk: how much file data each fs read moves.
    std::uint32_t chunk_bytes = 64 * 1024;
    OverloadConfig overload;
  };

  KHttpd(proto::NetworkStack& stack, fs::SimpleFs& fs, Config config,
         core::NCacheModule* ncache = nullptr);

  void start();

  const KHttpdStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept {
    stats_ = KHttpdStats{};
    sojourn_.reset();
  }
  core::PassMode mode() const noexcept { return config_.mode; }

  /// Publishes http.* request counters under `node` and hooks reset_stats()
  /// into the registry reset.
  void register_metrics(MetricRegistry& registry, const std::string& node);

 private:
  struct PendingRequest {
    std::string path;
    sim::Time enqueued_at = 0;  ///< arrival time (sojourn measurement)
  };

  struct Connection : std::enable_shared_from_this<Connection> {
    Connection(KHttpd& s, proto::TcpConnectionPtr c)
        : server(s),
          sock(s.stack_, s.config_.mode, std::move(c)),
          codel(s.config_.overload.codel) {}

    KHttpd& server;
    /// The extended socket interface (§4): all response egress — headers
    /// via the metadata path, body via the mode seam — goes through here.
    sock::TcpSocket sock;
    unsigned core = 0;  ///< RSS-steered core (hash of the TCP 4-tuple)
    std::string inbox;        ///< accumulated request bytes
    bool busy = false;        ///< a request is being served
    bool close_after = false; ///< client sent Connection: close
    std::deque<PendingRequest> pipeline;  ///< parsed paths awaiting service
    overload::CoDelState codel;  ///< per-connection sojourn control law

    void on_data(netbuf::MsgBuffer m);
    void pump();
    Task<void> serve(std::string path);
    /// Root coroutine per request: keeps the connection alive, serves,
    /// then pumps the pipeline.
    Task<void> serve_and_continue(std::string path);
  };

  void on_accept(proto::TcpConnectionPtr conn);
  /// Resolves an URL path ("/a/b.html") to an inode.
  Task<std::optional<std::uint32_t>> resolve(std::string_view path);

  proto::NetworkStack& stack_;
  fs::SimpleFs& fs_;
  Config config_;
  core::NCacheModule* ncache_;
  KHttpdStats stats_;
  LatencyHistogram sojourn_;  ///< pipeline sojourn (overload enabled only)
  std::vector<std::shared_ptr<Connection>> connections_;
};

}  // namespace ncache::http
