#include "http/client.h"

#include "common/logging.h"

namespace ncache::http {

using netbuf::CopyClass;
using netbuf::MsgBuffer;

HttpClient::HttpClient(proto::NetworkStack& stack, proto::Ipv4Addr local_ip,
                       proto::Ipv4Addr server_ip, std::uint16_t server_port)
    : stack_(stack),
      local_ip_(local_ip),
      server_ip_(server_ip),
      server_port_(server_port) {}

Task<bool> HttpClient::connect() {
  // Socket setup cost on the client host.
  stack_.cpu().charge(stack_.costs().tcp_connection_ns);
  conn_ = co_await stack_.tcp_connect(local_ip_, server_ip_, server_port_);
  conn_->set_data_handler([this](MsgBuffer m) { on_data(std::move(m)); });
  co_return conn_->established();
}

void HttpClient::on_data(MsgBuffer m) {
  auto finish_response = [this] {
    in_body_ = false;
    Response r;
    r.status = status_;
    r.content_length = body_acc_.size();
    r.junk = body_acc_.has_junk() || body_acc_.has_keys();
    if (r.junk) {
      r.body = std::move(body_acc_);
    } else if (!body_acc_.empty()) {
      // Application copy-out, charged to the client CPU.
      r.body = stack_.copier().copy_message(body_acc_,
                                            CopyClass::RegularData);
    }
    body_acc_.clear();
    auto w = std::move(waiter_);
    waiter_ = nullptr;
    if (w) w(std::move(r));
  };

  while (!m.empty() || (in_body_ && body_need_ == 0)) {
    if (!in_body_) {
      // Headers are physical bytes; scan for the blank line.
      auto bytes = m.to_bytes();
      header_acc_.append(reinterpret_cast<const char*>(bytes.data()),
                         bytes.size());
      std::size_t pos = header_acc_.find("\r\n\r\n");
      if (pos == std::string::npos) return;  // need more header bytes

      // Any bytes past the blank line belong to the body.
      std::size_t consumed_now = header_acc_.size() - (pos + 4);
      std::string head = header_acc_.substr(0, pos);
      header_acc_.clear();

      // Status line: HTTP/1.1 NNN ...
      status_ = 0;
      if (std::size_t sp = head.find(' '); sp != std::string::npos) {
        status_ = std::atoi(head.c_str() + sp + 1);
      }
      body_need_ = 0;
      // Content-Length header (case-sensitive; our server emits it).
      if (std::size_t cl = head.find("Content-Length: ");
          cl != std::string::npos) {
        body_need_ = std::strtoull(head.c_str() + cl + 16, nullptr, 10);
      }
      in_body_ = true;
      body_acc_.clear();
      // Re-slice the tail of this chunk as body bytes.
      m = m.slice(m.size() - consumed_now, consumed_now);
      continue;
    }

    std::uint64_t take = std::min<std::uint64_t>(m.size(), body_need_);
    body_acc_.append(m.slice(0, take));
    m = m.slice(take, m.size() - take);
    body_need_ -= take;
    if (body_need_ == 0) finish_response();
  }
}

Task<HttpClient::Response> HttpClient::read_response() {
  AwaitCallback<Response> awaiter([this](auto resolve) {
    auto r = std::make_shared<decltype(resolve)>(std::move(resolve));
    waiter_ = [r](Response resp) { (*r)(std::move(resp)); };
  });
  co_return co_await awaiter;
}

Task<HttpClient::Response> HttpClient::get(std::string_view path) {
  if (per_request_conn_) {
    bool ok = co_await connect();
    if (!ok) {
      Response r;
      r.status = -1;
      co_return r;
    }
  }
  if (!connected()) {
    Response r;
    r.status = -1;
    co_return r;
  }
  ++stats_.requests;
  std::string req =
      "GET " + std::string(path) + " HTTP/1.1\r\nHost: server\r\nConnection: " +
      (per_request_conn_ ? "close" : "keep-alive") + "\r\n\r\n";
  conn_->send(stack_.copier().copy_bytes_in(as_bytes(req),
                                            CopyClass::Metadata));
  Response r = co_await read_response();
  if (per_request_conn_) {
    conn_->close();
    conn_.reset();
  }
  if (r.status == 200) {
    ++stats_.ok;
    stats_.body_bytes += r.content_length;
  } else {
    ++stats_.errors;
  }
  co_return r;
}

Task<int> HttpClient::get_discard(std::string_view path) {
  Response r = co_await get(path);
  co_return r.status;
}

}  // namespace ncache::http
