// HTTP/1.1 client with keep-alive: drives kHTTPd in tests, examples and
// the SPECweb99-style benchmarks.
//
// One HttpClient owns one TCP connection and issues sequential GETs on it
// (benchmarks open several clients for concurrency, like the paper's two
// client machines do). Body bytes are copied out to the "application"
// (charged to the client CPU) unless they are baseline junk.
#pragma once

#include <deque>

#include "fs/image_builder.h"
#include "proto/stack.h"

namespace ncache::http {

struct HttpClientStats {
  std::uint64_t requests = 0;
  std::uint64_t ok = 0;
  std::uint64_t errors = 0;
  std::uint64_t body_bytes = 0;
};

class HttpClient {
 public:
  HttpClient(proto::NetworkStack& stack, proto::Ipv4Addr local_ip,
             proto::Ipv4Addr server_ip, std::uint16_t server_port = 80);

  /// Establishes the TCP connection (call once before get()).
  Task<bool> connect();
  bool connected() const noexcept { return conn_ && conn_->established(); }

  struct Response {
    int status = 0;
    std::uint64_t content_length = 0;
    netbuf::MsgBuffer body;  ///< physical bytes, or junk under baseline
    bool junk = false;
  };

  /// Issues one GET and awaits the complete response. Requests on one
  /// client are strictly sequential.
  Task<Response> get(std::string_view path);

  /// GET that drops the body after accounting (used by throughput loops
  /// to avoid accumulating buffers; the copy-out is still charged).
  Task<int> get_discard(std::string_view path);

  /// HTTP/1.0 style: open a fresh TCP connection per request and send
  /// "Connection: close" (the SPECweb99-era access pattern). get() then
  /// handles connect/teardown itself.
  void set_connection_per_request(bool v) noexcept { per_request_conn_ = v; }

  const HttpClientStats& stats() const noexcept { return stats_; }

 private:
  void on_data(netbuf::MsgBuffer m);
  Task<Response> read_response();

  proto::NetworkStack& stack_;
  proto::Ipv4Addr local_ip_;
  proto::Ipv4Addr server_ip_;
  std::uint16_t server_port_;
  proto::TcpConnectionPtr conn_;

  // Response parser state.
  std::string header_acc_;
  bool in_body_ = false;
  std::uint64_t body_need_ = 0;
  netbuf::MsgBuffer body_acc_;
  int status_ = 0;

  std::function<void(Response)> waiter_;
  bool per_request_conn_ = false;
  HttpClientStats stats_;
};

}  // namespace ncache::http
