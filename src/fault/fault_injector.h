// Deterministic, seeded fault injection scheduled on the event loop.
//
// FaultInjector owns the clock-driven mechanics: arm a link-down window,
// attach a Gilbert–Elliott loss process to a hop, or fire an arbitrary
// fault action (node crash, disk fault) at a scripted instant. Every
// random decision derives from the injector seed plus a per-stream
// counter, so the same plan on the same seed replays bit-for-bit.
//
// FaultPlan is the declarative layer: a scenario script built up from
// windows and actions, applied to an injector in one shot. Benches and
// tests describe *what* goes wrong and when; the injector decides nothing
// on its own.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "fault/gilbert_elliott.h"
#include "sim/event_loop.h"
#include "sim/link.h"

namespace ncache {
class MetricRegistry;
}

namespace ncache::fault {

struct FaultStats {
  std::uint64_t events_fired = 0;  ///< scripted actions executed
  std::uint64_t link_downs = 0;    ///< admin-down transitions applied
  std::uint64_t link_ups = 0;      ///< admin-up (recovery) transitions
  std::uint64_t burst_windows = 0; ///< GE windows armed
  std::uint64_t partitions_armed = 0;  ///< Partition windows scheduled
  std::uint64_t partition_cuts = 0;    ///< link directions those windows cut
};

/// A network partition: the set of unidirectional link cuts that isolates
/// one side of a topology. Built by hand or — the usual path — resolved
/// from topology node/rack ids by `topo::World::make_partition`, which
/// knows which trunks and host cables cross the boundary. A symmetric
/// partition lists both directions of every crossing link; an asymmetric
/// (one-way) partition lists only the directions delivering *into* the
/// losing side, modelling a link that still carries traffic out but
/// delivers nothing back.
struct Partition {
  struct Cut {
    sim::Link* link = nullptr;
    /// The event loop that owns the link's transmitting side. In a
    /// partitioned (multi-domain) world admin toggles must execute on
    /// that loop — scheduling them cross-domain would race the engine's
    /// workers. Null = the injector's own loop (single-loop worlds).
    sim::EventLoop* loop = nullptr;
  };
  std::string name;  ///< for logs ("rack1", "server2+server3 one-way", ...)
  std::vector<Cut> cuts;
};

class FaultInjector {
 public:
  FaultInjector(sim::EventLoop& loop, std::uint64_t seed)
      : loop_(loop), seed_(seed) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Fires `action` at absolute sim time `when` (clamped to now if past).
  void at(sim::Time when, std::function<void()> action);

  /// Admin-down on one direction for [at, at+duration).
  void link_down(sim::Link& link, sim::Time at, sim::Duration duration);
  /// Both directions of a cable — the usual "cable pulled" flap.
  void duplex_down(sim::DuplexLink& cable, sim::Time at,
                   sim::Duration duration);

  /// Cuts every link direction in `p` for [at, at+duration); duration 0
  /// cuts without healing (the plan must heal explicitly). Each toggle is
  /// scheduled on the cut's owning loop, so partitions compose with the
  /// ParallelEngine: arming happens before the engine runs (single
  /// threaded), and at fire time each domain flips only its own links.
  /// Stats are counted at arm time for the same reason — worker threads
  /// never touch the injector.
  void partition(const Partition& p, sim::Time at, sim::Duration duration);

  /// Gilbert–Elliott burst loss on `link` during [at, at+duration). The
  /// stream's RNG seeds from (injector seed, stream ordinal), so adding a
  /// window never perturbs the draws of earlier windows.
  void burst_loss(sim::Link& link, sim::Time at, sim::Duration duration,
                  GilbertElliott::Params params);
  void duplex_burst_loss(sim::DuplexLink& cable, sim::Time at,
                         sim::Duration duration,
                         GilbertElliott::Params params);

  const FaultStats& stats() const noexcept { return stats_; }
  /// Frames eaten by every GE stream this injector armed.
  std::uint64_t frames_dropped() const noexcept;

  /// Publishes fault.* counters under `node`.
  void register_metrics(MetricRegistry& registry, const std::string& node);

  sim::EventLoop& loop() noexcept { return loop_; }

 private:
  sim::EventLoop& loop_;
  std::uint64_t seed_;
  std::uint64_t next_stream_ = 0;
  std::vector<std::unique_ptr<GilbertElliott>> streams_;
  FaultStats stats_;
};

/// A scripted fault scenario: built declaratively, applied in one shot.
class FaultPlan {
 public:
  FaultPlan& link_down(sim::Link& link, sim::Time at, sim::Duration duration);
  FaultPlan& duplex_down(sim::DuplexLink& cable, sim::Time at,
                         sim::Duration duration);
  FaultPlan& burst_loss(sim::Link& link, sim::Time at, sim::Duration duration,
                        GilbertElliott::Params params);
  FaultPlan& duplex_burst_loss(sim::DuplexLink& cable, sim::Time at,
                               sim::Duration duration,
                               GilbertElliott::Params params);
  /// Cut-then-heal window over a resolved Partition (copied into the
  /// plan, so the Partition value may be a temporary).
  FaultPlan& partition(Partition p, sim::Time at, sim::Duration duration);
  /// Arbitrary scripted action (node crash, disk fault, ...).
  FaultPlan& action(sim::Time at, std::function<void()> fn);

  std::size_t size() const noexcept { return entries_.size(); }
  void apply(FaultInjector& injector) const;

 private:
  std::vector<std::function<void(FaultInjector&)>> entries_;
};

}  // namespace ncache::fault
