// Gilbert–Elliott two-state burst-loss model.
//
// The channel alternates between a Good and a Bad state; each offered
// frame first makes a (seeded, deterministic) state transition and is then
// dropped with the state's loss probability. Burstiness comes from the
// sojourn times: mean burst length = 1 / p_bad_good frames.
#pragma once

#include <cstdint>

#include "common/rng.h"

namespace ncache::fault {

class GilbertElliott {
 public:
  struct Params {
    double p_good_bad = 0.01;  ///< P(Good -> Bad) per offered frame
    double p_bad_good = 0.20;  ///< P(Bad -> Good) per offered frame
    double drop_good = 0.0;    ///< loss probability while Good
    double drop_bad = 0.5;     ///< loss probability while Bad
  };

  GilbertElliott(Params params, std::uint64_t seed)
      : params_(params), rng_(seed) {}

  /// One offered frame: advance the channel state, decide its fate.
  bool drop() {
    if (bad_) {
      if (rng_.uniform() < params_.p_bad_good) bad_ = false;
    } else {
      if (rng_.uniform() < params_.p_good_bad) bad_ = true;
    }
    double p = bad_ ? params_.drop_bad : params_.drop_good;
    if (p > 0.0 && rng_.uniform() < p) {
      ++dropped_;
      return true;
    }
    return false;
  }

  bool in_bad_state() const noexcept { return bad_; }
  std::uint64_t dropped() const noexcept { return dropped_; }

 private:
  Params params_;
  Pcg32 rng_;
  bool bad_ = false;
  std::uint64_t dropped_ = 0;
};

}  // namespace ncache::fault
