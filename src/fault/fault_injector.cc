#include "fault/fault_injector.h"

#include <algorithm>

#include "common/logging.h"
#include "common/metrics.h"

namespace ncache::fault {

void FaultInjector::at(sim::Time when, std::function<void()> action) {
  sim::Time t = std::max(when, loop_.now());
  loop_.schedule_at(t, [this, fn = std::move(action)] {
    ++stats_.events_fired;
    fn();
  });
}

void FaultInjector::link_down(sim::Link& link, sim::Time at,
                              sim::Duration duration) {
  sim::Link* l = &link;
  this->at(at, [this, l] {
    l->set_admin_up(false);
    ++stats_.link_downs;
  });
  this->at(at + duration, [this, l] {
    l->set_admin_up(true);
    ++stats_.link_ups;
  });
}

void FaultInjector::duplex_down(sim::DuplexLink& cable, sim::Time at,
                                sim::Duration duration) {
  link_down(cable.a_to_b, at, duration);
  link_down(cable.b_to_a, at, duration);
}

void FaultInjector::partition(const Partition& p, sim::Time at,
                              sim::Duration duration) {
  ++stats_.partitions_armed;
  NC_WARN("fault", "partition '%s': %zu cuts at %llu ns for %llu ns",
          p.name.c_str(), p.cuts.size(), (unsigned long long)at,
          (unsigned long long)duration);
  for (const Partition::Cut& c : p.cuts) {
    if (!c.link) continue;
    ++stats_.partition_cuts;
    sim::EventLoop& lp = c.loop ? *c.loop : loop_;
    sim::Link* l = c.link;
    // The fired lambdas only flip the admin flag — in a multi-domain
    // world they run on the owning domain's worker thread, so they must
    // not touch injector state (stats are arm-time, above).
    lp.schedule_at(std::max(at, lp.now()), [l] { l->set_admin_up(false); });
    if (duration > 0) {
      lp.schedule_at(std::max(at + duration, lp.now()),
                     [l] { l->set_admin_up(true); });
    }
  }
}

void FaultInjector::burst_loss(sim::Link& link, sim::Time at,
                               sim::Duration duration,
                               GilbertElliott::Params params) {
  // Stream seed mixes the injector seed with the stream ordinal so every
  // window draws from its own independent, reproducible sequence.
  std::uint64_t stream_seed =
      seed_ ^ (0x9e3779b97f4a7c15ULL * (next_stream_ + 1));
  ++next_stream_;
  streams_.push_back(std::make_unique<GilbertElliott>(params, stream_seed));
  GilbertElliott* ge = streams_.back().get();

  sim::Link* l = &link;
  this->at(at, [this, l, ge] {
    l->set_drop_hook([ge](std::size_t) { return ge->drop(); });
    ++stats_.burst_windows;
  });
  this->at(at + duration, [l] { l->set_drop_hook(nullptr); });
}

void FaultInjector::duplex_burst_loss(sim::DuplexLink& cable, sim::Time at,
                                      sim::Duration duration,
                                      GilbertElliott::Params params) {
  burst_loss(cable.a_to_b, at, duration, params);
  burst_loss(cable.b_to_a, at, duration, params);
}

std::uint64_t FaultInjector::frames_dropped() const noexcept {
  std::uint64_t total = 0;
  for (const auto& s : streams_) total += s->dropped();
  return total;
}

void FaultInjector::register_metrics(MetricRegistry& registry,
                                     const std::string& node) {
  registry.counter(node, "fault.events_fired",
                   [this] { return stats_.events_fired; });
  registry.counter(node, "fault.link_downs",
                   [this] { return stats_.link_downs; });
  registry.counter(node, "fault.link_ups", [this] { return stats_.link_ups; });
  registry.counter(node, "fault.burst_windows",
                   [this] { return stats_.burst_windows; });
  registry.counter(node, "fault.partitions_armed",
                   [this] { return stats_.partitions_armed; });
  registry.counter(node, "fault.partition_cuts",
                   [this] { return stats_.partition_cuts; });
  registry.counter(node, "fault.frames_dropped",
                   [this] { return frames_dropped(); });
}

FaultPlan& FaultPlan::link_down(sim::Link& link, sim::Time at,
                                sim::Duration duration) {
  entries_.push_back([&link, at, duration](FaultInjector& inj) {
    inj.link_down(link, at, duration);
  });
  return *this;
}

FaultPlan& FaultPlan::duplex_down(sim::DuplexLink& cable, sim::Time at,
                                  sim::Duration duration) {
  entries_.push_back([&cable, at, duration](FaultInjector& inj) {
    inj.duplex_down(cable, at, duration);
  });
  return *this;
}

FaultPlan& FaultPlan::burst_loss(sim::Link& link, sim::Time at,
                                 sim::Duration duration,
                                 GilbertElliott::Params params) {
  entries_.push_back([&link, at, duration, params](FaultInjector& inj) {
    inj.burst_loss(link, at, duration, params);
  });
  return *this;
}

FaultPlan& FaultPlan::duplex_burst_loss(sim::DuplexLink& cable, sim::Time at,
                                        sim::Duration duration,
                                        GilbertElliott::Params params) {
  entries_.push_back([&cable, at, duration, params](FaultInjector& inj) {
    inj.duplex_burst_loss(cable, at, duration, params);
  });
  return *this;
}

FaultPlan& FaultPlan::partition(Partition p, sim::Time at,
                                sim::Duration duration) {
  entries_.push_back([p = std::move(p), at, duration](FaultInjector& inj) {
    inj.partition(p, at, duration);
  });
  return *this;
}

FaultPlan& FaultPlan::action(sim::Time at, std::function<void()> fn) {
  entries_.push_back([at, fn = std::move(fn)](FaultInjector& inj) {
    inj.at(at, fn);
  });
  return *this;
}

void FaultPlan::apply(FaultInjector& injector) const {
  for (const auto& e : entries_) e(injector);
}

}  // namespace ncache::fault
