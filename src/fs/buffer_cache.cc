#include "fs/buffer_cache.h"

#include <algorithm>

#include <cstring>

#include "common/logging.h"
#include "common/metrics.h"
#include "fs/layout.h"

namespace ncache::fs {

using netbuf::MsgBuffer;

std::span<std::byte> BufferCache::Block::writable_bytes() {
  // Fast path: a single exclusively-owned physical segment.
  if (data.segments().size() == 1) {
    if (const auto* b = std::get_if<netbuf::ByteSeg>(&data.segments()[0])) {
      if (b->buf.use_count() == 1 && b->off == 0 &&
          b->len == b->buf->size()) {
        return b->buf->data();
      }
    }
  }
  // Materialize a private physical copy (metadata manipulation path).
  auto buf = netbuf::make_buffer(kBlockSize, 0);
  auto flat = data.to_bytes();
  flat.resize(kBlockSize);
  buf->append(flat);
  data = MsgBuffer::wrap(std::move(buf));
  const auto* b = std::get_if<netbuf::ByteSeg>(&data.segments()[0]);
  return b->buf->data();
}

BufferCache::BufferCache(sim::EventLoop& loop, iscsi::BlockClient& client,
                         std::size_t capacity_blocks,
                         std::size_t readahead_blocks)
    : loop_(loop),
      client_(client),
      capacity_(capacity_blocks),
      readahead_(readahead_blocks) {}

void BufferCache::touch(Block& b) { lru_.move_to_back(b); }

BufferCache::BlockPtr BufferCache::install(std::uint64_t lbn,
                                           MsgBuffer content, bool metadata) {
  auto it = map_.find(lbn);
  if (it != map_.end()) {
    // Raced with another installer (e.g. overlapping run fetch): keep the
    // existing block, which may already be dirty.
    return it->second;
  }
  auto block = std::make_shared<Block>();
  block->lbn = lbn;
  block->data = std::move(content);
  block->metadata = metadata;
  block->valid = true;
  map_[lbn] = block;
  lru_.push_back(*block);
  return block;
}

Task<void> BufferCache::ensure_space(std::size_t incoming) {
  while (map_.size() + incoming > capacity_) {
    // Pass 1: clean, unreferenced blocks from the LRU head.
    Block* victim = nullptr;
    for (auto& b : lru_) {
      auto it = map_.find(b.lbn);
      if (!b.dirty && it->second.use_count() == 1) {
        victim = &b;
        break;
      }
    }
    if (victim) {
      ++stats_.evictions;
      lru_.remove(*victim);
      map_.erase(victim->lbn);
      continue;
    }
    // Pass 2: flush the least-recently-used dirty, unreferenced block.
    Block* dirty = nullptr;
    for (auto& b : lru_) {
      auto it = map_.find(b.lbn);
      if (b.dirty && it->second.use_count() == 1) {
        dirty = &b;
        break;
      }
    }
    if (!dirty) {
      // Everything is pinned: allow transient overflow rather than
      // deadlocking the daemons.
      NC_DEBUG("bufcache", "all blocks pinned; overflowing capacity");
      co_return;
    }
    BlockPtr keep = map_[dirty->lbn];
    co_await flush_block(keep);
    if (keep->linked() && keep.use_count() == 2) {  // map + keep
      ++stats_.evictions;
      lru_.remove(*keep);
      map_.erase(keep->lbn);
    }
  }
}

Task<void> BufferCache::fetch_run(std::uint64_t lbn, std::uint32_t count,
                                  bool metadata) {
  MsgBuffer chain = co_await client_.read_blocks(lbn, count, metadata);
  if (chain.size() != std::size_t(count) * kBlockSize) {
    throw std::runtime_error("BufferCache: short read from block client");
  }
  co_await ensure_space(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    install(lbn + i, chain.slice(std::size_t(i) * kBlockSize, kBlockSize),
            metadata);
    auto waiters = inflight_.find(lbn + i);
    if (waiters != inflight_.end()) {
      auto list = std::move(waiters->second);
      inflight_.erase(waiters);
      for (auto& w : list) w();
    }
  }
}

Task<BufferCache::BlockPtr> BufferCache::get(std::uint64_t lbn,
                                             bool metadata) {
  auto blocks = co_await get_range(lbn, 1, metadata);
  co_return blocks.at(0);
}

Task<std::vector<BufferCache::BlockPtr>> BufferCache::get_range(
    std::uint64_t lbn, std::uint32_t count, bool metadata,
    std::uint32_t required) {
  if (required > count) required = count;  // kAllRequired -> count
  std::uint32_t fetch_count = count;
  if (lbn + fetch_count > device_blocks_) {
    throw std::out_of_range("BufferCache: read beyond device");
  }

  struct Run {
    std::uint64_t start;
    std::uint32_t len;
  };
  std::vector<Run> runs;
  std::vector<std::uint64_t> waits;  // blocks someone else is fetching
  for (std::uint32_t i = 0; i < fetch_count; ++i) {
    std::uint64_t b = lbn + i;
    bool cached = map_.contains(b);
    bool inflight = inflight_.contains(b);
    if (cached) {
      if (i < required) ++stats_.hits;
      continue;
    }
    if (inflight) {
      if (i < required) waits.push_back(b);  // only wait for required blocks
      continue;
    }
    if (i < required) {
      ++stats_.misses;
    } else {
      ++stats_.readahead_blocks;
    }
    inflight_[b];  // claim
    if (!runs.empty() && runs.back().start + runs.back().len == b) {
      ++runs.back().len;
    } else {
      runs.push_back(Run{b, 1});
    }
  }

  if (runs.size() == 1 && runs[0].len > 1) ++stats_.coalesced_reads;

  // Issue all runs; await them sequentially (they proceed concurrently on
  // the wire only if the client pipelines; ours serializes per await, which
  // is fine since runs are rare beyond one).
  for (const auto& r : runs) {
    co_await fetch_run(r.start, r.len, metadata);
  }
  // Wait for blocks someone else was already fetching.
  for (std::uint64_t b : waits) {
    if (map_.contains(b)) continue;
    AwaitCallback<bool> joined([this, b](auto resolve) {
      auto r = std::make_shared<decltype(resolve)>(std::move(resolve));
      inflight_[b].push_back([r] { (*r)(true); });
    });
    co_await joined;
  }

  std::vector<BlockPtr> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    BlockPtr block;
    // Under heavy pressure a freshly-installed block can be evicted by a
    // concurrent reader's ensure_space before we pin it here; refetch.
    // Holding the BlockPtrs already collected keeps them safe.
    for (int attempt = 0; attempt < 16 && !block; ++attempt) {
      auto it = map_.find(lbn + i);
      if (it != map_.end()) {
        block = it->second;
        break;
      }
      if (!inflight_.contains(lbn + i)) {
        inflight_[lbn + i];
        co_await fetch_run(lbn + i, 1, metadata);
      } else {
        std::uint64_t b = lbn + i;
        AwaitCallback<bool> joined([this, b](auto resolve) {
          auto r = std::make_shared<decltype(resolve)>(std::move(resolve));
          inflight_[b].push_back([r] { (*r)(true); });
        });
        co_await joined;
      }
    }
    if (!block) {
      throw std::runtime_error("BufferCache: cache thrashing, block lost");
    }
    touch(*block);
    out.push_back(std::move(block));
  }
  co_return out;
}

Task<BufferCache::BlockPtr> BufferCache::get_for_overwrite(std::uint64_t lbn,
                                                           bool metadata) {
  auto it = map_.find(lbn);
  if (it != map_.end()) {
    ++stats_.hits;
    touch(*it->second);
    co_return it->second;
  }
  ++stats_.misses;
  co_await ensure_space(1);
  // Full overwrite: no read needed; content arrives via the caller.
  co_return install(lbn, MsgBuffer::junk(kBlockSize), metadata);
}

void BufferCache::mark_dirty(const BlockPtr& b) {
  b->dirty = true;
  touch(*b);
}

Task<void> BufferCache::flush_block(BlockPtr b) {
  if (!b->dirty) co_return;
  b->dirty = false;  // clear first; a racing write re-dirties
  ++stats_.writebacks;
  bool ok = co_await client_.write_blocks(b->lbn, b->data, b->metadata);
  if (!ok) {
    NC_WARN("bufcache", "writeback of lbn %llu failed",
            static_cast<unsigned long long>(b->lbn));
    b->dirty = true;
  }
}

Task<void> BufferCache::flush_all() {
  // Snapshot the dirty set, sort by LBN (elevator order — the disks then
  // see near-sequential writes), and keep a window of writes in flight so
  // flushing is bounded by the disk array, not by one round trip at a
  // time.
  std::vector<BlockPtr> dirty;
  for (auto& [lbn, b] : map_) {
    if (b->dirty) dirty.push_back(b);
  }
  std::sort(dirty.begin(), dirty.end(),
            [](const BlockPtr& a, const BlockPtr& b) { return a->lbn < b->lbn; });

  constexpr std::size_t kWindow = 16;
  std::size_t next = 0;
  std::size_t inflight = 0;
  std::vector<std::function<void()>> waiters;

  // Issue loop implemented with a completion callback so up to kWindow
  // writebacks overlap.
  while (next < dirty.size() || inflight > 0) {
    while (next < dirty.size() && inflight < kWindow) {
      BlockPtr b = dirty[next++];
      if (!b->dirty) continue;
      ++inflight;
      auto runner = [](BufferCache* self, BlockPtr blk,
                       std::size_t* in_flight) -> Task<void> {
        co_await self->flush_block(std::move(blk));
        --*in_flight;
      };
      runner(this, std::move(b), &inflight).detach(loop_.reaper());
    }
    if (inflight > 0) {
      co_await sim::sleep_for(loop_, 200 * sim::kMicrosecond);
    }
  }
}

Task<void> BufferCache::drop_all() {
  co_await flush_all();
  std::vector<BlockPtr> all;
  for (auto& [lbn, b] : map_) all.push_back(b);
  for (auto& b : all) {
    if (b.use_count() > 2) continue;  // externally pinned
    lru_.remove(*b);
    map_.erase(b->lbn);
  }
}

void BufferCache::discard_all() {
  for (auto& [lbn, b] : map_) {
    b->dirty = false;  // do NOT flush: the crash already lost these bytes
    b->valid = false;
    lru_.remove(*b);
  }
  map_.clear();
}

bool BufferCache::discard(std::uint64_t lbn) {
  auto it = map_.find(lbn);
  if (it == map_.end()) return false;
  BlockPtr b = it->second;
  b->dirty = false;  // do NOT flush: the target already holds fresher bytes
  b->valid = false;
  lru_.remove(*b);
  map_.erase(it);
  return true;
}

std::vector<std::uint64_t> BufferCache::cached_data_lbns() const {
  std::vector<std::uint64_t> out;
  out.reserve(map_.size());
  for (const auto& [lbn, b] : map_) {
    if (b->valid && !b->metadata) out.push_back(lbn);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void BufferCache::register_metrics(MetricRegistry& registry,
                                   const std::string& node) {
  registry.counter(node, "fscache.hits", [this] { return stats_.hits; });
  registry.counter(node, "fscache.misses", [this] { return stats_.misses; });
  registry.counter(node, "fscache.evictions",
                   [this] { return stats_.evictions; });
  registry.counter(node, "fscache.writebacks",
                   [this] { return stats_.writebacks; });
  registry.counter(node, "fscache.readahead_blocks",
                   [this] { return stats_.readahead_blocks; });
  registry.counter(node, "fscache.coalesced_reads",
                   [this] { return stats_.coalesced_reads; });
  registry.gauge(node, "fscache.resident_blocks",
                 [this] { return double(map_.size()); });
  registry.on_reset([this] { reset_stats(); });
}

}  // namespace ncache::fs
