#include "fs/simple_fs.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"

namespace ncache::fs {

using netbuf::MsgBuffer;

namespace {
/// Serializes a struct into an exact-size byte vector.
template <typename T>
std::vector<std::byte> to_block_bytes(const T& v, std::size_t pad_to) {
  std::vector<std::byte> out;
  ByteWriter w(out);
  v.serialize(w);
  out.resize(pad_to);
  return out;
}
}  // namespace

SimpleFs::SimpleFs(sim::EventLoop& loop, iscsi::BlockClient& client,
                   std::size_t cache_blocks, std::size_t readahead_blocks)
    : loop_(loop),
      client_(client),
      cache_(loop, client, cache_blocks, readahead_blocks) {}

Task<void> SimpleFs::mkfs(std::uint64_t total_blocks,
                          std::uint32_t inode_count) {
  sb_ = SuperBlock::make(total_blocks, inode_count);

  // Superblock.
  auto sb_bytes = to_block_bytes(sb_, kBlockSize);
  co_await client_.write_blocks(0, MsgBuffer::from_bytes(sb_bytes), true);

  // Inode bitmap: inodes 0 (reserved) and 1 (root) used.
  {
    std::vector<std::byte> bits(kBlockSize * sb_.inode_bitmap_blocks);
    bitmap_set(bits, 0, true);
    bitmap_set(bits, kRootIno, true);
    co_await client_.write_blocks(sb_.inode_bitmap_start,
                                  MsgBuffer::from_bytes(bits), true);
  }
  // Block bitmap: metadata region used.
  {
    std::vector<std::byte> bits(kBlockSize * sb_.block_bitmap_blocks);
    for (std::uint64_t b = 0; b < sb_.data_start; ++b) {
      bitmap_set(bits, b, true);
    }
    co_await client_.write_blocks(sb_.block_bitmap_start,
                                  MsgBuffer::from_bytes(bits), true);
  }
  // Inode table: zeroed, with the root directory inode.
  {
    std::vector<std::byte> table(kBlockSize * sb_.inode_table_blocks);
    DiskInode root;
    root.type = InodeType::Directory;
    root.nlink = 2;
    std::vector<std::byte> root_bytes;
    ByteWriter w(root_bytes);
    root.serialize(w);
    std::memcpy(table.data() + kRootIno * kInodeSize, root_bytes.data(),
                kInodeSize);
    co_await client_.write_blocks(sb_.inode_table_start,
                                  MsgBuffer::from_bytes(table), true);
  }
  block_rotor_ = sb_.data_start;
  mounted_ = true;
  cache_.set_device_limit(sb_.total_blocks);
}

Task<void> SimpleFs::mount() {
  MsgBuffer raw = co_await client_.read_blocks(0, 1, true);
  auto bytes = raw.to_bytes();
  ByteReader r(bytes);
  sb_ = SuperBlock::parse(r);
  block_rotor_ = sb_.data_start;
  mounted_ = true;
  cache_.set_device_limit(sb_.total_blocks);
}

// --- inode table -------------------------------------------------------------

Task<DiskInode> SimpleFs::load_inode(std::uint32_t ino) {
  InodeLocation loc = locate_inode(sb_, ino);
  auto block = co_await cache_.get(loc.block, true);
  auto bytes = block->bytes();
  ByteReader r({bytes.data() + loc.offset, kInodeSize});
  co_return DiskInode::parse(r);
}

Task<void> SimpleFs::store_inode(std::uint32_t ino, const DiskInode& inode) {
  InodeLocation loc = locate_inode(sb_, ino);
  auto block = co_await cache_.get(loc.block, true);
  std::vector<std::byte> bytes;
  ByteWriter w(bytes);
  inode.serialize(w);
  auto span = block->writable_bytes();
  std::memcpy(span.data() + loc.offset, bytes.data(), kInodeSize);
  cache_.mark_dirty(block);
}

// --- bitmaps ------------------------------------------------------------------

Task<void> SimpleFs::set_bitmap_bit(std::uint32_t bitmap_start,
                                    std::uint64_t index, bool value) {
  std::uint64_t block_index = index / (kBlockSize * 8);
  std::uint64_t bit_in_block = index % (kBlockSize * 8);
  auto block = co_await cache_.get(bitmap_start + block_index, true);
  bitmap_set(block->writable_bytes(), bit_in_block, value);
  cache_.mark_dirty(block);
}

Task<std::uint32_t> SimpleFs::alloc_block() {
  std::uint64_t bits_per_block = kBlockSize * 8;
  // Scan bitmap blocks starting at the rotor position.
  for (std::uint32_t pass = 0; pass < sb_.block_bitmap_blocks + 1; ++pass) {
    std::uint64_t probe = block_rotor_ + std::uint64_t(pass) * bits_per_block;
    std::uint64_t block_index = (probe / bits_per_block) %
                                sb_.block_bitmap_blocks;
    auto block = co_await cache_.get(sb_.block_bitmap_start + block_index,
                                     true);
    auto bytes = block->bytes();
    std::uint64_t base = block_index * bits_per_block;
    std::uint64_t limit =
        std::min<std::uint64_t>(bits_per_block, sb_.total_blocks - base);
    std::uint64_t start = pass == 0 ? block_rotor_ % bits_per_block : 0;
    auto found = bitmap_find_clear(bytes, start, limit);
    if (!found) continue;
    std::uint64_t lbn = base + *found;
    if (lbn < sb_.data_start || lbn >= sb_.total_blocks) {
      // Bits below data_start are pre-set at mkfs; this is a corrupt map.
      continue;
    }
    bitmap_set(block->writable_bytes(), *found, true);
    cache_.mark_dirty(block);
    block_rotor_ = lbn + 1;
    co_return std::uint32_t(lbn);
  }
  NC_WARN("fs", "alloc_block: volume full");
  co_return kInvalidBlock;
}

Task<void> SimpleFs::free_block(std::uint32_t lbn) {
  if (lbn == kInvalidBlock) co_return;
  co_await set_bitmap_bit(sb_.block_bitmap_start, lbn, false);
}

Task<std::uint32_t> SimpleFs::alloc_inode() {
  for (std::uint32_t bi = 0; bi < sb_.inode_bitmap_blocks; ++bi) {
    auto block = co_await cache_.get(sb_.inode_bitmap_start + bi, true);
    auto bytes = block->bytes();
    std::uint64_t base = std::uint64_t(bi) * kBlockSize * 8;
    std::uint64_t limit =
        std::min<std::uint64_t>(kBlockSize * 8, sb_.inode_count - base);
    auto found = bitmap_find_clear(bytes, 0, limit);
    if (!found) continue;
    bitmap_set(block->writable_bytes(), *found, true);
    cache_.mark_dirty(block);
    co_return std::uint32_t(base + *found);
  }
  co_return 0;
}

Task<void> SimpleFs::free_inode(std::uint32_t ino) {
  co_await set_bitmap_bit(sb_.inode_bitmap_start, ino, false);
}

// --- block mapping -----------------------------------------------------------

Task<std::uint32_t> SimpleFs::read_ptr(std::uint32_t block_lbn,
                                       std::size_t slot) {
  auto block = co_await cache_.get(block_lbn, true);
  auto bytes = block->bytes();
  ByteReader r({bytes.data() + slot * 4, 4});
  co_return r.u32();
}

Task<void> SimpleFs::write_ptr(std::uint32_t block_lbn, std::size_t slot,
                               std::uint32_t value) {
  auto block = co_await cache_.get(block_lbn, true);
  auto span = block->writable_bytes();
  span[slot * 4] = std::byte(value >> 24);
  span[slot * 4 + 1] = std::byte(value >> 16);
  span[slot * 4 + 2] = std::byte(value >> 8);
  span[slot * 4 + 3] = std::byte(value);
  cache_.mark_dirty(block);
}

Task<std::uint32_t> SimpleFs::bmap(const DiskInode& inode,
                                   std::uint64_t fb) {
  if (fb < kDirectBlocks) co_return inode.direct[fb];
  fb -= kDirectBlocks;
  if (fb < kPointersPerBlock) {
    if (inode.indirect == kInvalidBlock) co_return kInvalidBlock;
    co_return co_await read_ptr(inode.indirect, fb);
  }
  fb -= kPointersPerBlock;
  if (fb < kPointersPerBlock * kPointersPerBlock) {
    if (inode.double_indirect == kInvalidBlock) co_return kInvalidBlock;
    std::uint32_t l1 =
        co_await read_ptr(inode.double_indirect, fb / kPointersPerBlock);
    if (l1 == kInvalidBlock) co_return kInvalidBlock;
    co_return co_await read_ptr(l1, fb % kPointersPerBlock);
  }
  co_return kInvalidBlock;
}

Task<std::uint32_t> SimpleFs::bmap_alloc(DiskInode& inode, std::uint64_t fb) {
  if (fb < kDirectBlocks) {
    if (inode.direct[fb] == kInvalidBlock) {
      inode.direct[fb] = co_await alloc_block();
      if (inode.direct[fb] != kInvalidBlock) ++inode.block_count;
    }
    co_return inode.direct[fb];
  }
  fb -= kDirectBlocks;
  if (fb < kPointersPerBlock) {
    if (inode.indirect == kInvalidBlock) {
      inode.indirect = co_await alloc_block();
      if (inode.indirect == kInvalidBlock) co_return kInvalidBlock;
      // Fresh indirect blocks must read as all-zero pointers.
      auto block = co_await cache_.get_for_overwrite(inode.indirect, true);
      auto span = block->writable_bytes();
      std::memset(span.data(), 0, span.size());
      cache_.mark_dirty(block);
    }
    std::uint32_t ptr = co_await read_ptr(inode.indirect, fb);
    if (ptr == kInvalidBlock) {
      ptr = co_await alloc_block();
      if (ptr == kInvalidBlock) co_return kInvalidBlock;
      co_await write_ptr(inode.indirect, fb, ptr);
      ++inode.block_count;
    }
    co_return ptr;
  }
  fb -= kPointersPerBlock;
  if (fb >= kPointersPerBlock * kPointersPerBlock) co_return kInvalidBlock;
  if (inode.double_indirect == kInvalidBlock) {
    inode.double_indirect = co_await alloc_block();
    if (inode.double_indirect == kInvalidBlock) co_return kInvalidBlock;
    auto block =
        co_await cache_.get_for_overwrite(inode.double_indirect, true);
    auto span = block->writable_bytes();
    std::memset(span.data(), 0, span.size());
    cache_.mark_dirty(block);
  }
  std::size_t l1_slot = fb / kPointersPerBlock;
  std::uint32_t l1 = co_await read_ptr(inode.double_indirect, l1_slot);
  if (l1 == kInvalidBlock) {
    l1 = co_await alloc_block();
    if (l1 == kInvalidBlock) co_return kInvalidBlock;
    auto block = co_await cache_.get_for_overwrite(l1, true);
    auto span = block->writable_bytes();
    std::memset(span.data(), 0, span.size());
    cache_.mark_dirty(block);
    co_await write_ptr(inode.double_indirect, l1_slot, l1);
  }
  std::uint32_t ptr = co_await read_ptr(l1, fb % kPointersPerBlock);
  if (ptr == kInvalidBlock) {
    ptr = co_await alloc_block();
    if (ptr == kInvalidBlock) co_return kInvalidBlock;
    co_await write_ptr(l1, fb % kPointersPerBlock, ptr);
    ++inode.block_count;
  }
  co_return ptr;
}

// --- public operations --------------------------------------------------------

Task<FileAttr> SimpleFs::getattr(std::uint32_t ino) {
  DiskInode in = co_await load_inode(ino);
  co_return FileAttr{in.type, in.size, in.nlink, in.block_count};
}

Task<std::optional<std::uint32_t>> SimpleFs::lookup(std::uint32_t dir_ino,
                                                    std::string_view name) {
  ++stats_.lookups;
  DiskInode dir = co_await load_inode(dir_ino);
  if (dir.type != InodeType::Directory) co_return std::nullopt;
  std::uint64_t nblocks = (dir.size + kBlockSize - 1) / kBlockSize;
  for (std::uint64_t fb = 0; fb < nblocks; ++fb) {
    std::uint32_t lbn = co_await bmap(dir, fb);
    if (lbn == kInvalidBlock) continue;
    auto block = co_await cache_.get(lbn, true);
    auto bytes = block->bytes();
    for (std::size_t slot = 0; slot < kDirentsPerBlock; ++slot) {
      ByteReader r({bytes.data() + slot * kDirentSize, kDirentSize});
      Dirent d = Dirent::parse(r);
      if (d.ino != 0 && d.name == name) co_return d.ino;
    }
  }
  co_return std::nullopt;
}

Task<std::vector<Dirent>> SimpleFs::readdir(std::uint32_t dir_ino) {
  DiskInode dir = co_await load_inode(dir_ino);
  std::vector<Dirent> out;
  if (dir.type != InodeType::Directory) co_return out;
  std::uint64_t nblocks = (dir.size + kBlockSize - 1) / kBlockSize;
  for (std::uint64_t fb = 0; fb < nblocks; ++fb) {
    std::uint32_t lbn = co_await bmap(dir, fb);
    if (lbn == kInvalidBlock) continue;
    auto block = co_await cache_.get(lbn, true);
    auto bytes = block->bytes();
    for (std::size_t slot = 0; slot < kDirentsPerBlock; ++slot) {
      ByteReader r({bytes.data() + slot * kDirentSize, kDirentSize});
      Dirent d = Dirent::parse(r);
      if (d.ino != 0) out.push_back(std::move(d));
    }
  }
  co_return out;
}

Task<std::uint32_t> SimpleFs::create(std::uint32_t dir_ino,
                                     std::string_view name, InodeType type) {
  if (name.empty() || name.size() > kMaxNameLen) co_return 0;
  auto existing = co_await lookup(dir_ino, name);
  if (existing) co_return 0;

  std::uint32_t ino = co_await alloc_inode();
  if (ino == 0) co_return 0;

  DiskInode node;
  node.type = type;
  node.nlink = type == InodeType::Directory ? 2 : 1;
  co_await store_inode(ino, node);

  // Insert the dirent: first empty slot, else extend the directory.
  DiskInode dir = co_await load_inode(dir_ino);
  std::uint64_t nblocks = (dir.size + kBlockSize - 1) / kBlockSize;
  Dirent ent;
  ent.ino = ino;
  ent.type = type;
  ent.name = std::string(name);
  std::vector<std::byte> ent_bytes;
  ByteWriter w(ent_bytes);
  ent.serialize(w);

  for (std::uint64_t fb = 0; fb < nblocks; ++fb) {
    std::uint32_t lbn = co_await bmap(dir, fb);
    if (lbn == kInvalidBlock) continue;
    auto block = co_await cache_.get(lbn, true);
    auto bytes = block->bytes();
    for (std::size_t slot = 0; slot < kDirentsPerBlock; ++slot) {
      ByteReader r({bytes.data() + slot * kDirentSize, kDirentSize});
      if (Dirent::parse(r).ino == 0) {
        auto span = block->writable_bytes();
        std::memcpy(span.data() + slot * kDirentSize, ent_bytes.data(),
                    kDirentSize);
        cache_.mark_dirty(block);
        ++stats_.creates;
        co_return ino;
      }
    }
  }
  // Extend the directory by one block.
  std::uint32_t lbn = co_await bmap_alloc(dir, nblocks);
  if (lbn == kInvalidBlock) {
    co_await free_inode(ino);
    co_return 0;
  }
  auto block = co_await cache_.get_for_overwrite(lbn, true);
  auto span = block->writable_bytes();
  std::memset(span.data(), 0, span.size());
  std::memcpy(span.data(), ent_bytes.data(), kDirentSize);
  cache_.mark_dirty(block);
  dir.size = (nblocks + 1) * kBlockSize;
  co_await store_inode(dir_ino, dir);
  ++stats_.creates;
  co_return ino;
}

Task<void> SimpleFs::release_blocks(DiskInode& inode) {
  std::uint64_t nblocks = (inode.size + kBlockSize - 1) / kBlockSize;
  for (std::uint64_t fb = 0; fb < nblocks; ++fb) {
    std::uint32_t lbn = co_await bmap(inode, fb);
    if (lbn != kInvalidBlock) co_await free_block(lbn);
  }
  if (inode.indirect != kInvalidBlock) co_await free_block(inode.indirect);
  if (inode.double_indirect != kInvalidBlock) {
    for (std::size_t i = 0; i < kPointersPerBlock; ++i) {
      std::uint32_t l1 = co_await read_ptr(inode.double_indirect, i);
      if (l1 != kInvalidBlock) co_await free_block(l1);
    }
    co_await free_block(inode.double_indirect);
  }
  inode.direct.fill(kInvalidBlock);
  inode.indirect = kInvalidBlock;
  inode.double_indirect = kInvalidBlock;
  inode.block_count = 0;
  inode.size = 0;
}

Task<bool> SimpleFs::remove(std::uint32_t dir_ino, std::string_view name) {
  DiskInode dir = co_await load_inode(dir_ino);
  std::uint64_t nblocks = (dir.size + kBlockSize - 1) / kBlockSize;
  for (std::uint64_t fb = 0; fb < nblocks; ++fb) {
    std::uint32_t lbn = co_await bmap(dir, fb);
    if (lbn == kInvalidBlock) continue;
    auto block = co_await cache_.get(lbn, true);
    auto bytes = block->bytes();
    for (std::size_t slot = 0; slot < kDirentsPerBlock; ++slot) {
      ByteReader r({bytes.data() + slot * kDirentSize, kDirentSize});
      Dirent d = Dirent::parse(r);
      if (d.ino == 0 || d.name != name) continue;

      DiskInode victim = co_await load_inode(d.ino);
      co_await release_blocks(victim);
      victim.type = InodeType::Free;
      victim.nlink = 0;
      co_await store_inode(d.ino, victim);
      co_await free_inode(d.ino);

      auto span = block->writable_bytes();
      std::memset(span.data() + slot * kDirentSize, 0, kDirentSize);
      cache_.mark_dirty(block);
      ++stats_.removes;
      co_return true;
    }
  }
  co_return false;
}

Task<bool> SimpleFs::rename(std::uint32_t src_dir, std::string_view src_name,
                            std::uint32_t dst_dir, std::string_view dst_name) {
  if (dst_name.empty() || dst_name.size() > kMaxNameLen) co_return false;
  auto src = co_await lookup(src_dir, src_name);
  if (!src) co_return false;
  if (co_await lookup(dst_dir, dst_name)) co_return false;

  // Insert the new entry first (may need a fresh directory block), then
  // clear the old slot; a failure in between leaves a hard link, never a
  // lost file.
  DiskInode moved = co_await load_inode(*src);
  Dirent ent;
  ent.ino = *src;
  ent.type = moved.type;
  ent.name = std::string(dst_name);
  std::vector<std::byte> ent_bytes;
  ByteWriter w(ent_bytes);
  ent.serialize(w);

  DiskInode dir = co_await load_inode(dst_dir);
  if (dir.type != InodeType::Directory) co_return false;
  bool inserted = false;
  std::uint64_t nblocks = (dir.size + kBlockSize - 1) / kBlockSize;
  for (std::uint64_t fb = 0; fb < nblocks && !inserted; ++fb) {
    std::uint32_t lbn = co_await bmap(dir, fb);
    if (lbn == kInvalidBlock) continue;
    auto block = co_await cache_.get(lbn, true);
    auto bytes = block->bytes();
    for (std::size_t slot = 0; slot < kDirentsPerBlock; ++slot) {
      ByteReader r({bytes.data() + slot * kDirentSize, kDirentSize});
      if (Dirent::parse(r).ino == 0) {
        auto span = block->writable_bytes();
        std::memcpy(span.data() + slot * kDirentSize, ent_bytes.data(),
                    kDirentSize);
        cache_.mark_dirty(block);
        inserted = true;
        break;
      }
    }
  }
  if (!inserted) {
    std::uint32_t lbn = co_await bmap_alloc(dir, nblocks);
    if (lbn == kInvalidBlock) co_return false;
    auto block = co_await cache_.get_for_overwrite(lbn, true);
    auto span = block->writable_bytes();
    std::memset(span.data(), 0, span.size());
    std::memcpy(span.data(), ent_bytes.data(), kDirentSize);
    cache_.mark_dirty(block);
    dir.size = (nblocks + 1) * kBlockSize;
    co_await store_inode(dst_dir, dir);
  }

  // Clear the old slot without releasing the inode.
  DiskInode sdir = co_await load_inode(src_dir);
  std::uint64_t sblocks = (sdir.size + kBlockSize - 1) / kBlockSize;
  for (std::uint64_t fb = 0; fb < sblocks; ++fb) {
    std::uint32_t lbn = co_await bmap(sdir, fb);
    if (lbn == kInvalidBlock) continue;
    auto block = co_await cache_.get(lbn, true);
    auto bytes = block->bytes();
    for (std::size_t slot = 0; slot < kDirentsPerBlock; ++slot) {
      ByteReader r({bytes.data() + slot * kDirentSize, kDirentSize});
      Dirent d = Dirent::parse(r);
      if (d.ino == *src && d.name == src_name) {
        auto span = block->writable_bytes();
        std::memset(span.data() + slot * kDirentSize, 0, kDirentSize);
        cache_.mark_dirty(block);
        co_return true;
      }
    }
  }
  co_return false;  // old slot vanished: should be unreachable
}

Task<netbuf::MsgBuffer> SimpleFs::read(std::uint32_t ino, std::uint64_t off,
                                       std::uint32_t len) {
  ++stats_.reads;
  DiskInode in = co_await load_inode(ino);
  if (off >= in.size) co_return MsgBuffer{};
  len = std::uint32_t(std::min<std::uint64_t>(len, in.size - off));
  if (len == 0) co_return MsgBuffer{};

  std::uint64_t first_fb = off / kBlockSize;
  std::uint64_t last_fb = (off + len - 1) / kBlockSize;

  // File-aware read-ahead (§5.4: the window is tuned so the average disk
  // request matches the NFS request size): extend the mapped range by the
  // window, clamped to EOF, so prefetching never strays into blocks that
  // belong to other files or to metadata.
  std::uint64_t eof_fb = (in.size - 1) / kBlockSize;
  std::uint64_t ext_fb =
      std::min<std::uint64_t>(last_fb + cache_.readahead(), eof_fb);

  std::vector<std::uint32_t> lbns;
  lbns.reserve(ext_fb - first_fb + 1);
  for (std::uint64_t fb = first_fb; fb <= ext_fb; ++fb) {
    lbns.push_back(co_await bmap(in, fb));
  }
  std::size_t needed = std::size_t(last_fb - first_fb + 1);

  std::vector<BufferCache::BlockPtr> blocks(lbns.size());
  std::size_t i = 0;
  while (i < lbns.size()) {
    if (lbns[i] == kInvalidBlock) {
      blocks[i] = nullptr;  // hole: zeros
      ++i;
      continue;
    }
    std::size_t j = i + 1;
    while (j < lbns.size() && lbns[j] == lbns[j - 1] + 1) ++j;
    std::uint32_t required = std::uint32_t(
        i < needed ? std::min(j, needed) - i : 0);
    auto run = co_await cache_.get_range(lbns[i], std::uint32_t(j - i), false,
                                         required);
    for (std::size_t k = 0; k < run.size(); ++k) blocks[i + k] = run[k];
    i = j;
  }
  blocks.resize(needed);

  MsgBuffer out;
  std::uint64_t pos = off;
  std::uint32_t remaining = len;
  for (std::size_t b = 0; b < blocks.size() && remaining > 0; ++b) {
    std::uint64_t block_start = (first_fb + b) * kBlockSize;
    std::uint32_t in_off = std::uint32_t(pos - block_start);
    std::uint32_t take =
        std::min<std::uint32_t>(remaining, std::uint32_t(kBlockSize - in_off));
    if (blocks[b]) {
      out.append(blocks[b]->data.slice(in_off, take));
    } else {
      out.append(MsgBuffer::junk(take));  // hole reads as filler
    }
    pos += take;
    remaining -= take;
  }
  stats_.read_bytes += out.size();
  co_return out;
}

Task<std::uint32_t> SimpleFs::write(std::uint32_t ino, std::uint64_t off,
                                    MsgBuffer data) {
  ++stats_.writes;
  if (data.empty()) co_return 0;
  if (off + data.size() > kMaxFileSize) co_return 0;
  DiskInode in = co_await load_inode(ino);

  std::uint64_t end = off + data.size();
  std::uint64_t first_fb = off / kBlockSize;
  std::uint64_t last_fb = (end - 1) / kBlockSize;

  std::uint64_t pos = off;
  std::size_t consumed = 0;
  for (std::uint64_t fb = first_fb; fb <= last_fb; ++fb) {
    std::uint32_t lbn = co_await bmap_alloc(in, fb);
    if (lbn == kInvalidBlock) break;  // out of space: partial write

    std::uint64_t block_start = fb * kBlockSize;
    std::uint32_t in_off = std::uint32_t(pos - block_start);
    std::uint32_t take = std::uint32_t(
        std::min<std::uint64_t>(kBlockSize - in_off, end - pos));

    bool whole = in_off == 0 && take == kBlockSize;
    BufferCache::BlockPtr block;
    if (whole || block_start >= in.size) {
      // Full overwrite, or writing past EOF (no old data to preserve).
      block = co_await cache_.get_for_overwrite(lbn, false);
    } else {
      block = co_await cache_.get(lbn, false);
    }

    MsgBuffer incoming = data.slice(consumed, take);
    if (whole) {
      block->data = std::move(incoming);
    } else {
      // Read-modify-write splice around [in_off, in_off+take).
      MsgBuffer merged;
      if (in_off > 0) merged.append(block->data.slice(0, in_off));
      merged.append(std::move(incoming));
      std::uint32_t tail = std::uint32_t(kBlockSize) - in_off - take;
      if (tail > 0) {
        if (block->data.size() >= kBlockSize) {
          merged.append(block->data.slice(in_off + take, tail));
        } else {
          merged.append(MsgBuffer::junk(tail));
        }
      }
      block->data = std::move(merged);
    }
    cache_.mark_dirty(block);
    pos += take;
    consumed += take;
  }

  if (pos > in.size) in.size = pos;
  co_await store_inode(ino, in);
  stats_.write_bytes += consumed;
  co_return std::uint32_t(consumed);
}

Task<bool> SimpleFs::truncate(std::uint32_t ino, std::uint64_t new_size) {
  DiskInode in = co_await load_inode(ino);
  if (new_size == 0) {
    co_await release_blocks(in);
  } else if (new_size < in.size) {
    // Free whole blocks past the new end and clear their pointers so a
    // later regrow does not resurrect stale block numbers.
    std::uint64_t keep = (new_size + kBlockSize - 1) / kBlockSize;
    std::uint64_t had = (in.size + kBlockSize - 1) / kBlockSize;
    for (std::uint64_t fb = keep; fb < had; ++fb) {
      std::uint32_t lbn = co_await bmap(in, fb);
      if (lbn == kInvalidBlock) continue;
      co_await free_block(lbn);
      --in.block_count;
      if (fb < kDirectBlocks) {
        in.direct[fb] = kInvalidBlock;
      } else if (fb - kDirectBlocks < kPointersPerBlock) {
        co_await write_ptr(in.indirect, fb - kDirectBlocks, kInvalidBlock);
      } else {
        std::uint64_t di = fb - kDirectBlocks - kPointersPerBlock;
        std::uint32_t l1 =
            co_await read_ptr(in.double_indirect, di / kPointersPerBlock);
        if (l1 != kInvalidBlock) {
          co_await write_ptr(l1, di % kPointersPerBlock, kInvalidBlock);
        }
      }
    }
  }
  in.size = new_size;
  co_await store_inode(ino, in);
  co_return true;
}

Task<void> SimpleFs::sync() { co_await cache_.flush_all(); }

Task<std::vector<std::uint32_t>> SimpleFs::map_range(std::uint32_t ino,
                                                     std::uint64_t off,
                                                     std::uint32_t len) {
  std::vector<std::uint32_t> lbns;
  if (len == 0) co_return lbns;
  DiskInode in = co_await load_inode(ino);
  std::uint64_t end = std::min<std::uint64_t>(off + len, in.size);
  if (off >= end) co_return lbns;
  for (std::uint64_t fb = off / kBlockSize; fb <= (end - 1) / kBlockSize;
       ++fb) {
    std::uint32_t lbn = co_await bmap(in, fb);
    if (lbn != kInvalidBlock) lbns.push_back(lbn);
  }
  co_return lbns;
}

}  // namespace ncache::fs
