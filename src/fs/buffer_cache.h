// File-system buffer cache.
//
// LRU, write-back, block-granular, with a hard block-count budget — the
// budget is the §3.4/§4.1 double-buffering control: NCache configurations
// shrink this cache and let the (much larger, pinned) network-centric
// cache act as the second level.
//
// Reclamation follows the paper exactly: clean buffers first, then dirty
// buffers are flushed and reclaimed. Reads coalesce contiguous misses into
// single block-client commands and honour a read-ahead window, which is
// the "file system read ahead window was tuned so that the average disk
// request size matches the NFS request size" knob from §5.4.
//
// Block contents are MsgBuffers: physical bytes in the original
// configuration, key-bearing logical segments under NCache ("the retrieved
// block contains only a key and some junk data", §3.2), junk placeholders
// in the baseline. The cache itself never interprets them.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/intrusive_list.h"
#include "common/task.h"
#include "iscsi/initiator.h"
#include "netbuf/msg_buffer.h"

namespace ncache {
class MetricRegistry;
}

namespace ncache::fs {

struct BufferCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;
  std::uint64_t readahead_blocks = 0;
  std::uint64_t coalesced_reads = 0;
};

class BufferCache {
 public:
  struct Block : ListHook {
    std::uint64_t lbn = 0;
    netbuf::MsgBuffer data;  ///< exactly kBlockSize logical bytes
    bool dirty = false;
    bool metadata = false;
    bool valid = false;

    /// Mutable access to physical contents; materializes a private copy if
    /// the block is non-physical or shares its buffer (metadata only).
    std::span<std::byte> writable_bytes();
    /// Read-only flattened view (copies if fragmented).
    std::vector<std::byte> bytes() const { return data.to_bytes(); }
  };
  using BlockPtr = std::shared_ptr<Block>;

  BufferCache(sim::EventLoop& loop, iscsi::BlockClient& client,
              std::size_t capacity_blocks, std::size_t readahead_blocks = 0);

  /// Read-through get of one block.
  Task<BlockPtr> get(std::uint64_t lbn, bool metadata);

  /// Gets `count` consecutive blocks, coalescing misses into as few
  /// block-client reads as possible. Blocks beyond the first `required`
  /// are speculative read-ahead (fetched, counted, but callers typically
  /// only consume the required prefix). Read-ahead is driven by the file
  /// system (file-aware), never by raw adjacent LBNs — a raw-LBN window
  /// would sweep metadata blocks (e.g. a file's indirect block) into the
  /// regular-data path and misclassify them (§3.3).
  /// `required` == count by default; pass 0 for a pure prefetch call
  /// (every block counts as read-ahead, nobody blocks on stragglers).
  static constexpr std::uint32_t kAllRequired = ~0u;
  Task<std::vector<BlockPtr>> get_range(std::uint64_t lbn, std::uint32_t count,
                                        bool metadata,
                                        std::uint32_t required = kAllRequired);

  /// Returns the block for a full overwrite without reading it first.
  Task<BlockPtr> get_for_overwrite(std::uint64_t lbn, bool metadata);

  void mark_dirty(const BlockPtr& b);

  /// Writes one dirty block back (no-op when clean).
  Task<void> flush_block(BlockPtr b);
  /// Flushes every dirty block.
  Task<void> flush_all();
  /// Drops every clean block (testing). Dirty blocks are flushed first.
  Task<void> drop_all();
  /// Crash semantics: every block vanishes, dirty ones included — nothing
  /// is flushed. External holders keep their (now invalidated) pins.
  void discard_all();

  bool contains(std::uint64_t lbn) const { return map_.contains(lbn); }

  /// The resident block, or nullptr — no I/O, no LRU touch (cluster peers
  /// probe each other's caches through this; a probe must not look like a
  /// local access).
  BlockPtr peek(std::uint64_t lbn) const {
    auto it = map_.find(lbn);
    return it == map_.end() ? nullptr : it->second;
  }

  /// Forgets one block without flushing it, dirty or not (remote write
  /// invalidation: the writer's replica already put fresh bytes on the
  /// target, so whatever this cache holds is stale). Returns whether the
  /// block was resident. External holders keep their (stale) pins.
  bool discard(std::uint64_t lbn);

  /// Ascending LBNs of every resident, valid regular-data block. The
  /// anti-entropy repair pass enumerates these for digest exchange;
  /// metadata blocks never peer (§3.3) and are excluded.
  std::vector<std::uint64_t> cached_data_lbns() const;

  std::size_t size() const noexcept { return map_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }
  void set_capacity(std::size_t blocks) noexcept { capacity_ = blocks; }
  void set_readahead(std::size_t blocks) noexcept { readahead_ = blocks; }
  std::size_t readahead() const noexcept { return readahead_; }
  /// Clamp for read-ahead: never fetch at or beyond this LBN.
  void set_device_limit(std::uint64_t blocks) noexcept {
    device_blocks_ = blocks;
  }

  const BufferCacheStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = BufferCacheStats{}; }

  /// Publishes fscache.* counters under `node` and hooks reset_stats()
  /// into the registry reset.
  void register_metrics(MetricRegistry& registry, const std::string& node);

 private:
  Task<void> ensure_space(std::size_t incoming);
  /// Fetches [lbn, lbn+count) from the client and installs the blocks.
  Task<void> fetch_run(std::uint64_t lbn, std::uint32_t count, bool metadata);
  BlockPtr install(std::uint64_t lbn, netbuf::MsgBuffer content,
                   bool metadata);
  void touch(Block& b);

  sim::EventLoop& loop_;
  iscsi::BlockClient& client_;
  std::size_t capacity_;
  std::size_t readahead_;
  std::uint64_t device_blocks_ = ~0ULL;

  std::unordered_map<std::uint64_t, BlockPtr> map_;
  IntrusiveList<Block> lru_;

  /// In-flight read joiners per LBN: later requesters wait instead of
  /// issuing duplicate commands.
  std::unordered_map<std::uint64_t, std::vector<std::function<void()>>>
      inflight_;

  BufferCacheStats stats_;
};

}  // namespace ncache::fs
