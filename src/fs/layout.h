// SimpleFS on-disk format.
//
// A classic ext2-flavoured layout on 4 KB blocks:
//
//   block 0              superblock
//   [inode bitmap]       1 bit per inode
//   [block bitmap]       1 bit per block
//   [inode table]        128-byte inodes, 32 per block
//   [data blocks]
//
// Inodes address 12 direct blocks, one single-indirect block (1024
// pointers) and one double-indirect block, for a max file size of ~4 GB —
// enough for the paper's 2 GB sequential-read microbenchmark. Directory
// blocks hold fixed 64-byte entries.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "common/bytes.h"

namespace ncache::fs {

constexpr std::size_t kBlockSize = 4096;
constexpr std::uint32_t kFsMagic = 0x4e434653;  // "NCFS"

constexpr std::size_t kInodeSize = 128;
constexpr std::size_t kInodesPerBlock = kBlockSize / kInodeSize;  // 32
constexpr std::size_t kDirectBlocks = 12;
constexpr std::size_t kPointersPerBlock = kBlockSize / 4;  // 1024
constexpr std::size_t kDirentSize = 64;
constexpr std::size_t kDirentsPerBlock = kBlockSize / kDirentSize;  // 64
constexpr std::size_t kMaxNameLen = kDirentSize - 6;                // 58

constexpr std::uint32_t kInvalidBlock = 0;  ///< block 0 is the superblock
constexpr std::uint32_t kRootIno = 1;       ///< inode 0 reserved

/// Max bytes one inode can address.
constexpr std::uint64_t kMaxFileSize =
    std::uint64_t(kDirectBlocks + kPointersPerBlock +
                  kPointersPerBlock * kPointersPerBlock) *
    kBlockSize;

enum class InodeType : std::uint8_t { Free = 0, File = 1, Directory = 2 };

struct SuperBlock {
  std::uint32_t magic = kFsMagic;
  std::uint64_t total_blocks = 0;
  std::uint32_t inode_count = 0;
  std::uint32_t inode_bitmap_start = 0;
  std::uint32_t inode_bitmap_blocks = 0;
  std::uint32_t block_bitmap_start = 0;
  std::uint32_t block_bitmap_blocks = 0;
  std::uint32_t inode_table_start = 0;
  std::uint32_t inode_table_blocks = 0;
  std::uint32_t data_start = 0;

  void serialize(ByteWriter& w) const;
  static SuperBlock parse(ByteReader& r);
  /// Computes a layout for a volume of `total_blocks` with `inode_count`
  /// inodes.
  static SuperBlock make(std::uint64_t total_blocks, std::uint32_t inodes);

  friend bool operator==(const SuperBlock&, const SuperBlock&) = default;
};

struct DiskInode {
  InodeType type = InodeType::Free;
  std::uint16_t nlink = 0;
  std::uint64_t size = 0;
  std::uint32_t block_count = 0;  ///< data blocks allocated
  std::array<std::uint32_t, kDirectBlocks> direct{};
  std::uint32_t indirect = kInvalidBlock;
  std::uint32_t double_indirect = kInvalidBlock;

  void serialize(ByteWriter& w) const;  ///< exactly kInodeSize bytes
  static DiskInode parse(ByteReader& r);

  friend bool operator==(const DiskInode&, const DiskInode&) = default;
};

struct Dirent {
  std::uint32_t ino = 0;  ///< 0 = empty slot
  InodeType type = InodeType::Free;
  std::string name;

  void serialize(ByteWriter& w) const;  ///< exactly kDirentSize bytes
  static Dirent parse(ByteReader& r);
};

/// Bit ops over a bitmap block image.
bool bitmap_test(std::span<const std::byte> bits, std::uint64_t index);
void bitmap_set(std::span<std::byte> bits, std::uint64_t index, bool value);
/// First clear bit at or after `start`, or nullopt.
std::optional<std::uint64_t> bitmap_find_clear(std::span<const std::byte> bits,
                                               std::uint64_t start,
                                               std::uint64_t limit);

/// Inode location within the inode table.
struct InodeLocation {
  std::uint64_t block;   ///< absolute LBN
  std::size_t offset;    ///< byte offset within the block
};
InodeLocation locate_inode(const SuperBlock& sb, std::uint32_t ino);

}  // namespace ncache::fs
