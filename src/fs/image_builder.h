// Direct file-system image construction.
//
// Benchmarks need multi-hundred-megabyte populated volumes; building them
// through the full iSCSI + fs write path would burn real time without
// adding fidelity (the paper also populates its file sets before
// measuring). FsImageBuilder writes a valid SimpleFS image straight into a
// BlockStore with no simulated cost; the servers then mount it through the
// normal network path.
//
// File contents come from a deterministic per-(inode, offset) pattern so
// clients can verify every byte they receive without anybody storing a
// golden copy.
#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "blockdev/block_store.h"
#include "fs/layout.h"

namespace ncache::fs {

/// Deterministic content byte for file `ino` at byte `offset`. The block
/// term (offset >> 12) * 13 makes every 4 KB block distinct (13 is odd, so
/// consecutive blocks differ mod 256): a block landing at the wrong file
/// offset can never verify.
inline std::byte content_byte(std::uint32_t ino, std::uint64_t offset) {
  return std::byte((ino * 131u + std::uint32_t(offset) * 7u +
                    std::uint32_t(offset >> 12) * 13u) &
                   0xff);
}

/// Fills `out` with the deterministic content of file `ino` at `offset`.
void fill_content(std::uint32_t ino, std::uint64_t offset,
                  std::span<std::byte> out);

/// Verifies that `data` matches the deterministic content of `ino` at
/// `offset`. Returns the index of the first mismatch, or npos.
std::size_t verify_content(std::uint32_t ino, std::uint64_t offset,
                           std::span<const std::byte> data);

class FsImageBuilder {
 public:
  FsImageBuilder(blockdev::BlockStore& store, std::uint64_t total_blocks,
                 std::uint32_t inode_count);

  /// Adds a regular file under the given directory (default: root) filled
  /// with the deterministic pattern. Returns its inode, 0 on failure.
  std::uint32_t add_file(std::string_view name, std::uint64_t size,
                         std::uint32_t parent = kRootIno);

  /// Adds a file with explicit contents.
  std::uint32_t add_file_with_content(std::string_view name,
                                      std::span<const std::byte> content,
                                      std::uint32_t parent = kRootIno);

  /// Adds a directory. Returns its inode, 0 on failure.
  std::uint32_t add_dir(std::string_view name,
                        std::uint32_t parent = kRootIno);

  /// Writes all metadata into the store. Must be called exactly once; no
  /// further add_* calls are allowed afterwards.
  void finish();
  bool finished() const noexcept { return finished_; }

  const SuperBlock& superblock() const noexcept { return sb_; }
  std::uint64_t blocks_used() const noexcept { return next_block_; }

 private:
  struct PendingInode {
    DiskInode inode;
  };

  std::uint32_t add_common(std::string_view name, InodeType type,
                           std::uint32_t parent);
  std::uint32_t lbn_for(const DiskInode& inode, std::uint64_t fb) const;
  std::uint32_t alloc_block_seq();
  /// Assigns `count` data blocks to `inode` starting at file block 0..;
  /// returns the first LBN (blocks are contiguous).
  std::uint64_t map_file_blocks(DiskInode& inode, std::uint64_t count);

  blockdev::BlockStore& store_;
  SuperBlock sb_;
  std::vector<std::byte> inode_bitmap_;
  std::vector<std::byte> block_bitmap_;
  std::vector<std::byte> inode_table_;
  std::unordered_map<std::uint32_t, std::vector<Dirent>> dir_entries_;
  std::uint32_t next_ino_ = kRootIno + 1;
  std::uint64_t next_block_;
  bool finished_ = false;
};

}  // namespace ncache::fs
