// SimpleFS: the file system the NFS/Web servers run on.
//
// An ext2-style block file system mounted over any BlockClient (the iSCSI
// initiator in the testbed, a local store in unit tests), with all block
// I/O routed through the BufferCache. Crucially — and this is the paper's
// transparency claim — SimpleFS never interprets *file data* blocks, so it
// works identically whether a block holds physical bytes, an NCache key,
// or baseline junk. Only metadata (superblock, bitmaps, inodes,
// directories, indirect blocks) is parsed, and metadata always travels the
// physical-copy path.
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "fs/buffer_cache.h"
#include "fs/layout.h"

namespace ncache::fs {

struct FileAttr {
  InodeType type = InodeType::Free;
  std::uint64_t size = 0;
  std::uint16_t nlink = 0;
  std::uint32_t block_count = 0;
};

struct FsStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t read_bytes = 0;
  std::uint64_t write_bytes = 0;
  std::uint64_t creates = 0;
  std::uint64_t removes = 0;
  std::uint64_t lookups = 0;
};

class SimpleFs {
 public:
  SimpleFs(sim::EventLoop& loop, iscsi::BlockClient& client,
           std::size_t cache_blocks, std::size_t readahead_blocks = 0);

  /// Formats the volume through the block client.
  Task<void> mkfs(std::uint64_t total_blocks, std::uint32_t inode_count);
  /// Reads and validates the superblock.
  Task<void> mount();
  bool mounted() const noexcept { return mounted_; }

  Task<FileAttr> getattr(std::uint32_t ino);
  Task<std::optional<std::uint32_t>> lookup(std::uint32_t dir_ino,
                                            std::string_view name);
  /// Creates a file or directory; returns its inode (0 on failure, e.g.
  /// exists / no space).
  Task<std::uint32_t> create(std::uint32_t dir_ino, std::string_view name,
                             InodeType type);
  Task<bool> remove(std::uint32_t dir_ino, std::string_view name);
  /// Moves an entry between directories (or renames in place). Fails if
  /// the source is missing or the destination name already exists.
  Task<bool> rename(std::uint32_t src_dir, std::string_view src_name,
                    std::uint32_t dst_dir, std::string_view dst_name);
  Task<std::vector<Dirent>> readdir(std::uint32_t dir_ino);

  /// Reads up to `len` bytes at `off`; returns a (possibly logical)
  /// message of the bytes actually read (clamped at EOF).
  Task<netbuf::MsgBuffer> read(std::uint32_t ino, std::uint64_t off,
                               std::uint32_t len);
  /// Writes `data` at `off` (extending the file as needed); returns bytes
  /// written, 0 on allocation failure.
  Task<std::uint32_t> write(std::uint32_t ino, std::uint64_t off,
                            netbuf::MsgBuffer data);
  Task<bool> truncate(std::uint32_t ino, std::uint64_t new_size);

  /// Flushes all dirty buffers.
  Task<void> sync();

  /// Maps the byte range [off, off+len) of `ino` to its on-disk LBNs
  /// (holes omitted). Cluster write-invalidation uses this to name the
  /// blocks a WRITE touched when telling peer replicas to drop them.
  Task<std::vector<std::uint32_t>> map_range(std::uint32_t ino,
                                             std::uint64_t off,
                                             std::uint32_t len);

  BufferCache& cache() noexcept { return cache_; }
  const SuperBlock& superblock() const { return sb_; }
  const FsStats& stats() const noexcept { return stats_; }

 private:
  Task<DiskInode> load_inode(std::uint32_t ino);
  Task<void> store_inode(std::uint32_t ino, const DiskInode& inode);

  /// Maps file block index -> LBN (kInvalidBlock for holes).
  Task<std::uint32_t> bmap(const DiskInode& inode, std::uint64_t file_block);
  /// Same, allocating data/indirect blocks as needed. Mutates `inode`
  /// (caller stores it). Returns kInvalidBlock when the volume is full.
  Task<std::uint32_t> bmap_alloc(DiskInode& inode, std::uint64_t file_block);

  Task<std::uint32_t> alloc_block();
  Task<void> free_block(std::uint32_t lbn);
  Task<std::uint32_t> alloc_inode();
  Task<void> free_inode(std::uint32_t ino);
  Task<void> set_bitmap_bit(std::uint32_t bitmap_start, std::uint64_t index,
                            bool value);

  /// Reads a u32 pointer out of an (indirect) metadata block.
  Task<std::uint32_t> read_ptr(std::uint32_t block_lbn, std::size_t slot);
  Task<void> write_ptr(std::uint32_t block_lbn, std::size_t slot,
                       std::uint32_t value);

  /// Releases every data/indirect block of an inode.
  Task<void> release_blocks(DiskInode& inode);

  sim::EventLoop& loop_;
  iscsi::BlockClient& client_;
  BufferCache cache_;
  SuperBlock sb_;
  bool mounted_ = false;
  std::uint64_t block_rotor_ = 0;
  FsStats stats_;
};

}  // namespace ncache::fs
