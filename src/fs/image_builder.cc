#include "fs/image_builder.h"

#include <cstring>
#include <stdexcept>

namespace ncache::fs {

void fill_content(std::uint32_t ino, std::uint64_t offset,
                  std::span<std::byte> out) {
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = content_byte(ino, offset + i);
  }
}

std::size_t verify_content(std::uint32_t ino, std::uint64_t offset,
                           std::span<const std::byte> data) {
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (data[i] != content_byte(ino, offset + i)) return i;
  }
  return std::size_t(-1);
}

FsImageBuilder::FsImageBuilder(blockdev::BlockStore& store,
                               std::uint64_t total_blocks,
                               std::uint32_t inode_count)
    : store_(store), sb_(SuperBlock::make(total_blocks, inode_count)) {
  if (total_blocks > store.capacity_blocks()) {
    throw std::invalid_argument("FsImageBuilder: volume exceeds device");
  }
  inode_bitmap_.resize(std::size_t(sb_.inode_bitmap_blocks) * kBlockSize);
  block_bitmap_.resize(std::size_t(sb_.block_bitmap_blocks) * kBlockSize);
  inode_table_.resize(std::size_t(sb_.inode_table_blocks) * kBlockSize);

  bitmap_set(inode_bitmap_, 0, true);
  bitmap_set(inode_bitmap_, kRootIno, true);
  for (std::uint64_t b = 0; b < sb_.data_start; ++b) {
    bitmap_set(block_bitmap_, b, true);
  }
  next_block_ = sb_.data_start;

  DiskInode root;
  root.type = InodeType::Directory;
  root.nlink = 2;
  PendingInode pi{root};
  std::vector<std::byte> bytes;
  ByteWriter w(bytes);
  pi.inode.serialize(w);
  std::memcpy(inode_table_.data() + kRootIno * kInodeSize, bytes.data(),
              kInodeSize);
  dir_entries_[kRootIno] = {};
}

std::uint32_t FsImageBuilder::alloc_block_seq() {
  if (next_block_ >= sb_.total_blocks) {
    throw std::runtime_error("FsImageBuilder: volume full");
  }
  auto lbn = std::uint32_t(next_block_++);
  bitmap_set(block_bitmap_, lbn, true);
  return lbn;
}

std::uint64_t FsImageBuilder::map_file_blocks(DiskInode& inode,
                                              std::uint64_t count) {
  std::uint64_t first = next_block_;
  for (std::uint64_t fb = 0; fb < count; ++fb) {
    std::uint32_t lbn = alloc_block_seq();
    if (fb < kDirectBlocks) {
      inode.direct[fb] = lbn;
      continue;
    }
    std::uint64_t ifb = fb - kDirectBlocks;
    if (ifb < kPointersPerBlock) {
      if (inode.indirect == kInvalidBlock) {
        inode.indirect = lbn;  // use this block as the indirect block
        lbn = alloc_block_seq();
      }
      // Patch the pointer directly in the store image.
      std::vector<std::byte> ptr(4);
      ptr[0] = std::byte(lbn >> 24);
      ptr[1] = std::byte(lbn >> 16);
      ptr[2] = std::byte(lbn >> 8);
      ptr[3] = std::byte(lbn);
      auto blk = store_.peek(inode.indirect, 1);
      std::memcpy(blk.data() + ifb * 4, ptr.data(), 4);
      store_.poke(inode.indirect, blk);
      continue;
    }
    std::uint64_t dfb = ifb - kPointersPerBlock;
    if (dfb >= kPointersPerBlock * kPointersPerBlock) {
      throw std::runtime_error("FsImageBuilder: file too large");
    }
    if (inode.double_indirect == kInvalidBlock) {
      inode.double_indirect = lbn;
      lbn = alloc_block_seq();
    }
    std::size_t l1_slot = dfb / kPointersPerBlock;
    auto di = store_.peek(inode.double_indirect, 1);
    ByteReader r({di.data() + l1_slot * 4, 4});
    std::uint32_t l1 = r.u32();
    if (l1 == kInvalidBlock) {
      l1 = lbn;
      lbn = alloc_block_seq();
      di[l1_slot * 4] = std::byte(l1 >> 24);
      di[l1_slot * 4 + 1] = std::byte(l1 >> 16);
      di[l1_slot * 4 + 2] = std::byte(l1 >> 8);
      di[l1_slot * 4 + 3] = std::byte(l1);
      store_.poke(inode.double_indirect, di);
      // Zero the fresh L1 block.
      store_.poke(l1, std::vector<std::byte>(kBlockSize));
    }
    auto l1blk = store_.peek(l1, 1);
    std::size_t slot = dfb % kPointersPerBlock;
    l1blk[slot * 4] = std::byte(lbn >> 24);
    l1blk[slot * 4 + 1] = std::byte(lbn >> 16);
    l1blk[slot * 4 + 2] = std::byte(lbn >> 8);
    l1blk[slot * 4 + 3] = std::byte(lbn);
    store_.poke(l1, l1blk);
  }
  inode.block_count = std::uint32_t(count);
  return first;
}

std::uint32_t FsImageBuilder::lbn_for(const DiskInode& inode,
                                      std::uint64_t fb) const {
  if (fb < kDirectBlocks) return inode.direct[fb];
  std::uint64_t ifb = fb - kDirectBlocks;
  if (ifb < kPointersPerBlock) {
    auto blk = store_.peek(inode.indirect, 1);
    ByteReader r({blk.data() + ifb * 4, 4});
    return r.u32();
  }
  std::uint64_t dfb = ifb - kPointersPerBlock;
  auto di = store_.peek(inode.double_indirect, 1);
  ByteReader r1({di.data() + (dfb / kPointersPerBlock) * 4, 4});
  auto l1 = store_.peek(r1.u32(), 1);
  ByteReader r2({l1.data() + (dfb % kPointersPerBlock) * 4, 4});
  return r2.u32();
}

std::uint32_t FsImageBuilder::add_common(std::string_view name, InodeType type,
                                         std::uint32_t parent) {
  if (finished_) throw std::logic_error("FsImageBuilder: already finished");
  if (name.empty() || name.size() > kMaxNameLen) return 0;
  if (next_ino_ >= sb_.inode_count) return 0;
  if (!dir_entries_.contains(parent)) return 0;

  std::uint32_t ino = next_ino_++;
  bitmap_set(inode_bitmap_, ino, true);
  dir_entries_[parent].push_back(Dirent{ino, type, std::string(name)});
  if (type == InodeType::Directory) dir_entries_[ino] = {};
  return ino;
}

std::uint32_t FsImageBuilder::add_file(std::string_view name,
                                       std::uint64_t size,
                                       std::uint32_t parent) {
  std::uint32_t ino = add_common(name, InodeType::File, parent);
  if (ino == 0) return 0;

  DiskInode inode;
  inode.type = InodeType::File;
  inode.nlink = 1;
  inode.size = size;
  std::uint64_t blocks = (size + kBlockSize - 1) / kBlockSize;
  if (blocks > 0) {
    map_file_blocks(inode, blocks);
    // Fill the deterministic pattern, one block at a time (blocks are
    // contiguous by construction, with indirect blocks interleaved; use
    // the mapping we just wrote).
    std::vector<std::byte> buf(kBlockSize);
    for (std::uint64_t fb = 0; fb < blocks; ++fb) {
      fill_content(ino, fb * kBlockSize, buf);
      store_.poke(lbn_for(inode, fb), buf);
    }
  }
  std::vector<std::byte> bytes;
  ByteWriter w(bytes);
  inode.serialize(w);
  std::memcpy(inode_table_.data() + std::size_t(ino) * kInodeSize,
              bytes.data(), kInodeSize);
  return ino;
}

std::uint32_t FsImageBuilder::add_file_with_content(
    std::string_view name, std::span<const std::byte> content,
    std::uint32_t parent) {
  std::uint32_t ino = add_common(name, InodeType::File, parent);
  if (ino == 0) return 0;

  DiskInode inode;
  inode.type = InodeType::File;
  inode.nlink = 1;
  inode.size = content.size();
  std::uint64_t blocks = (content.size() + kBlockSize - 1) / kBlockSize;
  if (blocks > 0) {
    map_file_blocks(inode, blocks);
    std::vector<std::byte> buf(kBlockSize);
    for (std::uint64_t fb = 0; fb < blocks; ++fb) {
      std::fill(buf.begin(), buf.end(), std::byte{0});
      std::size_t off = fb * kBlockSize;
      std::size_t take = std::min<std::size_t>(kBlockSize, content.size() - off);
      std::memcpy(buf.data(), content.data() + off, take);
      store_.poke(lbn_for(inode, fb), buf);
    }
  }
  std::vector<std::byte> bytes;
  ByteWriter w(bytes);
  inode.serialize(w);
  std::memcpy(inode_table_.data() + std::size_t(ino) * kInodeSize,
              bytes.data(), kInodeSize);
  return ino;
}

std::uint32_t FsImageBuilder::add_dir(std::string_view name,
                                      std::uint32_t parent) {
  std::uint32_t ino = add_common(name, InodeType::Directory, parent);
  if (ino == 0) return 0;
  DiskInode inode;
  inode.type = InodeType::Directory;
  inode.nlink = 2;
  std::vector<std::byte> bytes;
  ByteWriter w(bytes);
  inode.serialize(w);
  std::memcpy(inode_table_.data() + std::size_t(ino) * kInodeSize,
              bytes.data(), kInodeSize);
  return ino;
}

void FsImageBuilder::finish() {
  if (finished_) throw std::logic_error("FsImageBuilder: already finished");

  // Materialize directory blocks.
  for (auto& [dir_ino, entries] : dir_entries_) {
    std::uint64_t blocks =
        (entries.size() + kDirentsPerBlock - 1) / kDirentsPerBlock;
    std::vector<std::byte> inode_bytes(
        inode_table_.begin() + std::size_t(dir_ino) * kInodeSize,
        inode_table_.begin() + std::size_t(dir_ino + 1) * kInodeSize);
    ByteReader r(inode_bytes);
    DiskInode dir = DiskInode::parse(r);
    if (blocks > 0) {
      map_file_blocks(dir, blocks);
      std::vector<std::byte> buf(kBlockSize);
      for (std::uint64_t fb = 0; fb < blocks; ++fb) {
        std::fill(buf.begin(), buf.end(), std::byte{0});
        std::vector<std::byte> tmp;
        ByteWriter w(tmp);
        for (std::size_t i = fb * kDirentsPerBlock;
             i < std::min(entries.size(), (fb + 1) * kDirentsPerBlock); ++i) {
          entries[i].serialize(w);
        }
        std::memcpy(buf.data(), tmp.data(), tmp.size());
        store_.poke(lbn_for(dir, fb), buf);
      }
    }
    dir.size = blocks * kBlockSize;
    std::vector<std::byte> out;
    ByteWriter w(out);
    dir.serialize(w);
    std::memcpy(inode_table_.data() + std::size_t(dir_ino) * kInodeSize,
                out.data(), kInodeSize);
  }

  auto sb_bytes = std::vector<std::byte>(kBlockSize);
  {
    std::vector<std::byte> tmp;
    ByteWriter w(tmp);
    sb_.serialize(w);
    std::memcpy(sb_bytes.data(), tmp.data(), tmp.size());
  }
  store_.poke(0, sb_bytes);
  store_.poke(sb_.inode_bitmap_start, inode_bitmap_);
  store_.poke(sb_.block_bitmap_start, block_bitmap_);
  store_.poke(sb_.inode_table_start, inode_table_);
  finished_ = true;
}

}  // namespace ncache::fs
