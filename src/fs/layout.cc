#include "fs/layout.h"

#include <stdexcept>

namespace ncache::fs {

void SuperBlock::serialize(ByteWriter& w) const {
  w.u32(magic);
  w.u64(total_blocks);
  w.u32(inode_count);
  w.u32(inode_bitmap_start);
  w.u32(inode_bitmap_blocks);
  w.u32(block_bitmap_start);
  w.u32(block_bitmap_blocks);
  w.u32(inode_table_start);
  w.u32(inode_table_blocks);
  w.u32(data_start);
}

SuperBlock SuperBlock::parse(ByteReader& r) {
  SuperBlock sb;
  sb.magic = r.u32();
  if (sb.magic != kFsMagic) throw std::runtime_error("SimpleFS: bad magic");
  sb.total_blocks = r.u64();
  sb.inode_count = r.u32();
  sb.inode_bitmap_start = r.u32();
  sb.inode_bitmap_blocks = r.u32();
  sb.block_bitmap_start = r.u32();
  sb.block_bitmap_blocks = r.u32();
  sb.inode_table_start = r.u32();
  sb.inode_table_blocks = r.u32();
  sb.data_start = r.u32();
  return sb;
}

SuperBlock SuperBlock::make(std::uint64_t total_blocks, std::uint32_t inodes) {
  SuperBlock sb;
  sb.total_blocks = total_blocks;
  sb.inode_count = inodes;
  sb.inode_bitmap_start = 1;
  sb.inode_bitmap_blocks =
      std::uint32_t((inodes + kBlockSize * 8 - 1) / (kBlockSize * 8));
  sb.block_bitmap_start = sb.inode_bitmap_start + sb.inode_bitmap_blocks;
  sb.block_bitmap_blocks = std::uint32_t((total_blocks + kBlockSize * 8 - 1) /
                                         (kBlockSize * 8));
  sb.inode_table_start = sb.block_bitmap_start + sb.block_bitmap_blocks;
  sb.inode_table_blocks =
      std::uint32_t((inodes + kInodesPerBlock - 1) / kInodesPerBlock);
  sb.data_start = sb.inode_table_start + sb.inode_table_blocks;
  if (sb.data_start >= total_blocks) {
    throw std::invalid_argument("SuperBlock::make: volume too small");
  }
  return sb;
}

void DiskInode::serialize(ByteWriter& w) const {
  std::size_t before = w.size();
  w.u8(static_cast<std::uint8_t>(type));
  w.u8(0);
  w.u16(nlink);
  w.u64(size);
  w.u32(block_count);
  for (auto b : direct) w.u32(b);
  w.u32(indirect);
  w.u32(double_indirect);
  std::size_t used = w.size() - before;
  w.zeros(kInodeSize - used);
}

DiskInode DiskInode::parse(ByteReader& r) {
  std::size_t before = r.position();
  DiskInode in;
  in.type = static_cast<InodeType>(r.u8());
  r.u8();
  in.nlink = r.u16();
  in.size = r.u64();
  in.block_count = r.u32();
  for (auto& b : in.direct) b = r.u32();
  in.indirect = r.u32();
  in.double_indirect = r.u32();
  r.skip(kInodeSize - (r.position() - before));
  return in;
}

void Dirent::serialize(ByteWriter& w) const {
  if (name.size() > kMaxNameLen) {
    throw std::invalid_argument("Dirent: name too long");
  }
  w.u32(ino);
  w.u8(static_cast<std::uint8_t>(type));
  w.u8(static_cast<std::uint8_t>(name.size()));
  w.bytes(as_bytes(name));
  w.zeros(kDirentSize - 6 - name.size());
}

Dirent Dirent::parse(ByteReader& r) {
  Dirent d;
  d.ino = r.u32();
  d.type = static_cast<InodeType>(r.u8());
  std::uint8_t len = r.u8();
  if (len > kMaxNameLen) throw std::runtime_error("Dirent: corrupt name length");
  d.name = std::string(as_string_view(r.bytes(len)));
  r.skip(kDirentSize - 6 - len);
  return d;
}

bool bitmap_test(std::span<const std::byte> bits, std::uint64_t index) {
  return (std::to_integer<unsigned>(bits[index / 8]) >> (index % 8)) & 1u;
}

void bitmap_set(std::span<std::byte> bits, std::uint64_t index, bool value) {
  auto& b = bits[index / 8];
  unsigned v = std::to_integer<unsigned>(b);
  if (value) {
    v |= 1u << (index % 8);
  } else {
    v &= ~(1u << (index % 8));
  }
  b = std::byte(v);
}

std::optional<std::uint64_t> bitmap_find_clear(std::span<const std::byte> bits,
                                               std::uint64_t start,
                                               std::uint64_t limit) {
  for (std::uint64_t i = start; i < limit; ++i) {
    if (!bitmap_test(bits, i)) return i;
  }
  for (std::uint64_t i = 0; i < start && i < limit; ++i) {
    if (!bitmap_test(bits, i)) return i;
  }
  return std::nullopt;
}

InodeLocation locate_inode(const SuperBlock& sb, std::uint32_t ino) {
  if (ino == 0 || ino >= sb.inode_count) {
    throw std::out_of_range("locate_inode: bad inode number");
  }
  return InodeLocation{sb.inode_table_start + ino / kInodesPerBlock,
                       (ino % kInodesPerBlock) * kInodeSize};
}

}  // namespace ncache::fs
