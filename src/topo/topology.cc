#include "topo/topology.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <functional>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace ncache::topo {

namespace {

[[noreturn]] void fail(const std::string& what) { throw TopologyError(what); }

[[noreturn]] void fail_at(std::size_t line, const std::string& what) {
  fail("line " + std::to_string(line) + ": " + what);
}

bool valid_id(std::string_view id) {
  if (id.empty() || id.size() > 64) return false;
  if (!std::isalpha(static_cast<unsigned char>(id.front()))) return false;
  return std::all_of(id.begin(), id.end(), [](char c) {
    unsigned char u = static_cast<unsigned char>(c);
    return std::isalnum(u) || c == '_' || c == '-' || c == '.';
  });
}

std::vector<std::string_view> split_ws(std::string_view line) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    std::size_t start = i;
    while (i < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (i > start) out.push_back(line.substr(start, i - start));
  }
  return out;
}

/// "200Mbps" -> 200e6, "1Gbps" -> 1e9, "1500000" -> 1500000.
std::uint64_t parse_bandwidth(std::string_view v, std::size_t line) {
  std::uint64_t scale = 1;
  if (v.size() > 4 && v.substr(v.size() - 4) == "Gbps") {
    scale = 1'000'000'000;
    v.remove_suffix(4);
  } else if (v.size() > 4 && v.substr(v.size() - 4) == "Mbps") {
    scale = 1'000'000;
    v.remove_suffix(4);
  } else if (v.size() > 4 && v.substr(v.size() - 4) == "Kbps") {
    scale = 1'000;
    v.remove_suffix(4);
  } else if (v.size() > 3 && v.substr(v.size() - 3) == "bps") {
    v.remove_suffix(3);
  }
  std::uint64_t n = 0;
  auto [p, ec] = std::from_chars(v.data(), v.data() + v.size(), n);
  if (ec != std::errc{} || p != v.data() + v.size()) {
    fail_at(line, "bad bandwidth value '" + std::string(v) + "'");
  }
  return n * scale;
}

/// "5ms" -> 5e6 ns, "10us" -> 1e4 ns, "500ns"/"500" -> 500 ns.
sim::Duration parse_latency(std::string_view v, std::size_t line) {
  std::int64_t scale = 1;
  if (v.size() > 2 && v.substr(v.size() - 2) == "ms") {
    scale = 1'000'000;
    v.remove_suffix(2);
  } else if (v.size() > 2 && v.substr(v.size() - 2) == "us") {
    scale = 1'000;
    v.remove_suffix(2);
  } else if (v.size() > 2 && v.substr(v.size() - 2) == "ns") {
    v.remove_suffix(2);
  } else if (v.size() > 1 && v.back() == 's' &&
             std::isdigit(static_cast<unsigned char>(v[v.size() - 2]))) {
    scale = 1'000'000'000;
    v.remove_suffix(1);
  }
  std::int64_t n = 0;
  auto [p, ec] = std::from_chars(v.data(), v.data() + v.size(), n);
  if (ec != std::errc{} || p != v.data() + v.size() || n < 0) {
    fail_at(line, "bad latency value '" + std::string(v) + "'");
  }
  return static_cast<sim::Duration>(n * scale);
}

double parse_loss(std::string_view v, std::size_t line) {
  std::string s(v);
  std::size_t used = 0;
  double p = 0.0;
  try {
    p = std::stod(s, &used);
  } catch (const std::exception&) {
    used = std::string::npos;
  }
  if (used != s.size() || p < 0.0 || p >= 1.0) {
    fail_at(line, "bad loss value '" + s + "' (want [0,1))");
  }
  return p;
}

std::string format_double(double v) {
  std::ostringstream os;
  os << v;  // default precision round-trips through parse for our ranges
  return os.str();
}

void append_profile(std::ostringstream& os, const LinkProfile& link) {
  if (link.bandwidth_bps) os << " bandwidth=" << *link.bandwidth_bps;
  if (link.latency_ns) os << " latency=" << *link.latency_ns;
  if (link.loss != 0.0) os << " loss=" << format_double(link.loss);
}

}  // namespace

const char* to_string(NodeKind kind) {
  switch (kind) {
    case NodeKind::Client: return "client";
    case NodeKind::Switch: return "switch";
    case NodeKind::Balancer: return "balancer";
    case NodeKind::Server: return "server";
    case NodeKind::Target: return "target";
  }
  return "?";
}

NodeKind parse_kind(std::string_view token) {
  if (token == "client") return NodeKind::Client;
  if (token == "switch") return NodeKind::Switch;
  if (token == "balancer") return NodeKind::Balancer;
  if (token == "server") return NodeKind::Server;
  if (token == "target") return NodeKind::Target;
  fail("unknown node kind '" + std::string(token) +
       "' (want client|switch|balancer|server|target)");
}

const NodeSpec* Topology::find(std::string_view id) const {
  for (const NodeSpec& n : nodes) {
    if (n.id == id) return &n;
  }
  return nullptr;
}

std::vector<const NodeSpec*> Topology::of_kind(NodeKind kind) const {
  std::vector<const NodeSpec*> out;
  for (const NodeSpec& n : nodes) {
    if (n.kind == kind) out.push_back(&n);
  }
  return out;
}

std::vector<const EdgeSpec*> Topology::edges_of(std::string_view id) const {
  std::vector<const EdgeSpec*> out;
  for (const EdgeSpec& e : edges) {
    if (e.a == id || e.b == id) out.push_back(&e);
  }
  return out;
}

void Topology::validate() const {
  std::unordered_map<std::string_view, const NodeSpec*> by_id;
  for (const NodeSpec& n : nodes) {
    if (!valid_id(n.id)) fail("invalid node id '" + n.id + "'");
    if (!by_id.emplace(n.id, &n).second) {
      fail("duplicate node id '" + n.id + "'");
    }
  }

  std::size_t switches = 0, targets = 0, balancers = 0, servers = 0;
  for (const NodeSpec& n : nodes) {
    switch (n.kind) {
      case NodeKind::Switch: ++switches; break;
      case NodeKind::Target: ++targets; break;
      case NodeKind::Balancer: ++balancers; break;
      case NodeKind::Server: ++servers; break;
      case NodeKind::Client: break;
    }
  }
  if (switches == 0) fail("topology needs at least one switch");
  if (servers == 0) fail("topology needs at least one server");
  if (targets != 1) {
    fail("topology needs exactly one target (storage), have " +
         std::to_string(targets));
  }
  if (balancers > 1) {
    fail("at most one balancer supported, have " + std::to_string(balancers));
  }

  // Hosts (non-switches) must cable into switches; count their NICs.
  std::unordered_map<std::string_view, std::size_t> nic_count;
  std::unordered_map<std::string_view, std::vector<std::string_view>> trunks;
  std::unordered_set<std::string> seen_edges;
  for (const EdgeSpec& e : edges) {
    auto ia = by_id.find(e.a);
    auto ib = by_id.find(e.b);
    if (ia == by_id.end()) fail("link references unknown node '" + e.a + "'");
    if (ib == by_id.end()) fail("link references unknown node '" + e.b + "'");
    if (e.a == e.b) fail("self-link on node '" + e.a + "'");
    if (e.link.bandwidth_bps && *e.link.bandwidth_bps == 0) {
      fail("zero-bandwidth link " + e.a + " <-> " + e.b);
    }
    if (e.link.loss < 0.0 || e.link.loss >= 1.0) {
      fail("loss out of [0,1) on link " + e.a + " <-> " + e.b);
    }
    bool a_switch = ia->second->kind == NodeKind::Switch;
    bool b_switch = ib->second->kind == NodeKind::Switch;
    if (!a_switch && !b_switch) {
      fail("link " + e.a + " <-> " + e.b +
           " connects two hosts; hosts cable into switches");
    }
    if (a_switch && b_switch) {
      // Parallel trunks are not supported; a host repeated against the
      // same switch is fine — that is just a multi-NIC server (Fig 5b).
      std::string key = e.a < e.b ? e.a + "|" + e.b : e.b + "|" + e.a;
      if (!seen_edges.insert(key).second) {
        fail("duplicate trunk " + e.a + " <-> " + e.b);
      }
      trunks[e.a].push_back(e.b);
      trunks[e.b].push_back(e.a);
    } else {
      const NodeSpec* host = a_switch ? ib->second : ia->second;
      ++nic_count[host->id];
    }
  }

  for (const NodeSpec& n : nodes) {
    if (n.kind == NodeKind::Switch) continue;
    std::size_t nics = nic_count[n.id];
    if (nics == 0) fail("node '" + n.id + "' has no link to any switch");
    if (nics > 1 && n.kind != NodeKind::Server) {
      fail("node '" + n.id + "' is multi-homed; only servers may be");
    }
  }

  // Known attributes. `cores=` turns a server SMP (K run queues with RSS
  // flow steering — see sim/cpu_model.h); the instantiator ignores
  // attributes it does not know, but the ones it does must be sane.
  for (const NodeSpec& n : nodes) {
    auto it = n.attrs.find("cores");
    if (it == n.attrs.end()) continue;
    if (n.kind != NodeKind::Server) {
      fail("node '" + n.id + "': cores= applies only to servers");
    }
    unsigned long k = 0;
    std::size_t used = 0;
    try {
      k = std::stoul(it->second, &used);
    } catch (const std::exception&) {
      used = 0;
    }
    if (used != it->second.size() || k == 0 || k > 64) {
      fail("node '" + n.id + "': cores=" + it->second +
           " (want an integer in [1, 64])");
    }
  }

  // The switch graph (trunks) must be connected and acyclic: MAC
  // announcements and floods would otherwise loop forever.
  if (switches > 1) {
    std::unordered_set<std::string_view> visited;
    std::function<void(std::string_view, std::string_view)> dfs =
        [&](std::string_view at, std::string_view from) {
          if (!visited.insert(at).second) {
            fail("switch trunk cycle through '" + std::string(at) + "'");
          }
          bool skipped_parent = false;
          for (std::string_view next : trunks[at]) {
            if (next == from && !skipped_parent) {
              skipped_parent = true;  // one edge back to the parent is fine
              continue;
            }
            dfs(next, at);
          }
        };
    std::string_view root;
    for (const NodeSpec& n : nodes) {
      if (n.kind == NodeKind::Switch) { root = n.id; break; }
    }
    dfs(root, root);
    if (visited.size() != switches) {
      fail("switch fabric is disconnected (" +
           std::to_string(visited.size()) + " of " +
           std::to_string(switches) + " switches reachable)");
    }
  }
}

std::string Topology::describe() const {
  std::ostringstream os;
  os << "topology " << name << "\n";
  for (const NodeSpec& n : nodes) {
    os << "node " << n.id << " " << to_string(n.kind);
    for (const auto& [k, v] : n.attrs) os << " " << k << "=" << v;
    os << "\n";
  }
  for (const EdgeSpec& e : edges) {
    os << "link " << e.a << " " << e.b;
    append_profile(os, e.link);
    os << "\n";
  }
  return os.str();
}

Topology Topology::parse(std::string_view text) {
  Topology topo;
  bool named = false;
  std::size_t lineno = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos
                                           : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++lineno;
    if (auto hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    auto tokens = split_ws(line);
    if (tokens.empty()) continue;

    std::string_view directive = tokens[0];
    if (directive == "topology") {
      if (tokens.size() != 2) fail_at(lineno, "usage: topology <name>");
      if (named) fail_at(lineno, "duplicate 'topology' directive");
      if (!valid_id(tokens[1])) {
        fail_at(lineno, "invalid topology name '" + std::string(tokens[1]) +
                            "'");
      }
      topo.name = std::string(tokens[1]);
      named = true;
    } else if (directive == "node") {
      if (tokens.size() < 3) {
        fail_at(lineno, "usage: node <id> <kind> [key=value...]");
      }
      NodeSpec n;
      n.id = std::string(tokens[1]);
      if (!valid_id(n.id)) fail_at(lineno, "invalid node id '" + n.id + "'");
      try {
        n.kind = parse_kind(tokens[2]);
      } catch (const TopologyError& e) {
        fail_at(lineno, e.what());
      }
      for (std::size_t i = 3; i < tokens.size(); ++i) {
        auto eq = tokens[i].find('=');
        if (eq == std::string_view::npos || eq == 0) {
          fail_at(lineno, "bad attribute '" + std::string(tokens[i]) +
                              "' (want key=value)");
        }
        n.attrs[std::string(tokens[i].substr(0, eq))] =
            std::string(tokens[i].substr(eq + 1));
      }
      topo.nodes.push_back(std::move(n));
    } else if (directive == "link") {
      if (tokens.size() < 3) {
        fail_at(lineno,
                "usage: link <a> <b> [bandwidth=|latency=|loss=]");
      }
      EdgeSpec e;
      e.a = std::string(tokens[1]);
      e.b = std::string(tokens[2]);
      for (std::size_t i = 3; i < tokens.size(); ++i) {
        auto eq = tokens[i].find('=');
        if (eq == std::string_view::npos || eq == 0) {
          fail_at(lineno, "bad link option '" + std::string(tokens[i]) + "'");
        }
        std::string_view key = tokens[i].substr(0, eq);
        std::string_view value = tokens[i].substr(eq + 1);
        if (key == "bandwidth") {
          e.link.bandwidth_bps = parse_bandwidth(value, lineno);
        } else if (key == "latency") {
          e.link.latency_ns = parse_latency(value, lineno);
        } else if (key == "loss") {
          e.link.loss = parse_loss(value, lineno);
        } else {
          fail_at(lineno, "unknown link option '" + std::string(key) + "'");
        }
      }
      topo.edges.push_back(std::move(e));
    } else {
      fail_at(lineno, "unknown directive '" + std::string(directive) +
                          "' (want topology|node|link)");
    }
  }
  return topo;
}

TopologyBuilder::TopologyBuilder(std::string name) {
  topo_.name = std::move(name);
}

TopologyBuilder& TopologyBuilder::add_node(std::string id, NodeKind kind) {
  NodeSpec n;
  n.id = std::move(id);
  n.kind = kind;
  topo_.nodes.push_back(std::move(n));
  return *this;
}

TopologyBuilder& TopologyBuilder::client(std::string id) {
  return add_node(std::move(id), NodeKind::Client);
}
TopologyBuilder& TopologyBuilder::ether_switch(std::string id) {
  return add_node(std::move(id), NodeKind::Switch);
}
TopologyBuilder& TopologyBuilder::balancer(std::string id) {
  return add_node(std::move(id), NodeKind::Balancer);
}
TopologyBuilder& TopologyBuilder::server(std::string id) {
  return add_node(std::move(id), NodeKind::Server);
}
TopologyBuilder& TopologyBuilder::target(std::string id) {
  return add_node(std::move(id), NodeKind::Target);
}

TopologyBuilder& TopologyBuilder::cores(unsigned k) {
  if (topo_.nodes.empty() || topo_.nodes.back().kind != NodeKind::Server) {
    fail("cores() must follow a server()");
  }
  return attr("cores", std::to_string(k));
}

TopologyBuilder& TopologyBuilder::attr(std::string key, std::string value) {
  if (topo_.nodes.empty()) fail("attr() before any node");
  topo_.nodes.back().attrs[std::move(key)] = std::move(value);
  return *this;
}

TopologyBuilder& TopologyBuilder::link(std::string a, std::string b) {
  EdgeSpec e;
  e.a = std::move(a);
  e.b = std::move(b);
  topo_.edges.push_back(std::move(e));
  return *this;
}

TopologyBuilder& TopologyBuilder::bandwidth(std::uint64_t bps) {
  if (topo_.edges.empty()) fail("bandwidth() before any link");
  topo_.edges.back().link.bandwidth_bps = bps;
  return *this;
}

TopologyBuilder& TopologyBuilder::latency(sim::Duration ns) {
  if (topo_.edges.empty()) fail("latency() before any link");
  topo_.edges.back().link.latency_ns = ns;
  return *this;
}

TopologyBuilder& TopologyBuilder::loss(double probability) {
  if (topo_.edges.empty()) fail("loss() before any link");
  topo_.edges.back().link.loss = probability;
  return *this;
}

Topology TopologyBuilder::build() const {
  topo_.validate();
  return topo_;
}

}  // namespace ncache::topo
