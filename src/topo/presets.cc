#include "topo/presets.h"

namespace ncache::topo::presets {

Topology single_server(int server_nics, int client_count) {
  TopologyBuilder b("single_server");
  b.ether_switch("switch0").target("storage0").server("server0");
  for (int i = 0; i < client_count; ++i) {
    b.client("client" + std::to_string(i));
  }
  b.link("storage0", "switch0");
  for (int n = 0; n < server_nics; ++n) {
    b.link("server0", "switch0");
  }
  for (int i = 0; i < client_count; ++i) {
    b.link("client" + std::to_string(i), "switch0");
  }
  return b.build();
}

Topology cluster(int server_count, int client_count) {
  TopologyBuilder b("cluster");
  b.ether_switch("switch0").target("storage0").balancer("lb0");
  for (int i = 0; i < server_count; ++i) {
    b.server("server" + std::to_string(i));
  }
  for (int i = 0; i < client_count; ++i) {
    b.client("client" + std::to_string(i));
  }
  b.link("storage0", "switch0").link("lb0", "switch0");
  for (int i = 0; i < server_count; ++i) {
    b.link("server" + std::to_string(i), "switch0");
  }
  for (int i = 0; i < client_count; ++i) {
    b.link("client" + std::to_string(i), "switch0");
  }
  return b.build();
}

Topology cluster_racks(int rack_count, int clients_per_rack,
                       unsigned server_cores) {
  TopologyBuilder b("cluster_racks");
  b.ether_switch("core0").target("storage0");
  b.link("storage0", "core0");
  int client = 0;
  for (int r = 0; r < rack_count; ++r) {
    std::string rack = "rack" + std::to_string(r);
    std::string server = "server" + std::to_string(r);
    b.ether_switch(rack);
    b.link(rack, "core0");
    b.server(server);
    if (server_cores > 1) b.cores(server_cores);
    b.link(server, rack);
    for (int c = 0; c < clients_per_rack; ++c, ++client) {
      std::string id = "client" + std::to_string(client);
      b.client(id);
      b.link(id, rack);
    }
  }
  return b.build();
}

Topology two_racks_wan(int client_count, std::uint64_t wan_bandwidth_bps,
                       sim::Duration wan_latency_ns, double wan_loss) {
  TopologyBuilder b("two_racks_wan");
  b.ether_switch("rack_a").ether_switch("rack_b");
  b.target("storage0").server("server0");
  for (int i = 0; i < client_count; ++i) {
    b.client("client" + std::to_string(i));
  }
  b.link("rack_a", "rack_b")
      .bandwidth(wan_bandwidth_bps)
      .latency(wan_latency_ns)
      .loss(wan_loss);
  b.link("storage0", "rack_b").link("server0", "rack_b");
  for (int i = 0; i < client_count; ++i) {
    b.link("client" + std::to_string(i), "rack_a");
  }
  return b.build();
}

}  // namespace ncache::topo::presets
