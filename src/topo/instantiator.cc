#include "topo/instantiator.h"

#include <stdexcept>
#include <unordered_set>

#include "common/logging.h"
#include "netbuf/slab_cache.h"

namespace ncache::topo {

using proto::make_ipv4;

World::World(Topology topo, WorldConfig config)
    : topo_(std::move(topo)), config_(std::move(config)) {
  topo_.validate();
  if (config_.mode == core::PassMode::Baseline) config_.peering = false;

  if (config_.partitioned) build_domains();
  book_ = std::make_shared<proto::AddressBook>();
  // Partitioned note: the injector lives in domain 0; scheduled fault
  // plans are a single-loop feature (chaos suites run classic worlds).
  faults_ = std::make_unique<fault::FaultInjector>(
      engine_ ? *domain_loops_.front() : loop_, config_.fault_seed);

  build_fabric();
  build_hosts();
  build_roles();
  register_all_metrics();
}

void World::build_domains() {
  engine_ = std::make_unique<sim::ParallelEngine>(
      config_.threads == 0 ? 1 : config_.threads);
  for (const NodeSpec& n : topo_.nodes) {
    if (n.kind != NodeKind::Switch) continue;
    domain_loops_.push_back(std::make_unique<sim::EventLoop>());
    domain_slabs_.push_back(std::make_unique<netbuf::SlabCache>());
    switch_domain_.emplace(
        n.id, engine_->add_domain(*domain_loops_.back(), n.id));
  }
  // Every host must be rack-local: its models live on one domain loop, so
  // its NICs cannot cable into two different domains.
  for (const NodeSpec& n : topo_.nodes) {
    if (n.kind == NodeKind::Switch) continue;
    const EdgeSpec* first = nullptr;
    for (const EdgeSpec* e : topo_.edges_of(n.id)) {
      const std::string& sw = e->a == n.id ? e->b : e->a;
      if (!switch_domain_.count(sw)) continue;  // host-host edge: validated out
      if (!first) {
        first = e;
        continue;
      }
      const std::string& fsw = first->a == n.id ? first->b : first->a;
      if (fsw != sw) {
        throw TopologyError("partitioned world: host '" + n.id +
                            "' cables into switches '" + fsw + "' and '" +
                            sw + "' (hosts must be rack-local)");
      }
    }
  }
  // Conservative lookahead = the minimum trunk latency: nothing crosses a
  // domain boundary faster than the fastest trunk.
  sim::Duration lookahead = config_.costs.link_latency_ns;
  bool first_trunk = true;
  for (const EdgeSpec& e : topo_.edges) {
    if (!switch_domain_.count(e.a) || !switch_domain_.count(e.b)) continue;
    sim::Duration lat = e.link.latency_ns.value_or(config_.costs.link_latency_ns);
    lookahead = first_trunk ? lat : std::min(lookahead, lat);
    first_trunk = false;
  }
  engine_->set_lookahead(lookahead);
  // Each domain recycles buffers through its own slab while its window
  // runs — keeps the slabs single-threaded and their counters independent
  // of the worker-thread count.
  engine_->set_scope_hooks(
      [this](unsigned d) { netbuf::SlabCache::bind(domain_slabs_[d].get()); },
      [](unsigned) { netbuf::SlabCache::bind(nullptr); });
}

unsigned World::domain_of(std::string_view node_id) const {
  if (!engine_) {
    throw std::logic_error("World::domain_of: world is not partitioned");
  }
  auto sw = switch_domain_.find(std::string(node_id));
  if (sw != switch_domain_.end()) return sw->second;
  auto it = hosts_.find(std::string(node_id));
  if (it == hosts_.end()) {
    throw std::out_of_range("World: no node '" + std::string(node_id) + "'");
  }
  return switch_domain_.at(it->second.nic_switch.front()->name());
}

sim::EventLoop& World::loop_of(const NodeSpec& n) {
  if (!engine_) return loop_;
  for (const EdgeSpec* e : topo_.edges_of(n.id)) {
    const std::string& sw = e->a == n.id ? e->b : e->a;
    auto it = switch_domain_.find(sw);
    if (it != switch_domain_.end()) return *domain_loops_[it->second];
  }
  throw TopologyError("partitioned world: host '" + n.id +
                      "' has no switch edge");
}

World::Host& World::host(std::string_view id) {
  auto it = hosts_.find(std::string(id));
  if (it == hosts_.end()) {
    throw std::out_of_range("World: no host node '" + std::string(id) + "'");
  }
  return it->second;
}

Node& World::node(std::string_view id) { return *host(id).node; }

proto::EthernetSwitch& World::ether(std::string_view id) {
  auto it = switches_.find(std::string(id));
  if (it == switches_.end()) {
    throw std::out_of_range("World: no switch '" + std::string(id) + "'");
  }
  return *it->second;
}

sim::DuplexLink& World::cable(std::string_view host_id, std::size_t nic) {
  Host& h = host(host_id);
  proto::EthernetSwitch* sw = h.nic_switch.at(nic);
  return sw->cable_of(h.node->stack.nic(nic));
}

sim::DuplexLink& World::trunk(std::string_view a, std::string_view b) {
  return ether(a).trunk_of(ether(b));
}

fault::Partition World::make_partition(const std::vector<std::string>& side,
                                       bool one_way) {
  std::unordered_set<std::string> side_switches;
  std::vector<std::string> side_hosts;
  for (const std::string& id : side) {
    if (switches_.contains(id)) {
      side_switches.insert(id);
    } else {
      (void)host(id);  // throws std::out_of_range on unknown ids
      side_hosts.push_back(id);
    }
  }

  fault::Partition part;
  for (const std::string& id : side) {
    if (!part.name.empty()) part.name += '+';
    part.name += id;
  }
  if (one_way) part.name += " (one-way)";

  auto domain_loop = [this](const std::string& sw) -> sim::EventLoop* {
    return engine_ ? domain_loops_[switch_domain_.at(sw)].get() : nullptr;
  };

  // Trunks with exactly one endpoint inside the side cross the boundary.
  // build_fabric created each trunk via a.connect_switch(b), so a_to_b
  // transmits from e.a's switch (and lives on e.a's domain loop).
  for (const EdgeSpec& e : topo_.edges) {
    if (!switches_.contains(e.a) || !switches_.contains(e.b)) continue;
    bool a_in = side_switches.contains(e.a);
    bool b_in = side_switches.contains(e.b);
    if (a_in == b_in) continue;
    sim::DuplexLink& wire = trunk(e.a, e.b);
    if (a_in) {  // inbound direction is b -> a
      part.cuts.push_back({&wire.b_to_a, domain_loop(e.b)});
      if (!one_way) part.cuts.push_back({&wire.a_to_b, domain_loop(e.a)});
    } else {     // inbound direction is a -> b
      part.cuts.push_back({&wire.a_to_b, domain_loop(e.a)});
      if (!one_way) part.cuts.push_back({&wire.b_to_a, domain_loop(e.b)});
    }
  }

  // Listed hosts: cut their NIC cables. Both directions of a host cable
  // run on the host's (= its switch's) domain loop; a_to_b is NIC->switch,
  // b_to_a is switch->NIC (the inbound direction).
  for (const std::string& id : side_hosts) {
    Host& h = host(id);
    sim::EventLoop* l = engine_ ? h.loop : nullptr;
    for (std::size_t n = 0; n < h.node->stack.nic_count(); ++n) {
      // Skip cables into switches that are themselves inside the side —
      // rack-internal traffic survives a rack partition.
      if (side_switches.contains(h.nic_switch[n]->name())) continue;
      auto& c = h.nic_switch[n]->cable_of(h.node->stack.nic(n));
      part.cuts.push_back({&c.b_to_a, l});
      if (!one_way) part.cuts.push_back({&c.a_to_b, l});
    }
  }

  if (part.cuts.empty()) {
    throw TopologyError("make_partition: side '" + part.name +
                        "' has no crossing links to cut");
  }
  return part;
}

proto::Ipv4Addr World::server_ip(int i, int nic) const {
  const ServerStack& s = *servers_.at(std::size_t(i));
  return s.node->stack.nic(std::size_t(nic)).ip();
}

proto::Ipv4Addr World::client_ip(int i) const {
  return clients_.at(std::size_t(i))->node->stack.nic(0).ip();
}

void World::build_fabric() {
  for (const NodeSpec& n : topo_.nodes) {
    if (n.kind != NodeKind::Switch) continue;
    sim::EventLoop& swloop =
        engine_ ? *domain_loops_[switch_domain_.at(n.id)] : loop_;
    auto sw =
        std::make_unique<proto::EthernetSwitch>(swloop, n.id, config_.costs);
    switch_order_.push_back(sw.get());
    switches_.emplace(n.id, std::move(sw));
  }
  for (const EdgeSpec& e : topo_.edges) {
    auto a = switches_.find(e.a);
    auto b = switches_.find(e.b);
    if (a == switches_.end() || b == switches_.end()) continue;  // host edge
    std::uint64_t bw = e.link.bandwidth_bps.value_or(
        config_.costs.link_bandwidth_bps);
    sim::Duration lat =
        e.link.latency_ns.value_or(config_.costs.link_latency_ns);
    sim::DuplexLink& wire = a->second->connect_switch(*b->second, bw, lat);
    if (engine_) {
      // Trunks are the only cables crossing domains: deliveries to the
      // far switch are staged with the engine and merged at its barrier.
      unsigned da = switch_domain_.at(e.a);
      unsigned db = switch_domain_.at(e.b);
      wire.a_to_b.set_remote_hook(engine_->remote_hook(da, db));
      wire.b_to_a.set_remote_hook(engine_->remote_hook(db, da));
    }
  }
}

void World::build_hosts() {
  // Address assignment follows the classic testbed conventions (see
  // instantiator.h); `slot` runs over server NICs in declaration order so
  // the single 2-NIC server and the N 1-NIC replicas both land on the
  // historical 10.0.0.10+ / 0x20+ sequence.
  std::uint64_t server_slot = 0;
  std::uint64_t client_index = 0;

  for (const NodeSpec& n : topo_.nodes) {
    if (n.kind == NodeKind::Switch) continue;

    // This host's NICs: its switch edges, in edge-declaration order.
    std::vector<NicSpec> specs;
    std::vector<proto::EthernetSwitch*> nic_switch;
    for (const EdgeSpec* e : topo_.edges_of(n.id)) {
      const std::string& sw_id = e->a == n.id ? e->b : e->a;
      auto sw = switches_.find(sw_id);
      if (sw == switches_.end()) continue;  // validated: cannot happen
      NicSpec spec;
      spec.ether = sw->second.get();
      if (e->link.bandwidth_bps) spec.bandwidth_bps = *e->link.bandwidth_bps;
      spec.latency_ns = e->link.latency_ns;
      switch (n.kind) {
        case NodeKind::Target:
          spec.mac = 0x10;
          spec.ip = kStorageIp;
          break;
        case NodeKind::Balancer:
          spec.mac = 0x50;
          spec.ip = kLbIp;
          break;
        case NodeKind::Server:
          spec.mac = 0x20 + server_slot;
          spec.ip = make_ipv4(10, 0, 0, std::uint8_t(10 + server_slot));
          ++server_slot;
          break;
        case NodeKind::Client:
          spec.mac = 0x30 + client_index;
          spec.ip = make_ipv4(10, 0, 0, std::uint8_t(100 + client_index));
          break;
        case NodeKind::Switch:
          break;
      }
      nic_switch.push_back(sw->second.get());
      specs.push_back(spec);
    }
    if (n.kind == NodeKind::Client) ++client_index;

    Host h;
    h.spec = &n;
    h.loop = &loop_of(n);
    h.node = make_wired_node(*h.loop, config_.costs, book_,
                             *switch_order_.front(), n.id, specs);
    h.nic_switch = std::move(nic_switch);
    if (n.kind == NodeKind::Server) {
      // SMP: the node attribute wins over the config default; K = 1 keeps
      // the historical single-core model bit-for-bit.
      unsigned cores = config_.server_cores == 0 ? 1 : config_.server_cores;
      auto attr = n.attrs.find("cores");
      if (attr != n.attrs.end()) {
        cores = unsigned(std::stoul(attr->second));  // validated [1, 64]
      }
      if (cores != 1) h.node->cpu.set_cores(cores);
      h.node->cpu.set_steal_threshold(config_.costs.cpu_steal_threshold_ns);
    }
    auto [it, _] = hosts_.emplace(n.id, std::move(h));
    host_order_.push_back(&it->second);

    switch (n.kind) {
      case NodeKind::Target: storage_ = &it->second; break;
      case NodeKind::Balancer: lb_host_ = &it->second; break;
      case NodeKind::Server: {
        auto s = std::make_unique<ServerStack>();
        s->id = n.id;
        s->node = it->second.node.get();
        server_ips_.push_back(s->node->stack.nic(0).ip());
        servers_.push_back(std::move(s));
        break;
      }
      case NodeKind::Client: clients_.push_back(&it->second); break;
      case NodeKind::Switch: break;
    }
  }

  // Steady-state loss: a deterministic Bernoulli drop hook per lossy link
  // direction, seeded from (fault_seed, ordinal) so adding a lossy edge
  // never perturbs earlier ones.
  std::uint64_t ordinal = 0;
  for (const EdgeSpec& e : topo_.edges) {
    if (e.link.loss == 0.0) {
      continue;
    }
    bool a_switch = switches_.count(e.a) != 0;
    bool b_switch = switches_.count(e.b) != 0;
    sim::DuplexLink* wire = nullptr;
    if (a_switch && b_switch) {
      wire = &trunk(e.a, e.b);
    } else {
      const std::string& host_id = a_switch ? e.b : e.a;
      // Which NIC of the host this edge is: count prior switch edges.
      std::size_t nic = 0;
      for (const EdgeSpec* he : topo_.edges_of(host_id)) {
        if (he == &e) break;
        ++nic;
      }
      wire = &cable(host_id, nic);
    }
    double p = e.link.loss;
    for (sim::Link* dir : {&wire->a_to_b, &wire->b_to_a}) {
      loss_rngs_.push_back(
          std::make_unique<Pcg32>(config_.fault_seed, ordinal++));
      Pcg32* rng = loss_rngs_.back().get();
      dir->set_drop_hook([rng, p](std::size_t) { return rng->uniform() < p; });
    }
  }
}

void World::build_roles() {
  // Target-side stack (on the storage host's loop — its own domain in a
  // partitioned world).
  store_ = std::make_unique<blockdev::BlockStore>(
      *storage_->loop, config_.costs, "raid0", config_.volume_blocks);
  image_ = std::make_unique<fs::FsImageBuilder>(*store_, config_.volume_blocks,
                                                config_.inode_count);
  target_ = std::make_unique<iscsi::IscsiTarget>(storage_->node->stack,
                                                 *store_);
  if (config_.wire_format_target) {
    core::NetCentricCache::Config wc;
    wc.pool_budget_bytes = config_.wire_target_budget_bytes;
    wire_target_ = std::make_unique<core::WireFormatTarget>(
        storage_->node->stack, wc);
    wire_target_->attach(*target_);
  }

  // Balancer (and the peer list every PeerCache shares). Multi-server
  // worlds without a balancer (per-rack direct binding) still peer when
  // configured to.
  const bool clustered =
      lb_host_ != nullptr ||
      (config_.peer_without_balancer && servers_.size() > 1);
  std::vector<cluster::Peer> peer_list;
  if (clustered) {
    for (std::size_t i = 0; i < server_ips_.size(); ++i) {
      peer_list.push_back({std::uint32_t(i), server_ips_[i]});
    }
  }
  if (lb_host_) {
    std::vector<cluster::LoadBalancer::Member> member_list;
    for (std::size_t i = 0; i < server_ips_.size(); ++i) {
      member_list.push_back({std::uint32_t(i), server_ips_[i]});
    }
    cluster::LoadBalancer::Config lc;
    lc.routing = config_.routing;
    lc.heartbeat_interval = config_.heartbeat_interval;
    lc.heartbeat_miss_limit = config_.heartbeat_miss_limit;
    lc.readmit_quiet_rounds = config_.readmit_quiet_rounds;
    lc.admission.enabled = config_.overload.admission;
    lc.admission.aimd = config_.overload.aimd;
    lc.admission.qdepth_high = config_.overload.admission_qdepth_high;
    lb_ = std::make_unique<cluster::LoadBalancer>(lb_host_->node->stack, lc,
                                                  std::move(member_list));
  }

  // Server stacks.
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    ServerStack& s = *servers_[i];
    s.initiator = std::make_unique<iscsi::IscsiInitiator>(
        s.node->stack, server_ips_[i], kStorageIp, /*target_id=*/0);
    if (config_.overload.retry_budget) {
      s.retry_budget =
          std::make_unique<overload::RetryBudget>(config_.overload.budget);
      s.initiator->set_retry_budget(s.retry_budget.get());
    }

    switch (config_.mode) {
      case core::PassMode::Original:
        s.initiator->set_payload_policy(iscsi::PayloadPolicy::Copy);
        break;
      case core::PassMode::NCache: {
        core::NetCentricCache::Config cc;
        cc.pool_budget_bytes = config_.ncache_budget_bytes;
        s.ncache = std::make_unique<core::NCacheModule>(s.node->stack, cc);
        s.ncache->attach_egress();
        s.ncache->attach_initiator(*s.initiator);
        if (config_.overload.brownout) {
          auto bc = config_.overload.brownout_cfg;
          bc.enabled = true;
          s.ncache->brownout_config() = bc;
        }
        break;
      }
      case core::PassMode::Baseline:
        s.initiator->set_payload_policy(iscsi::PayloadPolicy::Junk);
        break;
    }

    sim::EventLoop& sloop = *host(s.id).loop;
    if (clustered) {
      cluster::PeerCache::Config pc;
      pc.self_id = std::uint32_t(i);
      pc.target_id = 0;
      pc.mode = config_.mode;
      pc.enabled = config_.peering;
      pc.push_on_miss = config_.push_on_miss;
      s.peers = std::make_unique<cluster::PeerCache>(s.node->stack, pc,
                                                     peer_list);
      s.block_client = std::make_unique<cluster::PeerBlockClient>(
          *s.initiator, *s.peers, s.ncache.get());
      s.fs = std::make_unique<fs::SimpleFs>(sloop, *s.block_client,
                                            config_.fs_cache_blocks,
                                            config_.fs_readahead_blocks);
      // Late wiring: the agent serves from / invalidates into these
      // caches, but the block client had to exist before the fs could.
      s.peers->attach(s.ncache.get(), s.fs.get());
      if (s.retry_budget) s.peers->set_retry_budget(s.retry_budget.get());
      if (config_.overload.qdepth_feedback) {
        // Zero-suppressed piggyback: the ack gains a depth word only when
        // the replica's NFS queue is non-empty (see PeerCache::Heartbeat).
        ServerStack* sp = &s;
        s.peers->set_qdepth_probe([sp]() -> std::size_t {
          return (sp->nfs && !sp->crashed) ? sp->nfs->queue_depth() : 0;
        });
      }
    } else {
      s.fs = std::make_unique<fs::SimpleFs>(sloop, *s.initiator,
                                            config_.fs_cache_blocks,
                                            config_.fs_readahead_blocks);
    }
  }
}

void World::register_all_metrics() {
  // Canonical registration order: sim counters, then every node's
  // subsystems in topology declaration order, then the fault injector.
  // NFS servers/clients join in start_nfs(). Node ids are the metric
  // labels, so JSON keys are identical across world shapes.
  metrics_.counter("sim", "clamped_events", [this] {
    if (!engine_) return loop_.clamped_events();
    std::uint64_t total = 0;
    for (auto& l : domain_loops_) total += l->clamped_events();
    return total;
  });
  // Partitioned worlds recycle through per-domain slabs; the sums are
  // deterministic (domain execution does not depend on the worker count).
  metrics_.counter("sim", "netbuf.slab_hits", [this] {
    if (!engine_) return netbuf::SlabCache::process().hits();
    std::uint64_t total = 0;
    for (auto& s : domain_slabs_) total += s->hits();
    return total;
  });
  metrics_.counter("sim", "netbuf.slab_misses", [this] {
    if (!engine_) return netbuf::SlabCache::process().misses();
    std::uint64_t total = 0;
    for (auto& s : domain_slabs_) total += s->misses();
    return total;
  });

  std::size_t server_i = 0;
  for (Host* h : host_order_) {
    const std::string& id = h->spec->id;
    h->node->register_metrics(metrics_, id);
    switch (h->spec->kind) {
      case NodeKind::Target:
        store_->register_metrics(metrics_, id);
        if (wire_target_) {
          wire_target_->cache().register_metrics(metrics_, id, "wire.cache");
        }
        break;
      case NodeKind::Balancer:
        lb_->register_metrics(metrics_, id);
        break;
      case NodeKind::Server: {
        ServerStack& s = *servers_[server_i++];
        s.initiator->register_metrics(metrics_, id);
        s.fs->cache().register_metrics(metrics_, id);
        if (s.ncache) s.ncache->register_metrics(metrics_, id);
        if (s.peers) s.peers->register_metrics(metrics_, id);
        if (s.block_client) s.block_client->register_metrics(metrics_, id);
        if (s.retry_budget) {
          overload::RetryBudget* b = s.retry_budget.get();
          metrics_.counter(id, "retry_budget.denied",
                           [b] { return b->denied(); });
          metrics_.counter(id, "retry_budget.withdrawn",
                           [b] { return b->withdrawn(); });
          metrics_.on_reset([b] { b->reset_counters(); });
        }
        break;
      }
      case NodeKind::Client:
      case NodeKind::Switch:
        break;
    }
  }
  faults_->register_metrics(metrics_, "faults");
}

Task<void> World::bring_up_server(int i) {
  ServerStack& s = *servers_.at(std::size_t(i));
  bool ok = co_await s.initiator->login();
  if (!ok) {
    throw std::runtime_error("World: iSCSI login failed (" + s.id + ")");
  }
  co_await s.fs->mount();
}

Task<void> World::bring_up_counted(int i, std::atomic<int>* remaining) {
  co_await bring_up_server(i);
  remaining->fetch_sub(1, std::memory_order_relaxed);
}

void World::start_base() {
  if (started_) return;
  started_ = true;
  if (!image_->finished()) image_->finish();
  target_->start();
  if (!engine_) {
    for (int i = 0; i < server_count(); ++i) {
      sim::sync_wait(loop_, bring_up_server(i));
    }
    return;
  }
  // Partitioned: every server logs in concurrently, the engine drives the
  // cross-domain iSCSI traffic until all mounts land.
  std::atomic<int> remaining{server_count()};
  for (int i = 0; i < server_count(); ++i) {
    bring_up_counted(i, &remaining)
        .detach(host(servers_[std::size_t(i)]->id).loop->reaper());
  }
  engine_->run(
      [&] { return remaining.load(std::memory_order_relaxed) == 0; });
  if (remaining.load(std::memory_order_relaxed) != 0) {
    throw std::runtime_error("World: partitioned bring-up stalled");
  }
}

void World::start_nfs() {
  start_base();
  for (int i = 0; i < server_count(); ++i) {
    ServerStack& s = *servers_[std::size_t(i)];
    if (s.peers) s.peers->start();
    nfs::NfsServer::Config sc;
    sc.mode = config_.mode;
    sc.daemons = config_.nfs_daemons;
    sc.overload.enabled = config_.overload.server_queue;
    sc.overload.codel = config_.overload.codel;
    sc.overload.queue_limit = config_.overload.nfs_queue_limit;
    s.nfs = std::make_unique<nfs::NfsServer>(s.node->stack, *s.fs, sc,
                                             s.ncache.get());
    if (config_.overload.brownout && s.ncache) {
      s.nfs->set_shed_probe(
          [nc = s.ncache.get()] { return nc->shed_probe(); });
    }
    if (s.peers && config_.peering) {
      TaskReaper& reaper = host(s.id).loop->reaper();
      s.nfs->set_write_observer(
          [this, i, &reaper](std::uint64_t fh, std::uint64_t offset,
                             std::uint32_t count) {
            if (servers_[std::size_t(i)]->crashed) return;
            write_coherence_task(i, fh, offset, count).detach(reaper);
          });
    }
    s.nfs->register_metrics(metrics_, s.id);
    s.nfs->start();
  }
  if (lb_) lb_->start();

  // Clients bind to the VIP when a balancer fronts the servers; with one
  // server, round-robin over its NICs (the paper's 2-NIC experiment);
  // with several servers and no balancer, to the server on their own
  // switch (per-rack direct binding — presets::cluster_racks).
  std::size_t s0_nics = servers_.front()->node->stack.nic_count();
  for (int i = 0; i < client_count(); ++i) {
    proto::Ipv4Addr dst;
    if (lb_) {
      dst = kLbIp;
    } else if (servers_.size() == 1) {
      dst = server_ip(0, int(std::size_t(i) % s0_nics));
    } else {
      dst = server_ip(0, 0);
      proto::EthernetSwitch* rack =
          clients_[std::size_t(i)]->nic_switch.front();
      for (int s = 0; s < server_count(); ++s) {
        if (host(servers_[std::size_t(s)]->id).nic_switch.front() == rack) {
          dst = server_ip(s, 0);
          break;
        }
      }
    }
    nfs_clients_.push_back(std::make_unique<nfs::NfsClient>(
        clients_[std::size_t(i)]->node->stack, client_ip(i), dst,
        std::uint16_t(700 + i)));
    const std::string& client_id = clients_[std::size_t(i)]->spec->id;
    if (config_.overload.retry_budget) {
      client_budgets_.push_back(
          std::make_unique<overload::RetryBudget>(config_.overload.budget));
      overload::RetryBudget* b = client_budgets_.back().get();
      nfs_clients_.back()->set_retry_budget(b);
      metrics_.counter(client_id, "retry_budget.denied",
                       [b] { return b->denied(); });
      metrics_.counter(client_id, "retry_budget.withdrawn",
                       [b] { return b->withdrawn(); });
      metrics_.on_reset([b] { b->reset_counters(); });
    }
    nfs_clients_.back()->register_metrics(metrics_, client_id);
  }
}

Task<void> World::write_coherence_task(int i, std::uint64_t fh,
                                       std::uint64_t offset,
                                       std::uint32_t count) {
  // Order matters: the dirtied blocks must reach the target before peers
  // are told to drop their copies, or a peer could re-fetch stale bytes.
  ServerStack& s = *servers_.at(std::size_t(i));
  std::vector<std::uint32_t> lbns =
      co_await s.fs->map_range(std::uint32_t(fh), offset, count);
  if (lbns.empty()) co_return;
  co_await s.fs->sync();
  if (s.crashed) co_return;  // died while flushing
  s.peers->broadcast_invalidate(lbns);
}

void World::set_host_cables(Host& h, bool up) {
  for (std::size_t n = 0; n < h.node->stack.nic_count(); ++n) {
    auto& cable = h.nic_switch[n]->cable_of(h.node->stack.nic(n));
    cable.a_to_b.set_admin_up(up);
    cable.b_to_a.set_admin_up(up);
  }
}

void World::crash_server(int i) {
  ServerStack& s = *servers_.at(std::size_t(i));
  if (s.crashed) return;
  s.crashed = true;
  // Cables first: frames already queued by the dying daemons must vanish
  // on the wire instead of racing the restarted instance.
  set_host_cables(host(s.id), false);
  if (s.peers) s.peers->stop();
  s.initiator->abort_session(/*allow_reconnect=*/false);
  if (s.nfs) s.nfs->stop();
  s.fs->cache().discard_all();
  if (s.ncache) s.ncache->cache().clear();
  NC_WARN("topo", "%s crashed: caches and sessions lost", s.id.c_str());
}

void World::restart_server(int i) {
  ServerStack& s = *servers_.at(std::size_t(i));
  if (!s.crashed) return;
  s.crashed = false;
  set_host_cables(host(s.id), true);
  restart_task(i).detach(host(s.id).loop->reaper());
}

Task<void> World::restart_task(int i) {
  ServerStack& s = *servers_.at(std::size_t(i));
  bool ok = co_await s.initiator->login();
  if (!ok) {
    NC_WARN("topo", "%s: iSCSI re-login failed after restart", s.id.c_str());
    co_return;
  }
  if (s.peers) s.peers->start();
  if (s.nfs) s.nfs->start();
  NC_WARN("topo", "%s restarted: session re-established", s.id.c_str());
}

}  // namespace ncache::topo
