// Canonical topology shapes. Every testbed, bench and fault plan in the
// repo builds one of these (or describes its own graph with
// TopologyBuilder / Topology::parse — the presets are convenience, not a
// separate mechanism).
#pragma once

#include "topo/topology.h"

namespace ncache::topo::presets {

/// The paper's 4-node testbed (§5.2): one switch, one storage target, one
/// app server with `server_nics` NICs (1 for Fig 5a, 2 for Fig 5b),
/// `client_count` clients. Node ids: switch0, storage0, server0,
/// client0..
Topology single_server(int server_nics = 1, int client_count = 2);

/// The M×N×1 scale-out cluster: one switch, one storage target, a load
/// balancer fronting `server_count` replicas, `client_count` clients.
/// Node ids: switch0, storage0, lb0, server0.., client0..
Topology cluster(int server_count = 2, int client_count = 2);

/// `rack_count` racks, each a switch with one NCache server and
/// `clients_per_rack` clients, all trunked to a core switch that holds
/// the storage target. No balancer: each client mounts its rack-local
/// server directly and the servers peer cooperatively. One event-loop
/// domain per switch, so this is the shape the parallel engine scales
/// on (set WorldConfig::partitioned/threads). `server_cores` > 1 marks
/// every server SMP (cores= attribute). Node ids: core0, storage0,
/// rack0.., server0.., client0.. (clients numbered across racks).
Topology cluster_racks(int rack_count = 2, int clients_per_rack = 2,
                       unsigned server_cores = 1);

/// Two racks joined by a WAN trunk — the shape the bespoke constructors
/// could not express. Clients sit on rack_a; the server and storage on
/// rack_b; the trunk carries the given profile (defaults: 200 Mb/s,
/// 5 ms, lossless). Node ids: rack_a, rack_b, storage0, server0,
/// client0..
Topology two_racks_wan(int client_count = 2,
                       std::uint64_t wan_bandwidth_bps = 200'000'000,
                       sim::Duration wan_latency_ns = 5 * sim::kMillisecond,
                       double wan_loss = 0.0);

}  // namespace ncache::topo::presets
