// Instantiator: materializes a Topology into a live simulated world.
//
// One construction path for every shape the repo runs — the paper's 4-node
// testbed, the M×N×1 scale-out cluster, and anything else a Topology can
// describe (e.g. two racks joined by a WAN trunk). Testbed and
// ClusterTestbed are thin presets over this class.
//
// What instantiation does, in deterministic order:
//
//   1. Switches are created in declaration order; switch-switch edges
//      become trunks with the edge's link profile.
//   2. Hosts are created and cabled in declaration order; a host's edges
//      (in declaration order) are its NICs. Addresses follow the classic
//      testbed conventions so same-seed runs are byte-identical with the
//      historical hand-wired constructors:
//        target    10.0.0.1     MAC 0x10
//        balancer  10.0.0.5     MAC 0x50
//        servers   10.0.0.10+s  MAC 0x20+s   (s = global server-NIC slot)
//        clients   10.0.0.100+i MAC 0x30+i
//   3. Role stacks attach: the target node gets the BlockStore +
//      FsImageBuilder + IscsiTarget (+ optional wire-format cache); each
//      server gets an initiator, the PassMode policy (Original / NCache /
//      Baseline), a SimpleFs, and — when a balancer exists — a PeerCache
//      and PeerBlockClient; the balancer node gets the LoadBalancer.
//   4. Every subsystem registers metrics under its topology node id
//      ("server0", "storage0", "lb0", "client3"), giving identical JSON
//      keys across single-server and cluster worlds. A seeded
//      FaultInjector is attached ("faults" node) and lossy edges get
//      deterministic Bernoulli drop hooks derived from the same seed.
//
// start_nfs() brings the world up in the canonical order: image finish,
// target start, per-server iSCSI login + mount, per-server peering agent +
// NFS server start, balancer start, NFS clients bind (to the VIP when a
// balancer exists, else round-robin over server0's NICs, source port
// 700+i). crash_server()/restart_server() keep the cables-first crash
// discipline.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "blockdev/block_store.h"
#include "cluster/load_balancer.h"
#include "cluster/peer_cache.h"
#include "common/metrics.h"
#include "common/overload.h"
#include "common/rng.h"
#include "core/ncache_module.h"
#include "core/wire_target.h"
#include "fault/fault_injector.h"
#include "fs/image_builder.h"
#include "fs/simple_fs.h"
#include "iscsi/initiator.h"
#include "iscsi/target.h"
#include "nfs/client.h"
#include "nfs/server.h"
#include "netbuf/slab_cache.h"
#include "proto/switch.h"
#include "sim/parallel.h"
#include "topo/node.h"
#include "topo/topology.h"

namespace ncache::topo {

/// Runtime knobs — everything about a world that is not its shape.
/// (The Topology says *what is wired to what*; WorldConfig says how the
/// software on top behaves.)
struct WorldConfig {
  core::PassMode mode = core::PassMode::Original;

  // SMP: run-queue count for every server CPU; a server node's `cores=`
  // attribute overrides this per node. 1 = the paper's single-CPU
  // pass-through server (byte-identical to the historical model).
  unsigned server_cores = 1;

  // Parallel simulation: partition the world into one event-loop domain
  // per switch (per rack) and drive it with `threads` workers through
  // engine().run()/run_until(). Requires every host's NICs to cable into
  // a single switch. false = classic single-loop world driven via loop().
  bool partitioned = false;
  unsigned threads = 1;

  // Cooperative NCache peering between servers of a balancer-less
  // multi-server world (e.g. presets::cluster_racks, where each rack's
  // clients bind to their rack server directly). Balancer worlds always
  // get peering (subject to `peering` below).
  bool peer_without_balancer = false;

  // Storage volume.
  std::uint64_t volume_blocks = 64 * 1024;  ///< 256 MB default
  std::uint32_t inode_count = 16 * 1024;

  // Per-server caches.
  std::size_t fs_cache_blocks = 4096;
  std::size_t fs_readahead_blocks = 8;
  std::size_t ncache_budget_bytes = 192u << 20;

  // §6 extension: wire-format block cache on the storage server.
  bool wire_format_target = false;
  std::size_t wire_target_budget_bytes = 96u << 20;

  int nfs_daemons = 8;

  // Cluster knobs — consulted only when the topology has a balancer.
  bool peering = true;  ///< cooperative cache (forced off in Baseline)
  bool push_on_miss = true;
  cluster::Routing routing = cluster::Routing::FlowHash;
  sim::Duration heartbeat_interval = 25 * sim::kMillisecond;
  int heartbeat_miss_limit = 3;
  int readmit_quiet_rounds = 2;  ///< flap damping (see LoadBalancer::Config)

  /// Seeds the world's FaultInjector and the loss hooks of lossy edges.
  std::uint64_t fault_seed = 1;

  /// The overload-control spine. Every gate defaults off; a world built
  /// with this struct untouched is byte-identical (event streams and
  /// metrics JSON) to one built before the spine existed.
  struct OverloadConfig {
    bool server_queue = false;     ///< NFS CoDel shedding + metadata priority
    bool admission = false;        ///< AIMD token bucket at the balancer VIP
    bool qdepth_feedback = false;  ///< replica queue depth on heartbeat acks
    bool retry_budget = false;     ///< per-node budgets (NFS/iSCSI/peer paths)
    bool brownout = false;         ///< NCache tier ladder + NFS shed probe

    overload::CoDelState::Config codel;  ///< server queue discipline
    std::size_t nfs_queue_limit = 8192;  ///< hard bound (always enforced)
    overload::AimdRate::Config aimd;     ///< admission controller
    std::uint32_t admission_qdepth_high = 16;  ///< congestion signal level
    overload::RetryBudget::Config budget;
    /// Tier thresholds / TTL / hysteresis; the embedded `enabled` flag is
    /// ignored (the `brownout` gate above decides).
    core::NCacheModule::BrownoutConfig brownout_cfg;
  };
  OverloadConfig overload;

  sim::CostModel costs{};
};

class World {
 public:
  /// Validates `topo` and materializes it (throws TopologyError on a
  /// malformed graph).
  World(Topology topo, WorldConfig config);

  /// Everything attached to one server node.
  struct ServerStack {
    std::string id;  ///< topology node id ("server0")
    Node* node = nullptr;
    std::unique_ptr<iscsi::IscsiInitiator> initiator;
    std::unique_ptr<core::NCacheModule> ncache;           ///< NCache mode only
    std::unique_ptr<cluster::PeerCache> peers;            ///< balancer worlds
    std::unique_ptr<cluster::PeerBlockClient> block_client;
    std::unique_ptr<fs::SimpleFs> fs;
    std::unique_ptr<nfs::NfsServer> nfs;  ///< created in start_nfs()
    /// Node-wide retry budget (overload.retry_budget): the initiator and
    /// peer retransmit paths on this node share it.
    std::unique_ptr<overload::RetryBudget> retry_budget;
    bool crashed = false;
  };

  // ---- bring-up --------------------------------------------------------------
  /// Phase 1 (before start): populate the storage volume directly.
  fs::FsImageBuilder& image() { return *image_; }
  /// Target up, every server logs in and mounts. No NFS (kHTTPd and other
  /// app servers attach externally).
  void start_base();
  /// start_base() + peering agents, NFS servers, balancer, NFS clients.
  void start_nfs();

  // ---- graph access ----------------------------------------------------------
  /// The world's event loop (single-loop worlds only; a partitioned world
  /// has one loop per domain — drive it through engine()).
  sim::EventLoop& loop() {
    if (engine_) {
      throw std::logic_error(
          "World::loop(): world is partitioned; drive it via engine()");
    }
    return loop_;
  }
  const sim::EventLoop& loop() const {
    if (engine_) {
      throw std::logic_error(
          "World::loop(): world is partitioned; drive it via engine()");
    }
    return loop_;
  }

  /// The parallel engine of a partitioned world; throws when the world
  /// was built with partitioned = false.
  sim::ParallelEngine& engine() {
    if (!engine_) {
      throw std::logic_error("World::engine(): world is not partitioned");
    }
    return *engine_;
  }
  bool partitioned() const noexcept { return engine_ != nullptr; }
  /// Domain id of a host or switch node (partitioned worlds).
  unsigned domain_of(std::string_view node_id) const;
  const Topology& topology() const noexcept { return topo_; }
  const WorldConfig& config() const noexcept { return config_; }
  const sim::CostModel& costs() const noexcept { return config_.costs; }

  /// Host node by topology id; throws std::out_of_range on unknown ids
  /// (switches are not hosts — see ether()).
  Node& node(std::string_view id);
  proto::EthernetSwitch& ether(std::string_view id);
  /// The first-declared switch (every legacy shape has exactly one).
  proto::EthernetSwitch& ether() { return *switch_order_.front(); }
  /// The cable behind `host_id`'s nic-th NIC.
  sim::DuplexLink& cable(std::string_view host_id, std::size_t nic = 0);
  /// The trunk cable between two switches.
  sim::DuplexLink& trunk(std::string_view a, std::string_view b);

  // ---- roles -----------------------------------------------------------------
  int server_count() const noexcept { return int(servers_.size()); }
  int client_count() const noexcept { return int(clients_.size()); }

  ServerStack& server(int i) { return *servers_.at(std::size_t(i)); }
  const ServerStack& server(int i) const {
    return *servers_.at(std::size_t(i));
  }
  Node& client_node(int i) { return *clients_.at(std::size_t(i))->node; }
  /// Created by start_nfs().
  nfs::NfsClient& nfs_client(int i) { return *nfs_clients_.at(std::size_t(i)); }

  Node& storage_node() noexcept { return *storage_->node; }
  blockdev::BlockStore& store() noexcept { return *store_; }
  iscsi::IscsiTarget& target() noexcept { return *target_; }
  const iscsi::IscsiTarget& target() const noexcept { return *target_; }
  core::WireFormatTarget* wire_target() noexcept { return wire_target_.get(); }
  /// Null when the topology has no balancer.
  cluster::LoadBalancer* lb() noexcept { return lb_.get(); }

  proto::Ipv4Addr storage_ip() const noexcept { return kStorageIp; }
  /// The balancer VIP; 0 when the topology has no balancer.
  proto::Ipv4Addr vip() const noexcept { return lb_ ? kLbIp : 0; }
  proto::Ipv4Addr server_ip(int i, int nic = 0) const;
  proto::Ipv4Addr client_ip(int i) const;

  static constexpr proto::Ipv4Addr kStorageIp = proto::make_ipv4(10, 0, 0, 1);
  static constexpr proto::Ipv4Addr kLbIp = proto::make_ipv4(10, 0, 0, 5);

  // ---- observability / faults ------------------------------------------------
  MetricRegistry& metrics() noexcept { return metrics_; }
  const MetricRegistry& metrics() const noexcept { return metrics_; }
  void reset_stats() { metrics_.reset_all(); }

  /// The world's seeded injector (registered under the "faults" node);
  /// FaultPlans apply here.
  fault::FaultInjector& faults() noexcept { return *faults_; }

  // ---- fault scenarios -------------------------------------------------------
  /// Resolves the set of link cuts that isolates `side` — a list of
  /// topology ids naming switches (whole racks) and/or hosts — from the
  /// rest of the world. Trunks crossing the boundary and the NIC cables
  /// of listed hosts are cut; `one_way` cuts only the directions that
  /// deliver *into* the side (an asymmetric failure: the side still
  /// transmits, but hears nothing). In a partitioned world each cut
  /// carries its owning domain loop, so the resulting Partition is safe
  /// under the ParallelEngine. Throws TopologyError when the side has no
  /// crossing links (nothing would be isolated).
  fault::Partition make_partition(const std::vector<std::string>& side,
                                  bool one_way = false);

  /// Power-fails server `i`: cables down first (on every fabric a
  /// multi-homed server touches), then peering agent, iSCSI session, NFS
  /// daemons, and caches. Metric registrations survive.
  void crash_server(int i);
  /// Brings server `i` back asynchronously: cables up, iSCSI re-login,
  /// peering + NFS daemons relaunch. Safe from fault-plan callbacks.
  void restart_server(int i);
  bool server_crashed(int i) const { return servers_.at(std::size_t(i))->crashed; }

 private:
  struct Host {
    const NodeSpec* spec = nullptr;
    std::unique_ptr<Node> node;
    /// Per-NIC switch, parallel to the stack's NICs (multi-rack servers
    /// cable into different fabrics).
    std::vector<proto::EthernetSwitch*> nic_switch;
    /// The event loop this host's models run on (a domain loop in a
    /// partitioned world, loop_ otherwise).
    sim::EventLoop* loop = nullptr;
  };

  void build_domains();
  void build_fabric();
  void build_hosts();
  void build_roles();
  void register_all_metrics();
  void set_host_cables(Host& host, bool up);

  Host& host(std::string_view id);
  sim::EventLoop& loop_of(const NodeSpec& n);
  Task<void> bring_up_server(int i);
  Task<void> bring_up_counted(int i, std::atomic<int>* remaining);
  Task<void> restart_task(int i);
  Task<void> write_coherence_task(int i, std::uint64_t fh,
                                  std::uint64_t offset, std::uint32_t count);

  Topology topo_;
  WorldConfig config_;
  sim::EventLoop loop_;
  /// Partitioned worlds: one loop + one buffer slab per switch domain
  /// (declaration order), and the engine that drives them. The engine is
  /// declared after the loops so its worker pool is gone before they are.
  std::vector<std::unique_ptr<sim::EventLoop>> domain_loops_;
  std::vector<std::unique_ptr<netbuf::SlabCache>> domain_slabs_;
  std::unique_ptr<sim::ParallelEngine> engine_;
  std::unordered_map<std::string, unsigned> switch_domain_;
  std::shared_ptr<proto::AddressBook> book_;

  std::unordered_map<std::string, std::unique_ptr<proto::EthernetSwitch>>
      switches_;
  std::vector<proto::EthernetSwitch*> switch_order_;
  std::unordered_map<std::string, Host> hosts_;
  std::vector<Host*> host_order_;

  Host* storage_ = nullptr;
  Host* lb_host_ = nullptr;
  std::vector<std::unique_ptr<ServerStack>> servers_;
  std::vector<Host*> clients_;
  /// First-NIC IP per server, in declaration order (the peer/member list).
  std::vector<proto::Ipv4Addr> server_ips_;

  std::unique_ptr<blockdev::BlockStore> store_;
  std::unique_ptr<fs::FsImageBuilder> image_;
  std::unique_ptr<iscsi::IscsiTarget> target_;
  std::unique_ptr<core::WireFormatTarget> wire_target_;
  std::unique_ptr<cluster::LoadBalancer> lb_;
  std::vector<std::unique_ptr<nfs::NfsClient>> nfs_clients_;
  /// One budget per client node (overload.retry_budget).
  std::vector<std::unique_ptr<overload::RetryBudget>> client_budgets_;

  std::unique_ptr<fault::FaultInjector> faults_;
  /// One deterministic RNG per lossy link direction (seeded from
  /// fault_seed + ordinal), kept alive for the drop hooks.
  std::vector<std::unique_ptr<Pcg32>> loss_rngs_;

  bool started_ = false;

  /// Declared last: sampling callbacks hold raw pointers into the members
  /// above, so the registry must never outlive them.
  MetricRegistry metrics_;
};

}  // namespace ncache::topo
