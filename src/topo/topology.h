// Declarative topology description — the one graph every testbed, bench
// and fault plan is built from.
//
// A Topology is a validated graph of typed nodes (client, switch,
// balancer, server, target) and edges (cables / trunks with optional
// bandwidth / latency / loss profiles). Three equivalent ways to make
// one:
//
//   * TopologyBuilder — fluent API:
//       auto t = TopologyBuilder("two_racks")
//                    .ether_switch("rack_a").ether_switch("rack_b")
//                    .client("client0").server("server0").target("storage0")
//                    .link("client0", "rack_a")
//                    .link("rack_a", "rack_b")
//                        .bandwidth(200'000'000).latency(5'000'000)
//                    .link("server0", "rack_b").link("storage0", "rack_b")
//                    .build();
//   * Topology::parse — the text format (one directive per line):
//       topology two_racks
//       node rack_a switch
//       node client0 client
//       link rack_a rack_b bandwidth=200Mbps latency=5ms loss=0.001
//   * presets.h — the canonical paper shapes (single server, M×N×1
//     cluster, two racks over a WAN trunk).
//
// `describe()` emits the canonical text form; parse(describe()) is the
// identity (round-trip determinism is tested). Validation catches the
// malformed graphs early: duplicate ids, dangling edges, zero-bandwidth
// links, hosts wired to hosts, trunk cycles, unsupported role counts.
//
// Node ids double as metric-registry node labels, so JSON output keys are
// identical across single-server and cluster worlds ("server0",
// "client3", "storage0", "lb0" — see instantiator.h).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "sim/event_loop.h"

namespace ncache::topo {

enum class NodeKind : std::uint8_t { Client, Switch, Balancer, Server, Target };

const char* to_string(NodeKind kind);
/// Parses a kind token ("client", "switch", ...); throws TopologyError.
NodeKind parse_kind(std::string_view token);

class TopologyError : public std::runtime_error {
 public:
  explicit TopologyError(const std::string& what) : std::runtime_error(what) {}
};

/// Per-edge link profile. Unset fields inherit the cost model's in-rack
/// cable (gigabit line rate, 10 us store-and-forward hop).
struct LinkProfile {
  std::optional<std::uint64_t> bandwidth_bps;
  std::optional<sim::Duration> latency_ns;
  double loss = 0.0;  ///< steady-state random frame-drop probability [0,1)

  bool operator==(const LinkProfile&) const = default;
};

struct NodeSpec {
  std::string id;
  NodeKind kind = NodeKind::Client;
  /// Free-form key=value attributes (kept sorted for deterministic
  /// describe()); the instantiator reads the ones it knows.
  std::map<std::string, std::string> attrs;

  bool operator==(const NodeSpec&) const = default;
};

struct EdgeSpec {
  std::string a;
  std::string b;
  LinkProfile link;

  bool operator==(const EdgeSpec&) const = default;
};

struct Topology {
  std::string name = "topology";
  std::vector<NodeSpec> nodes;  ///< declaration order is construction order
  std::vector<EdgeSpec> edges;  ///< a host's edge order is its NIC order

  const NodeSpec* find(std::string_view id) const;
  std::vector<const NodeSpec*> of_kind(NodeKind kind) const;
  /// Edges touching `id`, in declaration order (a host's NICs).
  std::vector<const EdgeSpec*> edges_of(std::string_view id) const;

  /// Structural validation; throws TopologyError on the first defect.
  /// Guarantees the graph is instantiable: unique well-formed ids, every
  /// edge resolvable with at least one switch endpoint, no zero-bandwidth
  /// or lossy>=1 links, hosts single-homed to switches (servers may be
  /// multi-NIC), the switch-trunk graph connected and acyclic, exactly
  /// one target, at most one balancer, at least one server and one
  /// switch.
  void validate() const;

  /// Canonical text form; Topology::parse(describe()) reproduces this
  /// topology exactly (same order, same normalized numbers).
  std::string describe() const;

  /// Parses the text format. Accepts '#' comments, blank lines, and
  /// human units (bandwidth=1Gbps|200Mbps|5000000, latency=5ms|10us|500ns,
  /// loss=0.001). Throws TopologyError with a line number on bad input.
  /// Note: parse does NOT validate the graph — call validate() (the
  /// builder and instantiator do).
  static Topology parse(std::string_view text);

  bool operator==(const Topology&) const = default;
};

/// Fluent construction. Node methods append a node; `link` appends an
/// edge, and bandwidth/latency/loss refine the most recent edge.
/// `build()` validates and returns the finished graph.
class TopologyBuilder {
 public:
  explicit TopologyBuilder(std::string name = "topology");

  TopologyBuilder& client(std::string id);
  TopologyBuilder& ether_switch(std::string id);
  TopologyBuilder& balancer(std::string id);
  TopologyBuilder& server(std::string id);
  TopologyBuilder& target(std::string id);
  /// Attaches key=value to the most recently added node.
  TopologyBuilder& attr(std::string key, std::string value);
  /// Marks the most recently added server SMP: `cores=k` run queues with
  /// RSS flow steering (k in [1, 64]; validated at build()).
  TopologyBuilder& cores(unsigned k);

  TopologyBuilder& link(std::string a, std::string b);
  /// Refine the most recently added edge.
  TopologyBuilder& bandwidth(std::uint64_t bps);
  TopologyBuilder& latency(sim::Duration ns);
  TopologyBuilder& loss(double probability);

  /// Validates and returns the topology (throws TopologyError).
  Topology build() const;
  /// The graph as described so far, unvalidated.
  const Topology& peek() const noexcept { return topo_; }

 private:
  TopologyBuilder& add_node(std::string id, NodeKind kind);

  Topology topo_;
};

}  // namespace ncache::topo
