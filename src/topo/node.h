// Node construction and cabling shared by every materialized topology.
//
// Moved here from src/testbed/wiring.{h,cc}: the topology Instantiator is
// now the one place that builds simulated hosts and cables them into
// switches; `testbed/wiring.h` remains as a compatibility alias. A Node is
// one simulated host — CPU + copy engine + network stack — and the
// helpers keep the cables-first crash discipline in one place instead of
// duplicated per topology.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "netbuf/copy_engine.h"
#include "proto/stack.h"
#include "proto/switch.h"
#include "sim/cpu_model.h"

namespace ncache {
class MetricRegistry;
}

namespace ncache::topo {

/// One simulated host: CPU + copy engine + network stack.
struct Node {
  Node(sim::EventLoop& loop, const sim::CostModel& costs,
       std::shared_ptr<proto::AddressBook> book, std::string name)
      : cpu(loop, name + ".cpu"),
        copier(cpu, costs),
        stack(loop, cpu, copier, costs, name, std::move(book)) {}

  sim::CpuModel cpu;
  netbuf::CopyEngine copier;
  proto::NetworkStack stack;

  /// Registers this host's CPU, copy engine and stack/NIC metrics under
  /// one node label.
  void register_metrics(MetricRegistry& registry, const std::string& node) {
    cpu.register_metrics(registry, node);
    copier.register_metrics(registry, node);
    stack.register_metrics(registry, node);
  }
};

/// One NIC of a node under construction. Unset bandwidth/latency inherit
/// the cost model's line rate (the classic in-rack cable).
struct NicSpec {
  proto::MacAddr mac = 0;
  proto::Ipv4Addr ip = 0;
  std::uint64_t bandwidth_bps = 0;          ///< 0: costs.link_bandwidth_bps
  std::optional<sim::Duration> latency_ns;  ///< unset: costs.link_latency_ns
  proto::EthernetSwitch* ether = nullptr;   ///< nullptr: caller's default
};

/// Builds a Node, adds its NICs and cables each into `ether` (or into the
/// per-NIC switch override — multi-rack nodes cable into different
/// fabrics).
std::unique_ptr<Node> make_wired_node(sim::EventLoop& loop,
                                      const sim::CostModel& costs,
                                      std::shared_ptr<proto::AddressBook> book,
                                      proto::EthernetSwitch& ether,
                                      std::string name,
                                      const std::vector<NicSpec>& nics);

/// Admin-up/-down both directions of every cable behind `stack`'s NICs.
/// Crash paths drop cables before tearing the node down so frames already
/// queued by dying daemons vanish on the wire instead of racing the
/// restarted instance.
void set_cables(proto::EthernetSwitch& ether, proto::NetworkStack& stack,
                bool up);

}  // namespace ncache::topo
