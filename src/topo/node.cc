#include "topo/node.h"

namespace ncache::topo {

std::unique_ptr<Node> make_wired_node(sim::EventLoop& loop,
                                      const sim::CostModel& costs,
                                      std::shared_ptr<proto::AddressBook> book,
                                      proto::EthernetSwitch& ether,
                                      std::string name,
                                      const std::vector<NicSpec>& nics) {
  auto node = std::make_unique<Node>(loop, costs, std::move(book),
                                     std::move(name));
  for (const auto& spec : nics) {
    node->stack.add_nic(spec.mac, spec.ip);
    proto::EthernetSwitch& sw = spec.ether ? *spec.ether : ether;
    std::uint64_t bw =
        spec.bandwidth_bps ? spec.bandwidth_bps : costs.link_bandwidth_bps;
    sim::Duration lat =
        spec.latency_ns ? *spec.latency_ns : costs.link_latency_ns;
    sw.connect(node->stack.nic(node->stack.nic_count() - 1), bw, lat);
  }
  return node;
}

void set_cables(proto::EthernetSwitch& ether, proto::NetworkStack& stack,
                bool up) {
  for (std::size_t n = 0; n < stack.nic_count(); ++n) {
    auto& cable = ether.cable_of(stack.nic(n));
    cable.a_to_b.set_admin_up(up);
    cable.b_to_a.set_admin_up(up);
  }
}

}  // namespace ncache::topo
