#include "nfs/client.h"

#include <algorithm>

#include "common/logging.h"
#include "common/metrics.h"

namespace ncache::nfs {

using netbuf::CopyClass;
using netbuf::MsgBuffer;

NfsClient::NfsClient(proto::NetworkStack& stack, proto::Ipv4Addr local_ip,
                     proto::Ipv4Addr server_ip, std::uint16_t local_port,
                     std::uint16_t server_port)
    : stack_(stack),
      local_ip_(local_ip),
      server_ip_(server_ip),
      local_port_(local_port),
      server_port_(server_port),
      next_xid_(std::uint32_t(local_port) << 16 | 1),
      rng_(0xADA9717ull ^ local_port, local_ip) {
  stack_.udp_bind(local_port_,
                  [this](proto::Ipv4Addr, std::uint16_t, proto::Ipv4Addr,
                         std::uint16_t, MsgBuffer m) {
                    on_datagram(std::move(m));
                  });
}

NfsClient::~NfsClient() { stack_.udp_unbind(local_port_); }

void NfsClient::on_datagram(MsgBuffer msg) {
  if (msg.size() < kReplyHeaderBytes) return;
  auto head = msg.peek_bytes(kReplyHeaderBytes);
  ByteReader r(head);
  auto reply = ReplyHeader::parse(r);
  if (!reply) return;
  auto it = pending_.find(reply->xid);
  if (it == pending_.end()) return;  // duplicate after retransmit: drop
  // Karn's rule: a reply to a retransmitted call is ambiguous (it may
  // answer any copy), so only clean exchanges feed the estimator.
  if (!it->second.retransmitted) {
    observe_rtt(stack_.loop().now() - it->second.first_sent);
  }
  auto resolve = std::move(it->second.resolve);
  pending_.erase(it);
  ++stats_.replies;
  // Every answered call is goodput: it earns back a fraction of a retry
  // token, so sustained retries stay a bounded fraction of successes.
  if (retry_budget_) retry_budget_->deposit(stack_.loop().now());
  resolve(std::move(msg));
}

void NfsClient::observe_rtt(sim::Duration rtt) {
  // Jacobson/Karels in signed ns (Duration is unsigned; the EWMA error
  // term goes negative).
  auto r = std::int64_t(rtt);
  if (srtt_ == 0) {
    srtt_ = rtt;
    rttvar_ = rtt / 2;
  } else {
    auto srtt = std::int64_t(srtt_);
    auto rttvar = std::int64_t(rttvar_);
    std::int64_t err = r - srtt;
    srtt += err / 8;
    rttvar += ((err < 0 ? -err : err) - rttvar) / 4;
    srtt_ = sim::Duration(srtt < 0 ? 0 : srtt);
    rttvar_ = sim::Duration(rttvar < 0 ? 0 : rttvar);
  }
  rto_ = std::clamp(srtt_ + 4 * rttvar_, kMinRto, kMaxRto);
}

sim::Duration NfsClient::attempt_timeout(int n) {
  // Exponential backoff on the learned RTO, capped, then ±12.5% jitter so
  // a fleet of clients does not retransmit in lockstep after a shared
  // outage.
  sim::Duration base = rto_;
  for (int i = 1; i < n && base < kMaxRto; ++i) base *= 2;
  base = std::min(base, kMaxRto);
  auto swing = std::int64_t(base / 8);
  std::int64_t offset = std::int64_t(rng_.range(0, std::uint64_t(2 * swing))) -
                        swing;
  return sim::Duration(std::int64_t(base) + offset);
}

Task<std::optional<MsgBuffer>> NfsClient::call(Proc proc,
                                               std::span<const std::byte> args,
                                               MsgBuffer payload) {
  std::uint32_t xid = next_xid_++;
  ++stats_.calls;

  std::vector<std::byte> head;
  ByteWriter w(head);
  CallHeader{xid, kNfsProgram, kNfsVersion, proc}.serialize(w);
  w.bytes(args);

  // Build the datagram once; retransmissions resend the same message.
  MsgBuffer datagram =
      stack_.copier().copy_bytes_in(head, CopyClass::Metadata);
  datagram.append(std::move(payload));

  AwaitCallback<std::optional<MsgBuffer>> awaiter(
      [this, xid, datagram](auto resolve) {
        auto r = std::make_shared<decltype(resolve)>(std::move(resolve));
        auto& slot = pending_[xid];
        slot.resolve = [r](std::optional<MsgBuffer> m) { (*r)(std::move(m)); };
        slot.first_sent = stack_.loop().now();

        // Transmit attempt `n`, arming the adaptive retransmission timer.
        // The closure captures itself weakly: each armed timer event holds
        // the strong reference, so the chain lives exactly until the call
        // is answered or exhausted (a strong self-capture would cycle and
        // pin the datagram forever).
        auto attempt = std::make_shared<std::function<void(int)>>();
        std::weak_ptr<std::function<void(int)>> weak = attempt;
        *attempt = [this, xid, datagram, weak](int n) {
          auto it = pending_.find(xid);
          if (it == pending_.end()) return;  // answered
          if (n > 1) {
            if (retry_budget_ &&
                !retry_budget_->try_withdraw(stack_.loop().now())) {
              // Budget exhausted: fail the call now instead of feeding a
              // retry storm — the caller's error path (not a resend) is
              // the load-shedding response.
              ++stats_.budget_denied;
              ++stats_.timeouts;
              auto resolve2 = std::move(it->second.resolve);
              pending_.erase(it);
              resolve2(std::nullopt);
              return;
            }
            ++stats_.retransmits;
            it->second.retransmitted = true;  // Karn: sample now ambiguous
          }
          if (n > kMaxAttempts) {
            ++stats_.timeouts;
            auto resolve2 = std::move(it->second.resolve);
            pending_.erase(it);
            resolve2(std::nullopt);
            return;
          }
          stack_.udp_send(local_ip_, local_port_, server_ip_, server_port_,
                          datagram);
          stack_.loop().schedule_in(
              attempt_timeout(n),
              [a = weak.lock(), n] { if (a) (*a)(n + 1); });
        };
        (*attempt)(1);
      });
  co_return co_await awaiter;
}

void NfsClient::register_metrics(MetricRegistry& registry,
                                 const std::string& node) {
  registry.counter(node, "nfs_client.calls", [this] { return stats_.calls; });
  registry.counter(node, "nfs_client.replies",
                   [this] { return stats_.replies; });
  registry.counter(node, "nfs_client.retransmits",
                   [this] { return stats_.retransmits; });
  registry.counter(node, "nfs_client.timeouts",
                   [this] { return stats_.timeouts; });
  registry.gauge(node, "nfs_client.rto_ms",
                 [this] { return double(rto_) / double(sim::kMillisecond); });
  if (retry_budget_) {
    // Registered only when a budget is attached, so budget-less runs keep
    // their metrics JSON byte-identical. (The node-wide
    // "retry_budget.denied" aggregate is registered by the world.)
    registry.counter(node, "nfs_client.budget_denied",
                     [this] { return stats_.budget_denied; });
  }
}

Task<std::optional<Fattr>> NfsClient::getattr(std::uint64_t fh) {
  std::vector<std::byte> args;
  ByteWriter w(args);
  GetattrArgs{fh}.serialize(w);
  auto reply = co_await call(Proc::Getattr, args);
  if (!reply) co_return std::nullopt;
  auto bytes = reply->peek_bytes(reply->size());
  ByteReader r(bytes);
  auto head = ReplyHeader::parse(r);
  if (!head || head->status != Status::Ok) co_return std::nullopt;
  co_return Fattr::parse(r);
}

Task<std::optional<std::uint64_t>> NfsClient::lookup(std::uint64_t dir_fh,
                                                     std::string_view name) {
  std::vector<std::byte> args;
  ByteWriter w(args);
  LookupArgs{dir_fh, std::string(name)}.serialize(w);
  auto reply = co_await call(Proc::Lookup, args);
  if (!reply) co_return std::nullopt;
  auto bytes = reply->peek_bytes(reply->size());
  ByteReader r(bytes);
  auto head = ReplyHeader::parse(r);
  if (!head || head->status != Status::Ok) co_return std::nullopt;
  co_return r.u64();
}

Task<NfsClient::ReadResult> NfsClient::read(std::uint64_t fh,
                                            std::uint64_t offset,
                                            std::uint32_t count) {
  std::vector<std::byte> args;
  ByteWriter w(args);
  ReadArgs{fh, offset, count}.serialize(w);
  auto reply = co_await call(Proc::Read, args);
  ReadResult out;
  if (!reply) co_return out;

  // Header region: reply header + fattr + count.
  std::size_t meta = kReplyHeaderBytes + 16 + 4;
  if (reply->size() < meta) co_return out;
  auto head = reply->peek_bytes(meta);
  ByteReader r(head);
  auto rh = ReplyHeader::parse(r);
  if (!rh) co_return out;
  out.status = rh->status;
  if (rh->status != Status::Ok) co_return out;
  out.attr = Fattr::parse(r);
  std::uint32_t n = r.u32();
  if (reply->size() < meta + n) {
    out.status = Status::Io;
    co_return out;
  }
  MsgBuffer wire = reply->slice(meta, n);
  out.junk = wire.has_junk() || wire.has_keys();
  if (out.junk) {
    out.data = std::move(wire);  // baseline payload: placeholder only
  } else {
    // The read() copy-out to the application buffer, charged to the
    // client's CPU.
    out.data = stack_.copier().copy_message(wire, CopyClass::RegularData);
  }
  stats_.read_bytes += n;
  co_return out;
}

Task<Status> NfsClient::write(std::uint64_t fh, std::uint64_t offset,
                              std::span<const std::byte> data) {
  std::vector<std::byte> args;
  ByteWriter w(args);
  WriteArgs{fh, offset, std::uint32_t(data.size())}.serialize(w);
  // Application buffer -> socket copy on the client.
  MsgBuffer payload =
      stack_.copier().copy_bytes_in(data, CopyClass::RegularData);
  auto reply = co_await call(Proc::Write, args, std::move(payload));
  if (!reply) co_return Status::Io;
  auto bytes = reply->peek_bytes(std::min<std::size_t>(reply->size(),
                                                       kReplyHeaderBytes));
  ByteReader r(bytes);
  auto head = ReplyHeader::parse(r);
  if (!head) co_return Status::Io;
  stats_.write_bytes += data.size();
  co_return head->status;
}

Task<std::optional<std::uint64_t>> NfsClient::create(std::uint64_t dir_fh,
                                                     std::string_view name,
                                                     bool directory) {
  std::vector<std::byte> args;
  ByteWriter w(args);
  CreateArgs{dir_fh, std::string(name),
             directory ? fs::InodeType::Directory : fs::InodeType::File}
      .serialize(w);
  auto reply =
      co_await call(directory ? Proc::Mkdir : Proc::Create, args);
  if (!reply) co_return std::nullopt;
  auto bytes = reply->peek_bytes(reply->size());
  ByteReader r(bytes);
  auto head = ReplyHeader::parse(r);
  if (!head || head->status != Status::Ok) co_return std::nullopt;
  co_return r.u64();
}

Task<Status> NfsClient::remove(std::uint64_t dir_fh, std::string_view name) {
  std::vector<std::byte> args;
  ByteWriter w(args);
  LookupArgs{dir_fh, std::string(name)}.serialize(w);
  auto reply = co_await call(Proc::Remove, args);
  if (!reply) co_return Status::Io;
  auto bytes = reply->peek_bytes(kReplyHeaderBytes);
  ByteReader r(bytes);
  auto head = ReplyHeader::parse(r);
  co_return head ? head->status : Status::Io;
}

Task<Status> NfsClient::rename(std::uint64_t src_dir,
                               std::string_view src_name,
                               std::uint64_t dst_dir,
                               std::string_view dst_name) {
  std::vector<std::byte> args;
  ByteWriter w(args);
  RenameArgs{src_dir, std::string(src_name), dst_dir, std::string(dst_name)}
      .serialize(w);
  auto reply = co_await call(Proc::Rename, args);
  if (!reply) co_return Status::Io;
  auto bytes = reply->peek_bytes(kReplyHeaderBytes);
  ByteReader r(bytes);
  auto head = ReplyHeader::parse(r);
  co_return head ? head->status : Status::Io;
}

Task<Status> NfsClient::setattr_size(std::uint64_t fh, std::uint64_t size) {
  std::vector<std::byte> args;
  ByteWriter w(args);
  SetattrArgs{fh, size}.serialize(w);
  auto reply = co_await call(Proc::Setattr, args);
  if (!reply) co_return Status::Io;
  auto bytes = reply->peek_bytes(kReplyHeaderBytes);
  ByteReader r(bytes);
  auto head = ReplyHeader::parse(r);
  co_return head ? head->status : Status::Io;
}

Task<std::vector<DirEntry>> NfsClient::readdir(std::uint64_t fh) {
  std::vector<std::byte> args;
  ByteWriter w(args);
  GetattrArgs{fh}.serialize(w);
  auto reply = co_await call(Proc::Readdir, args);
  if (!reply) co_return std::vector<DirEntry>{};
  auto bytes = reply->peek_bytes(reply->size());
  ByteReader r(bytes);
  auto head = ReplyHeader::parse(r);
  if (!head || head->status != Status::Ok) co_return std::vector<DirEntry>{};
  co_return parse_dir_entries(r);
}

}  // namespace ncache::nfs
